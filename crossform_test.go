package repro

// crossform_test.go is the cross-form half of the differential harness: for
// every topology family that exists in both the implicit O(1)-memory form
// and the materialized *Graph form, the two forms must be indistinguishable
// to every protocol — bit-identical outcomes on both engines at several
// worker counts. Together with the cross-engine suite (engines_test.go)
// this pins the full determinism contract: (spec, protocol, seed) fixes the
// transcript regardless of topology form, engine, or parallelism.

import (
	"reflect"
	"testing"

	"repro/internal/difftest"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sim"
)

// crossFormSpecs lists every implicit-capable family once, at sizes small
// enough for the goroutine engine but rich enough to exercise irregular
// degrees (path endpoints, grid corners, the btree frontier, the star hub).
var crossFormSpecs = []string{
	"ring:20",
	"path:17",
	"grid:4x5",
	"torus:3x4",
	"hypercube:4",
	"star:21",
	"btree:19",
}

// crossFormPair builds both forms of one spec.
func crossFormPair(t *testing.T, spec string) (imp graph.Topology, mat *graph.Graph) {
	t.Helper()
	imp, err := graph.ParseSpec(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := imp.(*graph.Implicit); !ok {
		t.Fatalf("spec %s built %T, want the implicit form", spec, imp)
	}
	mat, err = graph.Materialize(imp)
	if err != nil {
		t.Fatal(err)
	}
	return imp, mat
}

// TestCrossFormEquivalence runs every protocol in the differential registry
// on the implicit and materialized forms of every shared topology, under
// the goroutine engine and the step engine at workers 1 and 4, and requires
// bit-identical outcomes form-for-form in each configuration.
func TestCrossFormEquivalence(t *testing.T) {
	configs := []struct {
		name    string
		engine  sim.Engine
		workers int
	}{
		{"goroutine", sim.EngineGoroutine, 0},
		{"step-w1", sim.EngineStep, 1},
		{"step-w4", sim.EngineStep, 4},
	}
	for _, spec := range crossFormSpecs {
		imp, mat := crossFormPair(t, spec)
		for _, proto := range difftest.Protocols() {
			for _, cfg := range configs {
				if testing.Short() && cfg.name == "step-w4" {
					continue
				}
				t.Run(spec+"/"+proto.Name+"/"+cfg.name, func(t *testing.T) {
					oldW := sim.DefaultWorkers
					sim.DefaultWorkers = cfg.workers
					defer func() { sim.DefaultWorkers = oldW }()
					var implicit, materialized outcome
					withEngine(t, cfg.engine, func() {
						implicit = capture(proto.Run, imp, 1)
						materialized = capture(proto.Run, mat, 1)
					})
					if !reflect.DeepEqual(implicit, materialized) {
						t.Errorf("forms diverge:\n implicit:     %#v\n materialized: %#v",
							implicit, materialized)
					}
				})
			}
		}
	}
}

// TestCrossFormEquivalenceUnderFaults repeats the cross-form gate under a
// nontrivial fault plan on one representative spec per degree pattern: the
// injector's edge-id and node-id coins must land identically on both forms.
func TestCrossFormEquivalenceUnderFaults(t *testing.T) {
	plan := "seed:5;crash:5@4;jam:2-3;drop:0@2-8/p0.5;delay:*@2-10/p0.3/d2"
	oldMax := sim.DefaultMaxRounds
	sim.DefaultMaxRounds = 2000
	defer func() { sim.DefaultMaxRounds = oldMax }()
	for _, spec := range []string{"ring:20", "grid:4x5", "star:21"} {
		imp, mat := crossFormPair(t, spec)
		for _, proto := range difftest.Protocols() {
			t.Run(spec+"/"+proto.Name, func(t *testing.T) {
				parsed, err := fault.Parse(plan)
				if err != nil {
					t.Fatal(err)
				}
				oldPlan := sim.DefaultFaults
				sim.DefaultFaults = parsed
				defer func() { sim.DefaultFaults = oldPlan }()
				var implicit, materialized outcome
				for _, eng := range []sim.Engine{sim.EngineGoroutine, sim.EngineStep} {
					withEngine(t, eng, func() {
						implicit = capture(proto.Run, imp, 1)
						materialized = capture(proto.Run, mat, 1)
					})
					if !reflect.DeepEqual(implicit, materialized) {
						t.Errorf("faulted forms diverge on %v:\n implicit:     %#v\n materialized: %#v",
							eng, implicit, materialized)
					}
				}
			})
		}
	}
}
