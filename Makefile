GO ?= go

.PHONY: build vet lint test test-short test-race bench bench-check bench-quick chaos fuzz golden obs-smoke scale-smoke resume-smoke chaos2-smoke ci

## build: compile every package (the tier-1 gate's first half)
build:
	$(GO) build ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## lint: the repo's own determinism/zero-alloc analyzer suite (cmd/mmlint),
## plus staticcheck and govulncheck when installed (CI installs pinned
## versions; locally they are optional — mmlint itself needs nothing beyond
## the Go toolchain)
lint:
	$(GO) run ./cmd/mmlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipped (CI runs a pinned build)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipped (CI runs a pinned build)"; \
	fi

## test: full test suite, including the million-node census gate
test:
	$(GO) test ./...

## test-short: skip the scale gates (seconds instead of tens of seconds)
test-short:
	$(GO) test -short ./...

## test-race: the short suite under the race detector with shuffled test
## order (CI's race job) — shuffling proves no test depends on a
## predecessor's side effects
test-race:
	$(GO) test -race -short -shuffle=on ./...

## chaos: the E10 smoke configuration — fault-injection degradation tables
chaos:
	$(GO) run ./cmd/mmexp -only E10

## bench: the engine benchmark suite at full (10⁶-node) scale, recorded
## machine-readably in BENCH_engines.json for commit-over-commit tracking
bench:
	$(GO) run ./cmd/mmbench -full -out BENCH_engines.json

## bench-check: quick benchmark subset diffed against the committed
## BENCH_engines.json; fails on any >25% nodes/sec regression (scale rows
## only compare when node counts match — run `make bench` for those)
bench-check:
	$(GO) run ./cmd/mmbench -compare BENCH_engines.json -out /tmp/bench-check.json

## bench-quick: one pass of the engine-comparison benchmarks
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchtime 1x .

## fuzz: a bounded differential-fuzz session over (graph, algo, seed,
## workers, faults) tuples; any divergence between engines is a bug
fuzz:
	$(GO) test -fuzz FuzzEngineEquivalence -fuzztime 60s -run '^$$' .

## golden: regenerate the committed transcript fixtures (intentional
## determinism changes only)
golden:
	$(GO) test ./cmd/mmnet -run TestGoldenTranscripts -update

## obs-smoke: end-to-end observability gate (CI's obs-smoke job) — a census
## on a 10⁴ ring through the real CLI with -trace and -series, then the
## structural validators: the trace parses as Chrome trace_event JSON with
## phase spans, the series emits header + one row per round with column
## sums equal to the final metrics, the series header matches its golden,
## and the committed example trace still opens (Perfetto-loadable form)
obs-smoke:
	$(GO) run ./cmd/mmnet -graph ring:10000 -algo census -workers 1 \
		-trace /tmp/mmnet-obs-smoke-trace.json -series /tmp/mmnet-obs-smoke-series.ndjson
	$(GO) test ./cmd/mmnet -run TestObsSmoke -count=1
	$(GO) test ./internal/obs -run 'TestExampleTraceFixture|TestTraceChromeJSON|TestSeriesSumsMatchMetricsUnderFaults' -count=1

## scale-smoke: the acceptance gate of the implicit-topology substrate — a
## census over an implicit ring runs without ever materializing the edge
## set (the topology itself is O(1) memory; peak RSS is all per-node
## engine/protocol state). The default 10⁷ tier is CI's: GOMEMLIMIT pins
## the peak so the job fits 7 GB runners; ~1 min on 1 core. SCALE_FULL=1
## switches to the 10⁸ tier — the struct-of-arrays engine holds the whole
## census under GOMEMLIMIT=20GiB — which needs a ≥24 GB box and ~20 min.
scale-smoke:
ifeq ($(SCALE_FULL),1)
	GOGC=off GOMEMLIMIT=20GiB $(GO) run ./cmd/mmnet -graph ring:100000000 -algo census -workers 1
else
	GOGC=50 GOMEMLIMIT=5GiB $(GO) run ./cmd/mmnet -graph ring:10000000 -algo census -workers 1
endif

## resume-smoke: end-to-end checkpoint/restore gate (CI's resume-smoke job) —
## a faulted 10⁵-node census through the real CLI, checkpointed right in the
## middle of a delay+dup+jam storm (so the capture carries in-flight
## messages), resumed, stitched with mmreplay, and required byte-identical
## (mmreplay -diff exits 0 only on identity) to the uninterrupted run's
## transcript. Also proves capture-is-observation: the checkpointing run's
## transcript must equal the plain run's.
RESUME_SMOKE_DIR := /tmp/mmnet-resume-smoke
RESUME_SMOKE_ARGS := -graph ring:100000 -algo census -seed 9 \
	-faults 'delay:*@69990-70005/d10;dup:*@69995-70010;jam:70000-70004'
resume-smoke:
	mkdir -p $(RESUME_SMOKE_DIR)
	$(GO) build -o $(RESUME_SMOKE_DIR)/mmnet ./cmd/mmnet
	$(GO) build -o $(RESUME_SMOKE_DIR)/mmreplay ./cmd/mmreplay
	$(RESUME_SMOKE_DIR)/mmnet $(RESUME_SMOKE_ARGS) \
		-transcript $(RESUME_SMOKE_DIR)/ref.mmtr
	$(RESUME_SMOKE_DIR)/mmnet $(RESUME_SMOKE_ARGS) \
		-checkpoint $(RESUME_SMOKE_DIR)/cp-%d.mmcp -checkpoint-at 70000 \
		-transcript $(RESUME_SMOKE_DIR)/ck.mmtr
	cmp $(RESUME_SMOKE_DIR)/ref.mmtr $(RESUME_SMOKE_DIR)/ck.mmtr
	$(RESUME_SMOKE_DIR)/mmnet -graph ring:100000 -algo census -seed 9 \
		-resume $(RESUME_SMOKE_DIR)/cp-70000.mmcp \
		-transcript $(RESUME_SMOKE_DIR)/resumed.mmtr
	$(RESUME_SMOKE_DIR)/mmreplay -stitch $(RESUME_SMOKE_DIR)/stitched.mmtr -at 70000 \
		$(RESUME_SMOKE_DIR)/ref.mmtr $(RESUME_SMOKE_DIR)/resumed.mmtr
	$(RESUME_SMOKE_DIR)/mmreplay -diff $(RESUME_SMOKE_DIR)/ref.mmtr $(RESUME_SMOKE_DIR)/stitched.mmtr

## chaos2-smoke: end-to-end chaos-v2 gate (CI's chaos2-smoke job), two legs.
## Leg 1: a 10⁵-node census through the real CLI under a scheduled partition
## window plus a crash-restart (the revived incarnation rejoins and the
## census still counts exactly — plan-seed 13's one-round cut heals without
## touching the two in-flight wavefront messages, and any drop would wedge
## the run, so completing at all proves the heal), with transcripts required
## byte-identical at workers 1 and 4 (census is a native step protocol; the
## worker axis is its concurrency surface — goroutine-vs-step equivalence
## for the v2 rules is difftest's job). Leg 2: the randomized global sum
## under a partition that really cuts (95 partitioned drops) and under a
## crash-restart, on both engines, with all output after the engine-naming
## header line required identical — same sum, same rounds, same fault
## counters (the plan is re-applied beneath each stage of the multi-stage
## sum, so the crash-restart fires twice — hence restarted=2).
CHAOS2_SMOKE_DIR := /tmp/mmnet-chaos2-smoke
CHAOS2_CENSUS_ARGS := -graph ring:100000 -algo census -seed 9 \
	-faults 'seed:13;partition:2@70000;crash:50000@100;restart:50000@120'
CHAOS2_SUM_ARGS := -graph random -n 48 -extra 96 -algo sum -variant rand \
	-stage mb -max-rounds 4000
chaos2-smoke:
	mkdir -p $(CHAOS2_SMOKE_DIR)
	$(GO) build -o $(CHAOS2_SMOKE_DIR)/mmnet ./cmd/mmnet
	$(CHAOS2_SMOKE_DIR)/mmnet $(CHAOS2_CENSUS_ARGS) -workers 1 \
		-transcript $(CHAOS2_SMOKE_DIR)/w1.mmtr
	$(CHAOS2_SMOKE_DIR)/mmnet $(CHAOS2_CENSUS_ARGS) -workers 4 \
		-transcript $(CHAOS2_SMOKE_DIR)/w4.mmtr
	cmp $(CHAOS2_SMOKE_DIR)/w1.mmtr $(CHAOS2_SMOKE_DIR)/w4.mmtr
	set -e; for eng in goroutine step; do \
		$(CHAOS2_SMOKE_DIR)/mmnet $(CHAOS2_SUM_ARGS) -engine $$eng \
			-faults 'seed:7;partition:2@3-6' 2>&1 \
			| grep -v '^graph=' > $(CHAOS2_SMOKE_DIR)/part-$$eng.txt; \
		$(CHAOS2_SMOKE_DIR)/mmnet $(CHAOS2_SUM_ARGS) -engine $$eng \
			-faults 'seed:7;crash:5@2;restart:5@4' 2>&1 \
			| grep -v '^graph=' > $(CHAOS2_SMOKE_DIR)/rest-$$eng.txt; \
	done
	cmp $(CHAOS2_SMOKE_DIR)/part-goroutine.txt $(CHAOS2_SMOKE_DIR)/part-step.txt
	cmp $(CHAOS2_SMOKE_DIR)/rest-goroutine.txt $(CHAOS2_SMOKE_DIR)/rest-step.txt
	grep -q 'partitioned=95' $(CHAOS2_SMOKE_DIR)/part-goroutine.txt
	grep -q 'restarted=2' $(CHAOS2_SMOKE_DIR)/rest-goroutine.txt

## ci: the gates .github/workflows/ci.yml runs (its race job re-runs the
## short suite, differential seeds, and example smokes under -race)
ci: build vet lint test chaos
	$(GO) run ./cmd/mmexp -only E11
