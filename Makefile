GO ?= go

.PHONY: build vet test test-short test-race bench-quick chaos ci

## build: compile every package (the tier-1 gate's first half)
build:
	$(GO) build ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## test: full test suite, including the million-node census gate
test:
	$(GO) test ./...

## test-short: skip the scale gates (seconds instead of tens of seconds)
test-short:
	$(GO) test -short ./...

## test-race: the short suite under the race detector (CI's second job)
test-race:
	$(GO) test -race -short ./...

## chaos: the E10 smoke configuration — fault-injection degradation tables
chaos:
	$(GO) run ./cmd/mmexp -only E10

## bench-quick: one pass of the engine-comparison benchmarks
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchtime 1x .

## ci: what .github/workflows/ci.yml runs
ci: build vet test
