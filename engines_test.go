package repro

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/size"
)

// withEngine runs f with the process-wide default engine switched, so the
// protocols under test route every internal sim.Run through it.
func withEngine(t *testing.T, e sim.Engine, f func()) {
	t.Helper()
	old := sim.DefaultEngine
	sim.DefaultEngine = e
	defer func() { sim.DefaultEngine = old }()
	f()
}

// equivalenceTopologies are the topology families the paper evaluates.
var equivalenceTopologies = []struct {
	name string
	mk   func() (*graph.Graph, error)
}{
	{"ring48", func() (*graph.Graph, error) { return graph.Ring(48, 2) }},
	{"random33", func() (*graph.Graph, error) { return graph.RandomConnected(33, 66, 10) }},
	{"ray4x4", func() (*graph.Graph, error) { return graph.Ray(4, 4, 9) }},
}

// equivalenceProtocols are the module's protocols, each returning its full
// observable outcome as a value compared with reflect.DeepEqual.
var equivalenceProtocols = []struct {
	name string
	run  func(g *graph.Graph) (any, error)
}{
	{"partition-det", func(g *graph.Graph) (any, error) {
		f, met, info, err := partition.Deterministic(g, 1)
		if err != nil {
			return nil, err
		}
		return []any{f.Parent, f.ParentEdge, *met, info.Phases}, nil
	}},
	{"partition-rand", func(g *graph.Graph) (any, error) {
		f, met, info, err := partition.Randomized(g, 1)
		if err != nil {
			return nil, err
		}
		return []any{f.Parent, f.ParentEdge, *met, info.Iterations}, nil
	}},
	{"mst", func(g *graph.Graph) (any, error) {
		res, err := mst.Multimedia(g, 1)
		if err != nil {
			return nil, err
		}
		return []any{res.MST.EdgeIDs, res.MST.Total, res.Phases, res.Total}, nil
	}},
	{"sum", func(g *graph.Graph) (any, error) {
		in := func(v graph.NodeID) int64 { return (int64(v)*97 + 5) % 1000 }
		res, err := globalfunc.Multimedia(g, 1, globalfunc.Sum, in,
			globalfunc.VariantDeterministic, globalfunc.StageCapetanakis)
		if err != nil {
			return nil, err
		}
		return []any{res.Value, res.Trees, res.Total}, nil
	}},
	{"count", func(g *graph.Graph) (any, error) {
		res, err := size.Exact(g, 1, 0)
		if err != nil {
			return nil, err
		}
		return []any{res.N, res.Phases, res.Metrics}, nil
	}},
}

// TestEngineEquivalence is the cross-engine determinism gate: for a fixed
// seed, the goroutine engine and the step engine must produce byte-identical
// results and identical metrics for every protocol of the module, on every
// topology family the paper evaluates.
func TestEngineEquivalence(t *testing.T) {
	for _, topo := range equivalenceTopologies {
		for _, proto := range equivalenceProtocols {
			t.Run(topo.name+"/"+proto.name, func(t *testing.T) {
				g, err := topo.mk()
				if err != nil {
					t.Fatal(err)
				}
				var want, got any
				withEngine(t, sim.EngineGoroutine, func() {
					want, err = proto.run(g)
				})
				if err != nil {
					t.Fatalf("goroutine engine: %v", err)
				}
				withEngine(t, sim.EngineStep, func() {
					got, err = proto.run(g)
				})
				if err != nil {
					t.Fatalf("step engine: %v", err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("engines diverge:\n goroutine: %#v\n step:      %#v", want, got)
				}
			})
		}
	}
}

// TestEngineEquivalenceUnderFaults extends the determinism gate to fault
// injection: under a nontrivial plan combining a crash, a jam window, and a
// lossy link, every protocol must still produce a bit-identical transcript
// on the goroutine engine and the step engine at several worker counts —
// whether the faulted run completes or fails, the outcome (value or error)
// must be identical.
func TestEngineEquivalenceUnderFaults(t *testing.T) {
	plan, err := fault.Parse("seed:5;crash:5@4;jam:2-3;drop:0@2-8/p0.5")
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		value any
		err   string
	}
	capture := func(run func(g *graph.Graph) (any, error), g *graph.Graph) outcome {
		v, err := run(g)
		if err != nil {
			return outcome{err: err.Error()}
		}
		return outcome{value: v}
	}
	oldPlan := sim.DefaultFaults
	sim.DefaultFaults = plan
	defer func() { sim.DefaultFaults = oldPlan }()
	// Protocols wedged by the crash livelock until the round budget runs
	// out; a tight budget keeps those cases cheap. Completing runs on these
	// small graphs finish far below it.
	oldMax := sim.DefaultMaxRounds
	sim.DefaultMaxRounds = 2000
	defer func() { sim.DefaultMaxRounds = oldMax }()

	for _, topo := range equivalenceTopologies {
		for _, proto := range equivalenceProtocols {
			t.Run(topo.name+"/"+proto.name, func(t *testing.T) {
				g, err := topo.mk()
				if err != nil {
					t.Fatal(err)
				}
				var want outcome
				withEngine(t, sim.EngineGoroutine, func() {
					want = capture(proto.run, g)
				})
				for _, workers := range []int{1, 4} {
					var got outcome
					oldW := sim.DefaultWorkers
					sim.DefaultWorkers = workers
					withEngine(t, sim.EngineStep, func() {
						got = capture(proto.run, g)
					})
					sim.DefaultWorkers = oldW
					if !reflect.DeepEqual(want, got) {
						t.Errorf("faulted engines diverge (step workers=%d):\n goroutine: %#v\n step:      %#v",
							workers, want, got)
					}
				}
			})
		}
	}
}

// TestMillionNodeRingCensus is the scale gate of ISSUE 1: the native step
// engine must run a 10⁶-node ring count (network-size) protocol to
// completion. The sleep/wake wavefront makes this a few seconds of work;
// the goroutine engine would need ~1.5·10¹² channel handoffs.
func TestMillionNodeRingCensus(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node census skipped in -short mode")
	}
	const n = 1_000_000
	g, err := graph.Ring(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := size.Census(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("census = %d, want %d", res.N, n)
	}
	if res.Metrics.Messages != 4*(n-1)+2 {
		// explore+ack on both directed halves, value+result along the tree:
		// 2m explores/acks + (n-1) values + (n-1) results, m = n on a ring.
		t.Logf("messages = %d (informational)", res.Metrics.Messages)
	}
}
