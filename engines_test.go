package repro

import (
	"reflect"
	"testing"

	"repro/internal/difftest"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/size"
)

// withEngine runs f with the process-wide default engine switched, so the
// protocols under test route every internal sim.Run through it.
func withEngine(t *testing.T, e sim.Engine, f func()) {
	t.Helper()
	old := sim.DefaultEngine
	sim.DefaultEngine = e
	defer func() { sim.DefaultEngine = old }()
	f()
}

// equivalenceTopologies are the topology families the paper evaluates.
var equivalenceTopologies = []struct {
	name string
	mk   func() (*graph.Graph, error)
}{
	{"ring48", func() (*graph.Graph, error) { return graph.Ring(48, 2) }},
	{"random33", func() (*graph.Graph, error) { return graph.RandomConnected(33, 66, 10) }},
	{"ray4x4", func() (*graph.Graph, error) { return graph.Ray(4, 4, 9) }},
}

// TestEngineEquivalence is the cross-engine determinism gate: for a fixed
// seed, the goroutine engine and the step engine must produce byte-identical
// results and identical metrics for every protocol in the differential
// registry — the full `mmnet -algo` suite — on every topology family the
// paper evaluates.
func TestEngineEquivalence(t *testing.T) {
	for _, topo := range equivalenceTopologies {
		for _, proto := range difftest.Protocols() {
			t.Run(topo.name+"/"+proto.Name, func(t *testing.T) {
				g, err := topo.mk()
				if err != nil {
					t.Fatal(err)
				}
				var want, got any
				withEngine(t, sim.EngineGoroutine, func() {
					want, err = proto.Run(g, 1)
				})
				if err != nil {
					t.Fatalf("goroutine engine: %v", err)
				}
				withEngine(t, sim.EngineStep, func() {
					got, err = proto.Run(g, 1)
				})
				if err != nil {
					t.Fatalf("step engine: %v", err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("engines diverge:\n goroutine: %#v\n step:      %#v", want, got)
				}
			})
		}
	}
}

// TestEngineEquivalenceUnderFaults extends the determinism gate to fault
// injection: under a nontrivial plan combining a crash, a jam window, and a
// lossy link, every protocol must still produce a bit-identical transcript
// on the goroutine engine and the step engine at several worker counts —
// whether the faulted run completes or fails, the outcome (value or error)
// must be identical.
func TestEngineEquivalenceUnderFaults(t *testing.T) {
	plan, err := fault.Parse("seed:5;crash:5@4;jam:2-3;drop:0@2-8/p0.5")
	if err != nil {
		t.Fatal(err)
	}
	oldPlan := sim.DefaultFaults
	sim.DefaultFaults = plan
	defer func() { sim.DefaultFaults = oldPlan }()
	// Protocols wedged by the crash livelock until the round budget runs
	// out; a tight budget keeps those cases cheap. Completing runs on these
	// small graphs finish far below it.
	oldMax := sim.DefaultMaxRounds
	sim.DefaultMaxRounds = 2000
	defer func() { sim.DefaultMaxRounds = oldMax }()

	for _, topo := range equivalenceTopologies {
		for _, proto := range difftest.Protocols() {
			t.Run(topo.name+"/"+proto.Name, func(t *testing.T) {
				g, err := topo.mk()
				if err != nil {
					t.Fatal(err)
				}
				var want outcome
				withEngine(t, sim.EngineGoroutine, func() {
					want = capture(proto.Run, g, 1)
				})
				for _, workers := range []int{1, 4} {
					var got outcome
					oldW := sim.DefaultWorkers
					sim.DefaultWorkers = workers
					withEngine(t, sim.EngineStep, func() {
						got = capture(proto.Run, g, 1)
					})
					sim.DefaultWorkers = oldW
					if !reflect.DeepEqual(want, got) {
						t.Errorf("faulted engines diverge (step workers=%d):\n goroutine: %#v\n step:      %#v",
							workers, want, got)
					}
				}
			})
		}
	}
}

// outcome captures a run's full observable result: its value on success or
// its error string on failure.
type outcome struct {
	value any
	err   string
}

func capture(run func(g graph.Topology, seed int64) (any, error), g graph.Topology, seed int64) outcome {
	v, err := run(g, seed)
	if err != nil {
		return outcome{err: err.Error()}
	}
	return outcome{value: v}
}

// TestMillionNodeRingCensus is the scale gate of ISSUE 1: the native step
// engine must run a 10⁶-node ring count (network-size) protocol to
// completion. The sleep/wake wavefront makes this a few seconds of work;
// the goroutine engine would need ~1.5·10¹² channel handoffs.
func TestMillionNodeRingCensus(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node census skipped in -short mode")
	}
	const n = 1_000_000
	g, err := graph.Ring(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := size.Census(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("census = %d, want %d", res.N, n)
	}
	if res.Metrics.Messages != 4*(n-1)+2 {
		// explore+ack on both directed halves, value+result along the tree:
		// 2m explores/acks + (n-1) values + (n-1) results, m = n on a ring.
		t.Logf("messages = %d (informational)", res.Metrics.Messages)
	}
}
