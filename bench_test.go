// Benchmarks that regenerate every experiment table (DESIGN.md §5): one
// bench per table/claim, each running the quick parameter sweep per
// iteration. Run the full sweeps with `go run ./cmd/mmexp -full`.
package repro

import (
	"io"
	"testing"

	"repro/internal/exp"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/size"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for _, e := range exp.All() {
		if e.ID != id {
			continue
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Run(io.Discard, false); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("experiment %s not registered", id)
}

func BenchmarkE1DeterministicPartition(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2RandomizedPartition(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE3GlobalSensitive(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4BalancedVariant(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5MST(b *testing.B)                    { benchExperiment(b, "E5") }
func BenchmarkE6Synchronizer(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7NetworkSize(b *testing.B)            { benchExperiment(b, "E7") }
func BenchmarkE8RayLowerBound(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9EngineScaling(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkA2MonteCarloVsLasVegas(b *testing.B)   { benchExperiment(b, "A2") }
func BenchmarkA3GlobalStageProtocols(b *testing.B)   { benchExperiment(b, "A3") }
func BenchmarkA4MWOETesting(b *testing.B)            { benchExperiment(b, "A4") }

// Micro-benchmarks of the individual algorithms at a fixed size, reporting
// the paper's cost measures as custom metrics.

func ringGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g, err := graph.Ring(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkPartitionDeterministic256(b *testing.B) {
	g := ringGraph(b, 256)
	var rounds, msgs int64
	for i := 0; i < b.N; i++ {
		_, met, _, err := partition.Deterministic(g, 1)
		if err != nil {
			b.Fatal(err)
		}
		rounds, msgs = int64(met.Rounds), met.Messages
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(msgs), "p2p-msgs")
}

func BenchmarkPartitionRandomized256(b *testing.B) {
	g := ringGraph(b, 256)
	var rounds, msgs int64
	for i := 0; i < b.N; i++ {
		_, met, _, err := partition.Randomized(g, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		rounds, msgs = int64(met.Rounds), met.Messages
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(msgs), "p2p-msgs")
}

func BenchmarkGlobalSum256(b *testing.B) {
	g := ringGraph(b, 256)
	in := func(v graph.NodeID) int64 { return int64(v) }
	var rounds int64
	for i := 0; i < b.N; i++ {
		res, err := globalfunc.Multimedia(g, int64(i), globalfunc.Sum, in,
			globalfunc.VariantRandomized, globalfunc.StageMetcalfeBoggs)
		if err != nil {
			b.Fatal(err)
		}
		rounds = int64(res.Total.Rounds)
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkMST256(b *testing.B) {
	g, err := graph.RandomConnected(256, 512, 3)
	if err != nil {
		b.Fatal(err)
	}
	var rounds int64
	for i := 0; i < b.N; i++ {
		res, err := mst.Multimedia(g, 1)
		if err != nil {
			b.Fatal(err)
		}
		rounds = int64(res.Total.Rounds)
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// Engine-comparison benchmarks (ISSUE 1 acceptance): round throughput of the
// same fixed-round relay protocol — every node sends one message per round
// for relayRounds rounds — on the goroutine engine, the step engine through
// the goroutine adapter, and the step engine natively. At n = 10⁵ the native
// step engine sustains well over 3× the goroutine engine's round throughput
// (measured ~6× on one core; the gap widens with GOMAXPROCS since the
// goroutine engine's scheduler loop is serial).

const (
	relayNodes  = 100_000
	relayRounds = 20
)

func relayProgram(ctx *sim.Ctx) error {
	for r := 0; r < relayRounds; r++ {
		ctx.Send(0, r)
		ctx.Tick()
	}
	return nil
}

type relayMachine struct{ c *sim.StepCtx }

func (m relayMachine) Step(in sim.Input) bool {
	if in.Round == relayRounds {
		return true
	}
	m.c.Send(0, in.Round)
	return false
}

func (m relayMachine) Result() any { return nil }

func benchRelay(b *testing.B, run func(g *graph.Graph) (*sim.Result, error)) {
	b.Helper()
	g := ringGraph(b, relayNodes)
	b.ResetTimer()
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := run(g)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.Messages != relayNodes*relayRounds {
			b.Fatalf("messages = %d", res.Metrics.Messages)
		}
		rounds += res.Metrics.Rounds
	}
	b.StopTimer()
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/sec")
}

func BenchmarkEngineRelayGoroutine100k(b *testing.B) {
	benchRelay(b, func(g *graph.Graph) (*sim.Result, error) {
		return sim.Run(g, relayProgram, sim.WithEngine(sim.EngineGoroutine))
	})
}

func BenchmarkEngineRelayStepAdapter100k(b *testing.B) {
	benchRelay(b, func(g *graph.Graph) (*sim.Result, error) {
		return sim.Run(g, relayProgram, sim.WithEngine(sim.EngineStep))
	})
}

func BenchmarkEngineRelayStepNative100k(b *testing.B) {
	benchRelay(b, func(g *graph.Graph) (*sim.Result, error) {
		return sim.RunStep(g, func(c *sim.StepCtx) sim.Machine { return relayMachine{c: c} })
	})
}

// BenchmarkEngineCensusStepNative100k measures the step engine where it has
// no goroutine-engine counterpart: a sleep/wake wavefront census on a
// 10⁵-node ring (the goroutine engine would schedule n·rounds ≈ 1.5·10¹⁰
// handoffs for the same run).
func BenchmarkEngineCensusStepNative100k(b *testing.B) {
	g := ringGraph(b, relayNodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := size.Census(g, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.N != relayNodes {
			b.Fatalf("census = %d", res.N)
		}
	}
}
