// Benchmarks that regenerate every experiment table (DESIGN.md §5): one
// bench per table/claim, each running the quick parameter sweep per
// iteration. Run the full sweeps with `go run ./cmd/mmexp -full`.
package repro

import (
	"io"
	"testing"

	"repro/internal/exp"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/partition"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for _, e := range exp.All() {
		if e.ID != id {
			continue
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Run(io.Discard, false); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("experiment %s not registered", id)
}

func BenchmarkE1DeterministicPartition(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2RandomizedPartition(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE3GlobalSensitive(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4BalancedVariant(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5MST(b *testing.B)                    { benchExperiment(b, "E5") }
func BenchmarkE6Synchronizer(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7NetworkSize(b *testing.B)            { benchExperiment(b, "E7") }
func BenchmarkE8RayLowerBound(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkA2MonteCarloVsLasVegas(b *testing.B)   { benchExperiment(b, "A2") }
func BenchmarkA3GlobalStageProtocols(b *testing.B)   { benchExperiment(b, "A3") }
func BenchmarkA4MWOETesting(b *testing.B)            { benchExperiment(b, "A4") }

// Micro-benchmarks of the individual algorithms at a fixed size, reporting
// the paper's cost measures as custom metrics.

func ringGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g, err := graph.Ring(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkPartitionDeterministic256(b *testing.B) {
	g := ringGraph(b, 256)
	var rounds, msgs int64
	for i := 0; i < b.N; i++ {
		_, met, _, err := partition.Deterministic(g, 1)
		if err != nil {
			b.Fatal(err)
		}
		rounds, msgs = int64(met.Rounds), met.Messages
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(msgs), "p2p-msgs")
}

func BenchmarkPartitionRandomized256(b *testing.B) {
	g := ringGraph(b, 256)
	var rounds, msgs int64
	for i := 0; i < b.N; i++ {
		_, met, _, err := partition.Randomized(g, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		rounds, msgs = int64(met.Rounds), met.Messages
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(msgs), "p2p-msgs")
}

func BenchmarkGlobalSum256(b *testing.B) {
	g := ringGraph(b, 256)
	in := func(v graph.NodeID) int64 { return int64(v) }
	var rounds int64
	for i := 0; i < b.N; i++ {
		res, err := globalfunc.Multimedia(g, int64(i), globalfunc.Sum, in,
			globalfunc.VariantRandomized, globalfunc.StageMetcalfeBoggs)
		if err != nil {
			b.Fatal(err)
		}
		rounds = int64(res.Total.Rounds)
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkMST256(b *testing.B) {
	g, err := graph.RandomConnected(256, 512, 3)
	if err != nil {
		b.Fatal(err)
	}
	var rounds int64
	for i := 0; i < b.N; i++ {
		res, err := mst.Multimedia(g, 1)
		if err != nil {
			b.Fatal(err)
		}
		rounds = int64(res.Total.Rounds)
	}
	b.ReportMetric(float64(rounds), "rounds")
}
