// Package coloring implements the deterministic symmetry-breaking toolkit
// the partitioning algorithm of §3 relies on: Cole–Vishkin deterministic
// coin tossing for color reduction on rooted forests, the
// Goldberg–Plotkin–Shannon 3-coloring, and the paper's Steps 4–5 recoloring
// that turns a 3-coloring into a maximal independent set containing every
// root. This package is the pure combinatorial version, used both directly
// by tests and as the specification for the distributed fragment-level
// protocol in internal/partition.
//
// A rooted forest on n vertices is given as a parent slice: parent[v] == -1
// for roots; otherwise parent[v] is v's father.
package coloring

import (
	"errors"
	"fmt"
	"math/bits"
)

// The three colors of the GPS coloring, named as in the paper.
const (
	Red   = 0
	Green = 1
	Blue  = 2
)

// ErrNotForest is returned when the parent slice contains a cycle or an
// out-of-range parent.
var ErrNotForest = errors.New("coloring: parent slice is not a rooted forest")

// ValidateForest checks that parent encodes a rooted forest.
func ValidateForest(parent []int) error {
	n := len(parent)
	state := make([]int8, n) // 0 unseen, 1 on stack, 2 done
	for v := range parent {
		if parent[v] < -1 || parent[v] >= n || parent[v] == v {
			return fmt.Errorf("%w: parent[%d] = %d", ErrNotForest, v, parent[v])
		}
	}
	for v := range parent {
		if state[v] != 0 {
			continue
		}
		var path []int
		u := v
		for u != -1 && state[u] == 0 {
			state[u] = 1
			path = append(path, u)
			u = parent[u]
		}
		if u != -1 && state[u] == 1 {
			return fmt.Errorf("%w: cycle through vertex %d", ErrNotForest, u)
		}
		for _, w := range path {
			state[w] = 2
		}
	}
	return nil
}

// cvColor computes one vertex's Cole–Vishkin color from its own color and
// its father's: the index k of the lowest bit in which they differ, shifted
// left, plus v's value of that bit. Adjacent vertices with distinct colors
// get distinct new colors.
func cvColor(own, father int) int {
	k := bits.TrailingZeros64(uint64(own ^ father))
	return k<<1 | (own >> uint(k) & 1)
}

// SixColor runs Cole–Vishkin iterations starting from the identity coloring
// (vertex ids) until every color is below six, and returns the coloring and
// the number of iterations — Θ(log* n), the quantity the paper's time
// bounds charge per phase.
func SixColor(parent []int) (colors []int, iters int, err error) {
	if err := ValidateForest(parent); err != nil {
		return nil, 0, err
	}
	n := len(parent)
	colors = make([]int, n)
	for v := range colors {
		colors[v] = v
	}
	next := make([]int, n)
	for iters = 0; maxOf(colors) > 5; iters++ {
		for v := range colors {
			father := colors[v] ^ 1 // roots pretend their father differs in bit 0
			if parent[v] != -1 {
				father = colors[parent[v]]
			}
			next[v] = cvColor(colors[v], father)
		}
		copy(colors, next)
		if iters > 64 {
			return nil, iters, errors.New("coloring: six-coloring failed to converge")
		}
	}
	return colors, iters, nil
}

// shiftDown recolors every non-root with its father's color and every root
// with the smallest color in {0,1,2} different from its own. The result is a
// legal coloring in which all siblings share a color.
func shiftDown(parent, colors []int) []int {
	out := make([]int, len(colors))
	for v := range colors {
		if parent[v] == -1 {
			out[v] = smallestExcept(colors[v])
		} else {
			out[v] = colors[parent[v]]
		}
	}
	return out
}

func smallestExcept(c int) int {
	for x := 0; ; x++ {
		if x != c {
			return x
		}
	}
}

// ThreeColor computes a legal 3-coloring (colors in {Red, Green, Blue}) of a
// rooted forest via GPS: Cole–Vishkin down to six colors, then three
// shift-down-and-recolor rounds eliminating colors 5, 4 and 3. The returned
// iteration count is the number of Cole–Vishkin rounds.
func ThreeColor(parent []int) (colors []int, iters int, err error) {
	colors, iters, err = SixColor(parent)
	if err != nil {
		return nil, 0, err
	}
	children := childLists(parent)
	for drop := 5; drop >= 3; drop-- {
		colors = shiftDown(parent, colors)
		next := make([]int, len(colors))
		copy(next, colors)
		for v := range colors {
			if colors[v] != drop {
				continue
			}
			forbidden := [6]bool{}
			if parent[v] != -1 {
				forbidden[colors[parent[v]]] = true
			}
			// After shift-down all children of v share v's old color; look
			// at any one of them.
			if len(children[v]) > 0 {
				forbidden[colors[children[v][0]]] = true
			}
			for x := 0; x < 3; x++ {
				if !forbidden[x] {
					next[v] = x
					break
				}
			}
		}
		colors = next
	}
	return colors, iters, nil
}

// MISRecolor implements the paper's Steps 4 and 5: starting from a legal
// 3-coloring it recolors the forest so that the red vertices form a maximal
// independent set that contains every root. The input slice is not modified.
func MISRecolor(parent, colors []int) ([]int, error) {
	if err := ValidateForest(parent); err != nil {
		return nil, err
	}
	if !IsLegalColoring(parent, colors) {
		return nil, errors.New("coloring: MISRecolor requires a legal coloring")
	}
	n := len(parent)
	children := childLists(parent)
	out := make([]int, n)

	// Step 4: every vertex except roots and roots' children takes its
	// father's (old) color; then fix up each root and its children so the
	// root is red and the coloring stays legal.
	isRootChild := make([]bool, n)
	for v := range parent {
		if parent[v] != -1 && parent[parent[v]] == -1 {
			isRootChild[v] = true
		}
	}
	for v := range parent {
		switch {
		case parent[v] == -1 || isRootChild[v]:
			out[v] = colors[v] // handled below
		default:
			out[v] = colors[parent[v]]
		}
	}
	for r := range parent {
		if parent[r] != -1 {
			continue
		}
		if colors[r] == Red {
			for _, ch := range children[r] {
				out[ch] = thirdColor(Red, colors[ch])
			}
		} else {
			for _, ch := range children[r] {
				out[ch] = colors[r]
			}
			out[r] = Red
		}
	}

	// Step 5: promote blue vertices with no red neighbor to red, then green
	// vertices with no red neighbor.
	for _, promote := range []int{Blue, Green} {
		next := make([]int, n)
		copy(next, out)
		for v := range parent {
			if out[v] != promote {
				continue
			}
			if !hasRedNeighbor(parent, children, out, v) {
				next[v] = Red
			}
		}
		out = next
	}
	return out, nil
}

func thirdColor(a, b int) int {
	for x := 0; x < 3; x++ {
		if x != a && x != b {
			return x
		}
	}
	return -1 // unreachable: a != b in all call sites
}

func hasRedNeighbor(parent []int, children [][]int, colors []int, v int) bool {
	if parent[v] != -1 && colors[parent[v]] == Red {
		return true
	}
	for _, ch := range children[v] {
		if colors[ch] == Red {
			return true
		}
	}
	return false
}

// CutRedSubtrees implements Step 6's cut: remove the edge out of every red
// vertex that is not a leaf of the forest, and return for each vertex the
// root of the subtree it now belongs to. The paper proves each subtree has
// radius at most four and a red root (or is an original root's subtree).
func CutRedSubtrees(parent, colors []int) []int {
	n := len(parent)
	childCount := make([]int, n)
	for v := range parent {
		if parent[v] != -1 {
			childCount[parent[v]]++
		}
	}
	newParent := make([]int, n)
	for v := range parent {
		if colors[v] == Red && childCount[v] > 0 {
			newParent[v] = -1 // cut the outgoing edge of red internal vertices
		} else {
			newParent[v] = parent[v]
		}
	}
	subroot := make([]int, n)
	for v := range subroot {
		subroot[v] = -1
	}
	var find func(v int) int
	find = func(v int) int {
		if subroot[v] != -1 {
			return subroot[v]
		}
		if newParent[v] == -1 {
			subroot[v] = v
		} else {
			subroot[v] = find(newParent[v])
		}
		return subroot[v]
	}
	for v := range subroot {
		find(v)
	}
	return subroot
}

// IsLegalColoring reports whether no vertex shares a color with its father.
func IsLegalColoring(parent, colors []int) bool {
	for v := range parent {
		if parent[v] != -1 && colors[v] == colors[parent[v]] {
			return false
		}
	}
	return true
}

// IsRootedMIS reports whether the red vertices of the coloring form an
// independent set that is maximal and contains every root.
func IsRootedMIS(parent, colors []int) bool {
	children := childLists(parent)
	for v := range parent {
		red := colors[v] == Red
		if parent[v] == -1 && !red {
			return false // root not in the set
		}
		if red && parent[v] != -1 && colors[parent[v]] == Red {
			return false // not independent
		}
		if !red && !hasRedNeighbor(parent, children, colors, v) {
			return false // not maximal
		}
	}
	return true
}

func childLists(parent []int) [][]int {
	children := make([][]int, len(parent))
	for v := range parent {
		if parent[v] != -1 {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	return children
}

func maxOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Depths returns each vertex's depth below its subtree root, given a
// subroot assignment from CutRedSubtrees (or parent == -1 roots).
func Depths(parent, subroot []int) []int {
	n := len(parent)
	depth := make([]int, n)
	for v := range depth {
		depth[v] = -1
	}
	var find func(v int) int
	find = func(v int) int {
		if depth[v] != -1 {
			return depth[v]
		}
		if subroot[v] == v {
			depth[v] = 0
		} else {
			depth[v] = find(parent[v]) + 1
		}
		return depth[v]
	}
	for v := range depth {
		find(v)
	}
	return depth
}
