package coloring_test

import (
	"reflect"
	"testing"

	"repro/internal/coloring"

	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sim"
)

// protocolForests builds rooted spanning forests to color: the §3 partition
// forest of a random graph, a path chopped into chains, and a star.
func protocolForests(t *testing.T) map[string]*forest.Forest {
	t.Helper()
	out := make(map[string]*forest.Forest)

	g, err := graph.RandomConnected(60, 90, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, _, _, err := partition.Deterministic(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	out["partition60"] = f

	p, err := graph.Path(37, 2)
	if err != nil {
		t.Fatal(err)
	}
	parent := make([]graph.NodeID, 37)
	parentEdge := make([]int, 37)
	for v := 0; v < 37; v++ {
		if v%9 == 0 {
			parent[v], parentEdge[v] = -1, -1
		} else {
			parent[v] = graph.NodeID(v - 1)
			parentEdge[v] = v - 1 // Path edge i connects i and i+1
		}
	}
	pf, err := forest.New(p, parent, parentEdge)
	if err != nil {
		t.Fatal(err)
	}
	out["chains37"] = pf

	s, err := graph.Star(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp := make([]graph.NodeID, 20)
	se := make([]int, 20)
	sp[0], se[0] = -1, -1
	for v := 1; v < 20; v++ {
		sp[v] = 0
		se[v] = v - 1
	}
	sf, err := forest.New(s, sp, se)
	if err != nil {
		t.Fatal(err)
	}
	out["star20"] = sf
	return out
}

// TestDistributedMeetsSpec: the protocol's output must satisfy the
// combinatorial specification — a legal coloring whose red vertices form an
// MIS containing every root.
func TestDistributedMeetsSpec(t *testing.T) {
	//mmlint:commutative independent subtests; names label, order never asserted
	for name, f := range protocolForests(t) {
		t.Run(name, func(t *testing.T) {
			colors, met, err := coloring.Distributed(f, 1)
			if err != nil {
				t.Fatal(err)
			}
			parent := coloring.ParentInts(f)
			for v, c := range colors {
				if c < 0 || c > 2 {
					t.Fatalf("vertex %d has color %d, want 0..2", v, c)
				}
			}
			if !coloring.IsLegalColoring(parent, colors) {
				t.Error("coloring is not legal")
			}
			if !coloring.IsRootedMIS(parent, colors) {
				t.Error("red vertices are not a rooted MIS")
			}
			if met.Slots() != 0 {
				t.Errorf("protocol touched the channel: %d slots", met.Slots())
			}
			wantRounds := coloring.ScheduleRounds(f.G.N())
			if met.Rounds != wantRounds {
				t.Errorf("rounds = %d, want the fixed schedule %d", met.Rounds, wantRounds)
			}
		})
	}
}

// TestDistributedEngineEquivalence: goroutine and native machine forms must
// produce identical colors and metrics.
func TestDistributedEngineEquivalence(t *testing.T) {
	old := sim.DefaultEngine
	defer func() { sim.DefaultEngine = old }()
	//mmlint:commutative independent subtests; names label, order never asserted
	for name, f := range protocolForests(t) {
		t.Run(name, func(t *testing.T) {
			sim.DefaultEngine = sim.EngineGoroutine
			goCols, goMet, err := coloring.Distributed(f, 1)
			if err != nil {
				t.Fatal(err)
			}
			sim.DefaultEngine = sim.EngineStep
			stCols, stMet, err := coloring.Distributed(f, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(goCols, stCols) {
				t.Errorf("colors diverge:\n goroutine: %v\n step:      %v", goCols, stCols)
			}
			if !reflect.DeepEqual(goMet, stMet) {
				t.Errorf("metrics diverge:\n goroutine: %+v\n step:      %+v", goMet, stMet)
			}
		})
	}
}
