package coloring

// step.go is the native step-machine form of the distributed forest
// coloring: the same colorState transition as the goroutine Program,
// stepped once per round, so both forms are message-for-message identical.
// The protocol's round count is O(log* n) and every node is active every
// round, so no sleeping is needed — a 10⁶-node forest 3-colors in a couple
// dozen rounds of O(n) work each (the E11 experiment's coloring leg).

import (
	"repro/internal/forest"
	"repro/internal/sim"
)

// colorMachine is one vertex of the distributed coloring.
type colorMachine struct {
	c          *sim.StepCtx
	st         colorState
	parentEdge int
	parentLink int
	childLinks []int
	result     any
}

func (m *colorMachine) send() {
	p := cCol{Color: m.st.col, Root: m.st.isRoot}
	if m.parentLink != -1 {
		m.c.Send(m.parentLink, p)
	}
	for _, l := range m.childLinks {
		m.c.Send(l, p)
	}
}

func (m *colorMachine) Step(in sim.Input) bool {
	if in.Round == 0 {
		m.send() // round 0: announce the initial color
		return false
	}
	parentCol, parentRoot, childRed := readColors(in.Msgs, m.parentEdge)
	m.st.update(in.Round, parentCol, parentRoot, childRed)
	if in.Round == m.st.lastRound() {
		m.result = m.st.col
		return true
	}
	m.send()
	return false
}

func (m *colorMachine) Result() any { return m.result }

// StepProgram returns the native machine form of Program. Machines come
// from a per-run slab: one allocation for the whole forest.
func StepProgram(f *forest.Forest) sim.StepProgram {
	children := f.Children()
	var slab sim.Slab[colorMachine]
	return func(c *sim.StepCtx) sim.Machine {
		id := c.ID()
		m := slab.Alloc(c.N())
		*m = colorMachine{
			c: c,
			st: colorState{
				T:       stepsToSix(c.N()),
				isRoot:  f.Parent[id] == -1,
				hasKids: len(children[id]) > 0,
				col:     int(id),
			},
			parentEdge: f.ParentEdge[id],
			parentLink: -1,
		}
		if !m.st.isRoot {
			m.parentLink = c.LinkOf(f.ParentEdge[id])
		}
		m.childLinks = make([]int, 0, len(children[id]))
		for _, k := range children[id] {
			m.childLinks = append(m.childLinks, c.LinkOf(f.ParentEdge[k]))
		}
		return m
	}
}
