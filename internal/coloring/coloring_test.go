package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomForest builds a random rooted forest on n vertices where each vertex
// attaches to a random earlier vertex or becomes a root.
func randomForest(n int, rootProb float64, rng *rand.Rand) []int {
	parent := make([]int, n)
	perm := rng.Perm(n)
	pos := make([]int, n)
	for i, v := range perm {
		pos[v] = i
	}
	for _, v := range perm {
		if pos[v] == 0 || rng.Float64() < rootProb {
			parent[v] = -1
		} else {
			parent[v] = perm[rng.Intn(pos[v])]
		}
	}
	return parent
}

func pathForest(n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	return parent
}

func TestValidateForest(t *testing.T) {
	tests := []struct {
		name   string
		parent []int
		ok     bool
	}{
		{"single root", []int{-1}, true},
		{"path", []int{-1, 0, 1}, true},
		{"two trees", []int{-1, 0, -1, 2}, true},
		{"self parent", []int{0}, false},
		{"two-cycle", []int{1, 0}, false},
		{"long cycle", []int{1, 2, 3, 0}, false},
		{"out of range", []int{5}, false},
		{"cycle with tail", []int{1, 2, 1, -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := ValidateForest(tt.parent)
			if (err == nil) != tt.ok {
				t.Errorf("ValidateForest(%v) = %v, want ok=%v", tt.parent, err, tt.ok)
			}
		})
	}
}

func TestCVColorAdjacentDiffer(t *testing.T) {
	// For any two distinct colors, the CV step values against a common
	// chain keep adjacent pairs distinct.
	for own := 0; own < 64; own++ {
		for father := 0; father < 64; father++ {
			if own == father {
				continue
			}
			if cvColor(own, father) == cvColor(father, own^father^own) && false {
				t.Fatal("unreachable")
			}
		}
	}
	// The real invariant: child's new color != father's new color whenever
	// child, father, grandfather are pairwise legally colored.
	for child := 0; child < 32; child++ {
		for father := 0; father < 32; father++ {
			if child == father {
				continue
			}
			for grand := 0; grand < 32; grand++ {
				if grand == father {
					continue
				}
				if cvColor(child, father) == cvColor(father, grand) {
					t.Fatalf("CV collision: child=%d father=%d grand=%d", child, father, grand)
				}
			}
		}
	}
}

func TestSixColor(t *testing.T) {
	parent := pathForest(200)
	colors, iters, err := SixColor(parent)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 || iters > 10 {
		t.Errorf("iters = %d, expected a small log* count", iters)
	}
	for v, c := range colors {
		if c < 0 || c > 5 {
			t.Fatalf("color[%d] = %d outside [0,5]", v, c)
		}
	}
	if !IsLegalColoring(parent, colors) {
		t.Error("six-coloring not legal")
	}
}

func TestThreeColorPath(t *testing.T) {
	parent := pathForest(500)
	colors, _, err := ThreeColor(parent)
	if err != nil {
		t.Fatal(err)
	}
	if !IsLegalColoring(parent, colors) {
		t.Error("three-coloring not legal")
	}
	for v, c := range colors {
		if c < 0 || c > 2 {
			t.Fatalf("color[%d] = %d outside [0,2]", v, c)
		}
	}
}

func TestThreeColorSingleton(t *testing.T) {
	colors, _, err := ThreeColor([]int{-1})
	if err != nil {
		t.Fatal(err)
	}
	if len(colors) != 1 || colors[0] < 0 || colors[0] > 2 {
		t.Errorf("singleton colors = %v", colors)
	}
}

func TestThreeColorRejectsCycle(t *testing.T) {
	if _, _, err := ThreeColor([]int{1, 0}); err == nil {
		t.Error("expected error on a cycle")
	}
}

func TestMISRecolorPath(t *testing.T) {
	parent := pathForest(100)
	colors, _, err := ThreeColor(parent)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := MISRecolor(parent, colors)
	if err != nil {
		t.Fatal(err)
	}
	if !IsLegalColoring(parent, mis) {
		t.Error("MIS recoloring not legal")
	}
	if !IsRootedMIS(parent, mis) {
		t.Error("red set is not a rooted MIS")
	}
}

func TestMISRecolorRejectsIllegal(t *testing.T) {
	parent := []int{-1, 0}
	if _, err := MISRecolor(parent, []int{Red, Red}); err == nil {
		t.Error("expected error on illegal input coloring")
	}
}

func TestCutRedSubtreesRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		parent := randomForest(n, 0.05, rng)
		colors, _, err := ThreeColor(parent)
		if err != nil {
			t.Fatal(err)
		}
		mis, err := MISRecolor(parent, colors)
		if err != nil {
			t.Fatal(err)
		}
		subroot := CutRedSubtrees(parent, mis)
		depth := Depths(parent, subroot)
		for v := range parent {
			if depth[v] > 4 {
				t.Fatalf("trial %d: vertex %d at depth %d > 4 in its subtree", trial, v, depth[v])
			}
			if subroot[v] == v {
				// Subtree roots are red (original roots are red after MIS).
				if mis[v] != Red {
					t.Fatalf("trial %d: subtree root %d is not red", trial, v)
				}
			}
		}
		// Every original root must be its own subtree root.
		for v := range parent {
			if parent[v] == -1 && subroot[v] != v {
				t.Fatalf("trial %d: original root %d assigned to subtree of %d", trial, v, subroot[v])
			}
		}
	}
}

// TestCutRedSubtreesActiveMerge mirrors the partition's requirement: every
// non-root vertex of F joins the subtree of some other vertex (so active
// fragments always merge with at least one other fragment).
func TestCutRedSubtreesNonRootsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(100)
		parent := randomForest(n, 0.02, rng)
		colors, _, err := ThreeColor(parent)
		if err != nil {
			t.Fatal(err)
		}
		mis, err := MISRecolor(parent, colors)
		if err != nil {
			t.Fatal(err)
		}
		subroot := CutRedSubtrees(parent, mis)
		// Count subtree sizes; a subtree of size 1 is allowed only if its
		// vertex is an original root or a red leaf... the paper's merge
		// argument needs: every vertex with a parent in F either keeps its
		// parent edge or is a red internal vertex (whose children stay).
		size := make(map[int]int)
		for _, r := range subroot {
			size[r]++
		}
		childCount := make([]int, n)
		for v := range parent {
			if parent[v] != -1 {
				childCount[parent[v]]++
			}
		}
		for v := range parent {
			if parent[v] == -1 {
				continue
			}
			if size[subroot[v]] < 2 && childCount[v] == 0 {
				t.Fatalf("trial %d: non-root leaf %d isolated in its own subtree", trial, v)
			}
		}
	}
}

// Property: ThreeColor + MISRecolor on random forests always yields a legal
// coloring whose red class is a rooted MIS.
func TestColoringPipelineProperty(t *testing.T) {
	prop := func(nRaw uint16, seed int64) bool {
		n := 1 + int(nRaw)%400
		rng := rand.New(rand.NewSource(seed))
		parent := randomForest(n, 0.1, rng)
		colors, _, err := ThreeColor(parent)
		if err != nil || !IsLegalColoring(parent, colors) {
			return false
		}
		mis, err := MISRecolor(parent, colors)
		if err != nil {
			return false
		}
		return IsLegalColoring(parent, mis) && IsRootedMIS(parent, mis)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDepths(t *testing.T) {
	parent := []int{-1, 0, 1, 1, -1}
	subroot := []int{0, 0, 0, 0, 4}
	depth := Depths(parent, subroot)
	want := []int{0, 1, 2, 2, 0}
	for v := range want {
		if depth[v] != want[v] {
			t.Errorf("depth[%d] = %d, want %d", v, depth[v], want[v])
		}
	}
}
