package coloring

// protocol.go is the distributed form of this package's combinatorial
// toolkit: a synchronous protocol that 3-colors a rooted spanning forest
// and recolors it into a rooted MIS (the paper's Steps 4–5), with every
// node simulating its own vertex. The schedule is fixed and known to all —
// stepsToSix(n) Cole–Vishkin iterations, three shift-down/recolor pairs
// eliminating colors 5, 4 and 3, the MIS recoloring, and two promotion
// rounds — so the whole protocol needs no barrier and runs in
// O(log* n) rounds with O(n · log* n) messages and no channel use.
//
// Both engine forms — the goroutine program in this file and the native
// machine in step.go — drive the same per-round transition (colorState), so
// they are message-for-message identical and the engines-equivalence suite
// can compare them bit for bit.

import (
	"fmt"

	"repro/internal/forest"
	"repro/internal/sim"
)

// cCol is the per-round color exchange: every node sends its current color
// (and its root flag, which children need for the MIS recoloring) to its
// tree parent and all tree children.
type cCol struct {
	Color int
	Root  bool
}

// stepsToSix returns the number of Cole–Vishkin iterations that reduce any
// coloring with values below n to values below six (the distributed
// protocol iterates a fixed, publicly computable count instead of testing
// the global maximum).
func stepsToSix(n int) int {
	maxVal := n - 1
	steps := 0
	for maxVal > 5 {
		b := 0
		for 1<<b <= maxVal {
			b++
		}
		maxVal = 2*(b-1) + 1
		steps++
	}
	return steps
}

// colorState is one vertex's state, advanced once per round. The round
// schedule (T = stepsToSix(n)):
//
//	1..T      Cole–Vishkin iterations
//	T+1..T+6  shift-down / drop-recolor pairs for colors 5, 4, 3
//	T+7       MIS Step 4 (roots red, fix-ups at roots' children)
//	T+8,T+9   MIS Step 5 (promote blue, then green, non-red-adjacent)
type colorState struct {
	T       int
	isRoot  bool
	hasKids bool
	col     int

	preShift int // own color before the current pair's shift-down
}

// lastRound returns the round after which the coloring is final.
func (s *colorState) lastRound() int { return s.T + 9 }

// update advances the vertex by one round. parentCol/parentRoot are from
// the parent's message this round (ignored at roots); childRed reports
// whether any child's message this round carried red.
func (s *colorState) update(round, parentCol int, parentRoot, childRed bool) {
	switch {
	case round == 0:
		// Round 0 only announces the initial coloring (vertex ids).
	case round <= s.T:
		father := s.col ^ 1 // roots pretend their father differs in bit 0
		if !s.isRoot {
			father = parentCol
		}
		s.col = cvColor(s.col, father)
	case round <= s.T+6:
		k := round - s.T // 1..6
		drop := 5 - (k-1)/2
		if k%2 == 1 {
			// Shift-down: all siblings adopt their father's color, so after
			// this round every child of v wears v's pre-shift color.
			s.preShift = s.col
			if s.isRoot {
				s.col = smallestExcept(s.col)
			} else {
				s.col = parentCol
			}
		} else if s.col == drop {
			var forbidden [6]bool
			if !s.isRoot {
				forbidden[parentCol] = true
			}
			if s.hasKids {
				forbidden[s.preShift] = true
			}
			for x := 0; x < 3; x++ {
				if !forbidden[x] {
					s.col = x
					break
				}
			}
		}
	case round == s.T+7:
		// MIS Step 4: every vertex except roots and roots' children takes
		// its father's color; each root turns red, its children recolored
		// to keep the coloring legal.
		switch {
		case s.isRoot:
			s.col = Red
		case parentRoot:
			if parentCol == Red {
				s.col = thirdColor(Red, s.col)
			} else {
				s.col = parentCol
			}
		default:
			s.col = parentCol
		}
	case round == s.T+8:
		if s.col == Blue && !s.redNeighbor(parentCol, childRed) {
			s.col = Red
		}
	case round == s.T+9:
		if s.col == Green && !s.redNeighbor(parentCol, childRed) {
			s.col = Red
		}
	}
}

// redNeighbor reports whether the father's or any child's announcement this
// round carried red.
func (s *colorState) redNeighbor(parentCol int, childRed bool) bool {
	return (!s.isRoot && parentCol == Red) || childRed
}

// Program returns the goroutine form of the distributed coloring over the
// given forest: each node ends with its final color as its result.
func Program(f *forest.Forest) sim.Program {
	children := f.Children()
	return func(c *sim.Ctx) error {
		id := c.ID()
		st := &colorState{
			T:       stepsToSix(c.N()),
			isRoot:  f.Parent[id] == -1,
			hasKids: len(children[id]) > 0,
			col:     int(id),
		}
		parentLink := -1
		if !st.isRoot {
			parentLink = c.LinkOf(f.ParentEdge[id])
		}
		childLinks := make([]int, 0, len(children[id]))
		for _, k := range children[id] {
			childLinks = append(childLinks, c.LinkOf(f.ParentEdge[k]))
		}
		send := func() {
			p := cCol{Color: st.col, Root: st.isRoot}
			if parentLink != -1 {
				c.Send(parentLink, p)
			}
			for _, l := range childLinks {
				c.Send(l, p)
			}
		}
		send() // round 0: announce the initial color
		for {
			in := c.Tick()
			parentCol, parentRoot, childRed := readColors(in.Msgs, f.ParentEdge[id])
			st.update(in.Round, parentCol, parentRoot, childRed)
			if in.Round == st.lastRound() {
				c.SetResult(st.col)
				return nil
			}
			send()
		}
	}
}

// readColors splits a round's messages into the parent's announcement and
// the any-child-red summary.
func readColors(msgs []sim.Message, parentEdge int) (parentCol int, parentRoot, childRed bool) {
	for _, m := range msgs {
		p := m.Payload.(cCol)
		if m.EdgeID == parentEdge {
			parentCol, parentRoot = p.Color, p.Root
		} else if p.Color == Red {
			childRed = true
		}
	}
	return parentCol, parentRoot, childRed
}

// Distributed runs the protocol over f on sim.DefaultEngine and returns
// every vertex's final color. The result is a legal 3-coloring whose red
// vertices form an MIS containing every root (validated by the caller via
// IsLegalColoring / IsRootedMIS against ParentInts).
func Distributed(f *forest.Forest, seed int64) ([]int, sim.Metrics, error) {
	var res *sim.Result
	var err error
	if sim.DefaultEngine == sim.EngineStep {
		res, err = sim.RunStep(f.G, StepProgram(f), sim.WithSeed(seed))
	} else {
		res, err = sim.Run(f.G, Program(f), sim.WithSeed(seed))
	}
	if err != nil {
		return nil, sim.Metrics{}, fmt.Errorf("coloring: distributed: %w", err)
	}
	colors := make([]int, f.G.N())
	for v, r := range res.Results {
		if c, ok := r.(int); ok {
			colors[v] = c
		} else {
			colors[v] = -1 // crash-stopped before recording
		}
	}
	return colors, res.Metrics, nil
}

// ScheduleRounds returns the protocol's fixed round count for an n-vertex
// network (the last round is the first with no sends).
func ScheduleRounds(n int) int { return stepsToSix(n) + 9 + 1 }

// ParentInts converts a forest's parent pointers to this package's []int
// convention, for running the combinatorial validators on protocol output.
func ParentInts(f *forest.Forest) []int {
	parent := make([]int, len(f.Parent))
	for v, p := range f.Parent {
		parent[v] = int(p)
	}
	return parent
}
