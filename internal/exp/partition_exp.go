package exp

import (
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
	"repro/internal/partition"
)

// workloads for the partition experiments.
func partitionGraphs(n int) (map[string]*graph.Graph, error) {
	gs := make(map[string]*graph.Graph)
	var err error
	if gs["ring"], err = graph.Ring(n, 1); err != nil {
		return nil, err
	}
	side := int(math.Round(math.Sqrt(float64(n))))
	if gs["grid"], err = graph.Grid(side, (n+side-1)/side, 2); err != nil {
		return nil, err
	}
	if gs["random"], err = graph.RandomConnected(n, 2*n, 3); err != nil {
		return nil, err
	}
	return gs, nil
}

func sweepSizes(full bool) []int {
	if full {
		return []int{64, 256, 1024, 4096}
	}
	return []int{64, 256}
}

// sweepSizesCapped is for experiments whose per-point cost is dominated by
// many seeded repetitions or linear-time baselines; the scaling shape is
// already unambiguous at 1024.
func sweepSizesCapped(full bool) []int {
	if full {
		return []int{64, 256, 1024}
	}
	return []int{64, 256}
}

// runE1 reproduces the §3 guarantees: tree count ≤ √n, radius O(√n), time
// O(√n·log*n) and messages O(m + n·log n·log*n). The normalized columns
// should stay roughly flat as n grows.
func runE1(w io.Writer, full bool) error {
	t := &Table{
		Title: "E1 — deterministic partition (§3)",
		Header: []string{"graph", "n", "m", "trees", "trees/√n", "maxRadius", "radius/√n",
			"rounds", "rounds/(√n·log*n)", "msgs", "msgs/(m+n·lg n·log*n)"},
	}
	for _, n := range sweepSizes(full) {
		gs, err := partitionGraphs(n)
		if err != nil {
			return err
		}
		for _, name := range []string{"ring", "grid", "random"} {
			g := gs[name]
			f, met, _, err := partition.Deterministic(g, 1)
			if err != nil {
				return fmt.Errorf("E1 %s n=%d: %w", name, n, err)
			}
			st := f.Stats()
			mst, err := graph.Kruskal(g)
			if err != nil {
				return err
			}
			if err := f.SubtreeOfMST(mst); err != nil {
				return fmt.Errorf("E1 %s n=%d: %w", name, n, err)
			}
			ls := float64(logStar(n))
			msgBound := float64(g.M()) + float64(n)*math.Log2(float64(n))*ls
			t.Add(name, n, g.M(), st.Trees, float64(st.Trees)/sqrt(n),
				st.MaxRadius, float64(st.MaxRadius)/sqrt(n),
				met.Rounds, float64(met.Rounds)/(sqrt(n)*ls),
				met.Messages, float64(met.Messages)/msgBound)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  every forest verified as a subforest of the unique MST")
	return nil
}

// runE2 reproduces Theorem 1: expected tree count O(√n), radius ≤ 4√n,
// messages O(m + n·log*n).
func runE2(w io.Writer, full bool) error {
	t := &Table{
		Title: "E2 — randomized partition (§4, Theorem 1)",
		Header: []string{"graph", "n", "seeds", "avg trees", "trees/√n", "max radius",
			"radius bound 4√n", "avg msgs", "msgs/(m+n·log*n)", "avg rounds"},
	}
	seeds := int64(5)
	if full {
		seeds = 10
	}
	for _, n := range sweepSizesCapped(full) {
		gs, err := partitionGraphs(n)
		if err != nil {
			return err
		}
		for _, name := range []string{"ring", "grid", "random"} {
			g := gs[name]
			var trees, msgs, rounds, maxRad float64
			for s := int64(0); s < seeds; s++ {
				f, met, _, err := partition.Randomized(g, s)
				if err != nil {
					return fmt.Errorf("E2 %s n=%d seed=%d: %w", name, n, s, err)
				}
				st := f.Stats()
				trees += float64(st.Trees)
				msgs += float64(met.Messages)
				rounds += float64(met.Rounds)
				if float64(st.MaxRadius) > maxRad {
					maxRad = float64(st.MaxRadius)
				}
			}
			k := float64(seeds)
			msgBound := float64(g.M()) + float64(n)*float64(logStar(n))
			t.Add(name, n, seeds, trees/k, trees/k/sqrt(n), int(maxRad),
				4*partition.SqrtN(n), msgs/k, msgs/k/msgBound, rounds/k)
		}
	}
	t.Fprint(w)
	return nil
}

// runA2 compares Monte Carlo and Las Vegas randomized partitions.
func runA2(w io.Writer, full bool) error {
	t := &Table{
		Title:  "A2 — Monte Carlo vs Las Vegas randomized partition (§4 remark)",
		Header: []string{"n", "seeds", "mc avg trees", "lv avg trees", "lv bound 2√n", "restart rate", "lv extra rounds"},
	}
	seeds := int64(6)
	if full {
		seeds = 10
	}
	for _, n := range sweepSizesCapped(full) {
		g, err := graph.RandomConnected(n, 2*n, 3)
		if err != nil {
			return err
		}
		var mcTrees, lvTrees, restarts, extra float64
		for s := int64(0); s < seeds; s++ {
			fm, mm, _, err := partition.Randomized(g, s)
			if err != nil {
				return err
			}
			fl, ml, info, err := partition.RandomizedLasVegas(g, s)
			if err != nil {
				return err
			}
			mcTrees += float64(fm.Trees())
			lvTrees += float64(fl.Trees())
			restarts += float64(info.Restarts)
			extra += float64(ml.Rounds - mm.Rounds)
		}
		k := float64(seeds)
		t.Add(n, seeds, mcTrees/k, lvTrees/k, 2*partition.SqrtN(n), restarts/k, extra/k)
	}
	t.Fprint(w)
	return nil
}
