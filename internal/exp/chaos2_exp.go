package exp

// chaos2_exp.go — E13, the chaos-v2 degradation table: which protocols
// survive a network that is cut into components and healed, and stations
// that crash and later rejoin with reset state (crash-restart), alone and
// combined. Where E10 probes i.i.d. loss and channel jamming, E13 probes
// the structured adversary: scheduled partition windows (optionally
// recurring) and revival storms. Every cell is deterministic — the same
// plan produces the same outcome, drift, and fault counts on both engines
// — so the table doubles as a regression surface for the v2 rule families.

import (
	"fmt"
	"io"

	"repro/internal/coloring"
	"repro/internal/fault"
	"repro/internal/forest"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/sim"
	"repro/internal/size"
)

// runE13 produces the partition-heal / crash-restart degradation table.
func runE13(w io.Writer, full bool) error {
	t := &Table{
		Title: "E13 — chaos v2: protocol survival under partition-heal and crash-restart",
		Header: []string{"protocol", "fault plan", "outcome", "value", "baseline",
			"rounds", "part-drops", "restarted", "crashed"},
	}
	n := 48
	if full {
		n = 128
	}
	g, err := graph.RandomConnected(n, 2*n, 3)
	if err != nil {
		return err
	}
	protos := []struct {
		name string
		run  func() (int64, *sim.Metrics, error)
	}{
		{"census", func() (int64, *sim.Metrics, error) {
			res, err := size.Census(g, 1)
			if err != nil {
				return 0, nil, err
			}
			return int64(res.N), &res.Metrics, nil
		}},
		{"mst", func() (int64, *sim.Metrics, error) {
			res, err := mst.Multimedia(g, 1)
			if err != nil {
				return 0, nil, err
			}
			return int64(res.MST.Total), &res.Total, nil
		}},
		{"forest", func() (int64, *sim.Metrics, error) {
			f, _, met, err := forest.BFS(g, 1)
			if err != nil {
				return 0, nil, err
			}
			return int64(f.Trees()), &met, nil
		}},
		{"sum-rand-mb", func() (int64, *sim.Metrics, error) {
			res, err := globalfunc.Multimedia(g, 1, globalfunc.Sum, expInputs,
				globalfunc.VariantRandomized, globalfunc.StageMetcalfeBoggs)
			if err != nil {
				return 0, nil, err
			}
			return res.Value, &res.Total, nil
		}},
		{"coloring", func() (int64, *sim.Metrics, error) {
			f, _, bmet, err := forest.BFS(g, 1)
			if err != nil {
				return 0, nil, err
			}
			colors, cmet, err := coloring.Distributed(f, 1)
			if err != nil {
				return 0, nil, err
			}
			used := map[int]bool{}
			for _, c := range colors {
				used[c] = true
			}
			bmet.Add(&cmet)
			return int64(len(used)), &bmet, nil
		}},
	}
	plans := []struct{ name, dsl string }{
		{"none", ""},
		{"part early", "seed:7;partition:2@3-6"},
		{"part late", "seed:7;partition:2@12-14"},
		{"part /e18", "seed:7;partition:2@4-6/e18"},
		{"restart early", "seed:7;crash:2@2;restart:2@4"},
		{"restart mid", "seed:7;crash:2@3;restart:2@9"},
		{"restart storm", "seed:7;crash:2@3;restart:2@9;crash:5@4;restart:5@12;crash:9@5;restart:9@15"},
	}

	// Wedged runs livelock until the round budget ends; bound it so every
	// cell costs at most a few thousand rounds (same guard as E10).
	oldFaults, oldMax := sim.DefaultFaults, sim.DefaultMaxRounds
	sim.DefaultMaxRounds = 4000
	defer func() { sim.DefaultFaults, sim.DefaultMaxRounds = oldFaults, oldMax }()

	for _, proto := range protos {
		var baseline int64
		for _, p := range plans {
			plan, err := fault.Parse(p.dsl)
			if err != nil {
				return err
			}
			sim.DefaultFaults = plan
			value, met, err := proto.run()
			sim.DefaultFaults = oldFaults
			outcome := chaosOutcome(err)
			if p.name == "none" {
				if err != nil {
					return fmt.Errorf("E13 %s baseline: %w", proto.name, err)
				}
				baseline = value
			}
			if err != nil {
				t.Add(proto.name, p.name, outcome, "-", baseline, "-", "-", "-", "-")
				continue
			}
			t.Add(proto.name, p.name, outcome, value, baseline,
				met.Rounds, met.PartitionedDrop, met.Restarted, met.Crashed)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  outcome: ok = completed; wedged = round budget exhausted (livelock);")
	fmt.Fprintln(w, "  quiescent = step engine detected a dead network; failed = protocol-level error.")
	fmt.Fprintln(w, "  A restarted node re-runs its protocol from local round 0 with a fresh RNG")
	fmt.Fprintln(w, "  incarnation stream; survival therefore means the protocol tolerates a")
	fmt.Fprintln(w, "  mid-run joiner, not merely a lost station. The deterministic wavefront")
	fmt.Fprintln(w, "  protocols (census/mst/forest/coloring) assume fixed membership and wedge")
	fmt.Fprintln(w, "  under nearly every cut (mst's long multi-phase tail rides out a late")
	fmt.Fprintln(w, "  window); the randomized multimedia sum retries through partition windows")
	fmt.Fprintln(w, "  (drift when the cut overlaps collection, exact when the window misses")
	fmt.Fprintln(w, "  it) and absorbs a pre-protocol restart exactly.")
	return nil
}
