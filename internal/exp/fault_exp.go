package exp

// fault_exp.go — E10, the chaos-engine robustness experiment: how the
// module's protocols degrade when the fault engine (internal/fault) crashes
// stations, loses or delays messages, and jams the multiaccess channel.
// Two claims are probed:
//
//  1. The channel adversary cannot touch a pure point-to-point protocol:
//     the native step census stays exact at 10⁵ (and with -full 10⁶) nodes
//     under 100% jamming, and tolerates delay jitter with only a round
//     overhead.
//
//  2. Protocols that assume the fault-free model degrade legibly: each
//     (protocol, fault plan) cell reports whether the run completed, its
//     result drift from the fault-free baseline, and what it cost. Wedged
//     runs are cut off by a bounded round budget, quiescent (partitioned)
//     runs are detected by the step engine's liveness check.

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/fault"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/size"
)

// runE10 produces the chaos tables.
func runE10(w io.Writer, full bool) error {
	if err := runE10Census(w, full); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return runE10Degradation(w, full)
}

// runE10Census is the scale half: a jammed 10⁵–10⁶-node census must stay
// exact — the multiaccess adversary is powerless against the point-to-point
// network, and delay jitter costs rounds, not correctness.
func runE10Census(w io.Writer, full bool) error {
	t := &Table{
		Title:  "E10 — chaos engine, part 1: native step census under channel/link adversaries",
		Header: []string{"n", "fault plan", "n exact?", "rounds", "jammed slots", "delayed msgs", "messages"},
	}
	sizes := []int{100_000}
	if full {
		sizes = append(sizes, 1_000_000)
	}
	plans := []struct{ name, dsl string }{
		{"none", ""},
		{"jam 100%", "jam:1-"},
		{"jam 50%", "seed:3;jam:1-/p0.5"},
		{"delay 20% d1", "seed:3;delay:*@1-/d1/p0.2"},
	}
	for _, n := range sizes {
		g, err := graph.Ring(n, 1)
		if err != nil {
			return err
		}
		for _, p := range plans {
			plan, err := fault.Parse(p.dsl)
			if err != nil {
				return err
			}
			res, err := size.Census(g, 1, sim.WithFaults(plan))
			if err != nil {
				return fmt.Errorf("E10 census n=%d plan=%q: %w", n, p.name, err)
			}
			if res.N != n {
				return fmt.Errorf("E10 census n=%d plan=%q: counted %d", n, p.name, res.N)
			}
			t.Add(n, p.name, "yes", res.Metrics.Rounds, res.Metrics.SlotsJammed,
				res.Metrics.Delayed, res.Metrics.Messages)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  every faulted census counted n exactly")
	return nil
}

// chaosOutcome classifies a faulted run's error.
func chaosOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, sim.ErrMaxRounds):
		return "wedged"
	case strings.Contains(err.Error(), "quiescent"):
		return "quiescent"
	default:
		return "failed"
	}
}

// runE10Degradation is the degradation half: partition, census, and the
// randomized global sum under crash fractions, jam rates, and message loss.
func runE10Degradation(w io.Writer, full bool) error {
	t := &Table{
		Title: "E10 — chaos engine, part 2: protocol degradation vs fault plan",
		Header: []string{"protocol", "fault plan", "outcome", "value", "baseline",
			"rounds", "crashed", "lost", "jammed"},
	}
	n := 48
	if full {
		n = 256
	}
	g, err := graph.RandomConnected(n, 2*n, 3)
	if err != nil {
		return err
	}
	protos := []struct {
		name string
		run  func() (int64, *sim.Metrics, error)
	}{
		{"partition-det", func() (int64, *sim.Metrics, error) {
			f, met, _, err := partition.Deterministic(g, 1)
			if err != nil {
				return 0, nil, err
			}
			return int64(f.Trees()), met, nil
		}},
		{"census", func() (int64, *sim.Metrics, error) {
			res, err := size.Census(g, 1)
			if err != nil {
				return 0, nil, err
			}
			return int64(res.N), &res.Metrics, nil
		}},
		{"sum-rand-mb", func() (int64, *sim.Metrics, error) {
			res, err := globalfunc.Multimedia(g, 1, globalfunc.Sum, expInputs,
				globalfunc.VariantRandomized, globalfunc.StageMetcalfeBoggs)
			if err != nil {
				return 0, nil, err
			}
			return res.Value, &res.Total, nil
		}},
	}
	plans := []struct{ name, dsl string }{
		{"none", ""},
		{"crash 5%", "seed:7;crashfrac:0.05@1"},
		{"crash 15%", "seed:7;crashfrac:0.15@1"},
		{"jam 30%", "seed:7;jam:1-/p0.3"},
		{"loss 2%", "seed:7;drop:*@1-/p0.02"},
		{"crash5+jam30", "seed:7;crashfrac:0.05@1;jam:1-/p0.3"},
	}

	// Wedged runs livelock until the round budget ends; bound it so every
	// cell costs at most a few thousand rounds. Fault-free baselines on
	// these sizes finish far below the cap.
	oldFaults, oldMax := sim.DefaultFaults, sim.DefaultMaxRounds
	sim.DefaultMaxRounds = 4000
	defer func() { sim.DefaultFaults, sim.DefaultMaxRounds = oldFaults, oldMax }()

	for _, proto := range protos {
		var baseline int64
		for _, p := range plans {
			plan, err := fault.Parse(p.dsl)
			if err != nil {
				return err
			}
			sim.DefaultFaults = plan
			value, met, err := proto.run()
			sim.DefaultFaults = oldFaults
			outcome := chaosOutcome(err)
			if p.name == "none" {
				if err != nil {
					return fmt.Errorf("E10 %s baseline: %w", proto.name, err)
				}
				baseline = value
			}
			if err != nil {
				t.Add(proto.name, p.name, outcome, "-", baseline, "-", "-", "-", "-")
				continue
			}
			t.Add(proto.name, p.name, outcome, value, baseline,
				met.Rounds, met.Crashed, met.DroppedFault, met.SlotsJammed)
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  outcome: ok = completed; wedged = round budget exhausted (livelock);")
	fmt.Fprintln(w, "  quiescent = step engine detected a dead partition; value vs baseline = drift")
	return nil
}
