package exp

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/async"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/size"
)

// runE5 reproduces §6: the multimedia MST equals Kruskal's exactly and its
// time grows like √n·log n, against the pure point-to-point Borůvka
// baseline whose time grows linearly in n.
func runE5(w io.Writer, full bool) error {
	t := &Table{
		Title: "E5 — minimum spanning tree (§6)",
		Header: []string{"graph", "n", "m", "frags", "phases", "mm rounds",
			"mm/(√n·lg n)", "boruvka rounds", "mm msgs", "kruskal?"},
	}
	for _, n := range sweepSizesCapped(full) {
		gs, err := partitionGraphs(n)
		if err != nil {
			return err
		}
		for _, name := range []string{"grid", "random"} {
			g := gs[name]
			res, err := mst.Multimedia(g, 1)
			if err != nil {
				return fmt.Errorf("E5 %s n=%d: %w", name, n, err)
			}
			want, err := graph.Kruskal(g)
			if err != nil {
				return err
			}
			match := "yes"
			if !res.MST.Equal(want) {
				match = "NO"
			}
			bor, err := mst.Boruvka(g, 1)
			if err != nil {
				return err
			}
			if !bor.MST.Equal(want) {
				return fmt.Errorf("E5 %s n=%d: boruvka mismatch", name, n)
			}
			lg := 1.0
			for v := 2; v < n; v *= 2 {
				lg++
			}
			t.Add(name, n, g.M(), res.InitialFragments, res.Phases, res.Total.Rounds,
				float64(res.Total.Rounds)/(sqrt(n)*lg), bor.Total.Rounds,
				res.Total.Messages, match)
		}
	}
	t.Fprint(w)
	return nil
}

// runE6 reproduces Corollary 4: the channel synchronizer doubles messages
// at most and costs a constant number of slots per simulated round.
func runE6(w io.Writer, full bool) error {
	t := &Table{
		Title:  "E6 — channel synchronizer overhead (§7.1, Corollary 4)",
		Header: []string{"graph", "n", "rounds", "time (slots)", "slots/round", "alg msgs", "acks", "overhead"},
	}
	sizes := []int{16, 64}
	if full {
		sizes = []int{16, 64, 256, 1024}
	}
	for _, n := range sizes {
		gs, err := partitionGraphs(n)
		if err != nil {
			return err
		}
		for _, name := range []string{"ring", "grid"} {
			g := gs[name]
			results := make([]int64, g.N())
			var mu sync.Mutex
			met, err := async.Run(g, 7, 50*g.N()+500,
				async.SumDemo(func(v graph.NodeID) int64 { return int64(v) + 1 }, results, &mu))
			if err != nil {
				return fmt.Errorf("E6 %s n=%d: %w", name, n, err)
			}
			wantV := int64(g.N()) * int64(g.N()+1) / 2
			if results[0] != wantV {
				return fmt.Errorf("E6 %s n=%d: value %d, want %d", name, n, results[0], wantV)
			}
			t.Add(name, n, met.Rounds, met.Time, float64(met.Time)/float64(met.Rounds),
				met.AlgMsgs, met.AckMsgs, met.Overhead())
		}
	}
	t.Fprint(w)
	return nil
}

// runE7 reproduces §7.3 (exact deterministic size) and §7.4 (randomized
// estimation).
func runE7(w io.Writer, full bool) error {
	t := &Table{
		Title: "E7 — network size (§7.3 exact, §7.4 estimate)",
		Header: []string{"n", "exact n", "probe phases", "exact rounds", "rounds/√n",
			"est median", "est med ratio", "est [min,max] ratio"},
	}
	sizes := []int{30, 77, 256}
	if full {
		sizes = []int{30, 77, 256, 1000}
	}
	seeds := int64(9)
	if full {
		seeds = 51
	}
	for _, n := range sizes {
		g, err := graph.RandomConnected(n, 2*n, 3)
		if err != nil {
			return err
		}
		ex, err := size.Exact(g, 1, 0)
		if err != nil {
			return fmt.Errorf("E7 n=%d: %w", n, err)
		}
		if ex.N != n {
			return fmt.Errorf("E7: exact computed %d, want %d", ex.N, n)
		}
		var ratios []float64
		for s := int64(0); s < seeds; s++ {
			est, err := size.Estimate(g, s)
			if err != nil {
				return err
			}
			ratios = append(ratios, float64(est.Estimate)/float64(n))
		}
		sort.Float64s(ratios)
		med := ratios[len(ratios)/2]
		t.Add(n, ex.N, ex.Phases, ex.Metrics.Rounds, float64(ex.Metrics.Rounds)/sqrt(n),
			med*float64(n), med, fmt.Sprintf("[%.2f, %.2f]", ratios[0], ratios[len(ratios)-1]))
	}
	t.Fprint(w)
	return nil
}

// runE8 probes the Ω(min{d,√n}) lower bound (§5.2) on its witness topology,
// the ray graph: at fixed n, the point-to-point baseline tracks d while the
// multimedia algorithm tracks √n; the best achievable time (min of the two,
// both being legal multimedia algorithms) tracks min{d,√n} up to constants
// and log factors, matching the lower bound's shape.
func runE8(w io.Writer, full bool) error {
	t := &Table{
		Title: "E8 — ray graphs at (near-)fixed n (§5.2 lower bound shape)",
		Header: []string{"rays", "rayLen", "n", "d", "√n", "min{d,√n}",
			"p2p rounds", "mm rounds", "best", "best/min{d,√n}"},
	}
	type shape struct{ rays, rayLen int }
	shapes := []shape{{2, 128}, {8, 32}, {32, 8}, {128, 2}}
	if full {
		shapes = []shape{{2, 512}, {8, 128}, {32, 32}, {128, 8}, {512, 2}}
	}
	for _, sh := range shapes {
		g, err := graph.Ray(sh.rays, sh.rayLen, 1)
		if err != nil {
			return err
		}
		n := g.N()
		d := 2 * sh.rayLen
		if sh.rays == 1 {
			d = sh.rayLen
		}
		p2p, err := globalfunc.PointToPoint(g, 1, globalfunc.Sum, expInputs)
		if err != nil {
			return fmt.Errorf("E8 rays=%d: %w", sh.rays, err)
		}
		mm, err := globalfunc.Multimedia(g, 1, globalfunc.Sum, expInputs,
			globalfunc.VariantRandomized, globalfunc.StageMetcalfeBoggs)
		if err != nil {
			return fmt.Errorf("E8 rays=%d: %w", sh.rays, err)
		}
		best := p2p.Total.Rounds
		if mm.Total.Rounds < best {
			best = mm.Total.Rounds
		}
		minDS := float64(d)
		if s := sqrt(n); s < minDS {
			minDS = s
		}
		t.Add(sh.rays, sh.rayLen, n, d, sqrt(n), minDS,
			p2p.Total.Rounds, mm.Total.Rounds, best, float64(best)/minDS)
	}
	t.Fprint(w)
	_ = partition.SqrtN // keep the import stable if columns change
	return nil
}
