package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/coloring"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/sim"
)

// runE11 scales the newly-ported protocol suite to 10⁶-node rings on the
// native step engine — the sizes the goroutine engine cannot schedule.
//
// Part (a) runs stages 2–3 of the §6 MST (core scheduling on the channel,
// then barrier-synchronized merge phases) as native machines over a
// locally-constructed O(√n)-free partition: contiguous ring segments, each
// an MST subtree (every ring edge except the heaviest is an MST edge). A
// coarse fragment count keeps the slot-listening work — the part of §6
// every node must stay awake for — proportional to k·log n slots, while
// the convergecast phases ride the barrier's pulse-sleep, so a million-node
// merge costs O(n) machine steps per phase instead of O(n·radius). The
// result is verified edge-for-edge against sequential Kruskal.
//
// Part (b) runs the fully-distributed coloring pipeline — the BFS
// spanning-forest protocol (sleep/wake wavefront), then the O(log* n)-round
// Cole–Vishkin/GPS/MIS coloring — and verifies the combinatorial spec.
func runE11(w io.Writer, full bool) error {
	prevEngine := sim.DefaultEngine
	sim.DefaultEngine = sim.EngineStep
	defer func() { sim.DefaultEngine = prevEngine }()

	sizes := []int{10_000, 100_000}
	if full {
		sizes = []int{10_000, 100_000, 1_000_000}
	}

	ta := &Table{
		Title: "E11a — native §6 MST merge at scale (ring, precomputed segment partition)",
		Header: []string{"n", "fragments", "phases", "rounds", "messages", "slots",
			"wall ms", "kruskal-match?"},
	}
	for _, n := range sizes {
		g, err := graph.Ring(n, 1)
		if err != nil {
			return err
		}
		const k = 16
		f, err := mst.RingSegmentForest(g, k)
		if err != nil {
			return fmt.Errorf("E11a n=%d: %w", n, err)
		}
		t0 := time.Now()
		res, err := mst.MultimediaFromForest(g, 1, f, &sim.Metrics{})
		if err != nil {
			return fmt.Errorf("E11a n=%d: %w", n, err)
		}
		d := time.Since(t0)
		want, err := graph.Kruskal(g)
		if err != nil {
			return err
		}
		match := "yes"
		if !res.MST.Equal(want) {
			match = "NO"
		}
		ta.Add(n, res.InitialFragments, res.Phases, res.Total.Rounds, res.Total.Messages,
			res.Total.Slots(), float64(d.Milliseconds()), match)
	}
	ta.Fprint(w)
	fmt.Fprintln(w)

	tb := &Table{
		Title: "E11b — distributed BFS forest + 3-coloring/MIS at scale (ring)",
		Header: []string{"n", "bfs rounds", "color rounds", "messages", "wall ms",
			"spec ok?"},
	}
	for _, n := range sizes {
		g, err := graph.Ring(n, 1)
		if err != nil {
			return err
		}
		t0 := time.Now()
		f, total, bmet, err := forest.BFS(g, 1)
		if err != nil {
			return fmt.Errorf("E11b n=%d bfs: %w", n, err)
		}
		colors, cmet, err := coloring.Distributed(f, 1)
		if err != nil {
			return fmt.Errorf("E11b n=%d coloring: %w", n, err)
		}
		d := time.Since(t0)
		ok := "yes"
		parent := coloring.ParentInts(f)
		if total != n || !coloring.IsLegalColoring(parent, colors) || !coloring.IsRootedMIS(parent, colors) {
			ok = "NO"
		}
		tb.Add(n, bmet.Rounds, cmet.Rounds, bmet.Messages+cmet.Messages,
			float64(d.Milliseconds()), ok)
	}
	tb.Fprint(w)
	return nil
}
