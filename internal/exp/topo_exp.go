package exp

// topo_exp.go — E12, the implicit-topology and scenario-diversity
// experiment added with the Topology refactor. Part (a) demonstrates the
// point of the implicit forms: the topology's own footprint is O(1), so
// the step engine's memory is bounded by per-node protocol state and a
// 10⁷-node census fits where the materialized graph alone would cost
// gigabytes. Part (b) opens the heavy-tailed workloads (PAPERS.md,
// arXiv:0908.0976): the same protocols on Barabási–Albert scale-free and
// Watts–Strogatz small-world networks, where the degree distribution—not
// the diameter—shapes the cost.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/size"
)

func runE12(w io.Writer, full bool) error {
	prevEngine := sim.DefaultEngine
	sim.DefaultEngine = sim.EngineStep
	defer func() { sim.DefaultEngine = prevEngine }()

	ta := &Table{
		Title:  "E12a — implicit vs materialized ring: topology memory and census wall time",
		Header: []string{"spec", "form", "topo bytes", "bytes/node", "census n", "rounds", "wall ms"},
	}
	sizes := []int{100_000, 1_000_000}
	if full {
		sizes = append(sizes, 10_000_000)
	}
	for _, n := range sizes {
		spec := fmt.Sprintf("ring:%d", n)
		forms := []string{spec, "mat:" + spec}
		if n > 1_000_000 {
			// The point of the experiment: past 10⁶ only the implicit form
			// is worth materializing at all.
			forms = forms[:1]
		}
		for _, s := range forms {
			top, bytes, err := graph.TopoHeapCost(func() (graph.Topology, error) {
				return graph.ParseSpec(s, 1)
			})
			if err != nil {
				return fmt.Errorf("E12a %s: %w", s, err)
			}
			form := "implicit"
			if _, ok := top.(*graph.Graph); ok {
				form = "materialized"
			}
			t0 := time.Now()
			res, err := size.Census(top, 1)
			if err != nil {
				return fmt.Errorf("E12a %s census: %w", s, err)
			}
			if res.N != n {
				return fmt.Errorf("E12a %s: counted %d of %d", s, res.N, n)
			}
			ta.Add(spec, form, bytes, float64(bytes)/float64(n), res.N,
				res.Metrics.Rounds, time.Since(t0).Milliseconds())
		}
	}
	ta.Fprint(w)

	tb := &Table{
		Title: "E12b — heavy-tailed workloads: census and BFS forest on scale-free / small-world graphs",
		Header: []string{"graph", "n", "m", "max-deg", "census rounds", "census msgs",
			"forest trees", "forest rounds", "wall ms"},
	}
	n := 20_000
	if full {
		n = 200_000
	}
	cases := []struct{ name, spec string }{
		{"ba(attach=3)", fmt.Sprintf("ba:%d,3", n)},
		{"ws(k=6,beta=0.1)", fmt.Sprintf("ws:%d,6,0.1", n)},
		{"ring (baseline)", fmt.Sprintf("ring:%d", n)},
	}
	for _, c := range cases {
		top, err := graph.ParseSpec(c.spec, 1)
		if err != nil {
			return fmt.Errorf("E12b %s: %w", c.name, err)
		}
		maxDeg := 0
		for v := 0; v < top.N(); v++ {
			if d := top.Degree(graph.NodeID(v)); d > maxDeg {
				maxDeg = d
			}
		}
		t0 := time.Now()
		cres, err := size.Census(top, 1)
		if err != nil {
			return fmt.Errorf("E12b %s census: %w", c.name, err)
		}
		if cres.N != top.N() {
			return fmt.Errorf("E12b %s: counted %d of %d", c.name, cres.N, top.N())
		}
		f, total, fmet, err := forest.BFS(top, 1)
		if err != nil {
			return fmt.Errorf("E12b %s forest: %w", c.name, err)
		}
		if total != top.N() {
			return fmt.Errorf("E12b %s: forest counted %d of %d", c.name, total, top.N())
		}
		st := f.Stats()
		tb.Add(c.name, top.N(), top.M(), maxDeg, cres.Metrics.Rounds, cres.Metrics.Messages,
			st.Trees, fmet.Rounds, time.Since(t0).Milliseconds())
	}
	tb.Fprint(w)
	return nil
}
