// Package exp defines the experiment suite that reproduces every
// complexity claim of the paper as an empirical scaling table (the paper is
// theory-only, so its theorems play the role of its evaluation section; see
// DESIGN.md §5 for the experiment index). Each experiment prints the table
// recorded in EXPERIMENTS.md; cmd/mmexp regenerates them all.
package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Experiment is one reproducible table.
type Experiment struct {
	ID    string
	Name  string
	Claim string // the paper claim being checked
	Run   func(w io.Writer, full bool) error
}

// All returns the experiment registry in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "deterministic partition", Claim: "§3: O(√n) trees of radius O(√n) in O(√n·log*n) time, O(m+n·log n·log*n) messages", Run: runE1},
		{ID: "E2", Name: "randomized partition", Claim: "§4 Thm 1: E[#trees]=O(√n), radius ≤ 4√n, O(m+n·log*n) messages; Las Vegas restart rate < 1/2", Run: runE2},
		{ID: "E3", Name: "global sensitive functions", Claim: "§5: multimedia Õ(√n) beats point-to-point Ω(d) and broadcast Ω(n)", Run: runE3},
		{ID: "E4", Name: "balanced variant", Claim: "§5.1: balance point √(n·log n/log*n) improves the deterministic time", Run: runE4},
		{ID: "E5", Name: "minimum spanning tree", Claim: "§6: MST in O(√n·log n) time, exact equality with Kruskal", Run: runE5},
		{ID: "E6", Name: "channel synchronizer", Claim: "§7.1 Cor. 4: ≤2× messages, constant time factor per round", Run: runE6},
		{ID: "E7", Name: "network size", Claim: "§7.3 exact n; §7.4 estimate within a constant factor", Run: runE7},
		{ID: "E8", Name: "ray-graph lower bound", Claim: "§5.2 Thm 2: best achievable time tracks min{d,√n}", Run: runE8},
		{ID: "E9", Name: "step-engine scaling", Claim: "engineering: step engine ≡ goroutine engine transcript-for-transcript, and runs 10⁶-node censuses", Run: runE9},
		{ID: "E10", Name: "chaos: faults and degradation", Claim: "engineering: jammed 10⁵-node census stays exact; crash/jam/loss degradation is legible and deterministic", Run: runE10},
		{ID: "E11", Name: "protocol suite at scale", Claim: "engineering: native MST merge and distributed coloring complete on 10⁶-node rings (step engine)", Run: runE11},
		{ID: "E12", Name: "implicit topologies and heavy tails", Claim: "engineering: O(1)-memory topologies carry a 10⁷-node census; scale-free/small-world workloads run the same protocols", Run: runE12},
		{ID: "E13", Name: "chaos v2: partition-heal and crash-restart", Claim: "engineering: scheduled partitions, recurring windows, and crash-restart degrade protocols legibly and deterministically", Run: runE13},
		{ID: "A2", Name: "ablation: Monte Carlo vs Las Vegas", Claim: "§4 remark: verification adds 8√n slots per attempt, restart rate < 1/2", Run: runA2},
		{ID: "A3", Name: "ablation: global-stage protocols", Claim: "§5.1: Capetanakis O(k·log n) slots vs Metcalfe–Boggs O(k) expected", Run: runA3},
		{ID: "A4", Name: "ablation: MWOE edge testing", Claim: "design choice: sequential testing keeps messages at O(m+n·log n·log*n); parallel trades messages for rounds", Run: runA4},
	}
}

// Table is a fixed-width text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// logStar returns the base-2 iterated logarithm.
func logStar(n int) int {
	s := 0
	v := float64(n)
	for v > 1 {
		v = math.Log2(v)
		s++
		if s > 8 {
			break
		}
	}
	return s
}

// sqrt is a float shorthand.
func sqrt(n int) float64 { return math.Sqrt(float64(n)) }
