package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/size"
)

// runE9 characterizes the two execution engines. Part (a) runs the same
// protocol — the point-to-point census — on the goroutine engine and as a
// native step machine, asserting identical transcripts and reporting the
// wall-clock ratio. Part (b) sweeps the native census alone up to 10⁶-node
// rings and grids (full mode), the scale the goroutine engine cannot reach:
// its cost is nodes × rounds channel handoffs, while the step engine's
// sleep/wake activation makes the same run cost O(n + m) machine steps.
func runE9(w io.Writer, full bool) error {
	ones := func(graph.NodeID) int64 { return 1 }

	ta := &Table{
		Title: "E9a — engine comparison: p2p census, identical protocol on both engines",
		Header: []string{"graph", "n", "rounds", "messages", "goroutine ms",
			"step ms", "speedup", "same transcript?"},
	}
	type shape struct {
		name string
		mk   func() (*graph.Graph, error)
	}
	cmp := []shape{
		{"ring", func() (*graph.Graph, error) { return graph.Ring(1024, 1) }},
		{"grid", func() (*graph.Graph, error) { return graph.Grid(48, 48, 1) }},
	}
	if full {
		cmp = []shape{
			{"ring", func() (*graph.Graph, error) { return graph.Ring(4096, 1) }},
			{"grid", func() (*graph.Graph, error) { return graph.Grid(128, 128, 1) }},
		}
	}
	for _, sh := range cmp {
		g, err := sh.mk()
		if err != nil {
			return err
		}
		// Pin the baseline leg to the goroutine engine: mmexp -engine step
		// retargets sim.DefaultEngine, and a baseline that silently ran on
		// the step adapter would make this comparison measure nothing.
		prevEngine := sim.DefaultEngine
		sim.DefaultEngine = sim.EngineGoroutine
		t0 := time.Now()
		gor, err := globalfunc.PointToPoint(g, 1, globalfunc.Sum, ones)
		sim.DefaultEngine = prevEngine
		if err != nil {
			return fmt.Errorf("E9a %s goroutine: %w", sh.name, err)
		}
		dg := time.Since(t0)
		t0 = time.Now()
		nat, err := globalfunc.PointToPointStep(g, 1, globalfunc.Sum, ones)
		if err != nil {
			return fmt.Errorf("E9a %s step: %w", sh.name, err)
		}
		ds := time.Since(t0)
		same := "yes"
		if gor.Value != nat.Value || gor.Total != nat.Total {
			same = "NO"
		}
		ta.Add(sh.name, g.N(), nat.Total.Rounds, nat.Total.Messages,
			float64(dg.Milliseconds()), float64(ds.Milliseconds()),
			float64(dg.Nanoseconds())/float64(ds.Nanoseconds()), same)
	}
	ta.Fprint(w)
	fmt.Fprintln(w)

	tb := &Table{
		Title: "E9b — native step engine scaling: census (network size) to 10^7 nodes",
		Header: []string{"graph", "n", "rounds", "messages", "wall ms",
			"Mnode-rounds/s", "count ok?"},
	}
	sizes := []int{10_000, 100_000}
	if full {
		sizes = []int{10_000, 100_000, 1_000_000, 10_000_000}
	}
	for _, n := range sizes {
		for _, name := range []string{"ring", "grid"} {
			// Past 10⁶ nodes a materialized topology is itself the memory
			// bottleneck (≈100 B/node of adjacency before any protocol state),
			// so the big rows run on the implicit forms: same neighborhoods,
			// O(1) topology footprint, adjacency computed per step.
			var (
				g   graph.Topology
				err error
			)
			switch {
			case name == "ring" && n >= 1_000_000:
				g, err = graph.ImplicitRing(n, 1)
			case name == "ring":
				g, err = graph.Ring(n, 1)
			case n >= 1_000_000:
				side := sqrtSide(n)
				g, err = graph.ImplicitGrid(side, side, 1)
			default:
				side := sqrtSide(n)
				g, err = graph.Grid(side, side, 1)
			}
			if err != nil {
				return err
			}
			t0 := time.Now()
			res, err := size.Census(g, 1)
			if err != nil {
				return fmt.Errorf("E9b %s n=%d: %w", name, g.N(), err)
			}
			d := time.Since(t0)
			ok := "yes"
			if res.N != g.N() {
				ok = "NO"
			}
			// Node-rounds the goroutine engine would have scheduled for the
			// same run; the step engine's sleep/wake activation skips almost
			// all of them, which is the scaling headroom being measured.
			nodeRounds := float64(g.N()) * float64(res.Metrics.Rounds)
			tb.Add(name, g.N(), res.Metrics.Rounds, res.Metrics.Messages,
				float64(d.Milliseconds()), nodeRounds/1e6/d.Seconds(), ok)
		}
	}
	tb.Fprint(w)
	return nil
}

// sqrtSide returns the side of the largest square grid with at most n nodes.
func sqrtSide(n int) int {
	side := 1
	for (side+1)*(side+1) <= n {
		side++
	}
	return side
}
