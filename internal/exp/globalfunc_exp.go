package exp

import (
	"fmt"
	"io"

	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/resolve"
	"repro/internal/sim"
)

func expInputs(v graph.NodeID) int64 { return (int64(v)*2654435761 + 17) % 10_000 }

// runE3 is the headline comparison: time to compute a global sensitive
// function (sum) on rings, where d = n/2 maximizes the point-to-point
// baseline's Ω(d) cost while the broadcast baseline pays Ω(n). The
// multimedia algorithm's Õ(√n) should win for large n.
func runE3(w io.Writer, full bool) error {
	t := &Table{
		Title: "E3 — global sensitive functions on rings (§5): time in rounds",
		Header: []string{"n", "d", "√n", "mm rand+MB", "mm det+Cap", "p2p (Θ(d))",
			"broadcast (Θ(n))", "mm/√n", "p2p/d", "bcast/n"},
	}
	sizes := []int{64, 256}
	if full {
		sizes = []int{64, 256, 1024, 2048, 4096}
	}
	for _, n := range sizes {
		g, err := graph.Ring(n, 1)
		if err != nil {
			return err
		}
		mmR, err := globalfunc.Multimedia(g, 1, globalfunc.Sum, expInputs,
			globalfunc.VariantRandomized, globalfunc.StageMetcalfeBoggs)
		if err != nil {
			return fmt.Errorf("E3 n=%d mm-rand: %w", n, err)
		}
		mmD, err := globalfunc.Multimedia(g, 1, globalfunc.Sum, expInputs,
			globalfunc.VariantDeterministic, globalfunc.StageCapetanakis)
		if err != nil {
			return fmt.Errorf("E3 n=%d mm-det: %w", n, err)
		}
		p2p, err := globalfunc.PointToPoint(g, 1, globalfunc.Sum, expInputs)
		if err != nil {
			return fmt.Errorf("E3 n=%d p2p: %w", n, err)
		}
		bc, err := globalfunc.BroadcastOnly(g, 1, globalfunc.Sum, expInputs, globalfunc.StageCapetanakis)
		if err != nil {
			return fmt.Errorf("E3 n=%d bcast: %w", n, err)
		}
		want := globalfunc.Reference(g, globalfunc.Sum, expInputs)
		for _, r := range []*globalfunc.Result{mmR, mmD, p2p, bc} {
			if r.Value != want {
				return fmt.Errorf("E3 n=%d: wrong value %d (want %d)", n, r.Value, want)
			}
		}
		d := n / 2
		t.Add(n, d, partition.SqrtN(n), mmR.Total.Rounds, mmD.Total.Rounds,
			p2p.Total.Rounds, bc.Total.Rounds,
			float64(mmR.Total.Rounds)/sqrt(n), float64(p2p.Total.Rounds)/float64(d),
			float64(bc.Total.Rounds)/float64(n))
	}
	t.Fprint(w)
	fmt.Fprintln(w, "  all four algorithms returned the reference value on every row")
	return nil
}

// runE4 compares the standard √n balance against the §5.1 improved balance
// for the fully deterministic pipeline.
func runE4(w io.Writer, full bool) error {
	t := &Table{
		Title: "E4 — §5.1 improved balance (deterministic pipeline, random graphs)",
		Header: []string{"n", "std trees", "std rounds", "balanced trees", "balanced rounds",
			"balanced/std"},
	}
	sizes := []int{64, 256}
	if full {
		sizes = []int{64, 256, 1024, 4096}
	}
	for _, n := range sizes {
		g, err := graph.RandomConnected(n, 2*n, 3)
		if err != nil {
			return err
		}
		std, err := globalfunc.Multimedia(g, 1, globalfunc.Sum, expInputs,
			globalfunc.VariantDeterministic, globalfunc.StageCapetanakis)
		if err != nil {
			return err
		}
		bal, err := globalfunc.Multimedia(g, 1, globalfunc.Sum, expInputs,
			globalfunc.VariantBalanced, globalfunc.StageCapetanakis)
		if err != nil {
			return err
		}
		t.Add(n, std.Trees, std.Total.Rounds, bal.Trees, bal.Total.Rounds,
			float64(bal.Total.Rounds)/float64(std.Total.Rounds))
	}
	t.Fprint(w)
	return nil
}

// runA3 compares the two global-stage scheduling protocols on identical
// contender sets.
func runA3(w io.Writer, full bool) error {
	t := &Table{
		Title:  "A3 — channel scheduling: Capetanakis vs Metcalfe–Boggs slots (n=256 id space)",
		Header: []string{"contenders k", "capetanakis slots", "cap/k", "mb slots (avg)", "mb/k"},
	}
	const n = 256
	g, err := graph.Ring(n, 1)
	if err != nil {
		return err
	}
	ks := []int{1, 4, 16, 64}
	if full {
		ks = []int{1, 4, 16, 64, 256}
	}
	for _, k := range ks {
		contend := func(id int) bool { return id%(n/k) == 0 }
		res, err := sim.Run(g, func(c *sim.Ctx) error {
			id := int(c.ID())
			resolve.Capetanakis(c, sim.Input{}, n, contend(id), id, nil)
			return nil
		})
		if err != nil {
			return err
		}
		capSlots := res.Metrics.Rounds - 1
		var mbTotal int
		seeds := int64(5)
		for s := int64(0); s < seeds; s++ {
			res, err := sim.Run(g, func(c *sim.Ctx) error {
				id := int(c.ID())
				resolve.MetcalfeBoggs(c, sim.Input{}, k, contend(id), id, nil, 0)
				return nil
			}, sim.WithSeed(s))
			if err != nil {
				return err
			}
			mbTotal += res.Metrics.Rounds - 1
		}
		mb := float64(mbTotal) / float64(seeds)
		t.Add(k, capSlots, float64(capSlots)/float64(k), mb, mb/float64(k))
	}
	t.Fprint(w)
	return nil
}
