package exp

import (
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/partition"
)

// runA4 quantifies the DESIGN.md ablation A4: sequential (GHS-style)
// minimum-outgoing-edge testing charges each rejected edge once overall,
// keeping messages at O(m + n·log n·log*n), while parallel testing re-tests
// accepted edges every phase (O(m·log n) messages) in exchange for fewer
// rounds per phase.
func runA4(w io.Writer, full bool) error {
	t := &Table{
		Title: "A4 — MWOE search: sequential (paper) vs parallel edge testing",
		Header: []string{"graph", "n", "m", "seq rounds", "seq msgs",
			"par rounds", "par msgs", "msgs ratio", "rounds ratio"},
	}
	for _, n := range sweepSizesCapped(full) {
		gs, err := partitionGraphs(n)
		if err != nil {
			return err
		}
		for _, name := range []string{"ring", "random"} {
			g := gs[name]
			fs, ms, _, err := partition.Deterministic(g, 1)
			if err != nil {
				return fmt.Errorf("A4 seq %s n=%d: %w", name, n, err)
			}
			fp, mp, _, err := partition.DeterministicParallelMWOE(g, 1)
			if err != nil {
				return fmt.Errorf("A4 par %s n=%d: %w", name, n, err)
			}
			// Both must produce valid MST-subforest partitions.
			mst, err := graph.Kruskal(g)
			if err != nil {
				return err
			}
			if err := fs.SubtreeOfMST(mst); err != nil {
				return err
			}
			if err := fp.SubtreeOfMST(mst); err != nil {
				return err
			}
			t.Add(name, n, g.M(), ms.Rounds, ms.Messages, mp.Rounds, mp.Messages,
				float64(mp.Messages)/float64(ms.Messages),
				float64(mp.Rounds)/float64(ms.Rounds))
		}
	}
	t.Fprint(w)
	return nil
}
