package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, false); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("%s: output lacks its id header:\n%s", e.ID, out)
			}
			if strings.Count(out, "\n") < 4 {
				t.Errorf("%s: suspiciously short output:\n%s", e.ID, out)
			}
		})
	}
}

func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Name == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d experiments registered", len(seen))
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "long-col"}}
	tab.Add(1, 2.5)
	tab.Add("xyz", "w")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a", "long-col", "2.50", "xyz"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLogStar(t *testing.T) {
	cases := []struct{ n, want int }{{2, 1}, {4, 2}, {16, 3}, {65536, 4}}
	for _, c := range cases {
		if got := logStar(c.n); got != c.want {
			t.Errorf("logStar(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
