package analysis

// analyzers_test.go drives every analyzer over its fixture package with the
// want-comment harness, and smoke-checks the real-module loader. Each
// fixture contains at least one violation that the analyzer must flag (the
// test fails if a want goes unmatched) and at least one conforming variant
// that it must not.

import (
	"path/filepath"
	"testing"
)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestMapOrder(t *testing.T)  { RunWant(t, fixtureRoot(t), "maporder", MapOrder) }
func TestDetSource(t *testing.T) { RunWant(t, fixtureRoot(t), "detsource", DetSource) }
func TestNoAlloc(t *testing.T)   { RunWant(t, fixtureRoot(t), "noalloc", NoAlloc) }
func TestCtxEscape(t *testing.T) { RunWant(t, fixtureRoot(t), "ctxescape", CtxEscape) }
func TestAtomicMix(t *testing.T) { RunWant(t, fixtureRoot(t), "atomicmix", AtomicMix) }

// TestDetSourceOutOfScope: the same sources in a package outside the
// enforcement scope produce no findings.
func TestDetSourceScope(t *testing.T) {
	pkg, err := LoadFixture(fixtureRoot(t), "outofscope")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{DetSource})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("detsource flagged an out-of-scope package: %v", diags)
	}
}

// TestLoadPatterns: the go list loader type-checks a real module package,
// test files included.
func TestLoadPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list and type-checks a real package")
	}
	pkgs, err := LoadPatterns("../..", "./internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var sawTest bool
	for _, p := range pkgs {
		if p.Types == nil || len(p.Files) == 0 {
			t.Fatalf("package %s loaded without types or files", p.Path)
		}
		for _, f := range p.Files {
			if isTestFile(&Pass{Fset: p.Fset}, f) {
				sawTest = true
			}
		}
	}
	if !sawTest {
		t.Error("loader skipped the package's test files")
	}
}
