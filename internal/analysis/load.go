package analysis

// load.go turns source into the type-checked Packages the analyzers
// consume. Two loaders share the checking machinery:
//
//   - LoadPatterns enumerates real module packages with `go list -json` and
//     type-checks each (test files included) through the stdlib source
//     importer — the cmd/mmlint path.
//   - LoadFixture type-checks one GOPATH-style fixture package under a
//     testdata/src root, resolving fixture-local imports against that root
//     before falling back to the source importer — the analysistest path.
//
// Everything here is stdlib: no module proxy, no vendored x/tools.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// LoadPatterns loads and type-checks the packages matching the go package
// patterns (e.g. "./..."), rooted at dir. In-package test files are checked
// with their package; external _test packages are checked separately.
func LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		// The package proper plus its in-package tests, as one unit.
		files := append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
		if len(files) > 0 {
			p, err := checkFiles(fset, imp, lp.Dir, lp.ImportPath, files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
		// The external test package, if any.
		if len(lp.XTestGoFiles) > 0 {
			p, err := checkFiles(fset, imp, lp.Dir, lp.ImportPath+"_test", lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// fixtureImporter resolves imports against a testdata/src root first (so
// fixtures can import sibling fixture packages by bare path), then falls
// back to the shared source importer for the standard library.
type fixtureImporter struct {
	root  string // the testdata/src directory
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fi.root, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, err := checkFiles(fi.fset, fi, dir, path, goFilesIn(dir))
		if err != nil {
			return nil, err
		}
		fi.cache[path] = p.Types
		return p.Types, nil
	}
	return fi.std.Import(path)
}

// LoadFixture loads the fixture package at <root>/<path> (plus nested
// fixture imports). root is a testdata/src-style directory.
func LoadFixture(root, path string) (*Package, error) {
	fset := token.NewFileSet()
	fi := &fixtureImporter{
		root:  root,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*types.Package),
	}
	dir := filepath.Join(root, path)
	files := goFilesIn(dir)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files under %s", dir)
	}
	return checkFiles(fset, fi, dir, path, files)
}

func goFilesIn(dir string) []string {
	ents, _ := os.ReadDir(dir)
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	return files
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, imp types.Importer, dir, importPath string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	var errs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    sizes,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, errs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Sizes: sizes,
	}, nil
}
