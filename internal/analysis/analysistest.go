package analysis

// analysistest.go is the fixture test harness, a stdlib miniature of
// golang.org/x/tools/go/analysis/analysistest: RunWant loads a fixture
// package from a testdata/src-style tree, runs one analyzer over it, and
// matches the diagnostics against `// want "regexp"` comments in the
// fixture source, failing on any unmatched diagnostic or unfulfilled
// expectation. Several expectations may share a line:
//
//	for k := range m { // want "unordered" "second finding"
//
// Regexps are matched against the diagnostic message; expectations and
// findings pair up by (file, line).

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expectation is one `want` pattern at a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// RunWant runs one analyzer over the fixture package at <root>/<path> and
// checks its diagnostics against the fixture's want comments.
func RunWant(t *testing.T, root, path string, a *Analyzer) {
	t.Helper()
	pkg, err := LoadFixture(root, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !claimWant(wants, d.Pos, d.Message) {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts every `// want "re" ...` comment of the package.
func parseWants(pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitWantPatterns(text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitWantPatterns splits `"a" "b"` / backquoted forms into raw patterns.
func splitWantPatterns(s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		var pat string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return append(pats, s) // unterminated; surface as a bad pattern
			}
			if p, err := strconv.Unquote(s[:end+1]); err == nil {
				pat = p
			} else {
				pat = s[1:end]
			}
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(pats, s)
			}
			pat = s[1 : 1+end]
			s = s[end+2:]
		default:
			return append(pats, s)
		}
		pats = append(pats, pat)
		s = strings.TrimSpace(s)
	}
	return pats
}

// claimWant marks the first unmatched expectation at the diagnostic's line
// whose pattern matches.
func claimWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
