// Package analysis is the repo's static-analysis suite: five analyzers
// that turn the determinism and zero-alloc contracts — today enforced only
// at runtime by the difftest/fuzz/golden/alloc gates — into build-time
// rejections. It is a stdlib-only miniature of golang.org/x/tools/go/analysis
// (the container has no module proxy, so x/tools cannot be vendored): the
// Analyzer/Pass/Diagnostic shapes mirror that API so the suite can be
// rebased onto the real framework if the dependency ever lands.
//
// The analyzers:
//
//	maporder  — unordered `for range` over maps in any package, unless the
//	            body is a recognized commutative idiom or the loop carries
//	            //mmlint:commutative <reason>.
//	detsource — nondeterminism sources (time.Now feeding logic, global
//	            math/rand, GOMAXPROCS/NumCPU/env branching) in the
//	            transcript-affecting packages; //mmlint:nondet <reason>
//	            suppresses a deliberate perf-only use.
//	noalloc   — functions annotated //mmlint:noalloc are rejected for
//	            escaping closures, interface boxing, fmt.*, map/slice
//	            literals, make/new, goroutine launches, and append forms
//	            that grow fresh slices.
//	ctxescape — *sim.StepCtx / *sim.Ctx values escaping their owning node:
//	            globals, channel sends, goroutine captures, pointer
//	            collections, and post-construction field aliasing.
//	atomicmix — struct fields accessed both through sync/atomic pointer
//	            calls and by plain loads/stores.
//
// Annotation grammar (line comment on the flagged line or the line above;
// reasons are mandatory):
//
//	//mmlint:commutative <reason>
//	//mmlint:nondet <reason>
//	//mmlint:noalloc            (on a function's doc comment; marks the contract)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, run independently over each package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Sizes     types.Sizes

	report func(Diagnostic)

	directives map[int][]directive // per-file-line annotations, built lazily
	dirFset    bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //mmlint:<verb> <reason> comment.
type directive struct {
	verb   string
	reason string
}

// buildDirectives indexes every //mmlint: comment by file and line. A
// directive written on its own line annotates the next line, matching the
// //go: and //nolint conventions; a trailing directive annotates its own
// line.
func (p *Pass) buildDirectives() {
	if p.directives != nil {
		return
	}
	p.directives = make(map[int][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//mmlint:")
				if !ok {
					continue
				}
				verb, reason, _ := strings.Cut(text, " ")
				pos := p.Fset.Position(c.Pos())
				d := directive{verb: verb, reason: strings.TrimSpace(reason)}
				// Key directives by the base offset of the file plus line so
				// lines of different files never collide.
				base := p.Fset.File(c.Pos()).Base()
				p.directives[base<<24|pos.Line] = append(p.directives[base<<24|pos.Line], d)
			}
		}
	}
}

// directiveAt returns the first //mmlint:<verb> directive annotating pos:
// on the same line, or on the line immediately above.
func (p *Pass) directiveAt(pos token.Pos, verb string) (directive, bool) {
	p.buildDirectives()
	tf := p.Fset.File(pos)
	if tf == nil {
		return directive{}, false
	}
	line := p.Fset.Position(pos).Line
	base := tf.Base()
	for _, l := range [2]int{line, line - 1} {
		for _, d := range p.directives[base<<24|l] {
			if d.verb == verb {
				return d, true
			}
		}
	}
	return directive{}, false
}

// funcDirective reports whether a function declaration's doc comment (or the
// line above its func keyword) carries //mmlint:<verb>.
func funcDirective(fn *ast.FuncDecl, verb string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if text, ok := strings.CutPrefix(c.Text, "//mmlint:"); ok {
				v, _, _ := strings.Cut(text, " ")
				if v == verb {
					return true
				}
			}
		}
	}
	return false
}

// pkgPathIn reports whether path is pkg itself or a package under it.
func pkgPathIn(path string, roots []string) bool {
	for _, r := range roots {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}

// isPkgFunc reports whether the object used at e resolves to the named
// package-level function of the named package (import-path match).
func isPkgFunc(info *types.Info, e ast.Expr, pkgPath string, names ...string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	if obj.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return len(names) == 0
}

// RunAnalyzers executes every analyzer over every package and returns the
// findings sorted by position — the shared driver of cmd/mmlint and the
// analyzer tests.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Sizes:     pkg.Sizes,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s over %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, DetSource, NoAlloc, CtxEscape, AtomicMix}
}
