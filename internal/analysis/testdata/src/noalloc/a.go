// Package noalloc is the noalloc analyzer's fixture.
package noalloc

import "fmt"

type payload interface{}

type box struct {
	buf   []int
	cb    func()
	sink  payload
	count int
}

//mmlint:noalloc
func violations(b *box, n int) {
	m := make(map[int]int) // want "make in a .*noalloc.* function allocates"
	_ = m
	p := new(box) // want "new in a .*noalloc.* function allocates"
	_ = p
	s := []int{1, 2, 3} // want "slice literal"
	_ = s
	mm := map[int]int{1: 2} // want "map literal"
	_ = mm
	fmt.Println(n)            // want `fmt\.Println`
	go b.run()                // want "go statement"
	fresh := append(b.buf, n) // want "append result bound to a fresh variable"
	_ = fresh
	b.cb = func() { b.count++ } // want "closure captures"
}

//mmlint:noalloc
func boxing(b *box, v [4]int64) {
	b.sink = v      // want `value of type \[4\]int64 boxes into payload`
	b.sink = &box{} // want "address-taken composite literal"
}

var shared = &box{}

//mmlint:noalloc
func legal(b *box, n int, p payload) bool {
	b.buf = append(b.buf, n) // ok: plain = write-back reuse idiom
	b.count += n
	b.sink = p          // ok: interface to interface
	b.sink = shared     // ok: pointer-shaped boxing
	b.sink = struct{}{} // ok: zero-size boxing
	b.sink = 7          // ok: constants box into static data
	b.sink = nil
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // ok: cold path under panic
	}
	defer func() { b.count-- }() // ok: open-coded defer closure
	f := func(x int) int { return x * 2 }
	return f(n) == 2*n // ok: capture-free literal
}

//mmlint:noalloc
func recoverCold(b *box) {
	defer func() {
		if r := recover(); r != nil {
			b.sink = fmt.Errorf("boom: %v", r) // ok: post-panic path is cold
		} else {
			fmt.Println(b.count) // want `fmt\.Println`
		}
	}()
	if recover() != nil {
		fmt.Println(b.count) // ok: bare recover guard is cold too
	}
}

func unannotatedStaysFree() map[int]int {
	return make(map[int]int) // ok: no contract declared
}

func (b *box) run() {}
