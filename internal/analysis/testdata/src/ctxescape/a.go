// Package ctxescape is the ctxescape analyzer's fixture.
package ctxescape

import "sim"

var leaked *sim.StepCtx // want "package-level leaked holds a .sim context"

var ctxCh = make(chan *sim.StepCtx)

type machine struct {
	c     *sim.StepCtx
	other *sim.Ctx
}

type registry struct {
	all []*sim.StepCtx
}

func construct(c *sim.StepCtx) *machine {
	return &machine{c: c} // ok: composite-literal construction is the pattern
}

func escapes(c *sim.StepCtx, g *sim.Ctx, m *machine, r *registry) {
	leaked = c   // want "stored into package-level leaked"
	ctxCh <- c   // want "sent over a channel"
	m.c = c      // want "re-aliased into field c after construction"
	m.other = g  // want "re-aliased into field other"
	r.all[0] = c // want "stored into a collection element"
	go func() {
		c.Sleep() // want "captured by a goroutine"
	}()
	go handle(c) // want "passed to a goroutine"
}

func collections(a, b *sim.StepCtx) {
	_ = []*sim.StepCtx{a, b} // want "collection of .sim contexts"
}

func handle(c *sim.StepCtx) {}

func legal(c *sim.StepCtx) {
	local := c // ok: locals within the node's own call tree
	local.Sleep()
	handle(c) // ok: plain call, same goroutine
	go func() {
		// ok: goroutine that touches no context
	}()
}
