// Package sim is a miniature of repro/internal/sim for the ctxescape
// fixture: the analyzer matches contexts by (package name, type name), so
// this stand-in exercises exactly the code paths the real package would.
package sim

// StepCtx mimics the step engine's per-node context.
type StepCtx struct {
	ID int
}

// Ctx mimics the goroutine engine's per-node context.
type Ctx struct {
	ID int
}

// Sleep is a representative method.
func (c *StepCtx) Sleep() {}
