// Package maporder is the maporder analyzer's fixture.
package maporder

import "sort"

func bad(m map[int]string, out []string) []string {
	for _, v := range m { // want `iteration over map map\[int\]string is unordered`
		out = append(out, v+"!") // not a pure harvest: v is transformed
	}
	for k, v := range m { // want "unordered"
		if k > 0 {
			out = append(out, v)
		}
	}
	return out
}

func missingReason(m map[int]bool) int {
	n := 0
	//mmlint:commutative
	for k := range m { // want "needs a reason"
		if m[k] {
			n++
		}
	}
	return n
}

func harvest(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // ok: single-statement append harvest
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func count(m map[int]string) int {
	n := 0
	for range m { // ok: counter increment commutes
		n++
	}
	return n
}

func sum(m map[int]int) int {
	n := 0
	for _, v := range m { // ok: integer accumulation commutes
		n += v
	}
	return n
}

func drain(m map[int]string) {
	for k := range m { // ok: delete-drain idiom
		delete(m, k)
	}
}

func annotated(m map[int]func()) {
	//mmlint:commutative every callback is invoked exactly once and they share no state
	for _, fn := range m {
		fn()
	}
	for _, fn := range m { //mmlint:commutative trailing form also accepted
		fn()
	}
}

func slicesStayLegal(s []int) int {
	n := 0
	for _, v := range s { // ok: slices are ordered
		n += v
	}
	return n
}
