// Package outofscope proves detsource's scoping: identical nondeterminism
// sources outside the transcript-affecting packages are not findings.
package outofscope

import (
	"runtime"
	"time"
)

func timing() (int, time.Time) {
	return runtime.NumCPU(), time.Now()
}
