// Package detsource is the detsource analyzer's fixture. Its import path
// is inside the analyzer's enforcement scope.
package detsource

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

func clock() int64 {
	t0 := time.Now()   // want `time\.Now: wall-clock time`
	_ = time.Since(t0) // want `time\.Since: wall-clock time`
	return t0.Unix()
}

func globalRand() int {
	if rand.Float64() < 0.5 { // want `global math/rand`
		return rand.Intn(10) // want `global math/rand`
	}
	return 0
}

func seededRandStaysLegal(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: explicit seed
	return rng.Intn(10)
}

func machineShape() int {
	n := runtime.GOMAXPROCS(0)      // want `processor-count branching`
	n += runtime.NumCPU()           // want `processor-count branching`
	if os.Getenv("MM_FAST") != "" { // want `environment branching`
		n++
	}
	return n
}

func annotated() int {
	//mmlint:nondet sizes a worker pool; transcripts are worker-count-invariant
	return runtime.GOMAXPROCS(0)
}

func annotationNeedsReason() int {
	//mmlint:nondet
	return runtime.NumCPU() // want "needs a reason"
}
