// Package atomicmix is the atomicmix analyzer's fixture.
package atomicmix

import "sync/atomic"

type gate struct {
	seq    int64 // accessed both atomically and plainly: the bug
	clean  int64 // only ever atomic
	normal int64 // only ever plain
	typed  atomic.Int64
}

func (g *gate) bump() {
	atomic.AddInt64(&g.seq, 1)
	atomic.AddInt64(&g.clean, 1)
	g.typed.Add(1)
}

func (g *gate) read() int64 {
	if g.seq > 0 { // want "plain access to field seq"
		return g.seq // want "plain access to field seq"
	}
	return atomic.LoadInt64(&g.clean) + g.normal + g.typed.Load()
}

func (g *gate) reset() {
	g.seq = 0 // want "plain access to field seq"
	g.normal = 0
	atomic.StoreInt64(&g.clean, 0)
}
