package analysis

// detsource bans sources of run-to-run nondeterminism inside the
// transcript-affecting packages: the engines, the fault injector, and the
// protocol implementations. Everything those packages compute must be a
// pure function of (topology, seed, plan) — that is the invariant the whole
// difftest/golden apparatus asserts — so wall-clock reads, the global
// math/rand generator (shared, lock-protected, seeded from runtime
// entropy), and branching on processor count or environment variables are
// all rejected at build time.
//
// Seeded generators stay legal: rand.New(rand.NewSource(seed)) constructs
// the per-node and per-rule RNGs every engine derives from the master seed,
// so only the package-level convenience functions of math/rand (and the
// always-global math/rand/v2 top-level functions) are flagged.
//
// A deliberate, transcript-invariant use — the step engine sizing its
// default worker pool from GOMAXPROCS, or the gate sizing a spin budget —
// is suppressed with //mmlint:nondet <reason>; the reason is mandatory.

import (
	"go/ast"
)

// DetSource is the nondeterminism-source analyzer.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "bans time.Now/Since, global math/rand, and GOMAXPROCS/env branching in transcript-affecting packages unless annotated //mmlint:nondet <reason>",
	Run:  runDetSource,
}

// detScope is the set of package-path roots detsource enforces. Engine,
// fault, and every protocol package are transcript-affecting; cmd/,
// examples/, and internal/exp only time and report, and test files are
// excluded wholesale (timeouts and bench clocks are fine).
//
// repro/internal/obs is deliberately ABSENT: it is the observability layer
// behind the sim.Recorder seam and is wall-clock-timed by nature (span
// timestamps, phase histograms). The recorder contract — observation never
// alters transcripts, enforced by the root obs_equiv_test.go — is what
// keeps its nondeterminism out of transcripts, not this analyzer; its
// time.Now call sites carry //mmlint:nondet annotations as documentation.
// The engines themselves stay in scope and never read the clock: all
// timing lives behind the Recorder interface.
var detScope = []string{
	"repro/internal/sim",
	"repro/internal/fault",
	"repro/internal/graph",
	"repro/internal/mst",
	"repro/internal/forest",
	"repro/internal/coloring",
	"repro/internal/snapshot",
	"repro/internal/resolve",
	"repro/internal/globalfunc",
	"repro/internal/partition",
	"repro/internal/size",
	"repro/internal/async",
	"repro/internal/difftest",
	// Fixture scopes (analyzer tests and cmd/mmlint's end-to-end fixture).
	"detsource",
	"repro/cmd/mmlint/testdata/src/knownbad",
}

// mathRandConstructors are the math/rand functions that build explicitly
// seeded generators — the sanctioned pattern.
var mathRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDetSource(pass *Pass) error {
	if !pkgPathIn(pass.Pkg.Path(), detScope) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var msg string
			switch {
			case isPkgFunc(pass.TypesInfo, sel, "time", "Now", "Since", "Until"):
				msg = "wall-clock time in a transcript-affecting package; transcripts must be a function of (topology, seed, plan) only"
			case isPkgFunc(pass.TypesInfo, sel, "math/rand") && !mathRandConstructors[sel.Sel.Name]:
				msg = "global math/rand is seeded from runtime entropy and shared across goroutines; derive a *rand.Rand from an explicit seed instead"
			case isPkgFunc(pass.TypesInfo, sel, "math/rand/v2") && !mathRandConstructors[sel.Sel.Name]:
				msg = "math/rand/v2 top-level functions are globally seeded; derive a generator from an explicit seed instead"
			case isPkgFunc(pass.TypesInfo, sel, "runtime", "GOMAXPROCS", "NumCPU"):
				msg = "processor-count branching makes behavior machine-dependent"
			case isPkgFunc(pass.TypesInfo, sel, "os", "Getenv", "LookupEnv"):
				msg = "environment branching makes behavior machine-dependent"
			default:
				return true
			}
			if d, ok := pass.directiveAt(sel.Pos(), "nondet"); ok {
				if d.reason == "" {
					pass.Reportf(sel.Pos(), "//mmlint:nondet needs a reason: say why this cannot affect transcripts")
				}
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s: %s (suppress a transcript-invariant use with //mmlint:nondet <reason>)", exprPkgName(sel), sel.Sel.Name, msg)
			return true
		})
	}
	return nil
}

// exprPkgName returns the selector's package qualifier for the message.
func exprPkgName(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

// isTestFile reports whether f is a _test.go file.
func isTestFile(pass *Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}
