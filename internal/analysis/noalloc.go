package analysis

// noalloc turns the runtime allocation gate (sim/alloc_test.go's
// differential AllocsPerRun assertion) into a compile-time one: a function
// whose doc comment carries //mmlint:noalloc declares itself part of the
// steady-state zero-allocation diet, and the analyzer rejects every
// construct in its body that heap-allocates:
//
//	make / new / map and slice composite literals
//	fmt.* calls (every fmt entry point allocates)
//	go statements (a goroutine is an allocation, and hot paths must not spawn)
//	function literals that capture enclosing variables (the closure context
//	  escapes to the heap), except as the immediate operand of defer, which
//	  the compiler open-codes on the stack
//	interface boxing: a concrete value reaching an interface slot, unless
//	  the value is zero-sized, pointer-shaped, untyped nil, or a constant
//	  (all of which box without heap allocation)
//	append whose result is not written back with plain `=` — the engine's
//	  reuse idiom appends into a buffer that survives the round; appending
//	  into a freshly declared slice is steady-state growth
//
// Cold failure paths stay writable: anything nested inside the argument of
// panic, or of (*StepCtx).Failf / testing fatal helpers, is exempt — those
// run at most once per run, after which there is no steady state to keep
// allocation-free. The body of a recover guard (`if r := recover(); r !=
// nil` or `if recover() != nil`) is cold for the same reason: it only runs
// after a panic has already ended the steady state.
//
// The check is intraprocedural by design: calls into non-annotated
// functions are trusted (annotate the callee if it is on the hot path), and
// stack-vs-heap subtleties the compiler's escape analysis decides (method
// values, non-escaping captures) are left to the runtime gate. The two
// gates are complementary: this one is exhaustive over the annotated
// bodies, that one measures ground truth.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc is the zero-allocation-contract analyzer.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "rejects heap-allocating constructs inside functions annotated //mmlint:noalloc",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcDirective(fn, "noalloc") {
				continue
			}
			checkNoAlloc(pass, fn)
		}
	}
	return nil
}

// noAllocWalker carries the per-function state of the check.
type noAllocWalker struct {
	pass *Pass
	fn   *ast.FuncDecl
	// funcLits currently being walked through, innermost last; identifiers
	// declared outside the innermost literal but inside the annotated
	// function are captures.
	lits []*ast.FuncLit
}

func checkNoAlloc(pass *Pass, fn *ast.FuncDecl) {
	w := &noAllocWalker{pass: pass, fn: fn}
	w.stmts(fn.Body.List)
}

func (w *noAllocWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *noAllocWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(s.X, nil)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.GoStmt:
		w.pass.Reportf(s.Pos(), "go statement in a //mmlint:noalloc function: launching a goroutine allocates")
	case *ast.DeferStmt:
		// A func literal directly under defer is open-coded on the stack;
		// its body still has to obey the contract.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
			w.stmts(lit.Body.List)
			w.lits = w.lits[:len(w.lits)-1]
			for _, a := range s.Call.Args {
				w.expr(a, nil)
			}
			return
		}
		w.expr(s.Call, nil)
	case *ast.ReturnStmt:
		sig, _ := w.pass.TypesInfo.Defs[w.fn.Name].(*types.Func)
		for i, r := range s.Results {
			var want types.Type
			if sig != nil {
				res := sig.Type().(*types.Signature).Results()
				if res.Len() == len(s.Results) {
					want = res.At(i).Type()
				}
			}
			w.expr(r, want)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond, nil)
		if !w.recoverGuard(s) {
			w.stmt(s.Body)
		}
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond, nil)
		}
		w.stmt(s.Post)
		w.stmt(s.Body)
	case *ast.RangeStmt:
		w.expr(s.X, nil)
		w.stmt(s.Body)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag, nil)
		}
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, nil)
		}
		w.stmts(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		w.stmts(s.Body)
	case *ast.SendStmt:
		w.expr(s.Chan, nil)
		ch, ok := w.pass.TypesInfo.Types[s.Chan]
		var want types.Type
		if ok {
			if c, ok := ch.Type.Underlying().(*types.Chan); ok {
				want = c.Elem()
			}
		}
		w.expr(s.Value, want)
	case *ast.IncDecStmt:
		w.expr(s.X, nil)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					var want types.Type
					if obj := w.pass.TypesInfo.Defs[vs.Names[min(i, len(vs.Names)-1)]]; obj != nil {
						want = obj.Type()
					}
					w.expr(v, want)
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Conservative: walk any statement kind not modeled above.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, nil)
				return false
			}
			return true
		})
	}
}

// assign checks one assignment, threading the destination types into the
// boxing check and enforcing the append write-back idiom.
func (w *noAllocWalker) assign(s *ast.AssignStmt) {
	for _, l := range s.Lhs {
		w.expr(l, nil)
	}
	for i, r := range s.Rhs {
		if call, ok := r.(*ast.CallExpr); ok && isBuiltin(w.pass, call.Fun, "append") {
			if s.Tok != token.ASSIGN {
				w.pass.Reportf(call.Pos(), "append result bound to a fresh variable in a //mmlint:noalloc function: growing a new slice allocates every round; append into a reused buffer with plain `=` write-back")
			}
			w.expr(call, nil)
			continue
		}
		var want types.Type
		if len(s.Lhs) == len(s.Rhs) && s.Tok == token.ASSIGN {
			if tv, ok := w.pass.TypesInfo.Types[s.Lhs[i]]; ok {
				want = tv.Type
			}
		}
		w.expr(r, want)
	}
}

// expr checks one expression; want, when non-nil, is the type of the slot
// the expression's value flows into (for the boxing check).
func (w *noAllocWalker) expr(e ast.Expr, want types.Type) {
	if e == nil {
		return
	}
	w.boxes(e, want)
	switch e := e.(type) {
	case *ast.CallExpr:
		w.call(e)
	case *ast.CompositeLit:
		if tv, ok := w.pass.TypesInfo.Types[e]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				w.pass.Reportf(e.Pos(), "map literal in a //mmlint:noalloc function allocates")
			case *types.Slice:
				w.pass.Reportf(e.Pos(), "slice literal in a //mmlint:noalloc function allocates")
			case *types.Struct, *types.Array:
				w.structLit(e)
				return
			}
		}
		for _, el := range e.Elts {
			w.expr(el, nil)
		}
	case *ast.FuncLit:
		if w.captures(e) {
			w.pass.Reportf(e.Pos(), "closure captures enclosing variables in a //mmlint:noalloc function: the capture context escapes to the heap (only the immediate operand of defer is stack-allocated)")
		}
		w.lits = append(w.lits, e)
		w.stmts(e.Body.List)
		w.lits = w.lits[:len(w.lits)-1]
	case *ast.UnaryExpr:
		if lit, ok := e.X.(*ast.CompositeLit); ok && e.Op == token.AND {
			w.pass.Reportf(e.Pos(), "address-taken composite literal in a //mmlint:noalloc function: &T{...} that escapes heap-allocates; reuse a pooled value instead")
			w.structLit(lit)
			return
		}
		w.expr(e.X, nil)
	case *ast.BinaryExpr:
		w.expr(e.X, nil)
		w.expr(e.Y, nil)
	case *ast.ParenExpr:
		w.expr(e.X, want)
	case *ast.StarExpr:
		w.expr(e.X, nil)
	case *ast.IndexExpr:
		w.expr(e.X, nil)
		w.expr(e.Index, nil)
	case *ast.SliceExpr:
		w.expr(e.X, nil)
		w.expr(e.Low, nil)
		w.expr(e.High, nil)
		w.expr(e.Max, nil)
	case *ast.SelectorExpr:
		w.expr(e.X, nil)
	case *ast.TypeAssertExpr:
		w.expr(e.X, nil)
	case *ast.KeyValueExpr:
		w.expr(e.Value, nil)
	}
}

// structLit walks a struct or array literal, typing each field slot for the
// boxing check.
func (w *noAllocWalker) structLit(lit *ast.CompositeLit) {
	tv := w.pass.TypesInfo.Types[lit]
	st, _ := tv.Type.Underlying().(*types.Struct)
	for i, el := range lit.Elts {
		var want types.Type
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if st != nil {
				if id, ok := kv.Key.(*ast.Ident); ok {
					for f := 0; f < st.NumFields(); f++ {
						if st.Field(f).Name() == id.Name {
							want = st.Field(f).Type()
							break
						}
					}
				}
			}
		} else if st != nil && i < st.NumFields() {
			want = st.Field(i).Type()
		} else if arr, ok := tv.Type.Underlying().(*types.Array); ok {
			want = arr.Elem()
		}
		w.expr(val, want)
	}
}

// coldCalls are terminating helpers whose argument trees are exempt: they
// run at most once per run, so allocation there is not steady-state. Only
// methods qualify (StepCtx.Failf, testing.T's fatal family) — package
// functions like fmt.Errorf construct values that flow onward.
var coldCalls = map[string]bool{"Failf": true, "Fatalf": true, "Fatal": true}

// call checks one call expression.
func (w *noAllocWalker) call(call *ast.CallExpr) {
	// panic(...) and fail/fatal helpers: cold by definition; skip the whole
	// argument tree (the fmt.Sprintf inside a violation panic is fine).
	if isBuiltin(w.pass, call.Fun, "panic") {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && coldCalls[sel.Sel.Name] {
		if obj, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return
			}
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.pass.Reportf(call.Pos(), "make in a //mmlint:noalloc function allocates")
				return
			case "new":
				w.pass.Reportf(call.Pos(), "new in a //mmlint:noalloc function allocates")
				return
			case "append":
				// Reached only for an append whose result is discarded or
				// nested; the write-back idiom is handled in assign.
				for _, a := range call.Args {
					w.expr(a, nil)
				}
				return
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			w.pass.Reportf(call.Pos(), "fmt.%s in a //mmlint:noalloc function allocates (outside a panic argument)", obj.Name())
			return // the call is already condemned; don't re-flag its arguments
		}
	}
	w.expr(call.Fun, nil)
	sig := w.callSignature(call)
	for i, a := range call.Args {
		var want types.Type
		if sig != nil {
			want = paramType(sig, i, call)
		}
		w.expr(a, want)
	}
}

// callSignature returns the callee's signature, or nil for builtins,
// conversions, and type expressions.
func (w *noAllocWalker) callSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type of parameter slot i, unrolling variadics.
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		if call.Ellipsis != token.NoPos {
			return params.At(params.Len() - 1).Type()
		}
		if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return nil
}

// boxes reports e when its value boxes into an interface slot with a heap
// allocation: want is an interface, e's concrete type is not, and the value
// is not one of the allocation-free cases (nil, constants, zero-sized
// values, pointer-shaped values).
func (w *noAllocWalker) boxes(e ast.Expr, want types.Type) {
	if want == nil {
		return
	}
	if _, ok := want.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if _, ok := t.Underlying().(*types.Interface); ok {
		return // interface-to-interface carries the existing box
	}
	if tv.Value != nil {
		return // constants box into read-only static data
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if w.pass.Sizes != nil && w.pass.Sizes.Sizeof(t) == 0 {
		return // zero-size values share the runtime's zero base
	}
	if pointerShaped(t) {
		return // the data word holds the pointer directly
	}
	w.pass.Reportf(e.Pos(), "value of type %s boxes into %s in a //mmlint:noalloc function: the conversion heap-allocates (pass a pointer, or keep the slot concrete)", types.TypeString(t, types.RelativeTo(w.pass.Pkg)), types.TypeString(want, types.RelativeTo(w.pass.Pkg)))
}

// pointerShaped reports whether values of t are a single pointer word,
// which interface conversion stores without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// recoverGuard reports whether s is `if r := recover(); r != nil` or
// `if recover() != nil` — a body that only runs after a panic, which has
// already ended the steady state, so allocation there is cold.
func (w *noAllocWalker) recoverGuard(s *ast.IfStmt) bool {
	bin, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	var x ast.Expr
	switch {
	case w.isNil(bin.Y):
		x = bin.X
	case w.isNil(bin.X):
		x = bin.Y
	default:
		return false
	}
	if call, ok := x.(*ast.CallExpr); ok {
		return isBuiltin(w.pass, call.Fun, "recover")
	}
	id, ok := x.(*ast.Ident)
	if !ok || s.Init == nil {
		return false
	}
	as, ok := s.Init.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok || lhs.Name != id.Name {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	return ok && isBuiltin(w.pass, call.Fun, "recover")
}

// isNil reports whether e is the predeclared nil.
func (w *noAllocWalker) isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil" && w.pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
}

// captures reports whether lit references any identifier declared in the
// enclosing function (or an enclosing literal) — the condition under which
// the compiler materializes a closure context.
func (w *noAllocWalker) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := w.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		pos := v.Pos()
		// Declared inside the annotated function but outside this literal.
		if pos >= w.fn.Pos() && pos < w.fn.End() && (pos < lit.Pos() || pos > lit.End()) {
			found = true
		}
		return true
	})
	return found
}
