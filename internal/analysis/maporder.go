package analysis

// maporder flags `for range` statements over map values: Go randomizes map
// iteration order, so any such loop whose body's effect is order-sensitive
// is a transcript-nondeterminism bug of exactly the class the difftest
// suite exists to catch — but only catches when a seed happens to expose
// it. The analyzer is deliberately strict: a loop is accepted only when its
// body is a recognized commutative idiom, or when it carries an explicit
// //mmlint:commutative <reason> annotation (a reason is mandatory — a bare
// annotation is itself a finding).
//
// Recognized commutative idioms (no annotation needed):
//
//	for k := range m { keys = append(keys, k) }   // harvest-then-sort
//	for k := range m { delete(m, k) }             // drain
//	for _, v := range m { n++ } / { n += v }      // integer accumulation
//
// The idiom check covers only single-statement bodies on purpose: a loop
// doing more than one thing per iteration is past the point where
// commutativity is obvious, and must say why it is safe.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder is the unordered-map-iteration analyzer.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags range-over-map loops whose iteration-order sensitivity is not discharged by a commutative idiom or an //mmlint:commutative annotation",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if d, ok := pass.directiveAt(rng.Pos(), "commutative"); ok {
				if d.reason == "" {
					pass.Reportf(rng.Pos(), "//mmlint:commutative needs a reason: say why this map iteration is order-insensitive")
				}
				return true
			}
			if commutativeBody(pass, rng) {
				return true
			}
			pass.Reportf(rng.Pos(), "iteration over map %s is unordered; sort the keys first, or annotate the loop //mmlint:commutative <reason>", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil
}

// commutativeBody reports whether the loop body is one of the recognized
// order-insensitive single-statement idioms.
func commutativeBody(pass *Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	switch s := rng.Body.List[0].(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		// n += v: integer accumulation commutes (float addition does not).
		if s.Tok == token.ADD_ASSIGN {
			tv, ok := pass.TypesInfo.Types[s.Lhs[0]]
			if !ok || tv.Type == nil {
				return false
			}
			b, ok := tv.Type.Underlying().(*types.Basic)
			return ok && b.Info()&types.IsInteger != 0
		}
		// s = append(s, ...): harvesting keys or values into a slice that
		// the caller is then free (and expected) to sort.
		if s.Tok != token.ASSIGN {
			return false
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) < 2 {
			return false
		}
		if types.ExprString(s.Lhs[0]) != types.ExprString(call.Args[0]) {
			return false
		}
		// Only the identity harvest is accepted — appending exactly the
		// range's key or value variable, which the caller is expected to
		// sort. Appending derived expressions hides the order dependence.
		for _, a := range call.Args[1:] {
			id, ok := a.(*ast.Ident)
			if !ok || !isRangeVar(rng, id) {
				return false
			}
		}
		return true
	case *ast.IncDecStmt:
		return true // n++ / n-- over any key set commutes
	case *ast.ExprStmt:
		// delete(m, k): draining the ranged map.
		call, ok := s.X.(*ast.CallExpr)
		return ok && isBuiltin(pass, call.Fun, "delete")
	}
	return false
}

// isRangeVar reports whether id is the loop's key or value variable.
func isRangeVar(rng *ast.RangeStmt, id *ast.Ident) bool {
	for _, v := range [2]ast.Expr{rng.Key, rng.Value} {
		if vid, ok := v.(*ast.Ident); ok && vid.Name == id.Name {
			return true
		}
	}
	return false
}

// isBuiltin reports whether e names the given predeclared builtin.
func isBuiltin(pass *Pass, e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
