package analysis

// atomicmix flags struct fields accessed both through sync/atomic
// pointer-style calls (atomic.LoadInt32(&s.f), atomic.AddInt64(&s.f), ...)
// and by plain loads or stores in the same package — the exact bug class
// behind the PR 4 gate races: a field that is atomic on one path and plain
// on another has no happens-before edge between the two, and the racy
// interleavings only surface under contention the tests may never generate.
//
// The fix is one of: make every access atomic, or migrate the field to the
// typed sync/atomic wrappers (atomic.Int32, atomic.Bool, ...), whose method
// set makes plain access impossible — which is why gate.go's sense word and
// arrival counter are immune by construction. Fields of the typed wrappers
// are therefore out of scope by design; so are accesses in _test files of
// the field's package (tests may read counters of a quiesced engine).
//
// The analyzer is package-local (matching the framework: no cross-package
// facts): a field must be atomically accessed and plainly accessed within
// the same package to be flagged, which is also the only configuration the
// engine's reviewable invariants allow — exported fields atomically poked
// from another package would be flagged where the atomic call lives.

import (
	"go/ast"
	"go/types"
)

// AtomicMix is the mixed-atomic-access analyzer.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags struct fields accessed both via sync/atomic calls and by plain load/store",
	Run:  runAtomicMix,
}

// atomicPointerFuncs: the sync/atomic entry points taking &x.f.
var atomicPointerFuncs = map[string]bool{
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"StoreUintptr": true, "StorePointer": true,
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
}

// fieldAccess is one occurrence of a struct field selection.
type fieldAccess struct {
	pos    ast.Node
	atomic bool
}

func runAtomicMix(pass *Pass) error {
	accesses := make(map[*types.Var][]fieldAccess)

	// Pass 1: record the fields whose addresses feed sync/atomic calls.
	atomicArgs := make(map[ast.Expr]bool) // the &x.f argument expressions
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !atomicPointerFuncs[sel.Sel.Name] {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, a := range call.Args {
				if u, ok := a.(*ast.UnaryExpr); ok {
					if fsel, ok := u.X.(*ast.SelectorExpr); ok {
						if fv := fieldOf(pass, fsel); fv != nil {
							atomicArgs[fsel] = true
							accesses[fv] = append(accesses[fv], fieldAccess{pos: fsel, atomic: true})
						}
					}
				}
			}
			return true
		})
	}
	if len(accesses) == 0 {
		return nil
	}

	// Pass 2: every other selection of those fields is a plain access.
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fsel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[fsel] {
				return true
			}
			fv := fieldOf(pass, fsel)
			if fv == nil {
				return true
			}
			if _, tracked := accesses[fv]; tracked {
				accesses[fv] = append(accesses[fv], fieldAccess{pos: fsel, atomic: false})
			}
			return true
		})
	}

	for fv, list := range accesses { //mmlint:commutative diagnostics are position-sorted by the driver
		hasPlain := false
		for _, a := range list {
			if !a.atomic {
				hasPlain = true
				break
			}
		}
		if !hasPlain {
			continue
		}
		owner := fieldOwner(fv)
		for _, a := range list {
			if !a.atomic {
				pass.Reportf(a.pos.Pos(), "plain access to field %s (package %s), which is also accessed via sync/atomic: every access must be atomic, or the field migrated to the typed sync/atomic wrappers", fv.Name(), owner)
			}
		}
	}
	return nil
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// fieldOwner names the struct type declaring the field, best-effort.
func fieldOwner(fv *types.Var) string {
	if fv.Pkg() != nil {
		return fv.Pkg().Name()
	}
	return "?"
}
