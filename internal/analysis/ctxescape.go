package analysis

// ctxescape guards the ownership contract of the engines' per-node
// contexts. A *sim.StepCtx (or goroutine-engine *sim.Ctx) is the engine's
// handle for exactly one node: the sanctioned pattern is a StepProgram (or
// Program) capturing its own c — typically into the machine it constructs
// via a composite literal — and every method being called only from that
// node's Step. The ROADMAP's state-compaction tier will turn StepCtx
// storage into shard-local pooled arenas, after which any context reference
// that outlives its round observes recycled state; this analyzer makes the
// sharing patterns that would break illegal now:
//
//	assignment of a ctx into a package-level variable
//	sending a ctx over a channel
//	a ctx captured by (or passed to) the function of a go statement
//	storing ctxs into pointer collections ([]*StepCtx, map[...]*StepCtx
//	  elements) — cross-node aggregation is the engine's job, not a protocol's
//	post-construction field aliasing: x.f = ctx outside a composite literal
//
// Composite-literal construction (&machine{c: c}) stays legal: the machine
// is the node's own state and lives exactly as long as the node.
//
// Matching is by name — a pointer to a named type StepCtx or Ctx declared
// in a package named "sim" — so the analyzer keeps working across the
// planned refactors without importing the engine.

import (
	"go/ast"
	"go/types"
)

// CtxEscape is the context-ownership analyzer.
var CtxEscape = &Analyzer{
	Name: "ctxescape",
	Doc:  "flags *sim.StepCtx/*sim.Ctx values escaping their owning node: globals, channel sends, goroutine captures, pointer collections, field re-aliasing",
	Run:  runCtxEscape,
}

// isCtxPtr reports whether t is *sim.StepCtx or *sim.Ctx.
func isCtxPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "sim" {
		return false
	}
	return obj.Name() == "StepCtx" || obj.Name() == "Ctx"
}

func (p *Pass) exprIsCtx(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.Type != nil && isCtxPtr(tv.Type)
}

func runCtxEscape(pass *Pass) error {
	// The engine package itself is the contexts' owner: it allocates them,
	// stores them in its per-node tables, and hands each program goroutine
	// its own ctx — exactly the structural manipulation the analyzer bans
	// for consumers. Ownership transfers are reviewed there, not linted.
	if pass.Pkg.Path() == "repro/internal/sim" {
		return nil
	}
	for _, f := range pass.Files {
		// Package-level vars initialized with a ctx (or of ctx type).
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && !obj.IsField() && obj.Parent() == pass.Pkg.Scope() && isCtxPtr(obj.Type()) {
						pass.Reportf(name.Pos(), "package-level %s holds a *sim context: contexts are per-node engine state and must not outlive their owner", name.Name)
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkCtxAssign(pass, n)
			case *ast.SendStmt:
				if pass.exprIsCtx(n.Value) {
					pass.Reportf(n.Value.Pos(), "*sim context sent over a channel: the receiver outlives the owning node's round")
				}
			case *ast.GoStmt:
				checkCtxGo(pass, n)
			case *ast.CompositeLit:
				checkCtxCollection(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCtxAssign flags ctx values assigned into globals, struct fields
// (outside composite construction), or collection elements.
func checkCtxAssign(pass *Pass, s *ast.AssignStmt) {
	for i, l := range s.Lhs {
		if i >= len(s.Rhs) {
			break // tuple assignment from a call can't produce a flagged store
		}
		if !pass.exprIsCtx(s.Rhs[i]) {
			continue
		}
		switch lhs := l.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(s.Pos(), "*sim context re-aliased into field %s after construction: keep the context only in the machine built for its node (composite-literal construction is the sanctioned pattern)", lhs.Sel.Name)
				continue
			}
			// Qualified package identifier: a global in another package.
			if id, ok := lhs.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					pass.Reportf(s.Pos(), "*sim context stored into package-level %s.%s", id.Name, lhs.Sel.Name)
				}
			}
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[lhs].(*types.Var); ok && obj.Parent() == pass.Pkg.Scope() {
				pass.Reportf(s.Pos(), "*sim context stored into package-level %s: contexts must not outlive their owning node", lhs.Name)
			}
		case *ast.IndexExpr:
			pass.Reportf(s.Pos(), "*sim context stored into a collection element: cross-node context aggregation is the engine's job")
		}
	}
}

// checkCtxGo flags contexts handed to a new goroutine, by argument or by
// capture.
func checkCtxGo(pass *Pass, g *ast.GoStmt) {
	for _, a := range g.Call.Args {
		if pass.exprIsCtx(a) {
			pass.Reportf(a.Pos(), "*sim context passed to a goroutine: context methods are single-goroutine by contract")
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !isCtxPtr(obj.Type()) || obj.IsField() {
			return true
		}
		// Captured iff declared outside the literal.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			pass.Reportf(id.Pos(), "*sim context %s captured by a goroutine: context methods are single-goroutine by contract", id.Name)
		}
		return true
	})
}

// checkCtxCollection flags composite literals of ctx-pointer collections
// ([]*StepCtx{...}, map[...]*StepCtx{...}).
func checkCtxCollection(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	var elem types.Type
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	case *types.Map:
		elem = u.Elem()
	default:
		return
	}
	if isCtxPtr(elem) && len(lit.Elts) > 0 {
		pass.Reportf(lit.Pos(), "collection of *sim contexts: cross-node context aggregation is the engine's job, not a protocol's")
	}
}
