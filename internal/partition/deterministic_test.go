package partition

import (
	"testing"

	"repro/internal/graph"
)

func TestDeterministicSmallGraphs(t *testing.T) {
	//mmlint:commutative independent subtests; names label, order never asserted
	for name, g := range testGraphs(t, 64) {
		t.Run(name, func(t *testing.T) {
			f, met, info, err := Deterministic(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Finished {
				t.Error("run did not finish")
			}
			st := f.Stats()
			// Paper: after ⌈log2(n)/2⌉ phases every fragment has size ≥ √n
			// (unless it is the whole graph) and radius < 2^{P+4}.
			sq := SqrtN(g.N())
			if st.MinSize < sq && st.Trees > 1 {
				t.Errorf("min fragment size %d < √n = %d with %d trees", st.MinSize, sq, st.Trees)
			}
			if st.Trees > sq {
				t.Errorf("%d trees exceeds √n = %d", st.Trees, sq)
			}
			if st.MaxRadius > 16*sq {
				t.Errorf("radius %d exceeds 16√n = %d", st.MaxRadius, 16*sq)
			}
			// §3 property (1): every tree is a subtree of the MST.
			mst, err := graph.Kruskal(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.SubtreeOfMST(mst); err != nil {
				t.Errorf("not a subforest of the MST: %v", err)
			}
			if met.Messages == 0 {
				t.Error("no messages recorded")
			}
		})
	}
}

func TestDeterministicTinyGraphs(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7} {
		g, err := graph.Path(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		f, _, _, err := Deterministic(g, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		mst, err := graph.Kruskal(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SubtreeOfMST(mst); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestDeterministicIsDeterministic(t *testing.T) {
	g, err := graph.RandomConnected(60, 90, 4)
	if err != nil {
		t.Fatal(err)
	}
	f1, m1, _, err := Deterministic(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	f2, m2, _, err := Deterministic(g, 99) // different seed: algorithm uses no randomness
	if err != nil {
		t.Fatal(err)
	}
	if m1.Messages != m2.Messages || m1.Rounds != m2.Rounds {
		t.Errorf("deterministic algorithm varied with the seed: %+v vs %+v", m1, m2)
	}
	for v := range f1.Parent {
		if f1.Parent[v] != f2.Parent[v] || f1.Root(graph.NodeID(v)) != f2.Root(graph.NodeID(v)) {
			t.Fatalf("forests differ at node %d", v)
		}
	}
}

func TestBoruvkaEqualsKruskal(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*graph.Graph, error)
	}{
		{"ring16", func() (*graph.Graph, error) { return graph.Ring(16, 3) }},
		{"grid6x6", func() (*graph.Graph, error) { return graph.Grid(6, 6, 5) }},
		{"random40", func() (*graph.Graph, error) { return graph.RandomConnected(40, 80, 7) }},
		{"random70sparse", func() (*graph.Graph, error) { return graph.RandomConnected(70, 10, 11) }},
		{"complete12", func() (*graph.Graph, error) { return graph.Complete(12, 13) }},
		{"star20", func() (*graph.Graph, error) { return graph.Star(20, 17) }},
		{"path30", func() (*graph.Graph, error) { return graph.Path(30, 19) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			f, _, _, err := Boruvka(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			if f.Trees() != 1 {
				t.Fatalf("Boruvka left %d fragments, want 1", f.Trees())
			}
			mst, err := graph.Kruskal(g)
			if err != nil {
				t.Fatal(err)
			}
			var total graph.Weight
			count := 0
			for _, id := range f.ParentEdge {
				if id == -1 {
					continue
				}
				if !mst.Contains(id) {
					t.Fatalf("tree edge %d not in the unique MST", id)
				}
				total += g.Edge(id).Weight
				count++
			}
			if count != g.N()-1 || total != mst.Total {
				t.Errorf("tree has %d edges weight %d; MST has %d edges weight %d",
					count, total, g.N()-1, mst.Total)
			}
		})
	}
}

func TestDeterministicPhaseCount(t *testing.T) {
	tests := []struct{ n, want int }{
		{2, 1}, {4, 1}, {16, 2}, {64, 3}, {256, 4}, {1024, 5}, {4096, 6},
	}
	for _, tt := range tests {
		if got := DeterministicPhaseCount(tt.n); got != tt.want {
			t.Errorf("DeterministicPhaseCount(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestCVStepsFor(t *testing.T) {
	for _, n := range []int{8, 64, 1024, 1 << 20} {
		s := cvStepsFor(n)
		if s < 1 || s > 8 {
			t.Errorf("cvStepsFor(%d) = %d, expected a small log* count", n, s)
		}
		// Verify the computed count actually suffices for the worst case.
		maxVal := int64(n - 1)
		cur := maxVal
		for i := 0; i < s; i++ {
			// Worst-case new color after one CV step given colors < cur+1.
			b := 0
			for v := cur; v > 0; v >>= 1 {
				b++
			}
			cur = int64(2*(b-1) + 1)
		}
		if cur > 5 {
			t.Errorf("cvStepsFor(%d) = %d leaves max color %d", n, s, cur)
		}
	}
}

func TestCVColorDistributedMatchesCombinatorial(t *testing.T) {
	// The distributed cvColor must agree with internal/coloring's step.
	for own := int64(0); own < 64; own++ {
		for father := int64(0); father < 64; father++ {
			if own == father {
				continue
			}
			got := cvColor(own, father)
			if got < 0 || got > 2*6+1 {
				t.Fatalf("cvColor(%d,%d) = %d out of range", own, father, got)
			}
		}
	}
	// Adjacency preservation (the defining property).
	for child := int64(0); child < 32; child++ {
		for father := int64(0); father < 32; father++ {
			if child == father {
				continue
			}
			for grand := int64(0); grand < 32; grand++ {
				if grand == father {
					continue
				}
				if cvColor(child, father) == cvColor(father, grand) {
					t.Fatalf("CV collision: %d %d %d", child, father, grand)
				}
			}
		}
	}
}

func TestEncodeRootColor(t *testing.T) {
	for _, isRoot := range []bool{false, true} {
		for c := int64(0); c < 6; c++ {
			r, c2 := decodeRootColor(encodeRootColor(isRoot, c))
			if r != isRoot || c2 != c {
				t.Errorf("round trip (%v,%d) -> (%v,%d)", isRoot, c, r, c2)
			}
		}
	}
}

func TestDeterministicLargerRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	g, err := graph.RandomConnected(256, 512, 21)
	if err != nil {
		t.Fatal(err)
	}
	f, _, _, err := Deterministic(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := graph.Kruskal(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SubtreeOfMST(mst); err != nil {
		t.Error(err)
	}
	st := f.Stats()
	if st.Trees > 1 && st.MinSize < 16 {
		t.Errorf("min size %d < √256", st.MinSize)
	}
}

func TestParallelMWOEVariant(t *testing.T) {
	//mmlint:commutative independent subtests; names label, order never asserted
	for name, g := range testGraphs(t, 64) {
		t.Run(name, func(t *testing.T) {
			f, met, info, err := DeterministicParallelMWOE(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Finished {
				t.Error("run did not finish")
			}
			mst, err := graph.Kruskal(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.SubtreeOfMST(mst); err != nil {
				t.Errorf("not a subforest of the MST: %v", err)
			}
			// Same structural guarantees as the sequential variant.
			st := f.Stats()
			if st.Trees > 1 && st.MinSize < SqrtN(g.N()) {
				t.Errorf("min size %d < sqrt(n)", st.MinSize)
			}
			// The variant must not be slower in rounds than sequential.
			fs, ms, _, err := Deterministic(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			_ = fs
			if met.Rounds > ms.Rounds {
				t.Errorf("parallel variant used more rounds (%d) than sequential (%d)", met.Rounds, ms.Rounds)
			}
		})
	}
}

func TestParallelAndSequentialAgreeOnFragments(t *testing.T) {
	// Both variants select MWOEs by the same rule, so the resulting
	// fragment partitions must be identical.
	g, err := graph.RandomConnected(80, 140, 6)
	if err != nil {
		t.Fatal(err)
	}
	fs, _, _, err := Deterministic(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	fp, _, _, err := DeterministicParallelMWOE(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range fs.Parent {
		if fs.Root(graph.NodeID(v)) != fp.Root(graph.NodeID(v)) {
			t.Fatalf("fragment assignment differs at node %d", v)
		}
	}
}
