package partition

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/resolve"
	"repro/internal/sim"
)

// §7.3: a deterministic algorithm for computing the network size when n is
// not known in advance. The deterministic partition runs phase by phase; at
// the end of phase i the cores attempt to schedule themselves on the channel
// with a Capetanakis budget proportional to 2^i (times the id length). Once
// the schedule completes with at most 2^i cores, sizes are re-counted and
// broadcast in schedule order; their sum is n. The nodes use only an upper
// bound U on the id universe (ids are O(log n) bits), never n itself.

// SizeCountResult is what every node learns from the §7.3 algorithm.
type SizeCountResult struct {
	N      int // the computed network size
	Phases int // partition phases executed before the probe succeeded
}

// sizeSlot carries one core's fragment size during the final summation.
type sizeSlot struct{ Size int }

const maxSizePhases = 40 // safety cap; the probe succeeds near log(n)/2

// CountNodes runs the §7.3 deterministic size computation and returns the
// value of n every node computed, with run metrics.
func CountNodes(g graph.Topology, seed int64, idUniverse int) (*SizeCountResult, *sim.Metrics, error) {
	if idUniverse < g.N() {
		return nil, nil, fmt.Errorf("partition: id universe %d below node count %d", idUniverse, g.N())
	}
	res, err := sim.Run(g, sizeProgram(idUniverse), sim.WithSeed(seed))
	if err != nil {
		return nil, nil, err
	}
	first, ok := res.Results[0].(SizeCountResult)
	if !ok {
		return nil, nil, fmt.Errorf("partition: node 0 recorded %T", res.Results[0])
	}
	for v, r := range res.Results {
		if r != first {
			return nil, nil, fmt.Errorf("partition: node %d computed %+v, node 0 %+v", v, r, first)
		}
	}
	return &first, &res.Metrics, nil
}

func sizeProgram(idUniverse int) sim.Program {
	return func(c *sim.Ctx) error {
		nd := newDNode(c)
		cvIters := cvStepsFor(idUniverse)
		idBits := bits.Len(uint(idUniverse - 1))
		in := sim.Input{}
		for i := 0; i < maxSizePhases; i++ {
			_, next := nd.phase(in, i, cvIters)
			in = next
			// Probe: can the cores be scheduled within the phase budget?
			budget := 2*(1<<uint(min(i, 30)))*(idBits+2) + 4
			sched, complete, next2 := resolve.CapetanakisBounded(
				c, in, idUniverse, nd.isCore(), int(c.ID()), nil, budget)
			in = next2
			if !complete || len(sched) > 1<<uint(min(i, 30)) {
				continue
			}
			// Success: re-count fragment sizes and broadcast them in
			// schedule order; the sum is n.
			in = nd.countStep(in)
			total := 0
			for _, s := range sched {
				if graph.NodeID(s.ID) == c.ID() {
					c.Broadcast(sizeSlot{Size: nd.size})
				}
				in = c.Tick()
				if in.Slot.State != sim.SlotSuccess {
					return fmt.Errorf("size slot for core %d was %v", s.ID, in.Slot.State)
				}
				total += in.Slot.Payload.(sizeSlot).Size
			}
			c.SetResult(SizeCountResult{N: total, Phases: i + 1})
			return nil
		}
		return fmt.Errorf("size probe never succeeded within %d phases", maxSizePhases)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
