// Package partition implements the paper's two network-partitioning
// algorithms: the deterministic algorithm of §3 (GHS-style fragment growth
// combined with Goldberg–Plotkin–Shannon symmetry breaking) and the
// randomized algorithm of §4 (iterated coin flips with tower probabilities
// growing bounded-depth BFS balls), plus the Las Vegas wrapper.
//
// Both produce a rooted spanning forest of O(√n) trees, each of radius
// O(√n) — the balance point between the point-to-point local stage and the
// multiaccess global stage of every algorithm in the paper.
package partition

import (
	"fmt"
	"math"

	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/sim"
)

// NodeOutcome is each node's final view of the partition, recorded as its
// sim result: its tree parent (or -1 for cores), the graph edge to the
// parent, and the core of its tree.
type NodeOutcome struct {
	Parent     graph.NodeID
	ParentEdge int
	Root       graph.NodeID
}

// SqrtN returns ⌈√n⌉, the balance parameter used throughout the paper.
func SqrtN(n int) int {
	s := int(math.Ceil(math.Sqrt(float64(n))))
	if s < 1 {
		s = 1
	}
	return s
}

// buildForest assembles and validates a forest from per-node outcomes.
func buildForest(g graph.Topology, results []any) (*forest.Forest, error) {
	n := g.N()
	parent := make([]graph.NodeID, n)
	parentEdge := make([]int, n)
	for v := 0; v < n; v++ {
		out, ok := results[v].(NodeOutcome)
		if !ok {
			return nil, fmt.Errorf("partition: node %d produced no outcome (got %T)", v, results[v])
		}
		parent[v] = out.Parent
		parentEdge[v] = out.ParentEdge
	}
	return forest.New(g, parent, parentEdge)
}

// Run is the common driver: execute program on g and build the forest from
// the per-node outcomes.
func runAndBuild(g graph.Topology, program sim.Program, opts ...sim.Option) (*forest.Forest, *sim.Metrics, []any, error) {
	res, err := sim.Run(g, program, opts...)
	if err != nil {
		return nil, nil, nil, err
	}
	f, err := buildForest(g, res.Results)
	if err != nil {
		return nil, nil, nil, err
	}
	return f, &res.Metrics, res.Results, nil
}
