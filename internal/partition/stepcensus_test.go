package partition

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// TestFragmentSizesMatchesGoroutineForm checks the native fragment census
// against the goroutine-engine form it was ported from (deterministic.go's
// countStep over the same forest): identical per-node results and metrics.
func TestFragmentSizesMatchesGoroutineForm(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (*graph.Graph, error)
	}{
		{"ring48", func() (*graph.Graph, error) { return graph.Ring(48, 2) }},
		{"random60", func() (*graph.Graph, error) { return graph.RandomConnected(60, 90, 4) }},
		{"ray6x5", func() (*graph.Graph, error) { return graph.Ray(6, 5, 3) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			f, _, _, err := Deterministic(g, 1)
			if err != nil {
				t.Fatal(err)
			}

			sizes, met, err := FragmentSizes(f, 2)
			if err != nil {
				t.Fatal(err)
			}

			res, err := sim.Run(f.G, func(c *sim.Ctx) error {
				nd := newDNode(c)
				v := c.ID()
				if f.Parent[v] != -1 {
					nd.parentEdge = f.ParentEdge[v]
				}
				for _, h := range c.Adj() {
					if f.Parent[h.To] == v && f.ParentEdge[h.To] == int(h.EdgeID) {
						nd.children[int(h.EdgeID)] = true
					}
				}
				nd.countStep(sim.Input{})
				if nd.isCore() {
					c.SetResult(nd.size)
				} else {
					c.SetResult(0)
				}
				return nil
			}, sim.WithSeed(2))
			if err != nil {
				t.Fatal(err)
			}

			want := make([]int, g.N())
			for v, r := range res.Results {
				want[v] = r.(int)
			}
			if !reflect.DeepEqual(want, sizes) {
				t.Errorf("sizes differ:\n goroutine %v\n native    %v", want, sizes)
			}
			if res.Metrics != *met {
				t.Errorf("metrics differ: goroutine %+v, native %+v", res.Metrics, *met)
			}

			// Both must agree with the forest's actual tree sizes.
			trueSize := make(map[graph.NodeID]int)
			for v := 0; v < g.N(); v++ {
				trueSize[f.Root(graph.NodeID(v))]++
			}
			for v, s := range sizes {
				if f.Parent[v] == -1 {
					if s != trueSize[graph.NodeID(v)] {
						t.Errorf("core %d census %d, true size %d", v, s, trueSize[graph.NodeID(v)])
					}
				} else if s != 0 {
					t.Errorf("non-core %d reported size %d", v, s)
				}
			}
		})
	}
}
