package partition

import (
	"testing"

	"repro/internal/forest"
	"repro/internal/graph"
)

// graphs used across the partition tests.
func testGraphs(t *testing.T, n int) map[string]*graph.Graph {
	t.Helper()
	gs := make(map[string]*graph.Graph)
	var err error
	if gs["ring"], err = graph.Ring(n, 1); err != nil {
		t.Fatal(err)
	}
	side := SqrtN(n)
	if gs["grid"], err = graph.Grid(side, (n+side-1)/side, 2); err != nil {
		t.Fatal(err)
	}
	if gs["random"], err = graph.RandomConnected(n, 2*n, 3); err != nil {
		t.Fatal(err)
	}
	if gs["star"], err = graph.Star(n, 4); err != nil {
		t.Fatal(err)
	}
	if gs["path"], err = graph.Path(n, 5); err != nil {
		t.Fatal(err)
	}
	return gs
}

// checkSpanningForest verifies the structural §4 guarantees on a result.
func checkSpanningForest(t *testing.T, g *graph.Graph, f *forest.Forest, maxRadius int) {
	t.Helper()
	st := f.Stats()
	if st.MaxRadius > maxRadius {
		t.Errorf("radius %d exceeds bound %d", st.MaxRadius, maxRadius)
	}
	// Every node has a root and tree edges are real graph edges (validated
	// by forest.New); spanning-ness is implied by every node having an
	// outcome. Check tree-edge weights exist.
	for v, id := range f.ParentEdge {
		if id == -1 {
			continue
		}
		e := f.G.Edge(id)
		if e.U != graph.NodeID(v) && e.V != graph.NodeID(v) {
			t.Fatalf("node %d parent edge %d not incident", v, id)
		}
	}
}

func TestRandomizedSmallGraphs(t *testing.T) {
	//mmlint:commutative independent subtests; names label, order never asserted
	for name, g := range testGraphs(t, 64) {
		t.Run(name, func(t *testing.T) {
			f, met, info, err := Randomized(g, 7)
			if err != nil {
				t.Fatal(err)
			}
			checkSpanningForest(t, g, f, 4*SqrtN(g.N()))
			if info.Iterations < 2 {
				t.Errorf("iterations = %d, want >= 2", info.Iterations)
			}
			if met.Rounds <= 0 || met.Messages <= 0 {
				t.Errorf("metrics: %+v", met)
			}
		})
	}
}

func TestRandomizedTinyGraphs(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		g, err := graph.Path(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		f, _, _, err := Randomized(g, 3)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkSpanningForest(t, g, f, 4*SqrtN(n))
	}
}

func TestRandomizedDeterministicForSeed(t *testing.T) {
	g, err := graph.RandomConnected(80, 80, 9)
	if err != nil {
		t.Fatal(err)
	}
	f1, m1, _, err := Randomized(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	f2, m2, _, err := Randomized(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Messages != m2.Messages || m1.Rounds != m2.Rounds {
		t.Errorf("metrics differ across identical runs: %+v vs %+v", m1, m2)
	}
	for v := range f1.Parent {
		if f1.Parent[v] != f2.Parent[v] {
			t.Fatalf("forests differ at node %d", v)
		}
	}
}

func TestRandomizedSeedsVary(t *testing.T) {
	g, err := graph.RandomConnected(100, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	f1, _, _, err := Randomized(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, _, err := Randomized(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range f1.Parent {
		if f1.Parent[v] != f2.Parent[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical forests (suspicious)")
	}
}

func TestRandomizedExpectedTreeCount(t *testing.T) {
	// Theorem 1: E[#trees] = O(√n). Average over seeds and check a generous
	// constant (the paper's constant is about sum 1/prod E_i ≈ 1.4).
	const n = 256
	g, err := graph.RandomConnected(n, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const seeds = 12
	for s := int64(0); s < seeds; s++ {
		f, _, _, err := Randomized(g, s)
		if err != nil {
			t.Fatal(err)
		}
		total += f.Trees()
	}
	avg := float64(total) / seeds
	if avg > 6*float64(SqrtN(n)) {
		t.Errorf("average trees %.1f > 6√n = %d", avg, 6*SqrtN(n))
	}
}

func TestRandomizedTimeBound(t *testing.T) {
	// Worst-case time O(√n log* n): check rounds ≤ c·√n for a generous c
	// (iterations ≈ ln* n + 2, each ≈ 12√n rounds).
	for _, n := range []int{64, 256} {
		g, err := graph.Ring(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, met, info, err := Randomized(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		bound := (12*SqrtN(n) + 10) * info.Iterations
		if met.Rounds > bound {
			t.Errorf("n=%d: rounds %d > bound %d", n, met.Rounds, bound)
		}
	}
}

func TestLasVegasAlwaysBalanced(t *testing.T) {
	const n = 100
	//mmlint:commutative independent subtests; names label, order never asserted
	for name, g := range testGraphs(t, n) {
		t.Run(name, func(t *testing.T) {
			f, _, info, err := RandomizedLasVegas(g, 11)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.CheckPartition(2*SqrtN(n), 4*SqrtN(n)); err != nil {
				t.Errorf("las vegas partition out of bounds: %v", err)
			}
			if len(info.RootOrder) != f.Trees() {
				t.Errorf("root order has %d entries for %d trees", len(info.RootOrder), f.Trees())
			}
			roots := make(map[graph.NodeID]bool)
			for _, r := range f.Roots() {
				roots[r] = true
			}
			for _, r := range info.RootOrder {
				if !roots[r] {
					t.Errorf("scheduled root %d is not a forest core", r)
				}
			}
		})
	}
}

func TestSqrtN(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {2, 2}, {4, 2}, {5, 3}, {9, 3}, {10, 4}, {100, 10}, {101, 11},
	}
	for _, tt := range tests {
		if got := SqrtN(tt.n); got != tt.want {
			t.Errorf("SqrtN(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestIterationProbs(t *testing.T) {
	probs := iterationProbs(8) // √n = 8
	if probs[len(probs)-1] != 1 {
		t.Errorf("last probability = %v, want 1", probs[len(probs)-1])
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] <= probs[i-1] {
			t.Errorf("probabilities not increasing: %v", probs)
		}
	}
	if len(probs) > 8 {
		t.Errorf("too many iterations (%d) for a tower sequence", len(probs))
	}
	// √n = 1: the very first probability is already 1.
	if p1 := iterationProbs(1); len(p1) != 1 || p1[0] != 1 {
		t.Errorf("iterationProbs(1) = %v", p1)
	}
}
