package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Property: on arbitrary random connected graphs, the randomized partition
// always yields a spanning forest within the 4√n radius bound, with every
// node assigned to exactly one tree rooted at a center.
func TestRandomizedPartitionProperty(t *testing.T) {
	prop := func(nRaw, extraRaw uint8, gseed, pseed int64) bool {
		n := 4 + int(nRaw)%60
		extra := int(extraRaw) % 80
		g, err := graph.RandomConnected(n, extra, gseed)
		if err != nil {
			return false
		}
		f, _, _, err := Randomized(g, pseed)
		if err != nil {
			return false
		}
		st := f.Stats()
		if st.MaxRadius > 4*SqrtN(n) {
			return false
		}
		// Roots are their own fragment identity; every node reaches a root.
		for v := range f.Parent {
			r := f.Root(graph.NodeID(v))
			if f.Parent[r] != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the deterministic partition's trees are MST subtrees and the
// fragment size floor holds on arbitrary random graphs.
func TestDeterministicPartitionProperty(t *testing.T) {
	prop := func(nRaw, extraRaw uint8, gseed int64) bool {
		n := 4 + int(nRaw)%48
		extra := int(extraRaw) % 64
		g, err := graph.RandomConnected(n, extra, gseed)
		if err != nil {
			return false
		}
		f, _, _, err := Deterministic(g, 1)
		if err != nil {
			return false
		}
		mst, err := graph.Kruskal(g)
		if err != nil {
			return false
		}
		if err := f.SubtreeOfMST(mst); err != nil {
			return false
		}
		st := f.Stats()
		if st.Trees > 1 && st.MinSize < SqrtN(n) {
			return false
		}
		return st.Trees <= SqrtN(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the §7.3 size computation is exact on arbitrary graphs.
func TestSizeCountProperty(t *testing.T) {
	prop := func(nRaw uint8, gseed int64) bool {
		n := 4 + int(nRaw)%40
		g, err := graph.RandomConnected(n, n, gseed)
		if err != nil {
			return false
		}
		res, _, err := CountNodes(g, 1, 1<<10)
		if err != nil {
			return false
		}
		return res.N == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
