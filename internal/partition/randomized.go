package partition

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/resolve"
	"repro/internal/sim"
)

// The randomized partitioning algorithm (§4). Iterations are synchronized by
// their precomputed fixed length (the paper: "the processors can compute the
// length of each iteration"). Iteration i:
//
//  1. every free node flips a coin with probability min(1, E_i/√n) — the
//     tower E_0 = 1, E_{i+1} = e^{E_i} — and heads become local centers;
//  2. centers grow BFS trees to depth at most 4√n over free nodes, with
//     nodes adopting the (distance, least-root-id) minimum and switching
//     trees only when their label decreases;
//  3. trees with no outgoing link to an unlabeled free node become unfree
//     entirely; in all other trees the nodes with label ≤ 2√n become unfree;
//  4. newly unfree nodes announce themselves so incident links die.
//
// Links found internal to a tree without being tree edges are removed for
// the algorithm's purposes, the paper's message-saving rule. The final
// iteration uses probability 1, so every node finishes. The result is a
// spanning forest of trees with radius ≤ 4√n and E[#trees] = O(√n).

const unlabeled = math.MaxInt32

// ErrLasVegasRestarts is returned if the Las Vegas wrapper exceeds its
// restart budget (probability < 2^-budget per the paper's analysis).
var ErrLasVegasRestarts = errors.New("partition: las vegas restart budget exhausted")

// RandomizedInfo reports auxiliary facts about a randomized-partition run.
type RandomizedInfo struct {
	Iterations int
	Restarts   int            // Las Vegas only
	RootOrder  []graph.NodeID // Las Vegas only: the verified channel schedule of cores
}

// message payloads of the randomized partition.
type (
	rpUpdate struct { // BFS wave: sender's root and label
		Root  graph.NodeID
		Label int
	}
	rpStatus struct { // post-BFS neighbor exchange
		InTree     bool
		Root       graph.NodeID
		ParentLink bool // this link is the sender's tree parent link
	}
	rpConv   struct{ HasOutgoing bool } // convergecast: subtree has link to unlabeled free node
	rpDecide struct{ KeepAll bool }     // root's verdict broadcast down the tree
	rpUnfree struct{}                   // sender became unfree; link dies
)

// iterationProbs returns the per-iteration head probabilities: the tower
// E_i/√n capped at 1. The last entry is exactly 1, guaranteeing termination;
// there are at most ln* n + O(1) entries.
func iterationProbs(sqrtN int) []float64 {
	var probs []float64
	t := 1.0
	for {
		p := t / float64(sqrtN)
		if p >= 1 {
			probs = append(probs, 1)
			return probs
		}
		probs = append(probs, p)
		t = math.Exp(t)
	}
}

// rnode is one node's state in the randomized partition.
type rnode struct {
	c     *sim.Ctx
	sqrtN int
	dmax  int // BFS depth bound 4√n
	cut   int // unfree label threshold 2√n

	free       bool
	label      int
	root       graph.NodeID
	parentEdge int // graph edge id to parent; -1 for centers/unlabeled

	inTree          bool // labeled in the current iteration's BFS
	pendingAnnounce bool
	live            []bool // per local link index
	childLinks      []int  // local link indices of current-iteration children
	outcome         NodeOutcome
	finished        bool
}

func newRNode(c *sim.Ctx) *rnode {
	nd := &rnode{
		c:     c,
		sqrtN: SqrtN(c.N()),
		live:  make([]bool, c.Degree()),
	}
	nd.dmax = 4 * nd.sqrtN
	nd.cut = 2 * nd.sqrtN
	nd.reset()
	return nd
}

// reset restores the initial all-free state (used on Las Vegas restarts).
func (nd *rnode) reset() {
	nd.free = true
	nd.label = unlabeled
	nd.root = -1
	nd.parentEdge = -1
	nd.inTree = false
	nd.pendingAnnounce = false
	nd.finished = false
	for l := range nd.live {
		nd.live[l] = true
	}
	nd.childLinks = nil
	nd.outcome = NodeOutcome{Parent: -1, ParentEdge: -1, Root: -1}
}

// sendLive sends p on every live link except the one with local index skip
// (pass -1 to send on all live links).
func (nd *rnode) sendLive(p sim.Payload, skip int) {
	for l, ok := range nd.live {
		if ok && l != skip {
			nd.c.Send(l, p)
		}
	}
}

func (nd *rnode) parentLinkIdx() int {
	if nd.parentEdge == -1 {
		return -1
	}
	return nd.c.LinkOf(nd.parentEdge)
}

// processDead marks links dead for every rpUnfree in the inbox (these arrive
// in the round after an iteration ends).
func (nd *rnode) processDead(msgs []sim.Message) {
	for _, m := range msgs {
		if _, ok := m.Payload.(rpUnfree); ok {
			nd.live[nd.c.LinkOf(m.EdgeID)] = false
		}
	}
}

// iteration runs one full synchronized iteration with head probability p.
// It consumes exactly 3*dmax + 8 rounds on every node.
func (nd *rnode) iteration(p float64) {
	c := nd.c
	nd.inTree = false
	nd.childLinks = nd.childLinks[:0]

	// Phase A (1 round): coin flip.
	if nd.free && c.Rand().Float64() < p {
		nd.label = 0
		nd.root = c.ID()
		nd.parentEdge = -1
		nd.inTree = true
		nd.pendingAnnounce = true
	}
	in := c.Tick()

	// Phase B (dmax+1 rounds): synchronous multi-source BFS over free nodes.
	for b := 1; b <= nd.dmax+1; b++ {
		if nd.pendingAnnounce && nd.label < nd.dmax {
			nd.sendLive(rpUpdate{Root: nd.root, Label: nd.label}, nd.parentLinkIdx())
		}
		nd.pendingAnnounce = false
		in = c.Tick()
		nd.adopt(in.Msgs)
	}

	// Phase C (1 round): status exchange on live links.
	if nd.free {
		pl := -1
		if nd.inTree {
			pl = nd.parentLinkIdx()
		}
		for l, ok := range nd.live {
			if !ok {
				continue
			}
			c.Send(l, rpStatus{InTree: nd.inTree, Root: nd.root, ParentLink: nd.inTree && l == pl})
		}
	}
	in = c.Tick()
	hasOutgoing, _ := nd.processStatus(in.Msgs)

	// Phase D (dmax+2 rounds): convergecast OR(hasOutgoing) to the root.
	or := hasOutgoing
	reports := 0
	sentUp := false
	for k := 1; k <= nd.dmax+2; k++ {
		if nd.inTree && !sentUp && reports == len(nd.childLinks) {
			if nd.label > 0 {
				c.Send(nd.parentLinkIdx(), rpConv{HasOutgoing: or})
			}
			sentUp = true
		}
		in = c.Tick()
		for _, m := range in.Msgs {
			if cm, ok := m.Payload.(rpConv); ok {
				or = or || cm.HasOutgoing
				reports++
			}
		}
	}

	// Phase E (dmax+2 rounds): root broadcasts the verdict down the tree.
	keepAll := false
	decided := nd.inTree && nd.label == 0
	if decided {
		keepAll = !or
	}
	sentDown := false
	for k := 1; k <= nd.dmax+2; k++ {
		if decided && !sentDown {
			for _, l := range nd.childLinks {
				c.Send(l, rpDecide{KeepAll: keepAll})
			}
			sentDown = true
		}
		in = c.Tick()
		for _, m := range in.Msgs {
			if dm, ok := m.Payload.(rpDecide); ok {
				decided = true
				keepAll = dm.KeepAll
			}
		}
	}

	// Phase F (1 round): newly unfree nodes record their outcome and
	// announce so incident links die. The announcements arrive in the input
	// of this phase's tick and are absorbed immediately.
	if nd.inTree && decided && (keepAll || nd.label <= nd.cut) {
		nd.free = false
		nd.finished = true
		nd.outcome = NodeOutcome{Parent: -1, ParentEdge: -1, Root: nd.root}
		if nd.label > 0 {
			e := c.Topo().Edge(nd.parentEdge)
			nd.outcome.Parent = e.Other(c.ID())
			nd.outcome.ParentEdge = nd.parentEdge
		}
		nd.sendLive(rpUnfree{}, -1)
	}
	in = c.Tick()
	nd.processDead(in.Msgs)
}

// adopt applies the BFS adoption rule to one round's updates: take the
// minimum (label+1, root) candidate, switch only if it strictly reduces the
// label (ties between simultaneous candidates break toward the least root).
func (nd *rnode) adopt(msgs []sim.Message) {
	if !nd.free {
		return
	}
	bestLabel, bestRoot, bestEdge := unlabeled, graph.NodeID(-1), -1
	for _, m := range msgs {
		u, ok := m.Payload.(rpUpdate)
		if !ok {
			continue
		}
		cand := u.Label + 1
		if cand < bestLabel || (cand == bestLabel && u.Root < bestRoot) {
			bestLabel, bestRoot, bestEdge = cand, u.Root, m.EdgeID
		}
	}
	if bestEdge != -1 && bestLabel < nd.label {
		nd.label = bestLabel
		nd.root = bestRoot
		nd.parentEdge = bestEdge
		nd.inTree = true
		nd.pendingAnnounce = true
	}
}

// processStatus digests the post-BFS exchange: learn children, detect
// outgoing links to unlabeled free nodes, and remove links internal to the
// tree that are not tree edges (the paper's message-saving rule).
func (nd *rnode) processStatus(msgs []sim.Message) (hasOutgoing bool, removed int) {
	pl := -1
	if nd.inTree {
		pl = nd.parentLinkIdx()
	}
	childSet := make(map[int]bool)
	for _, m := range msgs {
		st, ok := m.Payload.(rpStatus)
		if !ok {
			continue
		}
		l := nd.c.LinkOf(m.EdgeID)
		if nd.inTree && st.ParentLink {
			nd.childLinks = append(nd.childLinks, l)
			childSet[l] = true
		}
	}
	for _, m := range msgs {
		st, ok := m.Payload.(rpStatus)
		if !ok {
			continue
		}
		l := nd.c.LinkOf(m.EdgeID)
		switch {
		case !st.InTree:
			if nd.inTree {
				hasOutgoing = true
			}
		case nd.inTree && st.Root == nd.root && l != pl && !childSet[l]:
			nd.live[l] = false
			removed++
		}
	}
	return hasOutgoing, removed
}

// randomizedProgram runs the Monte Carlo partition; if lasVegas is true it
// appends the §4 verification (schedule the cores on the channel for 8√n
// slots via Metcalfe–Boggs; restart unless all cores were scheduled and
// there are at most 2√n of them).
func randomizedProgram(lasVegas bool, maxRestarts int, infoSink func(RandomizedInfo)) sim.Program {
	return func(c *sim.Ctx) error {
		nd := newRNode(c)
		probs := iterationProbs(nd.sqrtN)
		info := RandomizedInfo{Iterations: len(probs)}
		for attempt := 0; ; attempt++ {
			for _, p := range probs {
				nd.iteration(p)
			}
			if !nd.finished {
				return fmt.Errorf("node %d still free after final iteration", c.ID())
			}
			if !lasVegas {
				break
			}
			isRoot := nd.outcome.ParentEdge == -1
			sched, done, _ := resolve.MetcalfeBoggs(c, sim.Input{}, nd.sqrtN, isRoot, int(c.ID()), nil, 4*nd.sqrtN)
			if done && len(sched) <= 2*nd.sqrtN {
				info.RootOrder = make([]graph.NodeID, len(sched))
				for i, s := range sched {
					info.RootOrder[i] = graph.NodeID(s.ID)
				}
				break
			}
			info.Restarts++
			if attempt+1 >= maxRestarts {
				return fmt.Errorf("%w after %d attempts", ErrLasVegasRestarts, maxRestarts)
			}
			nd.reset()
		}
		c.SetResult(nd.outcome)
		if infoSink != nil && c.ID() == 0 {
			infoSink(info)
		}
		return nil
	}
}

// Randomized runs the Monte Carlo randomized partition (§4) and returns the
// spanning forest, the run's metrics, and auxiliary info.
func Randomized(g graph.Topology, seed int64) (*forest.Forest, *sim.Metrics, *RandomizedInfo, error) {
	var info RandomizedInfo
	f, met, _, err := runAndBuild(g, randomizedProgram(false, 1, func(i RandomizedInfo) { info = i }),
		sim.WithSeed(seed))
	if err != nil {
		return nil, nil, nil, err
	}
	return f, met, &info, nil
}

// RandomizedLasVegas runs the Las Vegas variant: the partition is verified
// by scheduling the cores on the channel and restarted until at most 2√n
// trees were produced, so the returned forest always satisfies the balance
// bound. The verified core schedule is returned in the info.
func RandomizedLasVegas(g graph.Topology, seed int64) (*forest.Forest, *sim.Metrics, *RandomizedInfo, error) {
	var info RandomizedInfo
	f, met, _, err := runAndBuild(g, randomizedProgram(true, 50, func(i RandomizedInfo) { info = i }),
		sim.WithSeed(seed))
	if err != nil {
		return nil, nil, nil, err
	}
	return f, met, &info, nil
}
