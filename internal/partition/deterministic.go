package partition

import (
	"math"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/sim"
)

// The deterministic partitioning algorithm (§3). The spanning forest is
// grown in phases; at the start of phase i every fragment (a rooted subtree
// of the MST) has size ≥ 2^i and radius ≤ 2^{i+3}-1. Each phase:
//
//	Step 1    count fragment sizes by broadcast-and-respond; a fragment is
//	          active iff ⌊log2 size⌋ equals the phase number.
//	Step 2    each active fragment finds its minimum-weight outgoing edge
//	          (MWOE) GHS-style: nodes test edges in weight order, same-
//	          fragment edges are rejected once and forever, and the minimum
//	          is convergecast to the core. The selected edges define the
//	          directed fragment graph F; mutually-selected edges are
//	          resolved toward the higher core id.
//	Step 3    three-color F by distributed Cole–Vishkin / GPS, each core
//	          simulating one vertex of F; core-to-core hops travel across
//	          fragment trees and the selected MWOE links.
//	Steps 4-5 recolor so the red vertices form an MIS of F containing every
//	          root (per internal/coloring's combinatorial specification).
//	Step 6    cut the edge out of every red non-leaf vertex of F; each
//	          resulting subtree (radius ≤ 4) becomes one new fragment whose
//	          core is the subtree root's core.
//	Step 7    physically merge: broadcast the new fragment name, then
//	          re-root every non-root fragment at its MWOE endpoint and
//	          attach it across the selected link.
//
// Steps are synchronized with the channel barrier of §7.1 (the paper's
// "synchronizer as termination detector" alternative), so no step needs a
// precomputed worst-case length.

// DeterministicInfo reports auxiliary facts about a deterministic run.
type DeterministicInfo struct {
	Phases   int // phases executed (may stop early when one fragment spans the graph)
	CVSteps  int // Cole–Vishkin iterations per phase
	Finished bool
}

// Payload kinds for the generic up/down value pushes.
const (
	pkColor  uint8 = iota + 1 // CV / shift-down color push (parent -> children)
	pkColor2                  // second color push within one step group
	pkChildC                  // child color push (children -> parent)
	pkRed                     // child-is-red OR push (children -> parent)
	pkChase                   // step-6 new-core pointer chase (parent -> children)
)

// Message payloads of the deterministic partition.
type (
	dCount  struct{}        // down: request subtree sizes
	dSize   struct{ N int } // up: subtree size
	dActive struct {        // down: phase activity / early-exit
		Active bool
		Done   bool
	}
	dTest  struct{ Frag graph.NodeID } // edge test (GHS)
	dReply struct {                    // test reply
		Accept bool
		Frag   graph.NodeID
	}
	dMin struct { // up: subtree minimum outgoing edge
		Valid  bool
		W      graph.Weight
		Edge   int
		Target graph.NodeID
	}
	dChosen struct{}                    // routed core -> MWOE endpoint
	dHook   struct{ Frag graph.NodeID } // across the selected edge
	dUnhook struct{}                    // across: mutual edge dropped
	dInfo   struct {                    // up: chosen node's hook report
		Mutual bool
		Other  graph.NodeID
	}
	dHasKids struct{ Has bool }  // up: fragment has surviving incoming hooks
	dDrop    struct{ Drop bool } // down: fragment dropped its out-edge
	dPushD   struct {            // parent-value push, traveling down a tree
		Kind uint8
		V    int64
	}
	dCross struct { // parent-value push, crossing an MWOE link
		Kind uint8
		V    int64
	}
	dPushU struct { // parent-value push, traveling up the child's tree
		Kind uint8
		V    int64
	}
	dChildU struct { // child-value push (down to chosen, across, then up)
		Kind uint8
		V    int64
	}
	dNewFrag struct{ Core graph.NodeID } // down: adopt new fragment name
	dReroot  struct{}                    // routed core -> chosen; flips the path
	dAttach  struct{}                    // across: sender became your tree child
)

const noWeight = graph.Weight(math.MaxInt64)

// dnode is one node's state in the deterministic partition.
type dnode struct {
	c *sim.Ctx

	frag       graph.NodeID // fragment identity == core's node id
	parentEdge int          // -1 at cores
	children   map[int]bool // tree child edge ids
	rejected   map[int]bool // edges known intra-fragment forever

	// Per-phase state.
	size      int
	active    bool
	cand      dMin         // own accepted outgoing candidate
	best      dMin         // subtree minimum
	downEdge  int          // child edge toward the subtree minimum; -1 = self
	outEdge   int          // fragment's selected MWOE (valid at the chosen node)
	hooks     map[int]bool // edges on which child fragments hooked into me
	hookFrom  map[int]graph.NodeID
	chosen    bool
	mutual    bool
	mutualOth graph.NodeID
	hasKids   bool // fragment has F-children (post-unhook), known at core
	hasOut    bool // fragment selected an MWOE, known at core
	dropOut   bool // fragment's out-edge dropped (mutual loser or step-6 cut)
	inF       bool
	isFRoot   bool
	color     int64
	newCore   graph.NodeID

	// parallelMWOE selects the A4 ablation's parallel edge testing.
	parallelMWOE bool
}

func newDNode(c *sim.Ctx) *dnode {
	return &dnode{
		c:          c,
		frag:       c.ID(),
		parentEdge: -1,
		children:   make(map[int]bool),
		rejected:   make(map[int]bool),
	}
}

func (nd *dnode) isCore() bool { return nd.parentEdge == -1 }

func (nd *dnode) parentLink() int { return nd.c.LinkOf(nd.parentEdge) }

// keepsOut reports whether this node's fragment still owns a live out-edge.
// At the core it is authoritative; at the chosen node the chosen flag plus
// the broadcast drop decision give the same answer.
func (nd *dnode) keepsOut() bool {
	if nd.isCore() {
		return nd.hasOut && !nd.dropOut
	}
	return nd.chosen && !nd.dropOut
}

// sendChildren sends p on every tree child edge.
func (nd *dnode) sendChildren(p sim.Payload) {
	//mmlint:commutative sends on distinct edges; delivery sorts each inbox by (sender, edge id), so staging order never reaches transcripts
	for e := range nd.children {
		nd.c.Send(nd.c.LinkOf(e), p)
	}
}

// --- Generic barrier-step primitives -----------------------------------

// countStep runs Step 1's broadcast-and-respond: every core learns its
// fragment size. Leaves respond immediately; inner nodes respond once all
// children have.
func (nd *dnode) countStep(in sim.Input) sim.Input {
	reports := 0
	sum := 1 // self
	started := false
	replied := false
	return sim.BarrierStep(nd.c, in, func(in sim.Input) bool {
		for _, m := range in.Msgs {
			switch p := m.Payload.(type) {
			case dCount:
				started = true
				nd.sendChildren(dCount{})
			case dSize:
				reports++
				sum += p.N
			}
		}
		if nd.isCore() && !started {
			started = true
			nd.sendChildren(dCount{})
		}
		if started && !replied && reports == len(nd.children) {
			replied = true
			if nd.isCore() {
				nd.size = sum
			} else {
				nd.c.Send(nd.parentLink(), dSize{N: sum})
			}
		}
		return false
	})
}

// bcastDown floods a payload from the core to its whole fragment. start is
// evaluated once at the core (return nil to stay silent); on is invoked at
// every node with each received message and reports whether its payload is
// the broadcast value to forward. Other message types arriving during the
// same barrier step (e.g. unhooks crossing fragments) return false and are
// merely observed. The core sees its own start payload with EdgeID == -1.
func (nd *dnode) bcastDown(in sim.Input, start func() sim.Payload, on func(m sim.Message) bool) sim.Input {
	sent := false
	return sim.BarrierStep(nd.c, in, func(in sim.Input) bool {
		for _, m := range in.Msgs {
			if on(m) && !sent {
				sent = true
				nd.sendChildren(m.Payload)
			}
		}
		if nd.isCore() && !sent {
			sent = true
			if p := start(); p != nil {
				on(sim.Message{From: nd.c.ID(), EdgeID: -1, Payload: p})
				nd.sendChildren(p)
			}
		}
		return false
	})
}

// convUp aggregates int64 values from the leaves to the core with an
// associative, commutative combine. own is this node's contribution,
// evaluated lazily on the first round so that same-step arrivals (absorbed
// by observe) can influence it... it is evaluated when this node reports.
func (nd *dnode) convUp(in sim.Input, own func() int64, combine func(a, b int64) int64,
	wrap func(v int64) sim.Payload, unwrap func(p sim.Payload) (int64, bool), done func(total int64)) sim.Input {
	reports := 0
	var acc int64
	accSet := false
	replied := false
	return sim.BarrierStep(nd.c, in, func(in sim.Input) bool {
		for _, m := range in.Msgs {
			if v, ok := unwrap(m.Payload); ok {
				reports++
				if !accSet {
					acc, accSet = v, true
				} else {
					acc = combine(acc, v)
				}
			}
		}
		if !replied && reports == len(nd.children) {
			replied = true
			if !accSet {
				acc = own()
			} else {
				acc = combine(acc, own())
			}
			if nd.isCore() {
				done(acc)
			} else {
				nd.c.Send(nd.parentLink(), wrap(acc))
			}
		}
		return false
	})
}

// pushToChildren delivers each in-F core's value to the cores of all its
// F-children: broadcast down the parent's tree, forward across every
// surviving hook, then route up the child's tree to its core. Each core
// returns the value received from its F-parent (ok=false at F-roots and
// outside F).
func (nd *dnode) pushToChildren(in sim.Input, kind uint8, value int64) (got int64, ok bool, out sim.Input) {
	sentDown := false
	relay := func(v int64) {
		nd.sendChildren(dPushD{Kind: kind, V: v})
		//mmlint:commutative sends on distinct edges; delivery sorts each inbox by (sender, edge id), so staging order never reaches transcripts
		for e := range nd.hooks {
			nd.c.Send(nd.c.LinkOf(e), dCross{Kind: kind, V: v})
		}
	}
	out = sim.BarrierStep(nd.c, in, func(in sim.Input) bool {
		for _, m := range in.Msgs {
			switch p := m.Payload.(type) {
			case dPushD:
				if p.Kind == kind && !sentDown {
					sentDown = true
					relay(p.V)
				}
			case dCross:
				// Accept only on my fragment's live out-edge.
				if p.Kind == kind && nd.chosen && !nd.dropOut && m.EdgeID == nd.outEdge {
					if nd.isCore() {
						got, ok = p.V, true
					} else {
						nd.c.Send(nd.parentLink(), dPushU{Kind: kind, V: p.V})
					}
				}
			case dPushU:
				if p.Kind == kind {
					if nd.isCore() {
						got, ok = p.V, true
					} else {
						nd.c.Send(nd.parentLink(), dPushU{Kind: kind, V: p.V})
					}
				}
			}
		}
		if nd.isCore() && nd.inF && !sentDown {
			sentDown = true
			relay(value)
		}
		return false
	})
	return got, ok, out
}

// pushToParent delivers each non-root in-F core's value to its F-parent's
// core: route down to the chosen node, across the MWOE, then aggregate up
// the parent's tree with the associative combine. Each core returns the
// aggregate over its F-children (ok=false if it has none).
func (nd *dnode) pushToParent(in sim.Input, kind uint8, value int64, combine func(a, b int64) int64) (got int64, ok bool, out sim.Input) {
	started := false
	out = sim.BarrierStep(nd.c, in, func(in sim.Input) bool {
		var up *int64 // aggregate to forward toward the core this round
		add := func(v int64) {
			if up == nil {
				up = new(int64)
				*up = v
			} else {
				*up = combine(*up, v)
			}
		}
		route := func(v int64) {
			if nd.downEdge == -1 { // I am the chosen endpoint
				nd.c.Send(nd.c.LinkOf(nd.outEdge), dChildU{Kind: kind, V: v})
			} else {
				nd.c.Send(nd.c.LinkOf(nd.downEdge), dChildU{Kind: kind, V: v})
			}
		}
		for _, m := range in.Msgs {
			p, isChild := m.Payload.(dChildU)
			if !isChild || p.Kind != kind {
				continue
			}
			if m.EdgeID == nd.parentEdge {
				// Traveling down my own fragment toward the chosen node.
				route(p.V)
			} else {
				// Arriving from a hook or a tree child: aggregate upward.
				add(p.V)
			}
		}
		if nd.isCore() && nd.inF && !nd.isFRoot && nd.keepsOut() && !started {
			started = true
			if nd.downEdge == -1 && nd.chosen {
				nd.c.Send(nd.c.LinkOf(nd.outEdge), dChildU{Kind: kind, V: value})
			} else {
				route(value)
			}
		}
		if up != nil {
			if nd.isCore() {
				if !ok {
					got, ok = *up, true
				} else {
					got = combine(got, *up)
				}
			} else {
				nd.c.Send(nd.parentLink(), dChildU{Kind: kind, V: *up})
			}
		}
		return false
	})
	return got, ok, out
}

// cvStepsFor returns the number of Cole–Vishkin iterations that reduce any
// coloring with values below n to values below six.
func cvStepsFor(n int) int {
	maxVal := n - 1
	steps := 0
	for maxVal > 5 {
		maxVal = 2*(bits.Len(uint(maxVal))-1) + 1
		steps++
	}
	return steps
}

// cvColor mirrors the Cole–Vishkin step of internal/coloring for the
// distributed fragment version.
func cvColor(own, father int64) int64 {
	k := bits.TrailingZeros64(uint64(own ^ father))
	return int64(k)<<1 | (own >> uint(k) & 1)
}
