package partition

import (
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Ablation A4 (DESIGN.md): the alternative MWOE search that tests all
// untested edges in parallel instead of sequentially in weight order. It
// finishes in O(1) rounds plus the convergecast instead of O(1 + rejects),
// but re-tests accepted edges every phase, so its message complexity grows
// to O(m·log n) instead of the paper's O(m + n·log n·log*n). The experiment
// table quantifies the trade.
func (nd *dnode) mwoeStepParallel(in sim.Input) sim.Input {
	c := nd.c
	nd.cand = dMin{Valid: false, W: noWeight}
	nd.best = dMin{Valid: false, W: noWeight}
	nd.downEdge = -1
	pending := 0
	if nd.active {
		for _, h := range c.Adj() {
			if nd.rejected[int(h.EdgeID)] || int(h.EdgeID) == nd.parentEdge || nd.children[int(h.EdgeID)] {
				continue
			}
			c.Send(c.LinkOf(int(h.EdgeID)), dTest{Frag: nd.frag})
			pending++
		}
	}
	testDone := !nd.active || pending == 0
	reports := 0
	replied := false
	return sim.BarrierStep(c, in, func(in sim.Input) bool {
		for _, m := range in.Msgs {
			switch p := m.Payload.(type) {
			case dTest:
				c.Send(c.LinkOf(m.EdgeID), dReply{Accept: p.Frag != nd.frag, Frag: nd.frag})
			case dReply:
				pending--
				if p.Accept {
					e := c.Topo().Edge(m.EdgeID)
					if !nd.cand.Valid || e.Weight < nd.cand.W {
						nd.cand = dMin{Valid: true, W: e.Weight, Edge: m.EdgeID, Target: p.Frag}
					}
				} else {
					nd.rejected[m.EdgeID] = true
				}
				if pending == 0 {
					testDone = true
				}
			case dMin:
				reports++
				if p.Valid && p.W < nd.best.W {
					nd.best = p
					nd.downEdge = m.EdgeID
				}
			}
		}
		if !replied && testDone && reports == len(nd.children) {
			replied = true
			if nd.cand.Valid && nd.cand.W < nd.best.W {
				nd.best = nd.cand
				nd.downEdge = -1
			}
			if !nd.isCore() {
				c.Send(nd.parentLink(), nd.best)
			}
		}
		return nd.active && !replied
	})
}

// DeterministicParallelMWOE runs the §3 partition with the A4 parallel
// edge-testing variant (same output guarantees, different cost profile).
func DeterministicParallelMWOE(g graph.Topology, seed int64) (*forest.Forest, *sim.Metrics, *DeterministicInfo, error) {
	phases := DeterministicPhaseCount(g.N())
	var info DeterministicInfo
	prog := func(c *sim.Ctx) error {
		nd := newDNode(c)
		nd.parallelMWOE = true
		cvIters := cvStepsFor(c.N())
		localInfo := DeterministicInfo{CVSteps: cvIters}
		in := sim.Input{}
		for i := 0; i < phases; i++ {
			done, next := nd.phase(in, i, cvIters)
			in = next
			localInfo.Phases = i + 1
			if done {
				break
			}
		}
		localInfo.Finished = true
		parent := graph.NodeID(-1)
		if nd.parentEdge != -1 {
			parent = c.Topo().Edge(nd.parentEdge).Other(c.ID())
		}
		c.SetResult(NodeOutcome{Parent: parent, ParentEdge: nd.parentEdge, Root: nd.frag})
		if c.ID() == 0 {
			info = localInfo
		}
		return nil
	}
	f, met, _, err := runAndBuild(g, prog, sim.WithSeed(seed))
	if err != nil {
		return nil, nil, nil, err
	}
	return f, met, &info, nil
}
