package partition

// stepcensus.go is the native step-machine port of the deterministic
// partition's Step 1 (the fragment census of deterministic.go's countStep):
// every core learns its fragment's size by a barrier-synchronized
// broadcast-and-respond over the fragment trees. The machine form mirrors
// the goroutine form message for message — same dCount/dSize payloads, same
// busy-tone barrier — so both engines produce identical transcripts; the
// equivalence test in stepcensus_test.go asserts it.

import (
	"fmt"

	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/sim"
)

// fragCensusMachine is one node's state in the native fragment census.
type fragCensusMachine struct {
	c *sim.StepCtx
	b *sim.StepBarrier

	parent     graph.NodeID // -1 at cores
	childLinks []int

	started bool
	replied bool
	reports int
	sum     int
	size    int // fragment size, set at cores
}

func (m *fragCensusMachine) Step(in sim.Input) bool {
	return m.b.Step(in, m.handle)
}

// handle is countStep's per-round handler: forward the count request down,
// aggregate sizes up, record the total at the core.
func (m *fragCensusMachine) handle(in sim.Input) bool {
	for _, msg := range in.Msgs {
		switch p := msg.Payload.(type) {
		case dCount:
			m.started = true
			for _, l := range m.childLinks {
				m.c.Send(l, dCount{})
			}
		case dSize:
			m.reports++
			m.sum += p.N
		}
	}
	if m.parent == -1 && !m.started {
		m.started = true
		for _, l := range m.childLinks {
			m.c.Send(l, dCount{})
		}
	}
	if m.started && !m.replied && m.reports == len(m.childLinks) {
		m.replied = true
		if m.parent == -1 {
			m.size = m.sum
		} else {
			l, ok := m.c.Link(m.parent)
			if !ok {
				m.c.Failf("parent %d not adjacent", m.parent)
			}
			m.c.Send(l, dSize{N: m.sum})
		}
	}
	return false
}

func (m *fragCensusMachine) Result() any { return m.size }

// FragmentSizes runs the native fragment census over an existing forest and
// returns each node's fragment size at its core (0 elsewhere) plus the run
// metrics. It is the step-API form of the census the deterministic
// partition runs at the start of every phase.
func FragmentSizes(f *forest.Forest, seed int64, opts ...sim.Option) ([]int, *sim.Metrics, error) {
	children := f.Children()
	opts = append([]sim.Option{sim.WithSeed(seed)}, opts...)
	res, err := sim.RunStep(f.G, func(c *sim.StepCtx) sim.Machine {
		return &fragCensusMachine{
			c:          c,
			b:          sim.NewStepBarrier(c),
			parent:     f.Parent[c.ID()],
			childLinks: childLinksOf(c, f, children[c.ID()]),
			sum:        1, // self
		}
	}, opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("partition: fragment census: %w", err)
	}
	sizes := make([]int, f.G.N())
	for v, r := range res.Results {
		sizes[v] = r.(int)
	}
	return sizes, &res.Metrics, nil
}

// childLinksOf resolves a node's tree children to local link indexes.
func childLinksOf(c *sim.StepCtx, f *forest.Forest, kids []graph.NodeID) []int {
	if len(kids) == 0 {
		return nil
	}
	links := make([]int, 0, len(kids))
	for _, k := range kids {
		links = append(links, c.LinkOf(f.ParentEdge[k]))
	}
	return links
}
