package partition

import (
	"math/bits"

	"repro/internal/coloring"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/sim"
)

// mwoeStep runs Step 2: nodes of active fragments test their incident edges
// in ascending weight order (GHS test/accept/reject — a rejected edge is
// intra-fragment forever and never tested again), and the minimum accepted
// edge is convergecast to the core, recording down-pointers for later
// routing. Every node, active or not, answers tests against its current
// fragment. One barrier step.
func (nd *dnode) mwoeStep(in sim.Input) sim.Input {
	c := nd.c
	adj := c.Adj()
	nd.cand = dMin{Valid: false, W: noWeight}
	nd.best = dMin{Valid: false, W: noWeight}
	nd.downEdge = -1
	nextLink := 0
	awaiting := -1 // edge id of the outstanding test
	wantTest := -1 // edge id of a test not yet sent (deferred if the link is busy)
	testDone := !nd.active
	reports := 0
	replied := false

	// advance moves the sequential scan to the next untested, non-rejected,
	// non-tree edge.
	advance := func() {
		for nextLink < len(adj) {
			h := adj[nextLink]
			nextLink++
			if nd.rejected[int(h.EdgeID)] || int(h.EdgeID) == nd.parentEdge || nd.children[int(h.EdgeID)] {
				continue
			}
			wantTest = int(h.EdgeID)
			return
		}
		testDone = true // exhausted: no outgoing candidate
	}
	if nd.active {
		advance()
	}
	return sim.BarrierStep(c, in, func(in sim.Input) bool {
		var repliedOn map[int]bool // edges that carried a reply this round
		for _, m := range in.Msgs {
			switch p := m.Payload.(type) {
			case dTest:
				c.Send(c.LinkOf(m.EdgeID), dReply{Accept: p.Frag != nd.frag, Frag: nd.frag})
				if repliedOn == nil {
					repliedOn = make(map[int]bool, 1)
				}
				repliedOn[m.EdgeID] = true
			case dReply:
				if m.EdgeID != awaiting {
					continue
				}
				awaiting = -1
				if p.Accept {
					e := c.Topo().Edge(m.EdgeID)
					nd.cand = dMin{Valid: true, W: e.Weight, Edge: m.EdgeID, Target: p.Frag}
					testDone = true
				} else {
					nd.rejected[m.EdgeID] = true
					advance()
				}
			case dMin:
				reports++
				if p.Valid && p.W < nd.best.W {
					nd.best = p
					nd.downEdge = m.EdgeID
				}
			}
		}
		// Flush a deferred test unless this round's reply already used the
		// link (one message per link per round).
		if wantTest != -1 && !repliedOn[wantTest] {
			c.Send(c.LinkOf(wantTest), dTest{Frag: nd.frag})
			awaiting = wantTest
			wantTest = -1
		}
		if !replied && testDone && reports == len(nd.children) {
			replied = true
			if nd.cand.Valid && nd.cand.W < nd.best.W {
				nd.best = nd.cand
				nd.downEdge = -1
			}
			if !nd.isCore() {
				c.Send(nd.parentLink(), nd.best)
			}
		}
		return (nd.active && !replied) || wantTest != -1
	})
}

// chooseAndHookStep is Step 2b: route CHOSEN from the core along the
// down-pointers to the MWOE endpoint, which hooks across the selected edge.
// Hooks from other fragments arrive during the same barrier step and are
// absorbed here.
func (nd *dnode) chooseAndHookStep(in sim.Input) sim.Input {
	c := nd.c
	started := false
	route := func() {
		if nd.downEdge == -1 {
			nd.chosen = true
			nd.outEdge = nd.best.Edge
			c.Send(c.LinkOf(nd.outEdge), dHook{Frag: nd.frag})
		} else {
			c.Send(c.LinkOf(nd.downEdge), dChosen{})
		}
	}
	return sim.BarrierStep(c, in, func(in sim.Input) bool {
		for _, m := range in.Msgs {
			switch p := m.Payload.(type) {
			case dChosen:
				route()
			case dHook:
				nd.hooks[m.EdgeID] = true
				nd.hookFrom[m.EdgeID] = p.Frag
			}
		}
		if nd.isCore() && nd.hasOut && !started {
			started = true
			route()
		}
		return false
	})
}

// phase runs one complete phase. phaseIdx is the paper's i; done reports
// that a single fragment spans the whole network.
func (nd *dnode) phase(in sim.Input, phaseIdx, cvIters int) (done bool, out sim.Input) {
	n := nd.c.N()

	// Reset per-phase state.
	nd.active = false
	nd.hooks = make(map[int]bool)
	nd.hookFrom = make(map[int]graph.NodeID)
	nd.chosen = false
	nd.mutual = false
	nd.mutualOth = -1
	nd.hasKids = false
	nd.hasOut = false
	nd.dropOut = false
	nd.inF = false
	nd.isFRoot = false
	nd.outEdge = -1
	nd.newCore = -1

	// Step 1: count sizes; broadcast activity (⌊log2 size⌋ == phase) and
	// the early-exit flag (a fragment spanning the whole graph).
	in = nd.countStep(in)
	in = nd.bcastDown(in,
		func() sim.Payload {
			level := bits.Len(uint(nd.size)) - 1
			return dActive{Active: level == phaseIdx, Done: nd.size == n}
		},
		func(m sim.Message) bool {
			a, ok := m.Payload.(dActive)
			if !ok {
				return false
			}
			nd.active = a.Active
			done = a.Done
			return true
		})
	if done {
		return true, in
	}

	// Step 2: minimum-weight outgoing edges.
	if nd.parallelMWOE {
		in = nd.mwoeStepParallel(in)
	} else {
		in = nd.mwoeStep(in)
	}
	if nd.isCore() {
		nd.hasOut = nd.active && nd.best.Valid
	}

	// Step 2b: route CHOSEN; the endpoint hooks across the MWOE.
	in = nd.chooseAndHookStep(in)

	// Step 2c: convergecast the chosen node's mutuality report (mutual iff
	// a hook arrived on its own out-edge). Encoded as other-core-id + 1.
	in = nd.convUp(in,
		func() int64 {
			if nd.chosen {
				if other, ok := nd.hookFrom[nd.outEdge]; ok {
					return int64(other) + 1
				}
			}
			return 0
		},
		func(a, b int64) int64 {
			if a != 0 {
				return a
			}
			return b
		},
		func(v int64) sim.Payload { return dInfo{Mutual: v != 0, Other: graph.NodeID(v - 1)} },
		func(p sim.Payload) (int64, bool) {
			if i, ok := p.(dInfo); ok {
				if i.Mutual {
					return int64(i.Other) + 1, true
				}
				return 0, true
			}
			return 0, false
		},
		func(total int64) {
			nd.mutual = total != 0
			nd.mutualOth = graph.NodeID(total - 1)
		})

	// Step 2d: broadcast the drop decision (the higher core of a mutually
	// selected edge roots the F-tree and drops its out-edge); a dropping
	// fragment's chosen node unhooks across, absorbed in this same step.
	if nd.isCore() {
		nd.dropOut = nd.hasOut && nd.mutual && nd.frag > nd.mutualOth
	}
	in = nd.bcastDown(in,
		func() sim.Payload { return dDrop{Drop: nd.dropOut} },
		func(m sim.Message) bool {
			switch d := m.Payload.(type) {
			case dDrop:
				nd.dropOut = d.Drop
				if d.Drop && nd.chosen {
					nd.c.Send(nd.c.LinkOf(nd.outEdge), dUnhook{})
				}
				return true
			case dUnhook:
				delete(nd.hooks, m.EdgeID)
				delete(nd.hookFrom, m.EdgeID)
				return false
			}
			return false
		})

	// Step 2e: convergecast whether any hooks survive (the fragment has
	// F-children).
	in = nd.convUp(in,
		func() int64 { return b2i64(len(nd.hooks) > 0) },
		func(a, b int64) int64 { return a | b },
		func(v int64) sim.Payload { return dHasKids{Has: v == 1} },
		func(p sim.Payload) (int64, bool) {
			if h, ok := p.(dHasKids); ok {
				return b2i64(h.Has), true
			}
			return 0, false
		},
		func(total int64) { nd.hasKids = total == 1 })
	if nd.isCore() {
		keepOut := nd.hasOut && !nd.dropOut
		nd.inF = keepOut || nd.hasKids
		nd.isFRoot = nd.inF && !keepOut
	}

	// Step 3: distributed GPS three-coloring of F. Initial colors are core
	// ids; cvIters Cole–Vishkin rounds reduce them below six; three
	// shift-down/recolor rounds eliminate colors 5, 4 and 3.
	nd.color = int64(nd.frag)
	for it := 0; it < cvIters; it++ {
		pv, ok, next := nd.pushToChildren(in, pkColor, nd.color)
		in = next
		if nd.isCore() && nd.inF {
			father := nd.color ^ 1 // F-roots pretend bit 0 differs
			if ok {
				father = pv
			}
			nd.color = cvColor(nd.color, father)
		}
	}
	for drop := int64(5); drop >= 3; drop-- {
		// Shift-down: take the F-parent's color; roots take the smallest
		// color different from their own.
		pv, ok, next := nd.pushToChildren(in, pkColor, nd.color)
		in = next
		if nd.isCore() && nd.inF {
			if ok {
				nd.color = pv
			} else {
				nd.color = smallestColorExcept(nd.color)
			}
		}
		// Children push their (uniform) post-shift color up; parents push
		// their post-shift color down; vertices colored `drop` pick the
		// smallest free color in {0,1,2}.
		kidC, hasKids, next2 := nd.pushToParent(in, pkChildC, nd.color, func(a, b int64) int64 { return a })
		in = next2
		pv3, hasParent, next3 := nd.pushToChildren(in, pkColor, nd.color)
		in = next3
		if nd.isCore() && nd.inF && nd.color == drop {
			var forbidden [8]bool
			if hasParent && pv3 >= 0 && pv3 < 8 {
				forbidden[pv3] = true
			}
			if hasKids && kidC >= 0 && kidC < 8 {
				forbidden[kidC] = true
			}
			for x := int64(0); x < 3; x++ {
				if !forbidden[x] {
					nd.color = x
					break
				}
			}
		}
	}

	// Step 4: make every F-root red while keeping the coloring legal
	// (children need their parent's pre-step color and root status).
	pv4, hasParent4, next4 := nd.pushToChildren(in, pkColor, encodeRootColor(nd.isFRoot, nd.color))
	in = next4
	if nd.isCore() && nd.inF {
		if !hasParent4 {
			nd.color = int64(coloring.Red) // F-root becomes (or stays) red
		} else {
			parentIsRoot, parentColor := decodeRootColor(pv4)
			if parentIsRoot && parentColor == int64(coloring.Red) {
				nd.color = thirdColor(int64(coloring.Red), nd.color)
			} else {
				nd.color = parentColor
			}
		}
	}

	// Step 5: promote blue then green vertices with no red neighbor.
	for _, promote := range []int64{int64(coloring.Blue), int64(coloring.Green)} {
		pv5, hasParent5, next5 := nd.pushToChildren(in, pkColor, nd.color)
		in = next5
		kidRed, hasKids5, next6 := nd.pushToParent(in, pkRed, b2i64(nd.color == int64(coloring.Red)),
			func(a, b int64) int64 { return a | b })
		in = next6
		if nd.isCore() && nd.inF && nd.color == promote {
			redNbr := (hasParent5 && pv5 == int64(coloring.Red)) || (hasKids5 && kidRed == 1)
			if !redNbr {
				nd.color = int64(coloring.Red)
			}
		}
	}

	// Step 6: red non-leaf vertices cut their out-edge and root new
	// fragments; chase the new core name down surviving F-edges (subtree
	// depth ≤ 4, so five pushes suffice).
	if nd.isCore() && nd.inF {
		redInternal := nd.color == int64(coloring.Red) && nd.hasKids
		if nd.isFRoot || redInternal {
			nd.newCore = nd.frag
		}
		if redInternal {
			nd.dropOut = true // the out-edge (if any) is cut for merging
		}
	}
	for hop := 0; hop < 5; hop++ {
		pv6, ok6, next7 := nd.pushToChildren(in, pkChase, int64(nd.newCore))
		in = next7
		if nd.isCore() && nd.inF && nd.newCore == -1 && ok6 && pv6 != -1 {
			nd.newCore = graph.NodeID(pv6)
		}
	}

	// Step 7a: broadcast the new fragment identity.
	in = nd.bcastDown(in,
		func() sim.Payload {
			if nd.inF {
				return dNewFrag{Core: nd.newCore}
			}
			return nil
		},
		func(m sim.Message) bool {
			nf, ok := m.Payload.(dNewFrag)
			if !ok {
				return false
			}
			nd.frag = nf.Core
			return true
		})

	// Step 7b: merge physically.
	in = nd.rerootStep(in)
	return false, in
}

// rerootStep is Step 7b: each fragment that kept its out-edge re-roots at
// the chosen node (flipping parent pointers along the core→chosen path) and
// attaches across the MWOE; hooked nodes add the cross edge as a child.
func (nd *dnode) rerootStep(in sim.Input) sim.Input {
	c := nd.c
	started := false
	keepOut := nd.isCore() && nd.hasOut && !nd.dropOut
	flip := func() {
		if nd.downEdge == -1 {
			// I am the chosen node: attach across.
			if nd.parentEdge != -1 {
				nd.children[nd.parentEdge] = true
			}
			nd.parentEdge = nd.outEdge
			c.Send(c.LinkOf(nd.outEdge), dAttach{})
		} else {
			c.Send(c.LinkOf(nd.downEdge), dReroot{})
			if nd.parentEdge != -1 {
				nd.children[nd.parentEdge] = true
			}
			nd.parentEdge = nd.downEdge
			delete(nd.children, nd.downEdge)
		}
	}
	return sim.BarrierStep(c, in, func(in sim.Input) bool {
		for _, m := range in.Msgs {
			switch m.Payload.(type) {
			case dReroot:
				flip()
			case dAttach:
				nd.children[m.EdgeID] = true
			}
		}
		if keepOut && !started {
			started = true
			flip()
		}
		return false
	})
}

func smallestColorExcept(c int64) int64 {
	for x := int64(0); ; x++ {
		if x != c {
			return x
		}
	}
}

func thirdColor(a, b int64) int64 {
	for x := int64(0); x < 3; x++ {
		if x != a && x != b {
			return x
		}
	}
	return -1
}

// encodeRootColor packs (isRoot, color) into one int64 for the Step 4 push.
func encodeRootColor(isRoot bool, color int64) int64 {
	v := color << 1
	if isRoot {
		v |= 1
	}
	return v
}

func decodeRootColor(v int64) (isRoot bool, color int64) {
	return v&1 == 1, v >> 1
}

func b2i64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// deterministicProgram runs `phases` phases of the deterministic partition.
func deterministicProgram(phases int, infoSink func(DeterministicInfo)) sim.Program {
	return func(c *sim.Ctx) error {
		nd := newDNode(c)
		cvIters := cvStepsFor(c.N())
		info := DeterministicInfo{CVSteps: cvIters}
		in := sim.Input{}
		for i := 0; i < phases; i++ {
			done, next := nd.phase(in, i, cvIters)
			in = next
			info.Phases = i + 1
			if done {
				break
			}
		}
		info.Finished = true
		parent := graph.NodeID(-1)
		if nd.parentEdge != -1 {
			parent = c.Topo().Edge(nd.parentEdge).Other(c.ID())
		}
		c.SetResult(NodeOutcome{Parent: parent, ParentEdge: nd.parentEdge, Root: nd.frag})
		if infoSink != nil && c.ID() == 0 {
			infoSink(info)
		}
		return nil
	}
}

// DeterministicPhaseCount returns the paper's phase budget ⌈log2(n)/2⌉,
// which yields fragments of size ≥ √n and radius O(√n).
func DeterministicPhaseCount(n int) int {
	p := (bits.Len(uint(n-1)) + 1) / 2
	if p < 1 {
		p = 1
	}
	return p
}

// DeterministicPhases runs the §3 algorithm for the given number of phases
// and returns the resulting spanning forest (every tree a subtree of the
// MST), run metrics, and info.
func DeterministicPhases(g graph.Topology, seed int64, phases int) (*forest.Forest, *sim.Metrics, *DeterministicInfo, error) {
	var info DeterministicInfo
	f, met, _, err := runAndBuild(g, deterministicProgram(phases, func(i DeterministicInfo) { info = i }),
		sim.WithSeed(seed))
	if err != nil {
		return nil, nil, nil, err
	}
	return f, met, &info, nil
}

// Deterministic runs the §3 partition with the paper's standard balance
// point: ⌈log2(n)/2⌉ phases, giving O(√n) trees of radius O(√n).
func Deterministic(g graph.Topology, seed int64) (*forest.Forest, *sim.Metrics, *DeterministicInfo, error) {
	return DeterministicPhases(g, seed, DeterministicPhaseCount(g.N()))
}

// Boruvka runs the same fragment machinery to completion (⌈log2 n⌉ phases
// plus early exit), producing the full MST as a single tree. This is the
// pure point-to-point baseline for the §6 experiment: it uses the channel
// only for the §7.1 barrier, never for data.
func Boruvka(g graph.Topology, seed int64) (*forest.Forest, *sim.Metrics, *DeterministicInfo, error) {
	phases := bits.Len(uint(g.N()-1)) + 1
	return DeterministicPhases(g, seed, phases)
}
