package forest

// protocol.go grows a rooted spanning forest *distributedly*: a BFS
// explore/ack wavefront from node 0 (every node adopts the least-id
// neighbor that reached it first), a size convergecast up the adopted tree,
// and a completion broadcast back down — the §2 point-to-point machinery
// the paper's local stages assume, producing a forest.Forest instead of a
// scalar aggregate. The protocol never touches the channel, so it is pure
// point-to-point: O(diameter) rounds and O(n + m) messages.
//
// Both engine forms are message-for-message identical — one shared bfsState
// transition drives the goroutine Program and the native machine, and the
// engines-equivalence suite compares them bit for bit. Being message-driven,
// the native form sleeps whenever no message can change its state, which
// grows million-node forests in seconds.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Protocol payloads.
type (
	fExplore struct{} // BFS wavefront
	fAck     struct{ Child bool }
	fValue   struct{ N int } // subtree size, convergecast up
	fDone    struct{ N int } // total, broadcast down: the termination signal
)

// bfsResult is one node's final record.
type bfsResult struct {
	Parent     graph.NodeID
	ParentEdge int
	Total      int
}

// BFSProgram returns the goroutine form of the spanning-forest protocol.
func BFSProgram() sim.Program {
	return func(c *sim.Ctx) error {
		st := newBFSState(c.ID() == 0)
		if st.root {
			st.explore(cSender{c}, 0, nil)
		}
		for {
			in := c.Tick()
			if st.step(cSender{c}, in) {
				c.SetResult(st.record())
				return nil
			}
		}
	}
}

// BFSStepProgram returns the native machine form of the protocol. Machines
// come from a per-run slab — one allocation for the whole network, with the
// protocol state embedded by value — so million-node forests cost one block
// per node, not two heap objects.
func BFSStepProgram() sim.StepProgram {
	var slab sim.Slab[bfsMachine]
	return func(c *sim.StepCtx) sim.Machine {
		m := slab.Alloc(c.N())
		*m = bfsMachine{c: c, st: newBFSState(c.ID() == 0)}
		return m
	}
}

type bfsMachine struct {
	c  *sim.StepCtx
	st bfsState
}

func (m *bfsMachine) Step(in sim.Input) bool {
	s := scSender{m.c}
	if in.Round == 0 {
		if m.st.root {
			m.st.explore(s, 0, nil)
		}
		return m.st.finishRound(m.c)
	}
	if m.st.step(s, in) {
		return true
	}
	return m.st.finishRound(m.c)
}

func (m *bfsMachine) Result() any { return m.st.record() }

// sender abstracts the two engines' send/link surface so one state
// transition drives both forms.
type sender interface {
	send(link int, p sim.Payload)
	degree() int
	linkOf(edgeID int) int
}

type cSender struct{ c *sim.Ctx }

func (s cSender) send(link int, p sim.Payload) { s.c.Send(link, p) }
func (s cSender) degree() int                  { return s.c.Degree() }
func (s cSender) linkOf(edgeID int) int        { return s.c.LinkOf(edgeID) }

type scSender struct{ c *sim.StepCtx }

func (s scSender) send(link int, p sim.Payload) { s.c.Send(link, p) }
func (s scSender) degree() int                  { return s.c.Degree() }
func (s scSender) linkOf(edgeID int) int        { return s.c.LinkOf(edgeID) }

// bfsState is the per-node protocol state, identical across engine forms.
type bfsState struct {
	root bool

	parent     graph.NodeID
	parentEdge int
	parentLink int

	adopted     bool
	explored    bool
	sentUp      bool
	acksPending int
	childLinks  []int
	reports     int
	size        int

	total    int
	resultIn bool
}

func newBFSState(root bool) bfsState {
	return bfsState{root: root, adopted: root, parent: -1, parentEdge: -1, parentLink: -1, size: 1}
}

// explore sends the wavefront on every link except those named by the skip
// set — a bitmask over links < 64 plus a map for a high-degree hub's rest,
// so the common case stays allocation-free.
func (st *bfsState) explore(s sender, skipMask uint64, skipBig map[int]bool) {
	for l := 0; l < s.degree(); l++ {
		if l < 64 && skipMask&(uint64(1)<<l) != 0 {
			continue
		}
		if l >= 64 && skipBig[l] {
			continue
		}
		s.send(l, fExplore{})
		st.acksPending++
	}
	st.explored = true
}

func (st *bfsState) forward(s sender, v int) {
	for _, l := range st.childLinks {
		s.send(l, fDone{N: v})
	}
	st.total, st.resultIn = v, true
}

// step consumes one round's input; true means the node is finished.
func (st *bfsState) step(s sender, in sim.Input) (halt bool) {
	// Adoption: among this round's explores pick the least sender; links
	// that carried an explore lead to already-adopted nodes.
	bestLink := -1
	bestEdge := -1
	var bestFrom graph.NodeID
	var skipMask uint64
	var skipBig map[int]bool
	for _, msg := range in.Msgs {
		if _, ok := msg.Payload.(fExplore); ok {
			l := s.linkOf(msg.EdgeID)
			if l < 64 {
				skipMask |= uint64(1) << l
			} else {
				if skipBig == nil {
					skipBig = make(map[int]bool, 2)
				}
				skipBig[l] = true
			}
			if bestLink == -1 || msg.From < bestFrom {
				bestLink, bestEdge, bestFrom = l, msg.EdgeID, msg.From
			}
		}
	}
	adoptedNow := false
	if bestLink != -1 && !st.adopted {
		st.adopted, adoptedNow = true, true
		st.parentLink, st.parentEdge, st.parent = bestLink, bestEdge, bestFrom
		st.explore(s, skipMask, skipBig)
	}
	parentLinkBusy := false
	for _, msg := range in.Msgs {
		l := s.linkOf(msg.EdgeID)
		switch p := msg.Payload.(type) {
		case fExplore:
			s.send(l, fAck{Child: adoptedNow && l == st.parentLink})
			if l == st.parentLink {
				parentLinkBusy = true
			}
		case fAck:
			st.acksPending--
			if p.Child {
				st.childLinks = append(st.childLinks, l)
			}
		case fValue:
			st.size += p.N
			st.reports++
		case fDone:
			st.forward(s, p.N)
		}
	}
	// Convergecast once the child set is final and all children reported;
	// wait a round if the ack already used the parent link.
	if st.upReady() && !parentLinkBusy {
		st.sentUp = true
		if st.root {
			st.forward(s, st.size)
		} else {
			s.send(st.parentLink, fValue{N: st.size})
		}
	}
	return st.resultIn && st.acksPending == 0
}

func (st *bfsState) upReady() bool {
	return st.adopted && st.explored && st.acksPending == 0 && !st.sentUp &&
		st.reports == len(st.childLinks)
}

// finishRound parks the native machine whenever only a message can change
// its state (the goroutine form just blocks in Tick).
func (st *bfsState) finishRound(c *sim.StepCtx) bool {
	if !st.upReady() {
		c.Sleep()
	}
	return false
}

func (st *bfsState) record() any {
	return bfsResult{Parent: st.parent, ParentEdge: st.parentEdge, Total: st.total}
}

// BFS grows the spanning forest of g from node 0 on sim.DefaultEngine and
// validates it. Every node also learns n (the convergecast total), returned
// for cross-checking.
func BFS(g graph.Topology, seed int64) (*Forest, int, sim.Metrics, error) {
	var res *sim.Result
	var err error
	if sim.DefaultEngine == sim.EngineStep {
		res, err = sim.RunStep(g, BFSStepProgram(), sim.WithSeed(seed))
	} else {
		res, err = sim.Run(g, BFSProgram(), sim.WithSeed(seed))
	}
	if err != nil {
		return nil, 0, sim.Metrics{}, fmt.Errorf("forest: bfs: %w", err)
	}
	n := g.N()
	parent := make([]graph.NodeID, n)
	parentEdge := make([]int, n)
	total := 0
	totalSet := false
	for v, r := range res.Results {
		rec, ok := r.(bfsResult)
		if !ok {
			// Crash-stopped before recording: the node ends up a root of its
			// own (possibly trivial) tree.
			parent[v], parentEdge[v] = -1, -1
			continue
		}
		parent[v], parentEdge[v] = rec.Parent, rec.ParentEdge
		if !totalSet {
			total, totalSet = rec.Total, true
		} else if rec.Total != total {
			return nil, 0, sim.Metrics{}, fmt.Errorf("forest: node %d learned total %d, others %d", v, rec.Total, total)
		}
	}
	f, err := New(g, parent, parentEdge)
	if err != nil {
		return nil, 0, sim.Metrics{}, err
	}
	if res.Metrics.Slots() != 0 {
		return nil, 0, sim.Metrics{}, fmt.Errorf("forest: bfs touched the channel")
	}
	return f, total, res.Metrics, nil
}
