package forest

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// pathGraph returns the path 0-1-2-3-4 with weights 1..4 (edge i joins i, i+1).
func pathGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.NewBuilder(5).
		AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 3, 3).AddEdge(3, 4, 4).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewSingleTree(t *testing.T) {
	g := pathGraph(t)
	f, err := New(g,
		[]graph.NodeID{-1, 0, 1, 2, 3},
		[]int{-1, 0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trees() != 1 {
		t.Errorf("Trees = %d, want 1", f.Trees())
	}
	for v := 0; v < 5; v++ {
		if f.Root(graph.NodeID(v)) != 0 {
			t.Errorf("Root(%d) = %d, want 0", v, f.Root(graph.NodeID(v)))
		}
		if f.Depth(graph.NodeID(v)) != v {
			t.Errorf("Depth(%d) = %d, want %d", v, f.Depth(graph.NodeID(v)), v)
		}
	}
	st := f.Stats()
	if st.Trees != 1 || st.MinSize != 5 || st.MaxSize != 5 || st.MaxRadius != 4 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestNewTwoTrees(t *testing.T) {
	g := pathGraph(t)
	f, err := New(g,
		[]graph.NodeID{-1, 0, -1, 2, 3},
		[]int{-1, 0, -1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trees() != 2 {
		t.Errorf("Trees = %d, want 2", f.Trees())
	}
	roots := f.Roots()
	if len(roots) != 2 || roots[0] != 0 || roots[1] != 2 {
		t.Errorf("Roots = %v", roots)
	}
	st := f.Stats()
	if st.MinSize != 2 || st.MaxSize != 3 || st.MaxRadius != 2 {
		t.Errorf("Stats = %+v", st)
	}
	ch := f.Children()
	if len(ch[2]) != 1 || ch[2][0] != 3 {
		t.Errorf("Children(2) = %v", ch[2])
	}
}

func TestNewErrors(t *testing.T) {
	g := pathGraph(t)
	cases := []struct {
		name       string
		parent     []graph.NodeID
		parentEdge []int
	}{
		{"length mismatch", []graph.NodeID{-1}, []int{-1}},
		{"root with edge", []graph.NodeID{-1, 0, 1, 2, 3}, []int{0, 0, 1, 2, 3}},
		{"parent out of range", []graph.NodeID{9, -1, -1, -1, -1}, []int{0, -1, -1, -1, -1}},
		{"edge id out of range", []graph.NodeID{1, -1, -1, -1, -1}, []int{9, -1, -1, -1, -1}},
		{"edge does not connect", []graph.NodeID{1, -1, -1, -1, -1}, []int{2, -1, -1, -1, -1}},
		{"cycle", []graph.NodeID{1, 0, -1, -1, -1}, []int{0, 0, -1, -1, -1}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(g, tt.parent, tt.parentEdge); !errors.Is(err, ErrInvalidForest) {
				t.Errorf("New = %v, want ErrInvalidForest", err)
			}
		})
	}
}

func TestSubtreeOfMST(t *testing.T) {
	// Triangle with weights 1,2,3: MST = edges 0,1.
	g, err := graph.NewBuilder(3).AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(0, 2, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	mst, err := graph.Kruskal(g)
	if err != nil {
		t.Fatal(err)
	}
	good, err := New(g, []graph.NodeID{-1, 0, 1}, []int{-1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := good.SubtreeOfMST(mst); err != nil {
		t.Errorf("good forest rejected: %v", err)
	}
	bad, err := New(g, []graph.NodeID{-1, 0, 0}, []int{-1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.SubtreeOfMST(mst); err == nil {
		t.Error("forest using non-MST edge accepted")
	}
}

func TestCheckPartition(t *testing.T) {
	g := pathGraph(t)
	f, err := New(g,
		[]graph.NodeID{-1, 0, -1, 2, 3},
		[]int{-1, 0, -1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CheckPartition(2, 2); err != nil {
		t.Errorf("CheckPartition(2,2) = %v", err)
	}
	if err := f.CheckPartition(1, 2); err == nil {
		t.Error("tree bound violation not caught")
	}
	if err := f.CheckPartition(2, 1); err == nil {
		t.Error("radius bound violation not caught")
	}
}

func TestForestCopiesInput(t *testing.T) {
	g := pathGraph(t)
	parent := []graph.NodeID{-1, 0, 1, 2, 3}
	pe := []int{-1, 0, 1, 2, 3}
	f, err := New(g, parent, pe)
	if err != nil {
		t.Fatal(err)
	}
	parent[1] = -1
	pe[1] = -1
	if f.Parent[1] != 0 || f.ParentEdge[1] != 0 {
		t.Error("forest aliases caller's slices")
	}
}
