package forest

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func withEngine(t *testing.T, e sim.Engine, f func()) {
	t.Helper()
	old := sim.DefaultEngine
	sim.DefaultEngine = e
	defer func() { sim.DefaultEngine = old }()
	f()
}

// TestBFSGrowsSpanningTree: the protocol must produce a single spanning
// tree rooted at node 0, with every node learning n.
func TestBFSGrowsSpanningTree(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (*graph.Graph, error)
	}{
		{"pair", func() (*graph.Graph, error) { return graph.Path(2, 1) }},
		{"ring48", func() (*graph.Graph, error) { return graph.Ring(48, 2) }},
		{"random64", func() (*graph.Graph, error) { return graph.RandomConnected(64, 120, 5) }},
		{"star32", func() (*graph.Graph, error) { return graph.Star(32, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			f, total, met, err := BFS(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			if total != g.N() {
				t.Errorf("total = %d, want %d", total, g.N())
			}
			if f.Trees() != 1 {
				t.Errorf("trees = %d, want 1", f.Trees())
			}
			if f.Root(0) != 0 {
				t.Errorf("root of node 0 = %d, want 0", f.Root(0))
			}
			if met.Messages == 0 && g.N() > 1 {
				t.Error("no messages recorded")
			}
		})
	}
}

// TestBFSEngineEquivalence: both engine forms must produce identical
// forests and metrics.
func TestBFSEngineEquivalence(t *testing.T) {
	g, err := graph.RandomConnected(80, 160, 7)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		parent []graph.NodeID
		edges  []int
		met    sim.Metrics
	}
	var want, got out
	withEngine(t, sim.EngineGoroutine, func() {
		f, _, met, err := BFS(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		want = out{f.Parent, f.ParentEdge, met}
	})
	withEngine(t, sim.EngineStep, func() {
		f, _, met, err := BFS(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		got = out{f.Parent, f.ParentEdge, met}
	})
	if !reflect.DeepEqual(want, got) {
		t.Errorf("engines diverge:\n goroutine: %+v\n step:      %+v", want, got)
	}
}
