// Package forest represents the rooted spanning forests produced by the
// partitioning algorithms of §3 and §4 — the "O(√n) trees of radius O(√n)"
// that balance the local and global stages — together with the validators
// the experiments rely on: spanning-ness, acyclicity, per-tree size and
// radius, and the §3 property that every tree is a subtree of the MST.
package forest

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Forest is a rooted spanning forest of a graph. For roots ("cores" in the
// paper's terminology) Parent[v] == -1 and ParentEdge[v] == -1; for every
// other vertex ParentEdge[v] is the graph edge connecting v to Parent[v].
type Forest struct {
	G          graph.Topology
	Parent     []graph.NodeID
	ParentEdge []int

	root  []graph.NodeID
	depth []int
}

// ErrInvalidForest is wrapped by all New validation failures.
var ErrInvalidForest = errors.New("forest: invalid spanning forest")

// New validates parent pointers against g and precomputes roots and depths.
func New(g graph.Topology, parent []graph.NodeID, parentEdge []int) (*Forest, error) {
	n := g.N()
	if len(parent) != n || len(parentEdge) != n {
		return nil, fmt.Errorf("%w: got %d parents and %d parent edges for %d nodes",
			ErrInvalidForest, len(parent), len(parentEdge), n)
	}
	f := &Forest{
		G:          g,
		Parent:     append([]graph.NodeID(nil), parent...),
		ParentEdge: append([]int(nil), parentEdge...),
		root:       make([]graph.NodeID, n),
		depth:      make([]int, n),
	}
	for v := 0; v < n; v++ {
		p := parent[v]
		switch {
		case p == -1:
			if parentEdge[v] != -1 {
				return nil, fmt.Errorf("%w: root %d has parent edge %d", ErrInvalidForest, v, parentEdge[v])
			}
		case p < 0 || int(p) >= n:
			return nil, fmt.Errorf("%w: parent[%d] = %d", ErrInvalidForest, v, p)
		default:
			id := parentEdge[v]
			if id < 0 || id >= g.M() {
				return nil, fmt.Errorf("%w: parent edge id %d of node %d", ErrInvalidForest, id, v)
			}
			e := g.Edge(id)
			if !((e.U == graph.NodeID(v) && e.V == p) || (e.V == graph.NodeID(v) && e.U == p)) {
				return nil, fmt.Errorf("%w: edge %d does not connect %d to its parent %d", ErrInvalidForest, id, v, p)
			}
		}
		f.root[v] = -1
		f.depth[v] = -1
	}
	// Resolve roots and depths; detect cycles.
	for v := 0; v < n; v++ {
		if err := f.resolve(graph.NodeID(v)); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (f *Forest) resolve(v graph.NodeID) error {
	var path []graph.NodeID
	u := v
	for f.root[u] == -1 {
		path = append(path, u)
		if f.Parent[u] == -1 {
			f.root[u] = u
			f.depth[u] = 0
			break
		}
		u = f.Parent[u]
		if len(path) > len(f.Parent) {
			return fmt.Errorf("%w: cycle through node %d", ErrInvalidForest, v)
		}
	}
	for i := len(path) - 1; i >= 0; i-- {
		w := path[i]
		if w == f.root[w] {
			continue
		}
		p := f.Parent[w]
		f.root[w] = f.root[p]
		f.depth[w] = f.depth[p] + 1
	}
	return nil
}

// Root returns the core of v's tree.
func (f *Forest) Root(v graph.NodeID) graph.NodeID { return f.root[v] }

// Depth returns v's hop distance from its core along tree edges.
func (f *Forest) Depth(v graph.NodeID) int { return f.depth[v] }

// Roots returns all cores in ascending id order.
func (f *Forest) Roots() []graph.NodeID {
	var roots []graph.NodeID
	for v, p := range f.Parent {
		if p == -1 {
			roots = append(roots, graph.NodeID(v))
		}
	}
	return roots
}

// Trees returns the number of trees in the forest.
func (f *Forest) Trees() int { return len(f.Roots()) }

// Children returns, for every vertex, its tree children.
func (f *Forest) Children() [][]graph.NodeID {
	ch := make([][]graph.NodeID, f.G.N())
	for v, p := range f.Parent {
		if p != -1 {
			ch[p] = append(ch[p], graph.NodeID(v))
		}
	}
	return ch
}

// Stats summarizes the forest for the experiment tables.
type Stats struct {
	Trees     int
	MinSize   int
	MaxSize   int
	MaxRadius int // max over trees of max depth below the core
}

// Stats computes per-forest statistics.
func (f *Forest) Stats() Stats {
	size := make(map[graph.NodeID]int)
	radius := make(map[graph.NodeID]int)
	for v := range f.Parent {
		r := f.root[v]
		size[r]++
		if f.depth[v] > radius[r] {
			radius[r] = f.depth[v]
		}
	}
	st := Stats{Trees: len(size)}
	first := true
	//mmlint:commutative min/max reduction over per-root aggregates; order-free
	for r, s := range size {
		if first || s < st.MinSize {
			st.MinSize = s
		}
		if s > st.MaxSize {
			st.MaxSize = s
		}
		if radius[r] > st.MaxRadius {
			st.MaxRadius = radius[r]
		}
		first = false
	}
	return st
}

// SubtreeOfMST verifies the §3 property: every tree edge belongs to the
// given MST (so every tree is a subtree of the minimum spanning tree).
func (f *Forest) SubtreeOfMST(mst *graph.MST) error {
	for v, id := range f.ParentEdge {
		if id == -1 {
			continue
		}
		if !mst.Contains(id) {
			return fmt.Errorf("forest: tree edge %d (node %d) is not an MST edge", id, v)
		}
	}
	return nil
}

// CheckPartition verifies the balance guarantees the paper's partition
// theorems promise: at most maxTrees trees and radius at most maxRadius.
func (f *Forest) CheckPartition(maxTrees, maxRadius int) error {
	st := f.Stats()
	if st.Trees > maxTrees {
		return fmt.Errorf("forest: %d trees exceeds bound %d", st.Trees, maxTrees)
	}
	if st.MaxRadius > maxRadius {
		return fmt.Errorf("forest: radius %d exceeds bound %d", st.MaxRadius, maxRadius)
	}
	return nil
}
