package fault

// parse.go implements the compact fault-plan DSL used by the -faults flags:
//
//	plan    = item *( ";" item )            (whitespace around items is ok)
//	item    = "seed:" INT
//	        | "crash:" NODE "@" ROUND
//	        | "crashfrac:" FRAC "@" window
//	        | "drop:"  edge "@" window opts
//	        | "delay:" edge "@" window opts
//	        | "dup:"   edge "@" window opts
//	        | "jam:" window opts
//	        | "partition:" GROUPS "@" window opts
//	        | "restart:" NODE "@" ROUND
//	        | "skew:" NODE "@" window opts
//	edge    = INT | "*"                     ("*" = every edge)
//	window  = FROM | FROM "-" | FROM "-" UNTIL
//	opts    = *( "/d" INT | "/p" FLOAT | "/e" INT )
//	                                        (lag, firing probability, recurrence period)
//
// Examples:
//
//	crash:7@10                  node 7 stops before observing round 10
//	drop:3@5-                   edge 3 is down from round 5 on
//	delay:*@1-/d2/p0.1          10% of all messages arrive 2 rounds late
//	jam:4-12/p0.5               rounds 4..12: slots jammed with rate 1/2
//	seed:42;crashfrac:0.1@1-20  10% of nodes crash during rounds 1..20
//	partition:3@10-19           rounds 10..19: the network splits into 3
//	                            seeded components, then heals
//	jam:5-8/e20                 a 4-round jam recurring every 20 rounds
//	crash:7@10;restart:7@25     node 7 crashes, rejoins fresh at round 25
//	skew:2@5-30/d3              node 2's clock runs 3 rounds late
//	                            (synchronizer runs only)

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Parse builds a Plan from the DSL. An empty (or all-whitespace) string
// yields a nil plan: no faults.
func Parse(s string) (*Plan, error) {
	p := &Plan{}
	for _, item := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == ' ' || r == '\t' || r == '\n' }) {
		if err := parseItem(p, item); err != nil {
			return nil, fmt.Errorf("fault: parse %q: %w", item, err)
		}
	}
	if p.Empty() {
		return nil, nil
	}
	return p, nil
}

func parseItem(p *Plan, item string) error {
	kind, rest, ok := strings.Cut(item, ":")
	if !ok {
		return fmt.Errorf("want kind:spec")
	}
	if kind == "seed" {
		seed, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed: %v", err)
		}
		p.Seed = seed
		return nil
	}

	spec := rest
	var opts []string
	if head, tail, ok := strings.Cut(rest, "/"); ok {
		spec, opts = head, strings.Split(tail, "/")
	}
	r := Rule{}
	switch kind {
	case "crash":
		r.Kind = Crash
	case "crashfrac":
		r.Kind = CrashFrac
	case "drop":
		r.Kind = Drop
	case "delay":
		r.Kind = Delay
	case "dup":
		r.Kind = Dup
	case "jam":
		r.Kind = Jam
	case "partition":
		r.Kind = Partition
	case "restart":
		r.Kind = Restart
	case "skew":
		r.Kind = Skew
	default:
		return fmt.Errorf("unknown fault kind %q", kind)
	}

	window := spec
	if r.Kind != Jam {
		target, w, ok := strings.Cut(spec, "@")
		if !ok {
			return fmt.Errorf("want target@rounds")
		}
		window = w
		switch r.Kind {
		case Crash, Restart, Skew:
			node, err := strconv.Atoi(target)
			if err != nil {
				return fmt.Errorf("bad node %q", target)
			}
			r.Node = graph.NodeID(node)
		case Partition:
			groups, err := strconv.Atoi(target)
			if err != nil {
				return fmt.Errorf("bad group count %q", target)
			}
			r.Groups = groups
		case CrashFrac:
			frac, err := strconv.ParseFloat(target, 64)
			if err != nil {
				return fmt.Errorf("bad fraction %q", target)
			}
			r.Frac = frac
		default: // Drop, Delay, Dup
			if target == "*" {
				r.Edge = AllEdges
			} else {
				edge, err := strconv.Atoi(target)
				if err != nil {
					return fmt.Errorf("bad edge %q", target)
				}
				r.Edge = edge
			}
		}
	}
	var err error
	if r.From, r.Until, err = parseWindow(window); err != nil {
		return err
	}
	if (r.Kind == Crash || r.Kind == Restart) && r.Until != 0 {
		return fmt.Errorf("%s takes a single round, not a window", r.Kind)
	}
	for _, o := range opts {
		switch {
		case strings.HasPrefix(o, "d"):
			if r.Lag, err = strconv.Atoi(o[1:]); err != nil {
				return fmt.Errorf("bad lag %q", o)
			}
		case strings.HasPrefix(o, "p"):
			if r.Prob, err = strconv.ParseFloat(o[1:], 64); err != nil {
				return fmt.Errorf("bad probability %q", o)
			}
		case strings.HasPrefix(o, "e"):
			if r.Every, err = strconv.Atoi(o[1:]); err != nil {
				return fmt.Errorf("bad period %q", o)
			}
			if r.Every <= 0 {
				return fmt.Errorf("zero or negative period %q (want /eN with N ≥ 1)", o)
			}
		default:
			return fmt.Errorf("unknown option %q (want /dN, /pF, or /eN)", o)
		}
	}
	p.Rules = append(p.Rules, r)
	return nil
}

// parseWindow parses FROM, FROM-, or FROM-UNTIL. A bare FROM leaves Until 0
// (normalized to the single round FROM).
func parseWindow(w string) (from, until int, err error) {
	fromStr, untilStr, dashed := strings.Cut(w, "-")
	if from, err = strconv.Atoi(fromStr); err != nil {
		return 0, 0, fmt.Errorf("bad round %q", fromStr)
	}
	switch {
	case !dashed:
		return from, 0, nil
	case untilStr == "":
		return from, Forever, nil
	default:
		if until, err = strconv.Atoi(untilStr); err != nil {
			return 0, 0, fmt.Errorf("bad round %q", untilStr)
		}
		return from, until, nil
	}
}
