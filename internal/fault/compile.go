package fault

// compile.go turns a declarative Plan into an Injector: the compiled,
// read-only lookup structure the sim engines consult at their per-round
// choke points. Compilation validates the plan against the concrete graph,
// resolves CrashFrac rules into concrete (node, round) crashes, and indexes
// message rules by edge. An Injector is immutable after Compile, so both
// engines may query it from any number of workers without synchronization.

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"

	"repro/internal/graph"
)

// Fate is the injector's verdict on one message delivery.
type Fate int

// The message fates.
const (
	// Deliver leaves the message alone.
	Deliver Fate = iota
	// DropMsg destroys the message.
	DropMsg
	// DelayMsg defers the message by the returned lag.
	DelayMsg
	// DupMsg delivers the message now and again after the returned lag.
	DupMsg
	// PartitionDrop destroys the message because its endpoints are in
	// different partition components during an active partition window.
	PartitionDrop
	// SkewMsg defers the message by the returned lag because its sender's
	// clock is skewed (synchronizer runs only). Mechanically a delay, but
	// counted separately.
	SkewMsg
)

// Caps declares which fault capabilities the executing engine layer
// supports. Plain round-synchronous runs compile with the zero Caps; the
// §7.1 synchronizer layer enables Skew.
type Caps struct {
	// Skew permits skew: rules — per-node clock skew only means something
	// where a synchronizer simulates the clock.
	Skew bool
}

// mrule is one compiled message-fault rule.
type mrule struct {
	fate  Fate // DropMsg, DelayMsg, or DupMsg
	index int  // rule index in the plan, salting the coin flips
	from  int
	until int
	every int
	prob  float64
	lag   int
}

// jrule is one compiled jam rule.
type jrule struct {
	index int
	from  int
	until int
	every int
	prob  float64
}

// prule is one compiled partition rule.
type prule struct {
	index  int
	from   int
	until  int
	every  int
	groups int
}

// srule is one compiled clock-skew rule.
type srule struct {
	index int
	node  graph.NodeID
	from  int
	until int
	every int
	lag   int
}

// inWindow reports whether round falls in the window [from, until],
// repeated with period `every` when every > 0 (the /eN recurrence: the
// window re-opens at from, from+every, from+2·every, ...).
func inWindow(round, from, until, every int) bool {
	if round < from {
		return false
	}
	if every <= 0 {
		return round <= until
	}
	return (round-from)%every <= until-from
}

// Injector is a compiled fault plan. The zero value and the nil Injector
// inject nothing; engines may hold a nil *Injector for fault-free runs and
// skip every hook.
type Injector struct {
	seed          int64
	crashes       map[int][]graph.NodeID // observation round -> nodes crashing
	crashRounds   []int                  // sorted distinct crash rounds (next-event queries)
	restarts      map[int][]graph.NodeID // round -> crashed nodes rejoining fresh
	restartRounds []int                  // sorted distinct restart rounds
	edgeRules     map[int][]mrule        // per-edge message rules, plan order
	allRules      []mrule                // wildcard (AllEdges) message rules
	jams          []jrule
	parts         []prule
	skews         []srule
}

// Compile validates the plan against g (any topology form) and builds its
// injector under the zero capability set (no synchronizer-only rules). A
// nil or empty plan compiles to a nil injector and no error.
func Compile(p *Plan, g graph.Topology) (*Injector, error) {
	return CompileFor(p, g, Caps{})
}

// CompileFor compiles the plan for an engine layer with the given
// capabilities. The §7.1 synchronizer passes Caps{Skew: true}; everything
// else should use Compile.
func CompileFor(p *Plan, g graph.Topology, caps Caps) (*Injector, error) {
	if p.Empty() {
		return nil, nil
	}
	if err := p.validate(g, caps); err != nil {
		return nil, err
	}
	inj := &Injector{seed: p.Seed}
	type restartRule struct {
		node  graph.NodeID
		round int
	}
	var restartRules []restartRule
	for i := range p.Rules {
		r := &p.Rules[i]
		from, until := r.window()
		switch r.Kind {
		case Crash:
			// /pP on a crash rule is a compile-time coin: the node either
			// crashes at its round in every run of the plan, or never.
			if p := r.prob(); p >= 1 || inj.roll(i, uint64(r.Node), 0xc4a5e, 0, p) {
				inj.addCrash(r.Node, from)
			}
		case CrashFrac:
			// Resolve the fraction into concrete crashes with a private RNG
			// derived from (plan seed, rule index): the same plan picks the
			// same victims and rounds on any engine, every stage of a
			// multi-stage protocol, and any worker count.
			n := g.N()
			k := int(math.Ceil(r.Frac * float64(n)))
			if k > n {
				k = n
			}
			rng := rand.New(rand.NewSource(int64(Mix64(uint64(p.Seed), uint64(i), 0x5eed))))
			for _, v := range rng.Perm(n)[:k] {
				inj.addCrash(graph.NodeID(v), from+rng.Intn(until-from+1))
			}
		case Drop, Delay, Dup:
			m := mrule{index: i, from: from, until: until, every: r.Every, prob: r.prob(), lag: r.lag()}
			switch r.Kind {
			case Drop:
				m.fate = DropMsg
			case Delay:
				m.fate = DelayMsg
			case Dup:
				m.fate = DupMsg
			}
			if r.Edge == AllEdges {
				inj.allRules = append(inj.allRules, m)
			} else {
				if inj.edgeRules == nil {
					inj.edgeRules = make(map[int][]mrule)
				}
				inj.edgeRules[r.Edge] = append(inj.edgeRules[r.Edge], m)
			}
		case Jam:
			inj.jams = append(inj.jams, jrule{index: i, from: from, until: until, every: r.Every, prob: r.prob()})
		case Partition:
			inj.parts = append(inj.parts, prule{index: i, from: from, until: until, every: r.Every, groups: r.Groups})
		case Restart:
			restartRules = append(restartRules, restartRule{node: r.Node, round: from})
		case Skew:
			inj.skews = append(inj.skews, srule{index: i, node: r.Node, from: from, until: until, every: r.Every, lag: r.lag()})
		}
	}
	// A restart fires iff its crash fired (a /pP crash is a compile-time
	// coin that may leave the node standing): keep only restarts whose node
	// is actually scheduled to crash at an earlier round.
	for _, rr := range restartRules {
		//mmlint:commutative order-free membership test: does the node crash at any earlier round
		for round, nodes := range inj.crashes {
			if round >= rr.round {
				continue
			}
			if slices.Contains(nodes, rr.node) {
				inj.addRestart(rr.node, rr.round)
				break
			}
		}
	}
	//mmlint:commutative per-round slices are sorted in place and the round indexes are sorted after
	for round, nodes := range inj.crashes {
		slices.Sort(nodes)
		inj.crashRounds = append(inj.crashRounds, round)
	}
	sort.Ints(inj.crashRounds)
	//mmlint:commutative per-round slices are sorted in place and restartRounds is sorted after
	for round, nodes := range inj.restarts {
		slices.Sort(nodes)
		inj.restartRounds = append(inj.restartRounds, round)
	}
	sort.Ints(inj.restartRounds)
	return inj, nil
}

func (inj *Injector) addCrash(v graph.NodeID, round int) {
	if inj.crashes == nil {
		inj.crashes = make(map[int][]graph.NodeID)
	}
	inj.crashes[round] = append(inj.crashes[round], v)
}

func (inj *Injector) addRestart(v graph.NodeID, round int) {
	if inj.restarts == nil {
		inj.restarts = make(map[int][]graph.NodeID)
	}
	inj.restarts[round] = append(inj.restarts[round], v)
}

// CrashesAt returns the nodes crash-stopping at the given observation round
// (ascending node order). Nil-safe.
func (inj *Injector) CrashesAt(round int) []graph.NodeID {
	if inj == nil {
		return nil
	}
	return inj.crashes[round]
}

// HasCrashes reports whether any crash is scheduled. Nil-safe.
func (inj *Injector) HasCrashes() bool { return inj != nil && len(inj.crashes) > 0 }

// NextCrashAfter returns the earliest crash round strictly after the given
// round — the next-event query engines use to fast-forward quiescent
// stretches. Nil-safe; ok is false when no later crash is scheduled.
func (inj *Injector) NextCrashAfter(round int) (next int, ok bool) {
	if inj == nil || len(inj.crashRounds) == 0 {
		return 0, false
	}
	i := sort.SearchInts(inj.crashRounds, round+1)
	if i == len(inj.crashRounds) {
		return 0, false
	}
	return inj.crashRounds[i], true
}

// RestartsAt returns the crashed nodes rejoining fresh at the given round
// (ascending node order): each performs its new incarnation's initial
// compute at that round. Nil-safe.
func (inj *Injector) RestartsAt(round int) []graph.NodeID {
	if inj == nil {
		return nil
	}
	return inj.restarts[round]
}

// HasRestarts reports whether any restart is scheduled. Nil-safe.
func (inj *Injector) HasRestarts() bool { return inj != nil && len(inj.restarts) > 0 }

// NextRestartAfter returns the earliest restart round strictly after the
// given round — the next-event query that keeps fast-forwarded quiescent
// stretches from jumping over a scheduled rejoin. Nil-safe; ok is false
// when no later restart is scheduled.
func (inj *Injector) NextRestartAfter(round int) (next int, ok bool) {
	if inj == nil || len(inj.restartRounds) == 0 {
		return 0, false
	}
	i := sort.SearchInts(inj.restartRounds, round+1)
	if i == len(inj.restartRounds) {
		return 0, false
	}
	return inj.restartRounds[i], true
}

// HasJams reports whether any jam rule exists. Nil-safe.
func (inj *Injector) HasJams() bool { return inj != nil && len(inj.jams) > 0 }

// NextClearSlot returns the earliest round in [from, until] whose slot is
// not jammed. Without jam rules that is from itself, for free; with them
// the scan costs one Jammed query per jammed round skipped. Nil-safe, pure,
// and safe for concurrent use.
func (inj *Injector) NextClearSlot(from, until int) (round int, ok bool) {
	if from > until {
		return 0, false
	}
	if !inj.HasJams() {
		return from, true
	}
	for s := from; s <= until; s++ {
		if !inj.Jammed(s) {
			return s, true
		}
	}
	return 0, false
}

// CountJammed returns how many of the slots in [from, until] are jammed —
// the arithmetic engines need to account for slots they fast-forward over.
// The scan is clamped to the union of the jam windows, so plans without jam
// rules (or with windows elsewhere) cost nothing. Nil-safe, pure, and safe
// for concurrent use.
func (inj *Injector) CountJammed(from, until int) int64 {
	if !inj.HasJams() || from > until {
		return 0
	}
	lo, hi := math.MaxInt, 0
	for i := range inj.jams {
		lo = min(lo, inj.jams[i].from)
		if inj.jams[i].every > 0 {
			// A recurring jam re-opens its window forever; only one-shot
			// rules bound the scan from above.
			hi = math.MaxInt
		} else {
			hi = max(hi, inj.jams[i].until)
		}
	}
	from, until = max(from, lo), min(until, hi)
	var n int64
	for s := from; s <= until; s++ {
		if inj.Jammed(s) {
			n++
		}
	}
	return n
}

// HasMsgFaults reports whether any message rule exists, letting engines
// skip the per-message hook entirely on plans without link faults. Nil-safe.
func (inj *Injector) HasMsgFaults() bool {
	return inj != nil && (len(inj.edgeRules) > 0 || len(inj.allRules) > 0 ||
		len(inj.parts) > 0 || len(inj.skews) > 0)
}

// group returns the partition component the node hashes into under the
// given partition rule index and group count: a pure hash of (plan seed,
// rule index, node), so membership is identical on every engine, worker
// count, and run. Pure and allocation-free.
func (inj *Injector) group(index, groups int, v graph.NodeID) int {
	return int(Mix64(uint64(inj.seed), 0x9a7717a0+uint64(index), uint64(v)) % uint64(groups))
}

// MsgFate decides the fate of one message: the message crossing edgeID from
// sender `from` to recipient `to`, normally observed at deliverRound.
// Partition rules are evaluated first (a cut severs the link regardless of
// what other rules would do), then clock-skew rules, then edge-specific
// rules before wildcard rules, each class in plan order; the first rule
// whose window contains the round and whose coin fires decides. The
// returned lag is meaningful for DelayMsg, DupMsg, and SkewMsg. Pure and
// safe for concurrent use.
func (inj *Injector) MsgFate(edgeID int, from, to graph.NodeID, deliverRound int) (Fate, int) {
	if inj == nil {
		return Deliver, 0
	}
	for i := range inj.parts {
		p := &inj.parts[i]
		if !inWindow(deliverRound, p.from, p.until, p.every) {
			continue
		}
		if inj.group(p.index, p.groups, from) != inj.group(p.index, p.groups, to) {
			return PartitionDrop, 0
		}
	}
	for i := range inj.skews {
		s := &inj.skews[i]
		if s.node != from || !inWindow(deliverRound, s.from, s.until, s.every) {
			continue
		}
		return SkewMsg, s.lag
	}
	if rules, ok := inj.edgeRules[edgeID]; ok {
		if f, lag, ok := inj.applyRules(rules, edgeID, from, deliverRound); ok {
			return f, lag
		}
	}
	if f, lag, ok := inj.applyRules(inj.allRules, edgeID, from, deliverRound); ok {
		return f, lag
	}
	return Deliver, 0
}

func (inj *Injector) applyRules(rules []mrule, edgeID int, from graph.NodeID, round int) (Fate, int, bool) {
	for i := range rules {
		r := &rules[i]
		if !inWindow(round, r.from, r.until, r.every) {
			continue
		}
		if r.prob < 1 && !inj.roll(r.index, uint64(edgeID), uint64(from), uint64(round), r.prob) {
			continue
		}
		return r.fate, r.lag, true
	}
	return Deliver, 0, false
}

// Jammed reports whether the slot observed at the given round is jammed.
// Nil-safe, pure, and safe for concurrent use.
func (inj *Injector) Jammed(round int) bool {
	if inj == nil {
		return false
	}
	for i := range inj.jams {
		j := &inj.jams[i]
		if !inWindow(round, j.from, j.until, j.every) {
			continue
		}
		if j.prob >= 1 || inj.roll(j.index, 0x1a77, 0, uint64(round), j.prob) {
			return true
		}
	}
	return false
}

// roll is the deterministic coin: a splitmix64-style hash of (plan seed,
// rule index, event identity) mapped to [0, 1) and compared to prob.
func (inj *Injector) roll(index int, a, b, c uint64, prob float64) bool {
	h := Mix64(uint64(inj.seed), uint64(index), a)
	h = Mix64(h, b, c)
	return float64(h>>11)/(1<<53) < prob
}

// Mix64 combines three words with the splitmix64 finalizer. It is the
// keyed mixing primitive behind every deterministic coin in the module:
// the injector's probabilistic rules here, the implicit topologies' edge
// weights, and — critically — the sim engines' per-node RNG seed
// derivation, where a full-width mix is what guarantees distinct streams
// for distinct (master seed, node id) pairs at any network size (a linear
// seed*K+id derivation collides as soon as n exceeds K).
func Mix64(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + c*0x94d049bb133111eb + 0x2545f4914f6cdd1d
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Describe summarizes the compiled schedule (for logs and -json output).
func (inj *Injector) Describe() string {
	if inj == nil {
		return "none"
	}
	crashes := 0
	for _, nodes := range inj.crashes {
		crashes += len(nodes)
	}
	restarts := 0
	for _, nodes := range inj.restarts {
		restarts += len(nodes)
	}
	return fmt.Sprintf("crashes=%d restarts=%d edge-rules=%d wildcard-rules=%d jam-rules=%d partition-rules=%d skew-rules=%d",
		crashes, restarts, len(inj.edgeRules), len(inj.allRules), len(inj.jams), len(inj.parts), len(inj.skews))
}
