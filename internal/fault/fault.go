// Package fault is the deterministic chaos engine of the simulator: a
// declarative, seedable fault plan injected beneath unmodified workloads, in
// the spirit of chaos-mesh's declarative chaos objects. A Plan is a list of
// Rules — crash-stop a node, drop/delay/duplicate messages on a link, jam
// the multiaccess channel — compiled by the sim engines into per-round
// injection hooks applied at their single delivery and slot-resolution
// choke points, so every existing Program and Machine runs under faults
// unmodified.
//
// # Round convention
//
// All fault rounds refer to the observation round: the Input.Round at which
// the effect would be (or fails to be) observed. A message sent during
// compute round r-1 is normally observed in Input{Round: r}; a drop window
// containing r destroys it, a delay of d moves it to Input{Round: r+d}. A
// jam at round r forces the slot carried by Input{Round: r} to resolve as a
// collision. A crash at round r means the node's last executed compute
// round is r-1: its round r-1 sends are still delivered (crash-stop at the
// round boundary), but it never observes Input{Round: r} or later, and
// messages addressed to it from round r on are dropped. Round windows start
// at 1 — round 0 is the initial compute every node performs.
//
// # Determinism
//
// Probabilistic rules (Prob < 1) draw from a pure hash of (plan seed, rule
// index, edge, sender, round), never from shared RNG state, so a fixed
// (graph, program, seed, plan) yields a bit-identical transcript on both
// execution engines and any worker count — the simulator's determinism
// contract extends to faults.
package fault

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/graph"
)

// Kind discriminates fault rules.
type Kind int

// The fault kinds.
const (
	// Crash crash-stops Node at round From: it never observes that or any
	// later round. With Prob < 1 the crash is a compile-time coin — the
	// node either crashes in every run of the plan, or never.
	Crash Kind = iota + 1
	// CrashFrac crash-stops a seeded-random ⌈Frac·n⌉-node subset, each at a
	// seeded-random round within [From, Until]. Resolved against the graph
	// at compile time, so one plan applies to any topology.
	CrashFrac
	// Drop destroys messages whose delivery on Edge falls in [From, Until].
	Drop
	// Delay defers messages whose delivery on Edge falls in [From, Until]
	// by Lag rounds.
	Delay
	// Dup delivers messages on Edge normally and again Lag rounds later.
	Dup
	// Jam forces the channel slot observed in rounds [From, Until] to
	// resolve as a collision, hiding any writer — adversarial affectance on
	// the shared medium.
	Jam
	// Partition cuts the point-to-point network into Groups seeded
	// components for the window: every message whose endpoints hash into
	// different groups is destroyed, then the cut heals. The multiaccess
	// channel is deliberately unaffected — it is a shared medium, not a
	// link. Group membership is a pure hash of (plan seed, rule index,
	// node), so one plan partitions any topology the same way in every run.
	Partition
	// Restart is crash-restart: a node crash-stopped by an earlier Crash
	// rule rejoins at round From with reset protocol state (a fresh initial
	// compute at that round) and a fresh RNG stream for the new
	// incarnation. Unlike every other kind it revives rather than injures.
	Restart
	// Skew applies per-node clock skew at the §7.1 synchronizer layer:
	// during the window, every message sent by Node arrives Lag rounds
	// late — its clock runs behind the global pulse. Valid only for
	// synchronizer runs (Caps.Skew); plain round-synchronous protocols
	// have no clock to skew.
	Skew
)

// String returns the DSL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case CrashFrac:
		return "crashfrac"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Dup:
		return "dup"
	case Jam:
		return "jam"
	case Partition:
		return "partition"
	case Restart:
		return "restart"
	case Skew:
		return "skew"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllEdges as a Rule.Edge applies a link fault to every edge of the graph
// (uniform message loss, network-wide delay jitter, ...).
const AllEdges = -1

// Forever as a Rule.Until leaves the round window open-ended.
const Forever = math.MaxInt

// Rule is one declarative fault. Zero-valued optional fields take defaults:
// Until 0 means From (a single-round window), Prob 0 means 1 (always fire),
// Lag 0 means 1 round.
type Rule struct {
	Kind   Kind
	Node   graph.NodeID // Crash/Restart/Skew: the node affected
	Frac   float64      // CrashFrac: fraction of nodes in (0, 1]
	Edge   int          // Drop/Delay/Dup: edge id, or AllEdges
	From   int          // first observation round affected (≥ 1)
	Until  int          // last observation round affected; 0 = From, Forever = open
	Prob   float64      // chance the rule fires per event; 0 = 1 (certain)
	Lag    int          // Delay/Dup/Skew: extra rounds; 0 = 1
	Groups int          // Partition: number of seeded components (≥ 2)
	Every  int          // recurrence period: the window repeats every Every rounds (0 = one-shot)
}

// window returns the rule's normalized [from, until] round window.
func (r *Rule) window() (int, int) {
	until := r.Until
	if until == 0 {
		until = r.From
	}
	return r.From, until
}

// prob returns the rule's normalized firing probability.
func (r *Rule) prob() float64 {
	if r.Prob == 0 {
		return 1
	}
	return r.Prob
}

// lag returns the rule's normalized delay in rounds.
func (r *Rule) lag() int {
	if r.Lag == 0 {
		return 1
	}
	return r.Lag
}

// Plan is a complete declarative fault scenario: an ordered rule list plus
// the seed driving every probabilistic decision. The zero Plan (or a nil
// *Plan) injects nothing.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Rules) == 0 }

// Add appends rules and returns the plan (builder style).
func (p *Plan) Add(rules ...Rule) *Plan {
	p.Rules = append(p.Rules, rules...)
	return p
}

// String renders the plan in the DSL accepted by Parse (round-trippable).
func (p *Plan) String() string {
	if p.Empty() {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed:%d", p.Seed))
	}
	for i := range p.Rules {
		parts = append(parts, ruleString(&p.Rules[i]))
	}
	return strings.Join(parts, ";")
}

func ruleString(r *Rule) string {
	var b strings.Builder
	b.WriteString(r.Kind.String())
	b.WriteByte(':')
	switch r.Kind {
	case Crash, Restart, Skew:
		fmt.Fprintf(&b, "%d@", r.Node)
	case CrashFrac:
		fmt.Fprintf(&b, "%g@", r.Frac)
	case Partition:
		fmt.Fprintf(&b, "%d@", r.Groups)
	case Drop, Delay, Dup:
		if r.Edge == AllEdges {
			b.WriteByte('*')
		} else {
			fmt.Fprintf(&b, "%d", r.Edge)
		}
		b.WriteByte('@')
	case Jam:
	}
	from, until := r.window()
	switch {
	case until == Forever:
		fmt.Fprintf(&b, "%d-", from)
	case until == from:
		fmt.Fprintf(&b, "%d", from)
	default:
		fmt.Fprintf(&b, "%d-%d", from, until)
	}
	if r.Kind == Delay || r.Kind == Skew || (r.Kind == Dup && r.Lag > 1) {
		fmt.Fprintf(&b, "/d%d", r.lag())
	}
	if r.Every > 0 {
		fmt.Fprintf(&b, "/e%d", r.Every)
	}
	if p := r.prob(); p < 1 {
		fmt.Fprintf(&b, "/p%g", p)
	}
	return b.String()
}

// validate checks the plan against a concrete topology under the given
// engine capabilities, including the cross-rule constraint that every
// Restart is preceded by a Crash of the same node.
func (p *Plan) validate(g graph.Topology, caps Caps) error {
	for i := range p.Rules {
		r := &p.Rules[i]
		if err := r.validate(g, caps); err != nil {
			return fmt.Errorf("fault: rule %d (%s): %w", i, ruleString(r), err)
		}
		if r.Kind != Restart {
			continue
		}
		crashed := false
		for j := range p.Rules {
			c := &p.Rules[j]
			if c.Kind == Crash && c.Node == r.Node && c.From < r.From {
				crashed = true
				break
			}
		}
		if !crashed {
			return fmt.Errorf("fault: rule %d (%s): restart of node %d needs a crash:%d@R rule at an earlier round",
				i, ruleString(r), r.Node, r.Node)
		}
	}
	return nil
}

func (r *Rule) validate(g graph.Topology, caps Caps) error {
	from, until := r.window()
	if from < 1 {
		return fmt.Errorf("round window starts at %d, want ≥ 1", from)
	}
	if until < from {
		return fmt.Errorf("round window [%d, %d] is empty", from, until)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("probability %g outside [0, 1]", r.Prob)
	}
	if r.Lag < 0 {
		return fmt.Errorf("negative lag %d", r.Lag)
	}
	if r.Every != 0 {
		switch r.Kind {
		case Crash, CrashFrac, Restart:
			return fmt.Errorf("%s takes no /e recurrence", r.Kind)
		}
		if r.Every <= 0 {
			return fmt.Errorf("zero or negative period %d (want /eN with N ≥ 1)", r.Every)
		}
		if until == Forever {
			return fmt.Errorf("recurring rule needs a bounded round window")
		}
		if r.Every < until-from+1 {
			return fmt.Errorf("period %d shorter than the %d-round window it repeats", r.Every, until-from+1)
		}
	}
	switch r.Kind {
	case Crash:
		if int(r.Node) < 0 || int(r.Node) >= g.N() {
			return fmt.Errorf("node %d outside graph of %d nodes", r.Node, g.N())
		}
		if r.Lag != 0 {
			return fmt.Errorf("crash takes no /d lag")
		}
	case CrashFrac:
		if r.Frac <= 0 || r.Frac > 1 {
			return fmt.Errorf("fraction %g outside (0, 1]", r.Frac)
		}
		if until == Forever {
			return fmt.Errorf("crashfrac needs a bounded round window")
		}
		if r.Prob != 0 {
			return fmt.Errorf("crashfrac draws its randomness from the fraction; /p is not allowed")
		}
		if r.Lag != 0 {
			return fmt.Errorf("crashfrac takes no /d lag")
		}
	case Drop, Delay, Dup:
		if r.Edge != AllEdges && (r.Edge < 0 || r.Edge >= g.M()) {
			return fmt.Errorf("edge %d outside graph of %d edges", r.Edge, g.M())
		}
	case Jam:
	case Partition:
		if r.Groups < 2 {
			return fmt.Errorf("partition needs at least 2 groups, got %d", r.Groups)
		}
		if r.Groups > g.N() {
			return fmt.Errorf("partition into %d groups outside graph of %d nodes", r.Groups, g.N())
		}
		if r.Prob != 0 {
			return fmt.Errorf("partition is all-or-nothing; /p is not allowed")
		}
		if r.Lag != 0 {
			return fmt.Errorf("partition takes no /d lag")
		}
	case Restart:
		if int(r.Node) < 0 || int(r.Node) >= g.N() {
			return fmt.Errorf("node %d outside graph of %d nodes", r.Node, g.N())
		}
		if r.Lag != 0 {
			return fmt.Errorf("restart takes no /d lag")
		}
		if r.Prob != 0 {
			return fmt.Errorf("restart fires iff its crash fired; /p is not allowed")
		}
	case Skew:
		if int(r.Node) < 0 || int(r.Node) >= g.N() {
			return fmt.Errorf("node %d outside graph of %d nodes", r.Node, g.N())
		}
		if r.Prob != 0 {
			return fmt.Errorf("skew is deterministic; /p is not allowed")
		}
		if !caps.Skew {
			return fmt.Errorf("skew applies only to synchronizer runs (the §7.1 async layer)")
		}
	default:
		return fmt.Errorf("unknown kind %d", int(r.Kind))
	}
	return nil
}

// FromFlags assembles the plan the commands' fault flags describe: the
// parsed -faults DSL (may be empty) plus the -crash and -jam conveniences —
// crash a seeded-random fraction of nodes at round 1, jam every slot with
// the given rate. A nil plan (no faults at all) is returned when every part
// is empty.
func FromFlags(dsl string, crashFrac, jamRate float64, seed int64) (*Plan, error) {
	p, err := Parse(dsl)
	if err != nil {
		return nil, err
	}
	if p == nil {
		p = &Plan{}
	}
	if p.Seed == 0 {
		// The flag seed applies unless the DSL pinned one with seed:N.
		p.Seed = seed
	}
	if crashFrac > 0 {
		p.Add(Rule{Kind: CrashFrac, Frac: crashFrac, From: 1})
	}
	if jamRate > 0 {
		p.Add(Rule{Kind: Jam, From: 1, Until: Forever, Prob: jamRate})
	}
	if p.Empty() {
		return nil, nil
	}
	return p, nil
}
