package fault

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.Ring(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"crash:7@10",
		"crash:1@5/p0.5",
		"drop:3@5-",
		"drop:*@2-9/p0.25",
		"delay:1@3-6/d2",
		"dup:0@4",
		"jam:4-12/p0.5",
		"seed:42;crashfrac:0.1@1-20",
		"crash:1@2;jam:3;drop:2@1-/p0.75",
	}
	for _, dsl := range cases {
		p, err := Parse(dsl)
		if err != nil {
			t.Fatalf("Parse(%q): %v", dsl, err)
		}
		if got := p.String(); got != dsl {
			t.Errorf("Parse(%q).String() = %q", dsl, got)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if p2.String() != p.String() {
			t.Errorf("round trip unstable: %q vs %q", p.String(), p2.String())
		}
	}
}

func TestParseEmpty(t *testing.T) {
	for _, s := range []string{"", "  ", ";;", " ; "} {
		p, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
		if p != nil {
			t.Errorf("Parse(%q) = %v, want nil plan", s, p)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"bogus:1@2",      // unknown kind
		"crash:1",        // missing round
		"crash:x@2",      // bad node
		"crash:1@2-5",    // crash takes a single round
		"drop:a@1",       // bad edge
		"drop:1@x",       // bad round
		"jam:1/q3",       // unknown option
		"delay:1@2/dx",   // bad lag
		"drop:1@2/pzero", // bad probability
		"seed:abc",       // bad seed
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	g := testGraph(t) // n=10, m=10
	for _, tc := range []struct {
		rule Rule
		want string
	}{
		{Rule{Kind: Crash, Node: 10, From: 1}, "outside graph"},
		{Rule{Kind: Crash, Node: 3, From: 0}, "round window"},
		{Rule{Kind: Drop, Edge: 10, From: 1}, "outside graph"},
		{Rule{Kind: Drop, Edge: 1, From: 5, Until: 3}, "empty"},
		{Rule{Kind: Jam, From: 1, Prob: 1.5}, "probability"},
		{Rule{Kind: Delay, Edge: 1, From: 1, Lag: -2}, "lag"},
		{Rule{Kind: CrashFrac, Frac: 1.5, From: 1}, "fraction"},
		{Rule{Kind: CrashFrac, Frac: 0.5, From: 1, Until: Forever}, "bounded"},
		{Rule{Kind: CrashFrac, Frac: 0.5, From: 1, Prob: 0.3}, "not allowed"},
		{Rule{Kind: CrashFrac, Frac: 0.5, From: 1, Lag: 2}, "lag"},
		{Rule{Kind: Crash, Node: 1, From: 1, Lag: 2}, "lag"},
	} {
		_, err := Compile((&Plan{}).Add(tc.rule), g)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Compile(%+v) err = %v, want mention of %q", tc.rule, err, tc.want)
		}
	}
	if inj, err := Compile(nil, g); inj != nil || err != nil {
		t.Errorf("Compile(nil) = %v, %v, want nil, nil", inj, err)
	}
}

func TestMsgFateWindows(t *testing.T) {
	g := testGraph(t)
	inj, err := Compile((&Plan{}).Add(
		Rule{Kind: Drop, Edge: 3, From: 5, Until: 8},
		Rule{Kind: Delay, Edge: 4, From: 2, Lag: 3},
	), g)
	if err != nil {
		t.Fatal(err)
	}
	//mmlint:commutative independent pure-function assertions per round
	for round, want := range map[int]Fate{4: Deliver, 5: DropMsg, 8: DropMsg, 9: Deliver} {
		if fate, _ := inj.MsgFate(3, 0, 1, round); fate != want {
			t.Errorf("edge 3 round %d: fate %v, want %v", round, fate, want)
		}
	}
	if fate, lag := inj.MsgFate(4, 1, 2, 2); fate != DelayMsg || lag != 3 {
		t.Errorf("edge 4 round 2: (%v, %d), want (DelayMsg, 3)", fate, lag)
	}
	if fate, _ := inj.MsgFate(4, 1, 2, 3); fate != Deliver {
		t.Errorf("edge 4 round 3 (single-round window): not Deliver")
	}
	if fate, _ := inj.MsgFate(0, 0, 1, 5); fate != Deliver {
		t.Errorf("unfaulted edge affected")
	}
}

func TestWildcardAndProbDeterminism(t *testing.T) {
	g := testGraph(t)
	mk := func() *Injector {
		inj, err := Compile(&Plan{Seed: 7, Rules: []Rule{
			{Kind: Drop, Edge: AllEdges, From: 1, Until: Forever, Prob: 0.5},
		}}, g)
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a, b := mk(), mk()
	drops := 0
	for edge := 0; edge < g.M(); edge++ {
		for round := 1; round <= 50; round++ {
			fa, _ := a.MsgFate(edge, graph.NodeID(edge), graph.NodeID((edge+1)%g.N()), round)
			fb, _ := b.MsgFate(edge, graph.NodeID(edge), graph.NodeID((edge+1)%g.N()), round)
			if fa != fb {
				t.Fatalf("nondeterministic fate at edge %d round %d", edge, round)
			}
			if fa == DropMsg {
				drops++
			}
		}
	}
	// 500 coin flips at p=0.5: expect a comfortable middle band.
	if drops < 150 || drops > 350 {
		t.Errorf("drops = %d of 500, want roughly half", drops)
	}
}

func TestJammedWindows(t *testing.T) {
	g := testGraph(t)
	inj, err := Compile((&Plan{}).Add(Rule{Kind: Jam, From: 4, Until: 6}), g)
	if err != nil {
		t.Fatal(err)
	}
	//mmlint:commutative independent pure-function assertions per round
	for round, want := range map[int]bool{3: false, 4: true, 6: true, 7: false} {
		if got := inj.Jammed(round); got != want {
			t.Errorf("Jammed(%d) = %v, want %v", round, got, want)
		}
	}
	var nilInj *Injector
	if nilInj.Jammed(4) || nilInj.HasMsgFaults() || nilInj.CrashesAt(4) != nil {
		t.Errorf("nil injector injects")
	}
}

func TestCrashFracCompile(t *testing.T) {
	g := testGraph(t)
	mk := func(seed int64) map[int][]graph.NodeID {
		inj, err := Compile(&Plan{Seed: seed, Rules: []Rule{
			{Kind: CrashFrac, Frac: 0.3, From: 2, Until: 5},
		}}, g)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[int][]graph.NodeID)
		for r := 0; r <= 10; r++ {
			if nodes := inj.CrashesAt(r); len(nodes) > 0 {
				out[r] = nodes
			}
		}
		return out
	}
	a, b := mk(3), mk(3)
	total := 0
	seen := map[graph.NodeID]bool{}
	//mmlint:commutative order-free aggregation: total count plus set-membership checks
	for r, nodes := range a {
		if r < 2 || r > 5 {
			t.Errorf("crash scheduled at round %d outside [2, 5]", r)
		}
		for _, v := range nodes {
			if seen[v] {
				t.Errorf("node %d crashes twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != 3 {
		t.Errorf("crashed %d of 10 nodes at frac 0.3, want 3", total)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules")
	}
	//mmlint:commutative per-key comparison of two schedules; order-free
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("same seed, different schedule at round %d", r)
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("same seed, different victims at round %d", r)
			}
		}
	}
}

// TestCrashProbCompile checks the compile-time coin on probabilistic crash
// rules: the same plan always picks the same survivors, p=1 always crashes,
// and intermediate probabilities thin the schedule.
func TestCrashProbCompile(t *testing.T) {
	g := testGraph(t)
	count := func(seed int64, prob float64) int {
		p := &Plan{Seed: seed}
		for v := 0; v < g.N(); v++ {
			p.Add(Rule{Kind: Crash, Node: graph.NodeID(v), From: 1, Prob: prob})
		}
		inj, err := Compile(p, g)
		if err != nil {
			t.Fatal(err)
		}
		return len(inj.CrashesAt(1))
	}
	if got := count(1, 1); got != 10 {
		t.Errorf("p=1 crashed %d of 10", got)
	}
	got := count(1, 0.5)
	if got == 0 || got == 10 {
		t.Errorf("p=0.5 crashed %d of 10, want a proper subset", got)
	}
	if again := count(1, 0.5); again != got {
		t.Errorf("same seed, different crash count: %d vs %d", got, again)
	}
}

func TestFromFlags(t *testing.T) {
	p, err := FromFlags("", 0, 0, 1)
	if err != nil || p != nil {
		t.Errorf("FromFlags all-empty = %v, %v, want nil, nil", p, err)
	}
	p, err = FromFlags("drop:1@2", 0.1, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("rules = %d, want 3 (dsl + crash + jam)", len(p.Rules))
	}
	if p.Rules[1].Kind != CrashFrac || p.Rules[1].Frac != 0.1 {
		t.Errorf("crash rule = %+v", p.Rules[1])
	}
	if p.Rules[2].Kind != Jam || p.Rules[2].Prob != 0.25 || p.Rules[2].Until != Forever {
		t.Errorf("jam rule = %+v", p.Rules[2])
	}
}

func TestNextCrashAfter(t *testing.T) {
	g := testGraph(t)
	p := (&Plan{Seed: 1}).Add(
		Rule{Kind: Crash, Node: 2, From: 5},
		Rule{Kind: Crash, Node: 3, From: 5},
		Rule{Kind: Crash, Node: 7, From: 40},
	)
	inj, err := Compile(p, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		after int
		want  int
		ok    bool
	}{
		{0, 5, true}, {4, 5, true}, {5, 40, true}, {39, 40, true}, {40, 0, false},
	} {
		if got, ok := inj.NextCrashAfter(tt.after); got != tt.want || ok != tt.ok {
			t.Errorf("NextCrashAfter(%d) = %d, %v, want %d, %v", tt.after, got, ok, tt.want, tt.ok)
		}
	}
	var nilInj *Injector
	if _, ok := nilInj.NextCrashAfter(0); ok {
		t.Error("nil injector reported a crash")
	}
}

func TestNextClearSlotAndCountJammed(t *testing.T) {
	g := testGraph(t)
	inj, err := Compile((&Plan{Seed: 1}).Add(Rule{Kind: Jam, From: 3, Until: 8}), g)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := inj.NextClearSlot(1, 20); !ok || s != 1 {
		t.Errorf("NextClearSlot(1,20) = %d, %v, want 1, true", s, ok)
	}
	if s, ok := inj.NextClearSlot(3, 20); !ok || s != 9 {
		t.Errorf("NextClearSlot(3,20) = %d, %v, want 9, true", s, ok)
	}
	if _, ok := inj.NextClearSlot(3, 8); ok {
		t.Error("NextClearSlot found a clear slot inside the jam window")
	}
	if n := inj.CountJammed(1, 20); n != 6 {
		t.Errorf("CountJammed(1,20) = %d, want 6", n)
	}
	if n := inj.CountJammed(5, 6); n != 2 {
		t.Errorf("CountJammed(5,6) = %d, want 2", n)
	}
	if n := inj.CountJammed(9, 100); n != 0 {
		t.Errorf("CountJammed(9,100) = %d, want 0", n)
	}

	// A probabilistic jam: the count must agree with per-round evaluation.
	inj, err = Compile((&Plan{Seed: 9}).Add(Rule{Kind: Jam, From: 1, Until: Forever, Prob: 0.4}), g)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for s := 10; s <= 500; s++ {
		if inj.Jammed(s) {
			want++
		}
	}
	if got := inj.CountJammed(10, 500); got != want {
		t.Errorf("CountJammed(10,500) = %d, want %d", got, want)
	}
	if want == 0 || want == 491 {
		t.Errorf("degenerate probabilistic jam count %d", want)
	}

	var nilInj *Injector
	if s, ok := nilInj.NextClearSlot(4, 9); !ok || s != 4 {
		t.Errorf("nil NextClearSlot = %d, %v, want 4, true", s, ok)
	}
	if nilInj.CountJammed(1, 1000) != 0 {
		t.Error("nil injector counted jams")
	}
	if nilInj.HasJams() {
		t.Error("nil injector has jams")
	}
}

// TestFastForwardWindowBoundaries table-tests the window arithmetic that
// checkpoint-mid-fast-forward leans on: NextClearSlot and CountJammed at
// inclusive boundaries (both ends of [from, until] count), degenerate
// from==until windows, jam-window edges, and open-ended rules.
func TestFastForwardWindowBoundaries(t *testing.T) {
	g := testGraph(t)
	compile := func(p *Plan) *Injector {
		t.Helper()
		inj, err := Compile(p, g)
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	certain := compile((&Plan{Seed: 1}).Add(Rule{Kind: Jam, From: 3, Until: 8}))
	point := compile((&Plan{Seed: 1}).Add(Rule{Kind: Jam, From: 5})) // Until 0 => From: one round
	open := compile((&Plan{Seed: 1}).Add(Rule{Kind: Jam, From: 4, Until: Forever}))
	twoWin := compile((&Plan{Seed: 1}).Add(
		Rule{Kind: Jam, From: 2, Until: 3},
		Rule{Kind: Jam, From: 7, Until: 9},
	))

	clearCases := []struct {
		name        string
		inj         *Injector
		from, until int
		want        int
		ok          bool
	}{
		{"empty range from>until", certain, 9, 8, 0, false},
		{"degenerate clear", certain, 2, 2, 2, true},
		{"degenerate jammed: lower window edge", certain, 3, 3, 0, false},
		{"degenerate jammed: upper window edge", certain, 8, 8, 0, false},
		{"degenerate just past window", certain, 9, 9, 9, true},
		{"range starts at window start", certain, 3, 20, 9, true},
		{"range starts at window end", certain, 8, 20, 9, true},
		{"range ends exactly at first clear", certain, 3, 9, 9, true},
		{"range ends one short of clear", certain, 3, 8, 0, false},
		{"point jam skipped", point, 5, 6, 6, true},
		{"point jam only slot", point, 5, 5, 0, false},
		{"before point jam", point, 4, 9, 4, true},
		{"open-ended jam covers range", open, 4, 1000, 0, false},
		{"open-ended jam starts after from", open, 3, 1000, 3, true},
		{"gap between two windows", twoWin, 2, 9, 4, true},
		{"second window edge", twoWin, 7, 10, 10, true},
	}
	for _, tt := range clearCases {
		if got, ok := tt.inj.NextClearSlot(tt.from, tt.until); got != tt.want || ok != tt.ok {
			t.Errorf("%s: NextClearSlot(%d,%d) = %d, %v, want %d, %v",
				tt.name, tt.from, tt.until, got, ok, tt.want, tt.ok)
		}
	}

	countCases := []struct {
		name        string
		inj         *Injector
		from, until int
		want        int64
	}{
		{"empty range from>until", certain, 8, 3, 0},
		{"degenerate jammed lower edge", certain, 3, 3, 1},
		{"degenerate jammed upper edge", certain, 8, 8, 1},
		{"degenerate clear below", certain, 2, 2, 0},
		{"degenerate clear above", certain, 9, 9, 0},
		{"exact window", certain, 3, 8, 6},
		{"window plus margins", certain, 1, 20, 6},
		{"clips left", certain, 5, 20, 4},
		{"clips right", certain, 0, 5, 3},
		{"disjoint below", certain, 0, 2, 0},
		{"disjoint above", certain, 9, 1000, 0},
		{"point jam hit", point, 5, 5, 1},
		{"point jam in range", point, 1, 10, 1},
		{"open-ended full range", open, 0, 100, 97},
		{"open-ended degenerate at start", open, 4, 4, 1},
		{"two windows spanned", twoWin, 0, 100, 5},
		{"two windows gap only", twoWin, 4, 6, 0},
		{"clip inside second window", twoWin, 8, 8, 1},
	}
	for _, tt := range countCases {
		if got := tt.inj.CountJammed(tt.from, tt.until); got != tt.want {
			t.Errorf("%s: CountJammed(%d,%d) = %d, want %d", tt.name, tt.from, tt.until, got, tt.want)
		}
	}

	// The two functions must agree: counting N jammed slots in [from, until]
	// means NextClearSlot skips exactly those N when they prefix the range.
	for from := 0; from <= 12; from++ {
		for until := from; until <= 12; until++ {
			var brute int64
			firstClear, fok := 0, false
			for s := from; s <= until; s++ {
				if twoWin.Jammed(s) {
					brute++
				} else if !fok {
					firstClear, fok = s, true
				}
			}
			if got := twoWin.CountJammed(from, until); got != brute {
				t.Errorf("CountJammed(%d,%d) = %d, brute %d", from, until, got, brute)
			}
			if got, ok := twoWin.NextClearSlot(from, until); got != firstClear || ok != fok {
				t.Errorf("NextClearSlot(%d,%d) = %d, %v, brute %d, %v", from, until, got, ok, firstClear, fok)
			}
		}
	}
}
