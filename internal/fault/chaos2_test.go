package fault

// chaos2_test.go covers the v2 rule families — partition, restart, skew,
// and the /eN recurrence — at the plan and injector level: grammar round
// trips, exact rejection messages (the CLI surfaces these verbatim, so they
// are pinned byte for byte), seeded group stability, restart scheduling
// queries, and recurring-window slot arithmetic.

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestParseRoundTripChaos2(t *testing.T) {
	cases := []string{
		"partition:3@10-19",
		"partition:2@3-6/e12",
		"crash:7@10;restart:7@25",
		"skew:2@5-30/d3",
		"jam:5-8/e20",
		"drop:*@2-4/e10/p0.25",
		"seed:7;partition:2@5-9;crash:1@3;restart:1@12",
	}
	for _, dsl := range cases {
		p, err := Parse(dsl)
		if err != nil {
			t.Fatalf("Parse(%q): %v", dsl, err)
		}
		if got := p.String(); got != dsl {
			t.Errorf("Parse(%q).String() = %q", dsl, got)
		}
	}
}

// TestParseErrorsChaos2Exact pins the v2 rejection messages byte for byte:
// mmnet prints them verbatim, so a wording change is a user-visible change.
func TestParseErrorsChaos2Exact(t *testing.T) {
	cases := []struct{ in, want string }{
		{"partition:x@1-5", `fault: parse "partition:x@1-5": bad group count "x"`},
		{"partition:@1-5", `fault: parse "partition:@1-5": bad group count ""`},
		{"partition:2", `fault: parse "partition:2": want target@rounds`},
		{"jam:2-3/e0", `fault: parse "jam:2-3/e0": zero or negative period "e0" (want /eN with N ≥ 1)`},
		{"jam:2-3/e-4", `fault: parse "jam:2-3/e-4": zero or negative period "e-4" (want /eN with N ≥ 1)`},
		{"jam:2-3/ex", `fault: parse "jam:2-3/ex": bad period "ex"`},
		{"restart:7@25-30", `fault: parse "restart:7@25-30": restart takes a single round, not a window`},
		{"restart:y@25", `fault: parse "restart:y@25": bad node "y"`},
		{"skew:2@5-30/q1", `fault: parse "skew:2@5-30/q1": unknown option "q1" (want /dN, /pF, or /eN)`},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", tc.in)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Parse(%q) error:\n got:  %s\n want: %s", tc.in, err, tc.want)
		}
	}
}

// TestCompileValidationChaos2Exact pins the compile-time rejections the
// parser cannot catch: cross-rule restart ordering, capability gating,
// topology bounds, and recurrence well-formedness.
func TestCompileValidationChaos2Exact(t *testing.T) {
	g := testGraph(t) // n=10, m=10
	cases := []struct{ in, want string }{
		{"jam:2-/e5", "fault: rule 0 (jam:2-/e5): recurring rule needs a bounded round window"},
		{"jam:2-9/e4", "fault: rule 0 (jam:2-9/e4): period 4 shorter than the 8-round window it repeats"},
		{"skew:2@5", "fault: rule 0 (skew:2@5/d1): skew applies only to synchronizer runs (the §7.1 async layer)"},
		{"partition:1@1-5", "fault: rule 0 (partition:1@1-5): partition needs at least 2 groups, got 1"},
		{"partition:99@1-5", "fault: rule 0 (partition:99@1-5): partition into 99 groups outside graph of 10 nodes"},
		{"partition:2@3-6/p0.5", "fault: rule 0 (partition:2@3-6/p0.5): partition is all-or-nothing; /p is not allowed"},
		{"restart:7@25", "fault: rule 0 (restart:7@25): restart of node 7 needs a crash:7@R rule at an earlier round"},
		{"crash:7@30;restart:7@25", "fault: rule 1 (restart:7@25): restart of node 7 needs a crash:7@R rule at an earlier round"},
		{"crash:6@3;restart:7@25", "fault: rule 1 (restart:7@25): restart of node 7 needs a crash:7@R rule at an earlier round"},
		{"crash:7@3;restart:7@25/e4", "fault: rule 1 (restart:7@25/e4): restart takes no /e recurrence"},
	}
	for _, tc := range cases {
		p, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		_, err = Compile(p, g)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error", tc.in)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Compile(%q) error:\n got:  %s\n want: %s", tc.in, err, tc.want)
		}
	}
	// The same plan under the synchronizer capability compiles.
	p, err := Parse("skew:2@5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileFor(p, g, Caps{Skew: true}); err != nil {
		t.Errorf("CompileFor(skew, Caps{Skew}) = %v, want nil", err)
	}
}

// TestPartitionGroupStability checks the seeded group assignment: the cut
// is a symmetric equivalence over nodes (same-group pairs always deliver),
// identical across compiles, active exactly inside the window, and the
// plan seed actually moves the grouping.
func TestPartitionGroupStability(t *testing.T) {
	g := testGraph(t) // n=10
	n := g.N()
	cut := func(seed int64) [][]bool {
		p := (&Plan{Seed: seed}).Add(Rule{Kind: Partition, Groups: 2, From: 3, Until: 5})
		inj, err := Compile(p, g)
		if err != nil {
			t.Fatal(err)
		}
		m := make([][]bool, n)
		for u := 0; u < n; u++ {
			m[u] = make([]bool, n)
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				fate, _ := inj.MsgFate(0, graph.NodeID(u), graph.NodeID(v), 4)
				m[u][v] = fate == PartitionDrop
				if out, _ := inj.MsgFate(0, graph.NodeID(u), graph.NodeID(v), 2); out == PartitionDrop {
					t.Fatalf("seed %d: cut active before the window", seed)
				}
				if out, _ := inj.MsgFate(0, graph.NodeID(u), graph.NodeID(v), 6); out == PartitionDrop {
					t.Fatalf("seed %d: cut active after the window heals", seed)
				}
			}
		}
		return m
	}
	m1 := cut(1)
	if !reflect.DeepEqual(m1, cut(1)) {
		t.Fatal("same plan compiled to different groups")
	}
	// Symmetry and transitivity: the cut matrix must be exactly "u and v
	// are in different groups" for a 2-coloring of the nodes.
	group0 := []int{0}
	for v := 1; v < len(m1); v++ {
		if m1[0][v] != m1[v][0] {
			t.Fatalf("asymmetric cut between 0 and %d", v)
		}
		if !m1[0][v] {
			group0 = append(group0, v)
		}
	}
	for _, u := range group0 {
		for _, v := range group0 {
			if u != v && m1[u][v] {
				t.Errorf("nodes %d and %d share node 0's group but are cut", u, v)
			}
		}
	}
	anyCut, moved := false, false
	for v := 1; v < len(m1); v++ {
		anyCut = anyCut || m1[0][v]
	}
	for seed := int64(2); seed <= 8 && !moved; seed++ {
		moved = !reflect.DeepEqual(m1, cut(seed))
	}
	if !anyCut {
		t.Error("seed 1 produced a degenerate single-group split")
	}
	if !moved {
		t.Error("grouping is seed-independent")
	}
}

// TestRestartQueries covers the injector's restart schedule surface the
// engines' revival and fast-forward paths lean on.
func TestRestartQueries(t *testing.T) {
	g := testGraph(t)
	p, err := Parse("crash:3@4;restart:3@9;crash:5@4;restart:5@12")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := Compile(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.HasRestarts() {
		t.Fatal("HasRestarts = false")
	}
	if got := inj.RestartsAt(9); !reflect.DeepEqual(got, []graph.NodeID{3}) {
		t.Errorf("RestartsAt(9) = %v, want [3]", got)
	}
	if got := inj.RestartsAt(12); !reflect.DeepEqual(got, []graph.NodeID{5}) {
		t.Errorf("RestartsAt(12) = %v, want [5]", got)
	}
	if got := inj.RestartsAt(5); len(got) != 0 {
		t.Errorf("RestartsAt(5) = %v, want none", got)
	}
	for _, tt := range []struct {
		after int
		want  int
		ok    bool
	}{
		{0, 9, true}, {8, 9, true}, {9, 12, true}, {11, 12, true}, {12, 0, false},
	} {
		if got, ok := inj.NextRestartAfter(tt.after); got != tt.want || ok != tt.ok {
			t.Errorf("NextRestartAfter(%d) = %d, %v, want %d, %v", tt.after, got, ok, tt.want, tt.ok)
		}
	}
	var nilInj *Injector
	if nilInj.HasRestarts() {
		t.Error("nil injector has restarts")
	}
	if _, ok := nilInj.NextRestartAfter(0); ok {
		t.Error("nil injector scheduled a restart")
	}
	if got := nilInj.RestartsAt(9); got != nil {
		t.Errorf("nil RestartsAt = %v", got)
	}
}

// TestCountJammedRecurring checks the recurring-window slot arithmetic the
// step engine's fast-forward depends on: counts agree with per-round
// evaluation and the open-ended tail of a /eN rule never stops firing.
func TestCountJammedRecurring(t *testing.T) {
	g := testGraph(t)
	p, err := Parse("jam:2-3/e5")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := Compile(p, g)
	if err != nil {
		t.Fatal(err)
	}
	// Jammed at 2,3 then every 5: 2,3,7,8,...,97,98 — 40 slots in [1,100].
	if n := inj.CountJammed(1, 100); n != 40 {
		t.Errorf("CountJammed(1,100) = %d, want 40", n)
	}
	var want int64
	for s := 1; s <= 123456; s++ {
		if inj.Jammed(s) {
			want++
		}
	}
	if got := inj.CountJammed(1, 123456); got != want {
		t.Errorf("CountJammed(1,123456) = %d, want %d (per-round evaluation)", got, want)
	}
	// The recurrence never heals for good: far beyond the base window, the
	// next occurrence is still ahead.
	if n := inj.CountJammed(1_000_002, 1_000_003); n != 2 {
		t.Errorf("CountJammed(1000002,1000003) = %d, want 2", n)
	}
	if s, ok := inj.NextClearSlot(2, 100); !ok || s != 4 {
		t.Errorf("NextClearSlot(2,100) = %d, %v, want 4, true", s, ok)
	}
}
