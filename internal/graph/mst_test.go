package graph

import (
	"testing"
	"testing/quick"
)

func TestKruskalTriangle(t *testing.T) {
	g := mustBuild(t, NewBuilder(3).AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(0, 2, 3))
	mst, err := Kruskal(g)
	if err != nil {
		t.Fatal(err)
	}
	if mst.Total != 3 {
		t.Errorf("MST total = %d, want 3", mst.Total)
	}
	if len(mst.EdgeIDs) != 2 || !mst.Contains(0) || !mst.Contains(1) || mst.Contains(2) {
		t.Errorf("MST edges = %v, want [0 1]", mst.EdgeIDs)
	}
}

func TestKruskalOnTreeIsIdentity(t *testing.T) {
	g, err := BinaryTree(31, 3)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := Kruskal(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(mst.EdgeIDs) != g.M() || mst.Total != g.TotalWeight() {
		t.Errorf("MST of a tree must be the tree itself: %d edges, total %d", len(mst.EdgeIDs), mst.Total)
	}
}

func TestKruskalDisconnected(t *testing.T) {
	g := mustBuild(t, NewBuilder(4).AddEdge(0, 1, 1).AddEdge(2, 3, 2))
	if _, err := Kruskal(g); err == nil {
		t.Error("Kruskal on disconnected graph should error")
	}
}

func TestMSTEqual(t *testing.T) {
	a := &MST{EdgeIDs: []int{0, 2, 5}, Total: 10}
	b := &MST{EdgeIDs: []int{0, 2, 5}, Total: 10}
	c := &MST{EdgeIDs: []int{0, 2, 6}, Total: 10}
	d := &MST{EdgeIDs: []int{0, 2}, Total: 10}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("MST.Equal misbehaves")
	}
}

// Property: the MST has n-1 edges, is spanning + acyclic (checked via
// union-find), and no non-tree edge can replace a heavier tree edge on the
// cycle it closes (cut optimality via the cycle rule on small graphs).
func TestKruskalProperty(t *testing.T) {
	prop := func(nRaw, extraRaw uint8, seed int64) bool {
		n := 2 + int(nRaw)%40
		extra := int(extraRaw) % 60
		g, err := RandomConnected(n, extra, seed)
		if err != nil {
			return false
		}
		mst, err := Kruskal(g)
		if err != nil {
			return false
		}
		if len(mst.EdgeIDs) != n-1 {
			return false
		}
		uf := NewUnionFind(n)
		for _, id := range mst.EdgeIDs {
			e := g.Edge(id)
			if !uf.Union(int(e.U), int(e.V)) {
				return false // cycle in claimed MST
			}
		}
		return uf.Sets() == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property (cycle rule): for every non-MST edge e, every MST edge on the
// path between e's endpoints in the MST weighs less than e.
func TestKruskalCycleRule(t *testing.T) {
	g, err := RandomConnected(40, 80, 99)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := Kruskal(g)
	if err != nil {
		t.Fatal(err)
	}
	// Build the MST as a graph to find paths.
	b := NewBuilder(g.N())
	for _, id := range mst.EdgeIDs {
		e := g.Edge(id)
		b.AddEdge(e.U, e.V, e.Weight)
	}
	tg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.M(); id++ {
		if mst.Contains(id) {
			continue
		}
		e := g.Edge(id)
		// Walk the tree path from e.U to e.V via BFS parents.
		bfs := NewBFS(tg, e.U)
		for v := e.V; v != e.U; v = bfs.Parent[v] {
			p := bfs.Parent[v]
			var w Weight
			for _, h := range tg.Adj(v) {
				if h.To == p {
					w = h.Weight
					break
				}
			}
			if w > e.Weight {
				t.Fatalf("cycle rule violated: tree edge weight %d > non-tree edge weight %d", w, e.Weight)
			}
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d, want 5", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("fresh unions must succeed")
	}
	if uf.Union(1, 0) {
		t.Error("repeat union must fail")
	}
	if !uf.Same(0, 1) || uf.Same(0, 2) {
		t.Error("Same misbehaves")
	}
	if !uf.Union(1, 3) || !uf.Same(0, 2) {
		t.Error("transitive union failed")
	}
	if uf.Sets() != 2 {
		t.Errorf("Sets = %d, want 2", uf.Sets())
	}
}
