package graph

// implicit.go provides the implicit, O(1)-memory-per-query Topology forms:
// ring, path, grid, torus, hypercube, star, and binary tree. Each keeps a
// handful of integers — never an edge list — and computes degree, neighbor
// set, edge endpoints, and weights arithmetically from the node id, the
// canonical edge numbering, and a seed. Adjacency is presented sorted by
// ascending weight, exactly like *Graph, by sorting the (constant-size)
// computed neighbor set per query; the only exception is the star's hub,
// whose n-1 links cannot be weight-ordered in O(1), so its sorted adjacency
// is cached once at construction (O(n) for one node versus O(n + m) for the
// whole materialized graph).
//
// Edge ids are canonical per family (documented on each constructor), and
// weights come from implicitWeight (topology.go), so Materialize yields a
// transcript-identical *Graph for any spec where both forms fit in memory.

import (
	"fmt"
	"math"
	"math/bits"
)

// implicitMaxEdges bounds implicit forms to edge ids representable in the
// low 31 bits of a weight (implicitWeight's distinctness guarantee).
const implicitMaxEdges = 1 << 31

// nbr is one computed incidence: a neighbor and the id of the shared edge.
type nbr struct {
	to NodeID
	id int
}

// Implicit is an implicit topology: n, m, a seed, and the three arithmetic
// queries of one family. All methods are pure (the optional hub cache is
// built at construction), hence safe for concurrent use.
type Implicit struct {
	spec string // canonical spec string, e.g. "ring:1024"
	n, m int
	seed int64

	deg  func(v NodeID) int
	nbrs func(v NodeID, buf []nbr) []nbr // v's incidences, any order
	ends func(id int) (u, v NodeID)      // endpoints of edge id, u < v except ring wrap

	hub    NodeID // node with a cached adjacency (-1 if none); the star's center
	hubAdj []Half // hub's sorted-by-weight adjacency
}

// Spec returns the canonical spec string the topology was built from.
func (t *Implicit) Spec() string { return t.spec }

// N returns the number of nodes.
func (t *Implicit) N() int { return t.n }

// M returns the number of edges.
func (t *Implicit) M() int { return t.m }

// Degree returns the degree of v.
func (t *Implicit) Degree(v NodeID) int { return t.deg(v) }

// Edge returns the edge with the given id.
func (t *Implicit) Edge(id int) Edge {
	if id < 0 || id >= t.m {
		panic(fmt.Sprintf("graph: %s: edge id %d out of range [0,%d)", t.spec, id, t.m))
	}
	u, v := t.ends(id)
	return Edge{U: u, V: v, Weight: implicitWeight(t.seed, u, v, id)}
}

// weightOf is implicitWeight over one computed incidence.
func (t *Implicit) weightOf(v NodeID, b nbr) Weight {
	return implicitWeight(t.seed, v, b.to, b.id)
}

// AdjAppend appends v's links, sorted by ascending weight, to buf.
//
// The stack neighbor buffer escapes through the nbrs closure call, so every
// AdjAppend costs one small heap allocation; per-round engine paths use
// AdjInto with a reused AdjScratch instead.
func (t *Implicit) AdjAppend(v NodeID, buf []Half) []Half {
	if v == t.hub {
		return append(buf, t.hubAdj...)
	}
	var arr [implicitStackDegree]nbr
	start := len(buf)
	for _, b := range t.nbrs(v, arr[:0]) {
		buf = append(buf, Half{To: b.to, Weight: t.weightOf(v, b), EdgeID: int32(b.id)})
	}
	sortHalves(buf[start:])
	return buf
}

// AdjScratch is reusable neighbor-computation scratch for AdjInto. The zero
// value is ready; each AdjScratch may serve one goroutine at a time.
type AdjScratch struct {
	nbrs []nbr
}

// AdjInto is AdjAppend with caller-owned scratch: after the scratch's first
// use (which sizes its buffer) the query allocates nothing, making it the
// form per-round engine code can call steady-state.
func (t *Implicit) AdjInto(v NodeID, buf []Half, scratch *AdjScratch) []Half {
	if v == t.hub {
		return append(buf, t.hubAdj...)
	}
	if scratch.nbrs == nil {
		scratch.nbrs = make([]nbr, 0, implicitStackDegree)
	}
	scratch.nbrs = t.nbrs(v, scratch.nbrs[:0])
	start := len(buf)
	for _, b := range scratch.nbrs {
		buf = append(buf, Half{To: b.to, Weight: t.weightOf(v, b), EdgeID: int32(b.id)})
	}
	sortHalves(buf[start:])
	return buf
}

// Adj returns v's links sorted by ascending weight, freshly allocated on
// every call (except the cached hub). Hot paths should use AdjAppend,
// HalfAt, or LinkIndex instead.
func (t *Implicit) Adj(v NodeID) []Half {
	if v == t.hub {
		return t.hubAdj
	}
	return t.AdjAppend(v, nil)
}

// implicitStackDegree is the neighbor-buffer size the per-query paths keep
// on the stack; every implicit family except the star hub has degree ≤ 30
// (the hypercube's dimension cap), and the hub never takes these paths.
const implicitStackDegree = 32

// HalfAt returns v's link with the given local index in sorted order.
func (t *Implicit) HalfAt(v NodeID, link int) Half {
	if v == t.hub {
		return t.hubAdj[link]
	}
	var narr [implicitStackDegree]nbr
	var harr [implicitStackDegree]Half
	halves := harr[:0]
	for _, b := range t.nbrs(v, narr[:0]) {
		halves = append(halves, Half{To: b.to, Weight: t.weightOf(v, b), EdgeID: int32(b.id)})
	}
	if link < 0 || link >= len(halves) {
		panic(fmt.Sprintf("graph: %s: node %d link %d of %d", t.spec, v, link, len(halves)))
	}
	sortHalves(halves)
	return halves[link]
}

// LinkIndex returns the local link index at v of the given edge id: the
// rank of that edge's weight among v's incident weights.
func (t *Implicit) LinkIndex(v NodeID, edgeID int) (int, bool) {
	if edgeID < 0 || edgeID >= t.m {
		return 0, false
	}
	if v == t.hub {
		e := t.Edge(edgeID)
		if e.U != v && e.V != v {
			return 0, false
		}
		return searchHalves(t.hubAdj, e.Weight)
	}
	var narr [implicitStackDegree]nbr
	found := false
	var w Weight
	incs := t.nbrs(v, narr[:0])
	for _, b := range incs {
		if b.id == edgeID {
			w = t.weightOf(v, b)
			found = true
			break
		}
	}
	if !found {
		return 0, false
	}
	rank := 0
	for _, b := range incs {
		if t.weightOf(v, b) < w {
			rank++
		}
	}
	return rank, true
}

// searchHalves binary-searches a sorted adjacency for the link with the
// given weight.
func searchHalves(adj []Half, w Weight) (int, bool) {
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if adj[mid].Weight < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(adj) && adj[lo].Weight == w {
		return lo, true
	}
	return 0, false
}

var _ Topology = (*Implicit)(nil)

// newImplicit fills the family-independent fields and validates the size.
func newImplicit(spec string, n, m int, seed int64) (*Implicit, error) {
	if n > MaxNodes {
		return nil, fmt.Errorf("graph: %s: %d nodes exceed the NodeID cap of %d", spec, n, MaxNodes)
	}
	if m > implicitMaxEdges {
		return nil, fmt.Errorf("graph: %s: %d edges exceed the implicit cap of %d", spec, m, implicitMaxEdges)
	}
	return &Implicit{spec: spec, n: n, m: m, seed: seed, hub: -1}, nil
}

// ImplicitRing returns the implicit n-cycle: edge i joins i and (i+1) mod n.
func ImplicitRing(n int, seed int64) (*Implicit, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs n >= 3, got %d", n)
	}
	t, err := newImplicit(fmt.Sprintf("ring:%d", n), n, n, seed)
	if err != nil {
		return nil, err
	}
	t.deg = func(NodeID) int { return 2 }
	t.nbrs = func(v NodeID, buf []nbr) []nbr {
		prev := (int(v) + n - 1) % n
		return append(buf,
			nbr{to: NodeID(prev), id: prev},
			nbr{to: NodeID((int(v) + 1) % n), id: int(v)})
	}
	t.ends = func(id int) (NodeID, NodeID) { return NodeID(id), NodeID((id + 1) % n) }
	return t, nil
}

// ImplicitPath returns the implicit n-node path: edge i joins i and i+1.
func ImplicitPath(n int, seed int64) (*Implicit, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: path needs n >= 2, got %d", n)
	}
	t, err := newImplicit(fmt.Sprintf("path:%d", n), n, n-1, seed)
	if err != nil {
		return nil, err
	}
	t.deg = func(v NodeID) int {
		if v == 0 || int(v) == n-1 {
			return 1
		}
		return 2
	}
	t.nbrs = func(v NodeID, buf []nbr) []nbr {
		if v > 0 {
			buf = append(buf, nbr{to: v - 1, id: int(v) - 1})
		}
		if int(v) < n-1 {
			buf = append(buf, nbr{to: v + 1, id: int(v)})
		}
		return buf
	}
	t.ends = func(id int) (NodeID, NodeID) { return NodeID(id), NodeID(id + 1) }
	return t, nil
}

// ImplicitGrid returns the implicit rows×cols mesh; node (r,c) has id
// r*cols+c. Horizontal edges come first — edge r*(cols-1)+c joins (r,c) and
// (r,c+1) — then vertical: edge rows*(cols-1) + r*cols+c joins (r,c) and
// (r+1,c).
func ImplicitGrid(rows, cols int, seed int64) (*Implicit, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("graph: grid needs at least 2 nodes, got %dx%d", rows, cols)
	}
	h := rows * (cols - 1)
	m := h + (rows-1)*cols
	t, err := newImplicit(fmt.Sprintf("grid:%dx%d", rows, cols), rows*cols, m, seed)
	if err != nil {
		return nil, err
	}
	t.deg = func(v NodeID) int {
		r, c := int(v)/cols, int(v)%cols
		d := 0
		if c > 0 {
			d++
		}
		if c < cols-1 {
			d++
		}
		if r > 0 {
			d++
		}
		if r < rows-1 {
			d++
		}
		return d
	}
	t.nbrs = func(v NodeID, buf []nbr) []nbr {
		r, c := int(v)/cols, int(v)%cols
		if c > 0 {
			buf = append(buf, nbr{to: v - 1, id: r*(cols-1) + c - 1})
		}
		if c < cols-1 {
			buf = append(buf, nbr{to: v + 1, id: r*(cols-1) + c})
		}
		if r > 0 {
			buf = append(buf, nbr{to: v - NodeID(cols), id: h + (r-1)*cols + c})
		}
		if r < rows-1 {
			buf = append(buf, nbr{to: v + NodeID(cols), id: h + r*cols + c})
		}
		return buf
	}
	t.ends = func(id int) (NodeID, NodeID) {
		if id < h {
			r, c := id/(cols-1), id%(cols-1)
			u := NodeID(r*cols + c)
			return u, u + 1
		}
		id -= h
		u := NodeID(id)
		return u, u + NodeID(cols)
	}
	return t, nil
}

// ImplicitTorus returns the implicit rows×cols grid with wraparound links.
// Horizontal edge r*cols+c joins (r,c) and (r,(c+1) mod cols); vertical
// edge rows*cols + r*cols+c joins (r,c) and ((r+1) mod rows,c).
func ImplicitTorus(rows, cols int, seed int64) (*Implicit, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs rows, cols >= 3, got %dx%d", rows, cols)
	}
	n := rows * cols
	t, err := newImplicit(fmt.Sprintf("torus:%dx%d", rows, cols), n, 2*n, seed)
	if err != nil {
		return nil, err
	}
	t.deg = func(NodeID) int { return 4 }
	t.nbrs = func(v NodeID, buf []nbr) []nbr {
		r, c := int(v)/cols, int(v)%cols
		left := r*cols + (c+cols-1)%cols
		up := ((r+rows-1)%rows)*cols + c
		return append(buf,
			nbr{to: NodeID(left), id: left},
			nbr{to: NodeID(r*cols + (c+1)%cols), id: int(v)},
			nbr{to: NodeID(up), id: n + up},
			nbr{to: NodeID(((r+1)%rows)*cols + c), id: n + int(v)})
	}
	t.ends = func(id int) (NodeID, NodeID) {
		if id < n {
			r, c := id/cols, id%cols
			return NodeID(id), NodeID(r*cols + (c+1)%cols)
		}
		id -= n
		r, c := id/cols, id%cols
		return NodeID(id), NodeID(((r+1)%rows)*cols + c)
	}
	return t, nil
}

// ImplicitHypercube returns the implicit dim-dimensional hypercube on 2^dim
// nodes, adjacent iff ids differ in one bit. Edge ids group by flipped bit:
// edge b*2^(dim-1) + squash(v, b) joins v (bit b clear) and v | 1<<b, where
// squash removes bit b from v.
func ImplicitHypercube(dim int, seed int64) (*Implicit, error) {
	if dim < 1 || dim > 30 {
		return nil, fmt.Errorf("graph: hypercube needs 1 <= dim <= 30, got %d", dim)
	}
	n := 1 << dim
	half := n >> 1
	t, err := newImplicit(fmt.Sprintf("hypercube:%d", dim), n, dim*half, seed)
	if err != nil {
		return nil, err
	}
	t.deg = func(NodeID) int { return dim }
	t.nbrs = func(v NodeID, buf []nbr) []nbr {
		for b := 0; b < dim; b++ {
			lowMask := (1 << b) - 1
			base := int(v) &^ (1 << b)
			squashed := (base & lowMask) | ((base >> (b + 1)) << b)
			buf = append(buf, nbr{to: v ^ NodeID(1<<b), id: b*half + squashed})
		}
		return buf
	}
	t.ends = func(id int) (NodeID, NodeID) {
		b, squashed := id/half, id%half
		lowMask := (1 << b) - 1
		u := (squashed & lowMask) | ((squashed >> b) << (b + 1))
		return NodeID(u), NodeID(u | 1<<b)
	}
	return t, nil
}

// ImplicitStar returns the implicit star with center 0: edge i joins 0 and
// i+1. The center's n-1 links cannot be weight-ordered in O(1), so its
// sorted adjacency is cached at construction — O(n) memory for the hub,
// O(1) for every leaf.
func ImplicitStar(n int, seed int64) (*Implicit, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: star needs n >= 2, got %d", n)
	}
	t, err := newImplicit(fmt.Sprintf("star:%d", n), n, n-1, seed)
	if err != nil {
		return nil, err
	}
	t.deg = func(v NodeID) int {
		if v == 0 {
			return n - 1
		}
		return 1
	}
	t.nbrs = func(v NodeID, buf []nbr) []nbr {
		// Only leaves take this path; the hub answers from hubAdj.
		return append(buf, nbr{to: 0, id: int(v) - 1})
	}
	t.ends = func(id int) (NodeID, NodeID) { return 0, NodeID(id + 1) }
	t.hub = 0
	t.hubAdj = make([]Half, 0, n-1)
	for i := 1; i < n; i++ {
		t.hubAdj = append(t.hubAdj, Half{
			To: NodeID(i), Weight: implicitWeight(seed, 0, NodeID(i), i-1), EdgeID: int32(i - 1),
		})
	}
	sortHalves(t.hubAdj)
	return t, nil
}

// ImplicitBinaryTree returns the implicit binary tree where node i has
// parent (i-1)/2: edge i joins (i)/2 — that is, (i+1-1)/2 — and i+1.
func ImplicitBinaryTree(n int, seed int64) (*Implicit, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: binary tree needs n >= 2, got %d", n)
	}
	t, err := newImplicit(fmt.Sprintf("btree:%d", n), n, n-1, seed)
	if err != nil {
		return nil, err
	}
	t.deg = func(v NodeID) int {
		d := 0
		if v > 0 {
			d++
		}
		if 2*int(v)+1 < n {
			d++
		}
		if 2*int(v)+2 < n {
			d++
		}
		return d
	}
	t.nbrs = func(v NodeID, buf []nbr) []nbr {
		if v > 0 {
			buf = append(buf, nbr{to: (v - 1) / 2, id: int(v) - 1})
		}
		if c := 2*int(v) + 1; c < n {
			buf = append(buf, nbr{to: NodeID(c), id: c - 1})
		}
		if c := 2*int(v) + 2; c < n {
			buf = append(buf, nbr{to: NodeID(c), id: c - 1})
		}
		return buf
	}
	t.ends = func(id int) (NodeID, NodeID) { return NodeID(id / 2), NodeID(id + 1) }
	return t, nil
}

// squareSides resolves a node-count spec for grid/torus the way cmd/mmnet
// always has: a near-square rows×cols with rows*cols >= n.
func squareSides(n int) (rows, cols int) {
	side := int(math.Round(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	return side, (n + side - 1) / side
}

// log2Exact returns k with 2^k == n, or an error.
func log2Exact(n int) (int, error) {
	if n < 2 || n&(n-1) != 0 {
		return 0, fmt.Errorf("graph: hypercube node count %d is not a power of two", n)
	}
	return bits.TrailingZeros(uint(n)), nil
}
