package graph

import (
	"testing"
	"testing/quick"
)

// checkDistinctWeights verifies the generator invariant that all weights are
// pairwise distinct (Build would have failed otherwise, but assert anyway).
func checkDistinctWeights(t *testing.T, g *Graph) {
	t.Helper()
	seen := make(map[Weight]bool, g.M())
	for _, e := range g.Edges() {
		if seen[e.Weight] {
			t.Fatalf("duplicate weight %d", e.Weight)
		}
		seen[e.Weight] = true
	}
}

func TestRing(t *testing.T) {
	g, err := Ring(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 || g.M() != 8 {
		t.Errorf("ring(8): n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Error("ring not connected")
	}
	if d := Diameter(g); d != 4 {
		t.Errorf("ring(8) diameter = %d, want 4", d)
	}
	for v := 0; v < 8; v++ {
		if g.Degree(NodeID(v)) != 2 {
			t.Errorf("degree(%d) = %d, want 2", v, g.Degree(NodeID(v)))
		}
	}
	checkDistinctWeights(t, g)
}

func TestPath(t *testing.T) {
	g, err := Path(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 || Diameter(g) != 4 {
		t.Errorf("path(5): m=%d diam=%d", g.M(), Diameter(g))
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Errorf("grid n = %d, want 12", g.N())
	}
	// edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17
	if g.M() != 17 {
		t.Errorf("grid m = %d, want 17", g.M())
	}
	if d := Diameter(g); d != 5 {
		t.Errorf("grid(3,4) diameter = %d, want 5", d)
	}
	checkDistinctWeights(t, g)
}

func TestTorus(t *testing.T) {
	g, err := Torus(3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 9 || g.M() != 18 {
		t.Errorf("torus(3,3): n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(NodeID(v)) != 4 {
			t.Errorf("torus degree(%d) = %d, want 4", v, g.Degree(NodeID(v)))
		}
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 15 || Diameter(g) != 1 {
		t.Errorf("K6: m=%d diam=%d", g.M(), Diameter(g))
	}
}

func TestStarAndBinaryTree(t *testing.T) {
	s, err := Star(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 9 || Diameter(s) != 2 || s.Degree(0) != 9 {
		t.Errorf("star(10): m=%d diam=%d deg0=%d", s.M(), Diameter(s), s.Degree(0))
	}
	bt, err := BinaryTree(15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bt.M() != 14 || !bt.Connected() {
		t.Errorf("btree(15): m=%d connected=%v", bt.M(), bt.Connected())
	}
	if d := Diameter(bt); d != 6 {
		t.Errorf("btree(15) diameter = %d, want 6", d)
	}
}

func TestRandomConnected(t *testing.T) {
	for _, tt := range []struct{ n, extra int }{
		{2, 0}, {10, 0}, {10, 5}, {50, 100}, {5, 1000}, // extra clamped
	} {
		g, err := RandomConnected(tt.n, tt.extra, 42)
		if err != nil {
			t.Fatalf("RandomConnected(%d,%d): %v", tt.n, tt.extra, err)
		}
		if !g.Connected() {
			t.Errorf("RandomConnected(%d,%d) not connected", tt.n, tt.extra)
		}
		wantM := tt.n - 1 + tt.extra
		if max := tt.n * (tt.n - 1) / 2; wantM > max {
			wantM = max
		}
		if g.M() != wantM {
			t.Errorf("RandomConnected(%d,%d) m = %d, want %d", tt.n, tt.extra, g.M(), wantM)
		}
		checkDistinctWeights(t, g)
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a, _ := RandomConnected(30, 40, 7)
	b, _ := RandomConnected(30, 40, 7)
	if a.M() != b.M() {
		t.Fatal("same seed, different edge count")
	}
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("same seed, edge %d differs: %v vs %v", i, a.Edge(i), b.Edge(i))
		}
	}
	c, _ := RandomConnected(30, 40, 8)
	same := c.M() == a.M()
	if same {
		diff := false
		for i := range a.Edges() {
			if a.Edge(i) != c.Edge(i) {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestRay(t *testing.T) {
	g, err := Ray(4, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 21 || g.M() != 20 {
		t.Errorf("ray(4,5): n=%d m=%d", g.N(), g.M())
	}
	if d := Diameter(g); d != 10 {
		t.Errorf("ray(4,5) diameter = %d, want 10", d)
	}
	if g.Degree(0) != 4 {
		t.Errorf("center degree = %d, want 4", g.Degree(0))
	}
}

func TestGeneratorErrors(t *testing.T) {
	bad := []error{
		func() error { _, err := Ring(2, 1); return err }(),
		func() error { _, err := Path(1, 1); return err }(),
		func() error { _, err := Grid(1, 1, 1); return err }(),
		func() error { _, err := Torus(2, 3, 1); return err }(),
		func() error { _, err := Complete(1, 1); return err }(),
		func() error { _, err := Star(1, 1); return err }(),
		func() error { _, err := BinaryTree(1, 1); return err }(),
		func() error { _, err := RandomConnected(1, 0, 1); return err }(),
		func() error { _, err := Ray(0, 3, 1); return err }(),
	}
	for i, err := range bad {
		if err == nil {
			t.Errorf("case %d: expected error, got nil", i)
		}
	}
}

// Property: every generated random graph is connected, simple and has
// distinct weights 1..m.
func TestRandomConnectedProperty(t *testing.T) {
	prop := func(nRaw uint8, extraRaw uint8, seed int64) bool {
		n := 2 + int(nRaw)%60
		extra := int(extraRaw) % 80
		g, err := RandomConnected(n, extra, seed)
		if err != nil || !g.Connected() {
			return false
		}
		seen := make(map[Weight]bool)
		for _, e := range g.Edges() {
			if e.U == e.V || e.Weight < 1 || e.Weight > Weight(g.M()) || seen[e.Weight] {
				return false
			}
			seen[e.Weight] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 || g.M() != 32 {
		t.Errorf("Q4: n=%d m=%d, want 16, 32", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(NodeID(v)) != 4 {
			t.Errorf("degree(%d) = %d, want 4", v, g.Degree(NodeID(v)))
		}
	}
	if d := Diameter(g); d != 4 {
		t.Errorf("Q4 diameter = %d, want 4", d)
	}
	checkDistinctWeights(t, g)
	if _, err := Hypercube(0, 1); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := Hypercube(21, 1); err == nil {
		t.Error("dim 21 should error")
	}
}
