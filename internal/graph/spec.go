package graph

// spec.go is the one topology-spec grammar shared by the CLIs (mmnet,
// mmexp, mmbench) and the test harnesses, so `-graph ring:10000000` means
// the same thing everywhere.
//
// Grammar:
//
//	spec     = ["mat:"] name [":" args]
//	name     = ring|path|grid|torus|hypercube|star|btree|complete|random|ray|ba|ws
//	args     = int | int "x" int | int "," ... (per family, see below)
//
// With args, the implicit-capable families (ring, path, grid, torus,
// hypercube, star, btree) build the implicit O(1)-memory form with
// hash-derived weights; the "mat:" prefix materializes the same topology
// into a stored *Graph (identical ids, weights, and transcripts — the
// cross-form determinism contract). The remaining families (complete,
// random, ray, ba, ws) are always materialized, with the generators'
// permutation weights.
//
// Without args, a bare name keeps the historical cmd/mmnet behavior: the
// materialized generator of gen.go/scalefree.go sized by the Defaults
// (-n/-extra/-rays/-raylen flags), with permutation weights — so existing
// invocations and golden transcripts are unchanged.

import (
	"fmt"
	"strconv"
	"strings"
)

// SpecDefaults carries the legacy sizing flags bare-name specs fall back to.
type SpecDefaults struct {
	N      int // node count (most families)
	Extra  int // extra edges (random), attachments per node (ba)
	Rays   int // rays (ray)
	RayLen int // ray length (ray)
}

// SpecNames lists every topology family ParseSpec accepts, in the order the
// -graph flag documents them. cmd/mmnet's coverage test runs each one, so a
// generator cannot be added here without being reachable from the CLI.
func SpecNames() []string {
	return []string{
		"ring", "path", "grid", "torus", "hypercube", "star", "btree",
		"complete", "random", "ray", "ba", "ws",
	}
}

// SpecHelp is the -graph flag usage string.
func SpecHelp() string {
	return "topology: " + strings.Join(SpecNames(), "|") +
		", sized by -n etc; or a spec like ring:10000000, grid:200x500, ba:5000,3, ws:5000,6,0.1 " +
		"(implicit O(1)-memory form where available; mat: prefix materializes it)"
}

// ParseSpec parses a self-contained topology spec ("ring:1024"); bare names
// are rejected because they need the legacy sizing defaults.
func ParseSpec(spec string, seed int64) (Topology, error) {
	return ParseSpecWith(spec, seed, SpecDefaults{})
}

// ParseSpecWith parses spec, resolving bare names against the given legacy
// defaults (a zero Defaults rejects bare names).
func ParseSpecWith(spec string, seed int64, d SpecDefaults) (Topology, error) {
	materialize := false
	if rest, ok := strings.CutPrefix(spec, "mat:"); ok {
		materialize, spec = true, rest
	}
	name, args, hasArgs := strings.Cut(spec, ":")
	t, err := buildSpec(name, args, hasArgs, seed, d)
	if err != nil {
		return nil, err
	}
	if materialize {
		return Materialize(t)
	}
	return t, nil
}

func buildSpec(name, args string, hasArgs bool, seed int64, d SpecDefaults) (Topology, error) {
	if !hasArgs {
		return legacySpec(name, seed, d)
	}
	bad := func(want string) error {
		return fmt.Errorf("graph: spec %s:%s: want %s:%s", name, args, name, want)
	}
	switch name {
	case "ring", "path", "star", "btree", "complete":
		n, err := strconv.Atoi(args)
		if err != nil {
			return nil, bad("N")
		}
		switch name {
		case "ring":
			return ImplicitRing(n, seed)
		case "path":
			return ImplicitPath(n, seed)
		case "star":
			return ImplicitStar(n, seed)
		case "btree":
			return ImplicitBinaryTree(n, seed)
		default:
			return Complete(n, seed)
		}
	case "grid", "torus":
		rows, cols, err := parseSides(args)
		if err != nil {
			return nil, bad("RxC or N")
		}
		if name == "grid" {
			return ImplicitGrid(rows, cols, seed)
		}
		return ImplicitTorus(rows, cols, seed)
	case "hypercube":
		dim, err := strconv.Atoi(args)
		if err != nil {
			return nil, bad("DIM")
		}
		return ImplicitHypercube(dim, seed)
	case "random":
		p, err := parseInts(args, 2)
		if err != nil {
			return nil, bad("N,EXTRA")
		}
		return RandomConnected(p[0], p[1], seed)
	case "ray":
		p, err := parseInts(args, 2)
		if err != nil {
			return nil, bad("RAYS,LEN")
		}
		return Ray(p[0], p[1], seed)
	case "ba":
		p, err := parseInts(args, 2)
		if err != nil {
			return nil, bad("N,ATTACH")
		}
		return BarabasiAlbert(p[0], p[1], seed)
	case "ws":
		var n, k int
		var beta float64
		parts := strings.Split(args, ",")
		if len(parts) != 3 {
			return nil, bad("N,K,BETA")
		}
		var err1, err2, err3 error
		n, err1 = strconv.Atoi(parts[0])
		k, err2 = strconv.Atoi(parts[1])
		beta, err3 = strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, bad("N,K,BETA")
		}
		return WattsStrogatz(n, k, beta, seed)
	default:
		return nil, fmt.Errorf("graph: unknown topology %q (want %s)", name, strings.Join(SpecNames(), "|"))
	}
}

// legacySpec resolves a bare family name against the sizing defaults, using
// the historical materialized generators and weight scheme.
func legacySpec(name string, seed int64, d SpecDefaults) (Topology, error) {
	if d.N == 0 {
		return nil, fmt.Errorf("graph: spec %q needs arguments (e.g. %s:1024)", name, name)
	}
	switch name {
	case "ring":
		return Ring(d.N, seed)
	case "path":
		return Path(d.N, seed)
	case "grid":
		rows, cols := squareSides(d.N)
		return Grid(rows, cols, seed)
	case "torus":
		side, _ := squareSides(d.N)
		return Torus(side, side, seed)
	case "hypercube":
		dim, err := log2Exact(d.N)
		if err != nil {
			return nil, err
		}
		return Hypercube(dim, seed)
	case "star":
		return Star(d.N, seed)
	case "btree":
		return BinaryTree(d.N, seed)
	case "complete":
		return Complete(d.N, seed)
	case "random":
		return RandomConnected(d.N, d.Extra, seed)
	case "ray":
		return Ray(d.Rays, d.RayLen, seed)
	case "ba":
		return BarabasiAlbert(d.N, 3, seed)
	case "ws":
		return WattsStrogatz(d.N, 4, 0.1, seed)
	default:
		return nil, fmt.Errorf("graph: unknown topology %q (want %s)", name, strings.Join(SpecNames(), "|"))
	}
}

// parseSides parses "RxC" or a bare node count (resolved near-square).
func parseSides(s string) (rows, cols int, err error) {
	if r, c, ok := strings.Cut(s, "x"); ok {
		rows, err1 := strconv.Atoi(r)
		cols, err2 := strconv.Atoi(c)
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("bad sides %q", s)
		}
		return rows, cols, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, 0, err
	}
	rows, cols = squareSides(n)
	return rows, cols, nil
}

func parseInts(s string, want int) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("want %d comma-separated ints, got %q", want, s)
	}
	out := make([]int, want)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
