package graph

import (
	"errors"
	"testing"
)

func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := mustBuild(t, NewBuilder(3).AddEdge(0, 1, 5).AddEdge(1, 2, 3))
	if g.N() != 3 {
		t.Errorf("N = %d, want 3", g.N())
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("missing edge {0,1}")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge {0,2}")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
	if got := g.TotalWeight(); got != 8 {
		t.Errorf("TotalWeight = %d, want 8", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name string
		b    *Builder
		want error
	}{
		{"self loop", NewBuilder(2).AddEdge(1, 1, 1), ErrSelfLoop},
		{"duplicate edge", NewBuilder(2).AddEdge(0, 1, 1).AddEdge(1, 0, 2), ErrDuplicateEdge},
		{"node out of range", NewBuilder(2).AddEdge(0, 2, 1), ErrNodeRange},
		{"negative node", NewBuilder(2).AddEdge(-1, 0, 1), ErrNodeRange},
		{"duplicate weight", NewBuilder(3).AddEdge(0, 1, 7).AddEdge(1, 2, 7), ErrDuplicateWeight},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.b.Build(); !errors.Is(err, tt.want) {
				t.Errorf("Build err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestBuilderEmptyGraph(t *testing.T) {
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Error("Build on 0 nodes should error")
	}
	g := mustBuild(t, NewBuilder(1))
	if g.N() != 1 || g.M() != 0 {
		t.Errorf("singleton graph: n=%d m=%d", g.N(), g.M())
	}
}

func TestAdjacencySortedByWeight(t *testing.T) {
	g := mustBuild(t, NewBuilder(4).
		AddEdge(0, 1, 30).AddEdge(0, 2, 10).AddEdge(0, 3, 20))
	adj := g.Adj(0)
	if len(adj) != 3 {
		t.Fatalf("len(adj) = %d, want 3", len(adj))
	}
	for i := 1; i < len(adj); i++ {
		if adj[i-1].Weight >= adj[i].Weight {
			t.Errorf("adjacency not weight-sorted: %v", adj)
		}
	}
	if adj[0].To != 2 || adj[1].To != 3 || adj[2].To != 1 {
		t.Errorf("adjacency order = %v, want [2 3 1]", adj)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7, Weight: 1}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Errorf("Other mismatch: %v", e)
	}
}

func TestHalfEdgeIDsConsistent(t *testing.T) {
	g := mustBuild(t, NewBuilder(3).AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(0, 2, 3))
	for v := 0; v < g.N(); v++ {
		for _, h := range g.Adj(NodeID(v)) {
			e := g.Edge(int(h.EdgeID))
			if e.Other(NodeID(v)) != h.To || e.Weight != h.Weight {
				t.Errorf("half edge %+v inconsistent with edge %+v at node %d", h, e, v)
			}
		}
	}
}

func TestConnected(t *testing.T) {
	conn := mustBuild(t, NewBuilder(3).AddEdge(0, 1, 1).AddEdge(1, 2, 2))
	if !conn.Connected() {
		t.Error("path should be connected")
	}
	disc := mustBuild(t, NewBuilder(4).AddEdge(0, 1, 1).AddEdge(2, 3, 2))
	if disc.Connected() {
		t.Error("two components should not be connected")
	}
}
