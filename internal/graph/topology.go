package graph

// topology.go defines Topology, the read-only graph abstraction every layer
// above this package consumes. Two families implement it:
//
//   - *Graph, the materialized form: O(n + m) memory, every query O(1) off
//     stored edge lists and weight-sorted adjacency slices.
//   - the implicit forms (implicit.go): ring, path, grid, torus, hypercube,
//     star, and binary tree whose adjacency, edge endpoints, and weights are
//     *computed* per query from the node id and a seed, costing O(1) memory
//     per query. They are what lets the step engine run 10⁷–10⁸-node
//     networks: the topology itself occupies a few dozen bytes regardless
//     of n.
//
// The two forms are interchangeable: Materialize turns any Topology into a
// *Graph with identical node ids, edge ids, weights, and adjacency order,
// so for a fixed (topology spec, protocol, seed) the simulators produce
// bit-identical transcripts on either form — the cross-form half of the
// module's determinism contract, enforced by the differential suite in
// crossform_test.go.

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
)

// Topology is an immutable, connected, simple undirected weighted graph on
// nodes 0..N()-1 with edges 0..M()-1 and pairwise-distinct positive
// weights. Adjacency is always presented sorted by ascending edge weight —
// the paper's "ordered list of links" — and all methods are safe for
// concurrent use (the step engine queries from every worker).
//
// Implementations may compute answers on the fly; callers on hot paths
// should prefer Degree/HalfAt/LinkIndex (never allocate) and AdjAppend
// (allocation-free given capacity) over Adj, which implicit forms must
// materialize per call.
type Topology interface {
	// N returns the number of nodes.
	N() int
	// M returns the number of edges.
	M() int
	// Degree returns the number of links incident to v.
	Degree(v NodeID) int
	// Adj returns v's incident links sorted by ascending weight. The caller
	// must not modify the returned slice; implicit forms allocate it fresh
	// on every call.
	Adj(v NodeID) []Half
	// AdjAppend appends v's incident links, sorted by ascending weight, to
	// buf and returns the extended slice — the allocation-free form of Adj.
	AdjAppend(v NodeID, buf []Half) []Half
	// HalfAt returns v's link with the given local index (0-based, in the
	// sorted-by-weight order). It panics if link is out of range.
	HalfAt(v NodeID, link int) Half
	// LinkIndex returns the local link index at v of the edge with the
	// given id — the inverse of HalfAt — and whether the edge is incident
	// to v.
	LinkIndex(v NodeID, edgeID int) (int, bool)
	// Edge returns the edge with the given id, including its weight.
	Edge(id int) Edge
}

// *Graph's Topology completion: graph.go supplies N, M, Degree, Adj, and
// Edge off the stored representation; the three remaining queries follow.

// AdjAppend appends v's incident links (sorted by ascending weight) to buf.
func (g *Graph) AdjAppend(v NodeID, buf []Half) []Half {
	return append(buf, g.adj[v]...)
}

// HalfAt returns v's link with the given local index.
func (g *Graph) HalfAt(v NodeID, link int) Half { return g.adj[v][link] }

// LinkIndex returns the local link index at v of the given edge id.
func (g *Graph) LinkIndex(v NodeID, edgeID int) (int, bool) {
	if edgeID < 0 || edgeID >= len(g.edges) {
		return 0, false
	}
	e := g.edges[edgeID]
	if e.U != v && e.V != v {
		return 0, false
	}
	// Adjacency is sorted by weight and weights are distinct, so the link
	// index is the position of the edge's weight — binary search, O(log d).
	adj := g.adj[v]
	i, ok := slices.BinarySearchFunc(adj, e.Weight, func(h Half, w Weight) int {
		return cmp.Compare(h.Weight, w)
	})
	if !ok {
		return 0, false
	}
	return i, true
}

var _ Topology = (*Graph)(nil)

// Materialize builds the stored *Graph form of any topology: identical node
// ids, edge ids, weights, and (by the distinct-weight sort) adjacency
// order, so simulations on the result are transcript-identical to the
// implicit original. A *Graph materializes to itself.
func Materialize(t Topology) (*Graph, error) {
	if g, ok := t.(*Graph); ok {
		return g, nil
	}
	n, m := t.N(), t.M()
	if n <= 0 {
		return nil, fmt.Errorf("graph: materialize: n must be positive, got %d", n)
	}
	g := &Graph{
		n:     n,
		edges: make([]Edge, m),
		adj:   make([][]Half, n),
	}
	deg := make([]int, n)
	for id := 0; id < m; id++ {
		e := t.Edge(id)
		if e.U == e.V || e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: materialize: bad edge %d = {%d,%d}", id, e.U, e.V)
		}
		g.edges[id] = e
		deg[e.U]++
		deg[e.V]++
	}
	// One backing array per node, then the same sorted-by-weight order the
	// implicit form computes (weights are distinct, so the order is total).
	for v := range g.adj {
		g.adj[v] = make([]Half, 0, deg[v])
	}
	for id, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], Half{To: e.V, Weight: e.Weight, EdgeID: int32(id)})
		g.adj[e.V] = append(g.adj[e.V], Half{To: e.U, Weight: e.Weight, EdgeID: int32(id)})
	}
	for v := range g.adj {
		sortHalves(g.adj[v])
	}
	return g, nil
}

// sortHalves orders one adjacency list by ascending weight.
func sortHalves(adj []Half) {
	slices.SortFunc(adj, func(a, b Half) int { return cmp.Compare(a.Weight, b.Weight) })
}

// ConnectedTopo reports whether t is connected (Graph.Connected for any
// Topology).
func ConnectedTopo(t Topology) bool {
	if t.N() == 0 {
		return false
	}
	return NewBFS(t, 0).Reached() == t.N()
}

// TopoHeapCost builds a topology with mk and returns it together with the
// heap growth its construction caused — the bytes/node measure mmbench's
// mem rows and the E12 table record. The double GC brackets the build so
// transient construction garbage is excluded; the delta is clamped at 0.
func TopoHeapCost(mk func() (Topology, error)) (Topology, uint64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t, err := mk()
	if err != nil {
		return nil, 0, err
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	var delta uint64
	if after.HeapAlloc > before.HeapAlloc {
		delta = after.HeapAlloc - before.HeapAlloc
	}
	runtime.KeepAlive(t)
	return t, delta, nil
}

// topoMix is the splitmix64-style hash behind the implicit forms' weights:
// three words mixed through the splitmix64 finalizer.
func topoMix(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + c*0x94d049bb133111eb + 0x2545f4914f6cdd1d
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// implicitWeight computes the deterministic distinct weight of edge id
// {u, v}: the top bits are a seeded hash of the normalized pair (so weights
// look independent of the construction order, like the generators'
// permutation weights), and the low 31 bits are the edge id, which
// guarantees pairwise distinctness without any global bookkeeping. The +1
// keeps the hash half nonzero, so weights are strictly positive (≥ 2³¹)
// even when the retained hash bits are all zero; they fit in 62 bits, and
// edge ids must fit in 31.
func implicitWeight(seed int64, u, v NodeID, id int) Weight {
	if u > v {
		u, v = v, u
	}
	h := topoMix(uint64(seed), uint64(u)+1, uint64(v)+1)
	return Weight((int64(h>>34)+1)<<31 | int64(id))
}
