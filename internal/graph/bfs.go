package graph

// BFS holds the result of a breadth-first search from a root: parent
// pointers, hop distances and visit order. It is the reference implementation
// against which the distributed BFS protocols are tested.
type BFS struct {
	Root   NodeID
	Parent []NodeID // Parent[v] == -1 for the root and unreachable nodes
	Dist   []int    // Dist[v] == -1 for unreachable nodes
	Order  []NodeID // nodes in visit order (root first)
}

// NewBFS runs a breadth-first search over any topology from root.
func NewBFS(g Topology, root NodeID) *BFS {
	b := &BFS{
		Root:   root,
		Parent: make([]NodeID, g.N()),
		Dist:   make([]int, g.N()),
	}
	for v := range b.Parent {
		b.Parent[v] = -1
		b.Dist[v] = -1
	}
	b.Dist[root] = 0
	queue := []NodeID{root}
	// The adjacency buffer is reused across nodes; implicit forms additionally
	// need a caller-owned scratch or every AdjAppend call heap-allocates its
	// neighbor staging buffer (≈0.5 KB/node at census scale).
	var adj []Half
	imp, _ := g.(*Implicit)
	var scratch AdjScratch
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		b.Order = append(b.Order, v)
		if imp != nil {
			adj = imp.AdjInto(v, adj[:0], &scratch)
		} else {
			adj = g.AdjAppend(v, adj[:0])
		}
		for _, h := range adj {
			if b.Dist[h.To] == -1 {
				b.Dist[h.To] = b.Dist[v] + 1
				b.Parent[h.To] = v
				queue = append(queue, h.To)
			}
		}
	}
	return b
}

// Reached returns the number of nodes reachable from the root (including it).
func (b *BFS) Reached() int { return len(b.Order) }

// Eccentricity returns the maximum distance from the root to any reachable node.
func (b *BFS) Eccentricity() int {
	max := 0
	for _, d := range b.Dist {
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the exact hop diameter of a connected graph by running a
// BFS from every node. It is O(n·m) and intended for the modest sizes used in
// tests and experiments.
func Diameter(g Topology) int {
	d := 0
	for v := 0; v < g.N(); v++ {
		ecc := NewBFS(g, NodeID(v)).Eccentricity()
		if ecc > d {
			d = ecc
		}
	}
	return d
}

// DiameterLowerBound returns a lower bound on the diameter via a double
// sweep (two BFS passes); exact on trees and usually tight in practice.
func DiameterLowerBound(g Topology) int {
	first := NewBFS(g, 0)
	far := NodeID(0)
	for v, d := range first.Dist {
		if d > first.Dist[far] {
			far = NodeID(v)
		}
	}
	return NewBFS(g, far).Eccentricity()
}
