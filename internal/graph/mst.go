package graph

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
)

// MST is the result of a minimum-spanning-tree computation: the chosen edge
// ids and their total weight. With distinct weights the MST is unique, so it
// serves as ground truth for the distributed algorithms.
type MST struct {
	EdgeIDs []int // sorted ascending
	Total   Weight
}

// Kruskal computes the MST of a connected graph with the classic sequential
// algorithm (sort edges, union-find) over any Topology. It returns an error
// if g is not connected.
func Kruskal(g Topology) (*MST, error) {
	if !ConnectedTopo(g) {
		return nil, fmt.Errorf("graph: kruskal requires a connected graph")
	}
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		return cmp.Compare(g.Edge(a).Weight, g.Edge(b).Weight)
	})
	uf := NewUnionFind(g.N())
	mst := &MST{}
	for _, id := range order {
		e := g.Edge(id)
		if uf.Union(int(e.U), int(e.V)) {
			mst.EdgeIDs = append(mst.EdgeIDs, id)
			mst.Total += e.Weight
			if len(mst.EdgeIDs) == g.N()-1 {
				break
			}
		}
	}
	sort.Ints(mst.EdgeIDs)
	return mst, nil
}

// Contains reports whether edge id belongs to the MST.
func (m *MST) Contains(id int) bool {
	i := sort.SearchInts(m.EdgeIDs, id)
	return i < len(m.EdgeIDs) && m.EdgeIDs[i] == id
}

// Equal reports whether two MSTs consist of exactly the same edges.
func (m *MST) Equal(other *MST) bool {
	if len(m.EdgeIDs) != len(other.EdgeIDs) || m.Total != other.Total {
		return false
	}
	for i, id := range m.EdgeIDs {
		if other.EdgeIDs[i] != id {
			return false
		}
	}
	return true
}
