package graph

// scalefree.go adds the two heavy-tailed materialized generators motivated
// by the random-walk literature on scale-free networks (PAPERS.md,
// arXiv:0908.0976): Barabási–Albert preferential attachment and
// Watts–Strogatz small-world rewiring. Both produce connected simple graphs
// with the package's permutation weights, so every protocol runs on them
// unchanged.

import (
	"fmt"
	"math/rand"
)

// BarabasiAlbert returns a scale-free graph grown by preferential
// attachment: nodes 0..attach form a seed clique, then each new node v
// attaches to `attach` distinct existing nodes sampled proportionally to
// their degree. The result is connected with m = C(attach+1, 2) +
// (n-attach-1)*attach edges and a heavy-tailed degree sequence.
func BarabasiAlbert(n, attach int, seed int64) (*Graph, error) {
	if attach < 1 {
		return nil, fmt.Errorf("graph: barabasi-albert needs attach >= 1, got %d", attach)
	}
	if n < attach+2 {
		return nil, fmt.Errorf("graph: barabasi-albert needs n >= attach+2, got n=%d attach=%d", n, attach)
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	// targets is the degree-weighted urn: every edge contributes both its
	// endpoints, so sampling uniformly from it is preferential attachment.
	var targets []NodeID
	addEdge := func(u, v NodeID) {
		edges = append(edges, Edge{U: u, V: v})
		targets = append(targets, u, v)
	}
	// Seed clique on attach+1 nodes, so each early node already has degree
	// `attach` when growth starts.
	for i := 0; i <= attach; i++ {
		for j := i + 1; j <= attach; j++ {
			addEdge(NodeID(i), NodeID(j))
		}
	}
	picked := make(map[NodeID]bool, attach)
	for v := attach + 1; v < n; v++ {
		clear(picked)
		for len(picked) < attach {
			t := targets[rng.Intn(len(targets))]
			if !picked[t] {
				picked[t] = true
			}
		}
		// Attach in ascending target order so the edge list (and hence the
		// weight permutation) is independent of map iteration order.
		for t := NodeID(0); int(t) < v && len(picked) > 0; t++ {
			if picked[t] {
				delete(picked, t)
				addEdge(t, NodeID(v))
			}
		}
	}
	return buildFrom(n, edges, seed+1)
}

// WattsStrogatz returns a small-world graph: the n-node ring lattice where
// each node links to its k/2 nearest neighbors on each side, with every
// chord of offset >= 2 rewired to a uniform random non-neighbor with
// probability beta. The offset-1 ring is never rewired, so the graph stays
// connected — a deliberate deviation from the textbook model that keeps
// every protocol's connectivity assumption intact.
func WattsStrogatz(n, k int, beta float64, seed int64) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("graph: watts-strogatz needs even k >= 2, got %d", k)
	}
	if n < k+2 {
		return nil, fmt.Errorf("graph: watts-strogatz needs n >= k+2, got n=%d k=%d", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: watts-strogatz needs beta in [0,1], got %g", beta)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]NodeID]bool, n*k/2)
	var edges []Edge
	has := func(u, v NodeID) bool { return u == v || seen[normPair(u, v)] }
	add := func(u, v NodeID) {
		seen[normPair(u, v)] = true
		edges = append(edges, Edge{U: u, V: v})
	}
	// Ring lattice: node v links to v+1 .. v+k/2 (mod n).
	for off := 1; off <= k/2; off++ {
		for v := 0; v < n; v++ {
			add(NodeID(v), NodeID((v+off)%n))
		}
	}
	// Rewire chords (offset >= 2 only, so i starts past the ring's n
	// edges): replace {v, v+off} by {v, w} in place, keeping m constant.
	for i := n; i < len(edges); i++ {
		if rng.Float64() >= beta {
			continue
		}
		u := edges[i].U
		w := NodeID(rng.Intn(n))
		for tries := 0; has(u, w) && tries < 4*n; tries++ {
			w = NodeID(rng.Intn(n))
		}
		if has(u, w) {
			continue // saturated neighborhood; keep the lattice chord
		}
		delete(seen, normPair(edges[i].U, edges[i].V))
		seen[normPair(u, w)] = true
		edges[i] = Edge{U: u, V: w}
	}
	return buildFrom(n, edges, seed+1)
}
