package graph

import "testing"

func TestBFSPath(t *testing.T) {
	g, err := Path(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBFS(g, 0)
	for v := 0; v < 5; v++ {
		if b.Dist[v] != v {
			t.Errorf("Dist[%d] = %d, want %d", v, b.Dist[v], v)
		}
	}
	if b.Parent[0] != -1 {
		t.Errorf("root parent = %d, want -1", b.Parent[0])
	}
	for v := 1; v < 5; v++ {
		if b.Parent[v] != NodeID(v-1) {
			t.Errorf("Parent[%d] = %d, want %d", v, b.Parent[v], v-1)
		}
	}
	if b.Eccentricity() != 4 || b.Reached() != 5 {
		t.Errorf("ecc=%d reached=%d", b.Eccentricity(), b.Reached())
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := mustBuild(t, NewBuilder(3).AddEdge(0, 1, 1))
	b := NewBFS(g, 0)
	if b.Dist[2] != -1 || b.Parent[2] != -1 {
		t.Errorf("unreachable node: dist=%d parent=%d", b.Dist[2], b.Parent[2])
	}
	if b.Reached() != 2 {
		t.Errorf("Reached = %d, want 2", b.Reached())
	}
}

func TestBFSOrderIsByLevel(t *testing.T) {
	g, err := Grid(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBFS(g, 0)
	for i := 1; i < len(b.Order); i++ {
		if b.Dist[b.Order[i-1]] > b.Dist[b.Order[i]] {
			t.Fatal("BFS order not monotone in level")
		}
	}
}

func TestDiameterLowerBound(t *testing.T) {
	for _, mk := range []func() (*Graph, error){
		func() (*Graph, error) { return Path(17, 1) },
		func() (*Graph, error) { return BinaryTree(31, 1) },
		func() (*Graph, error) { return Ring(20, 1) },
		func() (*Graph, error) { return Grid(5, 7, 1) },
		func() (*Graph, error) { return RandomConnected(40, 30, 5) },
	} {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		exact, lb := Diameter(g), DiameterLowerBound(g)
		if lb > exact {
			t.Errorf("lower bound %d exceeds exact diameter %d", lb, exact)
		}
		if g.M() == g.N()-1 && lb != exact {
			t.Errorf("double sweep must be exact on trees: lb=%d exact=%d", lb, exact)
		}
	}
}
