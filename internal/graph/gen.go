package graph

import (
	"fmt"
	"math/rand"
)

// Generators for the topologies the experiments run on. Every generator
// assigns pairwise-distinct edge weights: a seeded random permutation of
// 1..m, matching the paper's w.l.o.g. distinct-weight assumption while
// keeping weights independent of the topology's construction order.

// assignWeights overwrites edge weights with a seeded permutation of 1..m.
func assignWeights(edges []Edge, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(edges))
	for i := range edges {
		edges[i].Weight = Weight(perm[i] + 1)
	}
}

func buildFrom(n int, edges []Edge, seed int64) (*Graph, error) {
	assignWeights(edges, seed)
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.Weight)
	}
	return b.Build()
}

// Ring returns the n-cycle. Its diameter is ⌊n/2⌋, making it the worst case
// for the pure point-to-point baseline in the paper's headline comparison.
func Ring(n int, seed int64) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs n >= 3, got %d", n)
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{U: NodeID(i), V: NodeID((i + 1) % n)})
	}
	return buildFrom(n, edges, seed)
}

// Path returns the n-node path 0-1-…-(n-1); diameter n-1.
func Path(n int, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: path needs n >= 2, got %d", n)
	}
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{U: NodeID(i), V: NodeID(i + 1)})
	}
	return buildFrom(n, edges, seed)
}

// Grid returns the rows×cols mesh; node (r,c) has id r*cols+c.
func Grid(rows, cols int, seed int64) (*Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("graph: grid needs at least 2 nodes, got %dx%d", rows, cols)
	}
	var edges []Edge
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return buildFrom(rows*cols, edges, seed)
}

// Torus returns the rows×cols grid with wraparound links.
func Torus(rows, cols int, seed int64) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs rows, cols >= 3, got %dx%d", rows, cols)
	}
	var edges []Edge
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges, Edge{U: id(r, c), V: id(r, (c+1)%cols)})
			edges = append(edges, Edge{U: id(r, c), V: id((r+1)%rows, c)})
		}
	}
	return buildFrom(rows*cols, edges, seed)
}

// MaxCompleteEdges caps Complete: K_n is materialized — edge list plus two
// adjacency halves per edge, roughly 72 bytes each — so n(n-1)/2 edges past
// ~2^25 (≈ 8200 nodes, ≈ 2.4 GiB) turn a typo like `complete:1000000` into
// an OOM kill instead of an error. Kept far above every experiment size.
const MaxCompleteEdges = 1 << 25

// Complete returns the complete graph K_n, for n(n-1)/2 <= MaxCompleteEdges.
func Complete(n int, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: complete needs n >= 2, got %d", n)
	}
	// The n > 2^16 pre-check keeps n*(n-1) far from int overflow.
	if m := n * (n - 1) / 2; n > 1<<16 || m > MaxCompleteEdges {
		return nil, fmt.Errorf("graph: complete on %d nodes needs %d edges, above the %d cap (see MaxCompleteEdges)",
			n, m, MaxCompleteEdges)
	}
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: NodeID(i), V: NodeID(j)})
		}
	}
	return buildFrom(n, edges, seed)
}

// Star returns the star with center 0 and n-1 leaves; diameter 2.
func Star(n int, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: star needs n >= 2, got %d", n)
	}
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: 0, V: NodeID(i)})
	}
	return buildFrom(n, edges, seed)
}

// BinaryTree returns the complete-ish binary tree on n nodes where node i has
// parent (i-1)/2.
func BinaryTree(n int, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: binary tree needs n >= 2, got %d", n)
	}
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: NodeID((i - 1) / 2), V: NodeID(i)})
	}
	return buildFrom(n, edges, seed)
}

// RandomConnected returns a connected graph on n nodes with exactly
// n-1+extra edges: a random attachment spanning tree plus extra distinct
// random chords. extra is clamped to the number of available non-edges.
func RandomConnected(n, extra int, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: random connected needs n >= 2, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]NodeID]bool, n-1+extra)
	var edges []Edge
	add := func(u, v NodeID) bool {
		key := normPair(u, v)
		if u == v || seen[key] {
			return false
		}
		seen[key] = true
		edges = append(edges, Edge{U: u, V: v})
		return true
	}
	// Random spanning tree: attach each node (in random label order) to a
	// uniformly random already-attached node.
	order := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := NodeID(order[i])
		v := NodeID(order[rng.Intn(i)])
		add(u, v)
	}
	maxExtra := n*(n-1)/2 - (n - 1)
	if extra > maxExtra {
		extra = maxExtra
	}
	for added := 0; added < extra; {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if add(u, v) {
			added++
		}
	}
	return buildFrom(n, edges, seed+1)
}

// Ray returns the ray graph of the §5.2 lower bound: one distinguished
// center from which `rays` vertex-disjoint paths of length rayLen emanate.
// The center is node 0; n = 1 + rays*rayLen and the diameter is 2*rayLen.
func Ray(rays, rayLen int, seed int64) (*Graph, error) {
	if rays < 1 || rayLen < 1 {
		return nil, fmt.Errorf("graph: ray needs rays, rayLen >= 1, got %d, %d", rays, rayLen)
	}
	if rays == 1 && rayLen == 1 {
		return Path(2, seed)
	}
	n := 1 + rays*rayLen
	var edges []Edge
	for r := 0; r < rays; r++ {
		prev := NodeID(0)
		for k := 0; k < rayLen; k++ {
			v := NodeID(1 + r*rayLen + k)
			edges = append(edges, Edge{U: prev, V: v})
			prev = v
		}
	}
	return buildFrom(n, edges, seed)
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes, nodes
// adjacent iff their ids differ in exactly one bit — the topology of the
// Intel iPSC the paper cites as a commercial point-to-point + multiaccess
// combination. Diameter dim.
func Hypercube(dim int, seed int64) (*Graph, error) {
	if dim < 1 || dim > 20 {
		return nil, fmt.Errorf("graph: hypercube needs 1 <= dim <= 20, got %d", dim)
	}
	n := 1 << dim
	var edges []Edge
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << b)
			if v < u {
				edges = append(edges, Edge{U: NodeID(v), V: NodeID(u)})
			}
		}
	}
	return buildFrom(n, edges, seed)
}
