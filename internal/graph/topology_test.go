package graph

import (
	"testing"
)

// implicitCases enumerates every implicit family at a few sizes.
func implicitCases(t *testing.T) map[string]*Implicit {
	t.Helper()
	cases := map[string]*Implicit{}
	add := func(name string, top *Implicit, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cases[name] = top
	}
	r, err := ImplicitRing(17, 3)
	add("ring17", r, err)
	r, err = ImplicitRing(3, 5)
	add("ring3", r, err)
	p, err := ImplicitPath(2, 1)
	add("path2", p, err)
	p, err = ImplicitPath(23, 9)
	add("path23", p, err)
	g, err := ImplicitGrid(4, 7, 2)
	add("grid4x7", g, err)
	g, err = ImplicitGrid(1, 9, 2)
	add("grid1x9", g, err)
	g, err = ImplicitGrid(6, 1, 4)
	add("grid6x1", g, err)
	tor, err := ImplicitTorus(3, 5, 8)
	add("torus3x5", tor, err)
	h, err := ImplicitHypercube(4, 6)
	add("hypercube4", h, err)
	h, err = ImplicitHypercube(1, 6)
	add("hypercube1", h, err)
	s, err := ImplicitStar(29, 7)
	add("star29", s, err)
	s, err = ImplicitStar(2, 7)
	add("star2", s, err)
	b, err := ImplicitBinaryTree(21, 11)
	add("btree21", b, err)
	b, err = ImplicitBinaryTree(2, 11)
	add("btree2", b, err)
	return cases
}

// TestImplicitInvariants checks every implicit family against the Topology
// contract: a simple connected graph, canonical edge ids that round-trip
// through the incidence queries, distinct positive weights, and adjacency
// sorted by ascending weight with Degree/HalfAt/LinkIndex/AdjAppend all
// consistent with Adj.
func TestImplicitInvariants(t *testing.T) {
	//mmlint:commutative independent subtests; names label, order never asserted
	for name, top := range implicitCases(t) {
		t.Run(name, func(t *testing.T) {
			n, m := top.N(), top.M()
			if !ConnectedTopo(top) {
				t.Fatalf("not connected")
			}
			weights := make(map[Weight]int, m)
			degSum := 0
			seenPair := make(map[[2]NodeID]bool, m)
			for id := 0; id < m; id++ {
				e := top.Edge(id)
				if e.U == e.V || e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
					t.Fatalf("edge %d = {%d,%d} invalid", id, e.U, e.V)
				}
				if e.Weight <= 0 {
					t.Fatalf("edge %d weight %d not positive", id, e.Weight)
				}
				if prev, dup := weights[e.Weight]; dup {
					t.Fatalf("edges %d and %d share weight %d", prev, id, e.Weight)
				}
				weights[e.Weight] = id
				key := normPair(e.U, e.V)
				if seenPair[key] {
					t.Fatalf("pair {%d,%d} appears twice", e.U, e.V)
				}
				seenPair[key] = true
				// Incidence round-trips from both endpoints.
				for _, v := range []NodeID{e.U, e.V} {
					l, ok := top.LinkIndex(v, id)
					if !ok {
						t.Fatalf("LinkIndex(%d, %d) not incident", v, id)
					}
					h := top.HalfAt(v, l)
					if int(h.EdgeID) != id || h.To != e.Other(v) || h.Weight != e.Weight {
						t.Fatalf("HalfAt(%d, %d) = %+v, want edge %d", v, l, h, id)
					}
				}
			}
			for v := NodeID(0); int(v) < n; v++ {
				adj := top.Adj(v)
				if len(adj) != top.Degree(v) {
					t.Fatalf("node %d: len(Adj)=%d Degree=%d", v, len(adj), top.Degree(v))
				}
				degSum += len(adj)
				appended := top.AdjAppend(v, []Half{{To: -1}})
				if len(appended) != len(adj)+1 {
					t.Fatalf("node %d: AdjAppend length %d", v, len(appended))
				}
				for l, h := range adj {
					if l > 0 && adj[l-1].Weight >= h.Weight {
						t.Fatalf("node %d adjacency not weight-sorted at %d", v, l)
					}
					if appended[l+1] != h {
						t.Fatalf("node %d: AdjAppend[%d] = %+v, want %+v", v, l, appended[l+1], h)
					}
					if got := top.HalfAt(v, l); got != h {
						t.Fatalf("node %d: HalfAt(%d) = %+v, want %+v", v, l, got, h)
					}
					if gotL, ok := top.LinkIndex(v, int(h.EdgeID)); !ok || gotL != l {
						t.Fatalf("node %d: LinkIndex(edge %d) = %d,%v, want %d", v, h.EdgeID, gotL, ok, l)
					}
				}
			}
			if degSum != 2*m {
				t.Fatalf("degree sum %d, want 2m = %d", degSum, 2*m)
			}
			if _, ok := top.LinkIndex(0, m); ok {
				t.Fatalf("LinkIndex accepted out-of-range edge id %d", m)
			}
		})
	}
}

// TestMaterializeMatchesImplicit checks the cross-form contract at the
// graph level: Materialize yields identical N, M, edges (ids, endpoints,
// weights), and sorted adjacency — the structural half of transcript
// identity.
func TestMaterializeMatchesImplicit(t *testing.T) {
	//mmlint:commutative independent subtests; names label, order never asserted
	for name, top := range implicitCases(t) {
		t.Run(name, func(t *testing.T) {
			g, err := Materialize(top)
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != top.N() || g.M() != top.M() {
				t.Fatalf("materialized n=%d m=%d, implicit n=%d m=%d", g.N(), g.M(), top.N(), top.M())
			}
			for id := 0; id < g.M(); id++ {
				if g.Edge(id) != top.Edge(id) {
					t.Fatalf("edge %d: materialized %+v, implicit %+v", id, g.Edge(id), top.Edge(id))
				}
			}
			for v := NodeID(0); int(v) < g.N(); v++ {
				ga, ta := g.Adj(v), top.Adj(v)
				if len(ga) != len(ta) {
					t.Fatalf("node %d: adjacency lengths %d vs %d", v, len(ga), len(ta))
				}
				for l := range ga {
					if ga[l] != ta[l] {
						t.Fatalf("node %d link %d: materialized %+v, implicit %+v", v, l, ga[l], ta[l])
					}
				}
			}
		})
	}
}

// TestMaterializeGraphIdentity: a *Graph materializes to itself.
func TestMaterializeGraphIdentity(t *testing.T) {
	g, err := Ring(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("Materialize(*Graph) returned a copy")
	}
}

// TestGraphLinkIndex exercises the stored form's LinkIndex against Adj.
func TestGraphLinkIndex(t *testing.T) {
	g, err := RandomConnected(20, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := NodeID(0); int(v) < g.N(); v++ {
		for l, h := range g.Adj(v) {
			if got, ok := g.LinkIndex(v, int(h.EdgeID)); !ok || got != l {
				t.Fatalf("LinkIndex(%d, %d) = %d,%v, want %d", v, h.EdgeID, got, ok, l)
			}
		}
	}
	if _, ok := g.LinkIndex(0, g.M()); ok {
		t.Fatal("LinkIndex accepted out-of-range edge id")
	}
	// Edge 0 is incident to exactly two nodes; everyone else must miss.
	e := g.Edge(0)
	for v := NodeID(0); int(v) < g.N(); v++ {
		_, ok := g.LinkIndex(v, 0)
		if want := v == e.U || v == e.V; ok != want {
			t.Fatalf("LinkIndex(%d, 0) incident=%v, want %v", v, ok, want)
		}
	}
}

// TestImplicitConstructorErrors checks size validation.
func TestImplicitConstructorErrors(t *testing.T) {
	if _, err := ImplicitRing(2, 1); err == nil {
		t.Error("ring n=2 accepted")
	}
	if _, err := ImplicitPath(1, 1); err == nil {
		t.Error("path n=1 accepted")
	}
	if _, err := ImplicitTorus(2, 3, 1); err == nil {
		t.Error("torus 2x3 accepted")
	}
	if _, err := ImplicitHypercube(31, 1); err == nil {
		t.Error("hypercube dim=31 accepted")
	}
	if _, err := ImplicitHypercube(29, 1); err == nil {
		// 29*2^28 edges are past the implicit 2^31 edge-id cap.
		t.Error("hypercube dim=29 accepted past the edge cap")
	}
	if _, err := ImplicitStar(1, 1); err == nil {
		t.Error("star n=1 accepted")
	}
	if _, err := ImplicitBinaryTree(1, 1); err == nil {
		t.Error("btree n=1 accepted")
	}
}

// TestCompleteCap: the OOM guard rejects oversized complete graphs with a
// clear error and accepts sizes under the cap.
func TestCompleteCap(t *testing.T) {
	if _, err := Complete(1_000_000, 1); err == nil {
		t.Fatal("complete n=10^6 accepted; want cap error")
	}
	if _, err := Complete(64, 1); err != nil {
		t.Fatalf("complete n=64: %v", err)
	}
}

// TestImplicitScaleConstantMemory spot-checks the point of the exercise: a
// 10^7-node implicit ring answers queries without materializing anything.
func TestImplicitScaleConstantMemory(t *testing.T) {
	const n = 10_000_000
	top, err := ImplicitRing(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	if top.N() != n || top.M() != n {
		t.Fatalf("n=%d m=%d", top.N(), top.M())
	}
	if d := top.Degree(n / 2); d != 2 {
		t.Fatalf("degree %d", d)
	}
	e := top.Edge(n - 1) // the wrap edge
	if e.U != n-1 || e.V != 0 {
		t.Fatalf("wrap edge %+v", e)
	}
	adj := top.Adj(12345)
	if len(adj) != 2 || adj[0].Weight >= adj[1].Weight {
		t.Fatalf("adj %+v", adj)
	}
}

// TestScaleFreeGenerators checks BA and WS shape invariants: connected,
// simple, expected edge counts, and (for BA) a hub heavier than the ring
// could ever produce.
func TestScaleFreeGenerators(t *testing.T) {
	g, err := BarabasiAlbert(500, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("BA graph disconnected")
	}
	wantM := 3*2 + (500-4)*3
	if g.M() != wantM {
		t.Fatalf("BA m=%d, want %d", g.M(), wantM)
	}
	maxDeg := 0
	for v := NodeID(0); int(v) < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 20 {
		t.Fatalf("BA max degree %d; expected a heavy-tailed hub", maxDeg)
	}

	for _, beta := range []float64{0, 0.2, 1} {
		ws, err := WattsStrogatz(200, 6, beta, 11)
		if err != nil {
			t.Fatalf("beta=%g: %v", beta, err)
		}
		if !ws.Connected() {
			t.Fatalf("WS beta=%g disconnected", beta)
		}
		if ws.M() != 200*3 {
			t.Fatalf("WS m=%d, want %d", ws.M(), 600)
		}
	}
	if _, err := BarabasiAlbert(3, 3, 1); err == nil {
		t.Error("BA n<attach+2 accepted")
	}
	if _, err := WattsStrogatz(10, 3, 0.1, 1); err == nil {
		t.Error("WS odd k accepted")
	}
}

// TestParseSpec covers the shared grammar: implicit specs, the mat: prefix,
// legacy bare names with defaults, and error cases.
func TestParseSpec(t *testing.T) {
	top, err := ParseSpec("ring:64", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := top.(*Implicit); !ok {
		t.Fatalf("ring:64 built %T, want *Implicit", top)
	}
	if top.N() != 64 {
		t.Fatalf("n=%d", top.N())
	}

	mat, err := ParseSpec("mat:ring:64", 3)
	if err != nil {
		t.Fatal(err)
	}
	mg, ok := mat.(*Graph)
	if !ok {
		t.Fatalf("mat:ring:64 built %T, want *Graph", mat)
	}
	for id := 0; id < top.M(); id++ {
		if mg.Edge(id) != top.Edge(id) {
			t.Fatalf("edge %d differs across forms", id)
		}
	}

	grid, err := ParseSpec("grid:3x9", 1)
	if err != nil {
		t.Fatal(err)
	}
	if grid.N() != 27 {
		t.Fatalf("grid:3x9 n=%d", grid.N())
	}
	if hc, err := ParseSpec("hypercube:5", 1); err != nil || hc.N() != 32 {
		t.Fatalf("hypercube:5 -> %v, %v", hc, err)
	}
	if ws, err := ParseSpec("ws:64,4,0.25", 1); err != nil || ws.N() != 64 {
		t.Fatalf("ws spec: %v", err)
	}
	if ba, err := ParseSpec("ba:64,2", 1); err != nil || ba.N() != 64 {
		t.Fatalf("ba spec: %v", err)
	}

	// Legacy bare names resolve against defaults with generator weights.
	d := SpecDefaults{N: 16, Extra: 8, Rays: 2, RayLen: 3}
	for _, name := range SpecNames() {
		if _, err := ParseSpecWith(name, 1, d); err != nil {
			t.Errorf("bare %q with defaults: %v", name, err)
		}
	}
	legacy, err := ParseSpecWith("ring", 5, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Ring(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	lg := legacy.(*Graph)
	for id := 0; id < want.M(); id++ {
		if lg.Edge(id) != want.Edge(id) {
			t.Fatalf("legacy ring edge %d differs from graph.Ring", id)
		}
	}

	for _, bad := range []string{"nope:4", "ring", "ring:x", "grid:axb", "ws:10,4", "ba:10", ""} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
