package graph

import "testing"

// TestImplicitInt32OverflowGuards pins the NodeID/edge-id caps: node ids and
// edge ids are stored as int32 end to end (adjacency halves, engine state,
// checkpoints), so a spec whose n exceeds MaxNodes or whose edge count
// exceeds the implicit cap must be rejected at construction, not wrap at
// runtime. The constructors are O(1), so probing beyond-cap sizes is free.
func TestImplicitInt32OverflowGuards(t *testing.T) {
	if _, err := ImplicitRing(1<<31+10, 1); err == nil {
		t.Error("ring with n > MaxNodes accepted")
	}
	if _, err := ImplicitPath(MaxNodes+1, 1); err == nil {
		t.Error("path with n = MaxNodes+1 accepted")
	}
	if _, err := ImplicitStar(1<<32, 1); err == nil {
		t.Error("star with n = 2^32 accepted")
	}
	// Hypercube dim 29: n = 2^29 fits, but m = 29·2^28 ≈ 7.8e9 overflows the
	// edge-id space — the m cap must fire even when n is representable.
	if _, err := ImplicitHypercube(29, 1); err == nil {
		t.Error("hypercube with m > implicit edge cap accepted")
	}
	// The spec grammar is the CLI surface; the guard must reach it.
	if _, err := ParseSpec("ring:3000000000", 1); err == nil {
		t.Error("spec ring:3000000000 accepted")
	}

	// At-cap sizes stay constructible (the guard is >, not >=).
	if _, err := ImplicitRing(MaxNodes, 1); err != nil {
		t.Errorf("ring at MaxNodes rejected: %v", err)
	}
}
