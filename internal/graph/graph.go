// Package graph provides the weighted undirected graph substrate used by all
// multimedia-network algorithms: construction, generators for the topologies
// the paper evaluates on (rings, grids, random connected graphs, ray graphs),
// breadth-first search, diameter computation, and a reference Kruskal MST.
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a node; nodes are numbered 0..n-1 as in the paper's
// model, where ids are unique and representable in O(log n) bits. The id is
// 32-bit so id-indexed engine state stays compact at 10⁸ nodes and beyond;
// MaxNodes caps every constructor accordingly.
type NodeID int32

// MaxNodes is the largest representable node count: ids (and the edge ids
// stored alongside them) must fit in an int32.
const MaxNodes = 1<<31 - 1

// Weight is an edge weight. The paper assumes distinct weights w.l.o.g.; all
// generators in this package produce distinct weights.
type Weight int64

// Edge is an undirected weighted edge between U and V.
type Edge struct {
	U, V   NodeID
	Weight Weight
}

// Other returns the endpoint of e that is not v.
func (e Edge) Other(v NodeID) NodeID {
	if e.U == v {
		return e.V
	}
	return e.U
}

// Half is one direction of an edge as seen from a node's adjacency list.
// Field order packs the struct to 16 bytes (a third of its original size):
// adjacency storage dominates a materialized graph's footprint.
type Half struct {
	To     NodeID
	EdgeID int32 // index into Graph.Edges()
	Weight Weight
}

// Graph is an immutable simple undirected weighted graph. Adjacency lists
// are sorted by ascending weight, matching the paper's assumption that each
// node scans its "ordered list of links".
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Half
}

// ErrDuplicateEdge is returned when an edge between the same pair is added twice.
var ErrDuplicateEdge = errors.New("graph: duplicate edge")

// ErrSelfLoop is returned when a self-loop is added.
var ErrSelfLoop = errors.New("graph: self-loop")

// ErrNodeRange is returned when an endpoint is outside [0, n).
var ErrNodeRange = errors.New("graph: node out of range")

// ErrDuplicateWeight is returned when two edges share a weight; the paper
// assumes distinct weights so the MST is unique.
var ErrDuplicateWeight = errors.New("graph: duplicate weight")

// Builder incrementally assembles a Graph.
type Builder struct {
	n     int
	edges []Edge
	seen  map[[2]NodeID]bool
	err   error
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, seen: make(map[[2]NodeID]bool)}
}

// AddEdge adds the undirected edge {u, v} with weight w. Errors are sticky
// and reported by Build.
func (b *Builder) AddEdge(u, v NodeID, w Weight) *Builder {
	if b.err != nil {
		return b
	}
	if u == v {
		b.err = fmt.Errorf("%w: node %d", ErrSelfLoop, u)
		return b
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		b.err = fmt.Errorf("%w: edge {%d,%d} with n=%d", ErrNodeRange, u, v, b.n)
		return b
	}
	key := normPair(u, v)
	if b.seen[key] {
		b.err = fmt.Errorf("%w: {%d,%d}", ErrDuplicateEdge, u, v)
		return b
	}
	b.seen[key] = true
	b.edges = append(b.edges, Edge{U: u, V: v, Weight: w})
	return b
}

func normPair(u, v NodeID) [2]NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]NodeID{u, v}
}

// Build validates and returns the graph. Weights must be pairwise distinct.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.n <= 0 {
		return nil, fmt.Errorf("graph: n must be positive, got %d", b.n)
	}
	weights := make(map[Weight]int, len(b.edges))
	for i, e := range b.edges {
		if j, ok := weights[e.Weight]; ok {
			return nil, fmt.Errorf("%w: weight %d on edges %d and %d", ErrDuplicateWeight, e.Weight, j, i)
		}
		weights[e.Weight] = i
	}
	g := &Graph{
		n:     b.n,
		edges: append([]Edge(nil), b.edges...),
		adj:   make([][]Half, b.n),
	}
	for id, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], Half{To: e.V, Weight: e.Weight, EdgeID: int32(id)})
		g.adj[e.V] = append(g.adj[e.V], Half{To: e.U, Weight: e.Weight, EdgeID: int32(id)})
	}
	for v := range g.adj {
		sortHalves(g.adj[v])
	}
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Adj returns the adjacency list of v sorted by ascending weight. The caller
// must not modify it.
func (g *Graph) Adj(v NodeID) []Half { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || int(u) >= g.n || v < 0 || int(v) >= g.n {
		return false
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// Connected reports whether the graph is connected. The paper's network is a
// single connected component.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return false
	}
	bfs := NewBFS(g, 0)
	return bfs.Reached() == g.n
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() Weight {
	var sum Weight
	for _, e := range g.edges {
		sum += e.Weight
	}
	return sum
}
