package globalfunc

// stepsum.go is the native step-machine port of the point-to-point census /
// global-function baseline (the §5.2 lower-bound model): build a BFS tree
// from the distinguished leader, convergecast partials, broadcast the
// result. The machine is a faithful state-machine transcription of
// p2pProgram in baselines.go — same message types, same decisions, same
// round structure — so the two forms produce identical results and metrics
// for any (graph, seed). Being message-driven, every node sleeps whenever
// no message can change its state, which makes the native form run whole
// 10⁶-node networks: the engine's cost is O(n + m) node-steps instead of
// the goroutine engine's O(n · diameter) channel handoffs.

import (
	"encoding/gob"
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/sim"
)

// P2PStepProgram returns the native step-machine form of the point-to-point
// baseline protocol run by PointToPoint. Machines are drawn from one
// contiguous slab sized to the network (individual allocations past its
// capacity serve crash-restart revivals), so a 10⁸-node census costs one
// machine-sized block per node in a single allocation, not 10⁸ separate
// heap objects.
func P2PStepProgram(op Op, in Inputs) sim.StepProgram {
	sh := &p2pShared{op: op}
	return func(c *sim.StepCtx) sim.Machine {
		m := sh.slab.Alloc(c.N())
		*m = p2pMachine{
			c:          c,
			sh:         sh,
			partial:    in(c.ID()),
			parentLink: -1,
		}
		if c.ID() == 0 {
			m.flags = p2pAdopted
		}
		return m
	}
}

// p2pShared is the per-program state every p2pMachine points at: the
// operator (one copy instead of an interface header per node) and the
// machine slab.
type p2pShared struct {
	op   Op
	slab sim.Slab[p2pMachine]
}

// p2pMachine flag bits (the protocol's former bool fields).
const (
	p2pAdopted uint8 = 1 << iota
	p2pExplored
	p2pSentUp
	p2pResultSet
)

// p2pMachine is one node's state in the BFS-tree aggregate: the loop-local
// variables of p2pProgram promoted to fields, stepped once per round. The
// layout is compact (64 bytes) because at census scale the machines are the
// engine's dominant per-node cost: child links are a bitmask over local
// link indices — with a rare overflow list for links ≥ 64, allocated behind
// a pointer only on nodes that need it — and the booleans pack into flags.
type p2pMachine struct {
	c  *sim.StepCtx
	sh *p2pShared

	partial     int64
	result      int64
	childMask   uint64   // child links with local index < 64
	childOver   *[]int32 // child links ≥ 64 (high-degree hubs), ascending
	parentLink  int32
	acksPending int32
	reports     int32
	childCount  int32
	flags       uint8
}

func (m *p2pMachine) addChild(l int) {
	if l < 64 {
		m.childMask |= uint64(1) << l
	} else {
		if m.childOver == nil {
			m.childOver = new([]int32)
		}
		*m.childOver = append(*m.childOver, int32(l))
	}
	m.childCount++
}

// forEachChild visits the child links in ascending link order. The
// goroutine form visits them in ack-arrival order instead; the difference
// is unobservable (each child receives a single message, and inboxes are
// sorted on delivery), so transcripts still match bit for bit.
func (m *p2pMachine) forEachChild(f func(l int)) {
	for mask := m.childMask; mask != 0; mask &= mask - 1 {
		f(bits.TrailingZeros64(mask))
	}
	if m.childOver != nil {
		for _, l := range *m.childOver {
			f(int(l))
		}
	}
}

// explore sends the BFS wavefront on every link except those named by the
// skip set — a bitmask over links < 64 plus a map for a high-degree hub's
// rest, so the common case stays allocation-free.
func (m *p2pMachine) explore(skipMask uint64, skipBig map[int]bool) {
	for l := 0; l < m.c.Degree(); l++ {
		if l < 64 && skipMask&(uint64(1)<<l) != 0 {
			continue
		}
		if l >= 64 && skipBig[l] {
			continue
		}
		m.c.Send(l, p2pExplore{})
		m.acksPending++
	}
	m.flags |= p2pExplored
}

func (m *p2pMachine) forward(v int64) {
	// Open-coded mask walk: forEachChild's closure would be a per-call
	// allocation on the one path every interior node runs.
	for mask := m.childMask; mask != 0; mask &= mask - 1 {
		m.c.Send(bits.TrailingZeros64(mask), p2pResult{V: v})
	}
	if m.childOver != nil {
		for _, l := range *m.childOver {
			m.c.Send(int(l), p2pResult{V: v})
		}
	}
	m.result = v
	m.flags |= p2pResultSet
}

func (m *p2pMachine) Step(in sim.Input) bool {
	if in.Round == 0 {
		// The code p2pProgram runs before its first Tick.
		if m.c.ID() == 0 {
			m.explore(0, nil)
		}
		return m.finishRound()
	}

	// Adoption: among this round's explores pick the least sender. Links
	// that carried an explore this round lead to nodes that are already
	// adopted, so exploring them is pointless and would collide with the
	// mandatory ack on the same link.
	bestLink := -1
	var bestFrom graph.NodeID
	var skipMask uint64
	var skipBig map[int]bool
	for _, msg := range in.Msgs {
		if _, ok := msg.Payload.(p2pExplore); ok {
			l := m.c.LinkOf(msg.EdgeID)
			if l < 64 {
				skipMask |= uint64(1) << l
			} else {
				if skipBig == nil {
					skipBig = make(map[int]bool, 2)
				}
				skipBig[l] = true
			}
			if bestLink == -1 || msg.From < bestFrom {
				bestLink, bestFrom = l, msg.From
			}
		}
	}
	adoptedNow := false
	if bestLink != -1 && m.flags&p2pAdopted == 0 {
		m.flags |= p2pAdopted
		adoptedNow = true
		m.parentLink = int32(bestLink)
		m.explore(skipMask, skipBig)
	}
	parentLinkBusy := false
	for _, msg := range in.Msgs {
		l := m.c.LinkOf(msg.EdgeID)
		switch p := msg.Payload.(type) {
		case p2pExplore:
			m.c.Send(l, p2pAck{Child: adoptedNow && int32(l) == m.parentLink})
			if int32(l) == m.parentLink {
				parentLinkBusy = true
			}
		case p2pAck:
			m.acksPending--
			if p.Child {
				m.addChild(l)
			}
		case p2pValue:
			m.partial = m.sh.op.Combine(m.partial, p.V)
			m.reports++
		case p2pResult:
			m.forward(p.V)
		}
	}
	// Convergecast once the child set is final and all children reported;
	// wait a round if the ack already used the parent link.
	if m.upReady() && !parentLinkBusy {
		m.flags |= p2pSentUp
		if m.c.ID() == 0 {
			m.forward(m.partial)
		} else {
			m.c.Send(int(m.parentLink), p2pValue{V: m.partial})
		}
	}
	return m.finishRound()
}

// upReady reports whether the deferred convergecast send may fire — the one
// state change that can happen in a round with no incoming messages.
func (m *p2pMachine) upReady() bool {
	return m.flags&p2pAdopted != 0 && m.flags&p2pExplored != 0 &&
		m.acksPending == 0 && m.flags&p2pSentUp == 0 &&
		m.reports == m.childCount
}

// finishRound evaluates p2pProgram's loop condition and parks the node
// whenever only a message can change its state.
func (m *p2pMachine) finishRound() bool {
	if m.flags&p2pResultSet != 0 && m.acksPending == 0 {
		return true
	}
	if !m.upReady() {
		m.c.Sleep()
	}
	return false
}

func (m *p2pMachine) Result() any { return m.result }

// p2pState is the checkpointable image of p2pMachine: every round-to-round
// field, exported for gob. The op and StepCtx are reconstruction-time state
// and stay out of the snapshot.
type p2pState struct {
	Partial     int64
	Adopted     bool
	Explored    bool
	SentUp      bool
	ParentLink  int
	AcksPending int
	ChildLinks  []int
	Reports     int
	Result      int64
	ResultSet   bool
}

// SnapshotState implements sim.Snapshotter: the returned state is a deep
// copy, so the machine may keep mutating after capture. The wire struct
// predates the bitmask layout (ChildLinks is a plain []int), keeping old
// checkpoints restorable; the mask round-trips through it in ascending link
// order, which is deterministic across worker counts.
func (m *p2pMachine) SnapshotState() any {
	var children []int
	m.forEachChild(func(l int) { children = append(children, l) })
	return p2pState{
		Partial:     m.partial,
		Adopted:     m.flags&p2pAdopted != 0,
		Explored:    m.flags&p2pExplored != 0,
		SentUp:      m.flags&p2pSentUp != 0,
		ParentLink:  int(m.parentLink),
		AcksPending: int(m.acksPending),
		ChildLinks:  children,
		Reports:     int(m.reports),
		Result:      m.result,
		ResultSet:   m.flags&p2pResultSet != 0,
	}
}

// RestoreState implements sim.Snapshotter.
func (m *p2pMachine) RestoreState(state any) {
	s := state.(p2pState)
	m.partial = s.Partial
	m.flags = 0
	if s.Adopted {
		m.flags |= p2pAdopted
	}
	if s.Explored {
		m.flags |= p2pExplored
	}
	if s.SentUp {
		m.flags |= p2pSentUp
	}
	if s.ResultSet {
		m.flags |= p2pResultSet
	}
	m.parentLink = int32(s.ParentLink)
	m.acksPending = int32(s.AcksPending)
	m.childMask, m.childOver, m.childCount = 0, nil, 0
	for _, l := range s.ChildLinks {
		m.addChild(l)
	}
	m.reports = int32(s.Reports)
	m.result = s.Result
}

func init() {
	// Everything this protocol can put in a checkpoint's `any` fields:
	// machine state and the four wire payloads (in-flight messages live in
	// checkpointed inboxes and delay buffers).
	gob.Register(p2pState{})
	gob.Register(p2pExplore{})
	gob.Register(p2pAck{})
	gob.Register(p2pValue{})
	gob.Register(p2pResult{})
}

// PointToPointStep computes the function on the pure point-to-point network
// with the native step engine — the same protocol, results, and metrics as
// PointToPoint, at million-node scale.
func PointToPointStep(g graph.Topology, seed int64, op Op, in Inputs, opts ...sim.Option) (*Result, error) {
	opts = append([]sim.Option{sim.WithSeed(seed)}, opts...)
	res, err := sim.RunStep(g, P2PStepProgram(op, in), opts...)
	if err != nil {
		return nil, fmt.Errorf("globalfunc: p2p step baseline: %w", err)
	}
	if res.Metrics.Slots() != 0 {
		return nil, fmt.Errorf("globalfunc: p2p step baseline touched the channel")
	}
	val, err := collectValue(res.Results)
	if err != nil {
		return nil, err
	}
	return &Result{Value: val, Trees: 1, Compute: res.Metrics, Total: res.Metrics}, nil
}
