package globalfunc

// stepsum.go is the native step-machine port of the point-to-point census /
// global-function baseline (the §5.2 lower-bound model): build a BFS tree
// from the distinguished leader, convergecast partials, broadcast the
// result. The machine is a faithful state-machine transcription of
// p2pProgram in baselines.go — same message types, same decisions, same
// round structure — so the two forms produce identical results and metrics
// for any (graph, seed). Being message-driven, every node sleeps whenever
// no message can change its state, which makes the native form run whole
// 10⁶-node networks: the engine's cost is O(n + m) node-steps instead of
// the goroutine engine's O(n · diameter) channel handoffs.

import (
	"encoding/gob"
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/sim"
)

// P2PStepProgram returns the native step-machine form of the point-to-point
// baseline protocol run by PointToPoint.
func P2PStepProgram(op Op, in Inputs) sim.StepProgram {
	return func(c *sim.StepCtx) sim.Machine {
		return &p2pMachine{
			c:          c,
			op:         op,
			partial:    in(c.ID()),
			adopted:    c.ID() == 0,
			parentLink: -1,
		}
	}
}

// p2pMachine is one node's state in the BFS-tree aggregate: the loop-local
// variables of p2pProgram promoted to fields, stepped once per round.
type p2pMachine struct {
	c  *sim.StepCtx
	op Op

	partial     int64
	adopted     bool
	explored    bool
	sentUp      bool
	parentLink  int
	acksPending int
	childLinks  []int
	reports     int

	result    int64
	resultSet bool
}

func (m *p2pMachine) explore(skip map[int]bool) {
	for l := 0; l < m.c.Degree(); l++ {
		if !skip[l] {
			m.c.Send(l, p2pExplore{})
			m.acksPending++
		}
	}
	m.explored = true
}

func (m *p2pMachine) forward(v int64) {
	for _, l := range m.childLinks {
		m.c.Send(l, p2pResult{V: v})
	}
	m.result, m.resultSet = v, true
}

func (m *p2pMachine) Step(in sim.Input) bool {
	if in.Round == 0 {
		// The code p2pProgram runs before its first Tick.
		if m.c.ID() == 0 {
			m.explore(nil)
		}
		return m.finishRound()
	}

	// Adoption: among this round's explores pick the least sender. Links
	// that carried an explore this round lead to nodes that are already
	// adopted, so exploring them is pointless and would collide with the
	// mandatory ack on the same link.
	bestLink := -1
	var bestFrom graph.NodeID
	var exploredLinks map[int]bool
	for _, msg := range in.Msgs {
		if _, ok := msg.Payload.(p2pExplore); ok {
			l := m.c.LinkOf(msg.EdgeID)
			if exploredLinks == nil {
				exploredLinks = make(map[int]bool, 2)
			}
			exploredLinks[l] = true
			if bestLink == -1 || msg.From < bestFrom {
				bestLink, bestFrom = l, msg.From
			}
		}
	}
	adoptedNow := false
	if bestLink != -1 && !m.adopted {
		m.adopted, adoptedNow = true, true
		m.parentLink = bestLink
		m.explore(exploredLinks)
	}
	parentLinkBusy := false
	for _, msg := range in.Msgs {
		l := m.c.LinkOf(msg.EdgeID)
		switch p := msg.Payload.(type) {
		case p2pExplore:
			m.c.Send(l, p2pAck{Child: adoptedNow && l == m.parentLink})
			if l == m.parentLink {
				parentLinkBusy = true
			}
		case p2pAck:
			m.acksPending--
			if p.Child {
				m.childLinks = append(m.childLinks, l)
			}
		case p2pValue:
			m.partial = m.op.Combine(m.partial, p.V)
			m.reports++
		case p2pResult:
			m.forward(p.V)
		}
	}
	// Convergecast once the child set is final and all children reported;
	// wait a round if the ack already used the parent link.
	if m.upReady() && !parentLinkBusy {
		m.sentUp = true
		if m.c.ID() == 0 {
			m.forward(m.partial)
		} else {
			m.c.Send(m.parentLink, p2pValue{V: m.partial})
		}
	}
	return m.finishRound()
}

// upReady reports whether the deferred convergecast send may fire — the one
// state change that can happen in a round with no incoming messages.
func (m *p2pMachine) upReady() bool {
	return m.adopted && m.explored && m.acksPending == 0 && !m.sentUp &&
		m.reports == len(m.childLinks)
}

// finishRound evaluates p2pProgram's loop condition and parks the node
// whenever only a message can change its state.
func (m *p2pMachine) finishRound() bool {
	if m.resultSet && m.acksPending == 0 {
		return true
	}
	if !m.upReady() {
		m.c.Sleep()
	}
	return false
}

func (m *p2pMachine) Result() any { return m.result }

// p2pState is the checkpointable image of p2pMachine: every round-to-round
// field, exported for gob. The op and StepCtx are reconstruction-time state
// and stay out of the snapshot.
type p2pState struct {
	Partial     int64
	Adopted     bool
	Explored    bool
	SentUp      bool
	ParentLink  int
	AcksPending int
	ChildLinks  []int
	Reports     int
	Result      int64
	ResultSet   bool
}

// SnapshotState implements sim.Snapshotter: the returned state is a deep
// copy, so the machine may keep mutating after capture.
func (m *p2pMachine) SnapshotState() any {
	return p2pState{
		Partial:     m.partial,
		Adopted:     m.adopted,
		Explored:    m.explored,
		SentUp:      m.sentUp,
		ParentLink:  m.parentLink,
		AcksPending: m.acksPending,
		ChildLinks:  slices.Clone(m.childLinks),
		Reports:     m.reports,
		Result:      m.result,
		ResultSet:   m.resultSet,
	}
}

// RestoreState implements sim.Snapshotter.
func (m *p2pMachine) RestoreState(state any) {
	s := state.(p2pState)
	m.partial = s.Partial
	m.adopted = s.Adopted
	m.explored = s.Explored
	m.sentUp = s.SentUp
	m.parentLink = s.ParentLink
	m.acksPending = s.AcksPending
	m.childLinks = slices.Clone(s.ChildLinks)
	m.reports = s.Reports
	m.result = s.Result
	m.resultSet = s.ResultSet
}

func init() {
	// Everything this protocol can put in a checkpoint's `any` fields:
	// machine state and the four wire payloads (in-flight messages live in
	// checkpointed inboxes and delay buffers).
	gob.Register(p2pState{})
	gob.Register(p2pExplore{})
	gob.Register(p2pAck{})
	gob.Register(p2pValue{})
	gob.Register(p2pResult{})
}

// PointToPointStep computes the function on the pure point-to-point network
// with the native step engine — the same protocol, results, and metrics as
// PointToPoint, at million-node scale.
func PointToPointStep(g graph.Topology, seed int64, op Op, in Inputs, opts ...sim.Option) (*Result, error) {
	opts = append([]sim.Option{sim.WithSeed(seed)}, opts...)
	res, err := sim.RunStep(g, P2PStepProgram(op, in), opts...)
	if err != nil {
		return nil, fmt.Errorf("globalfunc: p2p step baseline: %w", err)
	}
	if res.Metrics.Slots() != 0 {
		return nil, fmt.Errorf("globalfunc: p2p step baseline touched the channel")
	}
	val, err := collectValue(res.Results)
	if err != nil {
		return nil, err
	}
	return &Result{Value: val, Trees: 1, Compute: res.Metrics, Total: res.Metrics}, nil
}
