package globalfunc

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestPointToPointStepMatchesGoroutineForm checks the native BFS-tree
// aggregate against the goroutine program it was ported from: identical
// value, results, and metrics on every topology.
func TestPointToPointStepMatchesGoroutineForm(t *testing.T) {
	in := func(v graph.NodeID) int64 { return (int64(v)*97 + 5) % 1000 }
	for _, tc := range []struct {
		name string
		mk   func() (*graph.Graph, error)
	}{
		{"ring33", func() (*graph.Graph, error) { return graph.Ring(33, 1) }},
		{"grid6x7", func() (*graph.Graph, error) { return graph.Grid(6, 7, 2) }},
		{"random50", func() (*graph.Graph, error) { return graph.RandomConnected(50, 100, 3) }},
		{"star30", func() (*graph.Graph, error) { return graph.Star(30, 4) }},
		{"ray5x4", func() (*graph.Graph, error) { return graph.Ray(5, 4, 5) }},
		{"path2", func() (*graph.Graph, error) { return graph.Path(2, 6) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range []Op{Sum, Min, Xor} {
				gor, err := PointToPoint(g, 1, op, in)
				if err != nil {
					t.Fatalf("%s goroutine: %v", op.Name, err)
				}
				nat, err := PointToPointStep(g, 1, op, in)
				if err != nil {
					t.Fatalf("%s native: %v", op.Name, err)
				}
				if gor.Value != nat.Value {
					t.Errorf("%s: value %d vs %d", op.Name, gor.Value, nat.Value)
				}
				if want := Reference(g, op, in); nat.Value != want {
					t.Errorf("%s: value %d, reference %d", op.Name, nat.Value, want)
				}
				if !reflect.DeepEqual(gor.Total, nat.Total) {
					t.Errorf("%s: metrics %+v vs %+v", op.Name, gor.Total, nat.Total)
				}
			}
		})
	}
}
