// Package globalfunc implements §5: computing global sensitive functions in
// a multimedia network. A global sensitive function is F(x₁,…,xₙ) = x₁●…●xₙ
// for a commutative semigroup (X,●) whose value cannot be determined from
// any n-1 of its inputs (sum, min, max, xor over the integers are the
// canonical examples).
//
// The multimedia algorithm is two-stage: a local stage computes each
// partition tree's partial result in parallel by convergecast on the
// point-to-point network, then a global stage schedules the tree roots on
// the multiaccess channel — deterministically with Capetanakis tree
// splitting (O(√n·log n) time) or randomized with Metcalfe–Boggs contention
// (O(√n) expected time). The two baselines realize the paper's lower-bound
// models: a pure point-to-point network needs Ω(d) time, a pure broadcast
// network Ω(n).
package globalfunc

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/resolve"
	"repro/internal/sim"
)

// Op is a commutative semigroup operation over int64.
type Op struct {
	Name    string
	Combine func(a, b int64) int64
}

// The canonical global sensitive functions of §5.
var (
	Sum = Op{Name: "sum", Combine: func(a, b int64) int64 { return a + b }}
	Min = Op{Name: "min", Combine: func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}}
	Max = Op{Name: "max", Combine: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}}
	Xor = Op{Name: "xor", Combine: func(a, b int64) int64 { return a ^ b }}
)

// Inputs assigns each node its input element.
type Inputs func(v graph.NodeID) int64

// Reference computes the function sequentially (ground truth for tests).
func Reference(g graph.Topology, op Op, in Inputs) int64 {
	acc := in(0)
	for v := 1; v < g.N(); v++ {
		acc = op.Combine(acc, in(graph.NodeID(v)))
	}
	return acc
}

// Variant selects the partitioning algorithm feeding the multimedia
// computation.
type Variant int

// Partition variants.
const (
	// VariantDeterministic uses the §3 partition at the standard √n balance.
	VariantDeterministic Variant = iota + 1
	// VariantBalanced uses the §5.1 improved balance: the deterministic
	// partition is stopped at fragments of size √(n·log n/log* n), making
	// the local and global stages both O(√(n·log n·log* n)).
	VariantBalanced
	// VariantRandomized uses the §4 Las Vegas partition, whose verified
	// core schedule lets the global stage run with an exact contender count.
	VariantRandomized
)

// Stage selects the channel-scheduling protocol of the global stage.
type Stage int

// Global-stage protocols.
const (
	StageCapetanakis   Stage = iota + 1 // deterministic tree splitting
	StageMetcalfeBoggs                  // randomized contention
)

// Result reports a distributed computation's outcome and costs.
type Result struct {
	Value     int64
	Trees     int         // partition trees = channel contenders
	Partition sim.Metrics // stage-1 costs (zero for the baselines)
	Compute   sim.Metrics // local+global stage costs
	Total     sim.Metrics
}

// ErrDisagreement is returned when nodes finish with unequal values — a
// protocol bug by construction, surfaced defensively.
var ErrDisagreement = errors.New("globalfunc: nodes disagree on the result")

// collectValue checks that every node finished with the same int64 result.
func collectValue(results []any) (int64, error) {
	val, ok := results[0].(int64)
	if !ok {
		return 0, fmt.Errorf("globalfunc: node 0 recorded %T, want int64", results[0])
	}
	for v, r := range results {
		if r != val {
			return 0, fmt.Errorf("%w: node %d has %v, node 0 has %v", ErrDisagreement, v, r, val)
		}
	}
	return val, nil
}

// Multimedia computes the function on the multimedia network: partition,
// local convergecast, global channel scheduling.
func Multimedia(g graph.Topology, seed int64, op Op, in Inputs, variant Variant, stage Stage) (*Result, error) {
	n := g.N()
	var (
		f    *forest.Forest
		pm   *sim.Metrics
		info *partition.RandomizedInfo
		err  error
	)
	switch variant {
	case VariantDeterministic:
		f, pm, _, err = partition.Deterministic(g, seed)
	case VariantBalanced:
		f, pm, _, err = partition.DeterministicPhases(g, seed, BalancedPhaseCount(n))
	case VariantRandomized:
		f, pm, info, err = partition.RandomizedLasVegas(g, seed)
	default:
		return nil, fmt.Errorf("globalfunc: unknown variant %d", variant)
	}
	if err != nil {
		return nil, fmt.Errorf("globalfunc: partition: %w", err)
	}

	knownRoots := 0
	if info != nil {
		knownRoots = len(info.RootOrder)
	}
	res, err := sim.Run(g, stageProgram(f, op, in, stage, knownRoots), sim.WithSeed(seed+1))
	if err != nil {
		return nil, fmt.Errorf("globalfunc: compute: %w", err)
	}
	val, err := collectValue(res.Results)
	if err != nil {
		return nil, err
	}
	out := &Result{Value: val, Trees: f.Trees(), Partition: *pm, Compute: res.Metrics}
	out.Total = *pm
	out.Total.Add(&res.Metrics)
	return out, nil
}

// stageProgram runs the local stage (tree convergecast under the §7.1
// barrier) followed by the global stage (channel scheduling of the roots).
func stageProgram(f *forest.Forest, op Op, in Inputs, stage Stage, knownRoots int) sim.Program {
	children := f.Children()
	return func(c *sim.Ctx) error {
		id := c.ID()
		isRoot := f.Parent[id] == -1
		partial := in(id)
		reports := 0
		sentUp := false

		// Local stage: convergecast partials to the cores; the barrier's
		// idle pulse tells every node the stage has globally ended.
		pulse := sim.BarrierStep(c, sim.Input{}, func(step sim.Input) bool {
			for _, m := range step.Msgs {
				partial = op.Combine(partial, m.Payload.(int64))
				reports++
			}
			if !sentUp && reports == len(children[id]) {
				sentUp = true
				if !isRoot {
					c.SendTo(f.Parent[id], partial)
				}
			}
			return false
		})

		// Global stage: roots broadcast partials on the channel.
		var sched []resolve.ScheduledItem
		switch stage {
		case StageCapetanakis:
			sched, _ = resolve.Capetanakis(c, pulse, c.N(), isRoot, int(id), partial)
		case StageMetcalfeBoggs:
			estimate := knownRoots
			if estimate == 0 {
				estimate = partition.SqrtN(c.N())
			}
			sched, _, _ = resolve.MetcalfeBoggs(c, pulse, estimate, isRoot, int(id), partial, 0)
		default:
			return fmt.Errorf("unknown stage %d", stage)
		}
		acc := sched[0].Payload.(int64)
		for _, s := range sched[1:] {
			acc = op.Combine(acc, s.Payload.(int64))
		}
		c.SetResult(acc)
		return nil
	}
}

// BalancedPhaseCount is the §5.1 balance: stop the deterministic partition
// once fragments reach size √(n·log₂n / log*n), so the global stage's
// O(#roots·log n) scheduling matches the local stage's O(radius).
func BalancedPhaseCount(n int) int {
	logStar := 1
	v := float64(n)
	for v > 2 {
		logStar++
		v = math.Log2(v)
		if logStar > 6 {
			break
		}
	}
	size := math.Sqrt(float64(n) * math.Log2(float64(n)) / float64(logStar))
	p := int(math.Ceil(math.Log2(size)))
	if p < 1 {
		p = 1
	}
	return p
}
