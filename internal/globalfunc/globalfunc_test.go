package globalfunc

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func idInputs(v graph.NodeID) int64 { return int64(v) + 1 }

func seededInputs(seed int64) Inputs {
	return func(v graph.NodeID) int64 {
		x := (int64(v)+3)*2654435761 + seed
		return x % 1000
	}
}

func TestReference(t *testing.T) {
	g, err := graph.Ring(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := Reference(g, Sum, idInputs); got != 15 {
		t.Errorf("sum = %d, want 15", got)
	}
	if got := Reference(g, Min, idInputs); got != 1 {
		t.Errorf("min = %d, want 1", got)
	}
	if got := Reference(g, Max, idInputs); got != 5 {
		t.Errorf("max = %d, want 5", got)
	}
	if got := Reference(g, Xor, idInputs); got != 1^2^3^4^5 {
		t.Errorf("xor = %d", got)
	}
}

// TestOpsAreGlobalSensitive probes the paper's defining property: for each
// op and random tuples, perturbing any single input can change the value.
func TestOpsAreGlobalSensitive(t *testing.T) {
	for _, op := range []Op{Sum, Min, Max, Xor} {
		t.Run(op.Name, func(t *testing.T) {
			prop := func(raw []int8, idx uint8, delta int8) bool {
				if len(raw) < 2 {
					return true
				}
				xs := make([]int64, len(raw))
				for i, r := range raw {
					xs[i] = int64(r)
				}
				i := int(idx) % len(xs)
				fold := func(vals []int64) int64 {
					acc := vals[0]
					for _, v := range vals[1:] {
						acc = op.Combine(acc, v)
					}
					return acc
				}
				before := fold(xs)
				// There must EXIST a replacement changing the value; try a
				// few candidates (min/max need extreme values).
				for _, y := range []int64{int64(delta), before + 1, -1 << 40, 1 << 40} {
					old := xs[i]
					xs[i] = y
					after := fold(xs)
					xs[i] = old
					if after != before {
						return true
					}
				}
				return false
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestOpsCommutativeAssociative(t *testing.T) {
	for _, op := range []Op{Sum, Min, Max, Xor} {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			comm := func(a, b int64) bool { return op.Combine(a, b) == op.Combine(b, a) }
			assoc := func(a, b, c int64) bool {
				return op.Combine(op.Combine(a, b), c) == op.Combine(a, op.Combine(b, c))
			}
			if err := quick.Check(comm, nil); err != nil {
				t.Errorf("not commutative: %v", err)
			}
			if err := quick.Check(assoc, nil); err != nil {
				t.Errorf("not associative: %v", err)
			}
		})
	}
}

func testTopologies(t *testing.T, n int) map[string]*graph.Graph {
	t.Helper()
	gs := make(map[string]*graph.Graph)
	var err error
	if gs["ring"], err = graph.Ring(n, 1); err != nil {
		t.Fatal(err)
	}
	if gs["random"], err = graph.RandomConnected(n, n, 2); err != nil {
		t.Fatal(err)
	}
	if gs["grid"], err = graph.Grid(8, n/8, 3); err != nil {
		t.Fatal(err)
	}
	return gs
}

func TestMultimediaAllVariants(t *testing.T) {
	const n = 64
	in := seededInputs(5)
	//mmlint:commutative independent subtests; names label, order never asserted
	for name, g := range testTopologies(t, n) {
		want := Reference(g, Sum, in)
		for _, tc := range []struct {
			name    string
			variant Variant
			stage   Stage
		}{
			{"det+capetanakis", VariantDeterministic, StageCapetanakis},
			{"det+mb", VariantDeterministic, StageMetcalfeBoggs},
			{"balanced+capetanakis", VariantBalanced, StageCapetanakis},
			{"rand+capetanakis", VariantRandomized, StageCapetanakis},
			{"rand+mb", VariantRandomized, StageMetcalfeBoggs},
		} {
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				res, err := Multimedia(g, 3, Sum, in, tc.variant, tc.stage)
				if err != nil {
					t.Fatal(err)
				}
				if res.Value != want {
					t.Errorf("value = %d, want %d", res.Value, want)
				}
				if res.Trees < 1 {
					t.Errorf("trees = %d", res.Trees)
				}
				if res.Total.Rounds != res.Partition.Rounds+res.Compute.Rounds {
					t.Errorf("total rounds %d != %d + %d",
						res.Total.Rounds, res.Partition.Rounds, res.Compute.Rounds)
				}
			})
		}
	}
}

func TestMultimediaAllOps(t *testing.T) {
	g, err := graph.RandomConnected(48, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	in := seededInputs(11)
	for _, op := range []Op{Sum, Min, Max, Xor} {
		t.Run(op.Name, func(t *testing.T) {
			want := Reference(g, op, in)
			res, err := Multimedia(g, 2, op, in, VariantDeterministic, StageCapetanakis)
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != want {
				t.Errorf("%s = %d, want %d", op.Name, res.Value, want)
			}
		})
	}
}

func TestPointToPointBaseline(t *testing.T) {
	//mmlint:commutative independent subtests; names label, order never asserted
	for name, g := range testTopologies(t, 64) {
		t.Run(name, func(t *testing.T) {
			in := seededInputs(13)
			want := Reference(g, Sum, in)
			res, err := PointToPoint(g, 1, Sum, in)
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != want {
				t.Errorf("value = %d, want %d", res.Value, want)
			}
			// Θ(d): rounds within a small factor of the diameter.
			d := graph.Diameter(g)
			if res.Total.Rounds > 5*d+10 {
				t.Errorf("rounds %d exceed 5d+10 = %d", res.Total.Rounds, 5*d+10)
			}
		})
	}
}

func TestPointToPointTiny(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PointToPoint(g, 1, Sum, idInputs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Errorf("value = %d, want 3", res.Value)
	}
}

func TestBroadcastOnlyBaseline(t *testing.T) {
	g, err := graph.Ring(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := seededInputs(17)
	want := Reference(g, Sum, in)
	for _, stage := range []Stage{StageCapetanakis, StageMetcalfeBoggs} {
		res, err := BroadcastOnly(g, 5, Sum, in, stage)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Errorf("stage %d: value = %d, want %d", stage, res.Value, want)
		}
		// Ω(n): at least one slot per node.
		if res.Total.Rounds < g.N() {
			t.Errorf("stage %d: rounds %d < n = %d", stage, res.Total.Rounds, g.N())
		}
	}
}

// TestHeadlineOrdering is the paper's main claim in miniature: on a ring
// (d = n/2 ≥ √n) the multimedia algorithm beats both single-medium
// baselines in time once n is large enough. With our constants (≈60√n for
// the randomized partition vs 3d for the p2p baseline) the time crossover
// falls near n = 2048 on rings; the deterministic variant crosses later.
func TestHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	const n = 2048
	g, err := graph.Ring(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := seededInputs(19)
	mm, err := Multimedia(g, 1, Sum, in, VariantRandomized, StageMetcalfeBoggs)
	if err != nil {
		t.Fatal(err)
	}
	p2p, err := PointToPoint(g, 1, Sum, in)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := BroadcastOnly(g, 1, Sum, in, StageCapetanakis)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Total.Rounds >= p2p.Total.Rounds {
		t.Errorf("multimedia %d rounds not faster than p2p %d", mm.Total.Rounds, p2p.Total.Rounds)
	}
	if mm.Total.Rounds >= bc.Total.Rounds {
		t.Errorf("multimedia %d rounds not faster than broadcast %d", mm.Total.Rounds, bc.Total.Rounds)
	}
}

func TestBalancedPhaseCount(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		std := 0
		for 1<<std < n {
			std++
		}
		bp := BalancedPhaseCount(n)
		if bp < std/2 {
			t.Errorf("n=%d: balanced phases %d below standard √n point %d", n, bp, std/2)
		}
		if bp > std {
			t.Errorf("n=%d: balanced phases %d exceed log2 n", n, bp)
		}
	}
}
