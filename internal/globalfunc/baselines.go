package globalfunc

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/resolve"
	"repro/internal/sim"
)

// The two baselines realize the paper's lower-bound models (§5.2): a pure
// point-to-point network, where computing a global sensitive function needs
// Ω(d) time, and a pure broadcast network, where it needs Ω(n) time. The
// multimedia algorithm beating both on graphs with d ≥ √n is the paper's
// headline result.

// Point-to-point baseline payloads.
type (
	p2pExplore struct{}             // BFS wave from the leader
	p2pAck     struct{ Child bool } // reply: did this explore adopt you?
	p2pValue   struct{ V int64 }    // convergecast partial
	p2pResult  struct{ V int64 }    // final value broadcast down the tree
)

// PointToPoint computes the function using only the point-to-point network:
// build a BFS tree from the distinguished leader (node 0, as in the paper's
// remark on the known-leader case), convergecast partials, broadcast the
// result. Θ(d) time, O(m + n) messages; the channel is never used.
func PointToPoint(g graph.Topology, seed int64, op Op, in Inputs, opts ...sim.Option) (*Result, error) {
	opts = append([]sim.Option{sim.WithSeed(seed)}, opts...)
	res, err := sim.Run(g, p2pProgram(op, in), opts...)
	if err != nil {
		return nil, fmt.Errorf("globalfunc: p2p baseline: %w", err)
	}
	if res.Metrics.Slots() != 0 {
		return nil, fmt.Errorf("globalfunc: p2p baseline touched the channel")
	}
	val, err := collectValue(res.Results)
	if err != nil {
		return nil, err
	}
	return &Result{Value: val, Trees: 1, Compute: res.Metrics, Total: res.Metrics}, nil
}

func p2pProgram(op Op, in Inputs) sim.Program {
	return func(c *sim.Ctx) error {
		id := c.ID()
		deg := c.Degree()
		adopted := id == 0
		parentLink := -1
		acksPending := 0 // explores we sent and still await replies for
		childLinks := make([]int, 0, deg)
		reports := 0
		partial := in(id)
		sentUp := false
		explored := false

		explore := func(skip map[int]bool) {
			for l := 0; l < deg; l++ {
				if !skip[l] {
					c.Send(l, p2pExplore{})
					acksPending++
				}
			}
			explored = true
		}
		if id == 0 {
			explore(nil)
		}

		var resultVal *int64
		forward := func(v int64) {
			for _, l := range childLinks {
				c.Send(l, p2pResult{V: v})
			}
			resultVal = &v
		}

		for resultVal == nil || acksPending > 0 {
			inp := c.Tick()
			// Adoption: among this round's explores pick the least sender.
			// Links that carried an explore this round lead to nodes that
			// are already adopted, so exploring them is pointless and would
			// collide with the mandatory ack on the same link.
			bestLink := -1
			var bestFrom graph.NodeID
			var exploredLinks map[int]bool
			for _, m := range inp.Msgs {
				if _, ok := m.Payload.(p2pExplore); ok {
					l := c.LinkOf(m.EdgeID)
					if exploredLinks == nil {
						exploredLinks = make(map[int]bool, 2)
					}
					exploredLinks[l] = true
					if bestLink == -1 || m.From < bestFrom {
						bestLink, bestFrom = l, m.From
					}
				}
			}
			adoptedNow := false
			if bestLink != -1 && !adopted {
				adopted = true
				adoptedNow = true
				parentLink = bestLink
				explore(exploredLinks)
			}
			parentLinkBusy := false
			for _, m := range inp.Msgs {
				l := c.LinkOf(m.EdgeID)
				switch p := m.Payload.(type) {
				case p2pExplore:
					c.Send(l, p2pAck{Child: adoptedNow && l == parentLink})
					if l == parentLink {
						parentLinkBusy = true
					}
				case p2pAck:
					acksPending--
					if p.Child {
						childLinks = append(childLinks, l)
					}
				case p2pValue:
					partial = op.Combine(partial, p.V)
					reports++
				case p2pResult:
					forward(p.V)
				}
			}
			// Convergecast once the child set is final and all children
			// reported; wait a round if the ack already used the parent link.
			if adopted && explored && acksPending == 0 && !sentUp &&
				reports == len(childLinks) && !parentLinkBusy {
				sentUp = true
				if id == 0 {
					forward(partial)
				} else {
					c.Send(parentLink, p2pValue{V: partial})
				}
			}
		}
		c.SetResult(*resultVal)
		return nil
	}
}

// BroadcastOnly computes the function using only the multiaccess channel:
// every node is a contender and broadcasts its own input; all nodes combine
// everything heard. Deterministic scheduling uses Capetanakis over the full
// id space (Θ(n) slots); randomized uses Metcalfe–Boggs (Θ(n) expected).
// The point-to-point network is never used.
func BroadcastOnly(g graph.Topology, seed int64, op Op, in Inputs, stage Stage) (*Result, error) {
	prog := func(c *sim.Ctx) error {
		id := c.ID()
		var sched []resolve.ScheduledItem
		switch stage {
		case StageCapetanakis:
			sched, _ = resolve.Capetanakis(c, sim.Input{}, c.N(), true, int(id), in(id))
		case StageMetcalfeBoggs:
			sched, _, _ = resolve.MetcalfeBoggs(c, sim.Input{}, c.N(), true, int(id), in(id), 0)
		default:
			return fmt.Errorf("unknown stage %d", stage)
		}
		if len(sched) != c.N() {
			return fmt.Errorf("node %d heard %d of %d inputs", id, len(sched), c.N())
		}
		acc := sched[0].Payload.(int64)
		for _, s := range sched[1:] {
			acc = op.Combine(acc, s.Payload.(int64))
		}
		c.SetResult(acc)
		return nil
	}
	res, err := sim.Run(g, prog, sim.WithSeed(seed))
	if err != nil {
		return nil, fmt.Errorf("globalfunc: broadcast baseline: %w", err)
	}
	if res.Metrics.Messages != 0 {
		return nil, fmt.Errorf("globalfunc: broadcast baseline sent point-to-point messages")
	}
	val, err := collectValue(res.Results)
	if err != nil {
		return nil, err
	}
	return &Result{Value: val, Trees: g.N(), Compute: res.Metrics, Total: res.Metrics}, nil
}
