package obs

// registry.go is the metrics half of the package: hand-rolled counters,
// gauges, and histograms on sync/atomic (the repo takes no dependencies
// beyond the standard library), collected in a Registry that renders the
// Prometheus text exposition format — the exact surface a future mmserve
// mounts and the -metrics-addr listeners of mmnet/mmbench serve today.
//
// All instruments are safe for concurrent use: engine workers observe
// histograms from their own goroutines while an HTTP scrape reads them.

import (
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of exponential histogram buckets: bucket i
// holds observations in [2^(i-1), 2^i) with an upper bound of 2^i, so 48
// buckets cover sub-nanosecond through multi-day spans.
const histBuckets = 48

// Histogram accumulates int64 observations (the package uses nanoseconds)
// into power-of-two buckets, with an exact count, sum, and max.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketFor maps an observation to its bucket index.
func bucketFor(v int64) int {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v)) // v in [2^(b-1), 2^b)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper bound of the bucket containing the q-th observation, capped at
// the exact max. Power-of-two buckets make it accurate to a factor of two —
// plenty to tell a 100µs barrier wait from a 10ms one.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			bound := int64(1) << uint(i)
			if m := h.max.Load(); bound > m {
				bound = m
			}
			return bound
		}
	}
	return h.max.Load()
}

// Summary is one histogram's digest, used for bench rows and run footers.
type Summary struct {
	Count int64
	Sum   int64
	P50   int64
	P95   int64
	Max   int64
}

// Summarize digests the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(), Sum: h.Sum(),
		P50: h.Quantile(0.50), P95: h.Quantile(0.95), Max: h.Max(),
	}
}

// kind tags a registered metric for the TYPE line.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// metric is one registered series: a family name, optional rendered labels
// (`{phase="step"}`), and exactly one live instrument.
type metric struct {
	name   string
	help   string
	kind   kind
	labels string // rendered label set including braces, or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is an ordered collection of metrics rendering the Prometheus
// text format. Registration order is exposition order (families group their
// labeled series by first registration), which keeps /metrics diffable.
type Registry struct {
	mu    sync.Mutex
	items []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Labels renders a label set for registration, e.g. Labels("phase", "step")
// -> `{phase="step"}`. Pairs must alternate name, value.
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	s := "{"
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			s += ","
		}
		s += pairs[i] + `="` + pairs[i+1] + `"`
	}
	return s + "}"
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, kind: kindCounter, labels: labels, c: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, kind: kindGauge, labels: labels, g: g})
	return g
}

// Histogram registers and returns a histogram series.
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	h := &Histogram{}
	r.add(&metric{name: name, help: help, kind: kindHistogram, labels: labels, h: h})
	return h
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items = append(r.items, m)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). HELP/TYPE headers are emitted once per
// family, before its first series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	items := make([]*metric, len(r.items))
	copy(items, r.items)
	r.mu.Unlock()

	seen := make(map[string]bool, len(items))
	for _, m := range items {
		if !seen[m.name] {
			seen[m.name] = true
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.g.Value())
		case kindHistogram:
			err = writeHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets with
// power-of-two le bounds (buckets that would repeat the previous cumulative
// count are skipped to keep the exposition short), then +Inf, sum, count.
func writeHistogram(w io.Writer, m *metric) error {
	labels := m.labels
	// Splice `le` into an existing label set: {a="b"} -> {a="b",le="..."}.
	open, close_ := "{", "}"
	if labels != "" {
		open, close_ = labels[:len(labels)-1]+",", "}"
	}
	var cum, prev int64
	for i := 0; i < histBuckets; i++ {
		n := m.h.buckets[i].Load()
		cum += n
		if n == 0 && cum == prev {
			continue
		}
		prev = cum
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"%d\"%s %d\n", m.name, open, int64(1)<<uint(i), close_, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", m.name, open, close_, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.name, labels, m.h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, labels, m.h.Count())
	return err
}
