package obs

// series.go is the per-round time-series collector: one NDJSON row per
// round (or per decimation window) carrying the round's metric deltas,
// awake-node count, and per-shard phase durations. The invariant the tests
// pin down: summing any delta column over a run's rows reproduces the final
// sim.Metrics total exactly, at every decimation factor — windows aggregate
// deltas rather than sampling them, and RunEnd flushes the partial tail.

import (
	"bufio"
	"encoding/json"
	"io"

	"repro/internal/sim"
)

// SeriesHeader is the first NDJSON line of a series stream: the run
// configuration every row joins against. Commands fill it from their
// resolved flags; field order here is the emission order (encoding/json
// preserves struct order), which makes the header golden-able.
type SeriesHeader struct {
	Series  string `json:"series"`  // always "mm-series"
	Version int    `json:"version"` // format version, bumped on row changes
	Algo    string `json:"algo,omitempty"`
	Graph   string `json:"graph,omitempty"`
	N       int    `json:"n,omitempty"`
	Seed    int64  `json:"seed"`
	Engine  string `json:"engine"`
	Workers int    `json:"workers"`
	Every   int    `json:"every"`
	Faults  string `json:"faults,omitempty"`
}

// SeriesFormatVersion is the current row-format version. Version 2 added
// the partitioned_drop/restarted/skewed delta columns.
const SeriesFormatVersion = 2

// seriesRow is one emitted window. run counts RunStarts (multi-stage
// algorithms emit several runs into one stream); round is the last round
// the window covers; rounds is how many executed-or-skipped rounds the
// window aggregates (> every after a fast-forward). The metric fields are
// window deltas of the like-named sim.Metrics counters.
type seriesRow struct {
	Run            int     `json:"run"`
	Round          int     `json:"round"`
	Rounds         int     `json:"rounds"`
	Awake          int     `json:"awake"`
	Slot           string  `json:"slot"` // last round's slot resolution
	Messages       int64   `json:"messages"`
	SlotsIdle      int64   `json:"slots_idle"`
	SlotsSuccess   int64   `json:"slots_success"`
	SlotsCollision int64   `json:"slots_collision"`
	SlotsJammed    int64   `json:"slots_jammed"`
	DroppedHalted  int64   `json:"dropped_halted"`
	Crashed        int64   `json:"crashed"`
	DroppedFault   int64   `json:"dropped_fault"`
	Delayed        int64   `json:"delayed"`
	Duplicated     int64   `json:"duplicated"`
	Partitioned    int64   `json:"partitioned_drop"`
	Restarted      int64   `json:"restarted"`
	Skewed         int64   `json:"skewed"`
	StepNs         []int64 `json:"step_ns"`    // per shard, this window
	DeliverNs      []int64 `json:"deliver_ns"` // per shard, this window
	BarrierNs      []int64 `json:"barrier_ns"` // per shard, this window
}

// collector accumulates rounds into windows and streams rows. All methods
// are coordinator-side (RoundEnd/RunStart/RunEnd ordering); the per-shard
// duration arrays are filled by endPhase under the engine's gate ordering
// and harvested here.
type collector struct {
	bw    *bufio.Writer
	enc   *json.Encoder
	every int
	err   error // first write error; subsequent rows are dropped

	run        int
	prev       sim.Metrics // cumulative snapshot at last emitted row
	pendRounds int         // rounds accumulated in the open window
	lastAwake  int
	lastSlot   sim.SlotState
	lastRound  int
	shards     int
	// Open-window per-shard phase sums, harvested from Obs.phaseNs.
	winNs [int(sim.NumPhases)][]int64
}

func newCollector(w io.Writer, every int) *collector {
	if every < 1 {
		every = 1
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	return &collector{bw: bw, enc: json.NewEncoder(bw), every: every}
}

// writeHeader emits the header line. Called once by the owning Obs before
// the first run.
func (c *collector) writeHeader(h SeriesHeader) {
	h.Series = "mm-series"
	h.Version = SeriesFormatVersion
	h.Every = c.every
	if c.err == nil {
		c.err = c.enc.Encode(h)
	}
}

// runStart opens a new run's accounting. Any window left open by an aborted
// previous flush was already emitted by runEnd.
func (c *collector) runStart(shards int) {
	c.run++
	c.prev = sim.Metrics{}
	c.pendRounds = 0
	c.lastRound = 0
	c.shards = shards
	for p := range c.winNs {
		if cap(c.winNs[p]) < shards {
			c.winNs[p] = make([]int64, shards)
		}
		c.winNs[p] = c.winNs[p][:shards]
		for i := range c.winNs[p] {
			c.winNs[p][i] = 0
		}
	}
}

// roundEnd accrues one executed round (which may cover a fast-forwarded
// stretch) and emits a row when the window is full. phaseNs holds the
// round's per-shard phase durations, already harvested and reset by the
// caller.
func (c *collector) roundEnd(round, awake int, slot sim.SlotState, m *sim.Metrics, phaseNs *[int(sim.NumPhases)][]int64) {
	for p := range c.winNs {
		win := c.winNs[p]
		for i, ns := range phaseNs[p] {
			if i < len(win) {
				win[i] += ns
			}
		}
	}
	c.pendRounds = m.Rounds - c.prev.Rounds
	c.lastAwake = awake
	c.lastSlot = slot
	c.lastRound = round
	if c.pendRounds >= c.every {
		c.flush(m)
	}
}

// flush emits the open window as one row and resets it.
func (c *collector) flush(m *sim.Metrics) {
	delta := *m
	delta.Sub(&c.prev)
	row := seriesRow{
		Run:            c.run,
		Round:          c.lastRound,
		Rounds:         delta.Rounds,
		Awake:          c.lastAwake,
		Slot:           c.lastSlot.String(),
		Messages:       delta.Messages,
		SlotsIdle:      delta.SlotsIdle,
		SlotsSuccess:   delta.SlotsSuccess,
		SlotsCollision: delta.SlotsCollision,
		SlotsJammed:    delta.SlotsJammed,
		DroppedHalted:  delta.DroppedHalted,
		Crashed:        delta.Crashed,
		DroppedFault:   delta.DroppedFault,
		Delayed:        delta.Delayed,
		Duplicated:     delta.Duplicated,
		Partitioned:    delta.PartitionedDrop,
		Restarted:      delta.Restarted,
		Skewed:         delta.Skewed,
		StepNs:         c.winNs[sim.PhaseStep],
		DeliverNs:      c.winNs[sim.PhaseDeliver],
		BarrierNs:      c.winNs[sim.PhaseBarrier],
	}
	if c.err == nil {
		c.err = c.enc.Encode(row)
	}
	c.prev = *m
	c.pendRounds = 0
	for p := range c.winNs {
		for i := range c.winNs[p] {
			c.winNs[p][i] = 0
		}
	}
}

// runEnd flushes the partial tail window, if any round (or any counter
// movement — an aborted round can move fault counters without completing)
// is pending.
func (c *collector) runEnd(m *sim.Metrics) {
	if c.pendRounds > 0 || c.prev != *m {
		c.flush(m)
	}
}

// Flush drains buffered rows to the underlying writer and reports the first
// write error, if any.
func (c *collector) Flush() error {
	if err := c.bw.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}
