package obs

// The package's two contracts, tested from outside the engines:
//
//   - Exactness: summing any delta column of the NDJSON series over a run
//     reproduces the final sim.Metrics total bit-for-bit, on both engines,
//     at workers 1 and 4, at every decimation factor — even under a fault
//     plan that exercises every counter (crash, drop, delay, dup, jam).
//   - Transparency: a run observed by an Obs produces exactly the results
//     and metrics of the same run unobserved.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sim"
)

// relayProgram is a 64-node-ring workload touching every metric: each node
// relays to its successor every round, a rotating pair contends for the
// channel (success when they coincide, collision otherwise), and the fault
// plan below crashes node 3, jams a window, and drops/delays/duplicates
// probabilistically.
func relayProgram(rounds int) sim.Program {
	return func(c *sim.Ctx) error {
		n := c.N()
		next := graph.NodeID((int(c.ID()) + 1) % n)
		sum := 0
		for r := 1; r <= rounds; r++ {
			c.SendTo(next, r)
			if int(c.ID()) == r%n || int(c.ID()) == (3*r)%n {
				c.Broadcast(r)
			}
			in := c.Tick()
			for _, m := range in.Msgs {
				sum += m.Payload.(int)
			}
			if in.Slot.State == sim.SlotSuccess {
				sum += 1000
			}
		}
		c.SetResult(sum)
		return nil
	}
}

const testPlan = "seed:5;crash:3@8;jam:2-20/p0.4;delay:*@3-30/p0.25/d2;dup:*@5-25/p0.2/d3;drop:*@6-18/p0.1"

var engineConfigs = []struct {
	name string
	opts []sim.Option
}{
	{"goroutine", []sim.Option{sim.WithEngine(sim.EngineGoroutine)}},
	{"step-w1", []sim.Option{sim.WithEngine(sim.EngineStep), sim.WithWorkers(1)}},
	{"step-w4", []sim.Option{sim.WithEngine(sim.EngineStep), sim.WithWorkers(4)}},
}

func testGraphAndPlan(t *testing.T) (*graph.Graph, *fault.Plan) {
	t.Helper()
	g, err := graph.Ring(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse(testPlan)
	if err != nil {
		t.Fatal(err)
	}
	return g, plan
}

// metricsAsMap flattens the final metrics through their JSON form, dropping
// the derived totals that are not per-round deltas.
func metricsAsMap(t *testing.T, m sim.Metrics) map[string]int64 {
	t.Helper()
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]int64
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	delete(fields, "slots")
	delete(fields, "communication")
	return fields
}

// TestSeriesSumsMatchMetricsUnderFaults is the exactness contract: per-row
// deltas sum to the final totals for every metric, engine, worker count,
// and decimation factor, under a plan exercising every fault counter.
func TestSeriesSumsMatchMetricsUnderFaults(t *testing.T) {
	g, plan := testGraphAndPlan(t)
	prog := relayProgram(40)

	// Unobserved baseline: the transparency reference.
	base, err := sim.Run(g, prog, sim.WithSeed(7), sim.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	// The plan must actually exercise every counter or the test is vacuous.
	//mmlint:commutative independent per-counter vacuity checks
	for name, v := range map[string]int64{
		"Crashed": base.Metrics.Crashed, "DroppedFault": base.Metrics.DroppedFault,
		"Delayed": base.Metrics.Delayed, "Duplicated": base.Metrics.Duplicated,
		"SlotsJammed": base.Metrics.SlotsJammed, "DroppedHalted": base.Metrics.DroppedHalted,
		"SlotsCollision": base.Metrics.SlotsCollision, "SlotsSuccess": base.Metrics.SlotsSuccess,
	} {
		if v == 0 {
			t.Fatalf("fault plan left %s at zero; broaden the plan", name)
		}
	}

	for _, ec := range engineConfigs {
		for _, every := range []int{1, 7, 1000} {
			t.Run(fmt.Sprintf("%s/every=%d", ec.name, every), func(t *testing.T) {
				var buf bytes.Buffer
				o := New(Options{Series: &buf, SeriesEvery: every, Trace: true, PprofLabels: true})
				opts := append([]sim.Option{sim.WithSeed(7), sim.WithFaults(plan), sim.WithRecorder(o)}, ec.opts...)
				res, err := sim.Run(g, prog, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if err := o.Close(); err != nil {
					t.Fatal(err)
				}

				// Transparency: observed == unobserved, bit for bit.
				if res.Metrics != base.Metrics {
					t.Errorf("metrics changed under observation:\n base: %+v\n got:  %+v", base.Metrics, res.Metrics)
				}
				if !reflect.DeepEqual(res.Results, base.Results) {
					t.Errorf("results changed under observation")
				}

				// Exactness: sum every delta column, compare to the totals.
				want := metricsAsMap(t, res.Metrics)
				got := make(map[string]int64, len(want))
				rows := 0
				sc := bufio.NewScanner(&buf)
				for sc.Scan() {
					var row map[string]any
					if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
						t.Fatalf("line %d: %v", rows, err)
					}
					if rows == 0 {
						if row["series"] != "mm-series" {
							t.Fatalf("first line is not the header: %s", sc.Text())
						}
						rows++
						continue
					}
					//mmlint:commutative summing independent columns
					for key := range want {
						v, ok := row[key].(float64)
						if !ok {
							t.Fatalf("row %d: field %q missing or non-numeric (%T)", rows, key, row[key])
						}
						got[key] += int64(v)
					}
					rows++
				}
				if err := sc.Err(); err != nil {
					t.Fatal(err)
				}
				if rows < 2 {
					t.Fatalf("series emitted %d lines, want header + >=1 row", rows)
				}
				if every == 1 && rows-1 != res.Metrics.Rounds {
					t.Errorf("every=1 emitted %d rows, want one per round = %d", rows-1, res.Metrics.Rounds)
				}
				//mmlint:commutative independent per-column comparisons
				for key, w := range want {
					if got[key] != w {
						t.Errorf("sum(%s) = %d over %d rows, want %d", key, got[key], rows-1, w)
					}
				}
			})
		}
	}
}

// TestSeriesHeader pins the header line: first line of the stream, stable
// field order, caller-provided configuration round-tripped.
func TestSeriesHeader(t *testing.T) {
	var buf bytes.Buffer
	o := New(Options{
		Series:      &buf,
		SeriesEvery: 3,
		Header: SeriesHeader{
			Algo: "census", Graph: "ring:64", N: 64, Seed: 7,
			Engine: "step", Workers: 4, Faults: testPlan,
		},
	})
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(&buf).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	want := `{"series":"mm-series","version":2,"algo":"census","graph":"ring:64","n":64,"seed":7,"engine":"step","workers":4,"every":3,"faults":"` + testPlan + `"}` + "\n"
	if line != want {
		t.Errorf("header line:\n got:  %s want: %s", line, want)
	}
}

// chromeTrace is the subset of the trace_event JSON object form the tests
// (and CI's structural validation) check.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// validateChromeTrace structurally checks a rendered trace: parseable JSON,
// the object form Perfetto loads, thread metadata, and phase spans with
// sane fields. Returns the count of duration spans per phase name.
func validateChromeTrace(t *testing.T, r io.Reader, wantShards int) map[string]int {
	t.Helper()
	var tr chromeTrace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", tr.DisplayTimeUnit)
	}
	phases := map[string]int{}
	threads := map[int]bool{}
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("event %d: metadata %q", i, ev.Name)
			}
			threads[ev.Tid] = true
		case "X":
			phases[ev.Name]++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %d: negative ts/dur", i)
			}
			if _, ok := ev.Args["round"]; !ok {
				t.Errorf("event %d: span without round arg", i)
			}
			if ev.Name != "step" && ev.Name != "deliver" && ev.Name != "barrier" {
				t.Errorf("event %d: unknown span name %q", i, ev.Name)
			}
		case "i":
		default:
			t.Errorf("event %d: unexpected ph %q", i, ev.Ph)
		}
	}
	if len(threads) < wantShards {
		t.Errorf("trace names %d shard lanes, want >= %d", len(threads), wantShards)
	}
	return phases
}

// TestTraceChromeJSON runs the step engine at 4 workers with tracing on and
// validates the rendered trace.
func TestTraceChromeJSON(t *testing.T) {
	g, plan := testGraphAndPlan(t)
	o := New(Options{Trace: true})
	_, err := sim.Run(g, relayProgram(40),
		sim.WithSeed(7), sim.WithFaults(plan), sim.WithRecorder(o),
		sim.WithEngine(sim.EngineStep), sim.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	phases := validateChromeTrace(t, &buf, 4)
	for _, want := range []string{"step", "deliver", "barrier"} {
		if phases[want] == 0 {
			t.Errorf("no %q spans in trace (got %v)", want, phases)
		}
	}
}

// TestTraceRingOverflow checks the ring keeps the newest spans and reports
// the drop.
func TestTraceRingOverflow(t *testing.T) {
	tr := newTracer(4)
	tr.runStart(1)
	for i := 0; i < 10; i++ {
		tr.record(sim.PhaseStep, 0, i, int64(i*100), 50)
	}
	spans := tr.rings[0].ordered()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := int32(6 + i); s.round != want {
			t.Errorf("span %d round = %d, want %d (oldest-first, newest kept)", i, s.round, want)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ring dropped 6 oldest spans") {
		t.Errorf("trace does not report the drop:\n%s", buf.String())
	}
}

// TestMetricsHTTP drives a run with -metrics-addr semantics: Serve on :0,
// observe a faulted run, scrape /metrics, and check the exposition carries
// the round, message, slot, and fault counters with the run's exact values.
func TestMetricsHTTP(t *testing.T) {
	g, plan := testGraphAndPlan(t)
	o := New(Options{})
	srv, err := Serve("127.0.0.1:0", o.Registry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := sim.Run(g, relayProgram(40),
		sim.WithSeed(7), sim.WithFaults(plan), sim.WithRecorder(o))
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	m := res.Metrics
	//mmlint:commutative independent exposition-line presence checks
	for line, want := range map[string]int64{
		"mm_runs_total":                      1,
		"mm_rounds_total":                    int64(m.Rounds),
		"mm_messages_total":                  m.Messages,
		`mm_slots_total{state="idle"}`:       m.SlotsIdle,
		`mm_slots_total{state="success"}`:    m.SlotsSuccess,
		`mm_slots_total{state="collision"}`:  m.SlotsCollision,
		`mm_slots_total{state="jammed"}`:     m.SlotsJammed,
		`mm_faults_total{kind="crashed"}`:    m.Crashed,
		`mm_faults_total{kind="dropped"}`:    m.DroppedFault,
		`mm_faults_total{kind="delayed"}`:    m.Delayed,
		`mm_faults_total{kind="duplicated"}`: m.Duplicated,
		"mm_dropped_halted_total":            m.DroppedHalted,
	} {
		if !strings.Contains(text, fmt.Sprintf("%s %d\n", line, want)) {
			t.Errorf("exposition missing %q = %d:\n%s", line, want, grepFor(text, strings.SplitN(line, "{", 2)[0]))
		}
	}
	for _, family := range []string{"# TYPE mm_rounds_total counter", "# TYPE mm_awake_nodes gauge", "# TYPE mm_phase_duration_ns histogram"} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing %q", family)
		}
	}
}

func grepFor(text, needle string) string {
	var b strings.Builder
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, needle) {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestHistogram checks the power-of-two bucketing math.
func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d", h.Count())
	}
	if want := int64(1 + 2 + 3 + 100 + 1000 + 1<<20); h.Sum() != want {
		t.Errorf("Sum = %d, want %d", h.Sum(), want)
	}
	if h.Max() != 1<<20 {
		t.Errorf("Max = %d", h.Max())
	}
	// p50: the 3rd observation (3) lives in bucket le=4.
	if q := h.Quantile(0.5); q != 4 {
		t.Errorf("p50 = %d, want 4", q)
	}
	// p100 is capped at the exact max, not the bucket bound.
	if q := h.Quantile(1); q != 1<<20 {
		t.Errorf("p100 = %d, want %d", q, int64(1<<20))
	}
	s := h.Summarize()
	if s.Count != 6 || s.Max != 1<<20 || s.P50 != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

// TestRegistryExpositionFormat checks HELP/TYPE dedup and histogram
// rendering (cumulative buckets, +Inf, sum, count, le spliced into labels).
func TestRegistryExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "a counter.", Labels("k", "a")).Add(3)
	reg.Counter("x_total", "a counter.", Labels("k", "b")).Add(4)
	h := reg.Histogram("d_ns", "durations.", Labels("phase", "step"))
	h.Observe(3)
	h.Observe(5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Count(text, "# HELP x_total") != 1 {
		t.Errorf("HELP not deduplicated:\n%s", text)
	}
	for _, want := range []string{
		`x_total{k="a"} 3`,
		`x_total{k="b"} 4`,
		`d_ns_bucket{phase="step",le="4"} 1`,
		`d_ns_bucket{phase="step",le="8"} 2`,
		`d_ns_bucket{phase="step",le="+Inf"} 2`,
		`d_ns_sum{phase="step"} 8`,
		`d_ns_count{phase="step"} 2`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestExampleTraceFixture validates the committed example trace — the one
// the README points Perfetto users at — with the same structural checks CI
// runs. Regenerate with -update-trace-fixture.
func TestExampleTraceFixture(t *testing.T) {
	data := exampleTraceBytes(t)
	phases := validateChromeTrace(t, bytes.NewReader(data), 2)
	for _, want := range []string{"step", "deliver", "barrier"} {
		if phases[want] == 0 {
			t.Errorf("fixture has no %q spans", want)
		}
	}
}
