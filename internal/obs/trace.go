package obs

// trace.go is the phase tracer: preallocated per-shard span rings filled at
// the engines' phase boundaries and rendered as Chrome trace_event JSON —
// the format about:tracing and https://ui.perfetto.dev load directly. Each
// shard is one "thread" in the viewer, so a step-engine run reads as a
// swimlane per shard with step/deliver/barrier spans and fast-forward
// instants, which is exactly the picture the multicore campaign needs to
// see barrier wait versus shard work.
//
// Concurrency: each shard's ring has exactly one writer at a time — the
// goroutine running that shard's slice of the current phase — and writes
// are ordered against the coordinator by the engine's phase gate, so rings
// need no locks. Rendering happens after Run returns, when all writers have
// quiesced.

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/sim"
)

// span is one recorded phase execution on one shard. start is nanoseconds
// since the tracer's base instant; dur is the span length in nanoseconds.
type span struct {
	start int64
	dur   int64
	round int32
	phase sim.Phase
}

// instant is a zero-duration marker event (fast-forward skips).
type instant struct {
	at       int64
	from, to int32
}

// shardRing is a fixed-capacity ring of spans: when full, the oldest spans
// are overwritten, so a long run keeps its most recent window — the part a
// wedged or slow run's investigator wants.
type shardRing struct {
	spans   []span
	next    int   // next write slot
	written int64 // total spans ever written (written - len = dropped)
}

func (r *shardRing) add(s span) {
	if len(r.spans) == 0 {
		return
	}
	r.spans[r.next] = s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
	}
	r.written++
}

// ordered returns the ring's spans oldest-first.
func (r *shardRing) ordered() []span {
	n := int64(len(r.spans))
	if r.written < n {
		return r.spans[:r.written]
	}
	out := make([]span, 0, n)
	out = append(out, r.spans[r.next:]...)
	out = append(out, r.spans[:r.next]...)
	return out
}

// DefaultTraceCap is the per-shard span-ring capacity when Options.TraceCap
// is zero: 32768 spans ≈ 10⁴ rounds of step+deliver+barrier per shard,
// ~0.75 MiB per shard.
const DefaultTraceCap = 1 << 15

// tracer owns the per-shard rings and the fast-forward instants.
type tracer struct {
	cap      int
	rings    []shardRing // indexed by shard
	instants []instant   // coordinator-only
	runs     int         // RunStart count, for run-boundary instants
}

func newTracer(capacity int) *tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &tracer{cap: capacity}
}

// runStart (re)sizes the shard rings. Rings persist across the runs of a
// multi-stage algorithm so the whole composite execution lands in one trace.
func (t *tracer) runStart(shards int) {
	for len(t.rings) < shards {
		t.rings = append(t.rings, shardRing{spans: make([]span, t.cap)})
	}
	t.runs++
}

// record appends a completed span to its shard's ring. Caller guarantees
// shard < len(rings) (the engine never reports a shard it didn't announce).
func (t *tracer) record(p sim.Phase, shard, round int, start, dur int64) {
	t.rings[shard].add(span{start: start, dur: dur, round: int32(round), phase: p})
}

func (t *tracer) fastForward(at int64, from, to int) {
	t.instants = append(t.instants, instant{at: at, from: int32(from), to: int32(to)})
}

// WriteChromeTrace renders the recorded spans as Chrome trace_event JSON
// (JSON-object form, displayTimeUnit ns). Timestamps are microseconds per
// the format; sub-microsecond precision survives as fractions. pid is 1;
// tid is the shard index, with thread_name metadata naming each lane.
func (t *tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}
	for shard := range t.rings {
		comma()
		fmt.Fprintf(bw, `{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"shard %d"}}`, shard, shard)
	}
	for shard := range t.rings {
		dropped := t.rings[shard].written - int64(len(t.rings[shard].ordered()))
		if dropped > 0 {
			comma()
			fmt.Fprintf(bw, `{"ph":"i","s":"t","pid":1,"tid":%d,"ts":0,"name":"ring dropped %d oldest spans"}`, shard, dropped)
		}
		for _, s := range t.rings[shard].ordered() {
			comma()
			fmt.Fprintf(bw,
				`{"ph":"X","pid":1,"tid":%d,"name":%q,"cat":"engine","ts":%s,"dur":%s,"args":{"round":%d}}`,
				shard, s.phase.String(), usec(s.start), usec(s.dur), s.round)
		}
	}
	for _, in := range t.instants {
		comma()
		fmt.Fprintf(bw,
			`{"ph":"i","s":"g","pid":1,"tid":0,"ts":%s,"name":"fast-forward","cat":"engine","args":{"from_round":%d,"to_round":%d}}`,
			usec(in.at), in.from, in.to)
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// usec formats nanoseconds as a decimal microsecond value with fractional
// digits (trace_event ts/dur are in microseconds).
func usec(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}
