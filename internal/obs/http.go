package obs

// http.go is the opt-in exposition listener behind mmnet/mmbench's
// -metrics-addr flag: /metrics serves the registry in Prometheus text
// format and /debug/pprof serves the standard profiling endpoints (whose
// CPU profiles break down by engine phase when pprof labels are on). This
// is the exact surface the ROADMAP's mmserve will mount.

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Server is a running exposition listener.
type Server struct {
	// Addr is the bound listen address (resolves ":0" to the real port).
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP listener on addr exposing reg at /metrics and the
// pprof handlers at /debug/pprof/. It returns once the listener is bound
// (so ":0" callers can read the resolved Addr) and serves in a background
// goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
