package obs

// The committed example trace (testdata/example_trace.json) exists so the
// README can say "load this in Perfetto" and CI can prove the claim
// structurally without a browser. Span timings are wall-clock, so the
// fixture is not byte-deterministic; regenerate with
//
//	go test ./internal/obs -run TestExampleTraceFixture -update-trace-fixture
//
// whenever the trace format changes.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

var updateTraceFixture = flag.Bool("update-trace-fixture", false, "regenerate testdata/example_trace.json")

// exampleTraceBytes returns the fixture, regenerating it first when
// -update-trace-fixture is set: a 64-node ring relay under the standard
// fault plan on the step engine at 2 workers — small enough to commit,
// busy enough to show all three phase lanes and the fault window.
func exampleTraceBytes(t *testing.T) []byte {
	t.Helper()
	path := filepath.Join("testdata", "example_trace.json")
	if *updateTraceFixture {
		g, plan := testGraphAndPlan(t)
		o := New(Options{Trace: true})
		if _, err := sim.Run(g, relayProgram(40),
			sim.WithSeed(7), sim.WithFaults(plan), sim.WithRecorder(o),
			sim.WithEngine(sim.EngineStep), sim.WithWorkers(2)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := o.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-trace-fixture)", err)
	}
	return data
}
