// Package obs is the observability layer for the simulation engines: a
// phase tracer (Chrome trace_event JSON + pprof labels), a per-round
// time-series collector (NDJSON), and a metrics registry with Prometheus
// text exposition — all hand-rolled on the standard library.
//
// The package sits behind the sim.Recorder seam and honours its two
// contracts: observation never alters transcripts (recorders are write-only
// observers; difftest runs bit-identical with any Obs installed), and the
// off switch is a nil Recorder, which costs the engines one branch per hook
// site and zero allocations.
//
// obs is deliberately OUTSIDE mmlint's detsource scope (see
// internal/analysis/detsource.go): it is wall-clock-timed by nature, and
// nothing it measures can flow back into a transcript. Every time.Now call
// site below carries a //mmlint:nondet annotation documenting that the
// nondeterminism is confined to observability output.
package obs

import (
	"context"
	"io"
	"runtime/pprof"
	"time"

	"repro/internal/sim"
)

// Options configures an Obs. The zero value enables only the metrics
// registry; tracing, series, and pprof labels are opt-in.
type Options struct {
	// Trace enables the phase tracer (per-shard span rings, rendered by
	// WriteTrace).
	Trace bool
	// TraceCap overrides the per-shard span-ring capacity
	// (DefaultTraceCap when zero).
	TraceCap int
	// Series, when non-nil, streams one NDJSON row per round (or per
	// SeriesEvery-round window) to the writer. Close flushes it.
	Series io.Writer
	// SeriesEvery is the decimation factor: emit one aggregated row per
	// this many rounds (1 when zero or less). Sums over rows equal final
	// Metrics totals at every factor.
	SeriesEvery int
	// Header is written as the series stream's first line; the caller
	// fills the run-configuration fields (Series/Version/Every are set
	// here).
	Header SeriesHeader
	// PprofLabels tags each goroutine with its current engine phase via
	// runtime/pprof labels, so CPU profiles break down by phase.
	PprofLabels bool
	// Registry, when non-nil, receives this Obs's instruments; otherwise a
	// fresh registry is created (exposed by Registry()).
	Registry *Registry
}

// Obs implements sim.Recorder, fanning engine events out to the tracer,
// collector, and registry. One Obs observes any number of sequential runs
// (multi-stage algorithms issue one RunStart per internal run); it must not
// be shared by concurrent runs.
type Obs struct {
	reg *Registry
	tr  *tracer    // nil when tracing off
	col *collector // nil when series off

	base     time.Time // monotonic origin for all span timestamps
	labels   bool
	baseCtx  context.Context
	labelCtx [int(sim.NumPhases)]context.Context

	// Per-round, per-shard phase-duration accumulators: written by
	// EndPhase (single writer per shard, ordered by the engine's phase
	// gate), harvested and reset by RoundEnd (coordinator side).
	phaseNs [int(sim.NumPhases)][]int64

	// Registry instruments. prevReg snapshots the current run's cumulative
	// metrics at the last RoundEnd so counters advance by deltas and stay
	// monotone across runs.
	prevReg     sim.Metrics
	runs        *Counter
	rounds      *Counter
	messages    *Counter
	slots       [4]*Counter // idle, success, collision, jammed
	faults      [7]*Counter // crashed, dropped, delayed, duplicated, partitioned, restarted, skewed
	droppedHalt *Counter
	ffRounds    *Counter
	awake       *Gauge
	phaseHist   [int(sim.NumPhases)]*Histogram
}

// New builds an Obs from opts. If opts.Series is set the header line is
// written immediately.
func New(opts Options) *Obs {
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	o := &Obs{
		reg: reg,
		// //mmlint:nondet — wall-clock origin for observability timestamps
		// only; never feeds back into engine execution.
		base:   time.Now(),
		labels: opts.PprofLabels,
	}
	if opts.Trace {
		o.tr = newTracer(opts.TraceCap)
	}
	if opts.Series != nil {
		o.col = newCollector(opts.Series, opts.SeriesEvery)
		o.col.writeHeader(opts.Header)
	}
	if o.labels {
		o.baseCtx = context.Background()
		for p := sim.Phase(0); p < sim.NumPhases; p++ {
			o.labelCtx[p] = pprof.WithLabels(o.baseCtx, pprof.Labels("phase", p.String()))
		}
	}

	o.runs = reg.Counter("mm_runs_total", "Simulation runs observed (multi-stage algorithms count each internal run).", "")
	o.rounds = reg.Counter("mm_rounds_total", "Rounds executed, including fast-forwarded rounds.", "")
	o.messages = reg.Counter("mm_messages_total", "Point-to-point messages delivered.", "")
	for i, state := range [...]string{"idle", "success", "collision", "jammed"} {
		o.slots[i] = reg.Counter("mm_slots_total", "Channel slot outcomes by state.", Labels("state", state))
	}
	for i, kind := range [...]string{"crashed", "dropped", "delayed", "duplicated", "partitioned", "restarted", "skewed"} {
		o.faults[i] = reg.Counter("mm_faults_total", "Fault injections by kind.", Labels("kind", kind))
	}
	o.droppedHalt = reg.Counter("mm_dropped_halted_total", "Messages addressed to already-halted nodes.", "")
	o.ffRounds = reg.Counter("mm_fastforward_rounds_total", "Rounds resolved arithmetically by the quiescent fast-forward.", "")
	o.awake = reg.Gauge("mm_awake_nodes", "Nodes awake at the end of the last observed round.", "")
	for p := sim.Phase(0); p < sim.NumPhases; p++ {
		o.phaseHist[p] = reg.Histogram("mm_phase_duration_ns", "Engine phase durations in nanoseconds, per shard-phase execution.", Labels("phase", p.String()))
	}
	return o
}

// Registry returns the registry holding this Obs's instruments, for HTTP
// exposition or additional caller-registered metrics.
func (o *Obs) Registry() *Registry { return o.reg }

// now returns nanoseconds since the Obs's base instant.
//
// //mmlint:nondet — the one clock read on the hot path; its value exists
// only in observability output (spans, histograms, series), never in
// transcripts.
func (o *Obs) now() int64 { return time.Since(o.base).Nanoseconds() }

// RunStart implements sim.Recorder.
func (o *Obs) RunStart(n int, engine sim.Engine, workers, shards int) {
	o.runs.Inc()
	o.prevReg = sim.Metrics{}
	for p := range o.phaseNs {
		if cap(o.phaseNs[p]) < shards {
			o.phaseNs[p] = make([]int64, shards)
		}
		o.phaseNs[p] = o.phaseNs[p][:shards]
		for i := range o.phaseNs[p] {
			o.phaseNs[p][i] = 0
		}
	}
	if o.tr != nil {
		o.tr.runStart(shards)
	}
	if o.col != nil {
		o.col.runStart(shards)
	}
}

// BeginPhase implements sim.Recorder. It only reads the clock and labels
// its own goroutine — no shared state is written, so a worker's barrier
// BeginPhase may overlap the coordinator's RoundEnd harvest.
func (o *Obs) BeginPhase(p sim.Phase, shard int) int64 {
	if o.labels {
		pprof.SetGoroutineLabels(o.labelCtx[p])
	}
	return o.now()
}

// EndPhase implements sim.Recorder.
func (o *Obs) EndPhase(p sim.Phase, shard, round int, start int64) {
	dur := o.now() - start
	o.phaseHist[p].Observe(dur)
	if ns := o.phaseNs[p]; shard < len(ns) {
		ns[shard] += dur
	}
	if o.tr != nil {
		o.tr.record(p, shard, round, start, dur)
	}
	if o.labels {
		pprof.SetGoroutineLabels(o.baseCtx)
	}
}

// FastForward implements sim.Recorder.
func (o *Obs) FastForward(fromRound, toRound int) {
	o.ffRounds.Add(int64(toRound - fromRound + 1))
	if o.tr != nil {
		o.tr.fastForward(o.now(), fromRound, toRound)
	}
}

// RoundEnd implements sim.Recorder.
func (o *Obs) RoundEnd(round, awake int, slot sim.SlotState, m *sim.Metrics) {
	delta := *m
	delta.Sub(&o.prevReg)
	o.prevReg = *m
	o.rounds.Add(int64(delta.Rounds))
	o.messages.Add(delta.Messages)
	o.slots[0].Add(delta.SlotsIdle)
	o.slots[1].Add(delta.SlotsSuccess)
	o.slots[2].Add(delta.SlotsCollision)
	o.slots[3].Add(delta.SlotsJammed)
	o.faults[0].Add(delta.Crashed)
	o.faults[1].Add(delta.DroppedFault)
	o.faults[2].Add(delta.Delayed)
	o.faults[3].Add(delta.Duplicated)
	o.faults[4].Add(delta.PartitionedDrop)
	o.faults[5].Add(delta.Restarted)
	o.faults[6].Add(delta.Skewed)
	o.droppedHalt.Add(delta.DroppedHalted)
	o.awake.Set(int64(awake))
	if o.col != nil {
		o.col.roundEnd(round, awake, slot, m, &o.phaseNs)
	}
	for p := range o.phaseNs {
		for i := range o.phaseNs[p] {
			o.phaseNs[p][i] = 0
		}
	}
}

// RunEnd implements sim.Recorder. It settles registry counters for rounds
// that never reached a RoundEnd (an abort can move counters mid-round) and
// flushes the collector's tail window.
func (o *Obs) RunEnd(m *sim.Metrics) {
	if o.prevReg != *m {
		tail := *m
		tail.Sub(&o.prevReg)
		o.rounds.Add(int64(tail.Rounds))
		o.messages.Add(tail.Messages)
		o.slots[0].Add(tail.SlotsIdle)
		o.slots[1].Add(tail.SlotsSuccess)
		o.slots[2].Add(tail.SlotsCollision)
		o.slots[3].Add(tail.SlotsJammed)
		o.faults[0].Add(tail.Crashed)
		o.faults[1].Add(tail.DroppedFault)
		o.faults[2].Add(tail.Delayed)
		o.faults[3].Add(tail.Duplicated)
		o.faults[4].Add(tail.PartitionedDrop)
		o.faults[5].Add(tail.Restarted)
		o.faults[6].Add(tail.Skewed)
		o.droppedHalt.Add(tail.DroppedHalted)
		o.prevReg = *m
	}
	if o.col != nil {
		o.col.runEnd(m)
	}
}

// PhaseSummary digests one phase's duration histogram (count, sum, p50,
// p95, max in nanoseconds) — the per-phase breakdown mmbench reports.
func (o *Obs) PhaseSummary(p sim.Phase) Summary {
	return o.phaseHist[p].Summarize()
}

// WriteTrace renders the recorded spans as Chrome trace_event JSON. Call
// after the observed runs finish. Returns nil output error (and writes an
// empty trace) when tracing was not enabled.
func (o *Obs) WriteTrace(w io.Writer) error {
	tr := o.tr
	if tr == nil {
		tr = newTracer(1)
	}
	return tr.WriteChromeTrace(w)
}

// Close flushes the series stream (if any) and reports its first write
// error. The Obs must not observe further runs after Close.
func (o *Obs) Close() error {
	if o.col != nil {
		return o.col.Flush()
	}
	return nil
}

// Obs must satisfy the engines' seam.
var _ sim.Recorder = (*Obs)(nil)
