package resolve

// run.go wires the election into a whole-network run on either engine —
// the protocol behind `mmnet -algo elect`.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// electMachine runs the deterministic election with every node contending.
type electMachine struct {
	c      *sim.StepCtx
	e      *ElectionStep
	leader any
}

func (m *electMachine) Step(in sim.Input) bool {
	if in.Round == 0 {
		m.e.Begin()
		return false
	}
	if !m.e.Poll(in) {
		return false
	}
	if !m.e.OK {
		m.c.Failf("no contenders")
	}
	m.leader = m.e.Leader
	return true
}

func (m *electMachine) Result() any { return m.leader }

// Elect runs the §2 deterministic election over the whole network, every
// node contending with its own id; the winner is the maximum id, known to
// every node. The run executes on sim.DefaultEngine: the goroutine engine
// drives the blocking Election, the step engine the native ElectionStep
// machine; both produce bit-identical transcripts.
func Elect(g graph.Topology, seed int64) (leader int, met sim.Metrics, err error) {
	var res *sim.Result
	if sim.DefaultEngine == sim.EngineStep {
		res, err = sim.RunStep(g, func(c *sim.StepCtx) sim.Machine {
			return &electMachine{c: c, e: NewElectionStep(c, c.N(), true, int(c.ID()))}
		}, sim.WithSeed(seed))
	} else {
		res, err = sim.Run(g, func(c *sim.Ctx) error {
			l, ok, _ := Election(c, sim.Input{}, c.N(), true, int(c.ID()))
			if !ok {
				return fmt.Errorf("no contenders")
			}
			c.SetResult(l)
			return nil
		}, sim.WithSeed(seed))
	}
	if err != nil {
		return 0, sim.Metrics{}, err
	}
	// Crash-stopped nodes record nothing; the survivors must agree.
	found := false
	for v, r := range res.Results {
		l, ok := r.(int)
		if !ok {
			continue
		}
		if !found {
			leader, found = l, true
		} else if l != leader {
			return 0, sim.Metrics{}, fmt.Errorf("resolve: node %d elected %v, others %v", v, l, leader)
		}
	}
	if !found {
		return 0, sim.Metrics{}, fmt.Errorf("resolve: no surviving node elected a leader")
	}
	return leader, res.Metrics, nil
}
