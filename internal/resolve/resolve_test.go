package resolve

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// runProtocol executes one resolution protocol on a ring of n nodes with the
// given contender set and returns per-node results plus metrics.
func runProtocol(t *testing.T, n int, seed int64, prog sim.Program) *sim.Result {
	t.Helper()
	g, err := graph.Ring(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(g, prog, sim.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func schedIDs(s []ScheduledItem) []int {
	ids := make([]int, len(s))
	for i, it := range s {
		ids[i] = it.ID
	}
	return ids
}

func TestCapetanakisSchedulesAllContenders(t *testing.T) {
	tests := []struct {
		name       string
		n          int
		contenders []int
	}{
		{"none", 8, nil},
		{"single", 8, []int{3}},
		{"two adjacent ids", 8, []int{4, 5}},
		{"all", 8, []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{"sparse", 16, []int{0, 7, 15}},
		{"extremes", 16, []int{0, 15}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			isC := make(map[int]bool)
			for _, c := range tt.contenders {
				isC[c] = true
			}
			res := runProtocol(t, tt.n, 1, func(ctx *sim.Ctx) error {
				id := int(ctx.ID())
				sched, _ := Capetanakis(ctx, sim.Input{}, ctx.N(), isC[id], id, fmt.Sprintf("p%d", id))
				ctx.SetResult(fmt.Sprint(schedIDs(sched)))
				return nil
			})
			want := append([]int(nil), tt.contenders...)
			sort.Ints(want)
			got := res.Results[0].(string)
			ids := fmt.Sprint(want)
			// The schedule must contain exactly the contenders; order is
			// protocol-determined but identical everywhere. Sort-compare.
			var parsed string = got
			_ = parsed
			for v := 1; v < tt.n; v++ {
				if res.Results[v] != got {
					t.Fatalf("node %d schedule %v != node 0 schedule %v", v, res.Results[v], got)
				}
			}
			// Re-run capturing raw ids at node 0 for the sorted comparison.
			res2 := runProtocol(t, tt.n, 1, func(ctx *sim.Ctx) error {
				id := int(ctx.ID())
				sched, _ := Capetanakis(ctx, sim.Input{}, ctx.N(), isC[id], id, nil)
				s := schedIDs(sched)
				sort.Ints(s)
				ctx.SetResult(fmt.Sprint(s))
				return nil
			})
			if res2.Results[0].(string) != ids {
				t.Errorf("scheduled ids = %v, want %v", res2.Results[0], ids)
			}
		})
	}
}

func TestCapetanakisPayloadsDelivered(t *testing.T) {
	res := runProtocol(t, 8, 1, func(ctx *sim.Ctx) error {
		id := int(ctx.ID())
		contend := id == 2 || id == 6
		sched, _ := Capetanakis(ctx, sim.Input{}, ctx.N(), contend, id, id*100)
		sum := 0
		for _, it := range sched {
			sum += it.Payload.(int)
		}
		ctx.SetResult(sum)
		return nil
	})
	for v, r := range res.Results {
		if r != 800 {
			t.Errorf("node %d payload sum = %v, want 800", v, r)
		}
	}
}

func TestCapetanakisSlotBound(t *testing.T) {
	// With k contenders out of n ids the tree algorithm uses
	// O(k log(n/k) + k) slots; check a generous concrete bound.
	n := 64
	for _, k := range []int{1, 4, 16, 64} {
		isC := func(id int) bool { return id%(n/k) == 0 }
		g, err := graph.Ring(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(g, func(ctx *sim.Ctx) error {
			id := int(ctx.ID())
			Capetanakis(ctx, sim.Input{}, ctx.N(), isC(id), id, nil)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		slots := res.Metrics.Rounds
		bound := 4*k*(1+int(math.Log2(float64(n/k)+1))) + 8
		if slots > bound {
			t.Errorf("k=%d: %d slots exceeds bound %d", k, slots, bound)
		}
	}
}

func TestMetcalfeBoggsSchedulesAll(t *testing.T) {
	for _, k := range []int{0, 1, 3, 10} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			n := 16
			res := runProtocol(t, n, 42, func(ctx *sim.Ctx) error {
				id := int(ctx.ID())
				contend := id < k
				sched, done, _ := MetcalfeBoggs(ctx, sim.Input{}, k, contend, id, id, 0)
				if !done {
					return fmt.Errorf("unbounded MB reported not done")
				}
				s := schedIDs(sched)
				sort.Ints(s)
				ctx.SetResult(fmt.Sprint(s))
				return nil
			})
			want := make([]int, k)
			for i := range want {
				want[i] = i
			}
			for v, r := range res.Results {
				if r != fmt.Sprint(want) {
					t.Errorf("node %d schedule %v, want %v", v, r, want)
				}
			}
		})
	}
}

func TestMetcalfeBoggsExpectedLinear(t *testing.T) {
	// Average slot pairs over seeds should be within a small constant of k.
	n, k := 64, 32
	g, err := graph.Ring(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const seeds = 10
	for s := int64(0); s < seeds; s++ {
		res, err := sim.Run(g, func(ctx *sim.Ctx) error {
			id := int(ctx.ID())
			MetcalfeBoggs(ctx, sim.Input{}, k, id < k, id, nil, 0)
			return nil
		}, sim.WithSeed(s))
		if err != nil {
			t.Fatal(err)
		}
		total += res.Metrics.Rounds
	}
	avgPairs := float64(total) / seeds / 2
	if avgPairs > 8*float64(k) {
		t.Errorf("avg pairs %.1f > 8k = %d", avgPairs, 8*k)
	}
}

func TestMetcalfeBoggsBounded(t *testing.T) {
	// With a 1-pair budget and many contenders, done must be false (w.h.p.
	// there is a collision, and certainly not all 8 can be scheduled).
	res := runProtocol(t, 16, 7, func(ctx *sim.Ctx) error {
		id := int(ctx.ID())
		_, done, _ := MetcalfeBoggs(ctx, sim.Input{}, 8, id < 8, id, nil, 1)
		ctx.SetResult(done)
		return nil
	})
	for v, r := range res.Results {
		if r != false {
			t.Errorf("node %d: done = %v, want false", v, r)
		}
	}
}

func TestElection(t *testing.T) {
	tests := []struct {
		name       string
		contenders []int
		wantLeader int
		wantOK     bool
	}{
		{"none", nil, 0, false},
		{"single", []int{5}, 5, true},
		{"pair", []int{3, 11}, 11, true},
		{"max id", []int{0, 7, 15}, 15, true},
		{"zero only", []int{0}, 0, true},
		{"all", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, 15, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			isC := make(map[int]bool)
			for _, c := range tt.contenders {
				isC[c] = true
			}
			res := runProtocol(t, 16, 1, func(ctx *sim.Ctx) error {
				id := int(ctx.ID())
				leader, ok, _ := Election(ctx, sim.Input{}, ctx.N(), isC[id], id)
				ctx.SetResult([2]int{leader, b2i(ok)})
				return nil
			})
			for v, r := range res.Results {
				got := r.([2]int)
				if got[1] != b2i(tt.wantOK) {
					t.Fatalf("node %d ok = %d, want %v", v, got[1], tt.wantOK)
				}
				if tt.wantOK && got[0] != tt.wantLeader {
					t.Fatalf("node %d leader = %d, want %d", v, got[0], tt.wantLeader)
				}
			}
		})
	}
}

func TestElectionSlotCount(t *testing.T) {
	// 1 liveness slot + ⌈log2 n⌉ bit slots, plus the trailing round in
	// which the programs halt.
	n := 32
	g, err := graph.Ring(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(g, func(ctx *sim.Ctx) error {
		Election(ctx, sim.Input{}, ctx.N(), true, int(ctx.ID()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 1+5+1 {
		t.Errorf("rounds = %d, want 7", res.Metrics.Rounds)
	}
}

func TestGreenbergLadnerEstimate(t *testing.T) {
	// Median estimate across seeds should be within a constant factor of n.
	for _, n := range []int{16, 64, 256} {
		g, err := graph.Ring(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		var ratios []float64
		for s := int64(0); s < 21; s++ {
			res, err := sim.Run(g, func(ctx *sim.Ctx) error {
				est, _ := GreenbergLadner(ctx, sim.Input{}, true)
				ctx.SetResult(est)
				return nil
			}, sim.WithSeed(s))
			if err != nil {
				t.Fatal(err)
			}
			est := res.Results[0].(int64)
			for v := 1; v < n; v++ {
				if res.Results[v] != est {
					t.Fatalf("nodes disagree on the estimate")
				}
			}
			ratios = append(ratios, float64(est)/float64(n))
		}
		sort.Float64s(ratios)
		med := ratios[len(ratios)/2]
		if med < 1.0/16 || med > 16 {
			t.Errorf("n=%d: median estimate ratio %.3f outside [1/16, 16]", n, med)
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestRandomizedElection(t *testing.T) {
	tests := []struct {
		name       string
		contenders []int
		wantOK     bool
	}{
		{"none", nil, false},
		{"single", []int{5}, true},
		{"few", []int{1, 6, 11}, true},
		{"all", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			isC := make(map[int]bool)
			for _, c := range tt.contenders {
				isC[c] = true
			}
			res := runProtocol(t, 16, 3, func(ctx *sim.Ctx) error {
				leader, ok, _ := RandomizedElection(ctx, sim.Input{}, isC[int(ctx.ID())])
				ctx.SetResult([2]int{leader, b2i(ok)})
				return nil
			})
			first := res.Results[0].([2]int)
			if first[1] != b2i(tt.wantOK) {
				t.Fatalf("ok = %d, want %v", first[1], tt.wantOK)
			}
			if tt.wantOK && !isC[first[0]] {
				t.Errorf("leader %d is not a contender", first[0])
			}
			for v, r := range res.Results {
				if r != first {
					t.Errorf("node %d disagrees: %v vs %v", v, r, first)
				}
			}
		})
	}
}

func TestRandomizedElectionExpectedSlots(t *testing.T) {
	// Average slots across seeds should stay small (O(log n) expected).
	n := 64
	g, err := graph.Ring(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const seeds = 10
	for s := int64(0); s < seeds; s++ {
		res, err := sim.Run(g, func(ctx *sim.Ctx) error {
			RandomizedElection(ctx, sim.Input{}, true)
			return nil
		}, sim.WithSeed(s))
		if err != nil {
			t.Fatal(err)
		}
		total += res.Metrics.Rounds
	}
	if avg := float64(total) / seeds; avg > 60 {
		t.Errorf("avg %.1f slots, expected O(log n)", avg)
	}
}
