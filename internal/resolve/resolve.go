// Package resolve implements the multiaccess-channel conflict-resolution
// protocols the paper builds on: the deterministic tree-splitting algorithm
// of Capetanakis (1979) used to schedule fragment cores, the randomized
// contention scheme in the style of Metcalfe–Boggs (1976), the bit-by-bit
// deterministic election sketched in §2, and the Greenberg–Ladner (1983)
// randomized size estimator of §7.4.
//
// Every protocol is a lock-step sub-routine embedded in a node program: all
// nodes must enter it in the same round; all nodes exit it in the same round
// and return identical results, because the only information used is the
// globally-visible sequence of slot resolutions.
package resolve

import (
	"repro/internal/sim"
)

// ScheduledItem is one successful channel acquisition: the contender's id
// and the payload it broadcast.
type ScheduledItem struct {
	ID      int
	Payload sim.Payload
}

// wire is the slot payload used by the scheduling protocols.
type wire struct {
	ID   int
	Data sim.Payload
}

// Capetanakis runs the deterministic tree-splitting resolution over the id
// space [0, idSpace). A node participates as a contender iff contending is
// true, with the given distinct id and payload. It returns the schedule —
// every contender's id and payload, identical at every node — and the input
// of the round in which the protocol ended.
//
// The protocol maintains a stack of id intervals, initially {[0, idSpace)},
// replicated at every node from the public slot outcomes: contenders in the
// top interval transmit; idle pops, success records and pops, collision
// splits the interval in two. With k contenders it uses O(k·log(idSpace/k))
// slots, the bound the paper cites for scheduling fragment cores.
func Capetanakis(c *sim.Ctx, in sim.Input, idSpace int, contending bool, myID int, payload sim.Payload) ([]ScheduledItem, sim.Input) {
	sched, _, out := CapetanakisBounded(c, in, idSpace, contending, myID, payload, 0)
	return sched, out
}

// CapetanakisBounded is Capetanakis with a slot budget: if maxSlots > 0 the
// protocol gives up after that many slots and complete reports whether the
// resolution finished. The §7.3 size-computation algorithm uses it to probe
// whether at most 2^i fragments remain after phase i.
func CapetanakisBounded(c *sim.Ctx, in sim.Input, idSpace int, contending bool, myID int, payload sim.Payload, maxSlots int) (sched []ScheduledItem, complete bool, out sim.Input) {
	if idSpace < 1 {
		idSpace = 1
	}
	type interval struct{ lo, hi int }
	stack := []interval{{0, idSpace}}
	for slots := 0; len(stack) > 0; slots++ {
		if maxSlots > 0 && slots >= maxSlots {
			return sched, false, in
		}
		top := stack[len(stack)-1]
		if contending && myID >= top.lo && myID < top.hi {
			c.Broadcast(wire{ID: myID, Data: payload})
		}
		in = c.Tick()
		switch in.Slot.State {
		case sim.SlotIdle:
			stack = stack[:len(stack)-1]
		case sim.SlotSuccess:
			w := in.Slot.Payload.(wire)
			sched = append(sched, ScheduledItem{ID: w.ID, Payload: w.Data})
			if contending && w.ID == myID {
				contending = false
			}
			stack = stack[:len(stack)-1]
		case sim.SlotCollision:
			mid := top.lo + (top.hi-top.lo)/2
			stack[len(stack)-1] = interval{mid, top.hi}
			stack = append(stack, interval{top.lo, mid})
		}
	}
	return sched, true, in
}

// MetcalfeBoggs runs randomized contention resolution with paired slots:
// even slots carry data transmissions (each unscheduled contender transmits
// with probability 1/k̂), odd slots carry a liveness busy tone from every
// still-unscheduled contender. The first idle liveness slot ends the
// protocol, so termination is exact without any shared knowledge beyond the
// slot sequence. k̂ starts at max(1, estimate) and adapts multiplicatively
// (collision ×2, idle ÷2, success −1), which recovers from bad estimates.
//
// If maxPairs > 0 the protocol gives up after that many slot pairs; done
// reports whether every contender was scheduled (used by the Las Vegas
// partition verifier, §4). With an accurate estimate the expected number of
// pairs is O(k), matching the O(1) expected slots per root the paper cites.
func MetcalfeBoggs(c *sim.Ctx, in sim.Input, estimate int, contending bool, myID int, payload sim.Payload, maxPairs int) (sched []ScheduledItem, done bool, out sim.Input) {
	khat := estimate
	if khat < 1 {
		khat = 1
	}
	for pair := 0; maxPairs <= 0 || pair < maxPairs; pair++ {
		// Contend slot.
		if contending && c.Rand().Float64() < 1/float64(khat) {
			c.Broadcast(wire{ID: myID, Data: payload})
		}
		in = c.Tick()
		switch in.Slot.State {
		case sim.SlotSuccess:
			w := in.Slot.Payload.(wire)
			sched = append(sched, ScheduledItem{ID: w.ID, Payload: w.Data})
			if contending && w.ID == myID {
				contending = false
			}
			if khat > 1 {
				khat--
			}
		case sim.SlotCollision:
			khat *= 2
		case sim.SlotIdle:
			if khat > 1 {
				khat /= 2
			}
		}
		// Liveness slot.
		if contending {
			c.Busy()
		}
		in = c.Tick()
		if in.Slot.State == sim.SlotIdle {
			return sched, true, in
		}
	}
	return sched, false, in
}

// Election runs the bit-by-bit deterministic leader election of §2 over the
// id space [0, idSpace): in each slot the surviving contenders whose current
// id bit is 1 transmit a busy tone; a non-idle slot eliminates the bit-0
// survivors. After ⌈log idSpace⌉ slots the unique survivor is the contender
// with the maximum id, and every node reconstructs that id from the public
// slot outcomes. A leading liveness slot distinguishes "no contenders"
// (returned as ok == false). Takes O(log idSpace) slots, the paper's
// O(log n) deterministic election.
func Election(c *sim.Ctx, in sim.Input, idSpace int, contending bool, myID int) (leader int, ok bool, out sim.Input) {
	if contending {
		c.Busy()
	}
	in = c.Tick()
	if in.Slot.State == sim.SlotIdle {
		return 0, false, in
	}
	bits := 0
	for 1<<bits < idSpace {
		bits++
	}
	leader = 0
	surviving := contending
	for b := bits - 1; b >= 0; b-- {
		if surviving && myID&(1<<b) != 0 {
			c.Busy()
		}
		in = c.Tick()
		if in.Slot.State != sim.SlotIdle {
			leader |= 1 << b
			if surviving && myID&(1<<b) == 0 {
				surviving = false
			}
		}
	}
	return leader, true, in
}

// GreenbergLadner runs the randomized size-estimation protocol of §7.4:
// in round i every participant transmits a busy tone with probability 1/2^i;
// the protocol ends at the first idle slot, after k rounds, and every node
// returns the estimate 2^k. For k participants the estimate is within a
// constant factor of k with high probability.
func GreenbergLadner(c *sim.Ctx, in sim.Input, participating bool) (estimate int64, out sim.Input) {
	for i := 1; ; i++ {
		p := 1.0
		for j := 0; j < i; j++ {
			p /= 2
		}
		if participating && c.Rand().Float64() < p {
			c.Busy()
		}
		in = c.Tick()
		if in.Slot.State == sim.SlotIdle {
			return int64(1) << uint(min(i, 62)), in
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RandomizedElection elects a leader among the contenders using randomness
// only: a liveness slot detects the no-contender case, Greenberg–Ladner
// estimates the contender multiplicity, then each surviving contender
// transmits with probability 1/k̂ until the first success slot — its sender
// is the leader, known to every node. Expected O(log n) slots end to end
// (the paper's §2 points to Metcalfe–Boggs-style symmetry breaking by coin
// flips; Willard's O(log log n) protocol would tighten the estimate stage).
func RandomizedElection(c *sim.Ctx, in sim.Input, contending bool) (leader int, ok bool, out sim.Input) {
	if contending {
		c.Busy()
	}
	in = c.Tick()
	if in.Slot.State == sim.SlotIdle {
		return 0, false, in
	}
	est, in := GreenbergLadner(c, in, contending)
	khat := est
	if khat < 1 {
		khat = 1
	}
	for {
		if contending && c.Rand().Float64() < 1/float64(khat) {
			c.Broadcast(wire{ID: int(c.ID())})
		}
		in = c.Tick()
		switch in.Slot.State {
		case sim.SlotSuccess:
			w := in.Slot.Payload.(wire)
			return w.ID, true, in
		case sim.SlotCollision:
			khat *= 2
		case sim.SlotIdle:
			if khat > 1 {
				khat /= 2
			}
		}
	}
}
