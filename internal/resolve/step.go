package resolve

// step.go provides the native step-machine forms of the conflict-resolution
// sub-protocols: the same slot-for-slot automata as the blocking versions in
// resolve.go, restructured as per-round components a sim.Machine embeds.
//
// Usage pattern: the machine calls Begin once, in the round the protocol
// starts (its broadcasts are staged in that round, exactly like the code a
// goroutine program runs before the sub-protocol's first Tick), then feeds
// every subsequent round's Input through Poll until it reports done. When
// Poll reports done the machine continues its own next stage in the same
// Step call with the same Input — the exact alignment of a goroutine
// program continuing after the sub-routine returns. Because the only
// information consumed is the public slot sequence, a component-driven run
// is transcript-identical to its blocking counterpart.

import (
	"repro/internal/sim"
)

// interval is one id range on the Capetanakis splitting stack.
type interval struct{ lo, hi int }

// CapetanakisStep is the per-round form of CapetanakisBounded (and, with
// MaxSlots 0, of Capetanakis). After Poll reports done, Sched holds the
// schedule and Complete reports whether the resolution finished within the
// slot budget.
type CapetanakisStep struct {
	c *sim.StepCtx

	Sched    []ScheduledItem
	Complete bool

	idSpace    int
	contending bool
	myID       int
	payload    sim.Payload
	maxSlots   int

	stack []interval
	slots int
}

// NewCapetanakisStep returns the component in its pre-Begin state. The
// parameters mirror CapetanakisBounded; maxSlots <= 0 means no budget.
func NewCapetanakisStep(c *sim.StepCtx, idSpace int, contending bool, myID int, payload sim.Payload, maxSlots int) *CapetanakisStep {
	if idSpace < 1 {
		idSpace = 1
	}
	return &CapetanakisStep{
		c: c, idSpace: idSpace, contending: contending, myID: myID,
		payload: payload, maxSlots: maxSlots,
	}
}

// Begin stages the first slot's transmission; call it once, in the round
// the protocol starts. It returns true if the protocol is over before its
// first slot (a zero slot budget).
func (s *CapetanakisStep) Begin() (done bool) {
	s.stack = []interval{{0, s.idSpace}}
	return s.transmit()
}

// transmit runs the pre-Tick half of one loop iteration of the blocking
// form: give up if the budget is spent, finish if the stack is empty,
// otherwise contend in the top interval.
func (s *CapetanakisStep) transmit() (done bool) {
	if len(s.stack) == 0 {
		s.Complete = true
		return true
	}
	if s.maxSlots > 0 && s.slots >= s.maxSlots {
		return true
	}
	top := s.stack[len(s.stack)-1]
	if s.contending && s.myID >= top.lo && s.myID < top.hi {
		s.c.Broadcast(wire{ID: s.myID, Data: s.payload})
	}
	return false
}

// Poll consumes one slot outcome and stages the next slot's transmission.
// When it reports done the caller proceeds in the same round.
func (s *CapetanakisStep) Poll(in sim.Input) (done bool) {
	s.slots++
	top := s.stack[len(s.stack)-1]
	switch in.Slot.State {
	case sim.SlotIdle:
		s.stack = s.stack[:len(s.stack)-1]
	case sim.SlotSuccess:
		w := in.Slot.Payload.(wire)
		s.Sched = append(s.Sched, ScheduledItem{ID: w.ID, Payload: w.Data})
		if s.contending && w.ID == s.myID {
			s.contending = false
		}
		s.stack = s.stack[:len(s.stack)-1]
	case sim.SlotCollision:
		mid := top.lo + (top.hi-top.lo)/2
		s.stack[len(s.stack)-1] = interval{mid, top.hi}
		s.stack = append(s.stack, interval{top.lo, mid})
	}
	return s.transmit()
}

// ElectionStep is the per-round form of Election: the bit-by-bit
// deterministic leader election of §2. After Poll reports done, Leader and
// OK hold the result.
type ElectionStep struct {
	c *sim.StepCtx

	Leader int
	OK     bool

	idSpace    int
	contending bool
	myID       int

	surviving bool
	bit       int // bit index awaiting its slot outcome; -1 = liveness slot
}

// NewElectionStep returns the component in its pre-Begin state.
func NewElectionStep(c *sim.StepCtx, idSpace int, contending bool, myID int) *ElectionStep {
	return &ElectionStep{c: c, idSpace: idSpace, contending: contending, myID: myID, bit: -1}
}

// Begin stages the liveness slot's transmission.
func (s *ElectionStep) Begin() {
	if s.contending {
		s.c.Busy()
	}
}

// Poll consumes one slot outcome and stages the next bit's transmission.
func (s *ElectionStep) Poll(in sim.Input) (done bool) {
	if s.bit == -1 {
		// Liveness outcome: an idle slot means no contenders.
		if in.Slot.State == sim.SlotIdle {
			return true
		}
		s.OK = true
		s.surviving = s.contending
		bits := 0
		for 1<<bits < s.idSpace {
			bits++
		}
		s.bit = bits // decremented to the first data bit below
	} else {
		if in.Slot.State != sim.SlotIdle {
			s.Leader |= 1 << s.bit
			if s.surviving && s.myID&(1<<s.bit) == 0 {
				s.surviving = false
			}
		}
	}
	s.bit--
	if s.bit < 0 {
		return true
	}
	if s.surviving && s.myID&(1<<s.bit) != 0 {
		s.c.Busy()
	}
	return false
}

// GreenbergLadnerStep is the per-round form of GreenbergLadner: the §7.4
// randomized size estimator. After Poll reports done, Estimate holds 2^k.
// The RNG draw order matches the blocking form exactly.
type GreenbergLadnerStep struct {
	c *sim.StepCtx

	Estimate int64

	participating bool
	i             int
}

// NewGreenbergLadnerStep returns the component in its pre-Begin state.
func NewGreenbergLadnerStep(c *sim.StepCtx, participating bool) *GreenbergLadnerStep {
	return &GreenbergLadnerStep{c: c, participating: participating}
}

// Begin stages the first probe's transmission.
func (s *GreenbergLadnerStep) Begin() { s.transmit() }

func (s *GreenbergLadnerStep) transmit() {
	s.i++
	p := 1.0
	for j := 0; j < s.i; j++ {
		p /= 2
	}
	if s.participating && s.c.Rand().Float64() < p {
		s.c.Busy()
	}
}

// Poll consumes one probe outcome and stages the next probe.
func (s *GreenbergLadnerStep) Poll(in sim.Input) (done bool) {
	if in.Slot.State == sim.SlotIdle {
		s.Estimate = int64(1) << uint(min(s.i, 62))
		return true
	}
	s.transmit()
	return false
}

// MetcalfeBoggsStep is the per-round form of MetcalfeBoggs: randomized
// contention resolution with paired data/liveness slots. After Poll reports
// done, Sched holds the schedule and Done whether every contender was
// scheduled within the pair budget.
type MetcalfeBoggsStep struct {
	c *sim.StepCtx

	Sched []ScheduledItem
	Done  bool

	contending bool
	myID       int
	payload    sim.Payload
	maxPairs   int

	khat     int
	pair     int
	liveness bool // the outcome being awaited is a liveness slot
}

// NewMetcalfeBoggsStep returns the component in its pre-Begin state; the
// parameters mirror MetcalfeBoggs.
func NewMetcalfeBoggsStep(c *sim.StepCtx, estimate int, contending bool, myID int, payload sim.Payload, maxPairs int) *MetcalfeBoggsStep {
	khat := estimate
	if khat < 1 {
		khat = 1
	}
	return &MetcalfeBoggsStep{c: c, khat: khat, contending: contending, myID: myID, payload: payload, maxPairs: maxPairs}
}

// Begin stages the first contend slot. It returns true if the pair budget
// is zero.
func (s *MetcalfeBoggsStep) Begin() (done bool) { return s.contend() }

// contend stages one contend-slot transmission, or finishes if the pair
// budget is spent.
func (s *MetcalfeBoggsStep) contend() (done bool) {
	if s.maxPairs > 0 && s.pair >= s.maxPairs {
		return true
	}
	if s.contending && s.c.Rand().Float64() < 1/float64(s.khat) {
		s.c.Broadcast(wire{ID: s.myID, Data: s.payload})
	}
	s.liveness = false
	return false
}

// Poll consumes one slot outcome and stages the next transmission.
func (s *MetcalfeBoggsStep) Poll(in sim.Input) (done bool) {
	if !s.liveness {
		switch in.Slot.State {
		case sim.SlotSuccess:
			w := in.Slot.Payload.(wire)
			s.Sched = append(s.Sched, ScheduledItem{ID: w.ID, Payload: w.Data})
			if s.contending && w.ID == s.myID {
				s.contending = false
			}
			if s.khat > 1 {
				s.khat--
			}
		case sim.SlotCollision:
			s.khat *= 2
		case sim.SlotIdle:
			if s.khat > 1 {
				s.khat /= 2
			}
		}
		if s.contending {
			s.c.Busy()
		}
		s.liveness = true
		return false
	}
	if in.Slot.State == sim.SlotIdle {
		s.Done = true
		return true
	}
	s.pair++
	return s.contend()
}
