package resolve

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// withEngine runs f with the process default engine switched.
func withEngine(t *testing.T, e sim.Engine, f func()) {
	t.Helper()
	old := sim.DefaultEngine
	sim.DefaultEngine = e
	defer func() { sim.DefaultEngine = old }()
	f()
}

// TestElectEngineEquivalence: the native election machine must elect the
// same leader with identical metrics as the blocking form.
func TestElectEngineEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 7, 33, 64} {
		g, err := graph.Ring(max(n, 3), 1)
		if err != nil {
			t.Fatal(err)
		}
		var goLeader, stLeader int
		var goMet, stMet sim.Metrics
		withEngine(t, sim.EngineGoroutine, func() { goLeader, goMet, err = Elect(g, 1) })
		if err != nil {
			t.Fatalf("n=%d goroutine: %v", n, err)
		}
		withEngine(t, sim.EngineStep, func() { stLeader, stMet, err = Elect(g, 1) })
		if err != nil {
			t.Fatalf("n=%d step: %v", n, err)
		}
		if goLeader != stLeader || !reflect.DeepEqual(goMet, stMet) {
			t.Errorf("n=%d diverges: goroutine (%d, %+v) step (%d, %+v)",
				n, goLeader, goMet, stLeader, stMet)
		}
		if want := g.N() - 1; goLeader != want {
			t.Errorf("n=%d leader = %d, want max id %d", n, goLeader, want)
		}
	}
}

// capProbe runs Capetanakis with a subset of contenders on both engines and
// compares schedule and metrics.
func TestCapetanakisStepEquivalence(t *testing.T) {
	g, err := graph.Ring(24, 1)
	if err != nil {
		t.Fatal(err)
	}
	contender := func(id graph.NodeID) bool { return id%3 == 0 }

	goRes, err := sim.Run(g, func(c *sim.Ctx) error {
		sched, _ := Capetanakis(c, sim.Input{}, c.N(), contender(c.ID()), int(c.ID()), int(c.ID())*10)
		c.SetResult(sched)
		return nil
	}, sim.WithSeed(1), sim.WithEngine(sim.EngineGoroutine))
	if err != nil {
		t.Fatal(err)
	}

	stRes, err := sim.RunStep(g, func(c *sim.StepCtx) sim.Machine {
		return &capTestMachine{c: c, s: NewCapetanakisStep(c, c.N(), contender(c.ID()), int(c.ID()), int(c.ID())*10, 0)}
	}, sim.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(goRes.Results, stRes.Results) {
		t.Errorf("schedules diverge:\n goroutine: %#v\n step:      %#v", goRes.Results, stRes.Results)
	}
	if !reflect.DeepEqual(goRes.Metrics, stRes.Metrics) {
		t.Errorf("metrics diverge:\n goroutine: %+v\n step:      %+v", goRes.Metrics, stRes.Metrics)
	}
}

type capTestMachine struct {
	c     *sim.StepCtx
	s     *CapetanakisStep
	sched any
}

func (m *capTestMachine) Step(in sim.Input) bool {
	if in.Round == 0 {
		if m.s.Begin() {
			m.sched = m.s.Sched
			return true
		}
		return false
	}
	if !m.s.Poll(in) {
		return false
	}
	m.sched = m.s.Sched
	return true
}

func (m *capTestMachine) Result() any { return m.sched }

// TestMetcalfeBoggsStepEquivalence compares the randomized contention
// component draw-for-draw with the blocking form.
func TestMetcalfeBoggsStepEquivalence(t *testing.T) {
	g, err := graph.Ring(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 7, 99} {
		goRes, err := sim.Run(g, func(c *sim.Ctx) error {
			sched, done, _ := MetcalfeBoggs(c, sim.Input{}, 4, c.ID()%2 == 0, int(c.ID()), nil, 0)
			c.SetResult([]any{sched, done})
			return nil
		}, sim.WithSeed(seed), sim.WithEngine(sim.EngineGoroutine))
		if err != nil {
			t.Fatal(err)
		}
		stRes, err := sim.RunStep(g, func(c *sim.StepCtx) sim.Machine {
			return &mbTestMachine{s: NewMetcalfeBoggsStep(c, 4, c.ID()%2 == 0, int(c.ID()), nil, 0)}
		}, sim.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(goRes.Results, stRes.Results) {
			t.Errorf("seed %d: schedules diverge", seed)
		}
		if !reflect.DeepEqual(goRes.Metrics, stRes.Metrics) {
			t.Errorf("seed %d: metrics diverge:\n goroutine: %+v\n step:      %+v", seed, goRes.Metrics, stRes.Metrics)
		}
	}
}

type mbTestMachine struct {
	s   *MetcalfeBoggsStep
	out any
}

func (m *mbTestMachine) Step(in sim.Input) bool {
	if in.Round == 0 {
		if m.s.Begin() {
			m.out = []any{m.s.Sched, m.s.Done}
			return true
		}
		return false
	}
	if !m.s.Poll(in) {
		return false
	}
	m.out = []any{m.s.Sched, m.s.Done}
	return true
}

func (m *mbTestMachine) Result() any { return m.out }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
