package sim

// fault_test.go verifies the fault-injection semantics of both engines: the
// crash-stop boundary, drop/delay/duplicate message fates, channel jamming,
// and the extension of the determinism contract to faulted runs (identical
// transcripts on the goroutine engine and the step engine at any worker
// count).

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// faultEngines runs the program on the goroutine engine and on the step
// engine with 1 and 4 workers, asserts the three transcripts are identical,
// and returns the common result.
func faultEngines(t *testing.T, g *graph.Graph, program Program, opts ...Option) *Result {
	t.Helper()
	type run struct {
		name string
		opt  []Option
	}
	runs := []run{
		{"goroutine", []Option{WithEngine(EngineGoroutine)}},
		{"step-w1", []Option{WithEngine(EngineStep), WithWorkers(1)}},
		{"step-w4", []Option{WithEngine(EngineStep), WithWorkers(4)}},
	}
	var ref *Result
	for _, r := range runs {
		res, err := Run(g, program, append(append([]Option{}, opts...), r.opt...)...)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Results, res.Results) {
			t.Fatalf("%s results diverge:\n ref: %#v\n got: %#v", r.name, ref.Results, res.Results)
		}
		if ref.Metrics != res.Metrics {
			t.Fatalf("%s metrics diverge:\n ref: %+v\n got: %+v", r.name, ref.Metrics, res.Metrics)
		}
	}
	return ref
}

// TestFaultCrashStop checks the crash boundary: the victim's sends from its
// last completed round are delivered, nothing later; messages addressed to
// it after the crash are dropped as to a halted node.
func TestFaultCrashStop(t *testing.T) {
	g, err := graph.Path(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("crash:2@5")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var got []int
		for r := 1; r <= 8; r++ {
			switch c.ID() {
			case 2:
				c.SendTo(1, c.Round())
			case 1:
				c.SendTo(2, c.Round())
			}
			in := c.Tick()
			for _, m := range in.Msgs {
				if m.From == 2 {
					got = append(got, m.Payload.(int))
				}
			}
		}
		if c.ID() == 1 {
			c.SetResult(got)
		}
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	// Node 2's last compute round is 4: values 0..4 arrive at node 1.
	if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(res.Results[1], want) {
		t.Errorf("node 1 received %v, want %v", res.Results[1], want)
	}
	if res.Metrics.Crashed != 1 {
		t.Errorf("Crashed = %d, want 1", res.Metrics.Crashed)
	}
	// Node 1's sends of rounds 4..7 arrive at rounds 5..8, after the crash.
	if res.Metrics.DroppedHalted != 4 {
		t.Errorf("DroppedHalted = %d, want 4", res.Metrics.DroppedHalted)
	}
}

// TestFaultLinkDrop checks a finite drop window on one edge.
func TestFaultLinkDrop(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("drop:0@3-5")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var got []int
		for r := 1; r <= 8; r++ {
			if c.ID() == 0 {
				c.SendTo(1, c.Round())
			}
			in := c.Tick()
			for _, m := range in.Msgs {
				got = append(got, m.Payload.(int))
			}
		}
		if c.ID() == 1 {
			c.SetResult(got)
		}
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	// Values 2, 3, 4 would arrive at rounds 3, 4, 5 — the drop window.
	if want := []int{0, 1, 5, 6, 7}; !reflect.DeepEqual(res.Results[1], want) {
		t.Errorf("node 1 received %v, want %v", res.Results[1], want)
	}
	if res.Metrics.DroppedFault != 3 {
		t.Errorf("DroppedFault = %d, want 3", res.Metrics.DroppedFault)
	}
	if res.Metrics.Messages != 8 {
		t.Errorf("Messages = %d, want 8 (drops still count as sent)", res.Metrics.Messages)
	}
}

// TestFaultDelayAndDup checks delayed and duplicated deliveries.
func TestFaultDelayAndDup(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("delay:0@1/d3;dup:0@2")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var got []string
		for r := 1; r <= 8; r++ {
			if c.ID() == 0 && c.Round() < 2 {
				c.SendTo(1, fmt.Sprintf("m%d", c.Round()))
			}
			in := c.Tick()
			for _, m := range in.Msgs {
				got = append(got, fmt.Sprintf("%s@%d", m.Payload, in.Round))
			}
		}
		if c.ID() == 1 {
			c.SetResult(got)
		}
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	// m0 (normal arrival 1) is delayed 3 rounds to 4; m1 (arrival 2) is
	// duplicated: delivered at 2 and again at 3.
	if want := []string{"m1@2", "m1@3", "m0@4"}; !reflect.DeepEqual(res.Results[1], want) {
		t.Errorf("node 1 received %v, want %v", res.Results[1], want)
	}
	if res.Metrics.Delayed != 1 || res.Metrics.Duplicated != 1 {
		t.Errorf("Delayed, Duplicated = %d, %d, want 1, 1",
			res.Metrics.Delayed, res.Metrics.Duplicated)
	}
}

// TestFaultJam checks that a jammed slot presents as a collision to every
// node, hiding a lone writer.
func TestFaultJam(t *testing.T) {
	g, err := graph.Path(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("jam:3")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var states []SlotState
		for r := 1; r <= 5; r++ {
			if c.ID() == 0 {
				c.Broadcast("x")
			}
			in := c.Tick()
			states = append(states, in.Slot.State)
		}
		c.SetResult(states)
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	want := []SlotState{SlotSuccess, SlotSuccess, SlotCollision, SlotSuccess, SlotSuccess}
	for v, r := range res.Results {
		if !reflect.DeepEqual(r, want) {
			t.Errorf("node %d observed %v, want %v", v, r, want)
		}
	}
	if res.Metrics.SlotsJammed != 1 || res.Metrics.SlotsSuccess != 4 {
		t.Errorf("SlotsJammed, SlotsSuccess = %d, %d, want 1, 4",
			res.Metrics.SlotsJammed, res.Metrics.SlotsSuccess)
	}
}

// TestFaultDefaultFaults checks that the process-wide default plan applies
// when no WithFaults option is given and that WithFaults(nil) overrides it.
func TestFaultDefaultFaults(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("drop:0@1-")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		c.SendTo(1-c.ID(), "hi")
		in := c.Tick()
		c.SetResult(len(in.Msgs))
		return nil
	}
	old := DefaultFaults
	DefaultFaults = plan
	defer func() { DefaultFaults = old }()

	res, err := Run(g, prog, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0] != 0 || res.Results[1] != 0 || res.Metrics.DroppedFault != 2 {
		t.Errorf("default plan not applied: %v, %+v", res.Results, res.Metrics)
	}
	res, err = Run(g, prog, WithSeed(1), WithFaults(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0] != 1 || res.Results[1] != 1 || res.Metrics.DroppedFault != 0 {
		t.Errorf("WithFaults(nil) did not override the default: %v, %+v", res.Results, res.Metrics)
	}
}

// TestFaultNativeSleepDelay checks the step engine's pending-message path
// against sleeping machines: with every live node asleep and a delayed
// message in flight, the engine must keep ticking (not declare quiescence)
// and wake the recipient at the fault-assigned round.
func TestFaultNativeSleepDelay(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("delay:0@1/d2")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		prog := func(c *StepCtx) Machine {
			return &sleepDelayMachine{c: c}
		}
		res, err := RunStep(g, prog, WithSeed(1), WithWorkers(workers), WithFaults(plan))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Normal arrival round 1, delayed 2 rounds to 3.
		if res.Results[1] != 3 {
			t.Errorf("workers=%d: woke at round %v, want 3", workers, res.Results[1])
		}
		if res.Metrics.Delayed != 1 {
			t.Errorf("workers=%d: Delayed = %d, want 1", workers, res.Metrics.Delayed)
		}
	}
}

type sleepDelayMachine struct {
	c    *StepCtx
	woke int
}

func (m *sleepDelayMachine) Step(in Input) bool {
	if in.Round == 0 {
		if m.c.ID() == 0 {
			m.c.SendTo(1, "ping")
			return true
		}
		m.c.Sleep()
		return false
	}
	if len(in.Msgs) > 0 {
		m.woke = in.Round
		return true
	}
	m.c.Sleep()
	return false
}

func (m *sleepDelayMachine) Result() any { return m.woke }

// TestFaultStressEquivalence is the fault determinism gate at the sim
// level: a randomized program under a plan combining every fault kind must
// produce identical transcripts on both engines at any worker count.
func TestFaultStressEquivalence(t *testing.T) {
	g, err := graph.RandomConnected(20, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse(
		"seed:11;crash:3@4;crash:7@6;drop:2@2-6;delay:*@1-/d2/p0.15;dup:1@3-9/p0.5;jam:2-4/p0.6")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		sum := uint64(0)
		mix := func(vals ...uint64) {
			for _, v := range vals {
				sum = sum*0x100000001b3 + v
			}
		}
		for r := 1; r <= 12; r++ {
			for l := 0; l < c.Degree(); l++ {
				if c.Rand().Intn(3) == 0 {
					c.Send(l, int(c.Rand().Intn(1000)))
				}
			}
			if c.Rand().Intn(5) == 0 {
				c.Broadcast(int(c.ID())*100 + c.Round())
			}
			in := c.Tick()
			mix(uint64(in.Round), uint64(in.Slot.State), uint64(in.Slot.From))
			if p, ok := in.Slot.Payload.(int); ok {
				mix(uint64(p))
			}
			for _, m := range in.Msgs {
				mix(uint64(m.From), uint64(m.EdgeID), uint64(m.Payload.(int)))
			}
		}
		c.SetResult(sum)
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(9), WithFaults(plan))
	if res.Metrics.Crashed != 2 {
		t.Errorf("Crashed = %d, want 2", res.Metrics.Crashed)
	}
	if res.Metrics.SlotsJammed == 0 || res.Metrics.Delayed == 0 ||
		res.Metrics.Duplicated == 0 || res.Metrics.DroppedFault == 0 {
		t.Errorf("plan did not exercise every fault kind: %+v", res.Metrics)
	}
}

// TestFaultPartitionWindowHeal checks the chaos-v2 partition rule: with
// seed 1 the 2-group split of Path(3) isolates node 1 from both neighbors
// (verified by the group-stability test in internal/fault), so every
// point-to-point message crossing the cut during rounds 3-5 is dropped and
// delivery resumes the round the window heals. The multiaccess channel is
// deliberately unaffected: a broadcast from inside the minority component
// still reaches the whole network mid-partition.
func TestFaultPartitionWindowHeal(t *testing.T) {
	g, err := graph.Path(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("seed:1;partition:2@3-5")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var from0, from2 []int
		var heard []string
		for r := 1; r <= 8; r++ {
			switch c.ID() {
			case 0, 2:
				c.SendTo(1, c.Round())
			case 1:
				c.SendTo(0, c.Round())
				if c.Round() == 3 { // mid-partition broadcast
					c.Broadcast("cut?")
				}
			}
			in := c.Tick()
			for _, m := range in.Msgs {
				if m.From == 0 {
					from0 = append(from0, m.Payload.(int))
				} else {
					from2 = append(from2, m.Payload.(int))
				}
			}
			if s, ok := in.Slot.Payload.(string); ok && in.Slot.State == SlotSuccess {
				heard = append(heard, fmt.Sprintf("%s@%d", s, in.Round))
			}
		}
		switch c.ID() {
		case 1:
			c.SetResult(fmt.Sprintf("%v %v", from0, from2))
		default:
			c.SetResult(fmt.Sprintf("%v", heard))
		}
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	// Sends of compute rounds 2..4 would arrive at 3..5 — the window.
	if want := "[0 1 5 6 7] [0 1 5 6 7]"; res.Results[1] != want {
		t.Errorf("node 1 received %q, want %q", res.Results[1], want)
	}
	// The channel ignores the partition: the broadcast lands everywhere.
	for _, v := range []graph.NodeID{0, 2} {
		if want := "[cut?@4]"; res.Results[v] != want {
			t.Errorf("node %d heard %q, want %q", v, res.Results[v], want)
		}
	}
	// Six cut crossings into node 1 plus three from it (rounds 3..5, both
	// directions on edge 0, one direction on edge 1).
	if res.Metrics.PartitionedDrop != 9 {
		t.Errorf("PartitionedDrop = %d, want 9", res.Metrics.PartitionedDrop)
	}
	if res.Metrics.DroppedFault != 0 {
		t.Errorf("DroppedFault = %d, want 0 (partition drops count separately)", res.Metrics.DroppedFault)
	}
}

// TestFaultRestart checks crash-restart revival: the victim's replacement
// incarnation re-runs the program from local round 0 with reset protocol
// state and a fresh RNG stream (nodeSeedAt incarnation 1), and its result
// replaces the dead incarnation's.
func TestFaultRestart(t *testing.T) {
	g, err := graph.Path(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("crash:2@3;restart:2@6")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		if c.ID() == 2 {
			for r := 1; r <= 4; r++ {
				if c.Round() == 0 {
					c.SendTo(1, c.Rand().Int63()) // one stream probe per incarnation
				} else {
					c.SendTo(1, c.Round())
				}
				c.Tick()
			}
			c.SetResult("done")
			return nil
		}
		var vals []string
		var rngs []int64
		for r := 1; r <= 12; r++ {
			in := c.Tick()
			for _, m := range in.Msgs {
				switch p := m.Payload.(type) {
				case int64:
					rngs = append(rngs, p)
				case int:
					vals = append(vals, fmt.Sprintf("%d@%d", p, in.Round))
				}
			}
		}
		if c.ID() == 1 {
			c.SetResult(fmt.Sprintf("%v %v", vals, rngs))
		}
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	// Incarnation 0 completes local rounds 0..2 (sends arrive at global
	// rounds 1..3), then crashes. The restart at round 6 re-runs the
	// program: local rounds 0..3 land at global 7..10. Each incarnation's
	// round-0 probe draws the first value of its own derived stream.
	rand0, _ := newNodeRand(nodeSeedAt(1, 2, 0), 0)
	rand1, _ := newNodeRand(nodeSeedAt(1, 2, 1), 0)
	probe0 := rand0.Int63()
	probe1 := rand1.Int63()
	if probe0 == probe1 {
		t.Fatalf("incarnation streams collide: %d", probe0)
	}
	want := fmt.Sprintf("[1@2 2@3 1@8 2@9 3@10] [%d %d]", probe0, probe1)
	if res.Results[1] != want {
		t.Errorf("node 1 received %q, want %q", res.Results[1], want)
	}
	// The second incarnation ran to completion and owns the result slot.
	if res.Results[2] != "done" {
		t.Errorf("node 2 result = %v, want %q (replacement incarnation's)", res.Results[2], "done")
	}
	if res.Metrics.Crashed != 1 || res.Metrics.Restarted != 1 {
		t.Errorf("Crashed, Restarted = %d, %d, want 1, 1",
			res.Metrics.Crashed, res.Metrics.Restarted)
	}
}

// TestFaultRecurringWindow checks the /eN modifier: a 2-round drop window
// recurring every 4 rounds fires at deliver rounds 2-3, 6-7, 10-11.
func TestFaultRecurringWindow(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("drop:0@2-3/e4")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var got []int
		for r := 1; r <= 12; r++ {
			if c.ID() == 0 {
				c.SendTo(1, c.Round())
			}
			in := c.Tick()
			for _, m := range in.Msgs {
				got = append(got, m.Payload.(int))
			}
		}
		if c.ID() == 1 {
			c.SetResult(got)
		}
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	// Arrival rounds 2,3 then every 4: 2,3,6,7,10,11 dropped — the sends
	// of compute rounds 1,2,5,6,9,10.
	if want := []int{0, 3, 4, 7, 8, 11}; !reflect.DeepEqual(res.Results[1], want) {
		t.Errorf("node 1 received %v, want %v", res.Results[1], want)
	}
	if res.Metrics.DroppedFault != 6 {
		t.Errorf("DroppedFault = %d, want 6", res.Metrics.DroppedFault)
	}
}

// TestFaultSkewRequiresSynchronizer checks the capability gate: skew rules
// only mean something where a synchronizer simulates per-node clocks, so a
// plain round-synchronous run must refuse the plan.
func TestFaultSkewRequiresSynchronizer(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("skew:0@1-4/d2")
	if err != nil {
		t.Fatal(err)
	}
	noop := func(c *Ctx) error { c.Tick(); return nil }
	_, err = Run(g, noop, WithSeed(1), WithFaults(plan))
	if err == nil {
		t.Fatal("skew plan accepted without a synchronizer")
	}
	want := "fault: rule 0 (skew:0@1-4/d2): skew applies only to synchronizer runs (the §7.1 async layer)"
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
}

// TestFaultSkew checks per-sender clock skew under WithSynchronizer: a
// message leaving the skewed node during the window arrives /dN rounds
// late, like a delay but keyed on the sender, and counts as Skewed.
func TestFaultSkew(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("skew:0@1-3/d3")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var got []string
		for r := 1; r <= 10; r++ {
			if c.ID() == 0 && (c.Round() == 0 || c.Round() == 4) {
				c.SendTo(1, fmt.Sprintf("m%d", c.Round()))
			}
			in := c.Tick()
			for _, m := range in.Msgs {
				got = append(got, fmt.Sprintf("%s@%d", m.Payload, in.Round))
			}
		}
		if c.ID() == 1 {
			c.SetResult(got)
		}
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan), WithSynchronizer())
	// m0 (normal arrival 1, inside the window) slips 3 rounds to 4; m4
	// (arrival 5, after the window) is on time.
	if want := []string{"m0@4", "m4@5"}; !reflect.DeepEqual(res.Results[1], want) {
		t.Errorf("node 1 received %v, want %v", res.Results[1], want)
	}
	if res.Metrics.Skewed != 1 || res.Metrics.Delayed != 0 {
		t.Errorf("Skewed, Delayed = %d, %d, want 1, 0",
			res.Metrics.Skewed, res.Metrics.Delayed)
	}
}
