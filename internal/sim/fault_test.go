package sim

// fault_test.go verifies the fault-injection semantics of both engines: the
// crash-stop boundary, drop/delay/duplicate message fates, channel jamming,
// and the extension of the determinism contract to faulted runs (identical
// transcripts on the goroutine engine and the step engine at any worker
// count).

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// faultEngines runs the program on the goroutine engine and on the step
// engine with 1 and 4 workers, asserts the three transcripts are identical,
// and returns the common result.
func faultEngines(t *testing.T, g *graph.Graph, program Program, opts ...Option) *Result {
	t.Helper()
	type run struct {
		name string
		opt  []Option
	}
	runs := []run{
		{"goroutine", []Option{WithEngine(EngineGoroutine)}},
		{"step-w1", []Option{WithEngine(EngineStep), WithWorkers(1)}},
		{"step-w4", []Option{WithEngine(EngineStep), WithWorkers(4)}},
	}
	var ref *Result
	for _, r := range runs {
		res, err := Run(g, program, append(append([]Option{}, opts...), r.opt...)...)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Results, res.Results) {
			t.Fatalf("%s results diverge:\n ref: %#v\n got: %#v", r.name, ref.Results, res.Results)
		}
		if ref.Metrics != res.Metrics {
			t.Fatalf("%s metrics diverge:\n ref: %+v\n got: %+v", r.name, ref.Metrics, res.Metrics)
		}
	}
	return ref
}

// TestFaultCrashStop checks the crash boundary: the victim's sends from its
// last completed round are delivered, nothing later; messages addressed to
// it after the crash are dropped as to a halted node.
func TestFaultCrashStop(t *testing.T) {
	g, err := graph.Path(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("crash:2@5")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var got []int
		for r := 1; r <= 8; r++ {
			switch c.ID() {
			case 2:
				c.SendTo(1, c.Round())
			case 1:
				c.SendTo(2, c.Round())
			}
			in := c.Tick()
			for _, m := range in.Msgs {
				if m.From == 2 {
					got = append(got, m.Payload.(int))
				}
			}
		}
		if c.ID() == 1 {
			c.SetResult(got)
		}
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	// Node 2's last compute round is 4: values 0..4 arrive at node 1.
	if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(res.Results[1], want) {
		t.Errorf("node 1 received %v, want %v", res.Results[1], want)
	}
	if res.Metrics.Crashed != 1 {
		t.Errorf("Crashed = %d, want 1", res.Metrics.Crashed)
	}
	// Node 1's sends of rounds 4..7 arrive at rounds 5..8, after the crash.
	if res.Metrics.DroppedHalted != 4 {
		t.Errorf("DroppedHalted = %d, want 4", res.Metrics.DroppedHalted)
	}
}

// TestFaultLinkDrop checks a finite drop window on one edge.
func TestFaultLinkDrop(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("drop:0@3-5")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var got []int
		for r := 1; r <= 8; r++ {
			if c.ID() == 0 {
				c.SendTo(1, c.Round())
			}
			in := c.Tick()
			for _, m := range in.Msgs {
				got = append(got, m.Payload.(int))
			}
		}
		if c.ID() == 1 {
			c.SetResult(got)
		}
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	// Values 2, 3, 4 would arrive at rounds 3, 4, 5 — the drop window.
	if want := []int{0, 1, 5, 6, 7}; !reflect.DeepEqual(res.Results[1], want) {
		t.Errorf("node 1 received %v, want %v", res.Results[1], want)
	}
	if res.Metrics.DroppedFault != 3 {
		t.Errorf("DroppedFault = %d, want 3", res.Metrics.DroppedFault)
	}
	if res.Metrics.Messages != 8 {
		t.Errorf("Messages = %d, want 8 (drops still count as sent)", res.Metrics.Messages)
	}
}

// TestFaultDelayAndDup checks delayed and duplicated deliveries.
func TestFaultDelayAndDup(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("delay:0@1/d3;dup:0@2")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var got []string
		for r := 1; r <= 8; r++ {
			if c.ID() == 0 && c.Round() < 2 {
				c.SendTo(1, fmt.Sprintf("m%d", c.Round()))
			}
			in := c.Tick()
			for _, m := range in.Msgs {
				got = append(got, fmt.Sprintf("%s@%d", m.Payload, in.Round))
			}
		}
		if c.ID() == 1 {
			c.SetResult(got)
		}
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	// m0 (normal arrival 1) is delayed 3 rounds to 4; m1 (arrival 2) is
	// duplicated: delivered at 2 and again at 3.
	if want := []string{"m1@2", "m1@3", "m0@4"}; !reflect.DeepEqual(res.Results[1], want) {
		t.Errorf("node 1 received %v, want %v", res.Results[1], want)
	}
	if res.Metrics.Delayed != 1 || res.Metrics.Duplicated != 1 {
		t.Errorf("Delayed, Duplicated = %d, %d, want 1, 1",
			res.Metrics.Delayed, res.Metrics.Duplicated)
	}
}

// TestFaultJam checks that a jammed slot presents as a collision to every
// node, hiding a lone writer.
func TestFaultJam(t *testing.T) {
	g, err := graph.Path(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("jam:3")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		var states []SlotState
		for r := 1; r <= 5; r++ {
			if c.ID() == 0 {
				c.Broadcast("x")
			}
			in := c.Tick()
			states = append(states, in.Slot.State)
		}
		c.SetResult(states)
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(1), WithFaults(plan))
	want := []SlotState{SlotSuccess, SlotSuccess, SlotCollision, SlotSuccess, SlotSuccess}
	for v, r := range res.Results {
		if !reflect.DeepEqual(r, want) {
			t.Errorf("node %d observed %v, want %v", v, r, want)
		}
	}
	if res.Metrics.SlotsJammed != 1 || res.Metrics.SlotsSuccess != 4 {
		t.Errorf("SlotsJammed, SlotsSuccess = %d, %d, want 1, 4",
			res.Metrics.SlotsJammed, res.Metrics.SlotsSuccess)
	}
}

// TestFaultDefaultFaults checks that the process-wide default plan applies
// when no WithFaults option is given and that WithFaults(nil) overrides it.
func TestFaultDefaultFaults(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("drop:0@1-")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		c.SendTo(1-c.ID(), "hi")
		in := c.Tick()
		c.SetResult(len(in.Msgs))
		return nil
	}
	old := DefaultFaults
	DefaultFaults = plan
	defer func() { DefaultFaults = old }()

	res, err := Run(g, prog, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0] != 0 || res.Results[1] != 0 || res.Metrics.DroppedFault != 2 {
		t.Errorf("default plan not applied: %v, %+v", res.Results, res.Metrics)
	}
	res, err = Run(g, prog, WithSeed(1), WithFaults(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0] != 1 || res.Results[1] != 1 || res.Metrics.DroppedFault != 0 {
		t.Errorf("WithFaults(nil) did not override the default: %v, %+v", res.Results, res.Metrics)
	}
}

// TestFaultNativeSleepDelay checks the step engine's pending-message path
// against sleeping machines: with every live node asleep and a delayed
// message in flight, the engine must keep ticking (not declare quiescence)
// and wake the recipient at the fault-assigned round.
func TestFaultNativeSleepDelay(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("delay:0@1/d2")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		prog := func(c *StepCtx) Machine {
			return &sleepDelayMachine{c: c}
		}
		res, err := RunStep(g, prog, WithSeed(1), WithWorkers(workers), WithFaults(plan))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Normal arrival round 1, delayed 2 rounds to 3.
		if res.Results[1] != 3 {
			t.Errorf("workers=%d: woke at round %v, want 3", workers, res.Results[1])
		}
		if res.Metrics.Delayed != 1 {
			t.Errorf("workers=%d: Delayed = %d, want 1", workers, res.Metrics.Delayed)
		}
	}
}

type sleepDelayMachine struct {
	c    *StepCtx
	woke int
}

func (m *sleepDelayMachine) Step(in Input) bool {
	if in.Round == 0 {
		if m.c.ID() == 0 {
			m.c.SendTo(1, "ping")
			return true
		}
		m.c.Sleep()
		return false
	}
	if len(in.Msgs) > 0 {
		m.woke = in.Round
		return true
	}
	m.c.Sleep()
	return false
}

func (m *sleepDelayMachine) Result() any { return m.woke }

// TestFaultStressEquivalence is the fault determinism gate at the sim
// level: a randomized program under a plan combining every fault kind must
// produce identical transcripts on both engines at any worker count.
func TestFaultStressEquivalence(t *testing.T) {
	g, err := graph.RandomConnected(20, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse(
		"seed:11;crash:3@4;crash:7@6;drop:2@2-6;delay:*@1-/d2/p0.15;dup:1@3-9/p0.5;jam:2-4/p0.6")
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *Ctx) error {
		sum := uint64(0)
		mix := func(vals ...uint64) {
			for _, v := range vals {
				sum = sum*0x100000001b3 + v
			}
		}
		for r := 1; r <= 12; r++ {
			for l := 0; l < c.Degree(); l++ {
				if c.Rand().Intn(3) == 0 {
					c.Send(l, int(c.Rand().Intn(1000)))
				}
			}
			if c.Rand().Intn(5) == 0 {
				c.Broadcast(int(c.ID())*100 + c.Round())
			}
			in := c.Tick()
			mix(uint64(in.Round), uint64(in.Slot.State), uint64(in.Slot.From))
			if p, ok := in.Slot.Payload.(int); ok {
				mix(uint64(p))
			}
			for _, m := range in.Msgs {
				mix(uint64(m.From), uint64(m.EdgeID), uint64(m.Payload.(int)))
			}
		}
		c.SetResult(sum)
		return nil
	}
	res := faultEngines(t, g, prog, WithSeed(9), WithFaults(plan))
	if res.Metrics.Crashed != 2 {
		t.Errorf("Crashed = %d, want 2", res.Metrics.Crashed)
	}
	if res.Metrics.SlotsJammed == 0 || res.Metrics.Delayed == 0 ||
		res.Metrics.Duplicated == 0 || res.Metrics.DroppedFault == 0 {
		t.Errorf("plan did not exercise every fault kind: %+v", res.Metrics)
	}
}
