package sim

// gate.go is the step engine's phase barrier: a persistent-worker,
// sense-reversing gate that replaces the old per-shard workCh/ackCh channel
// handshake. The coordinator publishes the phase command and flips the
// shared sense word (an epoch counter — the generalization of a
// sense-reversing flag to many reuses); workers observe the flip, run their
// shard's slice of the phase, and decrement an arrival counter whose zero
// crossing releases the coordinator. A phase transition therefore costs a
// few uncontended atomics instead of 2×shards channel operations.
//
// Waiting on either side is spin-then-park: a bounded spin on the atomic
// word (workers on the epoch, the coordinator on the arrival counter)
// followed by a channel park. When the process is oversubscribed —
// GOMAXPROCS below the participant count, so a spinner would burn the very
// core its peer needs — the spin budget is zero and everyone parks
// immediately, which degrades to the old handshake's cost instead of
// livelocking. The park/wake pair uses a per-waiter published flag plus a
// buffered channel: the waiter publishes the flag and re-checks the
// condition, the signaler claims the flag with a Swap before sending, so a
// wake is sent iff the waiter is (or is about to be) blocked and every park
// cycle drains exactly the wakes addressed to it.
//
// Memory ordering: all atomics are sequentially consistent. A worker's
// phase writes happen-before its arrival decrement, which happens-before
// the coordinator observing zero; the coordinator's round-state writes
// (slot, round, continuing) happen-before the epoch bump, which
// happens-before any worker observing it — so all cross-phase data is
// properly ordered for both the memory model and the race detector.

import (
	"runtime"
	"sync/atomic"
)

// gateSpin is the spin budget (atomic loads) before a waiter parks. Phases
// on a warm multicore machine complete in well under this many loads; the
// budget only exists to bound the burn when a peer is descheduled.
const gateSpin = 4096

// gateWaiter is one parkable participant: a worker, or the coordinator.
type gateWaiter struct {
	parked atomic.Bool
	ch     chan struct{}
	_      [48]byte // pad to 64 bytes: keep waiters off each other's cache line
}

// park publishes this waiter as parked. The caller must re-check its wait
// condition afterwards and then call either unpark (condition already met)
// or block (still unmet).
//
//mmlint:noalloc
func (w *gateWaiter) park() { w.parked.Store(true) }

// unpark withdraws a park when the condition turned out to be already met.
// If a signaler claimed the flag in the window, its wake is in flight (the
// channel is buffered, the signaler never blocks) and must be drained here.
//
//mmlint:noalloc
func (w *gateWaiter) unpark() {
	if !w.parked.Swap(false) {
		<-w.ch
	}
}

// block waits for a signaler's wake. The signaler has already cleared the
// parked flag by the time the wake is received.
//
//mmlint:noalloc
func (w *gateWaiter) block() { <-w.ch }

// wake releases the waiter iff it is parked (or mid-park: the flag is
// published before the waiter's final condition check, so a claimed flag
// with a sent wake is never lost).
//
//mmlint:noalloc
func (w *gateWaiter) wake() {
	if w.parked.Swap(false) {
		w.ch <- struct{}{}
	}
}

// phaseGate coordinates one coordinator and len(workers) persistent worker
// goroutines through the per-round phases.
type phaseGate struct {
	phase   int8          // command for this epoch; written before the bump
	epoch   atomic.Uint32 // the sense word: bumped to release the workers
	pending atomic.Int32  // workers yet to finish the current phase
	spin    int           // per-wait spin budget (0 when oversubscribed)

	coord   gateWaiter
	workers []gateWaiter
}

// phaseExit is the shutdown command.
const phaseExit int8 = 0

func newPhaseGate(workers int) *phaseGate {
	g := &phaseGate{workers: make([]gateWaiter, workers)}
	g.coord.ch = make(chan struct{}, 1)
	for i := range g.workers {
		g.workers[i].ch = make(chan struct{}, 1)
	}
	// Spinning is only productive when every participant (the workers plus
	// the coordinator) can hold a core at once.
	//mmlint:nondet sizes the gate's spin budget only; wait strategy never reaches transcripts
	if runtime.GOMAXPROCS(0) > workers {
		g.spin = gateSpin
	}
	return g
}

// release publishes the phase and flips the sense, starting all workers on
// it. Coordinator-only; must not be called again before wait returns.
//
//mmlint:noalloc
func (g *phaseGate) release(phase int8) {
	g.phase = phase
	g.pending.Store(int32(len(g.workers)))
	g.epoch.Add(1)
	for i := range g.workers {
		g.workers[i].wake()
	}
}

// wait blocks the coordinator until every worker has finished the phase.
// A wake is only a hint: if the coordinator left a previous wait via the
// spin path while the last worker's wake was still in flight, that stale
// wake can claim a later park. pending==0 is the sole authority, so the
// loop re-checks it after every block and re-parks on a spurious wake.
//
//mmlint:noalloc
func (g *phaseGate) wait() {
	for {
		for s := 0; s < g.spin; s++ {
			if g.pending.Load() == 0 {
				return
			}
		}
		g.coord.park()
		if g.pending.Load() == 0 {
			g.coord.unpark()
			return
		}
		g.coord.block()
		if g.pending.Load() == 0 {
			return
		}
	}
}

// await blocks worker i until the epoch moves past last, and returns the
// new epoch. Worker-side of release. As in wait, a wake is only a hint: a
// worker that observed the epoch bump by spinning can finish the phase and
// park for the next one before the coordinator's release loop delivers the
// previous wake, and that stale wake then claims the new park. The epoch
// flip is the sole authority, so the loop re-parks until it advances —
// otherwise the caller would re-run the same phase and double-finish.
//
//mmlint:noalloc
func (g *phaseGate) await(i int, last uint32) uint32 {
	w := &g.workers[i]
	for {
		for s := 0; s < g.spin; s++ {
			if v := g.epoch.Load(); v != last {
				return v
			}
		}
		w.park()
		if v := g.epoch.Load(); v != last {
			w.unpark()
			return v
		}
		w.block()
		if v := g.epoch.Load(); v != last {
			return v
		}
	}
}

// finish marks worker i's phase work complete, waking the coordinator on
// the last arrival.
//
//mmlint:noalloc
func (g *phaseGate) finish() {
	if g.pending.Add(-1) == 0 {
		g.coord.wake()
	}
}
