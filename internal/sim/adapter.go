package sim

// adapter.go keeps the goroutine+Tick API working on the step engine: each
// node's Program still runs as a blocking goroutine against its Ctx, but it
// is resumed by a goroutineMachine from the step engine's worker pool
// instead of the old central scheduler loop, and its staged sends and
// channel writes are committed through the engine's sharded buffers. The
// round structure, metrics, and per-node RNG derivation are identical to
// the goroutine engine, so both engines produce bit-identical runs.

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// runStepAdapter executes a goroutine Program on the step engine.
func runStepAdapter(g graph.Topology, program Program, cfg config) (*Result, error) {
	if cfg.ckpt != nil || cfg.resume != nil {
		// The adapter's machines hold blocked program goroutines, whose
		// stacks cannot be serialized; only native step programs checkpoint.
		return nil, ErrNotCheckpointable
	}
	prog := func(sc *StepCtx) Machine {
		ctx := newCtx(g, sc.id, cfg.seed)
		// The engine owns the RNG derivation: a crash-restarted node's
		// program must see the incarnation's seed, not the original's
		// (for incarnation 0 the two agree).
		ctx.rngSeed = sc.eng.seedOf(sc.id)
		return &goroutineMachine{sc: sc, ctx: ctx, program: program}
	}
	// Adapter runs share the engine's recycled inbox arenas: an Input and
	// its Msgs are valid only until the Tick that received them returns —
	// the same ownership rule Machine.Step documents. Every program in this
	// repo consumes its messages inside the round, and in exchange adapter
	// delivery allocates nothing in steady state.
	return runStepEngine(g, prog, cfg)
}

// goroutineMachine drives one legacy Program goroutine from Machine.Step.
type goroutineMachine struct {
	sc      *StepCtx
	ctx     *Ctx
	program Program
	started bool
}

// Step resumes the program for one round: round 0 starts the goroutine
// (the code a Program runs before its first Tick), later rounds hand the
// round's input to the Tick the program is blocked in. Once the program
// commits (Tick) or returns, its staged sends and channel write are copied
// into the step engine's buffers.
func (m *goroutineMachine) Step(in Input) bool {
	if !m.started {
		m.started = true
		go m.runProgram()
	} else {
		m.ctx.resume <- in
	}
	ticked := <-m.ctx.done
	m.commitOutputs()
	return !ticked
}

// commitOutputs copies the round's staged sends and channel write from the
// program's Ctx into the engine's per-shard buffers. It runs for every node
// in every round of an adapter run, so it is held to the same contract as
// the native engine's delivery phase: the shard stage and the Ctx's out
// buffer are recycled across rounds, and nothing here may allocate.
//
//mmlint:noalloc
func (m *goroutineMachine) commitOutputs() {
	sd := m.sc.shard()
	for _, o := range m.ctx.out {
		// link -1: Ctx already enforced the one-send-per-link rule.
		sd.stage = append(sd.stage, stagedSend{to: o.to, edgeID: int32(o.edgeID), link: -1, payload: o.payload})
	}
	m.ctx.out = m.ctx.out[:0]
	clear(m.ctx.sentLink)
	if m.ctx.chPending {
		sd.chPending = true
		sd.chWrite = m.ctx.chWrite
		m.ctx.chPending = false
		m.ctx.chWrite = nil
	}
}

// runProgram is the per-node goroutine body, identical in error and panic
// handling to the goroutine engine's.
func (m *goroutineMachine) runProgram() {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errAborted) {
				// Clean abort unwind; the primary error is already recorded.
			} else {
				m.sc.eng.recordErr(m.ctx.id, fmt.Errorf("sim: node %d panicked: %v", m.ctx.id, r))
			}
		}
		m.ctx.done <- false
	}()
	if err := m.program(m.ctx); err != nil {
		m.sc.eng.recordErr(m.ctx.id, fmt.Errorf("sim: node %d: %w", m.ctx.id, err))
	}
}

// Result returns whatever the program recorded via Ctx.SetResult.
func (m *goroutineMachine) Result() any { return m.ctx.result }

// abortRun unwinds a program goroutine blocked in Tick when the engine
// aborts the run, exactly as the goroutine engine does: closing resume
// panics the Tick with errAborted, and the final done send is drained.
func (m *goroutineMachine) abortRun() {
	if !m.started {
		return
	}
	close(m.ctx.resume)
	<-m.ctx.done
}
