package sim

// adapter.go keeps the goroutine+Tick API working on the step engine: each
// node's Program still runs as a blocking goroutine against its Ctx, but it
// is resumed by a goroutineMachine from the step engine's worker pool
// instead of the old central scheduler loop, and its staged sends and
// channel writes are committed through the engine's sharded buffers. The
// round structure, metrics, and per-node RNG derivation are identical to
// the goroutine engine, so both engines produce bit-identical runs.

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// runStepAdapter executes a goroutine Program on the step engine.
func runStepAdapter(g graph.Topology, program Program, cfg config) (*Result, error) {
	if cfg.ckpt != nil || cfg.resume != nil {
		// The adapter's machines hold blocked program goroutines, whose
		// stacks cannot be serialized; only native step programs checkpoint.
		return nil, ErrNotCheckpointable
	}
	prog := func(sc *StepCtx) Machine {
		ctx := newCtx(g, sc.id, cfg.seed)
		// The engine owns the RNG derivation: a crash-restarted node's
		// replacement StepCtx carries the incarnation's seed, which must
		// reach the program's Ctx (for incarnation 0 the two agree).
		ctx.rngSeed = sc.rngSeed
		return &goroutineMachine{sc: sc, ctx: ctx, program: program}
	}
	// Inbox buffers are not reused: legacy programs may hold an Input's
	// Msgs across Tick, which the goroutine engine always allowed. The
	// engine instead batches each round's deliveries into one fresh arena
	// per shard (deliverArena), so the adapter path still costs O(1)
	// allocations per shard per round rather than one per recipient.
	return runStepEngine(g, prog, cfg, false)
}

// goroutineMachine drives one legacy Program goroutine from Machine.Step.
type goroutineMachine struct {
	sc      *StepCtx
	ctx     *Ctx
	program Program
	started bool
}

// Step resumes the program for one round: round 0 starts the goroutine
// (the code a Program runs before its first Tick), later rounds hand the
// round's input to the Tick the program is blocked in. Once the program
// commits (Tick) or returns, its staged sends and channel write are copied
// into the step engine's buffers.
func (m *goroutineMachine) Step(in Input) bool {
	if !m.started {
		m.started = true
		go m.runProgram()
	} else {
		m.ctx.resume <- in
	}
	ticked := <-m.ctx.done

	for _, o := range m.ctx.out {
		// link -1: Ctx already enforced the one-send-per-link rule.
		m.sc.out = append(m.sc.out, stagedSend{to: o.to, edgeID: int32(o.edgeID), link: -1, payload: o.payload})
	}
	m.ctx.out = m.ctx.out[:0]
	clear(m.ctx.sentLink)
	if m.ctx.chPending {
		m.sc.chPending = true
		m.sc.chWrite = m.ctx.chWrite
		m.ctx.chPending = false
		m.ctx.chWrite = nil
	}
	return !ticked
}

// runProgram is the per-node goroutine body, identical in error and panic
// handling to the goroutine engine's.
func (m *goroutineMachine) runProgram() {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errAborted) {
				// Clean abort unwind; the primary error is already recorded.
			} else {
				m.sc.eng.recordErr(m.ctx.id, fmt.Errorf("sim: node %d panicked: %v", m.ctx.id, r))
			}
		}
		m.ctx.done <- false
	}()
	if err := m.program(m.ctx); err != nil {
		m.sc.eng.recordErr(m.ctx.id, fmt.Errorf("sim: node %d: %w", m.ctx.id, err))
	}
}

// Result returns whatever the program recorded via Ctx.SetResult.
func (m *goroutineMachine) Result() any { return m.ctx.result }

// abortRun unwinds a program goroutine blocked in Tick when the engine
// aborts the run, exactly as the goroutine engine does: closing resume
// panics the Tick with errAborted, and the final done send is drained.
func (m *goroutineMachine) abortRun() {
	if !m.started {
		return
	}
	close(m.ctx.resume)
	<-m.ctx.done
}
