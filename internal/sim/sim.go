// Package sim implements the synchronous multimedia-network simulator of the
// paper's model (§2): an arbitrary-topology point-to-point message-passing
// network combined with a slotted multiaccess collision channel.
//
// Execution proceeds in lock-step rounds. In every round each node reads the
// messages sent to it in the previous round together with the previous
// slot's resolution, computes, and then sends at most one message per
// incident link and optionally writes the channel slot. A slot resolves to
// Idle (no writers), Success (exactly one writer — its payload is heard by
// every node), or Collision (two or more writers — detected by every node).
//
// # Execution models
//
// The package offers two engines over the same model:
//
//   - EngineGoroutine (the historical default) runs each node's Program as
//     a goroutine against a blocking Ctx: Tick commits the current round
//     and blocks until a central scheduler delivers the next round's input.
//     Convenient — programs read as straight-line code — but every node
//     costs two channel handoffs per round, which caps practical runs at
//     roughly 10⁴–10⁵ nodes.
//
//   - EngineStep (RunStep) executes explicit per-node step machines on a
//     sharded worker pool: nodes are partitioned into contiguous shards,
//     inbox/outbox buffers are preallocated per shard and reused across
//     rounds, message delivery is double-buffered between a compute phase
//     and a delivery phase, and each round costs a single fan-out/fan-in
//     barrier instead of 2n channel handoffs. Machines may additionally
//     call StepCtx.Sleep to park until a message arrives, so protocols
//     whose activity is a travelling wavefront run in time proportional to
//     the work done, not nodes × rounds. This is the engine for
//     million-node simulations.
//
// Run(..., WithEngine(EngineStep)) executes an unmodified goroutine Program
// on the step engine through a built-in adapter, so every existing protocol
// works on both engines and produces identical results and metrics.
//
// # Determinism contract
//
// Within a round nodes touch only their own state; each node draws from a
// private RNG derived from the master seed and its node id. A run with a
// given (graph, program, seed) therefore yields a bit-identical transcript
// — the same per-round messages, slot resolutions, results, and Metrics —
// regardless of the engine chosen, the worker count, and goroutine or
// worker scheduling. Inboxes are always delivered sorted by (sender id,
// edge id).
//
// # Fault injection
//
// Both engines apply an optional fault plan (WithFaults, or the
// process-wide DefaultFaults) at their delivery and slot-resolution choke
// points: crash-stopped nodes, dropped/delayed/duplicated messages, and
// jammed channel slots, as compiled by internal/fault. The determinism
// contract extends to faults — a fixed (graph, program, seed, plan) yields
// a bit-identical transcript on either engine at any worker count.
package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Payload is the application-defined content of a point-to-point message or
// a channel slot. The model bounds payloads by O(log n) bits plus one data
// element; programs keep payloads to a constant number of ids and weights.
type Payload any

// Message is a point-to-point message as seen by its recipient.
type Message struct {
	From    graph.NodeID
	EdgeID  int // id of the link it arrived on (index into the graph's edge list)
	Payload Payload
}

// SlotState is the resolution of one multiaccess channel slot.
type SlotState int

// Slot states, in the paper's terminology.
const (
	SlotIdle SlotState = iota + 1
	SlotSuccess
	SlotCollision
)

// String returns the paper's name for the state.
func (s SlotState) String() string {
	switch s {
	case SlotIdle:
		return "idle"
	case SlotSuccess:
		return "success"
	case SlotCollision:
		return "collision"
	default:
		return fmt.Sprintf("SlotState(%d)", int(s))
	}
}

// Slot is the globally-visible outcome of one channel slot. From and Payload
// are meaningful only when State == SlotSuccess.
type Slot struct {
	State   SlotState
	From    graph.NodeID
	Payload Payload
}

// BusyTone is the distinguished payload nodes transmit on the channel to
// keep a slot non-idle, implementing the channel-as-synchronizer barrier of
// §7.1: an idle slot is a global clock pulse.
type BusyTone struct{}

// Input is what a node receives at the start of a round: the messages sent
// to it in the previous round (sorted by sender id, then edge id) and the
// previous slot's resolution.
type Input struct {
	Round int // the round now beginning (first Tick returns Round == 1)
	Msgs  []Message
	Slot  Slot
}

// Metrics aggregates the paper's complexity measures over one run, plus the
// fault-injection counters (zero unless the run had a fault plan).
type Metrics struct {
	Rounds         int   // time complexity: number of rounds executed
	Messages       int64 // point-to-point message complexity
	SlotsIdle      int64
	SlotsSuccess   int64
	SlotsCollision int64
	DroppedHalted  int64 // messages addressed to already-halted nodes

	Crashed         int64 // nodes crash-stopped by fault injection
	DroppedFault    int64 // messages destroyed by link faults
	Delayed         int64 // messages deferred by delay faults
	Duplicated      int64 // extra message copies scheduled by duplicate faults
	SlotsJammed     int64 // slots forced to collision by channel jamming
	PartitionedDrop int64 // messages destroyed because a partition cut their link
	Restarted       int64 // crashed nodes revived by restart faults
	Skewed          int64 // messages deferred because their sender's clock is skewed
}

// Slots returns the total number of channel slots with at least one writer.
func (m *Metrics) Slots() int64 { return m.SlotsSuccess + m.SlotsCollision }

// Communication returns the paper's communication complexity: messages plus
// time (information received over both media).
func (m *Metrics) Communication() int64 { return m.Messages + int64(m.Rounds) }

// Add accumulates other into m (used to total multi-stage algorithms).
func (m *Metrics) Add(other *Metrics) {
	m.Rounds += other.Rounds
	m.Messages += other.Messages
	m.SlotsIdle += other.SlotsIdle
	m.SlotsSuccess += other.SlotsSuccess
	m.SlotsCollision += other.SlotsCollision
	m.DroppedHalted += other.DroppedHalted
	m.Crashed += other.Crashed
	m.DroppedFault += other.DroppedFault
	m.Delayed += other.Delayed
	m.Duplicated += other.Duplicated
	m.SlotsJammed += other.SlotsJammed
	m.PartitionedDrop += other.PartitionedDrop
	m.Restarted += other.Restarted
	m.Skewed += other.Skewed
}

// MarshalJSON renders the metrics as a flat snake_case object including the
// derived totals, the machine-readable form emitted by mmnet -json.
func (m Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Rounds          int   `json:"rounds"`
		Messages        int64 `json:"messages"`
		SlotsIdle       int64 `json:"slots_idle"`
		SlotsSuccess    int64 `json:"slots_success"`
		SlotsCollision  int64 `json:"slots_collision"`
		SlotsJammed     int64 `json:"slots_jammed"`
		Slots           int64 `json:"slots"`
		Communication   int64 `json:"communication"`
		DroppedHalted   int64 `json:"dropped_halted"`
		Crashed         int64 `json:"crashed"`
		DroppedFault    int64 `json:"dropped_fault"`
		Delayed         int64 `json:"delayed"`
		Duplicated      int64 `json:"duplicated"`
		PartitionedDrop int64 `json:"partitioned_drop"`
		Restarted       int64 `json:"restarted"`
		Skewed          int64 `json:"skewed"`
	}{
		m.Rounds, m.Messages, m.SlotsIdle, m.SlotsSuccess, m.SlotsCollision,
		m.SlotsJammed, m.Slots(), m.Communication(), m.DroppedHalted,
		m.Crashed, m.DroppedFault, m.Delayed, m.Duplicated,
		m.PartitionedDrop, m.Restarted, m.Skewed,
	})
}

// Program is the code run by every node. It must communicate only through
// its Ctx and may keep arbitrary local state. Returning a non-nil error
// aborts the entire run. Programs typically branch on ctx.ID().
type Program func(ctx *Ctx) error

// ErrMaxRounds is returned by Run when the round budget is exhausted before
// every node halts, which almost always indicates a livelocked protocol.
var ErrMaxRounds = errors.New("sim: maximum round count exceeded")

// errAborted is the sentinel panic used to unwind node goroutines when the
// run aborts; it never escapes the engine.
var errAborted = errors.New("sim: run aborted")

type config struct {
	seed      int64
	maxRounds int
	engine    Engine
	workers   int
	faults    *fault.Plan
	faultsSet bool
	sync      bool
	rec       Recorder
	tw        *TranscriptWriter
	ckpt      *CheckpointSpec
	resume    *Checkpoint
}

// caps derives the fault capabilities this run's layer supports: clock skew
// exists only under the §7.1 synchronizer.
func (c *config) caps() fault.Caps { return fault.Caps{Skew: c.sync} }

// plan resolves the run's fault plan: the WithFaults option when given,
// DefaultFaults otherwise. A nil plan means a fault-free run.
func (c *config) plan() *fault.Plan {
	if c.faultsSet {
		return c.faults
	}
	return DefaultFaults
}

// Option configures a run.
type Option func(*config)

// WithSeed sets the master seed from which every node's private RNG is
// derived. Runs with equal seeds are bit-for-bit reproducible.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithMaxRounds overrides the default round budget (a deadlock guard).
func WithMaxRounds(r int) Option { return func(c *config) { c.maxRounds = r } }

// DefaultMaxRounds, when positive, replaces the graph-derived round budget
// of every run that does not pass WithMaxRounds. Chaos experiments set it to
// bound the cost of wedged (livelocked) faulted runs; 0 keeps the generous
// per-graph default.
var DefaultMaxRounds int

// resolveMaxRounds fills the config's round budget after options applied.
func (c *config) resolveMaxRounds(g graph.Topology) {
	if c.maxRounds > 0 {
		return
	}
	if DefaultMaxRounds > 0 {
		c.maxRounds = DefaultMaxRounds
		return
	}
	c.maxRounds = defaultMaxRounds(g)
}

// WithEngine selects the execution model for this run; without it Run uses
// DefaultEngine. RunStep ignores it (it is always the step engine).
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// WithWorkers sets the step engine's worker count; 0 means DefaultWorkers
// (and, if that is also 0, GOMAXPROCS). The goroutine engine ignores it.
// By the determinism contract the worker count never changes a run's
// transcript, only its wall-clock time.
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// DefaultFaults is the fault plan a run uses when no WithFaults option is
// given; nil (the default) means fault-free. Commands set it from their
// -faults/-crash/-jam flags so every sim.Run a protocol performs — including
// the inner runs of multi-stage algorithms — executes under the plan, with
// each run's fault rounds counted from its own round 0.
var DefaultFaults *fault.Plan

// WithFaults runs the simulation under the given fault plan (nil for an
// explicitly fault-free run, overriding DefaultFaults). The plan is compiled
// against the run's graph; the determinism contract extends to faults: a
// fixed (graph, program, seed, plan) yields a bit-identical transcript on
// both engines and any worker count.
func WithFaults(p *fault.Plan) Option {
	return func(c *config) { c.faults = p; c.faultsSet = true }
}

// WithSynchronizer marks the run as a §7.1 synchronizer execution
// (internal/async drives the round structure as simulated clock pulses),
// enabling the fault capabilities that only mean something where a
// synchronizer owns per-node clocks — today that is skew: rules. Plain
// round-synchronous runs reject skew plans at compile time.
func WithSynchronizer() Option { return func(c *config) { c.sync = true } }

type outMsg struct {
	edgeID  int
	to      graph.NodeID
	payload Payload
}

// Ctx is a node's handle to the network. All methods must be called only
// from that node's program goroutine. Methods panic on model violations
// (two sends on one link in a round, two channel writes in a round); these
// are programming errors, not runtime conditions.
type Ctx struct {
	id      graph.NodeID
	topo    graph.Topology
	adj     []graph.Half   // this node's links, cached at construction
	rng     *rand.Rand     // created lazily from rngSeed on first use
	rngCS   *countedSource // rng's draw-counting source (checkpoint position)
	rngSeed int64

	round     int
	out       []outMsg
	sentLink  map[int]bool // edge ids written this round
	chWrite   Payload
	chPending bool

	linkByEdge map[int]int          // edge id -> local link index
	linkByPeer map[graph.NodeID]int // neighbor id -> local link index
	result     any

	resume chan Input
	done   chan bool // true = ticked (wants next round), false = halted
}

// ID returns this node's identifier.
func (c *Ctx) ID() graph.NodeID { return c.id }

// N returns the number of nodes in the network (known to all nodes, §2).
func (c *Ctx) N() int { return c.topo.N() }

// Topo returns the immutable network topology. Programs that model the
// weaker anonymous setting must restrict themselves to Adj/Degree.
func (c *Ctx) Topo() graph.Topology { return c.topo }

// Adj returns this node's incident links sorted by ascending weight — the
// paper's "ordered list of links".
func (c *Ctx) Adj() []graph.Half { return c.adj }

// Degree returns the number of incident links.
func (c *Ctx) Degree() int { return len(c.adj) }

// Round returns the current round number (0 before the first Tick).
func (c *Ctx) Round() int { return c.round }

// Rand returns this node's private deterministic RNG, created lazily so
// runs that never draw randomness pay nothing for it. The source counts
// its draws, so the generator's position is checkpointable.
func (c *Ctx) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng, c.rngCS = newNodeRand(c.rngSeed, 0)
	}
	return c.rng
}

// LinkOf returns the local link index of the given edge id.
func (c *Ctx) LinkOf(edgeID int) int {
	l, ok := c.linkByEdge[edgeID]
	if !ok {
		panic(fmt.Sprintf("sim: node %d has no link with edge id %d", c.id, edgeID))
	}
	return l
}

// Link returns the local link index leading to the given neighbor.
func (c *Ctx) Link(to graph.NodeID) (int, bool) {
	l, ok := c.linkByPeer[to]
	return l, ok
}

// Send queues a message on the link with the given local index for delivery
// at the start of the next round. At most one message may be sent per link
// per round.
func (c *Ctx) Send(link int, p Payload) {
	adj := c.Adj()
	if link < 0 || link >= len(adj) {
		panic(fmt.Sprintf("sim: node %d send on link %d of %d", c.id, link, len(adj)))
	}
	h := adj[link]
	if c.sentLink[int(h.EdgeID)] {
		panic(fmt.Sprintf("sim: node %d sent twice on edge %d in round %d", c.id, h.EdgeID, c.round))
	}
	c.sentLink[int(h.EdgeID)] = true
	c.out = append(c.out, outMsg{edgeID: int(h.EdgeID), to: h.To, payload: p})
}

// SendTo queues a message to the given neighbor.
func (c *Ctx) SendTo(to graph.NodeID, p Payload) {
	l, ok := c.Link(to)
	if !ok {
		panic(fmt.Sprintf("sim: node %d is not adjacent to %d", c.id, to))
	}
	c.Send(l, p)
}

// Broadcast writes p to the current channel slot. At most one write per
// round; the slot resolves to success only if this node is the sole writer.
func (c *Ctx) Broadcast(p Payload) {
	if c.chPending {
		panic(fmt.Sprintf("sim: node %d wrote the channel twice in round %d", c.id, c.round))
	}
	c.chPending = true
	c.chWrite = p
}

// Busy transmits a busy tone on the channel this round (§7.1 barrier).
func (c *Ctx) Busy() { c.Broadcast(BusyTone{}) }

// SetResult records this node's final output, retrievable from Run's Results.
func (c *Ctx) SetResult(v any) { c.result = v }

// Tick commits the current round's sends and channel write, blocks until
// every node has committed, and returns the next round's input.
func (c *Ctx) Tick() Input {
	c.done <- true
	in, ok := <-c.resume
	if !ok {
		panic(errAborted)
	}
	c.round = in.Round
	return in
}

// Result holds the outcome of a run.
type Result struct {
	Metrics Metrics
	Results []any // per-node values recorded via Ctx.SetResult
}

// newCtx builds the blocking per-node handle shared by the goroutine engine
// and the step engine's compatibility adapter. The node's adjacency is
// cached up front (the stored form hands out its slice for free; implicit
// forms compute it once per node), so Adj/Degree stay O(1) per call.
func newCtx(t graph.Topology, id graph.NodeID, seed int64) *Ctx {
	adj := t.Adj(id)
	ctx := &Ctx{
		id:         id,
		topo:       t,
		adj:        adj,
		rngSeed:    nodeSeed(seed, id),
		sentLink:   make(map[int]bool),
		linkByEdge: make(map[int]int, len(adj)),
		linkByPeer: make(map[graph.NodeID]int, len(adj)),
		resume:     make(chan Input, 1),
		done:       make(chan bool, 1),
	}
	for l, h := range adj {
		ctx.linkByEdge[int(h.EdgeID)] = l
		ctx.linkByPeer[h.To] = l
	}
	return ctx
}

// Run executes program on every node of g — any graph.Topology form —
// until all programs return, and returns aggregate metrics and per-node
// results. The first program error (or panic, or an exhausted round budget)
// aborts the run. The engine is chosen with WithEngine (DefaultEngine
// otherwise); both engines, any worker count, and both topology forms of
// the same spec produce identical results and metrics for the same seed.
func Run(g graph.Topology, program Program, opts ...Option) (*Result, error) {
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.resolveMaxRounds(g)
	engine := cfg.engine
	if engine == 0 {
		engine = DefaultEngine
	}
	switch engine {
	case EngineStep:
		return runStepAdapter(g, program, cfg)
	case EngineGoroutine:
		return runGoroutine(g, program, cfg)
	default:
		return nil, fmt.Errorf("sim: unknown engine %d", engine)
	}
}

// pendingMsg is one delayed or duplicated message held by the goroutine
// engine until its fault-assigned delivery round.
type pendingMsg struct {
	to  graph.NodeID
	msg Message
}

// runGoroutine is the historical engine: one goroutine per node, resumed
// round by round from a single scheduler loop.
func runGoroutine(g graph.Topology, program Program, cfg config) (*Result, error) {
	if cfg.ckpt != nil || cfg.resume != nil {
		// Goroutine stacks cannot be serialized; checkpointing is a step
		// engine capability (Resume always runs the step engine).
		return nil, ErrNotCheckpointable
	}
	inj, err := fault.CompileFor(cfg.plan(), g, cfg.caps())
	if err != nil {
		return nil, err
	}
	n := g.N()
	rec := cfg.recorder()
	if rec != nil {
		rec.RunStart(n, EngineGoroutine, 1, 1)
	}
	tw := cfg.transcript()
	if tw != nil {
		tw.begin(n, cfg.seed, cfg.planString(), "")
	}
	ctxs := make([]*Ctx, n)
	for v := 0; v < n; v++ {
		ctxs[v] = newCtx(g, graph.NodeID(v), cfg.seed)
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		errNode  graph.NodeID
		firstErr error
	)
	// Errors compete only within one round (the run aborts at its end), so
	// keeping the lowest-node error makes the reported failure independent
	// of goroutine scheduling — part of the determinism contract, mirrored
	// by the step engine. Engine-level errors record as node -1.
	recordErr := func(node graph.NodeID, err error) {
		errMu.Lock()
		defer errMu.Unlock()
		if firstErr == nil || node < errNode {
			errNode, firstErr = node, err
		}
	}

	// spawn launches one node goroutine (initial start and restart revivals
	// share it): run the program, record the first error, and always hand
	// the scheduler a final halt signal.
	spawn := func(ctx *Ctx) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if err, ok := r.(error); ok && errors.Is(err, errAborted) {
						// Clean abort unwind; the primary error is already recorded.
					} else {
						recordErr(ctx.id, fmt.Errorf("sim: node %d panicked: %v", ctx.id, r))
					}
				}
				ctx.done <- false
			}()
			if err := program(ctx); err != nil {
				recordErr(ctx.id, fmt.Errorf("sim: node %d: %w", ctx.id, err))
			}
		}()
	}
	for v := 0; v < n; v++ {
		spawn(ctxs[v])
	}

	res := &Result{Results: make([]any, n)}
	met := &res.Metrics
	inboxes := make([][]Message, n)
	var pending map[int][]pendingMsg // delayed messages by delivery round
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	aliveCount := n
	var (
		crashed     []bool // fault-crashed (not normally-halted) nodes, revivable by restart
		roundBase   []int  // global round of each node's latest incarnation's initial compute
		incarnation []int  // how many times each node has been revived
	)
	if inj.HasRestarts() {
		crashed = make([]bool, n)
		roundBase = make([]int, n)
		incarnation = make([]int, n)
	}

	for round := 0; ; round++ {
		// Revive the crashed nodes whose restart is scheduled for this
		// round: a fresh context (reset protocol state, incarnation-keyed
		// RNG stream) performs its initial compute alongside everyone
		// else's compute round. Restart only undoes a crash — a node that
		// halted on its own stays halted.
		for _, v := range inj.RestartsAt(round) {
			if alive[v] || !crashed[v] {
				continue
			}
			crashed[v] = false
			incarnation[v]++
			roundBase[v] = round
			ctx := newCtx(g, v, cfg.seed)
			ctx.rngSeed = nodeSeedAt(cfg.seed, v, incarnation[v])
			ctxs[v] = ctx
			alive[v] = true
			aliveCount++
			met.Restarted++
			spawn(ctx)
		}
		var tStep, tDeliver int64
		if rec != nil {
			tStep = rec.BeginPhase(PhaseStep, 0)
		}
		// Wait for every live node to either tick or halt. After receiving a
		// node's done, reading its Ctx fields is race-free.
		for v, ctx := range ctxs {
			if !alive[v] {
				continue
			}
			if ticked := <-ctx.done; !ticked {
				alive[v] = false
				aliveCount--
			}
		}

		met.Rounds = round + 1
		if rec != nil {
			rec.EndPhase(PhaseStep, 0, round, tStep)
			tDeliver = rec.BeginPhase(PhaseDeliver, 0)
		}

		// Resolve the channel slot.
		var writer *Ctx
		writers := 0
		for _, ctx := range ctxs {
			if ctx.chPending {
				writers++
				writer = ctx
			}
		}
		slot := Slot{State: SlotIdle}
		if inj.Jammed(round + 1) {
			// A jammed slot hides any writer behind a forced collision.
			met.SlotsJammed++
			slot = Slot{State: SlotCollision}
		} else {
			switch {
			case writers == 0:
				met.SlotsIdle++
			case writers == 1:
				met.SlotsSuccess++
				slot = Slot{State: SlotSuccess, From: writer.id, Payload: writer.chWrite}
			default:
				met.SlotsCollision++
				slot = Slot{State: SlotCollision}
			}
		}

		// Deliver point-to-point messages: delayed ones due this round
		// first, then this round's sends, each through the fault hook.
		for i := range inboxes {
			inboxes[i] = nil
		}
		if late := pending[round+1]; len(late) > 0 {
			delete(pending, round+1)
			for _, pm := range late {
				inboxes[pm.to] = append(inboxes[pm.to], pm.msg)
			}
		}
		msgFaults := inj.HasMsgFaults()
		for _, ctx := range ctxs {
			for _, m := range ctx.out {
				met.Messages++
				msg := Message{From: ctx.id, EdgeID: m.edgeID, Payload: m.payload}
				if msgFaults {
					switch fate, lag := inj.MsgFate(m.edgeID, ctx.id, m.to, round+1); fate {
					case fault.DropMsg:
						met.DroppedFault++
						continue
					case fault.PartitionDrop:
						met.PartitionedDrop++
						continue
					case fault.DelayMsg, fault.DupMsg, fault.SkewMsg:
						if pending == nil {
							pending = make(map[int][]pendingMsg)
						}
						pending[round+1+lag] = append(pending[round+1+lag], pendingMsg{to: m.to, msg: msg})
						if fate == fault.DelayMsg {
							met.Delayed++
							continue
						}
						if fate == fault.SkewMsg {
							met.Skewed++
							continue
						}
						met.Duplicated++
					}
				}
				inboxes[m.to] = append(inboxes[m.to], msg)
			}
			// Reset per-round node state. Safe: live nodes are blocked in
			// Tick; halted nodes have returned.
			ctx.out = ctx.out[:0]
			clear(ctx.sentLink)
			ctx.chPending = false
			ctx.chWrite = nil
		}
		for i := range inboxes {
			if box := inboxes[i]; len(box) > 1 {
				sortInbox(box)
			}
		}

		// Crash-stop the nodes scheduled to fail before observing round+1:
		// unwind the goroutine exactly as an abort does, without recording
		// an error. Messages addressed to them join the halted-drop count.
		for _, v := range inj.CrashesAt(round + 1) {
			if !alive[v] {
				continue
			}
			close(ctxs[v].resume)
			<-ctxs[v].done
			alive[v] = false
			aliveCount--
			met.Crashed++
			if crashed != nil {
				crashed[v] = true
			}
		}

		if aliveCount == 0 {
			if rec != nil {
				rec.EndPhase(PhaseDeliver, 0, round, tDeliver)
				rec.RoundEnd(round+1, aliveCount, slot.State, met)
			}
			break
		}

		errMu.Lock()
		failed := firstErr != nil
		errMu.Unlock()
		if !failed && round+1 > cfg.maxRounds {
			recordErr(-1, fmt.Errorf("%w: budget %d", ErrMaxRounds, cfg.maxRounds))
			failed = true
		}
		if failed {
			// Abort: unwind every live goroutine and drain their final dones.
			for v, ctx := range ctxs {
				if alive[v] {
					close(ctx.resume)
				}
			}
			for v, ctx := range ctxs {
				if alive[v] {
					<-ctx.done
					alive[v] = false
				}
			}
			if rec != nil {
				rec.EndPhase(PhaseDeliver, 0, round, tDeliver)
				rec.RoundEnd(round+1, 0, slot.State, met)
			}
			break
		}

		// Count the messages addressed to halted nodes before the round's
		// sample is taken, so each round's DroppedHalted lands in its own
		// series delta. Only the continuing path accrues them — a run that
		// ends this round never observed those inboxes, exactly as before.
		for v := range ctxs {
			if !alive[v] && len(inboxes[v]) > 0 {
				met.DroppedHalted += int64(len(inboxes[v]))
				inboxes[v] = nil
			}
		}
		if tw != nil {
			tw.goroutineRound(round+1, slot, aliveCount, met, inboxes)
		}
		if rec != nil {
			rec.EndPhase(PhaseDeliver, 0, round, tDeliver)
			rec.RoundEnd(round+1, aliveCount, slot.State, met)
		}

		for v, ctx := range ctxs {
			if !alive[v] {
				continue
			}
			in := Input{Round: round + 1, Msgs: inboxes[v], Slot: slot}
			if roundBase != nil {
				// A revived incarnation counts rounds from its own initial
				// compute: global round roundBase[v] is its local round 0.
				in.Round -= roundBase[v]
			}
			ctx.resume <- in
		}
	}

	wg.Wait()
	if rec != nil {
		rec.RunEnd(met)
	}
	for v, ctx := range ctxs {
		res.Results[v] = ctx.result
	}
	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if tw != nil {
		tw.finalFrame(met, res.Results, err)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// goroutineRound emits one goroutine-engine round frame: the round's slot,
// live-node count, cumulative metrics, and a digest of every nonempty inbox
// about to be handed to the nodes.
func (tw *TranscriptWriter) goroutineRound(round int, slot Slot, alive int, met *Metrics, inboxes [][]Message) {
	f := RoundFrame{Round: round, Slot: slot.State, Alive: alive, Met: *met}
	if slot.State == SlotSuccess {
		f.From = slot.From
		f.SlotDigest = payloadDigest(slot.Payload)
	}
	f.Nodes = tw.nodes[:0]
	for v := range inboxes {
		if len(inboxes[v]) == 0 {
			continue
		}
		var d uint64
		d, tw.scratch = inboxDigest(inboxes[v], tw.scratch)
		f.Nodes = append(f.Nodes, NodeDigest{Node: graph.NodeID(v), Digest: d})
	}
	tw.nodes = f.Nodes
	tw.WriteRound(&f)
}

// finalFrame closes an engine's transcript with the run's outcome.
func (tw *TranscriptWriter) finalFrame(met *Metrics, results []any, runErr error) {
	f := FinalFrame{Met: *met, ResultsDigest: resultsDigest(results), N: len(results)}
	if runErr != nil {
		f.Err = runErr.Error()
	}
	tw.WriteFinal(&f)
}

// defaultMaxRounds budgets generously above any algorithm in this module:
// all are O(n · polylog n) rounds at worst.
func defaultMaxRounds(g graph.Topology) int {
	return 200*g.N() + 20_000
}
