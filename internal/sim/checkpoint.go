package sim

// checkpoint.go is the step engine's checkpoint/restore seam: a versioned,
// self-describing binary snapshot of everything transcript-affecting at a
// round boundary, from which Resume continues the run bit-identically — the
// transcript of a checkpointed-and-resumed run stitches onto the original's
// prefix to exactly the bytes of an uninterrupted run (difftest-enforced).
//
// A checkpoint is captured at the top of a round iteration, coordinator-side
// with every worker parked at the phase gate, and records: the round and
// cumulative Metrics, the slot the next step phase will observe, per-node
// scheduler flags and results, per-node machine state (through the optional
// Snapshotter interface, with a gob fallback for machines with exported
// fields), per-node RNG positions (draw counts — see rng.go), undelivered
// inboxes, and the engine's in-flight delay/dup buffer. All of it is stored
// in canonical, shard-independent form — awake sets as per-node flags,
// pending messages sorted by (due, to, from, edge, payload) — so the same
// run checkpointed at the same round produces byte-identical checkpoints at
// any worker count, which is what cmd/mmreplay's bisector compares.
//
// What cannot checkpoint: the goroutine engine and the goroutine-program
// adapter (blocked goroutine stacks are not serializable — both return
// ErrNotCheckpointable), and native machines that neither implement
// Snapshotter nor gob-encode. Resume always runs the step engine.
//
// # Wire format (version 1)
//
//	"MMCP" | version byte | uvarint bodyLen | gob(Checkpoint) | crc32-IEEE(body), 4 bytes LE
//
// The gob body is self-describing; payload, result, and machine-state
// values carried in `any` fields must be gob-registered by their protocol
// packages (init-time gob.Register calls).

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/graph"
)

// CheckpointVersion is the checkpoint wire format version this package
// writes.
const CheckpointVersion = 1

const checkpointMagic = "MMCP"

// ErrNotCheckpointable is returned when checkpointing is requested of an
// execution mode that cannot snapshot its nodes: the goroutine engine and
// the goroutine-program adapter (their node state lives in goroutine
// stacks). Run native step programs on the step engine to checkpoint.
var ErrNotCheckpointable = errors.New("sim: goroutine programs cannot be checkpointed; use a native step program on the step engine")

// Snapshotter is the optional interface a Machine implements to make its
// runs checkpointable. SnapshotState returns an independent copy of the
// machine's round-to-round state (the machine keeps mutating after the
// capture, so shared slices or maps must be cloned); the returned value's
// concrete type must be gob-registered. RestoreState receives a value
// SnapshotState produced and overwrites the machine's state with it, after
// which stepping must continue exactly as the snapshotted machine would
// have. Machines without Snapshotter fall back to gob-encoding the machine
// value itself, which works only for machines whose state is exported.
type Snapshotter interface {
	SnapshotState() any
	RestoreState(state any)
}

// CheckpointSpec configures checkpoint capture for a run.
type CheckpointSpec struct {
	// Every captures a checkpoint each time this many rounds complete
	// (0 disables periodic capture).
	Every int
	// At captures at these specific completed-round counts.
	At []int
	// Sink receives each captured checkpoint; a sink error aborts the run.
	// The checkpoint is freshly built and owned by the sink.
	Sink func(*Checkpoint) error
}

// WithCheckpoints captures checkpoints during this run per the spec. Only
// the step engine running native step programs supports capture; other
// modes fail with ErrNotCheckpointable. Capture happens at round
// boundaries, coordinator-side, and never alters the run's transcript.
func WithCheckpoints(spec *CheckpointSpec) Option {
	return func(c *config) { c.ckpt = spec }
}

// ckptState is the engine's compiled capture schedule.
type ckptState struct {
	spec  *CheckpointSpec
	every int
	at    []int // sorted ascending
}

func newCkptState(spec *CheckpointSpec) *ckptState {
	ck := &ckptState{spec: spec, every: spec.Every}
	if len(spec.At) > 0 {
		ck.at = slices.Clone(spec.At)
		slices.Sort(ck.at)
	}
	return ck
}

// due reports whether a checkpoint is scheduled at the given completed-round
// count.
//
//mmlint:noalloc
func (ck *ckptState) due(round int) bool {
	if ck.every > 0 && round%ck.every == 0 {
		return true
	}
	if len(ck.at) > 0 {
		if _, found := slices.BinarySearch(ck.at, round); found {
			return true
		}
	}
	return false
}

// nextAfter returns the earliest scheduled capture round strictly after r —
// the fast-forward clamp that makes the engine land on capture rounds
// instead of skipping them.
//
//mmlint:noalloc
func (ck *ckptState) nextAfter(r int) (int, bool) {
	next, ok := 0, false
	if ck.every > 0 {
		if r < 0 {
			r = 0
		}
		next, ok = (r/ck.every+1)*ck.every, true
	}
	if len(ck.at) > 0 {
		if i := sort.SearchInts(ck.at, r+1); i < len(ck.at) && (!ok || ck.at[i] < next) {
			next, ok = ck.at[i], true
		}
	}
	return next, ok
}

// SlotCheckpoint is the slot the next step phase will observe.
type SlotCheckpoint struct {
	State   SlotState
	From    graph.NodeID
	Payload Payload
}

// NodeCheckpoint is one node's scheduler and protocol state.
type NodeCheckpoint struct {
	Halted    bool
	Scheduled bool
	Asleep    bool
	PulseWake bool

	HasRNG   bool
	RNGDraws uint64 // generator position: source draws consumed so far

	// Crash-restart state; all zero for runs without restart rules, which
	// keeps old checkpoints decoding unchanged (gob zero defaults).
	Crashed     bool // fault-crashed, so revivable by a restart rule
	Incarnation int  // restart count; keys the incarnation's RNG stream
	RoundBase   int  // global round the current incarnation joined at

	Result any // recorded result (halted nodes); nil otherwise

	HasState bool
	State    any    // Snapshotter state, when the machine implements it
	GobState []byte // gob fallback: the machine value itself
}

// InboxCheckpoint is one node's undelivered inbox (sorted by sender, edge).
type InboxCheckpoint struct {
	Node graph.NodeID
	Msgs []Message
}

// PendingCheckpoint is one in-flight delayed or duplicated message.
type PendingCheckpoint struct {
	Due     int // delivery round
	To      graph.NodeID
	From    graph.NodeID
	EdgeID  int
	Payload Payload
}

// Checkpoint is a step-engine run frozen at a round boundary. Its exported
// fields are the complete transcript-affecting state; WriteTo/ReadCheckpoint
// move it through the versioned binary encoding.
type Checkpoint struct {
	Round     int // completed rounds at capture
	N         int
	Graph     uint64 // adjacency fingerprint (topologyDigest); 0 in hand-built checkpoints
	Seed      int64
	Plan      string // fault plan DSL ("" = fault-free)
	MaxRounds int

	Alive   int
	Met     Metrics
	Slot    SlotCheckpoint
	Nodes   []NodeCheckpoint
	Inboxes []InboxCheckpoint
	Pending []PendingCheckpoint
}

// WriteTo streams the checkpoint in the versioned binary encoding.
func (cp *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(cp); err != nil {
		return 0, fmt.Errorf("sim: encode checkpoint: %w", err)
	}
	var hdr []byte
	hdr = append(hdr, checkpointMagic...)
	hdr = append(hdr, CheckpointVersion)
	hdr = binary.AppendUvarint(hdr, uint64(body.Len()))
	total := int64(0)
	for _, chunk := range [][]byte{hdr, body.Bytes(), crcOf(body.Bytes())} {
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func crcOf(b []byte) []byte {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b))
	return crc[:]
}

// Encode renders the checkpoint to its binary form in memory.
func (cp *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := cp.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadCheckpoint decodes one checkpoint, validating magic, version, and crc.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var prelude [5]byte
	if _, err := io.ReadFull(r, prelude[:]); err != nil {
		return nil, fmt.Errorf("sim: checkpoint prelude: %w", err)
	}
	if string(prelude[:4]) != checkpointMagic {
		return nil, fmt.Errorf("sim: not a checkpoint (magic %q)", prelude[:4])
	}
	if prelude[4] != CheckpointVersion {
		return nil, fmt.Errorf("sim: checkpoint version %d (reader supports %d)", prelude[4], CheckpointVersion)
	}
	size, err := binary.ReadUvarint(byteReaderOf(r))
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint length: %w", err)
	}
	if size > 1<<34 {
		return nil, fmt.Errorf("sim: checkpoint length %d implausible", size)
	}
	body := make([]byte, size+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("sim: checkpoint body: %w", err)
	}
	want := binary.LittleEndian.Uint32(body[size:])
	body = body[:size]
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("sim: checkpoint crc mismatch: %08x != %08x", got, want)
	}
	cp := &Checkpoint{}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(cp); err != nil {
		return nil, fmt.Errorf("sim: decode checkpoint: %w", err)
	}
	return cp, nil
}

// topologyDigest fingerprints the adjacency structure a checkpoint's state
// refers to: node and edge counts plus every node's link order (neighbor and
// edge id). Edge identities and link indices appear throughout the captured
// state — inboxes, pending messages, machine snapshots — so resuming on a
// graph with a different digest (same node count, different wiring or link
// order, e.g. the same generator under another seed) would silently corrupt
// the run instead of continuing it.
func topologyDigest(g graph.Topology) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) { h = (h ^ v) * prime }
	n := g.N()
	mix(uint64(n))
	mix(uint64(g.M()))
	var buf []graph.Half
	for v := 0; v < n; v++ {
		buf = g.AdjAppend(graph.NodeID(v), buf[:0])
		mix(uint64(len(buf)))
		for _, half := range buf {
			mix(uint64(half.To))
			mix(uint64(half.EdgeID))
		}
	}
	return h
}

// graphDigest caches topologyDigest for the engine's fixed topology.
func (e *stepEngine) graphDigest() uint64 {
	if e.topoDigest == 0 {
		e.topoDigest = topologyDigest(e.topo)
	}
	return e.topoDigest
}

// writeCheckpoint captures the engine's state at the top of the given
// iteration (round completed rounds) and hands it to the spec's sink. Runs
// coordinator-side between rounds: workers are parked, so reading shard and
// node state races nothing.
func (e *stepEngine) writeCheckpoint(round int) error {
	n := e.topo.N()
	cp := &Checkpoint{
		Round:     round,
		N:         n,
		Graph:     e.graphDigest(),
		Seed:      e.cfg.seed,
		Plan:      e.cfg.planString(),
		MaxRounds: e.cfg.maxRounds,
		Alive:     e.alive,
		Met:       e.met,
		Slot:      SlotCheckpoint{State: e.slot.State, From: e.slot.From, Payload: e.slot.Payload},
		Nodes:     make([]NodeCheckpoint, n),
	}
	if cp.Slot.State == 0 {
		// Round 0 has not resolved a slot yet; normalize to idle, which is
		// what the zero Slot means to machines.
		cp.Slot.State = SlotIdle
	}
	for v := range e.nodes {
		fl := e.flags[v]
		ns := &cp.Nodes[v]
		ns.Halted = fl&flagHalted != 0
		ns.Scheduled = fl&flagScheduled != 0
		ns.Asleep = fl&flagAsleep != 0
		ns.PulseWake = fl&flagPulseWake != 0
		sd := e.shardOf(graph.NodeID(v))
		if sd.rngDraws != nil {
			if draws := sd.rngDraws[v-sd.lo]; draws > 0 {
				ns.HasRNG = true
				ns.RNGDraws = draws
			}
		}
		if e.roundBase != nil {
			ns.Crashed = fl&flagCrashed != 0
			ns.Incarnation = int(e.incarn[v])
			ns.RoundBase = int(e.roundBase[v])
		}
		ns.Result = e.results[v]
		if ns.Halted {
			continue // dead machines are never stepped again; no state needed
		}
		if snap, ok := e.machines[v].(Snapshotter); ok {
			ns.HasState = true
			ns.State = snap.SnapshotState()
			continue
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(e.machines[v]); err != nil {
			return fmt.Errorf("machine %T of node %d: not a sim.Snapshotter and the gob fallback failed: %w", e.machines[v], v, err)
		}
		ns.GobState = buf.Bytes()
	}
	for v := range e.nodes {
		box := e.inboxOf(graph.NodeID(v))
		if e.flags[v]&flagHalted != 0 || len(box) == 0 {
			continue
		}
		cp.Inboxes = append(cp.Inboxes, InboxCheckpoint{
			Node: graph.NodeID(v),
			Msgs: slices.Clone(box),
		})
	}
	for i := range e.shards {
		sd := &e.shards[i]
		//mmlint:commutative gathered into one slice and canonically sorted below
		for due, lst := range sd.pending {
			for _, m := range lst {
				cp.Pending = append(cp.Pending, PendingCheckpoint{
					Due: due, To: m.to, From: m.from, EdgeID: int(m.edgeID), Payload: m.payload,
				})
			}
		}
	}
	// Canonical order: independent of shard partition (worker count) and map
	// iteration, so equal runs yield byte-equal checkpoints.
	slices.SortFunc(cp.Pending, func(a, b PendingCheckpoint) int {
		if c := a.Due - b.Due; c != 0 {
			return c
		}
		if c := int(a.To - b.To); c != 0 {
			return c
		}
		if c := int(a.From - b.From); c != 0 {
			return c
		}
		if c := a.EdgeID - b.EdgeID; c != 0 {
			return c
		}
		return strings.Compare(fmt.Sprintf("%#v", a.Payload), fmt.Sprintf("%#v", b.Payload))
	})
	return e.ck.spec.Sink(cp)
}

// restore loads a checkpoint into a freshly initialized engine: flags,
// results, RNG positions, machine state, inboxes, and the pending buffer,
// with awake lists and pulse-sleeper sets rebuilt from the per-node flags.
// Machine construction (the init hook) has already run, so Snapshotter
// restores overwrite freshly built machines.
func (e *stepEngine) restore(cp *Checkpoint) error {
	n := e.topo.N()
	if cp.N != n {
		return fmt.Errorf("sim: checkpoint is for %d nodes, graph has %d", cp.N, n)
	}
	if len(cp.Nodes) != n {
		return fmt.Errorf("sim: checkpoint has %d node records, want %d", len(cp.Nodes), n)
	}
	if cp.Graph != 0 && cp.Graph != e.graphDigest() {
		return fmt.Errorf("sim: checkpoint graph digest %016x does not match this topology's %016x — resume needs the exact graph (same generator, flags, and seed) the checkpoint was captured from", cp.Graph, e.graphDigest())
	}
	e.met = cp.Met
	e.alive = cp.Alive
	e.slot = Slot{State: cp.Slot.State, From: cp.Slot.From, Payload: cp.Slot.Payload}
	for i := range e.shards {
		e.shards[i].awake = e.shards[i].awake[:0]
	}
	for v := range cp.Nodes {
		id := graph.NodeID(v)
		ns := &cp.Nodes[v]
		var fl uint8
		if ns.Halted {
			fl |= flagHalted
		}
		if ns.Scheduled {
			fl |= flagScheduled
		}
		if ns.Asleep {
			fl |= flagAsleep
		}
		if ns.PulseWake {
			fl |= flagPulseWake
		}
		if ns.Crashed {
			fl |= flagCrashed
		}
		e.flags[v] = fl
		e.results[v] = ns.Result
		if e.roundBase != nil {
			// Before the RNG restore: seedOf reads the incarnation.
			e.incarn[v] = int32(ns.Incarnation)
			e.roundBase[v] = int32(ns.RoundBase)
		}
		sd := &e.shards[v/e.shardSize]
		if ns.HasRNG {
			if sd.rngWord == nil {
				sd.ensureRNG()
			}
			// Position the raw stream directly: the state word after
			// RNGDraws gamma steps from the incarnation's seed.
			sd.rngWord[v-sd.lo] = rngWordAt(e.seedOf(id), ns.RNGDraws)
			sd.rngDraws[v-sd.lo] = ns.RNGDraws
		}
		if !ns.Halted {
			switch {
			case ns.HasState:
				snap, ok := e.machines[v].(Snapshotter)
				if !ok {
					return fmt.Errorf("sim: checkpoint has Snapshotter state for node %d but machine %T does not implement it", v, e.machines[v])
				}
				snap.RestoreState(ns.State)
			case len(ns.GobState) > 0:
				if err := gob.NewDecoder(bytes.NewReader(ns.GobState)).Decode(e.machines[v]); err != nil {
					return fmt.Errorf("sim: restore machine %T of node %d: %w", e.machines[v], v, err)
				}
			}
		}
		if ns.Scheduled && !ns.Halted {
			sd.awake = append(sd.awake, int32(v))
		}
		if ns.PulseWake && !ns.Halted {
			sd.pulseSleepers = append(sd.pulseSleepers, int32(v))
		}
	}
	for i := range cp.Inboxes {
		ib := &cp.Inboxes[i]
		if int(ib.Node) < 0 || int(ib.Node) >= n {
			return fmt.Errorf("sim: checkpoint inbox for node %d out of range", ib.Node)
		}
		// Append the inbox into the owning shard's arena and record the
		// window. Offsets survive arena reallocation (they are indices, not
		// pointers), so plain appends are safe here.
		sd := &e.shards[int(ib.Node)/e.shardSize]
		e.inboxOff[ib.Node] = int32(len(sd.inboxArena))
		e.inboxLen[ib.Node] = int32(len(ib.Msgs))
		sd.inboxArena = append(sd.inboxArena, ib.Msgs...)
	}
	for i := range cp.Pending {
		p := &cp.Pending[i]
		if int(p.To) < 0 || int(p.To) >= n {
			return fmt.Errorf("sim: checkpoint pending message to node %d out of range", p.To)
		}
		sd := &e.shards[int(p.To)/e.shardSize]
		if sd.pending == nil {
			sd.pending = make(map[int][]delivered)
		}
		sd.pending[p.Due] = append(sd.pending[p.Due], delivered{
			to: p.To, from: p.From, edgeID: int32(p.EdgeID), payload: p.Payload,
		})
		sd.pendingN++
	}
	return nil
}

// Resume continues a checkpointed run on the step engine: g and program
// must be the ones the checkpoint was captured from (the graph is validated
// by node count and adjacency digest — the topology itself is not
// serialized, so the caller must rebuild it with the same generator, flags,
// and seed). The seed,
// fault plan, and round budget are taken from the checkpoint; remaining
// options (workers, recorder, transcript, further checkpoints) apply as
// usual. The resumed run's transcript picks up at the round after the
// checkpoint and, stitched onto the original's prefix, is byte-identical to
// an uninterrupted run's.
func Resume(g graph.Topology, program StepProgram, cp *Checkpoint, opts ...Option) (*Result, error) {
	cfg := config{seed: cp.Seed}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.seed = cp.Seed
	cfg.maxRounds = cp.MaxRounds
	cfg.faultsSet = true
	cfg.faults = nil
	if cp.Plan != "" {
		p, err := fault.Parse(cp.Plan)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint fault plan: %w", err)
		}
		cfg.faults = p
	}
	cfg.resume = cp
	return runStepEngine(g, program, cfg)
}

func init() {
	// The engine's own payloads that can appear in checkpoint `any` fields.
	gob.Register(BusyTone{})
}
