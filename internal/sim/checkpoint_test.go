package sim

// checkpoint_test.go verifies the checkpoint/restore contract: capture is a
// pure observation (the checkpointed run's transcript is unchanged), resumed
// runs stitch byte-identically onto the original's transcript prefix,
// checkpoints are byte-portable across worker counts, and the modes that
// cannot snapshot (goroutine engine, step adapter) refuse cleanly.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// ckptToken is the test protocol's message and slot payload.
type ckptToken struct{ V int64 }

// ckptMachine exercises every checkpointed dimension: per-round RNG draws,
// point-to-point sends (inboxes and, under a delay/dup plan, the pending
// buffer), channel writes (slot state), and data-dependent halting.
type ckptMachine struct {
	c      *StepCtx
	rounds int
	sum    uint64
	limit  int
}

func (m *ckptMachine) Step(in Input) bool {
	m.rounds++
	for _, msg := range in.Msgs {
		m.sum = m.sum*31 + uint64(msg.Payload.(ckptToken).V)
	}
	if in.Slot.State == SlotSuccess {
		m.sum = m.sum*131 + uint64(in.Slot.From)
	}
	l := (m.rounds + int(m.c.ID())) % m.c.Degree()
	m.c.Send(l, ckptToken{V: int64(m.rounds)*1000 + int64(m.c.ID())})
	if m.c.Rand().Intn(3) == 1 {
		m.c.Broadcast(ckptToken{V: int64(m.c.ID())})
	}
	return m.rounds >= m.limit
}

func (m *ckptMachine) Result() any { return m.sum }

type ckptMachineState struct {
	Rounds int
	Sum    uint64
}

func (m *ckptMachine) SnapshotState() any {
	return ckptMachineState{Rounds: m.rounds, Sum: m.sum}
}

func (m *ckptMachine) RestoreState(state any) {
	s := state.(ckptMachineState)
	m.rounds, m.sum = s.Rounds, s.Sum
}

func init() {
	gob.Register(ckptToken{})
	gob.Register(ckptMachineState{})
}

func ckptProgram(limit int) StepProgram {
	return func(c *StepCtx) Machine { return &ckptMachine{c: c, limit: limit} }
}

// collectCheckpoints is a CheckpointSpec sink gathering every capture.
func collectCheckpoints(dst *[]*Checkpoint) func(*Checkpoint) error {
	return func(cp *Checkpoint) error {
		*dst = append(*dst, cp)
		return nil
	}
}

// runStepTranscript runs a step program with a transcript installed.
func runStepTranscript(t *testing.T, g graph.Topology, prog StepProgram, opts ...Option) ([]byte, *Result, error) {
	t.Helper()
	var buf bytes.Buffer
	tw := NewTranscriptWriter(&buf, false)
	res, err := RunStep(g, prog, append([]Option{WithTranscript(tw)}, opts...)...)
	if cerr := tw.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	return buf.Bytes(), res, err
}

// stitch cuts the reference transcript after the last frame with round ≤
// cut and appends the resumed transcript's frames (everything after its
// header frame).
func stitch(t *testing.T, ref, resumed []byte, cut int) []byte {
	t.Helper()
	offs, rounds := scanFrames(t, ref)
	cutOff := len(ref)
	for i, r := range rounds {
		if (r == -1 && i > 0) || r > cut { // final frame or first later round
			cutOff = offs[i]
			break
		}
	}
	roffs, _ := scanFrames(t, resumed)
	if len(roffs) < 2 {
		t.Fatalf("resumed transcript has %d frames", len(roffs))
	}
	out := append([]byte{}, ref[:cutOff]...)
	return append(out, resumed[roffs[1]:]...) // skip prelude+header frame
}

// resumeAndStitch resumes from cp with a transcript and asserts the stitched
// stream is byte-identical to ref; returns the resumed run's outcome.
func resumeAndStitch(t *testing.T, g graph.Topology, prog StepProgram, cp *Checkpoint, ref []byte, opts ...Option) (*Result, error) {
	t.Helper()
	var buf bytes.Buffer
	tw := NewTranscriptWriter(&buf, false)
	res, err := Resume(g, prog, cp, append([]Option{WithTranscript(tw)}, opts...)...)
	if cerr := tw.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	got := stitch(t, ref, buf.Bytes(), cp.Round)
	if !bytes.Equal(got, ref) {
		t.Errorf("resume at round %d: stitched transcript differs from uninterrupted run (%d vs %d bytes)", cp.Round, len(got), len(ref))
	}
	return res, err
}

func TestCheckpointResumeStitchedByteIdentity(t *testing.T) {
	g := ring(t, 16)
	prog := ckptProgram(24)
	ref, want, err := runStepTranscript(t, g, prog, WithSeed(7), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{1, 4} {
		var cps []*Checkpoint
		spec := &CheckpointSpec{Every: 5, Sink: collectCheckpoints(&cps)}
		raw, res, err := runStepTranscript(t, g, prog, WithSeed(7), WithWorkers(w), WithCheckpoints(spec))
		if err != nil {
			t.Fatal(err)
		}
		// Capture is an observation: transcript and result unchanged.
		if !bytes.Equal(raw, ref) {
			t.Fatalf("w%d: checkpointing changed the transcript", w)
		}
		if !reflect.DeepEqual(res.Results, want.Results) {
			t.Fatalf("w%d: checkpointing changed the results", w)
		}
		if len(cps) == 0 {
			t.Fatalf("w%d: no checkpoints captured", w)
		}
		for _, cp := range cps {
			if cp.Round%5 != 0 || cp.Round == 0 {
				t.Fatalf("w%d: checkpoint at unexpected round %d", w, cp.Round)
			}
			for _, rw := range []int{1, 4} {
				res, err := resumeAndStitch(t, g, prog, cp, ref, WithWorkers(rw))
				if err != nil {
					t.Fatalf("resume r%d w%d: %v", cp.Round, rw, err)
				}
				if !reflect.DeepEqual(res.Results, want.Results) {
					t.Errorf("resume r%d w%d: results differ", cp.Round, rw)
				}
				if res.Metrics != want.Metrics {
					t.Errorf("resume r%d w%d: metrics = %+v, want %+v", cp.Round, rw, res.Metrics, want.Metrics)
				}
			}
		}
	}
}

func TestCheckpointFaultedResume(t *testing.T) {
	// Delay and dup keep the pending buffer populated; crashes and jams
	// shift alive counts and slot states. The checkpoint must carry all of
	// it through a resume bit-exactly.
	plan, err := fault.Parse("delay:0@2-9/d4;dup:1@3-8;crash:3@6;jam:5;jam:11")
	if err != nil {
		t.Fatal(err)
	}
	g := ring(t, 12)
	prog := ckptProgram(20)
	ref, want, err := runStepTranscript(t, g, prog, WithSeed(11), WithFaults(plan), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}

	var cps []*Checkpoint
	spec := &CheckpointSpec{At: []int{1, 7, 13}, Sink: collectCheckpoints(&cps)}
	if _, _, err := runStepTranscript(t, g, prog, WithSeed(11), WithFaults(plan), WithWorkers(1), WithCheckpoints(spec)); err != nil {
		t.Fatal(err)
	}
	if len(cps) != 3 {
		t.Fatalf("captured %d checkpoints, want 3", len(cps))
	}
	sawPending := false
	for _, cp := range cps {
		if cp.Plan == "" {
			t.Errorf("checkpoint at %d lost the fault plan", cp.Round)
		}
		sawPending = sawPending || len(cp.Pending) > 0
		res, err := resumeAndStitch(t, g, prog, cp, ref, WithWorkers(2))
		if err != nil {
			t.Fatalf("resume r%d: %v", cp.Round, err)
		}
		if !reflect.DeepEqual(res.Results, want.Results) {
			t.Errorf("resume r%d: results differ", cp.Round)
		}
	}
	if !sawPending {
		t.Error("no checkpoint caught an in-flight delayed/duplicated message; the plan should keep the buffer busy")
	}
}

func TestCheckpointPortableAcrossWorkers(t *testing.T) {
	g := ring(t, 16)
	prog := ckptProgram(24)
	capture := func(w int) *Checkpoint {
		var cps []*Checkpoint
		spec := &CheckpointSpec{At: []int{10}, Sink: collectCheckpoints(&cps)}
		if _, err := RunStep(g, prog, WithSeed(7), WithWorkers(w), WithCheckpoints(spec)); err != nil {
			t.Fatal(err)
		}
		if len(cps) != 1 {
			t.Fatalf("w%d: %d checkpoints", w, len(cps))
		}
		return cps[0]
	}
	a, b := capture(1), capture(4)
	ab, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Error("checkpoint bytes differ between worker counts — canonical form broken")
	}

	back, err := ReadCheckpoint(bytes.NewReader(ab))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, a) {
		t.Error("checkpoint round-trip changed the value")
	}

	// Corruption: any flipped body byte must fail the crc.
	bad := bytes.Clone(ab)
	bad[len(bad)-6] ^= 1
	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted checkpoint read cleanly")
	}
}

func TestCheckpointDuringFastForward(t *testing.T) {
	// Node 0 halts at once; the rest sleep forever. The engine fast-forwards
	// to the round budget and fails with ErrMaxRounds; checkpoints are still
	// due inside the skipped stretch (ffTarget clamps to them), and resuming
	// from one must reproduce the identical wedged transcript and error.
	prog := func(c *StepCtx) Machine { return &sleeperMachine{c: c} }
	g := ring(t, 4)
	ref, _, err := runStepTranscript(t, g, prog, WithSeed(1), WithMaxRounds(40), WithWorkers(1))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}

	var cps []*Checkpoint
	spec := &CheckpointSpec{Every: 7, Sink: collectCheckpoints(&cps)}
	_, _, err = runStepTranscript(t, g, prog, WithSeed(1), WithMaxRounds(40), WithWorkers(2), WithCheckpoints(spec))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("checkpointed run err = %v, want ErrMaxRounds", err)
	}
	if len(cps) < 5 {
		t.Fatalf("captured %d checkpoints, want one per 7 rounds of the wedged stretch", len(cps))
	}
	cp := cps[len(cps)/2]
	if _, err := resumeAndStitch(t, g, prog, cp, ref, WithWorkers(1)); !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("resume err = %v, want ErrMaxRounds", err)
	}
}

// sleeperMachine wedges the network: node 0 halts at once, everyone else
// sleeps forever. Its state is empty, which also covers nil Snapshotter
// states through the checkpoint encoding.
type sleeperMachine struct{ c *StepCtx }

func (m *sleeperMachine) Step(Input) bool {
	if m.c.ID() == 0 {
		return true
	}
	m.c.Sleep()
	return false
}

func (m *sleeperMachine) Result() any        { return nil }
func (m *sleeperMachine) SnapshotState() any { return nil }
func (m *sleeperMachine) RestoreState(any)   {}

func TestCheckpointGobFallbackMachine(t *testing.T) {
	// A machine with exported state but no Snapshotter checkpoints through
	// the gob fallback.
	g := ring(t, 6)
	prog := func(c *StepCtx) Machine { return &gobFallbackMachine{c: c} }
	ref, want, err := runStepTranscript(t, g, prog, WithSeed(5), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	var cps []*Checkpoint
	spec := &CheckpointSpec{At: []int{4}, Sink: collectCheckpoints(&cps)}
	if _, err := RunStep(g, prog, WithSeed(5), WithCheckpoints(spec)); err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 {
		t.Fatalf("%d checkpoints", len(cps))
	}
	if !cps[0].Nodes[1].HasState && len(cps[0].Nodes[1].GobState) == 0 {
		t.Fatal("no machine state captured")
	}
	res, err := resumeAndStitch(t, g, prog, cps[0], ref)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Results, want.Results) {
		t.Error("gob-fallback resume results differ")
	}
}

type gobFallbackMachine struct {
	c     *StepCtx
	Count int
	Acc   int64
}

func (m *gobFallbackMachine) Step(in Input) bool {
	m.Count++
	for _, msg := range in.Msgs {
		m.Acc += msg.Payload.(ckptToken).V
	}
	if m.Count%2 == 1 {
		m.c.Send(m.c.Rand().Intn(m.c.Degree()), ckptToken{V: int64(m.Count)})
	}
	return m.Count >= 10
}

func (m *gobFallbackMachine) Result() any { return m.Acc }

func TestCheckpointRejectedModes(t *testing.T) {
	g := ring(t, 4)
	spec := &CheckpointSpec{Every: 2, Sink: func(*Checkpoint) error { return nil }}
	prog := func(c *Ctx) error {
		c.Tick()
		return nil
	}
	for _, eng := range []Engine{EngineGoroutine, EngineStep} {
		if _, err := Run(g, prog, WithEngine(eng), WithCheckpoints(spec)); !errors.Is(err, ErrNotCheckpointable) {
			t.Errorf("engine %v with checkpoints: err = %v, want ErrNotCheckpointable", eng, err)
		}
	}
	// A closure-state machine can neither snapshot nor gob-encode: the run
	// must fail with a diagnostic, not capture garbage.
	_, err := RunStep(g, func(c *StepCtx) Machine {
		n := 0
		return &stepFuncs{step: func(Input) bool { n++; return n > 5 }}
	}, WithCheckpoints(&CheckpointSpec{At: []int{2}, Sink: func(*Checkpoint) error { return nil }}))
	if err == nil {
		t.Error("closure machine checkpointed silently")
	}
}

func TestResumeValidatesGraph(t *testing.T) {
	g := ring(t, 8)
	var cps []*Checkpoint
	spec := &CheckpointSpec{At: []int{3}, Sink: collectCheckpoints(&cps)}
	if _, err := RunStep(g, ckptProgram(10), WithSeed(2), WithCheckpoints(spec)); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(ring(t, 9), ckptProgram(10), cps[0]); err == nil {
		t.Error("resume on a different-size graph accepted")
	}

	// Same node count, different wiring: the adjacency digest must reject it
	// (edge ids and link indices inside the checkpoint would be garbage).
	ga, err := graph.RandomConnected(8, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := graph.RandomConnected(8, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	cps = cps[:0]
	if _, err := RunStep(ga, ckptProgram(10), WithSeed(2), WithCheckpoints(spec)); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(gb, ckptProgram(10), cps[0]); err == nil {
		t.Error("resume on a same-size differently-wired graph accepted")
	}
	if _, err := Resume(ga, ckptProgram(10), cps[0]); err != nil {
		t.Errorf("resume on the capture graph rejected: %v", err)
	}
}
