package sim

// alloc_test.go asserts the allocation diet: a steady-state native round —
// every node stepping, sending, and receiving — must allocate nothing
// beyond what the machines themselves allocate. The assertion is
// differential: total allocations of a long run minus a short run, divided
// by the extra rounds, must be (near-)zero, so engine setup costs cancel
// out.

import (
	"testing"
)

// dietMachine is an allocation-free relay: every node forwards a constant
// payload on link 0 each round until the target round.
type dietMachine struct {
	c      *StepCtx
	rounds int
}

func (m dietMachine) Step(in Input) bool {
	if in.Round == m.rounds {
		return true
	}
	m.c.Send(0, struct{}{})
	return false
}

func (m dietMachine) Result() any { return nil }

func stepAllocsPerRound(t *testing.T, workers int) float64 {
	t.Helper()
	const n = 1024 // above inlineThreshold, so multi-worker runs use the gate
	g := ring(t, n)
	allocsAt := func(rounds int) float64 {
		return testing.AllocsPerRun(3, func() {
			res, err := RunStep(g, func(c *StepCtx) Machine {
				return dietMachine{c: c, rounds: rounds}
			}, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics.Messages != int64(n*rounds) {
				t.Fatalf("messages = %d", res.Metrics.Messages)
			}
		})
	}
	const short, long = 50, 1050
	return (allocsAt(long) - allocsAt(short)) / float64(long-short)
}

func TestStepSteadyStateZeroAlloc(t *testing.T) {
	if perRound := stepAllocsPerRound(t, 1); perRound > 0.01 {
		t.Errorf("steady-state native round allocates %.3f objects/round, want 0", perRound)
	}
}

func TestStepSteadyStateZeroAllocMultiWorker(t *testing.T) {
	// The gate parks and wakes workers without allocating; a small budget
	// absorbs one-time goroutine stack growth.
	if perRound := stepAllocsPerRound(t, 4); perRound > 0.05 {
		t.Errorf("steady-state 4-worker round allocates %.3f objects/round, want 0", perRound)
	}
}
