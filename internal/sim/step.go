package sim

// step.go implements the step-machine engine: the same synchronous
// multimedia-network model as the goroutine engine, executed as explicit
// per-node state machines on a sharded worker pool.
//
// Nodes are partitioned into contiguous shards. Every round has two
// barrier-separated phases:
//
//	step     each worker steps the awake machines of its shard; sends and
//	         channel writes are staged into per-shard, per-destination-shard
//	         outbox buckets (no locks, no per-node channel handoffs);
//	deliver  each worker drains the buckets addressed to its shard into the
//	         shard's inbox arena, sorts multi-message inboxes by (sender,
//	         edge id), and wakes sleeping recipients.
//
// The phases are coordinated by a persistent-worker, sense-reversing atomic
// barrier (gate.go): a phase transition costs a few atomics, not 2×shards
// channel operations, and shards with nothing to do in a phase are skipped
// by a shared need-check. All buffers (inbox arenas, outboxes, awake lists)
// are reused across rounds, so a steady-state round allocates nothing beyond
// what machines themselves allocate. Machines that have nothing to do until
// a message arrives call StepCtx.Sleep; combined with the awake lists this
// makes the per-round cost proportional to the number of active nodes, not
// n. When every live node is parked the engine does not even spin empty
// rounds: it fast-forwards straight to the next event that can wake a
// machine (fastForward below), so fully quiescent stretches cost zero.
//
// # Memory layout
//
// Per-node bookkeeping is struct-of-arrays, sized for 10⁸-node censuses:
// the engine holds one parallel array per field — a one-byte flags word
// (asleep/pulseWake/scheduled/halted/crashed), the Machine interface, the
// recorded result, and the (offset, length) of the node's window in its
// shard's inbox arena — instead of a fat per-node struct. The StepCtx a
// machine captures is a 16-byte handle (node id + engine pointer); every
// StepCtx method resolves per-node state through the arrays. Round-scoped
// scratch that the old layout kept per node (staged sends, the channel
// write, the duplicate-send guard, the RNG generator, the high-degree
// neighbor index, implicit-form adjacency) lives once per shard: shards are
// single-threaded within a phase and machines step one at a time, so one
// node's scratch can be recycled for the next. Per-node RNG state is the
// raw SplitMix64 (state word, draw count) pair in two lazily allocated
// per-shard arrays — see rng.go — not a boxed generator per node.
//
// Ownership rules this layout imposes (all were already part of the
// documented Machine contract, now load-bearing): an Input and its Msgs are
// valid only during the Step call they are passed to; the *rand.Rand
// returned by StepCtx.Rand is valid only during the current Step (or init)
// call and must be re-fetched each time, never stored; adjacency slices
// returned by internal helpers are per-shard memos. The mmlint ctxescape
// analyzer polices StepCtx-derived state escaping a machine.
//
// Determinism: machines are constructed and stepped against per-node state
// only, per-node RNGs are derived exactly as in the goroutine engine, and
// inboxes are sorted to the same (sender, edge id) order, so a fixed seed
// yields a bit-identical transcript for any worker count and either engine.

import (
	"cmp"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Engine selects the execution model backing Run.
type Engine int

// The execution models.
const (
	// EngineGoroutine runs one blocking goroutine per node with a central
	// scheduler — the historical engine.
	EngineGoroutine Engine = iota + 1
	// EngineStep runs the sharded step-machine engine; goroutine Programs
	// are executed through a built-in adapter.
	EngineStep
)

// String returns the flag spelling of the engine.
func (e Engine) String() string {
	switch e {
	case EngineGoroutine:
		return "goroutine"
	case EngineStep:
		return "step"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine maps a -engine flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "goroutine", "go":
		return EngineGoroutine, nil
	case "step":
		return EngineStep, nil
	default:
		return 0, fmt.Errorf("sim: unknown engine %q (want goroutine|step)", s)
	}
}

// DefaultEngine is the engine Run uses when no WithEngine option is given.
// Commands set it from their -engine flag so every protocol in the process
// routes through the selected engine.
var DefaultEngine = EngineGoroutine

// DefaultWorkers is the step engine's worker count when no WithWorkers
// option is given; 0 means GOMAXPROCS.
var DefaultWorkers = 0

// Machine is one node's compiled step program: the per-round half of the
// native step API.
//
// Step is called once per round with that round's input (round 0 carries no
// messages and a zero slot, mirroring the code a goroutine Program runs
// before its first Tick). Sends and channel writes staged during Step are
// committed when it returns; returning true halts the node, with any staged
// sends still delivered. The Input and its Msgs are engine-owned and only
// valid during the call.
//
// Result is the result hook: it is called once, when the node halts, and
// its value lands in the run's Result.Results slot for the node. A node
// crash-stopped by fault injection records a nil result instead — it never
// reached its halt, mirroring a goroutine program that never called
// SetResult.
type Machine interface {
	Step(in Input) (halt bool)
	Result() any
}

// StepProgram is the init hook of the native step API: it is called once
// per node, in node order, before round 0, and returns the node's Machine.
// Implementations typically capture c and per-node protocol state in the
// returned machine. It must not send or write the channel; it may draw from
// c.Rand.
type StepProgram func(c *StepCtx) Machine

// stagedSend is one queued point-to-point message in a shard's staging
// buffer. link is the sender-local link index (used to reset the duplicate-
// send guard) or -1 for messages staged by the goroutine adapter, which has
// already enforced the model's one-send-per-link rule in Ctx.
type stagedSend struct {
	to      graph.NodeID
	edgeID  int32
	link    int32
	payload Payload
}

// delivered is one message in flight between the step and deliver phases.
type delivered struct {
	to      graph.NodeID
	from    graph.NodeID
	edgeID  int32
	payload Payload
}

// peerLink is one entry of a shard's high-degree neighbor index, sorted by
// peer id for binary search.
type peerLink struct {
	peer graph.NodeID
	link int32
}

// Per-node scheduler flags, packed into one byte of stepEngine.flags.
const (
	flagAsleep    uint8 = 1 << iota // set by Sleep, cleared before every Step
	flagPulseWake                   // set by SleepUntilPulse: also wake on an idle slot
	flagScheduled                   // already on some shard's awake list for the next round
	flagHalted
	flagCrashed // fault-crashed (revivable by a restart rule), not a normal halt
)

// StepCtx is a node's handle to the network under the step engine: the same
// API surface as Ctx minus Tick (the engine calls Machine.Step instead),
// plus Sleep. It is a 16-byte (id, engine) pair — all per-node state lives
// in the engine's parallel arrays and the shard's scratch. All methods must
// be called only from the node's Machine during Step (or from its
// StepProgram during construction, for the read-only ones). Methods panic
// on model violations; a panic aborts the run with an error naming the
// node.
type StepCtx struct {
	id  graph.NodeID
	eng *stepEngine
}

// ID returns this node's identifier.
func (c *StepCtx) ID() graph.NodeID { return c.id }

// N returns the number of nodes in the network (known to all nodes, §2).
func (c *StepCtx) N() int { return c.eng.topo.N() }

// Topo returns the immutable network topology.
func (c *StepCtx) Topo() graph.Topology { return c.eng.topo }

// shard returns the shard owning this node. Per-node round scratch (staged
// sends, the RNG generator, adjacency memos) lives there: a shard steps its
// machines one at a time, so the scratch is exclusively the current node's
// for the duration of its Step.
//
//mmlint:noalloc
func (c *StepCtx) shard() *stepShard {
	return &c.eng.shards[int(c.id)/c.eng.shardSize]
}

// Adj returns this node's incident links sorted by ascending weight. On an
// implicit topology every call computes (and allocates) the list; machines
// on hot paths should capture it once or use Degree/Send/LinkOf, which
// never materialize adjacency.
func (c *StepCtx) Adj() []graph.Half {
	if g := c.eng.mat; g != nil {
		return g.Adj(c.id)
	}
	return c.eng.topo.Adj(c.id)
}

// Degree returns the number of incident links.
func (c *StepCtx) Degree() int {
	if g := c.eng.mat; g != nil {
		return g.Degree(c.id)
	}
	return c.eng.topo.Degree(c.id)
}

// Round returns the current round number (a restarted incarnation counts
// from its revival).
func (c *StepCtx) Round() int {
	r := c.eng.round
	if rb := c.eng.roundBase; rb != nil {
		r -= int(rb[c.id])
	}
	return r
}

// Rand returns this node's private deterministic RNG, derived from the
// master seed exactly as in the goroutine engine. The generator is a shard-
// shared rand.Rand over the node's (state word, draw count) slot in the
// shard's RNG arrays — two words per node instead of a boxed generator —
// so the returned value is positioned for this node only until Step
// returns: re-fetch it every call, never store it.
func (c *StepCtx) Rand() *rand.Rand {
	sd := c.shard()
	if sd.rngWord == nil {
		sd.ensureRNG()
	}
	i := int(c.id) - sd.lo
	if sd.rngDraws[i] == 0 {
		// Position 0: (re)derive the stream head from the node's seed. The
		// derivation is idempotent, so repeating it before the first draw —
		// or after a restart reset the slot — lands on the same word.
		sd.rngWord[i] = uint64(c.eng.seedOf(c.id))
	}
	sd.rngSrc.i = i
	return sd.rng
}

// LinkOf returns the local link index of the given edge id. The stored
// form answers from the engine's O(m) edge index; implicit forms answer
// from the shard's adjacency memo — a linear scan, or a weight-keyed binary
// search at high degree — so a node resolving its whole inbox pays one memo
// fill, not one allocating topology query per message.
func (c *StepCtx) LinkOf(edgeID int) int {
	if la := c.eng.linkAt; la != nil {
		e := c.eng.mat.Edge(edgeID)
		switch c.id {
		case e.U:
			return int(la[edgeID][0])
		case e.V:
			return int(la[edgeID][1])
		default:
			panic(fmt.Sprintf("sim: node %d has no link with edge id %d", c.id, edgeID))
		}
	}
	adj := c.eng.shardAdj(c.shard(), c.id)
	if len(adj) >= linkIndexThreshold && edgeID >= 0 && edgeID < c.eng.topo.M() {
		// Adjacency is sorted by ascending weight: binary-search the edge's
		// weight, then walk any equal-weight run for the id itself.
		w := c.eng.topo.Edge(edgeID).Weight
		i, _ := slices.BinarySearchFunc(adj, w, func(h graph.Half, t graph.Weight) int { return cmp.Compare(h.Weight, t) })
		for ; i < len(adj) && adj[i].Weight == w; i++ {
			if adj[i].EdgeID == int32(edgeID) {
				return i
			}
		}
		panic(fmt.Sprintf("sim: node %d has no link with edge id %d", c.id, edgeID))
	}
	for l := range adj {
		if adj[l].EdgeID == int32(edgeID) {
			return l
		}
	}
	panic(fmt.Sprintf("sim: node %d has no link with edge id %d", c.id, edgeID))
}

// linkIndexThreshold: below this degree a linear Adj scan beats building
// and searching the sorted neighbor index.
const linkIndexThreshold = 16

// Link returns the local link index leading to the given neighbor. For
// high-degree nodes the lookup is O(log d) through a sorted neighbor index
// cached in the shard (one index, keyed by the node that built it — a star
// hub answering n-1 SendTo calls rebuilds it at most once per round).
func (c *StepCtx) Link(to graph.NodeID) (int, bool) {
	d := c.Degree()
	sd := c.shard()
	if d < linkIndexThreshold {
		if g := c.eng.mat; g != nil {
			for l, h := range g.Adj(c.id) {
				if h.To == to {
					return l, true
				}
			}
			return 0, false
		}
		for l, h := range c.eng.shardAdj(sd, c.id) {
			if h.To == to {
				return l, true
			}
		}
		return 0, false
	}
	if sd.idxNode != int32(c.id) {
		var adj []graph.Half
		if g := c.eng.mat; g != nil {
			adj = g.Adj(c.id)
		} else {
			adj = c.eng.shardAdj(sd, c.id)
		}
		sd.peerIdx = sd.peerIdx[:0]
		for l, h := range adj {
			sd.peerIdx = append(sd.peerIdx, peerLink{peer: h.To, link: int32(l)})
		}
		slices.SortFunc(sd.peerIdx, func(a, b peerLink) int { return cmp.Compare(a.peer, b.peer) })
		sd.idxNode = int32(c.id)
	}
	i, ok := slices.BinarySearchFunc(sd.peerIdx, to, func(e peerLink, t graph.NodeID) int { return cmp.Compare(e.peer, t) })
	if !ok {
		return 0, false
	}
	return int(sd.peerIdx[i].link), true
}

// Send queues a message on the link with the given local index for delivery
// at the start of the next round. At most one message may be sent per link
// per round.
func (c *StepCtx) Send(link int, p Payload) {
	sd := c.shard()
	var h graph.Half
	if g := c.eng.mat; g != nil {
		adj := g.Adj(c.id)
		if link < 0 || link >= len(adj) {
			panic(fmt.Sprintf("sim: node %d send on link %d of %d", c.id, link, len(adj)))
		}
		h = adj[link]
	} else {
		adj := c.eng.shardAdj(sd, c.id)
		if link < 0 || link >= len(adj) {
			panic(fmt.Sprintf("sim: node %d send on link %d of %d", c.id, link, len(adj)))
		}
		h = adj[link]
	}
	w, bit := link>>6, uint64(1)<<(link&63)
	if w >= len(sd.sentBits) {
		sd.growSentBits(w)
	}
	if sd.sentBits[w]&bit != 0 {
		panic(fmt.Sprintf("sim: node %d sent twice on edge %d in round %d", c.id, h.EdgeID, c.Round()))
	}
	sd.sentBits[w] |= bit
	sd.stage = append(sd.stage, stagedSend{to: h.To, edgeID: int32(h.EdgeID), link: int32(link), payload: p})
}

// SendTo queues a message to the given neighbor.
func (c *StepCtx) SendTo(to graph.NodeID, p Payload) {
	l, ok := c.Link(to)
	if !ok {
		panic(fmt.Sprintf("sim: node %d is not adjacent to %d", c.id, to))
	}
	c.Send(l, p)
}

// Broadcast writes p to the current channel slot. At most one write per
// round; the slot resolves to success only if this node is the sole writer.
func (c *StepCtx) Broadcast(p Payload) {
	sd := c.shard()
	if sd.chPending {
		panic(fmt.Sprintf("sim: node %d wrote the channel twice in round %d", c.id, c.Round()))
	}
	sd.chPending = true
	sd.chWrite = p
}

// Busy transmits a busy tone on the channel this round (§7.1 barrier).
func (c *StepCtx) Busy() { c.Broadcast(BusyTone{}) }

// SentThisRound reports whether this node queued any point-to-point message
// in the current round.
func (c *StepCtx) SentThisRound() bool { return len(c.shard().stage) > 0 }

// Sleep parks this node after the current Step returns: the engine skips it
// every round until a message arrives, at which point it is woken and
// stepped with that round's input. A sleeping node does not observe the
// channel, so only protocols that synchronize by messages may use it; it is
// what makes wavefront protocols on million-node graphs cost O(work), not
// O(n·rounds). Sleeping with no message ever due wedges the protocol; the
// engine detects the fully quiescent case and fails the run.
func (c *StepCtx) Sleep() { c.eng.flags[c.id] |= flagAsleep }

// SleepUntilPulse parks this node like Sleep, but additionally wakes it on
// the barrier pulse: the first round whose input carries an idle slot
// (Input.IsPulse). It is the sparse-activation primitive for protocols
// synchronized by the §7.1 channel barrier — a node that is passive within a
// barrier step (it will act again only on a message or when the step
// globally terminates) may park instead of observing every busy slot, which
// turns O(n · rounds) barrier phases into O(work). A node woken by a message
// before the pulse is stepped normally; if it parks again it must call
// SleepUntilPulse again.
func (c *StepCtx) SleepUntilPulse() { c.eng.flags[c.id] |= flagAsleep | flagPulseWake }

// failError carries a protocol-level failure out of a Machine via panic;
// the engine records it verbatim instead of as a node panic.
type failError struct{ err error }

// Failf aborts the run with an error attributed to this node — the native
// API's analog of a goroutine Program returning an error.
func (c *StepCtx) Failf(format string, args ...any) {
	panic(failError{err: fmt.Errorf(format, args...)})
}

// aborter is implemented by machines that need unwinding when the engine
// aborts a run with live nodes (the goroutine adapter's blocked programs).
type aborter interface{ abortRun() }

// shardRNG adapts one node's (word, draws) slot in the shard's RNG arrays
// to rand.Source64; StepCtx.Rand points i at the calling node. The
// arithmetic matches countedSource exactly (rng.go), which the determinism
// contract and checkpoint resume both lean on.
type shardRNG struct {
	sd *stepShard
	i  int
}

//mmlint:noalloc
func (s *shardRNG) Uint64() uint64 {
	w := s.sd.rngWord[s.i] + splitmixGamma
	s.sd.rngWord[s.i] = w
	s.sd.rngDraws[s.i]++
	return splitmix64(w)
}

//mmlint:noalloc
func (s *shardRNG) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *shardRNG) Seed(int64) {
	panic("sim: node RNG streams are derived, not reseedable")
}

// stepShard is one contiguous slice of the node range plus every per-shard
// buffer the two phases reuse round after round, including the scratch the
// node currently stepping stages into.
type stepShard struct {
	lo, hi int

	awake []int32 // nodes to step this round; survivors + woken for the next
	next  []int32 // scratch for building the survivor list

	// Nodes of this shard parked by SleepUntilPulse, woken in the delivery
	// phase of the first round whose slot resolved idle. Entries are lazily
	// invalidated: a node woken early by a message clears its pulseWake flag
	// on its next step, so stale entries are skipped when the pulse fires.
	pulseSleepers []int32

	out     [][]delivered // staged messages, bucketed by destination shard
	touched []int32       // nodes that received mail this round (sort + reuse)

	// Delayed and duplicated messages addressed to this shard, held until
	// their fault-assigned delivery round. Shard-local, so the delivery
	// phase mutates it without locks. Drained buckets are recycled through
	// pendingFree instead of reallocated.
	pending     map[int][]delivered
	pendingN    int
	pendingFree [][]delivered

	// Delivery scratch: the round's surviving messages in arrival order,
	// per-node counts/offsets, and the arena the inbox windows are carved
	// from — all reused round after round.
	arrivals   []delivered
	counts     []int32
	inboxArena []Message

	// Staging scratch for the node currently stepping: its queued sends,
	// channel write, and per-link duplicate-send bitmap (cleared link by
	// link when the node commits).
	stage     []stagedSend
	chPending bool
	chWrite   Payload
	sentBits  []uint64

	// Per-node RNG state — SplitMix64 (word, draws) pairs indexed by
	// node-lo — and the shard-shared generator over it, all allocated on
	// the shard's first Rand call.
	rngWord  []uint64
	rngDraws []uint64
	rngSrc   shardRNG
	rng      *rand.Rand

	// Single-entry caches keyed by node id: the high-degree neighbor index
	// (Link) and the implicit-form adjacency memo (Send/Link/LinkOf), each
	// rebuilt only when a different node of the shard needs it.
	idxNode    int32
	peerIdx    []peerLink
	memoNode   int32
	memoAdj    []graph.Half
	adjScratch graph.AdjScratch

	writers       int
	writerID      graph.NodeID
	writerPayload Payload
	halts         int
	msgs          int64
	dropped       int64
	faultDrops    int64
	delayed       int64
	duped         int64
	partDrops     int64
	skewed        int64
}

// ensureRNG allocates the shard's RNG arrays and shared generator; called
// once per shard, on its first Rand.
func (sd *stepShard) ensureRNG() {
	sd.rngWord = make([]uint64, sd.hi-sd.lo)
	sd.rngDraws = make([]uint64, sd.hi-sd.lo)
	sd.rngSrc = shardRNG{sd: sd}
	sd.rng = rand.New(&sd.rngSrc)
}

// growSentBits extends the duplicate-send bitmap to cover word index w;
// amortized over the run it allocates O(log maxDegree) times.
func (sd *stepShard) growSentBits(w int) {
	for w >= len(sd.sentBits) {
		sd.sentBits = append(sd.sentBits, 0)
	}
}

// arenaFor returns the shard's inbox arena resized to n messages, dropping
// the previous round's payload references. Elements beyond len are kept
// zero, so growing within capacity exposes only cleared slots.
func (sd *stepShard) arenaFor(n int) []Message {
	if cap(sd.inboxArena) < n {
		sd.inboxArena = make([]Message, n)
		return sd.inboxArena
	}
	clear(sd.inboxArena)
	sd.inboxArena = sd.inboxArena[:n]
	return sd.inboxArena
}

const (
	phaseStep int8 = iota + 1
	phaseDeliver
	// inlineThreshold: with fewer awake nodes than this, the coordinator
	// steps them itself rather than paying the worker fan-out/fan-in.
	inlineThreshold = 256
)

type stepEngine struct {
	topo    graph.Topology
	mat     *graph.Graph    // topo's stored form, or nil — gates the O(m) fast-path indexes
	imp     *graph.Implicit // topo's implicit form, or nil — gates scratch-reusing adjacency
	cfg     config
	program StepProgram       // the init hook, kept for crash-restart revival
	inj     *fault.Injector   // nil for fault-free runs
	rec     Recorder          // nil = observability off (the zero-cost path)
	tw      *TranscriptWriter // nil = transcripts off; emission is coordinator-only
	ck      *ckptState        // nil = checkpoints off

	topoDigest uint64 // lazy topologyDigest cache (0 = not yet computed)

	// Struct-of-arrays node state: one parallel array per field, indexed by
	// node id. nodes holds the 16-byte StepCtx handles machines capture.
	nodes    []StepCtx
	flags    []uint8
	machines []Machine
	results  []any
	inboxOff []int32 // window into the owning shard's inbox arena
	inboxLen []int32

	// Crash-restart state, allocated only when the plan has restart rules
	// (the crashed mark itself lives in flags). roundBase is the global
	// round a node's current incarnation joined at (its local round 0);
	// incarn counts restarts, keying the incarnation's RNG stream.
	roundBase []int32
	incarn    []int32

	linkAt [][2]int32 // edge id -> local link index at (U, V); stored form only

	shards    []stepShard
	shardSize int
	workers   int

	round      int
	slot       Slot
	pulseFired bool // this round's slot resolved idle (after jamming)
	continuing bool
	alive      int
	met        Metrics

	errMu    sync.Mutex
	errNode  graph.NodeID
	firstErr error

	gate *phaseGate // nil when single-worker
}

// shardOf returns the shard owning node v.
//
//mmlint:noalloc
func (e *stepEngine) shardOf(v graph.NodeID) *stepShard {
	return &e.shards[int(v)/e.shardSize]
}

// seedOf derives node v's current RNG seed: the master derivation, or the
// incarnation's for a restarted node.
//
//mmlint:noalloc
func (e *stepEngine) seedOf(v graph.NodeID) int64 {
	if e.incarn != nil && e.incarn[v] > 0 {
		return nodeSeedAt(e.cfg.seed, v, int(e.incarn[v]))
	}
	return nodeSeed(e.cfg.seed, v)
}

// inboxOf returns node v's undelivered inbox: its window of the owning
// shard's arena. The full slice expression caps the window, so a program
// appending to an Input's Msgs reallocates instead of bleeding into the
// next recipient's window.
//
//mmlint:noalloc
func (e *stepEngine) inboxOf(v graph.NodeID) []Message {
	l := e.inboxLen[v]
	if l == 0 {
		return nil
	}
	sd := e.shardOf(v)
	off := e.inboxOff[v]
	return sd.inboxArena[off : off+l : off+l]
}

// shardAdj returns id's adjacency through the shard's single-entry memo —
// the implicit-form counterpart of the stored form's g.Adj, materializing
// AdjAppend once per (shard, node) occupancy instead of once per Send.
//
//mmlint:noalloc
func (e *stepEngine) shardAdj(sd *stepShard, id graph.NodeID) []graph.Half {
	if sd.memoNode == int32(id) {
		return sd.memoAdj
	}
	if e.imp != nil {
		// The scratch-reusing form: after each buffer's first sizing, a memo
		// rebuild allocates nothing.
		sd.memoAdj = e.imp.AdjInto(id, sd.memoAdj[:0], &sd.adjScratch)
	} else {
		sd.memoAdj = e.topo.AdjAppend(id, sd.memoAdj[:0])
	}
	sd.memoNode = int32(id)
	return sd.memoAdj
}

// disableFastForward forces the per-round path through quiescent stretches;
// tests flip it to check the fast-forward arithmetic differentially.
var disableFastForward bool

// RunStep executes one Machine per node of g — any graph.Topology form —
// until all machines halt, and returns aggregate metrics and per-node
// results — the native entry point of the step engine. Options are shared
// with Run; WithEngine is ignored. On an implicit topology the engine keeps
// only per-node state: the topology itself contributes O(1) memory, which
// is what makes 10⁷–10⁸-node runs fit.
func RunStep(g graph.Topology, program StepProgram, opts ...Option) (*Result, error) {
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.resolveMaxRounds(g)
	return runStepEngine(g, program, cfg)
}

// runStepEngine builds the engine, applies a resume checkpoint when one is
// configured, and runs the round loop from the appropriate round.
func runStepEngine(g graph.Topology, program StepProgram, cfg config) (*Result, error) {
	e, err := newStepEngine(g, program, cfg)
	if err != nil {
		return nil, err
	}
	start := 0
	if cp := cfg.resume; cp != nil {
		if err := e.restore(cp); err != nil {
			return nil, err
		}
		start = cp.Round
	}
	return e.run(start)
}

// newStepEngine compiles the fault plan, sizes the shards, and runs the
// init hook — everything up to (but not including) round 0.
func newStepEngine(g graph.Topology, program StepProgram, cfg config) (*stepEngine, error) {
	inj, err := fault.CompileFor(cfg.plan(), g, cfg.caps())
	if err != nil {
		return nil, err
	}
	n := g.N()
	workers := cfg.workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers <= 0 {
		//mmlint:nondet sizes the worker pool only; transcripts are worker-count-invariant (difftest-enforced)
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	mat, _ := g.(*graph.Graph)
	imp, _ := g.(*graph.Implicit)
	e := &stepEngine{
		topo:     g,
		mat:      mat,
		imp:      imp,
		cfg:      cfg,
		program:  program,
		inj:      inj,
		rec:      cfg.recorder(),
		tw:       cfg.transcript(),
		nodes:    make([]StepCtx, n),
		flags:    make([]uint8, n),
		machines: make([]Machine, n),
		results:  make([]any, n),
		inboxOff: make([]int32, n),
		inboxLen: make([]int32, n),
		workers:  workers,
		alive:    n,
	}
	if inj.HasRestarts() {
		e.roundBase = make([]int32, n)
		e.incarn = make([]int32, n)
	}
	if cfg.ckpt != nil {
		e.ck = newCkptState(cfg.ckpt)
	}
	if mat != nil {
		// Stored form: build the O(m) edge→link index LinkOf answers from.
		// Implicit forms skip it (LinkIndex computes per query), keeping the
		// engine's footprint independent of m.
		e.linkAt = make([][2]int32, mat.M())
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			for l, h := range mat.Adj(id) {
				if mat.Edge(int(h.EdgeID)).U == id {
					e.linkAt[h.EdgeID][0] = int32(l)
				} else {
					e.linkAt[h.EdgeID][1] = int32(l)
				}
			}
		}
	}

	e.shardSize = (n + workers - 1) / workers
	shardCount := (n + e.shardSize - 1) / e.shardSize
	e.shards = make([]stepShard, shardCount)
	for i := range e.shards {
		s := &e.shards[i]
		s.lo = i * e.shardSize
		s.hi = min(s.lo+e.shardSize, n)
		s.out = make([][]delivered, shardCount)
		s.awake = make([]int32, 0, s.hi-s.lo)
		s.idxNode, s.memoNode = -1, -1
		for v := s.lo; v < s.hi; v++ {
			s.awake = append(s.awake, int32(v))
		}
	}

	// Init hook: build every node's machine, in node order.
	for v := 0; v < n; v++ {
		sc := &e.nodes[v]
		sc.id = graph.NodeID(v)
		sc.eng = e
		e.flags[v] = flagScheduled
		if err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = nodeFailure(sc.id, r)
				}
			}()
			e.machines[v] = program(sc)
			return nil
		}(); err != nil {
			return nil, err
		}
		if e.machines[v] == nil {
			return nil, fmt.Errorf("sim: step program returned a nil machine for node %d", sc.id)
		}
		if sd := sc.shard(); len(sd.stage) > 0 || sd.chPending {
			return nil, fmt.Errorf("sim: step program for node %d sent or wrote the channel during init", sc.id)
		}
	}
	return e, nil
}

// run executes the round loop from the given round (0 for a fresh run, the
// checkpoint's round on a resume) until every machine halts or the run
// fails.
func (e *stepEngine) run(start int) (res *Result, err error) {
	n := e.topo.N()
	if rec := e.rec; rec != nil {
		rec.RunStart(n, EngineStep, e.workers, len(e.shards))
	}
	if tw := e.tw; tw != nil {
		tw.begin(n, e.cfg.seed, e.cfg.planString(), "")
	}
	if e.workers > 1 {
		e.startWorkers()
		defer e.stopWorkers()
	}
	defer e.abortMachines() // no-op unless the run ends with live adapters

	stepped := make([]int, 0, len(e.shards))
	awakeTotal := 0
	for i := range e.shards {
		awakeTotal += len(e.shards[i].awake)
	}
	for round := start; ; round++ {
		e.round = round
		if e.ck != nil && round > start && e.ck.due(round) {
			if err := e.writeCheckpoint(round); err != nil {
				e.recordErr(-1, fmt.Errorf("sim: checkpoint at round %d: %w", round, err))
				break
			}
		}
		// Crash-restarts due this round revive after the checkpoint capture
		// (a checkpoint at the restart round records the pre-restart state,
		// so a resume re-applies the restart deterministically) and are not
		// gated on round > start for the same reason.
		if e.roundBase != nil {
			e.reviveRestarts(round)
		}
		stepped = stepped[:0]
		for i := range e.shards {
			if len(e.shards[i].awake) > 0 {
				stepped = append(stepped, i)
			}
		}
		e.runPhase(phaseStep, stepped, awakeTotal)

		e.met.Rounds = round + 1

		// Resolve the channel slot from the per-shard write summaries.
		writers := 0
		var wid graph.NodeID
		var wpayload Payload
		for _, si := range stepped {
			s := &e.shards[si]
			if s.writers > 0 {
				writers += s.writers
				wid, wpayload = s.writerID, s.writerPayload
				s.writerPayload = nil
			}
			e.alive -= s.halts
		}
		slot := Slot{State: SlotIdle}
		if e.inj.Jammed(round + 1) {
			// A jammed slot hides any writer behind a forced collision.
			e.met.SlotsJammed++
			slot = Slot{State: SlotCollision}
		} else {
			switch {
			case writers == 0:
				e.met.SlotsIdle++
			case writers == 1:
				e.met.SlotsSuccess++
				slot = Slot{State: SlotSuccess, From: wid, Payload: wpayload}
			default:
				e.met.SlotsCollision++
				slot = Slot{State: SlotCollision}
			}
		}
		e.slot = slot
		e.pulseFired = slot.State == SlotIdle

		// Crash-stop the nodes scheduled to fail before observing round+1.
		// Their round-round sends (staged above) are still delivered;
		// messages addressed to them join the halted-drop count.
		for _, v := range e.inj.CrashesAt(round + 1) {
			if e.flags[v]&flagHalted != 0 {
				continue
			}
			// A crash-stopped node records no result — it never reached its
			// halt — except through the goroutine adapter, whose program may
			// have called SetResult before the crash (the goroutine engine
			// keeps that partial value, so the adapter must too).
			if ab, ok := e.machines[v].(aborter); ok {
				ab.abortRun()
				e.results[v] = e.machines[v].Result()
			}
			e.flags[v] |= flagHalted | flagCrashed
			e.alive--
			e.met.Crashed++
		}

		failed := e.err() != nil
		if e.alive > 0 && !failed && round+1 > e.cfg.maxRounds {
			e.recordErr(-1, fmt.Errorf("%w: budget %d", ErrMaxRounds, e.cfg.maxRounds))
			failed = true
		}
		e.continuing = e.alive > 0 && !failed

		// Delivery stats accrue in destination shards; zero them all first
		// since only shards with pending buckets are necessarily drained.
		for i := range e.shards {
			s := &e.shards[i]
			s.msgs, s.dropped, s.faultDrops, s.delayed, s.duped = 0, 0, 0, 0, 0
			s.partDrops, s.skewed = 0, 0
		}
		e.runPhase(phaseDeliver, stepped, awakeTotal)
		for i := range e.shards {
			s := &e.shards[i]
			e.met.Messages += s.msgs
			e.met.DroppedHalted += s.dropped
			e.met.DroppedFault += s.faultDrops
			e.met.Delayed += s.delayed
			e.met.Duplicated += s.duped
			e.met.PartitionedDrop += s.partDrops
			e.met.Skewed += s.skewed
		}

		awakeTotal = 0
		for i := range e.shards {
			awakeTotal += len(e.shards[i].awake)
		}
		if e.tw != nil && e.continuing {
			e.emitRound(round)
		}
		if rec := e.rec; rec != nil {
			rec.RoundEnd(round+1, awakeTotal, slot.State, &e.met)
		}
		if !e.continuing {
			break
		}
		if awakeTotal == 0 && !disableFastForward {
			// Fully parked network, nothing staged: no machine can run until
			// a delayed delivery, a crash, a pulse, or the round budget
			// fires. Jump straight to that event, accruing the skipped
			// rounds' writer-free slots arithmetically, so quiescent
			// stretches — including a genuine wedge spinning to ErrMaxRounds
			// — cost O(1) instead of O(shards) per round while keeping
			// transcripts and Metrics bit-identical with the per-round path
			// (and with the goroutine form of the protocol). With a
			// transcript installed the traced variant synthesizes the skipped
			// rounds' frames instead, so the stream stays byte-identical to a
			// per-round engine's.
			if e.tw != nil {
				round = e.fastForwardTraced(round)
			} else {
				round = e.fastForward(round)
			}
		}
	}

	e.abortMachines()
	if rec := e.rec; rec != nil {
		rec.RunEnd(&e.met)
	}
	res = &Result{Metrics: e.met, Results: make([]any, n)}
	copy(res.Results, e.results)
	if tw := e.tw; tw != nil {
		tw.finalFrame(&e.met, res.Results, e.err())
	}
	if err := e.err(); err != nil {
		return nil, err
	}
	return res, nil
}

// reviveRestarts applies the crash-restarts due at this round: each revived
// node is rebuilt from scratch — the init hook runs again, producing a fresh
// machine with reset protocol state, the RNG stream is re-derived for the
// new incarnation, and the round base makes its next step a local round 0 —
// exactly a fresh node joining mid-run. Only fault-crashed nodes revive; a
// node that halted normally stays halted.
func (e *stepEngine) reviveRestarts(round int) {
	for _, v := range e.inj.RestartsAt(round) {
		fl := e.flags[v]
		if fl&flagHalted == 0 || fl&flagCrashed == 0 {
			continue
		}
		e.incarn[v]++
		e.roundBase[v] = int32(round)
		e.flags[v] = flagScheduled
		e.results[v] = nil
		e.inboxLen[v] = 0
		sd := e.shardOf(graph.NodeID(v))
		if sd.rngDraws != nil {
			// Reset the stream to position 0; the next Rand derives the
			// incarnation's seed (incarn is already bumped).
			i := int(v) - sd.lo
			sd.rngWord[i], sd.rngDraws[i] = 0, 0
		}
		sc := &e.nodes[v]
		if err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = nodeFailure(sc.id, r)
				}
			}()
			e.machines[v] = e.program(sc)
			return nil
		}(); err != nil {
			e.recordErr(sc.id, err)
			e.flags[v] = flagHalted
			continue
		}
		if e.machines[v] == nil {
			e.recordErr(sc.id, fmt.Errorf("sim: step program returned a nil machine for node %d", sc.id))
			e.flags[v] = flagHalted
			continue
		}
		sd.awake = append(sd.awake, int32(v))
		e.alive++
		e.met.Restarted++
	}
}

// emitRound streams one executed round's transcript frame: the shards'
// touched lists name every inbox delivered this round; they are gathered,
// sorted, digested, and cleared coordinator-side, keeping transcript I/O
// (and its allocations) out of the //mmlint:noalloc delivery phase. With no
// writer installed the lists are cleared inside the delivery phase itself
// and this function is never reached.
func (e *stepEngine) emitRound(round int) {
	tw := e.tw
	f := RoundFrame{Round: round + 1, Slot: e.slot.State, Alive: e.alive, Met: e.met}
	if e.slot.State == SlotSuccess {
		f.From = e.slot.From
		f.SlotDigest = payloadDigest(e.slot.Payload)
	}
	tw.touched = tw.touched[:0]
	for i := range e.shards {
		sd := &e.shards[i]
		tw.touched = append(tw.touched, sd.touched...)
		sd.touched = sd.touched[:0]
	}
	slices.Sort(tw.touched)
	f.Nodes = tw.nodes[:0]
	for _, v := range tw.touched {
		box := e.inboxOf(graph.NodeID(v))
		if len(box) == 0 {
			continue
		}
		var d uint64
		d, tw.scratch = inboxDigest(box, tw.scratch)
		f.Nodes = append(f.Nodes, NodeDigest{Node: graph.NodeID(v), Digest: d})
	}
	tw.nodes = f.Nodes
	tw.WriteRound(&f)
}

// fastForward is the quiescent-round fast-forward, called at the bottom of
// iteration r when every live node is parked and no message is staged. It
// returns the iteration to resume per-round execution before (the caller's
// round++ lands on it); returning r resumes normally at r+1.
//
// With the network fully parked, a later iteration q can only observe:
// delayed/duplicated messages due at round q+1 (deposited by iteration q),
// crashes scheduled at q+1 (applied by iteration q), a pulse waking
// SleepUntilPulse-parked nodes (the first slot from q+1 on resolving idle),
// or the round budget (iteration maxRounds records ErrMaxRounds). Every
// iteration before the earliest such event just resolves a writer-free slot
// — idle, or a jammed collision — so the engine skips them and accrues
// those slots arithmetically.
//
//mmlint:noalloc
func (e *stepEngine) fastForward(r int) int {
	R := e.ffTarget(r)
	if R <= r+1 {
		return r
	}
	// Iterations r+1 .. R-1 resolve slots r+2 .. R, all writer-free.
	skipped := int64(R - r - 1)
	jammed := e.inj.CountJammed(r+2, R)
	e.met.SlotsJammed += jammed
	e.met.SlotsIdle += skipped - jammed
	if rec := e.rec; rec != nil {
		rec.FastForward(r+2, R)
	}
	return R - 1
}

// ffTarget computes the fast-forward target: the earliest iteration after r
// that can change any state — and must therefore execute per-round — with
// everything before it writer-free. Shared by the plain and traced forms.
//
//mmlint:noalloc
func (e *stepEngine) ffTarget(r int) int {
	// The budget fails at iteration maxRounds (round+1 > maxRounds there).
	R := e.cfg.maxRounds
	// Delayed/duplicated messages due at round p are deposited by
	// iteration p-1.
	for i := range e.shards {
		s := &e.shards[i]
		if s.pendingN == 0 {
			continue
		}
		//mmlint:commutative min reduction over due rounds; order-free
		for p := range s.pending {
			if p-1 < R {
				R = p - 1
			}
		}
	}
	// Crashes at round c are applied by iteration c-1; iteration r already
	// applied round r+1's.
	if c, ok := e.inj.NextCrashAfter(r + 1); ok && c-1 < R {
		R = c - 1
	}
	// Restarts at round q revive at the top of iteration q, which must
	// therefore execute; iteration r already applied round r's.
	if q, ok := e.inj.NextRestartAfter(r); ok && q < R {
		R = q
	}
	if R > r+1 && e.hasPulseSleepers() {
		// Parked pulse waiters wake at the first non-jammed slot (writers
		// are impossible while everyone is parked); without jam rules that
		// is the very next one, and no rounds are skipped at all.
		if s, ok := e.inj.NextClearSlot(r+2, R); ok && s-1 < R {
			R = s - 1
		}
	}
	// A pending checkpoint round must land on an executed iteration top, so
	// the skip may not jump past it — checkpointing mid-fast-forward means
	// clamping the forward jump to the capture point.
	if e.ck != nil {
		if q, ok := e.ck.nextAfter(r); ok && q < R {
			R = q
		}
	}
	return R
}

// fastForwardTraced is fastForward with a transcript installed: the skipped
// rounds' frames are synthesized one by one — slot resolution per skipped
// round, incremental metrics — so the emitted stream is byte-identical to
// an engine that executed every round. The per-round cost this reintroduces
// is the price of observation, paid only when a transcript is on.
func (e *stepEngine) fastForwardTraced(r int) int {
	R := e.ffTarget(r)
	if R <= r+1 {
		return r
	}
	for s := r + 2; s <= R; s++ {
		state := SlotIdle
		if e.inj.Jammed(s) {
			e.met.SlotsJammed++
			state = SlotCollision
		} else {
			e.met.SlotsIdle++
		}
		e.met.Rounds = s
		f := RoundFrame{Round: s, Slot: state, Alive: e.alive, Met: e.met}
		e.tw.WriteRound(&f)
	}
	if rec := e.rec; rec != nil {
		rec.FastForward(r+2, R)
	}
	return R - 1
}

// hasPulseSleepers reports whether any node is parked awaiting the pulse,
// compacting entries invalidated by an early message wake or a crash.
//
//mmlint:noalloc
func (e *stepEngine) hasPulseSleepers() bool {
	any := false
	for i := range e.shards {
		s := &e.shards[i]
		if len(s.pulseSleepers) == 0 {
			continue
		}
		kept := s.pulseSleepers[:0]
		for _, v := range s.pulseSleepers {
			if fl := e.flags[v]; fl&flagHalted == 0 && fl&flagPulseWake != 0 {
				kept = append(kept, v)
			}
		}
		s.pulseSleepers = kept
		any = any || len(kept) > 0
	}
	return any
}

// runPhase executes one phase over the shards, inline when the round is
// small or the engine single-threaded, on the persistent worker pool behind
// the phase gate otherwise (the coordinator takes shard 0 itself).
//
//mmlint:noalloc
func (e *stepEngine) runPhase(phase int8, stepped []int, awakeTotal int) {
	if e.gate == nil || awakeTotal < inlineThreshold {
		switch phase {
		case phaseStep:
			for _, si := range stepped {
				e.phaseShard(phase, si)
			}
		case phaseDeliver:
			for d := range e.shards {
				e.phaseShard(phase, d)
			}
		}
		return
	}
	e.gate.release(phase)
	e.phaseShard(phase, 0)
	if rec := e.rec; rec != nil {
		// The coordinator's barrier wait: its own shard is done, the round
		// cannot advance until the last worker arrives.
		t0 := rec.BeginPhase(PhaseBarrier, 0)
		e.gate.wait()
		rec.EndPhase(PhaseBarrier, 0, e.round, t0)
		return
	}
	e.gate.wait()
}

// phaseShard runs one shard's slice of a phase, skipping shards the phase
// has no work for. Shards that do run are bracketed by the recorder's phase
// span when observability is on; skipped shards record nothing.
//
//mmlint:noalloc
func (e *stepEngine) phaseShard(phase int8, i int) {
	switch phase {
	case phaseStep:
		if len(e.shards[i].awake) > 0 {
			if rec := e.rec; rec != nil {
				t0 := rec.BeginPhase(PhaseStep, i)
				e.stepShard(&e.shards[i])
				rec.EndPhase(PhaseStep, i, e.round, t0)
				return
			}
			e.stepShard(&e.shards[i])
		}
	case phaseDeliver:
		if e.needsDelivery(i) {
			if rec := e.rec; rec != nil {
				t0 := rec.BeginPhase(PhaseDeliver, i)
				e.deliverShard(i)
				rec.EndPhase(PhaseDeliver, i, e.round, t0)
				return
			}
			e.deliverShard(i)
		}
	}
}

// needsDelivery reports whether a destination shard has anything to do in
// the delivery phase: fresh buckets staged for it, delayed messages due
// this round, or pulse-parked nodes to wake. Shared by the inline and
// worker paths, so empty shards are never drained on either.
//
//mmlint:noalloc
func (e *stepEngine) needsDelivery(d int) bool {
	sd := &e.shards[d]
	if sd.pendingN > 0 && len(sd.pending[e.round+1]) > 0 {
		return true
	}
	if e.pulseFired && len(sd.pulseSleepers) > 0 {
		return true
	}
	for si := range e.shards {
		if len(e.shards[si].out[d]) > 0 {
			return true
		}
	}
	return false
}

// startWorkers brings up the persistent worker pool: one goroutine per
// shard except shard 0, which the coordinator runs itself between releasing
// and waiting on the gate.
func (e *stepEngine) startWorkers() {
	e.gate = newPhaseGate(len(e.shards) - 1)
	for i := 1; i < len(e.shards); i++ {
		go e.workerLoop(i)
	}
}

// workerLoop is one persistent worker: woken by the gate for each phase, it
// runs its shard's slice and reports completion, until told to exit.
func (e *stepEngine) workerLoop(shard int) {
	rec := e.rec
	var epoch uint32
	for {
		var t0 int64
		if rec != nil {
			t0 = rec.BeginPhase(PhaseBarrier, shard)
		}
		epoch = e.gate.await(shard-1, epoch)
		phase := e.gate.phase
		if rec != nil {
			// Everything since the previous finish — the coordinator's
			// sequential section plus the gate wait — is time this worker
			// spent barred from shard work.
			rec.EndPhase(PhaseBarrier, shard, e.round, t0)
		}
		if phase != phaseExit {
			e.phaseShard(phase, shard)
		}
		e.gate.finish()
		if phase == phaseExit {
			return
		}
	}
}

func (e *stepEngine) stopWorkers() {
	if e.gate == nil {
		return
	}
	e.gate.release(phaseExit)
	e.gate.wait()
	e.gate = nil
}

// stepShard runs the compute phase for one shard: step every awake machine,
// stage its sends into the per-destination buckets, and summarize channel
// writes and halts. A machine panic is recorded against its node and halts
// that node; the rest of the round still runs everywhere (as it does on the
// goroutine engine), and the run aborts at the round's end with the
// lowest-node error.
//
//mmlint:noalloc
func (e *stepEngine) stepShard(s *stepShard) {
	defer func() {
		// Machine panics are handled batch-wise in stepNodes; this catches
		// engine-infrastructure failures in the phase itself, which would
		// otherwise kill a bare worker goroutine.
		if r := recover(); r != nil {
			e.recordErr(1<<31-1, fmt.Errorf("sim: step phase of shard [%d,%d) panicked: %v", s.lo, s.hi, r))
		}
	}()
	s.writers = 0
	s.halts = 0
	s.next = s.next[:0]
	for i := 0; i < len(s.awake); {
		i = e.stepNodes(s, i)
	}
	s.awake, s.next = s.next, s.awake
}

// stepNodes steps s.awake[start:] until the batch completes or a machine
// panics: the happy path pays for one deferred recover per batch instead of
// one per node step. On a panic the failing node's error is recorded, its
// sends and channel write staged before the panic are still committed
// (exactly as a goroutine program's are), the node leaves the run like an
// errored program, and the index after it is returned so the caller resumes
// the batch.
//
//mmlint:noalloc
func (e *stepEngine) stepNodes(s *stepShard, start int) (next int) {
	i := start
	defer func() {
		if r := recover(); r != nil {
			v := s.awake[i]
			if err := nodeFailure(graph.NodeID(v), r); err != nil {
				e.recordErr(graph.NodeID(v), err)
			}
			e.inboxLen[v] = 0
			e.commitNode(s, graph.NodeID(v))
			e.flags[v] |= flagHalted
			s.halts++
			next = i + 1
		}
	}()
	round, slot := e.round, e.slot
	for ; i < len(s.awake); i++ {
		v := s.awake[i]
		fl := e.flags[v]
		if fl&flagHalted != 0 {
			// Crash-stopped between being scheduled and this round.
			continue
		}
		e.flags[v] = fl &^ (flagScheduled | flagAsleep | flagPulseWake)
		in := Input{Round: round, Msgs: e.inboxOf(graph.NodeID(v)), Slot: slot}
		if e.roundBase != nil && e.roundBase[v] != 0 {
			// A restarted incarnation counts rounds from its revival: its
			// first step is a local round 0 — no messages, a zero slot —
			// exactly what a fresh node's machine sees.
			in.Round = round - int(e.roundBase[v])
			if in.Round == 0 {
				in.Msgs, in.Slot = nil, Slot{}
			}
		}
		halt := e.machines[v].Step(in)
		e.inboxLen[v] = 0
		if s.chPending || len(s.stage) > 0 {
			e.commitNode(s, graph.NodeID(v))
		}
		switch {
		case halt:
			e.flags[v] |= flagHalted
			e.results[v] = e.machines[v].Result()
			s.halts++
		case e.flags[v]&flagAsleep != 0:
			// Parked until a message (or, with pulseWake, an idle slot)
			// wakes it.
			if e.flags[v]&flagPulseWake != 0 {
				s.pulseSleepers = append(s.pulseSleepers, v)
			}
		default:
			e.flags[v] |= flagScheduled
			s.next = append(s.next, v)
		}
	}
	return i
}

// commitNode commits the stepping node's staged sends and channel write —
// accumulated in its shard's scratch — into the destination buckets and
// write summary, clearing the duplicate-send guard link by link.
//
//mmlint:noalloc
func (e *stepEngine) commitNode(s *stepShard, id graph.NodeID) {
	if s.chPending {
		s.writers++
		s.writerID = id
		s.writerPayload = s.chWrite
		s.chPending, s.chWrite = false, nil
	}
	for _, o := range s.stage {
		if o.link >= 0 {
			s.sentBits[o.link>>6] &^= uint64(1) << (o.link & 63)
		}
		d := int(o.to) / e.shardSize
		s.out[d] = append(s.out[d], delivered{to: o.to, from: id, edgeID: o.edgeID, payload: o.payload})
	}
	s.stage = s.stage[:0]
}

// deliverShard runs the delivery phase for one destination shard: wake
// pulse-parked nodes if the pulse fired, then land the round's messages —
// delayed deliveries due now first, then every source shard's bucket in
// shard order — in the shard's inbox arena: survivors are gathered in
// arrival order, counted per recipient, and laid out as one contiguous
// window per recipient, all in buffers reused round after round (steady-
// state delivery allocates nothing, adapter runs included). Multi-message
// inboxes are sorted by (sender, edge id) and sleeping recipients woken.
//
//mmlint:noalloc
func (e *stepEngine) deliverShard(d int) {
	sd := &e.shards[d]
	defer func() {
		if r := recover(); r != nil {
			e.recordErr(1<<31-1, fmt.Errorf("sim: delivery to shard %d panicked: %v", d, r))
		}
	}()
	deliverRound := e.round + 1
	if e.pulseFired && len(sd.pulseSleepers) > 0 {
		// The slot resolved idle: wake this shard's pulse-parked nodes so
		// they observe the pulse next round. Entries whose pulseWake flag is
		// gone were woken early by a message and already stepped since.
		for _, v := range sd.pulseSleepers {
			fl := e.flags[v]
			if fl&flagHalted != 0 || fl&flagPulseWake == 0 {
				continue
			}
			fl &^= flagPulseWake
			if fl&flagScheduled == 0 {
				fl = (fl | flagScheduled) &^ flagAsleep
				sd.awake = append(sd.awake, v)
			}
			e.flags[v] = fl
		}
		sd.pulseSleepers = sd.pulseSleepers[:0]
	}

	// Pass A: route everything due this round through the fault hook,
	// collecting survivors in arrival order (late deliveries first, then
	// source shards in shard order).
	sd.arrivals = sd.arrivals[:0]
	if late := sd.takePending(deliverRound); late != nil {
		for i := range late {
			m := &late[i]
			if e.flags[m.to]&flagHalted != 0 {
				if e.continuing {
					sd.dropped++
				}
				continue
			}
			sd.arrivals = append(sd.arrivals, *m)
		}
		sd.recyclePending(late)
	}
	msgFaults := e.inj.HasMsgFaults()
	for si := range e.shards {
		bucket := e.shards[si].out[d]
		if len(bucket) == 0 {
			continue
		}
		for i := range bucket {
			m := &bucket[i]
			sd.msgs++
			if msgFaults && !e.applyMsgFaults(sd, m, deliverRound) {
				m.payload = nil
				continue
			}
			if e.flags[m.to]&flagHalted != 0 {
				if e.continuing {
					sd.dropped++
				}
				m.payload = nil
				continue
			}
			sd.arrivals = append(sd.arrivals, *m)
			m.payload = nil
		}
		e.shards[si].out[d] = bucket[:0]
	}
	if len(sd.arrivals) == 0 {
		return
	}

	// Pass B: per-recipient counts, then the arena carved into per-node
	// windows filled in arrival order. counts doubles as the fill cursor
	// and is restored to zero on the way out.
	if sd.counts == nil {
		sd.ensureCounts()
	}
	arena := sd.arenaFor(len(sd.arrivals))
	for i := range sd.arrivals {
		t := int(sd.arrivals[i].to) - sd.lo
		if sd.counts[t] == 0 {
			sd.touched = append(sd.touched, int32(sd.arrivals[i].to))
		}
		sd.counts[t]++
	}
	off := int32(0)
	for _, v := range sd.touched {
		t := int(v) - sd.lo
		n := sd.counts[t]
		e.inboxOff[v] = off
		e.inboxLen[v] = n
		sd.counts[t] = off // becomes the node's next free index below
		off += n
	}
	for i := range sd.arrivals {
		m := &sd.arrivals[i]
		t := int(m.to) - sd.lo
		arena[sd.counts[t]] = Message{From: m.from, EdgeID: int(m.edgeID), Payload: m.payload}
		sd.counts[t]++
		m.payload = nil // release the scratch list's reference
	}
	for _, v := range sd.touched {
		sd.counts[int(v)-sd.lo] = 0
		if box := e.inboxOf(graph.NodeID(v)); len(box) > 1 {
			sortInbox(box)
		}
		// Wake the recipient, in first-arrival order.
		fl := e.flags[v]
		if fl&flagScheduled == 0 {
			e.flags[v] = (fl | flagScheduled) &^ flagAsleep
			sd.awake = append(sd.awake, v)
		}
	}
	if e.tw == nil {
		// With a transcript on, the coordinator digests and clears the
		// touched lists after the phase (emitRound); the hot path never
		// does transcript work.
		sd.touched = sd.touched[:0]
	}
}

// ensureCounts allocates the shard's per-recipient count array; called once
// per shard, on its first non-empty delivery.
func (sd *stepShard) ensureCounts() {
	sd.counts = make([]int32, sd.hi-sd.lo)
}

// applyMsgFaults routes one staged message through the injector. A false
// return means the message must not be delivered this round: destroyed, or
// deferred into the pending buffer. Duplicates are scheduled for later and
// the original still delivered now; a skewed sender's messages are deferred
// like delays, modeling its slow clock.
func (e *stepEngine) applyMsgFaults(sd *stepShard, m *delivered, deliverRound int) bool {
	switch fate, lag := e.inj.MsgFate(int(m.edgeID), m.from, m.to, deliverRound); fate {
	case fault.DropMsg:
		sd.faultDrops++
		return false
	case fault.PartitionDrop:
		sd.partDrops++
		return false
	case fault.DelayMsg, fault.DupMsg, fault.SkewMsg:
		if sd.pending == nil {
			sd.pending = make(map[int][]delivered)
		}
		key := deliverRound + lag
		lst, ok := sd.pending[key]
		if !ok && len(sd.pendingFree) > 0 {
			last := len(sd.pendingFree) - 1
			lst, sd.pendingFree = sd.pendingFree[last], sd.pendingFree[:last]
		}
		sd.pending[key] = append(lst, *m)
		sd.pendingN++
		switch fate {
		case fault.DelayMsg:
			sd.delayed++
			return false
		case fault.SkewMsg:
			sd.skewed++
			return false
		}
		sd.duped++
	}
	return true
}

// takePending removes and returns the pending bucket due at deliverRound,
// or nil.
//
//mmlint:noalloc
func (sd *stepShard) takePending(deliverRound int) []delivered {
	if sd.pendingN == 0 {
		return nil
	}
	late := sd.pending[deliverRound]
	if len(late) == 0 {
		return nil
	}
	delete(sd.pending, deliverRound)
	sd.pendingN -= len(late)
	return late
}

// recyclePending returns a drained pending bucket's backing array to the
// shard's free list, clearing its payload references.
//
//mmlint:noalloc
func (sd *stepShard) recyclePending(late []delivered) {
	clear(late)
	sd.pendingFree = append(sd.pendingFree, late[:0])
}

// sortInbox orders one inbox by (sender, edge id) — the delivery order both
// engines guarantee.
//
//mmlint:noalloc
func sortInbox(box []Message) {
	slices.SortFunc(box, func(a, b Message) int {
		if c := cmp.Compare(a.From, b.From); c != 0 {
			return c
		}
		return cmp.Compare(a.EdgeID, b.EdgeID)
	})
}

// abortMachines unwinds machines of nodes still live when the run ends —
// with the goroutine adapter these hold blocked program goroutines.
func (e *stepEngine) abortMachines() {
	for v := range e.machines {
		if e.flags[v]&flagHalted == 0 && e.machines[v] != nil {
			if ab, ok := e.machines[v].(aborter); ok {
				ab.abortRun()
			}
			e.flags[v] |= flagHalted
		}
	}
}

// recordErr keeps the lowest-node error of the failing round, so the
// reported failure is independent of the worker count and identical to the
// goroutine engine's — errors compete only within one round, because the
// run aborts at its end. Engine-level errors record as node -1; per-shard
// infrastructure failures as node MaxInt32 (never outranking a node).
func (e *stepEngine) recordErr(node graph.NodeID, err error) {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.firstErr == nil || node < e.errNode {
		e.errNode, e.firstErr = node, err
	}
}

func (e *stepEngine) err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// nodeFailure turns a recovered Step/init panic into the run's error,
// mirroring the goroutine engine's wording for program errors and panics.
func nodeFailure(id graph.NodeID, r any) error {
	if f, ok := r.(failError); ok {
		return fmt.Errorf("sim: node %d: %w", id, f.err)
	}
	if err, ok := r.(error); ok && errors.Is(err, errAborted) {
		return nil
	}
	return fmt.Errorf("sim: node %d panicked: %v", id, r)
}
