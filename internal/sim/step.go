package sim

// step.go implements the step-machine engine: the same synchronous
// multimedia-network model as the goroutine engine, executed as explicit
// per-node state machines on a sharded worker pool.
//
// Nodes are partitioned into contiguous shards. Every round has two
// barrier-separated phases:
//
//	step     each worker steps the awake machines of its shard; sends and
//	         channel writes are staged into per-shard, per-destination-shard
//	         outbox buckets (no locks, no per-node channel handoffs);
//	deliver  each worker drains the buckets addressed to its shard into the
//	         per-node inboxes, sorts multi-message inboxes by (sender, edge
//	         id), and wakes sleeping recipients.
//
// The phases are coordinated by a persistent-worker, sense-reversing atomic
// barrier (gate.go): a phase transition costs a few atomics, not 2×shards
// channel operations, and shards with nothing to do in a phase are skipped
// by a shared need-check. All buffers (inboxes, outboxes, awake lists) are
// reused across rounds, so a steady-state round allocates nothing beyond
// what machines themselves allocate. Machines that have nothing to do until
// a message arrives call StepCtx.Sleep; combined with the awake lists this
// makes the per-round cost proportional to the number of active nodes, not
// n. When every live node is parked the engine does not even spin empty
// rounds: it fast-forwards straight to the next event that can wake a
// machine (fastForward below), so fully quiescent stretches cost zero.
//
// Determinism: machines are constructed and stepped against per-node state
// only, per-node RNGs are derived exactly as in the goroutine engine, and
// inboxes are sorted to the same (sender, edge id) order, so a fixed seed
// yields a bit-identical transcript for any worker count and either engine.

import (
	"cmp"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Engine selects the execution model backing Run.
type Engine int

// The execution models.
const (
	// EngineGoroutine runs one blocking goroutine per node with a central
	// scheduler — the historical engine.
	EngineGoroutine Engine = iota + 1
	// EngineStep runs the sharded step-machine engine; goroutine Programs
	// are executed through a built-in adapter.
	EngineStep
)

// String returns the flag spelling of the engine.
func (e Engine) String() string {
	switch e {
	case EngineGoroutine:
		return "goroutine"
	case EngineStep:
		return "step"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine maps a -engine flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "goroutine", "go":
		return EngineGoroutine, nil
	case "step":
		return EngineStep, nil
	default:
		return 0, fmt.Errorf("sim: unknown engine %q (want goroutine|step)", s)
	}
}

// DefaultEngine is the engine Run uses when no WithEngine option is given.
// Commands set it from their -engine flag so every protocol in the process
// routes through the selected engine.
var DefaultEngine = EngineGoroutine

// DefaultWorkers is the step engine's worker count when no WithWorkers
// option is given; 0 means GOMAXPROCS.
var DefaultWorkers = 0

// Machine is one node's compiled step program: the per-round half of the
// native step API.
//
// Step is called once per round with that round's input (round 0 carries no
// messages and a zero slot, mirroring the code a goroutine Program runs
// before its first Tick). Sends and channel writes staged during Step are
// committed when it returns; returning true halts the node, with any staged
// sends still delivered. The Input and its Msgs are engine-owned and only
// valid during the call.
//
// Result is the result hook: it is called once, when the node halts, and
// its value lands in the run's Result.Results slot for the node. A node
// crash-stopped by fault injection records a nil result instead — it never
// reached its halt, mirroring a goroutine program that never called
// SetResult.
type Machine interface {
	Step(in Input) (halt bool)
	Result() any
}

// StepProgram is the init hook of the native step API: it is called once
// per node, in node order, before round 0, and returns the node's Machine.
// Implementations typically capture c and per-node protocol state in the
// returned machine. It must not send or write the channel; it may draw from
// c.Rand.
type StepProgram func(c *StepCtx) Machine

// stagedSend is one queued point-to-point message in a StepCtx's outbox.
// link is the sender-local link index (used to reset the duplicate-send
// guard) or -1 for messages staged by the goroutine adapter, which has
// already enforced the model's one-send-per-link rule in Ctx.
type stagedSend struct {
	to      graph.NodeID
	edgeID  int32
	link    int32
	payload Payload
}

// delivered is one message in flight between the step and deliver phases.
type delivered struct {
	to      graph.NodeID
	from    graph.NodeID
	edgeID  int32
	payload Payload
}

// peerLink is one entry of a node's lazily built neighbor index, sorted by
// peer id for binary search.
type peerLink struct {
	peer graph.NodeID
	link int32
}

// StepCtx is a node's handle to the network under the step engine: the same
// API surface as Ctx minus Tick (the engine calls Machine.Step instead),
// plus Sleep. All methods must be called only from the node's Machine
// during Step (or from its StepProgram during construction, for the
// read-only ones). Methods panic on model violations; a panic aborts the
// run with an error naming the node.
type StepCtx struct {
	id      graph.NodeID
	eng     *stepEngine
	rng     *rand.Rand
	rngCS   *countedSource // rng's draw-counting source (checkpoint position)
	rngSeed int64

	round     int
	out       []stagedSend
	chWrite   Payload
	chPending bool

	asleep    bool // set by Sleep, cleared before every Step
	pulseWake bool // set by SleepUntilPulse: also wake on an idle slot
	scheduled bool // already on some shard's awake list for the next round
	halted    bool
	machine   Machine
	result    any

	peerIdx []peerLink // lazy neighbor index for O(log d) Link on big nodes
}

// ID returns this node's identifier.
func (c *StepCtx) ID() graph.NodeID { return c.id }

// N returns the number of nodes in the network (known to all nodes, §2).
func (c *StepCtx) N() int { return c.eng.topo.N() }

// Topo returns the immutable network topology.
func (c *StepCtx) Topo() graph.Topology { return c.eng.topo }

// Adj returns this node's incident links sorted by ascending weight. On an
// implicit topology every call computes (and allocates) the list; machines
// on hot paths should capture it once or use Degree/Send/LinkOf, which
// never materialize adjacency.
func (c *StepCtx) Adj() []graph.Half {
	if g := c.eng.mat; g != nil {
		return g.Adj(c.id)
	}
	return c.eng.topo.Adj(c.id)
}

// Degree returns the number of incident links.
func (c *StepCtx) Degree() int {
	if g := c.eng.mat; g != nil {
		return g.Degree(c.id)
	}
	return c.eng.topo.Degree(c.id)
}

// Round returns the current round number.
func (c *StepCtx) Round() int { return c.round }

// Rand returns this node's private deterministic RNG, derived from the
// master seed exactly as in the goroutine engine and created lazily. The
// source counts its draws, so the generator's position is checkpointable.
func (c *StepCtx) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng, c.rngCS = newNodeRand(c.rngSeed, 0)
	}
	return c.rng
}

// LinkOf returns the local link index of the given edge id. The stored
// form answers from the engine's O(m) edge index; implicit forms compute
// the rank of the edge's weight among the node's links in O(degree).
func (c *StepCtx) LinkOf(edgeID int) int {
	if la := c.eng.linkAt; la != nil {
		e := c.eng.mat.Edge(edgeID)
		switch c.id {
		case e.U:
			return int(la[edgeID][0])
		case e.V:
			return int(la[edgeID][1])
		default:
			panic(fmt.Sprintf("sim: node %d has no link with edge id %d", c.id, edgeID))
		}
	}
	l, ok := c.eng.topo.LinkIndex(c.id, edgeID)
	if !ok {
		panic(fmt.Sprintf("sim: node %d has no link with edge id %d", c.id, edgeID))
	}
	return l
}

// linkIndexThreshold: below this degree a linear Adj scan beats building
// and searching the sorted neighbor index.
const linkIndexThreshold = 16

// Link returns the local link index leading to the given neighbor. For
// high-degree nodes the lookup is O(log d) through a lazily built sorted
// index (a star hub answering n-1 SendTo calls used to pay a linear Adj
// scan each, making the round quadratic).
func (c *StepCtx) Link(to graph.NodeID) (int, bool) {
	d := c.Degree()
	if d < linkIndexThreshold {
		if g := c.eng.mat; g != nil {
			for l, h := range g.Adj(c.id) {
				if h.To == to {
					return l, true
				}
			}
			return 0, false
		}
		var arr [linkIndexThreshold]graph.Half
		for l, h := range c.eng.topo.AdjAppend(c.id, arr[:0]) {
			if h.To == to {
				return l, true
			}
		}
		return 0, false
	}
	if c.peerIdx == nil {
		adj := c.Adj()
		c.peerIdx = make([]peerLink, len(adj))
		for l, h := range adj {
			c.peerIdx[l] = peerLink{peer: h.To, link: int32(l)}
		}
		slices.SortFunc(c.peerIdx, func(a, b peerLink) int { return cmp.Compare(a.peer, b.peer) })
	}
	i, ok := slices.BinarySearchFunc(c.peerIdx, to, func(e peerLink, t graph.NodeID) int { return cmp.Compare(e.peer, t) })
	if !ok {
		return 0, false
	}
	return int(c.peerIdx[i].link), true
}

// Send queues a message on the link with the given local index for delivery
// at the start of the next round. At most one message may be sent per link
// per round.
func (c *StepCtx) Send(link int, p Payload) {
	var h graph.Half
	if g := c.eng.mat; g != nil {
		adj := g.Adj(c.id)
		if link < 0 || link >= len(adj) {
			panic(fmt.Sprintf("sim: node %d send on link %d of %d", c.id, link, len(adj)))
		}
		h = adj[link]
	} else {
		if d := c.eng.topo.Degree(c.id); link < 0 || link >= d {
			panic(fmt.Sprintf("sim: node %d send on link %d of %d", c.id, link, d))
		}
		h = c.eng.topo.HalfAt(c.id, link)
	}
	idx := c.eng.sentOff[c.id] + link
	if c.eng.sentFlags[idx] {
		panic(fmt.Sprintf("sim: node %d sent twice on edge %d in round %d", c.id, h.EdgeID, c.round))
	}
	c.eng.sentFlags[idx] = true
	c.out = append(c.out, stagedSend{to: h.To, edgeID: int32(h.EdgeID), link: int32(link), payload: p})
}

// SendTo queues a message to the given neighbor.
func (c *StepCtx) SendTo(to graph.NodeID, p Payload) {
	l, ok := c.Link(to)
	if !ok {
		panic(fmt.Sprintf("sim: node %d is not adjacent to %d", c.id, to))
	}
	c.Send(l, p)
}

// Broadcast writes p to the current channel slot. At most one write per
// round; the slot resolves to success only if this node is the sole writer.
func (c *StepCtx) Broadcast(p Payload) {
	if c.chPending {
		panic(fmt.Sprintf("sim: node %d wrote the channel twice in round %d", c.id, c.round))
	}
	c.chPending = true
	c.chWrite = p
}

// Busy transmits a busy tone on the channel this round (§7.1 barrier).
func (c *StepCtx) Busy() { c.Broadcast(BusyTone{}) }

// SentThisRound reports whether this node queued any point-to-point message
// in the current round.
func (c *StepCtx) SentThisRound() bool { return len(c.out) > 0 }

// Sleep parks this node after the current Step returns: the engine skips it
// every round until a message arrives, at which point it is woken and
// stepped with that round's input. A sleeping node does not observe the
// channel, so only protocols that synchronize by messages may use it; it is
// what makes wavefront protocols on million-node graphs cost O(work), not
// O(n·rounds). Sleeping with no message ever due wedges the protocol; the
// engine detects the fully quiescent case and fails the run.
func (c *StepCtx) Sleep() { c.asleep = true }

// SleepUntilPulse parks this node like Sleep, but additionally wakes it on
// the barrier pulse: the first round whose input carries an idle slot
// (Input.IsPulse). It is the sparse-activation primitive for protocols
// synchronized by the §7.1 channel barrier — a node that is passive within a
// barrier step (it will act again only on a message or when the step
// globally terminates) may park instead of observing every busy slot, which
// turns O(n · rounds) barrier phases into O(work). A node woken by a message
// before the pulse is stepped normally; if it parks again it must call
// SleepUntilPulse again.
func (c *StepCtx) SleepUntilPulse() { c.asleep = true; c.pulseWake = true }

// failError carries a protocol-level failure out of a Machine via panic;
// the engine records it verbatim instead of as a node panic.
type failError struct{ err error }

// Failf aborts the run with an error attributed to this node — the native
// API's analog of a goroutine Program returning an error.
func (c *StepCtx) Failf(format string, args ...any) {
	panic(failError{err: fmt.Errorf(format, args...)})
}

// aborter is implemented by machines that need unwinding when the engine
// aborts a run with live nodes (the goroutine adapter's blocked programs).
type aborter interface{ abortRun() }

// stepShard is one contiguous slice of the node range plus every per-shard
// buffer the two phases reuse round after round.
type stepShard struct {
	lo, hi int

	awake []int32 // nodes to step this round; survivors + woken for the next
	next  []int32 // scratch for building the survivor list

	// Nodes of this shard parked by SleepUntilPulse, woken in the delivery
	// phase of the first round whose slot resolved idle. Entries are lazily
	// invalidated: a node woken early by a message clears its pulseWake flag
	// on its next step, so stale entries are skipped when the pulse fires.
	pulseSleepers []int32

	out     [][]delivered // staged messages, bucketed by destination shard
	touched []int32       // nodes that received mail this round (sort + reuse)

	// Delayed and duplicated messages addressed to this shard, held until
	// their fault-assigned delivery round. Shard-local, so the delivery
	// phase mutates it without locks. Drained buckets are recycled through
	// pendingFree instead of reallocated.
	pending     map[int][]delivered
	pendingN    int
	pendingFree [][]delivered

	// Scratch for the arena delivery path (adapter runs): the round's
	// surviving messages in arrival order, and per-node counts/offsets.
	arrivals []delivered
	counts   []int32

	writers       int
	writerID      graph.NodeID
	writerPayload Payload
	halts         int
	msgs          int64
	dropped       int64
	faultDrops    int64
	delayed       int64
	duped         int64
	partDrops     int64
	skewed        int64
}

const (
	phaseStep int8 = iota + 1
	phaseDeliver
	// inlineThreshold: with fewer awake nodes than this, the coordinator
	// steps them itself rather than paying the worker fan-out/fan-in.
	inlineThreshold = 256
)

type stepEngine struct {
	topo    graph.Topology
	mat     *graph.Graph // topo's stored form, or nil — gates the O(m) fast-path indexes
	cfg     config
	program StepProgram       // the init hook, kept for crash-restart revival
	inj     *fault.Injector   // nil for fault-free runs
	rec     Recorder          // nil = observability off (the zero-cost path)
	tw      *TranscriptWriter // nil = transcripts off; emission is coordinator-only
	ck      *ckptState        // nil = checkpoints off
	reuse   bool              // reuse inbox buffers (native runs; the adapter reallocates)

	topoDigest uint64 // lazy topologyDigest cache (0 = not yet computed)

	nodes []StepCtx
	inbox [][]Message

	// Crash-restart state, allocated only when the plan has restart rules.
	// crashed marks fault-crashed (revivable) nodes — a node that halted
	// normally is not revivable; roundBase is the global round a node's
	// current incarnation joined at (its local round 0); incarn counts
	// restarts, keying the incarnation's RNG stream.
	crashed   []bool
	roundBase []int32
	incarn    []int32

	linkAt    [][2]int32 // edge id -> local link index at (U, V); stored form only
	sentOff   []int      // per-node offset into sentFlags
	sentFlags []bool     // one duplicate-send guard per directed half-edge

	shards    []stepShard
	shardSize int
	workers   int

	round      int
	slot       Slot
	pulseFired bool // this round's slot resolved idle (after jamming)
	continuing bool
	alive      int
	met        Metrics

	errMu    sync.Mutex
	errNode  graph.NodeID
	firstErr error

	gate *phaseGate // nil when single-worker
}

// disableFastForward forces the per-round path through quiescent stretches;
// tests flip it to check the fast-forward arithmetic differentially.
var disableFastForward bool

// RunStep executes one Machine per node of g — any graph.Topology form —
// until all machines halt, and returns aggregate metrics and per-node
// results — the native entry point of the step engine. Options are shared
// with Run; WithEngine is ignored. On an implicit topology the engine keeps
// only per-node state: the topology itself contributes O(1) memory, which
// is what makes 10⁷–10⁸-node runs fit.
func RunStep(g graph.Topology, program StepProgram, opts ...Option) (*Result, error) {
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.resolveMaxRounds(g)
	return runStepEngine(g, program, cfg, true)
}

// runStepEngine builds the engine, applies a resume checkpoint when one is
// configured, and runs the round loop from the appropriate round.
func runStepEngine(g graph.Topology, program StepProgram, cfg config, reuseInboxes bool) (*Result, error) {
	e, err := newStepEngine(g, program, cfg, reuseInboxes)
	if err != nil {
		return nil, err
	}
	start := 0
	if cp := cfg.resume; cp != nil {
		if err := e.restore(cp); err != nil {
			return nil, err
		}
		start = cp.Round
	}
	return e.run(start)
}

// newStepEngine compiles the fault plan, sizes the shards, and runs the
// init hook — everything up to (but not including) round 0.
func newStepEngine(g graph.Topology, program StepProgram, cfg config, reuseInboxes bool) (*stepEngine, error) {
	inj, err := fault.CompileFor(cfg.plan(), g, cfg.caps())
	if err != nil {
		return nil, err
	}
	n := g.N()
	workers := cfg.workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers <= 0 {
		//mmlint:nondet sizes the worker pool only; transcripts are worker-count-invariant (difftest-enforced)
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	mat, _ := g.(*graph.Graph)
	e := &stepEngine{
		topo:    g,
		mat:     mat,
		cfg:     cfg,
		program: program,
		inj:     inj,
		rec:     cfg.recorder(),
		tw:      cfg.transcript(),
		reuse:   reuseInboxes,
		nodes:   make([]StepCtx, n),
		inbox:   make([][]Message, n),
		sentOff: make([]int, n),
		workers: workers,
		alive:   n,
	}
	if inj.HasRestarts() {
		e.crashed = make([]bool, n)
		e.roundBase = make([]int32, n)
		e.incarn = make([]int32, n)
	}
	if cfg.ckpt != nil {
		e.ck = newCkptState(cfg.ckpt)
	}
	off := 0
	for v := 0; v < n; v++ {
		e.sentOff[v] = off
		off += g.Degree(graph.NodeID(v))
	}
	e.sentFlags = make([]bool, off)
	if mat != nil {
		// Stored form: build the O(m) edge→link index LinkOf answers from.
		// Implicit forms skip it (LinkIndex computes per query), keeping the
		// engine's footprint independent of m beyond the send guards.
		e.linkAt = make([][2]int32, mat.M())
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			for l, h := range mat.Adj(id) {
				if mat.Edge(int(h.EdgeID)).U == id {
					e.linkAt[h.EdgeID][0] = int32(l)
				} else {
					e.linkAt[h.EdgeID][1] = int32(l)
				}
			}
		}
	}

	e.shardSize = (n + workers - 1) / workers
	shardCount := (n + e.shardSize - 1) / e.shardSize
	e.shards = make([]stepShard, shardCount)
	for i := range e.shards {
		s := &e.shards[i]
		s.lo = i * e.shardSize
		s.hi = min(s.lo+e.shardSize, n)
		s.out = make([][]delivered, shardCount)
		s.awake = make([]int32, 0, s.hi-s.lo)
		for v := s.lo; v < s.hi; v++ {
			s.awake = append(s.awake, int32(v))
		}
	}

	// Init hook: build every node's machine, in node order.
	for v := 0; v < n; v++ {
		sc := &e.nodes[v]
		sc.id = graph.NodeID(v)
		sc.eng = e
		sc.rngSeed = nodeSeed(cfg.seed, graph.NodeID(v))
		sc.scheduled = true
		if err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = nodeFailure(sc.id, r)
				}
			}()
			sc.machine = program(sc)
			return nil
		}(); err != nil {
			return nil, err
		}
		if sc.machine == nil {
			return nil, fmt.Errorf("sim: step program returned a nil machine for node %d", sc.id)
		}
	}
	return e, nil
}

// run executes the round loop from the given round (0 for a fresh run, the
// checkpoint's round on a resume) until every machine halts or the run
// fails.
func (e *stepEngine) run(start int) (res *Result, err error) {
	n := e.topo.N()
	if rec := e.rec; rec != nil {
		rec.RunStart(n, EngineStep, e.workers, len(e.shards))
	}
	if tw := e.tw; tw != nil {
		tw.begin(n, e.cfg.seed, e.cfg.planString(), "")
	}
	if e.workers > 1 {
		e.startWorkers()
		defer e.stopWorkers()
	}
	defer e.abortMachines() // no-op unless the run ends with live adapters

	stepped := make([]int, 0, len(e.shards))
	awakeTotal := 0
	for i := range e.shards {
		awakeTotal += len(e.shards[i].awake)
	}
	for round := start; ; round++ {
		e.round = round
		if e.ck != nil && round > start && e.ck.due(round) {
			if err := e.writeCheckpoint(round); err != nil {
				e.recordErr(-1, fmt.Errorf("sim: checkpoint at round %d: %w", round, err))
				break
			}
		}
		// Crash-restarts due this round revive after the checkpoint capture
		// (a checkpoint at the restart round records the pre-restart state,
		// so a resume re-applies the restart deterministically) and are not
		// gated on round > start for the same reason.
		if e.crashed != nil {
			e.reviveRestarts(round)
		}
		stepped = stepped[:0]
		for i := range e.shards {
			if len(e.shards[i].awake) > 0 {
				stepped = append(stepped, i)
			}
		}
		e.runPhase(phaseStep, stepped, awakeTotal)

		e.met.Rounds = round + 1

		// Resolve the channel slot from the per-shard write summaries.
		writers := 0
		var wid graph.NodeID
		var wpayload Payload
		for _, si := range stepped {
			s := &e.shards[si]
			if s.writers > 0 {
				writers += s.writers
				wid, wpayload = s.writerID, s.writerPayload
				s.writerPayload = nil
			}
			e.alive -= s.halts
		}
		slot := Slot{State: SlotIdle}
		if e.inj.Jammed(round + 1) {
			// A jammed slot hides any writer behind a forced collision.
			e.met.SlotsJammed++
			slot = Slot{State: SlotCollision}
		} else {
			switch {
			case writers == 0:
				e.met.SlotsIdle++
			case writers == 1:
				e.met.SlotsSuccess++
				slot = Slot{State: SlotSuccess, From: wid, Payload: wpayload}
			default:
				e.met.SlotsCollision++
				slot = Slot{State: SlotCollision}
			}
		}
		e.slot = slot
		e.pulseFired = slot.State == SlotIdle

		// Crash-stop the nodes scheduled to fail before observing round+1.
		// Their round-round sends (staged above) are still delivered;
		// messages addressed to them join the halted-drop count.
		for _, v := range e.inj.CrashesAt(round + 1) {
			sc := &e.nodes[v]
			if sc.halted {
				continue
			}
			// A crash-stopped node records no result — it never reached its
			// halt — except through the goroutine adapter, whose program may
			// have called SetResult before the crash (the goroutine engine
			// keeps that partial value, so the adapter must too).
			if ab, ok := sc.machine.(aborter); ok {
				ab.abortRun()
				sc.result = sc.machine.Result()
			}
			sc.halted = true
			if e.crashed != nil {
				e.crashed[v] = true
			}
			e.alive--
			e.met.Crashed++
		}

		failed := e.err() != nil
		if e.alive > 0 && !failed && round+1 > e.cfg.maxRounds {
			e.recordErr(-1, fmt.Errorf("%w: budget %d", ErrMaxRounds, e.cfg.maxRounds))
			failed = true
		}
		e.continuing = e.alive > 0 && !failed

		// Delivery stats accrue in destination shards; zero them all first
		// since only shards with pending buckets are necessarily drained.
		for i := range e.shards {
			s := &e.shards[i]
			s.msgs, s.dropped, s.faultDrops, s.delayed, s.duped = 0, 0, 0, 0, 0
			s.partDrops, s.skewed = 0, 0
		}
		e.runPhase(phaseDeliver, stepped, awakeTotal)
		for i := range e.shards {
			s := &e.shards[i]
			e.met.Messages += s.msgs
			e.met.DroppedHalted += s.dropped
			e.met.DroppedFault += s.faultDrops
			e.met.Delayed += s.delayed
			e.met.Duplicated += s.duped
			e.met.PartitionedDrop += s.partDrops
			e.met.Skewed += s.skewed
		}

		awakeTotal = 0
		for i := range e.shards {
			awakeTotal += len(e.shards[i].awake)
		}
		if e.tw != nil && e.continuing {
			e.emitRound(round)
		}
		if rec := e.rec; rec != nil {
			rec.RoundEnd(round+1, awakeTotal, slot.State, &e.met)
		}
		if !e.continuing {
			break
		}
		if awakeTotal == 0 && !disableFastForward {
			// Fully parked network, nothing staged: no machine can run until
			// a delayed delivery, a crash, a pulse, or the round budget
			// fires. Jump straight to that event, accruing the skipped
			// rounds' writer-free slots arithmetically, so quiescent
			// stretches — including a genuine wedge spinning to ErrMaxRounds
			// — cost O(1) instead of O(shards) per round while keeping
			// transcripts and Metrics bit-identical with the per-round path
			// (and with the goroutine form of the protocol). With a
			// transcript installed the traced variant synthesizes the skipped
			// rounds' frames instead, so the stream stays byte-identical to a
			// per-round engine's.
			if e.tw != nil {
				round = e.fastForwardTraced(round)
			} else {
				round = e.fastForward(round)
			}
		}
	}

	e.abortMachines()
	if rec := e.rec; rec != nil {
		rec.RunEnd(&e.met)
	}
	res = &Result{Metrics: e.met, Results: make([]any, n)}
	for v := range e.nodes {
		res.Results[v] = e.nodes[v].result
	}
	if tw := e.tw; tw != nil {
		tw.finalFrame(&e.met, res.Results, e.err())
	}
	if err := e.err(); err != nil {
		return nil, err
	}
	return res, nil
}

// reviveRestarts applies the crash-restarts due at this round: each revived
// node is rebuilt from scratch — the init hook runs again, producing a fresh
// machine with reset protocol state, the RNG stream is re-derived for the
// new incarnation, and the round base makes its next step a local round 0 —
// exactly a fresh node joining mid-run. Only fault-crashed nodes revive; a
// node that halted normally stays halted.
func (e *stepEngine) reviveRestarts(round int) {
	for _, v := range e.inj.RestartsAt(round) {
		sc := &e.nodes[v]
		if !sc.halted || !e.crashed[v] {
			continue
		}
		e.crashed[v] = false
		e.incarn[v]++
		e.roundBase[v] = int32(round)
		*sc = StepCtx{id: graph.NodeID(v), eng: e, scheduled: true}
		sc.rngSeed = nodeSeedAt(e.cfg.seed, sc.id, int(e.incarn[v]))
		if e.reuse {
			e.inbox[v] = e.inbox[v][:0]
		} else {
			e.inbox[v] = nil
		}
		if err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = nodeFailure(sc.id, r)
				}
			}()
			sc.machine = e.program(sc)
			return nil
		}(); err != nil {
			e.recordErr(sc.id, err)
			sc.halted = true
			continue
		}
		if sc.machine == nil {
			e.recordErr(sc.id, fmt.Errorf("sim: step program returned a nil machine for node %d", sc.id))
			sc.halted = true
			continue
		}
		si := int(v) / e.shardSize
		e.shards[si].awake = append(e.shards[si].awake, int32(v))
		e.alive++
		e.met.Restarted++
	}
}

// emitRound streams one executed round's transcript frame: the shards'
// touched lists name every inbox delivered this round; they are gathered,
// sorted, digested, and cleared coordinator-side, keeping transcript I/O
// (and its allocations) out of the //mmlint:noalloc delivery phase. With no
// writer installed the lists are cleared inside the delivery phase itself
// and this function is never reached.
func (e *stepEngine) emitRound(round int) {
	tw := e.tw
	f := RoundFrame{Round: round + 1, Slot: e.slot.State, Alive: e.alive, Met: e.met}
	if e.slot.State == SlotSuccess {
		f.From = e.slot.From
		f.SlotDigest = payloadDigest(e.slot.Payload)
	}
	tw.touched = tw.touched[:0]
	for i := range e.shards {
		sd := &e.shards[i]
		tw.touched = append(tw.touched, sd.touched...)
		sd.touched = sd.touched[:0]
	}
	slices.Sort(tw.touched)
	f.Nodes = tw.nodes[:0]
	for _, v := range tw.touched {
		box := e.inbox[v]
		if len(box) == 0 {
			continue
		}
		var d uint64
		d, tw.scratch = inboxDigest(box, tw.scratch)
		f.Nodes = append(f.Nodes, NodeDigest{Node: graph.NodeID(v), Digest: d})
	}
	tw.nodes = f.Nodes
	tw.WriteRound(&f)
}

// fastForward is the quiescent-round fast-forward, called at the bottom of
// iteration r when every live node is parked and no message is staged. It
// returns the iteration to resume per-round execution before (the caller's
// round++ lands on it); returning r resumes normally at r+1.
//
// With the network fully parked, a later iteration q can only observe:
// delayed/duplicated messages due at round q+1 (deposited by iteration q),
// crashes scheduled at q+1 (applied by iteration q), a pulse waking
// SleepUntilPulse-parked nodes (the first slot from q+1 on resolving idle),
// or the round budget (iteration maxRounds records ErrMaxRounds). Every
// iteration before the earliest such event just resolves a writer-free slot
// — idle, or a jammed collision — so the engine skips them and accrues
// those slots arithmetically.
//
//mmlint:noalloc
func (e *stepEngine) fastForward(r int) int {
	R := e.ffTarget(r)
	if R <= r+1 {
		return r
	}
	// Iterations r+1 .. R-1 resolve slots r+2 .. R, all writer-free.
	skipped := int64(R - r - 1)
	jammed := e.inj.CountJammed(r+2, R)
	e.met.SlotsJammed += jammed
	e.met.SlotsIdle += skipped - jammed
	if rec := e.rec; rec != nil {
		rec.FastForward(r+2, R)
	}
	return R - 1
}

// ffTarget computes the fast-forward target: the earliest iteration after r
// that can change any state — and must therefore execute per-round — with
// everything before it writer-free. Shared by the plain and traced forms.
//
//mmlint:noalloc
func (e *stepEngine) ffTarget(r int) int {
	// The budget fails at iteration maxRounds (round+1 > maxRounds there).
	R := e.cfg.maxRounds
	// Delayed/duplicated messages due at round p are deposited by
	// iteration p-1.
	for i := range e.shards {
		s := &e.shards[i]
		if s.pendingN == 0 {
			continue
		}
		//mmlint:commutative min reduction over due rounds; order-free
		for p := range s.pending {
			if p-1 < R {
				R = p - 1
			}
		}
	}
	// Crashes at round c are applied by iteration c-1; iteration r already
	// applied round r+1's.
	if c, ok := e.inj.NextCrashAfter(r + 1); ok && c-1 < R {
		R = c - 1
	}
	// Restarts at round q revive at the top of iteration q, which must
	// therefore execute; iteration r already applied round r's.
	if q, ok := e.inj.NextRestartAfter(r); ok && q < R {
		R = q
	}
	if R > r+1 && e.hasPulseSleepers() {
		// Parked pulse waiters wake at the first non-jammed slot (writers
		// are impossible while everyone is parked); without jam rules that
		// is the very next one, and no rounds are skipped at all.
		if s, ok := e.inj.NextClearSlot(r+2, R); ok && s-1 < R {
			R = s - 1
		}
	}
	// A pending checkpoint round must land on an executed iteration top, so
	// the skip may not jump past it — checkpointing mid-fast-forward means
	// clamping the forward jump to the capture point.
	if e.ck != nil {
		if q, ok := e.ck.nextAfter(r); ok && q < R {
			R = q
		}
	}
	return R
}

// fastForwardTraced is fastForward with a transcript installed: the skipped
// rounds' frames are synthesized one by one — slot resolution per skipped
// round, incremental metrics — so the emitted stream is byte-identical to
// an engine that executed every round. The per-round cost this reintroduces
// is the price of observation, paid only when a transcript is on.
func (e *stepEngine) fastForwardTraced(r int) int {
	R := e.ffTarget(r)
	if R <= r+1 {
		return r
	}
	for s := r + 2; s <= R; s++ {
		state := SlotIdle
		if e.inj.Jammed(s) {
			e.met.SlotsJammed++
			state = SlotCollision
		} else {
			e.met.SlotsIdle++
		}
		e.met.Rounds = s
		f := RoundFrame{Round: s, Slot: state, Alive: e.alive, Met: e.met}
		e.tw.WriteRound(&f)
	}
	if rec := e.rec; rec != nil {
		rec.FastForward(r+2, R)
	}
	return R - 1
}

// hasPulseSleepers reports whether any node is parked awaiting the pulse,
// compacting entries invalidated by an early message wake or a crash.
//
//mmlint:noalloc
func (e *stepEngine) hasPulseSleepers() bool {
	any := false
	for i := range e.shards {
		s := &e.shards[i]
		if len(s.pulseSleepers) == 0 {
			continue
		}
		kept := s.pulseSleepers[:0]
		for _, v := range s.pulseSleepers {
			sc := &e.nodes[v]
			if !sc.halted && sc.pulseWake {
				kept = append(kept, v)
			}
		}
		s.pulseSleepers = kept
		any = any || len(kept) > 0
	}
	return any
}

// runPhase executes one phase over the shards, inline when the round is
// small or the engine single-threaded, on the persistent worker pool behind
// the phase gate otherwise (the coordinator takes shard 0 itself).
//
//mmlint:noalloc
func (e *stepEngine) runPhase(phase int8, stepped []int, awakeTotal int) {
	if e.gate == nil || awakeTotal < inlineThreshold {
		switch phase {
		case phaseStep:
			for _, si := range stepped {
				e.phaseShard(phase, si)
			}
		case phaseDeliver:
			for d := range e.shards {
				e.phaseShard(phase, d)
			}
		}
		return
	}
	e.gate.release(phase)
	e.phaseShard(phase, 0)
	if rec := e.rec; rec != nil {
		// The coordinator's barrier wait: its own shard is done, the round
		// cannot advance until the last worker arrives.
		t0 := rec.BeginPhase(PhaseBarrier, 0)
		e.gate.wait()
		rec.EndPhase(PhaseBarrier, 0, e.round, t0)
		return
	}
	e.gate.wait()
}

// phaseShard runs one shard's slice of a phase, skipping shards the phase
// has no work for. Shards that do run are bracketed by the recorder's phase
// span when observability is on; skipped shards record nothing.
//
//mmlint:noalloc
func (e *stepEngine) phaseShard(phase int8, i int) {
	switch phase {
	case phaseStep:
		if len(e.shards[i].awake) > 0 {
			if rec := e.rec; rec != nil {
				t0 := rec.BeginPhase(PhaseStep, i)
				e.stepShard(&e.shards[i])
				rec.EndPhase(PhaseStep, i, e.round, t0)
				return
			}
			e.stepShard(&e.shards[i])
		}
	case phaseDeliver:
		if e.needsDelivery(i) {
			if rec := e.rec; rec != nil {
				t0 := rec.BeginPhase(PhaseDeliver, i)
				e.deliverShard(i)
				rec.EndPhase(PhaseDeliver, i, e.round, t0)
				return
			}
			e.deliverShard(i)
		}
	}
}

// needsDelivery reports whether a destination shard has anything to do in
// the delivery phase: fresh buckets staged for it, delayed messages due
// this round, or pulse-parked nodes to wake. Shared by the inline and
// worker paths, so empty shards are never drained on either.
//
//mmlint:noalloc
func (e *stepEngine) needsDelivery(d int) bool {
	sd := &e.shards[d]
	if sd.pendingN > 0 && len(sd.pending[e.round+1]) > 0 {
		return true
	}
	if e.pulseFired && len(sd.pulseSleepers) > 0 {
		return true
	}
	for si := range e.shards {
		if len(e.shards[si].out[d]) > 0 {
			return true
		}
	}
	return false
}

// startWorkers brings up the persistent worker pool: one goroutine per
// shard except shard 0, which the coordinator runs itself between releasing
// and waiting on the gate.
func (e *stepEngine) startWorkers() {
	e.gate = newPhaseGate(len(e.shards) - 1)
	for i := 1; i < len(e.shards); i++ {
		go e.workerLoop(i)
	}
}

// workerLoop is one persistent worker: woken by the gate for each phase, it
// runs its shard's slice and reports completion, until told to exit.
func (e *stepEngine) workerLoop(shard int) {
	rec := e.rec
	var epoch uint32
	for {
		var t0 int64
		if rec != nil {
			t0 = rec.BeginPhase(PhaseBarrier, shard)
		}
		epoch = e.gate.await(shard-1, epoch)
		phase := e.gate.phase
		if rec != nil {
			// Everything since the previous finish — the coordinator's
			// sequential section plus the gate wait — is time this worker
			// spent barred from shard work.
			rec.EndPhase(PhaseBarrier, shard, e.round, t0)
		}
		if phase != phaseExit {
			e.phaseShard(phase, shard)
		}
		e.gate.finish()
		if phase == phaseExit {
			return
		}
	}
}

func (e *stepEngine) stopWorkers() {
	if e.gate == nil {
		return
	}
	e.gate.release(phaseExit)
	e.gate.wait()
	e.gate = nil
}

// stepShard runs the compute phase for one shard: step every awake machine,
// stage its sends into the per-destination buckets, and summarize channel
// writes and halts. A machine panic is recorded against its node and halts
// that node; the rest of the round still runs everywhere (as it does on the
// goroutine engine), and the run aborts at the round's end with the
// lowest-node error.
//
//mmlint:noalloc
func (e *stepEngine) stepShard(s *stepShard) {
	defer func() {
		// Machine panics are handled batch-wise in stepNodes; this catches
		// engine-infrastructure failures in the phase itself, which would
		// otherwise kill a bare worker goroutine.
		if r := recover(); r != nil {
			e.recordErr(1<<31-1, fmt.Errorf("sim: step phase of shard [%d,%d) panicked: %v", s.lo, s.hi, r))
		}
	}()
	s.writers = 0
	s.halts = 0
	s.next = s.next[:0]
	for i := 0; i < len(s.awake); {
		i = e.stepNodes(s, i)
	}
	s.awake, s.next = s.next, s.awake
}

// stepNodes steps s.awake[start:] until the batch completes or a machine
// panics: the happy path pays for one deferred recover per batch instead of
// one per node step. On a panic the failing node's error is recorded, its
// sends and channel write staged before the panic are still committed
// (exactly as a goroutine program's are), the node leaves the run like an
// errored program, and the index after it is returned so the caller resumes
// the batch.
//
//mmlint:noalloc
func (e *stepEngine) stepNodes(s *stepShard, start int) (next int) {
	i := start
	defer func() {
		if r := recover(); r != nil {
			sc := &e.nodes[s.awake[i]]
			if err := nodeFailure(sc.id, r); err != nil {
				e.recordErr(sc.id, err)
			}
			if e.reuse {
				e.inbox[sc.id] = e.inbox[sc.id][:0]
			} else {
				e.inbox[sc.id] = nil
			}
			e.commitNode(s, sc)
			sc.halted = true
			s.halts++
			next = i + 1
		}
	}()
	round, slot := e.round, e.slot
	for ; i < len(s.awake); i++ {
		v := s.awake[i]
		sc := &e.nodes[v]
		if sc.halted {
			// Crash-stopped between being scheduled and this round.
			continue
		}
		sc.scheduled = false
		sc.asleep = false
		sc.pulseWake = false
		in := Input{Round: round, Msgs: e.inbox[v], Slot: slot}
		if e.roundBase != nil && e.roundBase[v] != 0 {
			// A restarted incarnation counts rounds from its revival: its
			// first step is a local round 0 — no messages, a zero slot —
			// exactly what a fresh node's machine sees.
			in.Round = round - int(e.roundBase[v])
			if in.Round == 0 {
				in.Msgs, in.Slot = nil, Slot{}
			}
		}
		sc.round = in.Round
		halt := sc.machine.Step(in)
		if e.reuse {
			e.inbox[v] = e.inbox[v][:0]
		} else {
			e.inbox[v] = nil
		}
		if sc.chPending || len(sc.out) > 0 {
			e.commitNode(s, sc)
		}
		switch {
		case halt:
			sc.halted = true
			sc.result = sc.machine.Result()
			s.halts++
		case sc.asleep:
			// Parked until a message (or, with pulseWake, an idle slot)
			// wakes it.
			if sc.pulseWake {
				s.pulseSleepers = append(s.pulseSleepers, v)
			}
		default:
			sc.scheduled = true
			s.next = append(s.next, v)
		}
	}
	return i
}

// commitNode commits one stepped node's staged sends and channel write into
// its shard's buckets and write summary.
//
//mmlint:noalloc
func (e *stepEngine) commitNode(s *stepShard, sc *StepCtx) {
	if sc.chPending {
		s.writers++
		s.writerID = sc.id
		s.writerPayload = sc.chWrite
		sc.chPending, sc.chWrite = false, nil
	}
	if len(sc.out) > 0 {
		base := e.sentOff[sc.id]
		for _, o := range sc.out {
			if o.link >= 0 {
				e.sentFlags[base+int(o.link)] = false
			}
			d := int(o.to) / e.shardSize
			s.out[d] = append(s.out[d], delivered{to: o.to, from: sc.id, edgeID: o.edgeID, payload: o.payload})
		}
		sc.out = sc.out[:0]
	}
}

// deliverShard runs the delivery phase for one destination shard: wake
// pulse-parked nodes if the pulse fired, deposit the delayed messages due
// this round, then drain every source shard's bucket (in shard order,
// keeping inboxes presorted by sender range) through the fault hook, sort
// multi-message inboxes by (sender, edge id), count messages and drops, and
// wake sleeping recipients.
//
//mmlint:noalloc
func (e *stepEngine) deliverShard(d int) {
	sd := &e.shards[d]
	defer func() {
		if r := recover(); r != nil {
			e.recordErr(1<<31-1, fmt.Errorf("sim: delivery to shard %d panicked: %v", d, r))
		}
	}()
	deliverRound := e.round + 1
	if e.pulseFired && len(sd.pulseSleepers) > 0 {
		// The slot resolved idle: wake this shard's pulse-parked nodes so
		// they observe the pulse next round. Entries whose pulseWake flag is
		// gone were woken early by a message and already stepped since.
		for _, v := range sd.pulseSleepers {
			sc := &e.nodes[v]
			if sc.halted || !sc.pulseWake {
				continue
			}
			sc.pulseWake = false
			if !sc.scheduled {
				sc.scheduled = true
				sc.asleep = false
				sd.awake = append(sd.awake, v)
			}
		}
		sd.pulseSleepers = sd.pulseSleepers[:0]
	}
	if e.reuse {
		e.deliverReuse(sd, d, deliverRound)
	} else {
		e.deliverArena(sd, d, deliverRound)
	}
}

// applyMsgFaults routes one staged message through the injector. A false
// return means the message must not be delivered this round: destroyed, or
// deferred into the pending buffer. Duplicates are scheduled for later and
// the original still delivered now; a skewed sender's messages are deferred
// like delays, modeling its slow clock.
func (e *stepEngine) applyMsgFaults(sd *stepShard, m *delivered, deliverRound int) bool {
	switch fate, lag := e.inj.MsgFate(int(m.edgeID), m.from, m.to, deliverRound); fate {
	case fault.DropMsg:
		sd.faultDrops++
		return false
	case fault.PartitionDrop:
		sd.partDrops++
		return false
	case fault.DelayMsg, fault.DupMsg, fault.SkewMsg:
		if sd.pending == nil {
			sd.pending = make(map[int][]delivered)
		}
		key := deliverRound + lag
		lst, ok := sd.pending[key]
		if !ok && len(sd.pendingFree) > 0 {
			last := len(sd.pendingFree) - 1
			lst, sd.pendingFree = sd.pendingFree[last], sd.pendingFree[:last]
		}
		sd.pending[key] = append(lst, *m)
		sd.pendingN++
		switch fate {
		case fault.DelayMsg:
			sd.delayed++
			return false
		case fault.SkewMsg:
			sd.skewed++
			return false
		}
		sd.duped++
	}
	return true
}

// takePending removes and returns the pending bucket due at deliverRound,
// or nil.
//
//mmlint:noalloc
func (sd *stepShard) takePending(deliverRound int) []delivered {
	if sd.pendingN == 0 {
		return nil
	}
	late := sd.pending[deliverRound]
	if len(late) == 0 {
		return nil
	}
	delete(sd.pending, deliverRound)
	sd.pendingN -= len(late)
	return late
}

// recyclePending returns a drained pending bucket's backing array to the
// shard's free list, clearing its payload references.
//
//mmlint:noalloc
func (sd *stepShard) recyclePending(late []delivered) {
	clear(late)
	sd.pendingFree = append(sd.pendingFree, late[:0])
}

// deliverReuse is the delivery phase for native runs, whose inbox buffers
// are engine-owned and reused round after round (Machine inputs are only
// valid during Step) — steady-state delivery allocates nothing.
//
//mmlint:noalloc
func (e *stepEngine) deliverReuse(sd *stepShard, d int, deliverRound int) {
	if late := sd.takePending(deliverRound); late != nil {
		for i := range late {
			e.deposit(sd, &late[i])
		}
		sd.recyclePending(late)
	}
	msgFaults := e.inj.HasMsgFaults()
	for si := range e.shards {
		bucket := e.shards[si].out[d]
		if len(bucket) == 0 {
			continue
		}
		for i := range bucket {
			m := &bucket[i]
			sd.msgs++
			if msgFaults && !e.applyMsgFaults(sd, m, deliverRound) {
				m.payload = nil
				continue
			}
			e.deposit(sd, m)
			m.payload = nil // drop the engine's reference once delivered
		}
		e.shards[si].out[d] = bucket[:0]
	}
	for _, v := range sd.touched {
		if box := e.inbox[v]; len(box) > 1 {
			sortInbox(box)
		}
	}
	if e.tw == nil {
		// With a transcript on, the coordinator digests and clears the
		// touched lists after the phase (emitRound); the hot path never
		// does transcript work.
		sd.touched = sd.touched[:0]
	}
}

// deliverArena is the delivery phase for adapter runs, whose inboxes cannot
// be reused: the goroutine API always allowed a Program to retain an
// Input's Msgs past Tick. Instead of growing one heap slice per recipient
// per round, the round's surviving messages are staged in a reused scratch
// list and laid out into a single freshly allocated arena — one contiguous
// window per recipient, one allocation per shard per round, with the arena
// handed out and never touched again.
func (e *stepEngine) deliverArena(sd *stepShard, d int, deliverRound int) {
	// Pass A: route everything due this round through the fault hook,
	// collecting survivors in arrival order (late deliveries first, then
	// source shards in shard order — exactly the order deposit sees them on
	// the native path).
	arr := sd.arrivals[:0]
	if late := sd.takePending(deliverRound); late != nil {
		for i := range late {
			m := &late[i]
			if e.nodes[m.to].halted {
				if e.continuing {
					sd.dropped++
				}
				continue
			}
			arr = append(arr, *m)
		}
		sd.recyclePending(late)
	}
	msgFaults := e.inj.HasMsgFaults()
	for si := range e.shards {
		bucket := e.shards[si].out[d]
		if len(bucket) == 0 {
			continue
		}
		for i := range bucket {
			m := &bucket[i]
			sd.msgs++
			if msgFaults && !e.applyMsgFaults(sd, m, deliverRound) {
				m.payload = nil
				continue
			}
			if e.nodes[m.to].halted {
				if e.continuing {
					sd.dropped++
				}
				m.payload = nil
				continue
			}
			arr = append(arr, *m)
			m.payload = nil
		}
		e.shards[si].out[d] = bucket[:0]
	}
	sd.arrivals = arr
	if len(arr) == 0 {
		return
	}
	// Pass B: per-recipient counts, then one arena carved into per-node
	// windows filled in arrival order.
	if sd.counts == nil {
		sd.counts = make([]int32, sd.hi-sd.lo)
	}
	for i := range arr {
		t := int(arr[i].to) - sd.lo
		if sd.counts[t] == 0 {
			sd.touched = append(sd.touched, int32(arr[i].to))
		}
		sd.counts[t]++
	}
	arena := make([]Message, len(arr))
	off := int32(0)
	for _, v := range sd.touched {
		t := int(v) - sd.lo
		n := sd.counts[t]
		// Full slice expression: programs may legally append to an Input's
		// Msgs, which must reallocate rather than bleed into the next
		// recipient's window of the shared arena.
		e.inbox[v] = arena[off : off+n : off+n]
		sd.counts[t] = off // becomes the node's next free index below
		off += n
	}
	for i := range arr {
		m := &arr[i]
		t := int(m.to) - sd.lo
		arena[sd.counts[t]] = Message{From: m.from, EdgeID: int(m.edgeID), Payload: m.payload}
		sd.counts[t]++
		m.payload = nil // release the scratch list's reference
	}
	for _, v := range sd.touched {
		sd.counts[int(v)-sd.lo] = 0
		if box := e.inbox[v]; len(box) > 1 {
			sortInbox(box)
		}
		// Wake the recipient, in first-arrival order like the native path.
		dst := &e.nodes[v]
		if !dst.scheduled {
			dst.scheduled = true
			dst.asleep = false
			sd.awake = append(sd.awake, v)
		}
	}
	if e.tw == nil {
		// See deliverReuse: with a transcript on, emitRound owns the reset.
		sd.touched = sd.touched[:0]
	}
}

// sortInbox orders one inbox by (sender, edge id) — the delivery order both
// engines guarantee.
//
//mmlint:noalloc
func sortInbox(box []Message) {
	slices.SortFunc(box, func(a, b Message) int {
		if c := cmp.Compare(a.From, b.From); c != 0 {
			return c
		}
		return cmp.Compare(a.EdgeID, b.EdgeID)
	})
}

// deposit lands one message in its destination inbox (or the halted-drop
// count), waking a sleeping recipient. sd must be m.to's shard.
//
//mmlint:noalloc
func (e *stepEngine) deposit(sd *stepShard, m *delivered) {
	dst := &e.nodes[m.to]
	if dst.halted {
		if e.continuing {
			sd.dropped++
		}
		return
	}
	box := e.inbox[m.to]
	if len(box) == 0 {
		sd.touched = append(sd.touched, int32(m.to))
		if !dst.scheduled {
			dst.scheduled = true
			dst.asleep = false
			sd.awake = append(sd.awake, int32(m.to))
		}
	}
	e.inbox[m.to] = append(box, Message{From: m.from, EdgeID: int(m.edgeID), Payload: m.payload})
}

// abortMachines unwinds machines of nodes still live when the run ends —
// with the goroutine adapter these hold blocked program goroutines.
func (e *stepEngine) abortMachines() {
	for v := range e.nodes {
		sc := &e.nodes[v]
		if !sc.halted && sc.machine != nil {
			if ab, ok := sc.machine.(aborter); ok {
				ab.abortRun()
			}
			sc.halted = true
		}
	}
}

// recordErr keeps the lowest-node error of the failing round, so the
// reported failure is independent of the worker count and identical to the
// goroutine engine's — errors compete only within one round, because the
// run aborts at its end. Engine-level errors record as node -1; per-shard
// infrastructure failures as node MaxInt32 (never outranking a node).
func (e *stepEngine) recordErr(node graph.NodeID, err error) {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.firstErr == nil || node < e.errNode {
		e.errNode, e.firstErr = node, err
	}
}

func (e *stepEngine) err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// nodeFailure turns a recovered Step/init panic into the run's error,
// mirroring the goroutine engine's wording for program errors and panics.
func nodeFailure(id graph.NodeID, r any) error {
	if f, ok := r.(failError); ok {
		return fmt.Errorf("sim: node %d: %w", id, f.err)
	}
	if err, ok := r.(error); ok && errors.Is(err, errAborted) {
		return nil
	}
	return fmt.Errorf("sim: node %d panicked: %v", id, r)
}
