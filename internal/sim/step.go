package sim

// step.go implements the step-machine engine: the same synchronous
// multimedia-network model as the goroutine engine, executed as explicit
// per-node state machines on a sharded worker pool.
//
// Nodes are partitioned into contiguous shards. Every round has two
// barrier-separated phases:
//
//	step     each worker steps the awake machines of its shard; sends and
//	         channel writes are staged into per-shard, per-destination-shard
//	         outbox buckets (no locks, no per-node channel handoffs);
//	deliver  each worker drains the buckets addressed to its shard into the
//	         preallocated per-node inboxes, sorts multi-message inboxes by
//	         (sender, edge id), and wakes sleeping recipients.
//
// All buffers (inboxes, outboxes, awake lists) are reused across rounds, so
// a steady-state round allocates nothing beyond what machines themselves
// allocate. Machines that have nothing to do until a message arrives call
// StepCtx.Sleep; combined with the awake lists this makes the per-round cost
// proportional to the number of active nodes, not n — protocols whose
// activity is a travelling wavefront (BFS floods, convergecasts) run whole
// 10⁶-node networks in seconds.
//
// Determinism: machines are constructed and stepped against per-node state
// only, per-node RNGs are derived exactly as in the goroutine engine, and
// inboxes are sorted to the same (sender, edge id) order, so a fixed seed
// yields a bit-identical transcript for any worker count and either engine.

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Engine selects the execution model backing Run.
type Engine int

// The execution models.
const (
	// EngineGoroutine runs one blocking goroutine per node with a central
	// scheduler — the historical engine.
	EngineGoroutine Engine = iota + 1
	// EngineStep runs the sharded step-machine engine; goroutine Programs
	// are executed through a built-in adapter.
	EngineStep
)

// String returns the flag spelling of the engine.
func (e Engine) String() string {
	switch e {
	case EngineGoroutine:
		return "goroutine"
	case EngineStep:
		return "step"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine maps a -engine flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "goroutine", "go":
		return EngineGoroutine, nil
	case "step":
		return EngineStep, nil
	default:
		return 0, fmt.Errorf("sim: unknown engine %q (want goroutine|step)", s)
	}
}

// DefaultEngine is the engine Run uses when no WithEngine option is given.
// Commands set it from their -engine flag so every protocol in the process
// routes through the selected engine.
var DefaultEngine = EngineGoroutine

// DefaultWorkers is the step engine's worker count when no WithWorkers
// option is given; 0 means GOMAXPROCS.
var DefaultWorkers = 0

// Machine is one node's compiled step program: the per-round half of the
// native step API.
//
// Step is called once per round with that round's input (round 0 carries no
// messages and a zero slot, mirroring the code a goroutine Program runs
// before its first Tick). Sends and channel writes staged during Step are
// committed when it returns; returning true halts the node, with any staged
// sends still delivered. The Input and its Msgs are engine-owned and only
// valid during the call.
//
// Result is the result hook: it is called once, when the node halts, and
// its value lands in the run's Result.Results slot for the node. A node
// crash-stopped by fault injection records a nil result instead — it never
// reached its halt, mirroring a goroutine program that never called
// SetResult.
type Machine interface {
	Step(in Input) (halt bool)
	Result() any
}

// StepProgram is the init hook of the native step API: it is called once
// per node, in node order, before round 0, and returns the node's Machine.
// Implementations typically capture c and per-node protocol state in the
// returned machine. It must not send or write the channel; it may draw from
// c.Rand.
type StepProgram func(c *StepCtx) Machine

// stagedSend is one queued point-to-point message in a StepCtx's outbox.
// link is the sender-local link index (used to reset the duplicate-send
// guard) or -1 for messages staged by the goroutine adapter, which has
// already enforced the model's one-send-per-link rule in Ctx.
type stagedSend struct {
	to      graph.NodeID
	edgeID  int32
	link    int32
	payload Payload
}

// delivered is one message in flight between the step and deliver phases.
type delivered struct {
	to      graph.NodeID
	from    graph.NodeID
	edgeID  int32
	payload Payload
}

// StepCtx is a node's handle to the network under the step engine: the same
// API surface as Ctx minus Tick (the engine calls Machine.Step instead),
// plus Sleep. All methods must be called only from the node's Machine
// during Step (or from its StepProgram during construction, for the
// read-only ones). Methods panic on model violations; a panic aborts the
// run with an error naming the node.
type StepCtx struct {
	id      graph.NodeID
	eng     *stepEngine
	rng     *rand.Rand
	rngSeed int64

	round     int
	out       []stagedSend
	chWrite   Payload
	chPending bool

	asleep    bool // set by Sleep, cleared before every Step
	pulseWake bool // set by SleepUntilPulse: also wake on an idle slot
	scheduled bool // already on some shard's awake list for the next round
	halted    bool
	machine   Machine
	result    any
}

// ID returns this node's identifier.
func (c *StepCtx) ID() graph.NodeID { return c.id }

// N returns the number of nodes in the network (known to all nodes, §2).
func (c *StepCtx) N() int { return c.eng.g.N() }

// Graph returns the immutable network topology.
func (c *StepCtx) Graph() *graph.Graph { return c.eng.g }

// Adj returns this node's incident links sorted by ascending weight.
func (c *StepCtx) Adj() []graph.Half { return c.eng.g.Adj(c.id) }

// Degree returns the number of incident links.
func (c *StepCtx) Degree() int { return c.eng.g.Degree(c.id) }

// Round returns the current round number.
func (c *StepCtx) Round() int { return c.round }

// Rand returns this node's private deterministic RNG, derived from the
// master seed exactly as in the goroutine engine and created lazily.
func (c *StepCtx) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.rngSeed))
	}
	return c.rng
}

// LinkOf returns the local link index of the given edge id.
func (c *StepCtx) LinkOf(edgeID int) int {
	e := c.eng.g.Edge(edgeID)
	switch c.id {
	case e.U:
		return int(c.eng.linkAt[edgeID][0])
	case e.V:
		return int(c.eng.linkAt[edgeID][1])
	default:
		panic(fmt.Sprintf("sim: node %d has no link with edge id %d", c.id, edgeID))
	}
}

// Link returns the local link index leading to the given neighbor.
func (c *StepCtx) Link(to graph.NodeID) (int, bool) {
	for l, h := range c.Adj() {
		if h.To == to {
			return l, true
		}
	}
	return 0, false
}

// Send queues a message on the link with the given local index for delivery
// at the start of the next round. At most one message may be sent per link
// per round.
func (c *StepCtx) Send(link int, p Payload) {
	adj := c.Adj()
	if link < 0 || link >= len(adj) {
		panic(fmt.Sprintf("sim: node %d send on link %d of %d", c.id, link, len(adj)))
	}
	h := adj[link]
	idx := c.eng.sentOff[c.id] + link
	if c.eng.sentFlags[idx] {
		panic(fmt.Sprintf("sim: node %d sent twice on edge %d in round %d", c.id, h.EdgeID, c.round))
	}
	c.eng.sentFlags[idx] = true
	c.out = append(c.out, stagedSend{to: h.To, edgeID: int32(h.EdgeID), link: int32(link), payload: p})
}

// SendTo queues a message to the given neighbor.
func (c *StepCtx) SendTo(to graph.NodeID, p Payload) {
	l, ok := c.Link(to)
	if !ok {
		panic(fmt.Sprintf("sim: node %d is not adjacent to %d", c.id, to))
	}
	c.Send(l, p)
}

// Broadcast writes p to the current channel slot. At most one write per
// round; the slot resolves to success only if this node is the sole writer.
func (c *StepCtx) Broadcast(p Payload) {
	if c.chPending {
		panic(fmt.Sprintf("sim: node %d wrote the channel twice in round %d", c.id, c.round))
	}
	c.chPending = true
	c.chWrite = p
}

// Busy transmits a busy tone on the channel this round (§7.1 barrier).
func (c *StepCtx) Busy() { c.Broadcast(BusyTone{}) }

// SentThisRound reports whether this node queued any point-to-point message
// in the current round.
func (c *StepCtx) SentThisRound() bool { return len(c.out) > 0 }

// Sleep parks this node after the current Step returns: the engine skips it
// every round until a message arrives, at which point it is woken and
// stepped with that round's input. A sleeping node does not observe the
// channel, so only protocols that synchronize by messages may use it; it is
// what makes wavefront protocols on million-node graphs cost O(work), not
// O(n·rounds). Sleeping with no message ever due wedges the protocol; the
// engine detects the fully quiescent case and fails the run.
func (c *StepCtx) Sleep() { c.asleep = true }

// SleepUntilPulse parks this node like Sleep, but additionally wakes it on
// the barrier pulse: the first round whose input carries an idle slot
// (Input.IsPulse). It is the sparse-activation primitive for protocols
// synchronized by the §7.1 channel barrier — a node that is passive within a
// barrier step (it will act again only on a message or when the step
// globally terminates) may park instead of observing every busy slot, which
// turns O(n · rounds) barrier phases into O(work). A node woken by a message
// before the pulse is stepped normally; if it parks again it must call
// SleepUntilPulse again.
func (c *StepCtx) SleepUntilPulse() { c.asleep = true; c.pulseWake = true }

// failError carries a protocol-level failure out of a Machine via panic;
// the engine records it verbatim instead of as a node panic.
type failError struct{ err error }

// Failf aborts the run with an error attributed to this node — the native
// API's analog of a goroutine Program returning an error.
func (c *StepCtx) Failf(format string, args ...any) {
	panic(failError{err: fmt.Errorf(format, args...)})
}

// aborter is implemented by machines that need unwinding when the engine
// aborts a run with live nodes (the goroutine adapter's blocked programs).
type aborter interface{ abortRun() }

// stepShard is one contiguous slice of the node range plus every per-shard
// buffer the two phases reuse round after round.
type stepShard struct {
	lo, hi int

	awake []int32 // nodes to step this round; survivors + woken for the next
	next  []int32 // scratch for building the survivor list

	// Nodes of this shard parked by SleepUntilPulse, woken in the delivery
	// phase of the first round whose slot resolved idle. Entries are lazily
	// invalidated: a node woken early by a message clears its pulseWake flag
	// on its next step, so stale entries are skipped when the pulse fires.
	pulseSleepers []int32

	out     [][]delivered // staged messages, bucketed by destination shard
	touched []int32       // nodes that received mail this round (sort + reuse)

	// Delayed and duplicated messages addressed to this shard, held until
	// their fault-assigned delivery round. Shard-local, so the delivery
	// phase mutates it without locks.
	pending  map[int][]delivered
	pendingN int

	writers       int
	writerID      graph.NodeID
	writerPayload Payload
	halts         int
	msgs          int64
	dropped       int64
	faultDrops    int64
	delayed       int64
	duped         int64
}

const (
	phaseStep int8 = iota + 1
	phaseDeliver
	// inlineThreshold: with fewer awake nodes than this, the coordinator
	// steps them itself rather than paying the worker fan-out/fan-in.
	inlineThreshold = 256
)

type stepEngine struct {
	g     *graph.Graph
	cfg   config
	inj   *fault.Injector // nil for fault-free runs
	reuse bool            // reuse inbox buffers (native runs; the adapter reallocates)

	nodes []StepCtx
	inbox [][]Message

	linkAt    [][2]int32 // edge id -> local link index at (U, V)
	sentOff   []int      // per-node offset into sentFlags
	sentFlags []bool     // one duplicate-send guard per directed half-edge

	shards    []stepShard
	shardSize int
	workers   int

	round      int
	slot       Slot
	pulseFired bool // this round's slot resolved idle (after jamming)
	continuing bool
	alive      int
	met        Metrics

	errMu    sync.Mutex
	errNode  graph.NodeID
	firstErr error

	workCh []chan int8
	ackCh  chan struct{}
}

// RunStep executes one Machine per node of g until all machines halt, and
// returns aggregate metrics and per-node results — the native entry point
// of the step engine. Options are shared with Run; WithEngine is ignored.
func RunStep(g *graph.Graph, program StepProgram, opts ...Option) (*Result, error) {
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.resolveMaxRounds(g)
	return runStepEngine(g, program, cfg, true)
}

func runStepEngine(g *graph.Graph, program StepProgram, cfg config, reuseInboxes bool) (res *Result, err error) {
	inj, err := fault.Compile(cfg.plan(), g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	workers := cfg.workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	e := &stepEngine{
		g:         g,
		cfg:       cfg,
		inj:       inj,
		reuse:     reuseInboxes,
		nodes:     make([]StepCtx, n),
		inbox:     make([][]Message, n),
		linkAt:    make([][2]int32, g.M()),
		sentOff:   make([]int, n),
		sentFlags: make([]bool, 2*g.M()),
		workers:   workers,
		alive:     n,
	}
	off := 0
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		e.sentOff[v] = off
		off += g.Degree(id)
		for l, h := range g.Adj(id) {
			if g.Edge(h.EdgeID).U == id {
				e.linkAt[h.EdgeID][0] = int32(l)
			} else {
				e.linkAt[h.EdgeID][1] = int32(l)
			}
		}
	}

	e.shardSize = (n + workers - 1) / workers
	shardCount := (n + e.shardSize - 1) / e.shardSize
	e.shards = make([]stepShard, shardCount)
	for i := range e.shards {
		s := &e.shards[i]
		s.lo = i * e.shardSize
		s.hi = min(s.lo+e.shardSize, n)
		s.out = make([][]delivered, shardCount)
		s.awake = make([]int32, 0, s.hi-s.lo)
		for v := s.lo; v < s.hi; v++ {
			s.awake = append(s.awake, int32(v))
		}
	}

	// Init hook: build every node's machine, in node order.
	for v := 0; v < n; v++ {
		sc := &e.nodes[v]
		sc.id = graph.NodeID(v)
		sc.eng = e
		sc.rngSeed = cfg.seed*1_000_003 + int64(v)
		sc.scheduled = true
		if err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = nodeFailure(sc.id, r)
				}
			}()
			sc.machine = program(sc)
			return nil
		}(); err != nil {
			return nil, err
		}
		if sc.machine == nil {
			return nil, fmt.Errorf("sim: step program returned a nil machine for node %d", sc.id)
		}
	}

	if workers > 1 {
		e.startWorkers()
		defer e.stopWorkers()
	}
	defer e.abortMachines() // no-op unless the run ends with live adapters

	stepped := make([]int, 0, shardCount)
	awakeTotal := n
	for round := 0; ; round++ {
		e.round = round
		stepped = stepped[:0]
		for i := range e.shards {
			if len(e.shards[i].awake) > 0 {
				stepped = append(stepped, i)
			}
		}
		e.runPhase(phaseStep, stepped, awakeTotal)

		e.met.Rounds = round + 1

		// Resolve the channel slot from the per-shard write summaries.
		writers := 0
		var wid graph.NodeID
		var wpayload Payload
		for _, si := range stepped {
			s := &e.shards[si]
			if s.writers > 0 {
				writers += s.writers
				wid, wpayload = s.writerID, s.writerPayload
				s.writerPayload = nil
			}
			e.alive -= s.halts
		}
		slot := Slot{State: SlotIdle}
		if e.inj.Jammed(round + 1) {
			// A jammed slot hides any writer behind a forced collision.
			e.met.SlotsJammed++
			slot = Slot{State: SlotCollision}
		} else {
			switch {
			case writers == 0:
				e.met.SlotsIdle++
			case writers == 1:
				e.met.SlotsSuccess++
				slot = Slot{State: SlotSuccess, From: wid, Payload: wpayload}
			default:
				e.met.SlotsCollision++
				slot = Slot{State: SlotCollision}
			}
		}
		e.slot = slot
		e.pulseFired = slot.State == SlotIdle

		// Crash-stop the nodes scheduled to fail before observing round+1.
		// Their round-round sends (staged above) are still delivered;
		// messages addressed to them join the halted-drop count.
		for _, v := range e.inj.CrashesAt(round + 1) {
			sc := &e.nodes[v]
			if sc.halted {
				continue
			}
			// A crash-stopped node records no result — it never reached its
			// halt — except through the goroutine adapter, whose program may
			// have called SetResult before the crash (the goroutine engine
			// keeps that partial value, so the adapter must too).
			if ab, ok := sc.machine.(aborter); ok {
				ab.abortRun()
				sc.result = sc.machine.Result()
			}
			sc.halted = true
			e.alive--
			e.met.Crashed++
		}

		failed := e.err() != nil
		if e.alive > 0 && !failed && round+1 > e.cfg.maxRounds {
			e.recordErr(-1, fmt.Errorf("%w: budget %d", ErrMaxRounds, e.cfg.maxRounds))
			failed = true
		}
		e.continuing = e.alive > 0 && !failed

		// Delivery stats accrue in destination shards; zero them all first
		// since only shards with pending buckets are necessarily drained.
		for i := range e.shards {
			s := &e.shards[i]
			s.msgs, s.dropped, s.faultDrops, s.delayed, s.duped = 0, 0, 0, 0, 0
		}
		e.runPhase(phaseDeliver, stepped, awakeTotal)
		for i := range e.shards {
			s := &e.shards[i]
			e.met.Messages += s.msgs
			e.met.DroppedHalted += s.dropped
			e.met.DroppedFault += s.faultDrops
			e.met.Delayed += s.delayed
			e.met.Duplicated += s.duped
		}

		if !e.continuing {
			break
		}
		awakeTotal = 0
		for i := range e.shards {
			awakeTotal += len(e.shards[i].awake)
		}
		// A fully parked network is not special-cased: empty rounds cost
		// O(shards) each, slots resolve idle (waking any pulse-parked
		// nodes), and a genuine wedge — everyone asleep with no message
		// ever due — spins to the same ErrMaxRounds, with the same metrics,
		// that the goroutine form of the protocol reports. Faulted outcomes
		// therefore stay bit-identical across engines.
	}

	e.abortMachines()
	if err := e.err(); err != nil {
		return nil, err
	}
	res = &Result{Metrics: e.met, Results: make([]any, n)}
	for v := range e.nodes {
		res.Results[v] = e.nodes[v].result
	}
	return res, nil
}

// runPhase executes one phase over the shards, inline when the round is
// small or the engine single-threaded, on the worker pool otherwise.
func (e *stepEngine) runPhase(phase int8, stepped []int, awakeTotal int) {
	if e.workers == 1 || awakeTotal < inlineThreshold {
		switch phase {
		case phaseStep:
			for _, si := range stepped {
				e.stepShard(&e.shards[si])
			}
		case phaseDeliver:
			// Only destination shards with fresh buckets or delayed
			// messages due this round need draining.
			for d := range e.shards {
				need := e.shards[d].pendingN > 0 && len(e.shards[d].pending[e.round+1]) > 0
				if e.pulseFired && len(e.shards[d].pulseSleepers) > 0 {
					need = true
				}
				for _, si := range stepped {
					if need {
						break
					}
					if len(e.shards[si].out[d]) > 0 {
						need = true
					}
				}
				if need {
					e.deliverShard(d)
				}
			}
		}
		return
	}
	for i := range e.workCh {
		e.workCh[i] <- phase
	}
	for range e.workCh {
		<-e.ackCh
	}
}

func (e *stepEngine) startWorkers() {
	e.workCh = make([]chan int8, len(e.shards))
	e.ackCh = make(chan struct{}, len(e.shards))
	for i := range e.shards {
		e.workCh[i] = make(chan int8, 1)
		go func(i int, work <-chan int8) {
			for phase := range work {
				switch phase {
				case phaseStep:
					if len(e.shards[i].awake) > 0 {
						e.stepShard(&e.shards[i])
					}
				case phaseDeliver:
					e.deliverShard(i)
				}
				e.ackCh <- struct{}{}
			}
		}(i, e.workCh[i])
	}
}

func (e *stepEngine) stopWorkers() {
	for i := range e.workCh {
		close(e.workCh[i])
	}
	e.workCh = nil
}

// stepShard runs the compute phase for one shard: step every awake machine,
// stage its sends into the per-destination buckets, and summarize channel
// writes and halts. A machine panic is recorded against its node and halts
// that node; the rest of the round still runs everywhere (as it does on the
// goroutine engine), and the run aborts at the round's end with the
// lowest-node error.
func (e *stepEngine) stepShard(s *stepShard) {
	defer func() {
		// Machine panics are handled per node in stepNode; this catches
		// engine-infrastructure failures in the staging loop itself, which
		// would otherwise kill a bare worker goroutine.
		if r := recover(); r != nil {
			e.recordErr(1<<31-1, fmt.Errorf("sim: step phase of shard [%d,%d) panicked: %v", s.lo, s.hi, r))
		}
	}()
	s.writers = 0
	s.halts = 0
	s.next = s.next[:0]
	round, slot := e.round, e.slot
	for _, v := range s.awake {
		sc := &e.nodes[v]
		if sc.halted {
			// Crash-stopped between being scheduled and this round.
			continue
		}
		sc.scheduled = false
		sc.asleep = false
		sc.pulseWake = false
		sc.round = round
		halt, panicked := e.stepNode(sc, Input{Round: round, Msgs: e.inbox[v], Slot: slot})
		if e.reuse {
			e.inbox[v] = e.inbox[v][:0]
		} else {
			e.inbox[v] = nil
		}
		// Sends and channel writes staged before a panic are still
		// committed, exactly as a goroutine program's are.
		if sc.chPending {
			s.writers++
			s.writerID = sc.id
			s.writerPayload = sc.chWrite
			sc.chPending, sc.chWrite = false, nil
		}
		if len(sc.out) > 0 {
			base := e.sentOff[v]
			for _, o := range sc.out {
				if o.link >= 0 {
					e.sentFlags[base+int(o.link)] = false
				}
				d := int(o.to) / e.shardSize
				s.out[d] = append(s.out[d], delivered{to: o.to, from: sc.id, edgeID: o.edgeID, payload: o.payload})
			}
			sc.out = sc.out[:0]
		}
		switch {
		case panicked:
			// The errored node leaves the run, like an errored program.
			sc.halted = true
			s.halts++
		case halt:
			sc.halted = true
			sc.result = sc.machine.Result()
			s.halts++
		case sc.asleep:
			// Parked until a message (or, with pulseWake, an idle slot)
			// wakes it.
			if sc.pulseWake {
				s.pulseSleepers = append(s.pulseSleepers, v)
			}
		default:
			sc.scheduled = true
			s.next = append(s.next, v)
		}
	}
	s.awake, s.next = s.next, s.awake
}

// stepNode steps one machine, converting a panic into the node's recorded
// failure.
func (e *stepEngine) stepNode(sc *StepCtx, in Input) (halt, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			if err := nodeFailure(sc.id, r); err != nil {
				e.recordErr(sc.id, err)
			}
		}
	}()
	return sc.machine.Step(in), false
}

// deliverShard runs the delivery phase for one destination shard: deposit
// the delayed messages due this round, then drain every source shard's
// bucket (in shard order, keeping inboxes presorted by sender range)
// through the fault hook, sort multi-message inboxes by (sender, edge id),
// count messages and drops, and wake sleeping recipients.
func (e *stepEngine) deliverShard(d int) {
	sd := &e.shards[d]
	defer func() {
		if r := recover(); r != nil {
			e.recordErr(1<<31-1, fmt.Errorf("sim: delivery to shard %d panicked: %v", d, r))
		}
	}()
	deliverRound := e.round + 1
	if e.pulseFired && len(sd.pulseSleepers) > 0 {
		// The slot resolved idle: wake this shard's pulse-parked nodes so
		// they observe the pulse next round. Entries whose pulseWake flag is
		// gone were woken early by a message and already stepped since.
		for _, v := range sd.pulseSleepers {
			sc := &e.nodes[v]
			if sc.halted || !sc.pulseWake {
				continue
			}
			sc.pulseWake = false
			if !sc.scheduled {
				sc.scheduled = true
				sc.asleep = false
				sd.awake = append(sd.awake, v)
			}
		}
		sd.pulseSleepers = sd.pulseSleepers[:0]
	}
	if sd.pendingN > 0 {
		if late := sd.pending[deliverRound]; len(late) > 0 {
			delete(sd.pending, deliverRound)
			sd.pendingN -= len(late)
			for i := range late {
				e.deposit(sd, &late[i])
			}
		}
	}
	msgFaults := e.inj.HasMsgFaults()
	for si := range e.shards {
		bucket := e.shards[si].out[d]
		if len(bucket) == 0 {
			continue
		}
		for i := range bucket {
			m := &bucket[i]
			sd.msgs++
			if msgFaults {
				switch fate, lag := e.inj.MsgFate(int(m.edgeID), m.from, deliverRound); fate {
				case fault.DropMsg:
					sd.faultDrops++
					m.payload = nil
					continue
				case fault.DelayMsg, fault.DupMsg:
					if sd.pending == nil {
						sd.pending = make(map[int][]delivered)
					}
					sd.pending[deliverRound+lag] = append(sd.pending[deliverRound+lag], *m)
					sd.pendingN++
					if fate == fault.DelayMsg {
						sd.delayed++
						m.payload = nil
						continue
					}
					sd.duped++
				}
			}
			e.deposit(sd, m)
			m.payload = nil // drop the engine's reference once delivered
		}
		e.shards[si].out[d] = bucket[:0]
	}
	for _, v := range sd.touched {
		if box := e.inbox[v]; len(box) > 1 {
			sort.Slice(box, func(a, b int) bool {
				if box[a].From != box[b].From {
					return box[a].From < box[b].From
				}
				return box[a].EdgeID < box[b].EdgeID
			})
		}
	}
	sd.touched = sd.touched[:0]
}

// deposit lands one message in its destination inbox (or the halted-drop
// count), waking a sleeping recipient. sd must be m.to's shard.
func (e *stepEngine) deposit(sd *stepShard, m *delivered) {
	dst := &e.nodes[m.to]
	if dst.halted {
		if e.continuing {
			sd.dropped++
		}
		return
	}
	box := e.inbox[m.to]
	if len(box) == 0 {
		sd.touched = append(sd.touched, int32(m.to))
		if !dst.scheduled {
			dst.scheduled = true
			dst.asleep = false
			sd.awake = append(sd.awake, int32(m.to))
		}
	}
	e.inbox[m.to] = append(box, Message{From: m.from, EdgeID: int(m.edgeID), Payload: m.payload})
}

// abortMachines unwinds machines of nodes still live when the run ends —
// with the goroutine adapter these hold blocked program goroutines.
func (e *stepEngine) abortMachines() {
	for v := range e.nodes {
		sc := &e.nodes[v]
		if !sc.halted && sc.machine != nil {
			if ab, ok := sc.machine.(aborter); ok {
				ab.abortRun()
			}
			sc.halted = true
		}
	}
}

// recordErr keeps the lowest-node error of the failing round, so the
// reported failure is independent of the worker count and identical to the
// goroutine engine's — errors compete only within one round, because the
// run aborts at its end. Engine-level errors record as node -1; per-shard
// infrastructure failures as node MaxInt32 (never outranking a node).
func (e *stepEngine) recordErr(node graph.NodeID, err error) {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.firstErr == nil || node < e.errNode {
		e.errNode, e.firstErr = node, err
	}
}

func (e *stepEngine) err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// nodeFailure turns a recovered Step/init panic into the run's error,
// mirroring the goroutine engine's wording for program errors and panics.
func nodeFailure(id graph.NodeID, r any) error {
	if f, ok := r.(failError); ok {
		return fmt.Errorf("sim: node %d: %w", id, f.err)
	}
	if err, ok := r.(error); ok && errors.Is(err, errAborted) {
		return nil
	}
	return fmt.Errorf("sim: node %d panicked: %v", id, r)
}
