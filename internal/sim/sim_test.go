package sim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/graph"
)

func ring(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Ring(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func path(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Path(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunImmediateHalt(t *testing.T) {
	res, err := Run(ring(t, 5), func(ctx *Ctx) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", res.Metrics.Rounds)
	}
	if res.Metrics.Messages != 0 {
		t.Errorf("Messages = %d, want 0", res.Metrics.Messages)
	}
	if res.Metrics.SlotsIdle != 1 {
		t.Errorf("SlotsIdle = %d, want 1", res.Metrics.SlotsIdle)
	}
}

func TestMessageDelivery(t *testing.T) {
	// Node 0 sends its id to every neighbor in round 0; neighbors check
	// receipt in round 1.
	g := path(t, 3)
	res, err := Run(g, func(ctx *Ctx) error {
		if ctx.ID() == 1 {
			for l := range ctx.Adj() {
				ctx.Send(l, int(ctx.ID()))
			}
			ctx.Tick()
			return nil
		}
		in := ctx.Tick()
		if len(in.Msgs) != 1 {
			return fmt.Errorf("node %d got %d msgs, want 1", ctx.ID(), len(in.Msgs))
		}
		m := in.Msgs[0]
		if m.From != 1 || m.Payload.(int) != 1 {
			return fmt.Errorf("node %d got %+v", ctx.ID(), m)
		}
		ctx.SetResult(m.Payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages != 2 {
		t.Errorf("Messages = %d, want 2", res.Metrics.Messages)
	}
	if res.Results[0] != 1 || res.Results[2] != 1 {
		t.Errorf("results = %v", res.Results)
	}
}

func TestInboxSorted(t *testing.T) {
	// All ring neighbors of node 0 send to it; inbox must be sorted by sender.
	g := ring(t, 6)
	_, err := Run(g, func(ctx *Ctx) error {
		if ctx.ID() != 0 {
			if l, ok := ctx.Link(0); ok {
				ctx.Send(l, int(ctx.ID()))
			}
			ctx.Tick()
			return nil
		}
		in := ctx.Tick()
		if len(in.Msgs) != 2 {
			return fmt.Errorf("got %d msgs, want 2", len(in.Msgs))
		}
		if in.Msgs[0].From >= in.Msgs[1].From {
			return fmt.Errorf("inbox not sorted: %v, %v", in.Msgs[0].From, in.Msgs[1].From)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChannelResolution(t *testing.T) {
	tests := []struct {
		name    string
		writers []graph.NodeID
		want    SlotState
	}{
		{"idle", nil, SlotIdle},
		{"success", []graph.NodeID{2}, SlotSuccess},
		{"collision two", []graph.NodeID{1, 3}, SlotCollision},
		{"collision all", []graph.NodeID{0, 1, 2, 3, 4}, SlotCollision},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := ring(t, 5)
			writerSet := make(map[graph.NodeID]bool)
			for _, w := range tt.writers {
				writerSet[w] = true
			}
			res, err := Run(g, func(ctx *Ctx) error {
				if writerSet[ctx.ID()] {
					ctx.Broadcast(int(ctx.ID()) * 10)
				}
				in := ctx.Tick()
				if in.Slot.State != tt.want {
					return fmt.Errorf("node %d saw slot %v, want %v", ctx.ID(), in.Slot.State, tt.want)
				}
				if tt.want == SlotSuccess {
					if in.Slot.From != tt.writers[0] || in.Slot.Payload.(int) != int(tt.writers[0])*10 {
						return fmt.Errorf("slot = %+v", in.Slot)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			m := res.Metrics
			switch tt.want {
			case SlotIdle:
				if m.SlotsIdle < 1 {
					t.Error("no idle slot counted")
				}
			case SlotSuccess:
				if m.SlotsSuccess != 1 {
					t.Errorf("SlotsSuccess = %d", m.SlotsSuccess)
				}
			case SlotCollision:
				if m.SlotsCollision != 1 {
					t.Errorf("SlotsCollision = %d", m.SlotsCollision)
				}
			}
		})
	}
}

func TestBroadcastHeardByAll(t *testing.T) {
	g := ring(t, 7)
	res, err := Run(g, func(ctx *Ctx) error {
		if ctx.ID() == 3 {
			ctx.Broadcast("hello")
		}
		in := ctx.Tick()
		ctx.SetResult(in.Slot.Payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range res.Results {
		if r != "hello" {
			t.Errorf("node %d heard %v", v, r)
		}
	}
}

func TestProgramErrorAborts(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Run(ring(t, 4), func(ctx *Ctx) error {
		if ctx.ID() == 2 {
			return wantErr
		}
		for {
			ctx.Tick() // would run forever without the abort
		}
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestNodePanicIsReported(t *testing.T) {
	_, err := Run(ring(t, 3), func(ctx *Ctx) error {
		if ctx.ID() == 1 {
			panic("kaboom")
		}
		ctx.Tick()
		return nil
	})
	if err == nil || !errors.Is(err, err) {
		t.Fatal("expected error from panic")
	}
}

func TestMaxRounds(t *testing.T) {
	_, err := Run(ring(t, 3), func(ctx *Ctx) error {
		for {
			ctx.Tick()
		}
	}, WithMaxRounds(10))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int) {
		g, err := graph.RandomConnected(20, 20, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, func(ctx *Ctx) error {
			for r := 0; r < 10; r++ {
				if ctx.Rand().Intn(3) == 0 {
					ctx.Broadcast(int(ctx.ID()))
				}
				if ctx.Rand().Intn(2) == 0 && ctx.Degree() > 0 {
					ctx.Send(ctx.Rand().Intn(ctx.Degree()), r)
				}
				ctx.Tick()
			}
			return nil
		}, WithSeed(99))
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.Messages, int(res.Metrics.SlotsCollision)
	}
	m1, c1 := run()
	m2, c2 := run()
	if m1 != m2 || c1 != c2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", m1, c1, m2, c2)
	}
}

func TestPerNodeRNGsDiffer(t *testing.T) {
	res, err := Run(ring(t, 8), func(ctx *Ctx) error {
		ctx.SetResult(ctx.Rand().Int63())
		return nil
	}, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[any]bool)
	for _, r := range res.Results {
		if seen[r] {
			t.Fatal("two nodes drew identical first random values")
		}
		seen[r] = true
	}
}

func TestRoundNumbering(t *testing.T) {
	_, err := Run(ring(t, 3), func(ctx *Ctx) error {
		if ctx.Round() != 0 {
			return fmt.Errorf("initial round = %d", ctx.Round())
		}
		for want := 1; want <= 3; want++ {
			in := ctx.Tick()
			if in.Round != want || ctx.Round() != want {
				return fmt.Errorf("round = %d/%d, want %d", in.Round, ctx.Round(), want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleSendPanics(t *testing.T) {
	_, err := Run(path(t, 2), func(ctx *Ctx) error {
		ctx.Send(0, 1)
		ctx.Send(0, 2)
		return nil
	})
	if err == nil {
		t.Fatal("double send must abort the run with an error")
	}
}

func TestDoubleBroadcastPanics(t *testing.T) {
	_, err := Run(path(t, 2), func(ctx *Ctx) error {
		ctx.Broadcast(1)
		ctx.Broadcast(2)
		return nil
	})
	if err == nil {
		t.Fatal("double broadcast must abort the run with an error")
	}
}

func TestSendToAndLink(t *testing.T) {
	_, err := Run(path(t, 3), func(ctx *Ctx) error {
		if ctx.ID() == 0 {
			if _, ok := ctx.Link(2); ok {
				return errors.New("node 0 should not be adjacent to 2")
			}
			ctx.SendTo(1, "x")
		}
		in := ctx.Tick()
		if ctx.ID() == 1 {
			if len(in.Msgs) != 1 || in.Msgs[0].Payload != "x" {
				return fmt.Errorf("node 1 inbox: %v", in.Msgs)
			}
			// LinkOf must give back the local index of the arrival edge.
			l := ctx.LinkOf(in.Msgs[0].EdgeID)
			if ctx.Adj()[l].To != 0 {
				return errors.New("LinkOf points at wrong neighbor")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStaggeredHalting(t *testing.T) {
	// Node v halts after v rounds; engine must keep running until the last.
	res, err := Run(ring(t, 6), func(ctx *Ctx) error {
		for r := 0; r < int(ctx.ID()); r++ {
			ctx.Tick()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 6 {
		t.Errorf("Rounds = %d, want 6", res.Metrics.Rounds)
	}
}

func TestDroppedToHalted(t *testing.T) {
	// Node 0 halts immediately; node 1 sends to it afterwards.
	res, err := Run(path(t, 2), func(ctx *Ctx) error {
		if ctx.ID() == 0 {
			return nil
		}
		ctx.Tick()
		ctx.Send(0, "late")
		ctx.Tick()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DroppedHalted != 1 {
		t.Errorf("DroppedHalted = %d, want 1", res.Metrics.DroppedHalted)
	}
}

func TestSlotStateString(t *testing.T) {
	if SlotIdle.String() != "idle" || SlotSuccess.String() != "success" ||
		SlotCollision.String() != "collision" || SlotState(0).String() != "SlotState(0)" {
		t.Error("SlotState.String mismatch")
	}
}

func TestMetricsAddAndDerived(t *testing.T) {
	a := Metrics{Rounds: 2, Messages: 10, SlotsIdle: 1, SlotsSuccess: 2, SlotsCollision: 3}
	b := Metrics{Rounds: 3, Messages: 5, SlotsIdle: 4, SlotsSuccess: 5, SlotsCollision: 6}
	a.Add(&b)
	if a.Rounds != 5 || a.Messages != 15 || a.SlotsIdle != 5 || a.SlotsSuccess != 7 || a.SlotsCollision != 9 {
		t.Errorf("Add result: %+v", a)
	}
	if a.Slots() != 16 {
		t.Errorf("Slots = %d, want 16", a.Slots())
	}
	if a.Communication() != 20 {
		t.Errorf("Communication = %d, want 20", a.Communication())
	}
}
