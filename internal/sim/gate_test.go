package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPhaseGateStress hammers the gate with the exact workerLoop protocol
// and asserts that every phase runs exactly once per worker before wait()
// returns. This is the regression test for the two stale-wake races: a
// coordinator that leaves wait() on a wake left over from a previous phase
// observes ran < workers (phase released early, workers still mutating),
// and a worker whose await() returns on a stale wake re-runs the phase and
// pushes ran past workers on a later check. Both spin budgets are forced
// explicitly: spinning waiters are the ones that strand wakes in flight,
// and parked-only waiters are the ones that stale wakes then claim.
func TestPhaseGateStress(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, spin := range []int{0, gateSpin} {
			t.Run(fmt.Sprintf("workers=%d/spin=%d", workers, spin), func(t *testing.T) {
				t.Parallel()
				rounds := 20000
				if testing.Short() {
					rounds = 1000 // keep the race-detector CI job fast
				}
				g := newPhaseGate(workers)
				g.spin = spin
				ran := make([]atomic.Int32, rounds+1)
				var wg sync.WaitGroup
				for i := 0; i < workers; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						var epoch uint32
						for {
							epoch = g.await(i, epoch)
							phase := g.phase
							if phase != phaseExit {
								ran[epoch].Add(1)
							}
							g.finish()
							if phase == phaseExit {
								return
							}
						}
					}(i)
				}
				for r := 1; r <= rounds; r++ {
					g.release(phaseStep)
					g.wait()
					if n := ran[r].Load(); n != int32(workers) {
						t.Fatalf("epoch %d: phase ran %d worker-slices, want %d", r, n, workers)
					}
					// Re-check the previous epoch too: a double-run from a
					// stale worker wake lands there after wait() returned.
					if r > 1 {
						if n := ran[r-1].Load(); n != int32(workers) {
							t.Fatalf("epoch %d re-ran after release: %d worker-slices, want %d", r-1, n, workers)
						}
					}
				}
				g.release(phaseExit)
				g.wait()
				wg.Wait()
			})
		}
	}
}

// staleWakeGrace is how long the stale-wake tests give the buggy path to
// manifest. A waiter that wrongly accepts a stale wake returns within
// microseconds; the real signal is only produced after this grace, so the
// captured condition at return time is unambiguous.
const staleWakeGrace = 50 * time.Millisecond

// TestPhaseGateStaleCoordinatorWake constructs the review's first race by
// hand: a wake addressed to an already-completed wait claims the
// coordinator's park for the next phase while pending is still nonzero.
// wait must treat it as spurious and keep waiting; the buggy gate returned
// immediately, releasing the phase while workers were mid-mutation.
func TestPhaseGateStaleCoordinatorWake(t *testing.T) {
	g := newPhaseGate(1)
	g.spin = 0 // park immediately so the injected wake claims the park
	g.pending.Store(1)
	done := make(chan int32, 1)
	go func() {
		g.wait()
		done <- g.pending.Load()
	}()
	time.Sleep(staleWakeGrace) // let the coordinator park
	g.coord.wake()             // stale wake: no worker finished
	select {
	case p := <-done:
		t.Fatalf("wait returned on a stale wake with pending=%d", p)
	case <-time.After(staleWakeGrace):
	}
	g.pending.Store(0) // the real finish
	g.coord.wake()
	if p := <-done; p != 0 {
		t.Fatalf("wait returned with pending=%d, want 0", p)
	}
}

// TestPhaseGateStaleWorkerWake constructs the review's second race: a
// worker parked for the next epoch receives the delayed wake from a release
// it already observed by other means. await must absorb it and re-park; the
// buggy gate returned the unchanged epoch, making workerLoop re-run the
// phase and double-finish.
func TestPhaseGateStaleWorkerWake(t *testing.T) {
	g := newPhaseGate(1)
	g.spin = 0
	g.epoch.Store(1) // epoch 1 already observed by the worker out of band
	done := make(chan uint32, 1)
	go func() {
		done <- g.await(0, 1)
	}()
	time.Sleep(staleWakeGrace) // let the worker park for epoch 2
	g.workers[0].wake()        // the delayed wake from epoch 1's release
	select {
	case v := <-done:
		t.Fatalf("await returned epoch %d on a stale wake (last=1)", v)
	case <-time.After(staleWakeGrace):
	}
	g.phase = phaseStep // the real next release
	g.epoch.Add(1)
	g.workers[0].wake()
	if v := <-done; v != 2 {
		t.Fatalf("await returned epoch %d, want 2", v)
	}
}
