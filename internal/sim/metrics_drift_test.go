package sim

// metrics_drift_test.go is the counter-drift guard: every field of Metrics
// must be carried by Add (multi-stage totals), Sub (recorder deltas), and
// MarshalJSON (mmnet -json, and the key set the obs series rows mirror).
// The checks are reflective, so the next counter added to the struct fails
// here until all three are extended — it cannot silently vanish from
// totals, series sums, or machine-readable output.

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// fillDistinct sets field i of m to base*(i+1), returning the expectations.
func fillDistinct(m *Metrics, base int64) []int64 {
	v := reflect.ValueOf(m).Elem()
	want := make([]int64, v.NumField())
	for i := 0; i < v.NumField(); i++ {
		want[i] = base * int64(i+1)
		v.Field(i).SetInt(want[i])
	}
	return want
}

func TestMetricsAddSubCoverEveryField(t *testing.T) {
	var a, b Metrics
	wa := fillDistinct(&a, 1)
	wb := fillDistinct(&b, 1000)

	sum := a
	sum.Add(&b)
	sv := reflect.ValueOf(sum)
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		if got, want := sv.Field(i).Int(), wa[i]+wb[i]; got != want {
			t.Errorf("Add dropped field %s: got %d, want %d — extend Metrics.Add", name, got, want)
		}
	}

	diff := sum
	diff.Sub(&b)
	dv := reflect.ValueOf(diff)
	for i := 0; i < dv.NumField(); i++ {
		name := dv.Type().Field(i).Name
		if got, want := dv.Field(i).Int(), wa[i]; got != want {
			t.Errorf("Sub dropped field %s: got %d, want %d — extend Metrics.Sub", name, got, want)
		}
	}
}

// snakeCase converts a Go field name to its expected JSON key
// (SlotsIdle -> slots_idle).
func snakeCase(name string) string {
	var b strings.Builder
	for i, r := range name {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

func TestMetricsMarshalJSONCoversEveryField(t *testing.T) {
	var m Metrics
	want := fillDistinct(&m, 7)

	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]int64
	if err := json.Unmarshal(raw, &obj); err != nil {
		t.Fatal(err)
	}

	mt := reflect.TypeOf(m)
	for i := 0; i < mt.NumField(); i++ {
		key := snakeCase(mt.Field(i).Name)
		got, ok := obj[key]
		if !ok {
			t.Errorf("MarshalJSON dropped field %s (expected key %q) — extend the marshal struct", mt.Field(i).Name, key)
			continue
		}
		if got != want[i] {
			t.Errorf("MarshalJSON field %s: got %d, want %d", mt.Field(i).Name, got, want[i])
		}
	}

	// The derived totals must stay derived: the marshal must also carry
	// slots and communication computed from the raw fields.
	if obj["slots"] != m.Slots() {
		t.Errorf("slots = %d, want %d", obj["slots"], m.Slots())
	}
	if obj["communication"] != m.Communication() {
		t.Errorf("communication = %d, want %d", obj["communication"], m.Communication())
	}
}
