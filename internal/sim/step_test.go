package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// stepFuncs adapts plain closures to a Machine for tests.
type stepFuncs struct {
	step   func(in Input) bool
	result func() any
}

func (m *stepFuncs) Step(in Input) bool { return m.step(in) }
func (m *stepFuncs) Result() any {
	if m.result == nil {
		return nil
	}
	return m.result()
}

func TestStepImmediateHalt(t *testing.T) {
	res, err := RunStep(ring(t, 5), func(c *StepCtx) Machine {
		return &stepFuncs{step: func(Input) bool { return true }}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 1 || res.Metrics.Messages != 0 || res.Metrics.SlotsIdle != 1 {
		t.Errorf("metrics = %+v", res.Metrics)
	}
}

func TestStepMessageDeliveryAndSorting(t *testing.T) {
	// All ring neighbors of node 0 send to it in round 0; its round-1 inbox
	// must hold both messages sorted by sender.
	g := ring(t, 6)
	res, err := RunStep(g, func(c *StepCtx) Machine {
		return &stepFuncs{step: func(in Input) bool {
			switch in.Round {
			case 0:
				if c.ID() != 0 {
					if l, ok := c.Link(0); ok {
						c.Send(l, int(c.ID()))
					}
					return true
				}
				return false
			default:
				if c.ID() == 0 {
					if len(in.Msgs) != 2 || in.Msgs[0].From >= in.Msgs[1].From {
						c.Failf("inbox %v", in.Msgs)
					}
				}
				return true
			}
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages != 2 {
		t.Errorf("Messages = %d, want 2", res.Metrics.Messages)
	}
}

func TestStepChannelResolution(t *testing.T) {
	for _, tt := range []struct {
		name    string
		writers []graph.NodeID
		want    SlotState
	}{
		{"idle", nil, SlotIdle},
		{"success", []graph.NodeID{2}, SlotSuccess},
		{"collision", []graph.NodeID{1, 3}, SlotCollision},
	} {
		t.Run(tt.name, func(t *testing.T) {
			writerSet := make(map[graph.NodeID]bool)
			for _, w := range tt.writers {
				writerSet[w] = true
			}
			res, err := RunStep(ring(t, 5), func(c *StepCtx) Machine {
				return &stepFuncs{step: func(in Input) bool {
					if in.Round == 0 {
						if writerSet[c.ID()] {
							c.Broadcast(int(c.ID()) * 10)
						}
						return false
					}
					if in.Slot.State != tt.want {
						c.Failf("slot %v, want %v", in.Slot.State, tt.want)
					}
					if tt.want == SlotSuccess &&
						(in.Slot.From != tt.writers[0] || in.Slot.Payload.(int) != int(tt.writers[0])*10) {
						c.Failf("slot %+v", in.Slot)
					}
					return true
				}}
			}, WithWorkers(3))
			if err != nil {
				t.Fatal(err)
			}
			_ = res
		})
	}
}

func TestStepResultHook(t *testing.T) {
	res, err := RunStep(ring(t, 4), func(c *StepCtx) Machine {
		id := c.ID()
		return &stepFuncs{
			step:   func(Input) bool { return true },
			result: func() any { return int(id) * 11 },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range res.Results {
		if r != v*11 {
			t.Errorf("result[%d] = %v", v, r)
		}
	}
}

func TestStepRoundNumbering(t *testing.T) {
	_, err := RunStep(ring(t, 3), func(c *StepCtx) Machine {
		return &stepFuncs{step: func(in Input) bool {
			if in.Round != c.Round() {
				c.Failf("in.Round %d != ctx round %d", in.Round, c.Round())
			}
			return in.Round == 3
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStepSleepWave(t *testing.T) {
	// A token travels around the ring; every node sleeps until it arrives.
	const n = 64
	res, err := RunStep(ring(t, n), func(c *StepCtx) Machine {
		return &stepFuncs{step: func(in Input) bool {
			relay := func() {
				// Forward to the neighbor with the next id (mod n).
				next := graph.NodeID((int(c.ID()) + 1) % n)
				if next != 0 {
					c.SendTo(next, "token")
				}
			}
			if in.Round == 0 {
				if c.ID() == 0 {
					relay()
					return true
				}
				c.Sleep()
				return false
			}
			if len(in.Msgs) == 0 {
				c.Failf("woken with no mail in round %d", in.Round)
			}
			relay()
			return true
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != n || res.Metrics.Messages != n-1 {
		t.Errorf("rounds=%d msgs=%d, want %d and %d", res.Metrics.Rounds, res.Metrics.Messages, n, n-1)
	}
}

func TestStepQuiescenceHitsBudget(t *testing.T) {
	// Everyone sleeps forever with no message ever due: the wedge spins
	// cheap empty rounds to the same ErrMaxRounds the goroutine engine
	// reports for the equivalent blocked program.
	_, err := RunStep(ring(t, 4), func(c *StepCtx) Machine {
		return &stepFuncs{step: func(Input) bool {
			c.Sleep()
			return false
		}}
	}, WithMaxRounds(50))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestStepMaxRounds(t *testing.T) {
	_, err := RunStep(ring(t, 3), func(c *StepCtx) Machine {
		return &stepFuncs{step: func(Input) bool { return false }}
	}, WithMaxRounds(10))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestStepPanicReported(t *testing.T) {
	_, err := RunStep(ring(t, 3), func(c *StepCtx) Machine {
		return &stepFuncs{step: func(Input) bool {
			if c.ID() == 1 {
				panic("kaboom")
			}
			return false
		}}
	})
	if err == nil || !strings.Contains(err.Error(), "node 1 panicked") {
		t.Fatalf("err = %v, want node 1 panic", err)
	}
}

func TestStepDoubleSendPanics(t *testing.T) {
	_, err := RunStep(path(t, 2), func(c *StepCtx) Machine {
		return &stepFuncs{step: func(Input) bool {
			c.Send(0, 1)
			c.Send(0, 2)
			return true
		}}
	})
	if err == nil || !strings.Contains(err.Error(), "sent twice") {
		t.Fatalf("err = %v, want double-send error", err)
	}
}

func TestStepDroppedToHalted(t *testing.T) {
	res, err := RunStep(path(t, 2), func(c *StepCtx) Machine {
		return &stepFuncs{step: func(in Input) bool {
			if c.ID() == 0 {
				return true
			}
			if in.Round == 1 {
				c.Send(0, "late")
			}
			return in.Round == 2
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DroppedHalted != 1 {
		t.Errorf("DroppedHalted = %d, want 1", res.Metrics.DroppedHalted)
	}
}

// chatterProgram is a randomized goroutine Program used to cross-check the
// engines: every transcript-visible artifact (results and metrics) must be
// identical between the goroutine engine and the step-engine adapter.
func chatterProgram(rounds int) Program {
	return func(ctx *Ctx) error {
		var heard int64
		for r := 0; r < rounds; r++ {
			if ctx.Rand().Intn(3) == 0 {
				ctx.Broadcast(int(ctx.ID()))
			}
			if ctx.Rand().Intn(2) == 0 && ctx.Degree() > 0 {
				ctx.Send(ctx.Rand().Intn(ctx.Degree()), r)
			}
			in := ctx.Tick()
			heard += int64(len(in.Msgs))
			if in.Slot.State == SlotSuccess {
				heard += 1000
			}
		}
		ctx.SetResult(heard)
		return nil
	}
}

func TestAdapterMatchesGoroutineEngine(t *testing.T) {
	g, err := graph.RandomConnected(40, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, chatterProgram(12), WithSeed(99), WithEngine(EngineGoroutine))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := Run(g, chatterProgram(12), WithSeed(99), WithEngine(EngineStep), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want.Results, got.Results) {
			t.Errorf("workers=%d: results differ", workers)
		}
		if want.Metrics != got.Metrics {
			t.Errorf("workers=%d: metrics %+v vs %+v", workers, want.Metrics, got.Metrics)
		}
	}
}

func TestAdapterProgramErrorAborts(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Run(ring(t, 4), func(ctx *Ctx) error {
		if ctx.ID() == 2 {
			return wantErr
		}
		for {
			ctx.Tick()
		}
	}, WithEngine(EngineStep))
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestAdapterMaxRounds(t *testing.T) {
	_, err := Run(ring(t, 3), func(ctx *Ctx) error {
		for {
			ctx.Tick()
		}
	}, WithMaxRounds(10), WithEngine(EngineStep))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestStepBarrierMatchesBarrierStep(t *testing.T) {
	// One barrier-synchronized flood from node 0, written both ways; the
	// transcripts must match exactly.
	g, err := graph.RandomConnected(30, 45, 5)
	if err != nil {
		t.Fatal(err)
	}
	gor, err := Run(g, func(ctx *Ctx) error {
		seen := ctx.ID() == 0
		BarrierStep(ctx, Input{}, func(in Input) bool {
			if !seen && len(in.Msgs) > 0 {
				seen = true
				for l := 0; l < ctx.Degree(); l++ {
					ctx.Send(l, "wave")
				}
			}
			if seen && in.Round == 0 && ctx.ID() == 0 {
				for l := 0; l < ctx.Degree(); l++ {
					ctx.Send(l, "wave")
				}
			}
			return false
		})
		ctx.SetResult(seen)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := RunStep(g, func(c *StepCtx) Machine {
		b := NewStepBarrier(c)
		seen := c.ID() == 0
		return &stepFuncs{
			step: func(in Input) bool {
				return b.Step(in, func(in Input) bool {
					if !seen && len(in.Msgs) > 0 {
						seen = true
						for l := 0; l < c.Degree(); l++ {
							c.Send(l, "wave")
						}
					}
					if seen && in.Round == 0 && c.ID() == 0 {
						for l := 0; l < c.Degree(); l++ {
							c.Send(l, "wave")
						}
					}
					return false
				})
			},
			result: func() any { return seen },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gor.Results, nat.Results) {
		t.Error("results differ between BarrierStep and StepBarrier")
	}
	if gor.Metrics != nat.Metrics {
		t.Errorf("metrics differ: %+v vs %+v", gor.Metrics, nat.Metrics)
	}
	for _, r := range nat.Results {
		if r != true {
			t.Fatalf("flood did not reach every node: %v", nat.Results)
		}
	}
}

func TestParseEngine(t *testing.T) {
	if e, err := ParseEngine("step"); err != nil || e != EngineStep {
		t.Errorf("ParseEngine(step) = %v, %v", e, err)
	}
	if e, err := ParseEngine("goroutine"); err != nil || e != EngineGoroutine {
		t.Errorf("ParseEngine(goroutine) = %v, %v", e, err)
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("ParseEngine(warp) should fail")
	}
	if EngineStep.String() != "step" || EngineGoroutine.String() != "goroutine" {
		t.Error("Engine.String mismatch")
	}
}

func TestAdapterInboxAppendSafe(t *testing.T) {
	// The adapter delivers each round's messages in one arena per shard; a
	// program appending to its Input.Msgs (always legal on the goroutine
	// engine) must reallocate instead of overwriting the next recipient's
	// window. Every node messages its successor, so all the round's inbox
	// windows sit side by side in one arena.
	g, err := graph.Ring(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := func(ctx *Ctx) error {
		next := graph.NodeID((int(ctx.ID()) + 1) % ctx.N())
		ctx.SendTo(next, int(ctx.ID())*100)
		in := ctx.Tick()
		// Abuse the API the way a legacy program may: grow the inbox slice.
		grown := append(in.Msgs, Message{From: 99, EdgeID: 99, Payload: "junk"})
		_ = grown
		var sum int
		for _, m := range in.Msgs {
			sum += m.Payload.(int)
		}
		ctx.SetResult(sum)
		return nil
	}
	want, err := Run(g, prog, WithEngine(EngineGoroutine))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, prog, WithEngine(EngineStep), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Results, got.Results) {
		t.Errorf("results diverge after inbox append:\n goroutine: %v\n step:      %v", want.Results, got.Results)
	}
}
