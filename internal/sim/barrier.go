package sim

// Channel-as-synchronizer barrier (§7.1). The paper notes that its
// synchronizer "can serve as a mechanism to detect the global termination of
// each phase and each step in a phase"; this file implements that mechanism
// for the synchronous engine.
//
// Protocol: while a node is active in the current step — it sent a message
// this round or declares pending work — it transmits a busy tone on the
// channel. Because delivery is synchronous (exactly one round), a sender's
// busy tone covers its in-flight message: if the slot of round t is idle,
// then no message was sent at round t and no node was active at round t, so
// when all nodes observe the idle slot at round t+1 the step has globally
// terminated. The idle slot is the paper's "clock pulse".

// SentThisRound reports whether this node queued any point-to-point message
// in the current round.
func (c *Ctx) SentThisRound() bool { return len(c.out) > 0 }

// IsPulse reports whether in carries a barrier pulse (the previous slot was
// idle).
func (in Input) IsPulse() bool { return in.Slot.State == SlotIdle }

// BarrierStep runs one barrier-synchronized step of a protocol. Each round
// it calls handle with the round's input; handle performs the node's sends
// for the round and reports whether the node is still active. Nodes that
// sent a message are treated as active regardless of handle's return value,
// which guarantees no message is in flight when the barrier fires. All nodes
// return from BarrierStep in the same round; the returned Input is the first
// one carrying the pulse (its Msgs are necessarily empty).
func BarrierStep(c *Ctx, in Input, handle func(Input) bool) Input {
	for {
		active := handle(in)
		if active || c.SentThisRound() {
			c.Busy()
		}
		in = c.Tick()
		if in.IsPulse() {
			return in
		}
	}
}

// BarrierWait is a barrier step in which this node has nothing to do: it
// stays passive until the global pulse. Useful for nodes that do not
// participate in the current step but must stay round-aligned.
func BarrierWait(c *Ctx, in Input) Input {
	return BarrierStep(c, in, func(Input) bool { return false })
}
