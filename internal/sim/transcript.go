package sim

// transcript.go is the streamed binary transcript format: a round-framed,
// crc-checked digest of everything the determinism contract promises is
// bit-identical across engines and worker counts. Engines emit one frame per
// executed (or fast-forwarded) round — slot resolution, live-node count,
// cumulative Metrics, and a digest of every inbox delivered for the next
// round — plus one final frame carrying the run's outcome. Two runs of the
// same (graph, program, seed, plan) therefore produce byte-identical
// transcript files whatever engine or worker count executed them, which is
// what makes cmd/mmreplay's diff able to pinpoint the first divergent
// (round, node) of a broken run, and what lets a checkpoint-resumed run's
// transcript be stitched onto the original's prefix and compared against an
// uninterrupted run byte for byte.
//
// # Wire format (version 2)
//
//	prelude  "MMTR" | version byte | flags byte (bit0: gzip)
//	stream   header frame, round frames (ascending rounds), final frame
//
// Everything after the prelude is gzip-wrapped when the flag bit is set.
// Every frame is
//
//	kind byte | uvarint bodyLen | body | crc32-IEEE(body), 4 bytes LE
//
// with bodies:
//
//	header  uvarint n | uvarint zigzag(seed) | uvarint len(plan), plan |
//	        uvarint len(label), label
//	round   uvarint round | slot state byte |
//	        (success only: uvarint writer id, 8-byte payload digest LE) |
//	        uvarint alive | 14 uvarint Metrics fields (struct order) |
//	        uvarint k | k × (uvarint node-id delta, 8-byte inbox digest LE)
//	final   14 uvarint Metrics fields | uvarint len(err), err |
//	        8-byte results digest LE | uvarint n
//
// Inbox digests are 64-bit FNV-1a over each message's (sender, edge id,
// payload) in delivery order; payloads are hashed through their %#v
// rendering, which is deterministic for the value types protocols send.
// Node ids inside a round frame are delta-coded ascending.
//
// Transcript emission is coordinator-side only and stays out of the
// engines' //mmlint:noalloc phases: with no writer installed (the default)
// every hook site is one nil check and the zero-alloc guarantee is
// untouched.

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/graph"
)

// TranscriptVersion is the wire format version this package writes.
// Version 2 extended the metrics field list from 11 to 14 (partitioned
// drops, restarts, skewed messages); the reader is strict, so version-1
// streams must be regenerated rather than reinterpreted.
const TranscriptVersion = 2

const (
	transcriptMagic = "MMTR"

	frameHeader byte = 1
	frameRound  byte = 2
	frameFinal  byte = 3

	tflagGzip byte = 1 << 0
)

// fnv64Offset/fnv64Prime are the FNV-1a constants used for every digest in
// the transcript (hash/fnv with less indirection).
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnv64Prime
	}
	return h
}

// payloadDigest hashes one payload through its %#v rendering.
func payloadDigest(p Payload) uint64 {
	return fnvBytes(fnv64Offset, fmt.Appendf(nil, "%#v", p))
}

// inboxDigest hashes one delivered inbox in its (sender, edge id) delivery
// order, reusing scratch for the rendering.
func inboxDigest(box []Message, scratch []byte) (uint64, []byte) {
	h := fnv64Offset
	for i := range box {
		scratch = scratch[:0]
		scratch = binary.AppendUvarint(scratch, uint64(box[i].From))
		scratch = binary.AppendUvarint(scratch, uint64(box[i].EdgeID))
		scratch = fmt.Appendf(scratch, "%#v", box[i].Payload)
		scratch = append(scratch, ';')
		h = fnvBytes(h, scratch)
	}
	return h, scratch
}

// resultsDigest hashes the per-node results of a finished run.
func resultsDigest(results []any) uint64 {
	h := fnv64Offset
	var scratch []byte
	for v, r := range results {
		scratch = fmt.Appendf(scratch[:0], "%d:%#v;", v, r)
		h = fnvBytes(h, scratch)
	}
	return h
}

// TranscriptHeader identifies the run a transcript describes.
type TranscriptHeader struct {
	Version int
	Gzip    bool
	N       int
	Seed    int64
	Plan    string // fault plan DSL, "" for a fault-free run
	Label   string // free-form run label (algo/graph spelling)
}

// NodeDigest is one node's inbox digest within a round frame.
type NodeDigest struct {
	Node   graph.NodeID
	Digest uint64
}

// RoundFrame is one decoded round of a transcript: the slot resolved for
// this round, the nodes still live, the run's cumulative metrics, and the
// digest of every nonempty inbox delivered for the round (ascending node
// order).
type RoundFrame struct {
	Round      int
	Slot       SlotState
	From       graph.NodeID // success slots only
	SlotDigest uint64       // success slots only: payload digest
	Alive      int
	Met        Metrics
	Nodes      []NodeDigest
}

// FinalFrame closes a transcript with the run's outcome.
type FinalFrame struct {
	Met           Metrics
	Err           string // "" for a clean run
	ResultsDigest uint64
	N             int
}

// appendMetrics encodes every Metrics field in struct order. The field list
// is pinned by TestTranscriptMetricsCoverEveryField: adding a Metrics field
// without extending this (and decodeMetrics) fails the build's tests rather
// than silently dropping the field from transcripts.
func appendMetrics(b []byte, m *Metrics) []byte {
	b = binary.AppendUvarint(b, uint64(m.Rounds))
	b = binary.AppendUvarint(b, uint64(m.Messages))
	b = binary.AppendUvarint(b, uint64(m.SlotsIdle))
	b = binary.AppendUvarint(b, uint64(m.SlotsSuccess))
	b = binary.AppendUvarint(b, uint64(m.SlotsCollision))
	b = binary.AppendUvarint(b, uint64(m.DroppedHalted))
	b = binary.AppendUvarint(b, uint64(m.Crashed))
	b = binary.AppendUvarint(b, uint64(m.DroppedFault))
	b = binary.AppendUvarint(b, uint64(m.Delayed))
	b = binary.AppendUvarint(b, uint64(m.Duplicated))
	b = binary.AppendUvarint(b, uint64(m.SlotsJammed))
	b = binary.AppendUvarint(b, uint64(m.PartitionedDrop))
	b = binary.AppendUvarint(b, uint64(m.Restarted))
	b = binary.AppendUvarint(b, uint64(m.Skewed))
	return b
}

// transcriptMetricsFields is the number of Metrics fields on the wire,
// cross-checked against the struct by reflection in tests.
const transcriptMetricsFields = 14

func decodeMetrics(d *frameDecoder, m *Metrics) {
	m.Rounds = int(d.uvarint())
	m.Messages = int64(d.uvarint())
	m.SlotsIdle = int64(d.uvarint())
	m.SlotsSuccess = int64(d.uvarint())
	m.SlotsCollision = int64(d.uvarint())
	m.DroppedHalted = int64(d.uvarint())
	m.Crashed = int64(d.uvarint())
	m.DroppedFault = int64(d.uvarint())
	m.Delayed = int64(d.uvarint())
	m.Duplicated = int64(d.uvarint())
	m.SlotsJammed = int64(d.uvarint())
	m.PartitionedDrop = int64(d.uvarint())
	m.Restarted = int64(d.uvarint())
	m.Skewed = int64(d.uvarint())
}

// TranscriptWriter streams a run's transcript. Engines drive it through
// their coordinator loop; commands own the underlying writer and must call
// Close to flush. Write errors are sticky and reported by Close (and Err),
// never mid-run: a failing disk aborts the transcript, not the simulation.
type TranscriptWriter struct {
	dst     io.Writer
	bw      *bufio.Writer
	gz      *gzip.Writer
	out     io.Writer // frame destination: gz when compressing, else bw
	started bool
	err     error

	frame   []byte // frame scratch, reused
	scratch []byte // digest scratch, reused
	touched []int32
	nodes   []NodeDigest
}

// NewTranscriptWriter builds a streaming transcript writer over w,
// optionally gzip-compressing everything after the 6-byte prelude.
func NewTranscriptWriter(w io.Writer, gzipped bool) *TranscriptWriter {
	tw := &TranscriptWriter{dst: w, bw: bufio.NewWriter(w)}
	tw.out = tw.bw
	if gzipped {
		tw.gz = gzip.NewWriter(tw.bw)
		tw.out = tw.gz
	}
	return tw
}

// WriteHeader writes the prelude and header frame. The engines call it
// through begin on the first round; commands stitching transcripts call it
// directly. Repeated calls are errors.
func (tw *TranscriptWriter) WriteHeader(h *TranscriptHeader) {
	if tw.err != nil {
		return
	}
	if tw.started {
		tw.fail(errors.New("sim: transcript header written twice"))
		return
	}
	tw.started = true
	flags := byte(0)
	if tw.gz != nil {
		flags |= tflagGzip
	}
	prelude := []byte{transcriptMagic[0], transcriptMagic[1], transcriptMagic[2], transcriptMagic[3], TranscriptVersion, flags}
	if _, err := tw.bw.Write(prelude); err != nil {
		tw.fail(err)
		return
	}
	b := tw.frame[:0]
	b = binary.AppendUvarint(b, uint64(h.N))
	b = binary.AppendUvarint(b, zigzag(h.Seed))
	b = binary.AppendUvarint(b, uint64(len(h.Plan)))
	b = append(b, h.Plan...)
	b = binary.AppendUvarint(b, uint64(len(h.Label)))
	b = append(b, h.Label...)
	tw.frame = b
	tw.emit(frameHeader, b)
}

// begin lazily writes the header on behalf of an engine.
func (tw *TranscriptWriter) begin(n int, seed int64, plan, label string) {
	if tw.started {
		return
	}
	tw.WriteHeader(&TranscriptHeader{N: n, Seed: seed, Plan: plan, Label: label})
}

// WriteRound appends one round frame. Frames must be written in ascending
// round order with f.Nodes sorted by node id; the engines guarantee both.
func (tw *TranscriptWriter) WriteRound(f *RoundFrame) {
	if tw.err != nil {
		return
	}
	b := tw.frame[:0]
	b = binary.AppendUvarint(b, uint64(f.Round))
	b = append(b, byte(f.Slot))
	if f.Slot == SlotSuccess {
		b = binary.AppendUvarint(b, uint64(f.From))
		b = binary.LittleEndian.AppendUint64(b, f.SlotDigest)
	}
	b = binary.AppendUvarint(b, uint64(f.Alive))
	b = appendMetrics(b, &f.Met)
	b = binary.AppendUvarint(b, uint64(len(f.Nodes)))
	prev := graph.NodeID(0)
	for i := range f.Nodes {
		b = binary.AppendUvarint(b, uint64(f.Nodes[i].Node-prev))
		b = binary.LittleEndian.AppendUint64(b, f.Nodes[i].Digest)
		prev = f.Nodes[i].Node
	}
	tw.frame = b
	tw.emit(frameRound, b)
}

// WriteFinal appends the closing frame.
func (tw *TranscriptWriter) WriteFinal(f *FinalFrame) {
	if tw.err != nil {
		return
	}
	b := tw.frame[:0]
	b = appendMetrics(b, &f.Met)
	b = binary.AppendUvarint(b, uint64(len(f.Err)))
	b = append(b, f.Err...)
	b = binary.LittleEndian.AppendUint64(b, f.ResultsDigest)
	b = binary.AppendUvarint(b, uint64(f.N))
	tw.frame = b
	tw.emit(frameFinal, b)
}

// emit frames one body: kind, length, body, crc.
func (tw *TranscriptWriter) emit(kind byte, body []byte) {
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = kind
	n := binary.PutUvarint(hdr[1:], uint64(len(body)))
	if _, err := tw.out.Write(hdr[:1+n]); err != nil {
		tw.fail(err)
		return
	}
	if _, err := tw.out.Write(body); err != nil {
		tw.fail(err)
		return
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	if _, err := tw.out.Write(crc[:]); err != nil {
		tw.fail(err)
	}
}

func (tw *TranscriptWriter) fail(err error) {
	if tw.err == nil {
		tw.err = err
	}
}

// Err returns the first write error, if any.
func (tw *TranscriptWriter) Err() error { return tw.err }

// Close flushes the stream (finishing the gzip member when compressing) and
// returns the first error encountered anywhere in the transcript's life.
// It does not close the underlying writer.
func (tw *TranscriptWriter) Close() error {
	if tw.gz != nil {
		if err := tw.gz.Close(); err != nil {
			tw.fail(err)
		}
		tw.gz = nil
	}
	if err := tw.bw.Flush(); err != nil {
		tw.fail(err)
	}
	return tw.err
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// frameDecoder walks one frame body, latching the first error.
type frameDecoder struct {
	b   []byte
	err error
}

func (d *frameDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = errors.New("sim: transcript frame truncated")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *frameDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.err = errors.New("sim: transcript frame truncated")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *frameDecoder) uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = errors.New("sim: transcript frame truncated")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *frameDecoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.err = errors.New("sim: transcript frame truncated")
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// TranscriptReader decodes a transcript stream: the header eagerly, then
// one frame per Next call.
type TranscriptReader struct {
	br     *bufio.Reader
	gz     *gzip.Reader
	in     io.Reader
	header TranscriptHeader
	done   bool
}

// NewTranscriptReader opens a transcript, validating the prelude and
// decoding the header frame.
func NewTranscriptReader(r io.Reader) (*TranscriptReader, error) {
	tr := &TranscriptReader{br: bufio.NewReader(r)}
	var prelude [6]byte
	if _, err := io.ReadFull(tr.br, prelude[:]); err != nil {
		return nil, fmt.Errorf("sim: transcript prelude: %w", err)
	}
	if string(prelude[:4]) != transcriptMagic {
		return nil, fmt.Errorf("sim: not a transcript (magic %q)", prelude[:4])
	}
	if prelude[4] != TranscriptVersion {
		return nil, fmt.Errorf("sim: transcript version %d (reader supports %d)", prelude[4], TranscriptVersion)
	}
	tr.header.Version = int(prelude[4])
	tr.in = tr.br
	if prelude[5]&tflagGzip != 0 {
		gz, err := gzip.NewReader(tr.br)
		if err != nil {
			return nil, fmt.Errorf("sim: transcript gzip stream: %w", err)
		}
		tr.gz, tr.in = gz, gz
		tr.header.Gzip = true
	}
	kind, body, err := tr.frame()
	if err != nil {
		return nil, fmt.Errorf("sim: transcript header frame: %w", err)
	}
	if kind != frameHeader {
		return nil, fmt.Errorf("sim: transcript starts with frame kind %d, want header", kind)
	}
	d := frameDecoder{b: body}
	tr.header.N = int(d.uvarint())
	tr.header.Seed = unzigzag(d.uvarint())
	tr.header.Plan = string(d.bytes(d.uvarint()))
	tr.header.Label = string(d.bytes(d.uvarint()))
	if d.err != nil {
		return nil, d.err
	}
	return tr, nil
}

// Header returns the decoded transcript header.
func (tr *TranscriptReader) Header() TranscriptHeader { return tr.header }

// frame reads one raw frame, verifying its crc.
func (tr *TranscriptReader) frame() (byte, []byte, error) {
	var kind [1]byte
	if _, err := io.ReadFull(tr.in, kind[:]); err != nil {
		return 0, nil, err
	}
	size, err := binary.ReadUvarint(byteReaderOf(tr.in))
	if err != nil {
		return 0, nil, fmt.Errorf("frame length: %w", err)
	}
	if size > 1<<30 {
		return 0, nil, fmt.Errorf("frame length %d implausible", size)
	}
	body := make([]byte, size+4)
	if _, err := io.ReadFull(tr.in, body); err != nil {
		return 0, nil, fmt.Errorf("frame body: %w", err)
	}
	want := binary.LittleEndian.Uint32(body[size:])
	body = body[:size]
	if got := crc32.ChecksumIEEE(body); got != want {
		return 0, nil, fmt.Errorf("frame crc mismatch: %08x != %08x", got, want)
	}
	return kind[0], body, nil
}

// byteReaderOf adapts the reader for ReadUvarint; both concrete stream types
// (bufio.Reader, gzip.Reader) already implement io.ByteReader.
func byteReaderOf(r io.Reader) io.ByteReader {
	if br, ok := r.(io.ByteReader); ok {
		return br
	}
	return &oneByteReader{r}
}

type oneByteReader struct{ r io.Reader }

func (o *oneByteReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(o.r, b[:])
	return b[0], err
}

// Next decodes the next frame: exactly one of the returns is non-nil. After
// the final frame (or a clean EOF on a truncated-but-frame-aligned stream)
// it returns (nil, nil, io.EOF).
func (tr *TranscriptReader) Next() (*RoundFrame, *FinalFrame, error) {
	if tr.done {
		return nil, nil, io.EOF
	}
	kind, body, err := tr.frame()
	if err != nil {
		if errors.Is(err, io.EOF) {
			tr.done = true
			return nil, nil, io.EOF
		}
		return nil, nil, err
	}
	d := frameDecoder{b: body}
	switch kind {
	case frameRound:
		f := &RoundFrame{}
		f.Round = int(d.uvarint())
		f.Slot = SlotState(d.byte())
		if f.Slot == SlotSuccess {
			f.From = graph.NodeID(d.uvarint())
			f.SlotDigest = d.uint64()
		}
		f.Alive = int(d.uvarint())
		decodeMetrics(&d, &f.Met)
		k := d.uvarint()
		if k > uint64(len(body)) { // each entry is ≥ 9 bytes; cheap bound
			return nil, nil, errors.New("sim: transcript node count implausible")
		}
		f.Nodes = make([]NodeDigest, 0, k)
		node := graph.NodeID(0)
		for i := uint64(0); i < k; i++ {
			node += graph.NodeID(d.uvarint())
			f.Nodes = append(f.Nodes, NodeDigest{Node: node, Digest: d.uint64()})
		}
		if d.err != nil {
			return nil, nil, d.err
		}
		return f, nil, nil
	case frameFinal:
		f := &FinalFrame{}
		decodeMetrics(&d, &f.Met)
		f.Err = string(d.bytes(d.uvarint()))
		f.ResultsDigest = d.uint64()
		f.N = int(d.uvarint())
		if d.err != nil {
			return nil, nil, d.err
		}
		tr.done = true
		return nil, f, nil
	default:
		return nil, nil, fmt.Errorf("sim: unknown transcript frame kind %d", kind)
	}
}

// DefaultTranscript is the writer a run streams to when no WithTranscript
// option is given; nil (the default) means transcripts off. Unlike
// DefaultFaults there is no command-global default: multi-run algorithms
// would interleave several runs into one stream, so commands pass
// WithTranscript explicitly to single-run protocols instead.
var DefaultTranscript *TranscriptWriter

// WithTranscript streams this run's transcript to tw (nil keeps the
// default). By the determinism contract the transcript is an observation:
// installing a writer never changes the run itself.
func WithTranscript(tw *TranscriptWriter) Option {
	return func(c *config) { c.tw = tw }
}

// transcript resolves the run's transcript writer.
func (c *config) transcript() *TranscriptWriter {
	if c.tw != nil {
		return c.tw
	}
	return DefaultTranscript
}

// planString renders the run's fault plan for transcript and checkpoint
// headers ("" when fault-free).
func (c *config) planString() string {
	if p := c.plan(); p != nil {
		return p.String()
	}
	return ""
}
