package sim

// fastforward_test.go locks down the quiescent-round fast-forward: every
// scenario is run twice, once on the normal per-round path (the
// disableFastForward hook) and once with fast-forward enabled, and the full
// observable outcome — results, metrics, or the error — must be identical.

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// ffOutcome captures everything observable about a native run.
type ffOutcome struct {
	res *Result
	err string
}

// runFFBoth runs the program with and without fast-forward and requires
// bit-identical outcomes, returning the fast-forwarded one.
func runFFBoth(t *testing.T, g *graph.Graph, prog StepProgram, opts ...Option) ffOutcome {
	t.Helper()
	capture := func() ffOutcome {
		res, err := RunStep(g, prog, opts...)
		if err != nil {
			return ffOutcome{err: err.Error()}
		}
		return ffOutcome{res: res}
	}
	disableFastForward = true
	slow := capture()
	disableFastForward = false
	fast := capture()
	if !reflect.DeepEqual(slow, fast) {
		t.Fatalf("fast-forward diverges from per-round path:\n slow: %+v %q\n fast: %+v %q",
			slow.res, slow.err, fast.res, fast.err)
	}
	return fast
}

// sleepForeverProg parks every node forever: the canonical wedge.
func sleepForeverProg(c *StepCtx) Machine {
	return &stepFuncs{step: func(Input) bool {
		c.Sleep()
		return false
	}}
}

// oneShotProg has node 0 send to node 1 in round 0 and halt; node 1 sleeps
// until it has received want messages, then halts with the count.
func oneShotProg(want int) StepProgram {
	return func(c *StepCtx) Machine {
		count := 0
		return &stepFuncs{
			step: func(in Input) bool {
				if in.Round == 0 && c.ID() == 0 {
					c.SendTo(1, "wake-up")
					return true
				}
				count += len(in.Msgs)
				if count >= want {
					return true
				}
				c.Sleep()
				return false
			},
			result: func() any { return count },
		}
	}
}

func TestFastForwardDelayedDelivery(t *testing.T) {
	// The only message of the run is delayed 40 rounds into an otherwise
	// fully parked network; the fast-forward must land exactly on the
	// deposit iteration and wake the recipient at the same round.
	g := path(t, 2)
	plan := (&fault.Plan{Seed: 1}).Add(fault.Rule{Kind: fault.Delay, Edge: fault.AllEdges, From: 1, Until: 5, Lag: 40})
	out := runFFBoth(t, g, oneShotProg(1), WithFaults(plan), WithMaxRounds(200))
	if out.err != "" {
		t.Fatalf("run failed: %s", out.err)
	}
	m := out.res.Metrics
	if m.Delayed != 1 || m.Rounds != 42 {
		// Sent in round 0, normally observed at round 1, deferred to 41;
		// the recipient halts in its round-41 step, ending the run at
		// iteration 41 = 42 rounds.
		t.Errorf("metrics = %+v, want Delayed=1 Rounds=42", m)
	}
	if m.SlotsIdle != int64(m.Rounds) {
		t.Errorf("SlotsIdle = %d, want %d (every slot writer-free)", m.SlotsIdle, m.Rounds)
	}
	if out.res.Results[1] != 1 {
		t.Errorf("node 1 result = %v, want 1", out.res.Results[1])
	}
}

func TestFastForwardDuplicateDelivery(t *testing.T) {
	// The original copy arrives at round 1; its duplicate lands 60 rounds
	// later in a network that parked in between, so the skip must stop at
	// the dup's deposit iteration.
	g := path(t, 2)
	plan := (&fault.Plan{Seed: 1}).Add(fault.Rule{Kind: fault.Dup, Edge: fault.AllEdges, From: 1, Until: 1, Lag: 60})
	out := runFFBoth(t, g, oneShotProg(2), WithFaults(plan), WithMaxRounds(300))
	if out.err != "" {
		t.Fatalf("run failed: %s", out.err)
	}
	m := out.res.Metrics
	if m.Duplicated != 1 || m.Rounds != 62 {
		// Original observed at round 1, duplicate at 61; node 1 halts in
		// its round-61 step: 62 rounds.
		t.Errorf("metrics = %+v, want Duplicated=1 Rounds=62", m)
	}
	if out.res.Results[1] != 2 {
		t.Errorf("node 1 result = %v, want 2 (original + dup)", out.res.Results[1])
	}
}

func TestFastForwardCrashMidSkip(t *testing.T) {
	// Crashes scheduled in the middle of a quiescent stretch: the engine
	// must stop each skip at the crash iteration, apply it through the
	// normal path, and end the run when no node remains alive.
	g := path(t, 2)
	plan := (&fault.Plan{Seed: 1}).
		Add(fault.Rule{Kind: fault.Crash, Node: 0, From: 30}).
		Add(fault.Rule{Kind: fault.Crash, Node: 1, From: 70})
	out := runFFBoth(t, g, sleepForeverProg, WithFaults(plan), WithMaxRounds(500))
	if out.err != "" {
		t.Fatalf("run failed: %s", out.err)
	}
	m := out.res.Metrics
	if m.Crashed != 2 || m.Rounds != 70 {
		// Node 1's crash at observation round 70 is applied by iteration
		// 69, the 70th round; alive hits zero and the run ends there.
		t.Errorf("metrics = %+v, want Crashed=2 Rounds=70", m)
	}
	if out.res.Results[0] != nil || out.res.Results[1] != nil {
		t.Errorf("crash-stopped nodes must record nil results, got %v", out.res.Results)
	}
}

func TestFastForwardPulseWakeAfterJamWindow(t *testing.T) {
	// Pulse-parked nodes sleep through a jam window (every slot a forced
	// collision) and wake at the first clear slot. The fast-forward skips
	// the jammed rounds but must accrue SlotsJammed for each of them and
	// wake the sleepers at exactly the same round.
	g := ring(t, 6)
	plan := (&fault.Plan{Seed: 1}).Add(fault.Rule{Kind: fault.Jam, From: 1, Until: 25})
	prog := func(c *StepCtx) Machine {
		return &stepFuncs{
			step: func(in Input) bool {
				if in.Round > 0 && in.IsPulse() {
					return true
				}
				c.SleepUntilPulse()
				return false
			},
			result: func() any { return "pulsed" },
		}
	}
	out := runFFBoth(t, g, prog, WithFaults(plan), WithMaxRounds(400))
	if out.err != "" {
		t.Fatalf("run failed: %s", out.err)
	}
	m := out.res.Metrics
	if m.SlotsJammed != 25 || m.Rounds != 27 {
		// Slots 1–25 jam; slot 26 resolves idle (iteration 25), waking the
		// sleepers, which observe the pulse in round 26 and halt: 27 rounds.
		t.Errorf("metrics = %+v, want SlotsJammed=25 Rounds=27", m)
	}
	for v, r := range out.res.Results {
		if r != "pulsed" {
			t.Fatalf("node %d result = %v", v, r)
		}
	}
}

func TestFastForwardProbabilisticJamAccrual(t *testing.T) {
	// A probabilistic jam over a long skipped stretch: the arithmetic
	// accrual must count exactly the slots the per-round path would have
	// jammed (runFFBoth compares the full Metrics).
	g := path(t, 2)
	plan := (&fault.Plan{Seed: 77}).
		Add(fault.Rule{Kind: fault.Delay, Edge: fault.AllEdges, From: 1, Until: 5, Lag: 60}).
		Add(fault.Rule{Kind: fault.Jam, From: 1, Until: fault.Forever, Prob: 0.3})
	out := runFFBoth(t, g, oneShotProg(1), WithFaults(plan), WithMaxRounds(300))
	if out.err != "" {
		t.Fatalf("run failed: %s", out.err)
	}
	m := out.res.Metrics
	if m.SlotsJammed == 0 || m.SlotsIdle == 0 {
		t.Errorf("metrics = %+v, want a mix of jammed and idle slots", m)
	}
	if m.SlotsJammed+m.SlotsIdle != int64(m.Rounds) {
		t.Errorf("slots %d+%d do not cover %d rounds", m.SlotsJammed, m.SlotsIdle, m.Rounds)
	}
}

func TestFastForwardWedgeHitsBudget(t *testing.T) {
	// A genuine wedge — everyone parked, nothing ever due — must report the
	// exact same ErrMaxRounds as the per-round spin, and must do so
	// instantly even for a budget in the millions.
	g := ring(t, 4)
	disableFastForward = true
	_, slowErr := RunStep(g, sleepForeverProg, WithMaxRounds(3000))
	disableFastForward = false
	_, fastErr := RunStep(g, sleepForeverProg, WithMaxRounds(3000))
	if !errors.Is(fastErr, ErrMaxRounds) || slowErr.Error() != fastErr.Error() {
		t.Fatalf("wedge errors diverge: slow=%v fast=%v", slowErr, fastErr)
	}
	if _, err := RunStep(g, sleepForeverProg, WithMaxRounds(5_000_000)); !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("huge-budget wedge: %v", err)
	}
}

func TestFastForwardMatchesGoroutineWedge(t *testing.T) {
	// The goroutine form of a wedged protocol (spinning Tick instead of
	// sleeping) must report the identical error.
	g := ring(t, 4)
	_, gerr := Run(g, func(ctx *Ctx) error {
		for {
			ctx.Tick()
		}
	}, WithMaxRounds(120), WithEngine(EngineGoroutine))
	_, serr := RunStep(g, sleepForeverProg, WithMaxRounds(120))
	if gerr == nil || serr == nil || gerr.Error() != serr.Error() {
		t.Fatalf("wedge errors diverge: goroutine=%v step=%v", gerr, serr)
	}
	if !strings.Contains(serr.Error(), "maximum round count") {
		t.Fatalf("unexpected wedge error: %v", serr)
	}
}
