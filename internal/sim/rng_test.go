package sim

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestNodeSeedNoLinearCollision is the regression test for the historical
// seed*1_000_003 + id derivation: under it, (s, id+1_000_003) and (s+1, id)
// produced the same per-node seed and therefore identical RNG streams. The
// mixed derivation must give distinct seeds and distinct streams.
func TestNodeSeedNoLinearCollision(t *testing.T) {
	cases := []struct {
		s  int64
		id graph.NodeID
	}{
		{0, 0},
		{1, 1},
		{42, 7},
		{42, 999_999},
		{-3, 123},
		{1 << 40, 1_000_002},
	}
	for _, c := range cases {
		a := nodeSeed(c.s, c.id+1_000_003)
		b := nodeSeed(c.s+1, c.id)
		if a == b {
			t.Errorf("nodeSeed(%d,%d) == nodeSeed(%d,%d) == %d: linear collision survived",
				c.s, c.id+1_000_003, c.s+1, c.id, a)
		}
		ra, _ := newNodeRand(a, 0)
		rb, _ := newNodeRand(b, 0)
		same := true
		for i := 0; i < 8; i++ {
			if ra.Uint64() != rb.Uint64() {
				same = false
				break
			}
		}
		if same {
			t.Errorf("streams for (s=%d,id=%d) and (s=%d,id=%d) agree on first 8 draws",
				c.s, c.id+1_000_003, c.s+1, c.id)
		}
	}
}

// TestNodeSeedDistinctPairs spot-checks that distinct (seed, id) pairs give
// distinct node seeds across a modest grid — a smoke test for the mix, not a
// collision-resistance proof.
func TestNodeSeedDistinctPairs(t *testing.T) {
	seen := make(map[int64][2]int64)
	for s := int64(-2); s <= 2; s++ {
		for id := 0; id < 1000; id++ {
			k := nodeSeed(s, graph.NodeID(id))
			if prev, dup := seen[k]; dup {
				t.Fatalf("nodeSeed collision: (%d,%d) and (%d,%d) -> %d", prev[0], prev[1], s, id, k)
			}
			seen[k] = [2]int64{s, int64(id)}
		}
	}
}

// TestCountedSourceCountsAndReplays verifies the two properties checkpointing
// leans on: every generator call advances the draw counter, and a fresh
// generator fast-forwarded by that count continues the stream bit-identically.
func TestCountedSourceCountsAndReplays(t *testing.T) {
	const seed = 0x5eed
	r, cs := newNodeRand(seed, 0)
	// Mix method kinds: each consumes exactly one source draw per internal
	// Uint64/Int63 call; Float64 and Intn may retry, which the counter must
	// reflect too (that is the point of counting at the source).
	for i := 0; i < 100; i++ {
		switch i % 4 {
		case 0:
			r.Uint64()
		case 1:
			r.Int63()
		case 2:
			r.Float64()
		case 3:
			r.Intn(10)
		}
	}
	if cs.draws == 0 {
		t.Fatal("draw counter never advanced")
	}
	mark := cs.draws

	want := make([]uint64, 16)
	for i := range want {
		want[i] = r.Uint64()
	}

	r2, cs2 := newNodeRand(seed, mark)
	if cs2.draws != mark {
		t.Fatalf("resumed counter = %d, want %d", cs2.draws, mark)
	}
	for i := range want {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("resumed stream diverged at draw %d: got %d want %d", i, got, want[i])
		}
	}
	if cs2.draws != mark+16 {
		t.Fatalf("resumed counter after 16 draws = %d, want %d", cs2.draws, mark+16)
	}
}

// TestCountedSourceMatchesPlainSource pins the invariant Rand() relies on:
// wrapping the source in countedSource must not change the stream rand.Rand
// produces (rand.New uses the Source64 path in both cases).
func TestCountedSourceMatchesPlainSource(t *testing.T) {
	const seed = 12345
	plain := rand.New(rand.NewSource(seed))
	counted, _ := newNodeRand(seed, 0)
	for i := 0; i < 64; i++ {
		p, c := plain.Uint64(), counted.Uint64()
		if p != c {
			t.Fatalf("draw %d: plain %d != counted %d", i, p, c)
		}
	}
}
