package sim

import (
	"testing"

	"repro/internal/graph"
)

// TestNodeSeedNoLinearCollision is the regression test for the historical
// seed*1_000_003 + id derivation: under it, (s, id+1_000_003) and (s+1, id)
// produced the same per-node seed and therefore identical RNG streams. The
// mixed derivation must give distinct seeds and distinct streams.
func TestNodeSeedNoLinearCollision(t *testing.T) {
	cases := []struct {
		s  int64
		id graph.NodeID
	}{
		{0, 0},
		{1, 1},
		{42, 7},
		{42, 999_999},
		{-3, 123},
		{1 << 40, 1_000_002},
	}
	for _, c := range cases {
		a := nodeSeed(c.s, c.id+1_000_003)
		b := nodeSeed(c.s+1, c.id)
		if a == b {
			t.Errorf("nodeSeed(%d,%d) == nodeSeed(%d,%d) == %d: linear collision survived",
				c.s, c.id+1_000_003, c.s+1, c.id, a)
		}
		ra, _ := newNodeRand(a, 0)
		rb, _ := newNodeRand(b, 0)
		same := true
		for i := 0; i < 8; i++ {
			if ra.Uint64() != rb.Uint64() {
				same = false
				break
			}
		}
		if same {
			t.Errorf("streams for (s=%d,id=%d) and (s=%d,id=%d) agree on first 8 draws",
				c.s, c.id+1_000_003, c.s+1, c.id)
		}
	}
}

// TestNodeSeedDistinctPairs spot-checks that distinct (seed, id) pairs give
// distinct node seeds across a modest grid — a smoke test for the mix, not a
// collision-resistance proof.
func TestNodeSeedDistinctPairs(t *testing.T) {
	seen := make(map[int64][2]int64)
	for s := int64(-2); s <= 2; s++ {
		for id := 0; id < 1000; id++ {
			k := nodeSeed(s, graph.NodeID(id))
			if prev, dup := seen[k]; dup {
				t.Fatalf("nodeSeed collision: (%d,%d) and (%d,%d) -> %d", prev[0], prev[1], s, id, k)
			}
			seen[k] = [2]int64{s, int64(id)}
		}
	}
}

// TestCountedSourceCountsAndReplays verifies the two properties checkpointing
// leans on: every generator call advances the draw counter, and a fresh
// generator fast-forwarded by that count continues the stream bit-identically.
func TestCountedSourceCountsAndReplays(t *testing.T) {
	const seed = 0x5eed
	r, cs := newNodeRand(seed, 0)
	// Mix method kinds: each consumes exactly one source draw per internal
	// Uint64/Int63 call; Float64 and Intn may retry, which the counter must
	// reflect too (that is the point of counting at the source).
	for i := 0; i < 100; i++ {
		switch i % 4 {
		case 0:
			r.Uint64()
		case 1:
			r.Int63()
		case 2:
			r.Float64()
		case 3:
			r.Intn(10)
		}
	}
	if cs.draws == 0 {
		t.Fatal("draw counter never advanced")
	}
	mark := cs.draws

	want := make([]uint64, 16)
	for i := range want {
		want[i] = r.Uint64()
	}

	r2, cs2 := newNodeRand(seed, mark)
	if cs2.draws != mark {
		t.Fatalf("resumed counter = %d, want %d", cs2.draws, mark)
	}
	for i := range want {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("resumed stream diverged at draw %d: got %d want %d", i, got, want[i])
		}
	}
	if cs2.draws != mark+16 {
		t.Fatalf("resumed counter after 16 draws = %d, want %d", cs2.draws, mark+16)
	}
}

// TestCountedSourceIsSplitMix64 pins the stream itself: the source must be
// canonical SplitMix64 (gamma-stepped Weyl state through the 30/27/31
// finalizer), because the step engine re-derives the same stream from a
// bare (state word, draw count) pair without a countedSource in hand — any
// drift between the two constructions would silently fork the engines.
func TestCountedSourceIsSplitMix64(t *testing.T) {
	const seed = 12345
	cs := newCountedSource(seed)
	word := uint64(seed)
	for i := 0; i < 64; i++ {
		word += 0x9e3779b97f4a7c15
		z := word
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		want := z ^ (z >> 31)
		if got := cs.Uint64(); got != want {
			t.Fatalf("draw %d: got %#x, want canonical splitmix64 %#x", i, got, want)
		}
	}
	// O(1) positioning is the arithmetic the resume path depends on.
	if got, want := rngWordAt(seed, 64), word; got != want {
		t.Fatalf("rngWordAt(seed, 64) = %#x, want stepped state %#x", got, want)
	}
}

// TestCountedSourceInt63HalvesUint64 pins the Source64 coupling: Int63 is
// exactly one Uint64 draw shifted down, so either entry point advances the
// stream identically and the draw counter stays the position's sole truth.
func TestCountedSourceInt63HalvesUint64(t *testing.T) {
	const seed = 12345
	a := newCountedSource(seed)
	b := newCountedSource(seed)
	for i := 0; i < 64; i++ {
		if got, want := a.Int63(), int64(b.Uint64()>>1); got != want {
			t.Fatalf("draw %d: Int63 %d, want Uint64>>1 %d", i, got, want)
		}
	}
	if a.draws != b.draws {
		t.Fatalf("Int63 advanced %d draws, Uint64 %d", a.draws, b.draws)
	}
}
