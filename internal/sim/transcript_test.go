package sim

// transcript_test.go verifies the streamed binary transcript: byte-identity
// across engines and worker counts (faulted and fault-free), the reader's
// round-trip fidelity, gzip framing, and the reflective guard that pins the
// Metrics wire encoding to the struct.

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// transcriptProgram is a goroutine program exercising every frame feature:
// point-to-point sends (inbox digests), RNG draws, channel writes (success
// and collision slots), and per-node halt rounds.
func transcriptProgram(c *Ctx) error {
	for r := 0; r < 8+int(c.ID()); r++ {
		if c.Rand().Intn(3) == 0 {
			c.Send((r+1)%c.Degree(), int(c.ID())*100+r)
		}
		if c.Rand().Intn(4) == 0 {
			c.Broadcast(int(c.ID()))
		}
		in := c.Tick()
		sum := 0
		for _, m := range in.Msgs {
			sum += m.Payload.(int)
		}
		_ = sum
	}
	c.SetResult(int(c.ID()))
	return nil
}

// runTranscript runs the program with a transcript writer installed and
// returns the raw transcript bytes.
func runTranscript(t *testing.T, g *graph.Graph, opts ...Option) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := NewTranscriptWriter(&buf, false)
	if _, err := Run(g, transcriptProgram, append([]Option{WithTranscript(tw)}, opts...)...); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTranscriptCrossEngineByteIdentity(t *testing.T) {
	g := ring(t, 8)
	for _, tc := range []struct {
		name string
		plan string
	}{
		{"fault-free", ""},
		{"faulted", "crash:3@4;delay:0@2/d3;dup:1@3;jam:5"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := []Option{WithSeed(42)}
			if tc.plan != "" {
				p, err := fault.Parse(tc.plan)
				if err != nil {
					t.Fatal(err)
				}
				opts = append(opts, WithFaults(p))
			}
			ref := runTranscript(t, g, append(opts, WithEngine(EngineGoroutine))...)
			if len(ref) == 0 {
				t.Fatal("empty transcript")
			}
			for _, w := range []int{1, 4} {
				got := runTranscript(t, g, append(opts, WithEngine(EngineStep), WithWorkers(w))...)
				if !bytes.Equal(got, ref) {
					t.Errorf("step-w%d transcript differs from goroutine engine (%d vs %d bytes)", w, len(got), len(ref))
				}
			}
		})
	}
}

func TestTranscriptReaderRoundTrip(t *testing.T) {
	g := ring(t, 6)
	raw := runTranscript(t, g, WithSeed(9), WithEngine(EngineGoroutine))

	tr, err := NewTranscriptReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	h := tr.Header()
	if h.N != 6 || h.Seed != 9 || h.Plan != "" || h.Gzip {
		t.Errorf("header = %+v", h)
	}

	var rounds []*RoundFrame
	var final *FinalFrame
	for {
		rf, ff, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rf != nil {
			rounds = append(rounds, rf)
		}
		if ff != nil {
			final = ff
		}
	}
	if final == nil {
		t.Fatal("no final frame")
	}
	if len(rounds) == 0 {
		t.Fatal("no round frames")
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i].Round <= rounds[i-1].Round {
			t.Fatalf("rounds not ascending: %d after %d", rounds[i].Round, rounds[i-1].Round)
		}
	}
	last := rounds[len(rounds)-1]
	// Re-run without a transcript: the final frame must agree with the
	// run's native Result.
	res, err := Run(g, transcriptProgram, WithSeed(9), WithEngine(EngineGoroutine))
	if err != nil {
		t.Fatal(err)
	}
	if final.Met != res.Metrics {
		t.Errorf("final metrics = %+v, want %+v", final.Met, res.Metrics)
	}
	if final.Err != "" || final.N != 6 {
		t.Errorf("final frame = %+v", final)
	}
	if got, want := final.ResultsDigest, resultsDigest(res.Results); got != want {
		t.Errorf("results digest = %x, want %x", got, want)
	}
	if last.Met.Rounds != res.Metrics.Rounds-1 {
		// The halting round emits no frame (nothing is delivered for the
		// next round); the last frame is the round before it.
		t.Errorf("last frame at metrics round %d, run had %d", last.Met.Rounds, res.Metrics.Rounds)
	}
	// After the final frame the reader reports EOF forever.
	if _, _, err := tr.Next(); err != io.EOF {
		t.Errorf("post-final Next = %v, want EOF", err)
	}
}

func TestTranscriptGzip(t *testing.T) {
	g := ring(t, 6)
	plain := runTranscript(t, g, WithSeed(3), WithEngine(EngineGoroutine))

	var buf bytes.Buffer
	tw := NewTranscriptWriter(&buf, true)
	if _, err := Run(g, transcriptProgram, WithSeed(3), WithEngine(EngineGoroutine), WithTranscript(tw)); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	gz := buf.Bytes()
	if bytes.Equal(gz, plain) {
		t.Fatal("gzip transcript identical to plain")
	}

	want := decodeAll(t, plain)
	got := decodeAll(t, gz)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("gzip transcript decodes differently")
	}
	tr, err := NewTranscriptReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Header().Gzip {
		t.Error("gzip flag not set in header")
	}
}

// decodeAll decodes a transcript to its frame sequence.
func decodeAll(t *testing.T, raw []byte) []any {
	t.Helper()
	tr, err := NewTranscriptReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	h := tr.Header()
	h.Gzip = false // compression is transport, not content
	frames := []any{h}
	for {
		rf, ff, err := tr.Next()
		if err == io.EOF {
			return frames
		}
		if err != nil {
			t.Fatal(err)
		}
		if rf != nil {
			frames = append(frames, *rf)
		}
		if ff != nil {
			frames = append(frames, *ff)
		}
	}
}

func TestTranscriptCorruptionDetected(t *testing.T) {
	g := ring(t, 5)
	raw := runTranscript(t, g, WithSeed(5), WithEngine(EngineGoroutine))

	// Flip one byte beyond the header frame: some frame's crc must fail.
	bad := bytes.Clone(raw)
	bad[len(bad)/2] ^= 0x40
	tr, err := NewTranscriptReader(bytes.NewReader(bad))
	if err == nil {
		for {
			_, _, err = tr.Next()
			if err != nil {
				break
			}
		}
	}
	if err == nil || err == io.EOF {
		t.Errorf("corrupted transcript read cleanly")
	}

	if _, err := NewTranscriptReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
}

// TestTranscriptMetricsCoverEveryField pins the wire encoding to the struct:
// a Metrics field added without extending appendMetrics/decodeMetrics (and
// bumping transcriptMetricsFields) fails here instead of silently vanishing
// from transcripts.
func TestTranscriptMetricsCoverEveryField(t *testing.T) {
	if n := reflect.TypeOf(Metrics{}).NumField(); n != transcriptMetricsFields {
		t.Fatalf("Metrics has %d fields, transcript encodes %d — extend appendMetrics/decodeMetrics and bump transcriptMetricsFields", n, transcriptMetricsFields)
	}
	var m Metrics
	fillDistinct(&m, 7)
	b := appendMetrics(nil, &m)
	var got Metrics
	d := frameDecoder{b: b}
	decodeMetrics(&d, &got)
	if d.err != nil || len(d.b) != 0 {
		t.Fatalf("decode err=%v, %d bytes left", d.err, len(d.b))
	}
	if got != m {
		t.Errorf("metrics round-trip: got %+v, want %+v", got, m)
	}
}

// scanFrames walks an uncompressed transcript's raw bytes independently of
// TranscriptReader, returning the byte offset where each frame starts plus
// the decoded round of round frames (-1 for header/final). It is the
// test-side reimplementation the stitching tests cut transcripts with.
func scanFrames(t *testing.T, raw []byte) (offsets []int, roundsOf []int) {
	t.Helper()
	if len(raw) < 6 || string(raw[:4]) != transcriptMagic || raw[5]&tflagGzip != 0 {
		t.Fatalf("not a plain transcript")
	}
	off := 6
	for off < len(raw) {
		offsets = append(offsets, off)
		kind := raw[off]
		size, n := binary.Uvarint(raw[off+1:])
		if n <= 0 {
			t.Fatalf("bad frame length at offset %d", off)
		}
		body := raw[off+1+n : off+1+n+int(size)]
		if kind == frameRound {
			r, _ := binary.Uvarint(body)
			roundsOf = append(roundsOf, int(r))
		} else {
			roundsOf = append(roundsOf, -1)
		}
		off += 1 + n + int(size) + 4
	}
	if off != len(raw) {
		t.Fatalf("trailing garbage: %d bytes", len(raw)-off)
	}
	return offsets, roundsOf
}
