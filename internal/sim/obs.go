package sim

// obs.go is the engines' observability seam: a Recorder interface the
// engines invoke at their phase boundaries and round edges, implemented by
// internal/obs (phase tracing, per-round time series, metrics exposition).
//
// The contract has two halves, both enforced by tests:
//
//   - Zero cost when off. A nil Recorder — the default — is the off switch:
//     every hook site is guarded by a single nil check, no timestamps are
//     read, and nothing is allocated, so the steady-state zero-alloc
//     guarantee of alloc_test.go is unchanged. The engines never read the
//     wall clock themselves (detsource-enforced); all timing lives behind
//     the interface.
//
//   - Observation never alters transcripts. Recorders are write-only from
//     the engines' point of view: nothing a Recorder returns feeds back
//     into execution, so a run with any recorder installed is bit-identical
//     to the same run without one (difftest-enforced, see the root
//     obs_equiv_test.go).
//
// Threading contract for implementations: BeginPhase/EndPhase for a given
// shard are called by whichever goroutine runs that shard's slice of the
// phase (worker goroutines in gate mode, the coordinator on the inline
// path), but never by two goroutines at once for the same shard, and all
// such calls are ordered against RunStart/RoundEnd/RunEnd (coordinator-only)
// by the engine's phase barrier. Per-shard state therefore needs no locks;
// cross-shard aggregates must be atomic.

// Phase identifies one engine execution phase for observability. The step
// engine reports Step (compute), Deliver (slot resolution + message
// delivery), and Barrier (time a participant spent waiting on the phase
// gate); the goroutine engine maps its scheduler loop onto Step (waiting
// for every node's tick) and Deliver (slot resolution + delivery).
type Phase uint8

// The phases, in reporting order.
const (
	PhaseStep Phase = iota
	PhaseDeliver
	PhaseBarrier
	// NumPhases sizes per-phase arrays in recorders.
	NumPhases
)

// String returns the phase's exposition label.
func (p Phase) String() string {
	switch p {
	case PhaseStep:
		return "step"
	case PhaseDeliver:
		return "deliver"
	case PhaseBarrier:
		return "barrier"
	default:
		return "unknown"
	}
}

// Recorder receives engine observability events; internal/obs implements
// it. nil (the default) means observability is off and every hook site
// reduces to one branch.
//
// Implementations must never influence execution: the determinism contract
// (bit-identical transcripts for a fixed graph, program, seed, and plan)
// holds with any recorder installed.
type Recorder interface {
	// RunStart announces a run before round 0: node count, engine, the
	// resolved worker count, and the shard count (1 for the goroutine
	// engine). Multi-stage algorithms produce one RunStart per internal run.
	RunStart(n int, engine Engine, workers, shards int)
	// BeginPhase marks the start of a phase on a shard and returns an
	// opaque start token (a monotonic timestamp) handed back to EndPhase.
	BeginPhase(p Phase, shard int) int64
	// EndPhase completes the span opened by the matching BeginPhase.
	EndPhase(p Phase, shard, round int, start int64)
	// FastForward reports a quiescent-stretch skip: slots fromRound through
	// toRound (inclusive) were resolved arithmetically without per-round
	// execution. Their slot counts appear in the next RoundEnd's metrics.
	FastForward(fromRound, toRound int)
	// RoundEnd delivers the run's cumulative metrics after each executed
	// round, with the number of nodes awake for the next round and the
	// round's slot resolution. m is engine-owned and read-only; after a
	// fast-forward the metrics may cover several skipped rounds at once.
	// Called once per executed round, coordinator-side, including the final
	// round of the run.
	RoundEnd(round, awake int, slot SlotState, m *Metrics)
	// RunEnd closes the run opened by RunStart. m is the final metrics; on
	// an aborted run it holds whatever had accrued at the abort.
	RunEnd(m *Metrics)
}

// DefaultRecorder is the recorder a run uses when no WithRecorder option is
// given; nil (the default) means observability off. Commands set it from
// their -trace/-series/-metrics-addr flags so every sim run a protocol
// performs — including the inner runs of multi-stage algorithms — is
// observed, exactly like DefaultFaults.
var DefaultRecorder Recorder

// WithRecorder observes this run with the given recorder (overriding
// DefaultRecorder; nil keeps the default). By the determinism contract a
// recorder never changes a run's transcript, only reports on it.
func WithRecorder(r Recorder) Option {
	return func(c *config) { c.rec = r }
}

// recorder resolves the run's recorder: the WithRecorder option when given,
// DefaultRecorder otherwise.
func (c *config) recorder() Recorder {
	if c.rec != nil {
		return c.rec
	}
	return DefaultRecorder
}

// Sub subtracts other from m field by field — the delta form recorders use
// to turn two cumulative snapshots into one round's (or window's) counts.
// Covered, like Add, by the reflection drift test: a Metrics field added
// without extending Sub fails TestMetricsAddSubCoverEveryField.
func (m *Metrics) Sub(other *Metrics) {
	m.Rounds -= other.Rounds
	m.Messages -= other.Messages
	m.SlotsIdle -= other.SlotsIdle
	m.SlotsSuccess -= other.SlotsSuccess
	m.SlotsCollision -= other.SlotsCollision
	m.DroppedHalted -= other.DroppedHalted
	m.Crashed -= other.Crashed
	m.DroppedFault -= other.DroppedFault
	m.Delayed -= other.Delayed
	m.Duplicated -= other.Duplicated
	m.SlotsJammed -= other.SlotsJammed
	m.PartitionedDrop -= other.PartitionedDrop
	m.Restarted -= other.Restarted
	m.Skewed -= other.Skewed
}
