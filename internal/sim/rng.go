package sim

// rng.go holds the per-node RNG machinery shared by both engines: the seed
// derivation that turns (master seed, node id) into a private stream, and a
// draw-counting rand.Source64 wrapper that makes RNG positions
// checkpointable.
//
// # Derivation
//
// Historically both engines derived per-node seeds as seed*1_000_003 + id —
// a linear map that collides across runs as soon as n exceeds 1,000,003:
// the run with master seed s shares node RNG streams with the run seeded
// s+1, shifted by 1,000,003 node ids, exactly the n > 10⁶ regime the
// implicit topologies opened. nodeSeed now mixes the pair through the
// keyed splitmix64 finalizer (fault.Mix64, the same primitive behind the
// injector's coins and the implicit topologies' weights), so distinct
// (seed, id) pairs give independent streams at any network size.
//
// # Positions
//
// math/rand exposes no way to read or restore a generator's position, so
// Ctx.Rand and StepCtx.Rand wrap their source in a countedSource that
// counts draws. Every generator method advances the underlying rngSource
// by exactly one Uint64 per source call, so a checkpoint records the count
// and a resume re-derives the seed and discards that many draws —
// bit-identical continuation without serializing generator internals.

import (
	"math/rand"

	"repro/internal/fault"
	"repro/internal/graph"
)

// rngSalt keys the per-node seed derivation so node RNG streams are
// independent of the injector's coins and the topology weights, which mix
// the same words through the same finalizer.
const rngSalt = 0x6e0de5eed

// nodeSeed derives node id's private RNG seed from the master seed — the
// single derivation both engines share (the determinism contract requires
// them identical).
func nodeSeed(seed int64, id graph.NodeID) int64 {
	return int64(fault.Mix64(uint64(seed), uint64(id), rngSalt))
}

// restartSalt keys the incarnation derivation of nodeSeedAt, independent of
// every other use of the finalizer.
const restartSalt = 0x4e57a47

// nodeSeedAt derives the RNG seed of node id's k-th incarnation: a
// crash-restarted node draws from a fresh stream, never replaying or
// continuing the dead incarnation's randomness. Incarnation 0 is exactly
// nodeSeed — pre-restart behavior (and every committed golden) is
// untouched. Part of the determinism contract: both engines, every worker
// count, and every resume derive the same incarnation streams.
func nodeSeedAt(seed int64, id graph.NodeID, incarnation int) int64 {
	if incarnation == 0 {
		return nodeSeed(seed, id)
	}
	return int64(fault.Mix64(uint64(nodeSeed(seed, id)), uint64(incarnation), restartSalt))
}

// countedSource wraps the node's rand source, counting draws so the
// generator's position can be checkpointed and restored. Both Int63 and
// Uint64 advance math/rand's rngSource by exactly one internal step, so
// the count alone pins the position.
type countedSource struct {
	src   rand.Source64
	draws uint64
}

func newCountedSource(seed int64) *countedSource {
	//mmlint:nondet seeded constructor: rand.NewSource with a derived seed is the deterministic per-node stream
	return &countedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countedSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countedSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countedSource) Seed(seed int64) {
	s.draws = 0
	s.src.Seed(seed)
}

// newNodeRand builds a node's private generator at a given position:
// freshly derived for live runs (draws 0), fast-forwarded for resumes.
func newNodeRand(seed int64, draws uint64) (*rand.Rand, *countedSource) {
	cs := newCountedSource(seed)
	r := rand.New(cs)
	for i := uint64(0); i < draws; i++ {
		cs.src.Uint64()
	}
	cs.draws = draws
	return r, cs
}
