package sim

// rng.go holds the per-node RNG machinery shared by both engines: the seed
// derivation that turns (master seed, node id) into a private stream, and a
// draw-counting rand.Source64 that makes RNG positions checkpointable.
//
// # Derivation
//
// Historically both engines derived per-node seeds as seed*1_000_003 + id —
// a linear map that collides across runs as soon as n exceeds 1,000,003:
// the run with master seed s shares node RNG streams with the run seeded
// s+1, shifted by 1,000,003 node ids, exactly the n > 10⁶ regime the
// implicit topologies opened. nodeSeed now mixes the pair through the
// keyed splitmix64 finalizer (fault.Mix64, the same primitive behind the
// injector's coins and the implicit topologies' weights), so distinct
// (seed, id) pairs give independent streams at any network size.
//
// # Source
//
// countedSource is a SplitMix64 generator: the whole stream state is one
// 64-bit word that advances by a fixed odd gamma per draw, with a finalizer
// mix on output. Two properties pay for the stream change (which moved the
// RNG-drawing goldens once, like the nodeSeed derivation change before it):
//
//   - Memory: the per-node RNG is two words (state + draw count) instead of
//     math/rand's ~4.9 KB rngSource array — the difference between 10⁸
//     drawing nodes fitting in RAM or not.
//   - O(1) positioning: state after k draws is seed + k·gamma, so a resume
//     jumps to the checkpointed position arithmetically instead of
//     discarding k draws one by one.
//
// Every rand.Rand generator method advances the source by at least one call
// and each source call is one gamma step, so the draw count alone pins the
// position — bit-identical continuation without serializing internals.

import (
	"math/rand"

	"repro/internal/fault"
	"repro/internal/graph"
)

// rngSalt keys the per-node seed derivation so node RNG streams are
// independent of the injector's coins and the topology weights, which mix
// the same words through the same finalizer.
const rngSalt = 0x6e0de5eed

// nodeSeed derives node id's private RNG seed from the master seed — the
// single derivation both engines share (the determinism contract requires
// them identical).
func nodeSeed(seed int64, id graph.NodeID) int64 {
	return int64(fault.Mix64(uint64(seed), uint64(id), rngSalt))
}

// restartSalt keys the incarnation derivation of nodeSeedAt, independent of
// every other use of the finalizer.
const restartSalt = 0x4e57a47

// nodeSeedAt derives the RNG seed of node id's k-th incarnation: a
// crash-restarted node draws from a fresh stream, never replaying or
// continuing the dead incarnation's randomness. Incarnation 0 is exactly
// nodeSeed — pre-restart behavior (and every committed golden) is
// untouched. Part of the determinism contract: both engines, every worker
// count, and every resume derive the same incarnation streams.
func nodeSeedAt(seed int64, id graph.NodeID, incarnation int) int64 {
	if incarnation == 0 {
		return nodeSeed(seed, id)
	}
	return int64(fault.Mix64(uint64(nodeSeed(seed, id)), uint64(incarnation), restartSalt))
}

// splitmixGamma is Weyl increment of the SplitMix64 sequence (the golden
// ratio in 0.64 fixed point, forced odd), as in Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014).
const splitmixGamma = 0x9e3779b97f4a7c15

// splitmix64 finalizes one state word into one output word.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rngWordAt returns the SplitMix64 state word of a stream seeded with seed
// after draws outputs — the O(1) position arithmetic countedSource and the
// step engine's compact per-node RNG slots share.
func rngWordAt(seed int64, draws uint64) uint64 {
	return uint64(seed) + draws*splitmixGamma
}

// countedSource is the node's SplitMix64 stream: word advances by one gamma
// per draw, draws counts them for checkpointing. It implements
// rand.Source64 so rand.Rand's distribution methods (Intn, Float64, Perm,
// …) run unchanged on top.
type countedSource struct {
	word  uint64
	draws uint64
}

func newCountedSource(seed int64) *countedSource {
	return &countedSource{word: uint64(seed)}
}

func (s *countedSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *countedSource) Uint64() uint64 {
	s.word += splitmixGamma
	s.draws++
	return splitmix64(s.word)
}

func (s *countedSource) Seed(seed int64) {
	s.word = uint64(seed)
	s.draws = 0
}

// newNodeRand builds a node's private generator at a given position:
// freshly derived for live runs (draws 0), jumped arithmetically for
// resumes (state after k draws is seed + k·gamma).
func newNodeRand(seed int64, draws uint64) (*rand.Rand, *countedSource) {
	cs := &countedSource{word: rngWordAt(seed, draws), draws: draws}
	return rand.New(cs), cs
}
