package sim

// StepBarrier is the native-machine form of BarrierStep: the §7.1
// channel-as-synchronizer barrier expressed round by round instead of as a
// blocking loop. A machine that runs a barrier-synchronized step feeds each
// round's Input through Step; the barrier transmits the busy tone while the
// node is active or has a message in flight and reports true on the round
// that carries the global pulse (the previous slot was idle), which by the
// synchronous-delivery argument of barrier.go means the step has terminated
// at every node. As with BarrierStep, the pulse round's input carries no
// messages and must be handed to whatever the machine does next.
//
// A node that is passive in a round — handle reported inactive and staged
// neither sends nor a channel write — is parked with SleepUntilPulse: within
// a barrier step such a node can only be reactivated by a message or by the
// step's global termination, so skipping the busy slots in between changes
// nothing observable and makes whole phases cost O(work) instead of
// O(n · rounds). Handlers must honor that contract: all state changes of a
// passive node must be driven by incoming messages, never by counting
// rounds.
type StepBarrier struct {
	c     *StepCtx
	armed bool
}

// NewStepBarrier returns a barrier for the node. The zero value is not
// usable; a fresh barrier (or one that has just fired) starts a new step.
func NewStepBarrier(c *StepCtx) *StepBarrier { return &StepBarrier{c: c} }

// Step advances the barrier-synchronized step by one round. handle performs
// the node's sends for the round and reports whether the node is still
// active; nodes that sent are treated as active regardless, which
// guarantees no message is in flight when the barrier fires. It returns
// true — without calling handle — on the round the pulse arrives, leaving
// the barrier reset for the next step. On a false return the machine must
// return from its own Step immediately (the node may have been parked).
//
//mmlint:noalloc
func (b *StepBarrier) Step(in Input, handle func(Input) bool) (done bool) {
	if b.armed && in.IsPulse() {
		b.armed = false
		return true
	}
	active := handle(in)
	switch {
	case active || b.c.SentThisRound():
		b.c.Busy()
	case !b.c.shard().chPending:
		b.c.SleepUntilPulse()
	}
	b.armed = true
	return false
}
