package sim

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// TestBarrierConvergecast runs a convergecast on a path rooted at node 0
// under the busy-tone barrier: every node learns the step ended in the same
// round, and no message is in flight when the pulse fires.
func TestBarrierConvergecast(t *testing.T) {
	const n = 9
	g, err := graph.Path(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, func(ctx *Ctx) error {
		// Path convergecast: node n-1 starts; each node forwards a counter
		// toward node 0.
		sent := false
		var in Input
		in = BarrierStep(ctx, in, func(in Input) bool {
			if ctx.ID() == n-1 && !sent {
				sent = true
				ctx.SendTo(n-2, 1)
				return true
			}
			for _, m := range in.Msgs {
				if ctx.ID() == 0 {
					ctx.SetResult(m.Payload.(int) + 1)
					return false
				}
				ctx.SendTo(ctx.ID()-1, m.Payload.(int)+1)
			}
			return false
		})
		if len(in.Msgs) != 0 {
			return fmt.Errorf("node %d: message in flight across barrier", ctx.ID())
		}
		// All nodes must exit in the same round; encode it in the result.
		if ctx.ID() != 0 {
			ctx.SetResult(in.Round)
		} else {
			ctx.SetResult([2]int{res0(ctx), in.Round})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Results[0].([2]int)
	if root[0] != n {
		t.Errorf("counter at root = %d, want %d", root[0], n)
	}
	for v := 1; v < n; v++ {
		if res.Results[v].(int) != root[1] {
			t.Errorf("node %d exited at round %v, root at %d", v, res.Results[v], root[1])
		}
	}
}

// res0 extracts the counter the root recorded mid-barrier.
func res0(ctx *Ctx) int {
	if v, ok := ctx.result.(int); ok {
		return v
	}
	return -1
}

// TestBarrierAllPassive: a step where nobody works ends after one idle slot.
func TestBarrierAllPassive(t *testing.T) {
	g, err := graph.Ring(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, func(ctx *Ctx) error {
		in := BarrierWait(ctx, Input{})
		if in.Round != 1 {
			return fmt.Errorf("pulse at round %d, want 1", in.Round)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", res.Metrics.Rounds)
	}
}

// TestBarrierSequence: three consecutive barrier steps stay aligned across
// all nodes even when different nodes do different amounts of work.
func TestBarrierSequence(t *testing.T) {
	g, err := graph.Ring(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, func(ctx *Ctx) error {
		var rounds []int
		in := Input{}
		for step := 0; step < 3; step++ {
			work := int(ctx.ID()) % 3 // node-dependent busy duration
			in = BarrierStep(ctx, in, func(in Input) bool {
				if work > 0 {
					work--
					return true
				}
				return false
			})
			rounds = append(rounds, in.Round)
		}
		ctx.SetResult(fmt.Sprint(rounds))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 6; v++ {
		if res.Results[v] != res.Results[0] {
			t.Errorf("node %d barrier schedule %v != node 0's %v", v, res.Results[v], res.Results[0])
		}
	}
}

// TestBarrierForcesBusyOnSend: a handler that sends but reports inactive
// must still hold the barrier (no premature pulse).
func TestBarrierForcesBusyOnSend(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(g, func(ctx *Ctx) error {
		gotPayload := false
		first := true
		in := BarrierStep(ctx, Input{}, func(in Input) bool {
			for _, m := range in.Msgs {
				_ = m
				gotPayload = true
			}
			if ctx.ID() == 0 && first {
				first = false
				ctx.Send(0, "probe")
				return false // lies about being active; engine must compensate
			}
			return false
		})
		if ctx.ID() == 1 && !gotPayload {
			return fmt.Errorf("pulse fired before delivery: in=%+v", in)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
