package sim

// Slab is a bump allocator for per-node machine structs: a StepProgram
// that allocates its machines through a Slab pays one n-sized allocation
// for the whole network instead of one heap object (plus allocator
// metadata) per node — at 10⁸ nodes the difference is the run fitting in
// memory. The zero value is ready to use.
//
// The backing array is sized by the first Alloc and never grows: machines
// are referenced through interface pointers into it, which a reallocation
// would orphan. Allocations past the capacity — crash-restart revivals
// re-running the init hook — fall back to individual heap objects. Alloc
// returns zeroed memory; it is not safe for concurrent use, which matches
// the init hook's sequential, coordinator-side contract.
type Slab[T any] struct {
	buf []T
}

// Alloc returns a pointer to a zeroed T, carving it from the slab while
// capacity lasts. n sizes the slab on first use (pass the network size).
func (s *Slab[T]) Alloc(n int) *T {
	if s.buf == nil {
		s.buf = make([]T, 0, max(n, 1))
	}
	if len(s.buf) < cap(s.buf) {
		s.buf = s.buf[:len(s.buf)+1]
		return &s.buf[len(s.buf)-1]
	}
	return new(T)
}
