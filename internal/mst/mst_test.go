package mst

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func kruskal(t *testing.T, g *graph.Graph) *graph.MST {
	t.Helper()
	m, err := graph.Kruskal(g)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultimediaMSTMatchesKruskal(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*graph.Graph, error)
	}{
		{"path8", func() (*graph.Graph, error) { return graph.Path(8, 3) }},
		{"ring24", func() (*graph.Graph, error) { return graph.Ring(24, 5) }},
		{"grid6x5", func() (*graph.Graph, error) { return graph.Grid(6, 5, 7) }},
		{"random50", func() (*graph.Graph, error) { return graph.RandomConnected(50, 120, 9) }},
		{"random90sparse", func() (*graph.Graph, error) { return graph.RandomConnected(90, 15, 11) }},
		{"complete14", func() (*graph.Graph, error) { return graph.Complete(14, 13) }},
		{"star30", func() (*graph.Graph, error) { return graph.Star(30, 15) }},
		{"torus5x5", func() (*graph.Graph, error) { return graph.Torus(5, 5, 17) }},
		{"binarytree31", func() (*graph.Graph, error) { return graph.BinaryTree(31, 19) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Multimedia(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := kruskal(t, g)
			if !res.MST.Equal(want) {
				t.Errorf("MST differs: got %v (w=%d), want %v (w=%d)",
					res.MST.EdgeIDs, res.MST.Total, want.EdgeIDs, want.Total)
			}
			if res.InitialFragments < 1 {
				t.Errorf("initial fragments = %d", res.InitialFragments)
			}
		})
	}
}

func TestMultimediaMSTManySeeds(t *testing.T) {
	// Same graph, several weight assignments: the MST must match Kruskal's
	// on each (distinct weights make it unique).
	for seed := int64(0); seed < 6; seed++ {
		g, err := graph.RandomConnected(40, 100, seed+100)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Multimedia(g, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if want := kruskal(t, g); !res.MST.Equal(want) {
			t.Errorf("seed %d: MST mismatch", seed)
		}
	}
}

func TestMultimediaFromRandomizedForest(t *testing.T) {
	// Ablation: the merge stages work from any spanning forest partition,
	// but only MST-subtree forests guarantee an exact MST. The randomized
	// partition's trees are arbitrary BFS trees, so the merge produces a
	// spanning tree that contains every Kruskal edge between current
	// fragments but may keep non-MST tree edges. Here we verify it still
	// produces a valid spanning structure of n-1 edges.
	g, err := graph.RandomConnected(60, 90, 33)
	if err != nil {
		t.Fatal(err)
	}
	f, pm, _, err := partition.RandomizedLasVegas(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultimediaFromForest(g, 4, f, pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MST.EdgeIDs) != g.N()-1 {
		t.Fatalf("assembled %d edges, want %d", len(res.MST.EdgeIDs), g.N()-1)
	}
	uf := graph.NewUnionFind(g.N())
	for _, id := range res.MST.EdgeIDs {
		e := g.Edge(id)
		if !uf.Union(int(e.U), int(e.V)) {
			t.Fatalf("edge %d closes a cycle", id)
		}
	}
	if uf.Sets() != 1 {
		t.Error("result is not spanning")
	}
	if res.MST.Total < kruskal(t, g).Total {
		t.Error("spanning tree lighter than the MST (impossible)")
	}
}

func TestBoruvkaBaselineResult(t *testing.T) {
	g, err := graph.RandomConnected(50, 70, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Boruvka(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := kruskal(t, g); !res.MST.Equal(want) {
		t.Error("Boruvka baseline MST mismatch")
	}
	if res.Merge.Rounds != 0 {
		t.Error("baseline should have no merge-stage costs")
	}
}

func TestMSTPhaseCount(t *testing.T) {
	// Phases are bounded by log2 of the initial fragment count.
	g, err := graph.RandomConnected(100, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Multimedia(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	bound := 1
	for 1<<bound < res.InitialFragments {
		bound++
	}
	if res.Phases > bound+1 {
		t.Errorf("%d phases for %d fragments (bound %d)", res.Phases, res.InitialFragments, bound)
	}
}

func TestMSTDeterministic(t *testing.T) {
	g, err := graph.RandomConnected(45, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Multimedia(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Multimedia(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.MST.Equal(b.MST) {
		t.Error("MST varies with seed (deterministic algorithm)")
	}
	if a.Total.Messages != b.Total.Messages {
		t.Errorf("message counts differ: %d vs %d", a.Total.Messages, b.Total.Messages)
	}
}

func TestMSTTiny(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Multimedia(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MST.EdgeIDs) != 1 || res.MST.EdgeIDs[0] != 0 {
		t.Errorf("MST = %v", res.MST.EdgeIDs)
	}
}
