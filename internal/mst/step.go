package mst

// step.go is the native step-machine form of stages 2–3 of the §6 MST
// algorithm: a state-machine transcription of mergeProgram, slot-for-slot
// and message-for-message identical to the goroutine form, so either engine
// produces a bit-identical transcript. The native form is what makes the
// merge run at million-node scale: during the per-phase convergecast
// barriers, passive nodes are parked with SleepUntilPulse, so a phase costs
// O(n) machine steps instead of O(n · radius) — and the per-step work is
// kept allocation-free (link-indexed fragment slices instead of maps, the
// heard list grouped by an in-place stable sort instead of a per-phase map)
// because every node runs it every slot round.
//
// finish() dispatches here whenever sim.DefaultEngine is the step engine,
// which is how `mmnet -algo mst -engine step` retires the goroutine merge.

import (
	"cmp"
	"slices"

	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/resolve"
	"repro/internal/sim"
)

// merge machine states.
const (
	msCap   = iota // stage 2: Capetanakis core scheduling
	msExch         // stage 3 part 1: awaiting the fragment exchange
	msConv         // stage 3 step 1: convergecast barrier
	msSlots        // stage 3 step 2: core broadcast slots
)

// mergeMachine is one node's state in the native merge. The forest and the
// children lists are shared read-only across all machines of the run.
type mergeMachine struct {
	c         *sim.StepCtx
	f         *forest.Forest
	kids      []graph.NodeID
	phasesOut *int

	state int
	cap   *resolve.CapetanakisStep
	b     *sim.StepBarrier

	isCore   bool
	initFrag graph.NodeID
	mstEdges []int // incident MST edges, deduplicated, sorted at finish

	k         int
	slotOf    int
	fragIdx   int                  // own initial fragment's schedule index
	fragIndex map[graph.NodeID]int // fragment root -> schedule index (cold)
	linkIdx   []int32              // per-link neighbor fragment index, -1 unknown
	linkFrag  []graph.NodeID       // per-link neighbor initial fragment root
	uf        *graph.UnionFind

	// Per-phase state.
	best    mMin
	myCur   int // current fragment index, cached at phase open
	reports int
	sentUp  bool
	heard   []mSlot
	slotIdx int
	phases  int

	result any
}

// mergeStepProgram builds the native machines for stages 2 and 3 of §6.
func mergeStepProgram(f *forest.Forest, phasesOut *int) sim.StepProgram {
	children := f.Children()
	var slab sim.Slab[mergeMachine]
	return func(c *sim.StepCtx) sim.Machine {
		id := c.ID()
		m := slab.Alloc(c.N())
		*m = mergeMachine{
			c:         c,
			f:         f,
			kids:      children[id],
			phasesOut: phasesOut,
			b:         sim.NewStepBarrier(c),
			isCore:    f.Parent[id] == -1,
			initFrag:  f.Root(id),
		}
		if f.ParentEdge[id] != -1 {
			m.mstEdges = append(m.mstEdges, f.ParentEdge[id])
		}
		m.cap = resolve.NewCapetanakisStep(c, c.N(), m.isCore, int(id), nil, 0)
		return m
	}
}

func (m *mergeMachine) Result() any { return m.result }

func (m *mergeMachine) Step(in sim.Input) bool {
	switch m.state {
	case msCap:
		if in.Round == 0 {
			m.cap.Begin()
			return false
		}
		if !m.cap.Poll(in) {
			return false
		}
		m.finishCap()
		// Stage 3 part 1: learn the initial fragment across every link,
		// in the round the schedule completed.
		for l := range m.c.Adj() {
			m.c.Send(l, mFragExchange{Frag: m.initFrag})
		}
		m.state = msExch
		return false
	case msExch:
		// Record each neighbor's initial fragment by local link, resolved
		// to its schedule index once. Links whose exchange never arrived
		// (lost to faults) stay -1 and are skipped forever, exactly as a
		// missing map entry was.
		m.linkIdx = make([]int32, m.c.Degree())
		m.linkFrag = make([]graph.NodeID, m.c.Degree())
		for i := range m.linkIdx {
			m.linkIdx[i] = -1
		}
		for _, msg := range in.Msgs {
			fr := msg.Payload.(mFragExchange).Frag
			l := m.c.LinkOf(msg.EdgeID)
			m.linkIdx[l] = int32(m.fragIndex[fr])
			m.linkFrag[l] = fr
		}
		if m.uf.Sets() <= 1 {
			return m.finish()
		}
		m.enterConv()
		return m.stepConv(in)
	case msConv:
		return m.stepConv(in)
	case msSlots:
		return m.stepSlots(in)
	}
	return false
}

// finishCap replicates the per-node bookkeeping after stage 2: the ordered
// core list indexes the replicated union-find.
func (m *mergeMachine) finishCap() {
	sched := m.cap.Sched
	m.k = len(sched)
	m.slotOf = -1
	m.fragIndex = make(map[graph.NodeID]int, m.k)
	for i, s := range sched {
		m.fragIndex[graph.NodeID(s.ID)] = i
		if graph.NodeID(s.ID) == m.c.ID() {
			m.slotOf = i
		}
	}
	m.fragIdx = m.fragIndex[m.initFrag]
	m.uf = graph.NewUnionFind(m.k)
	// Every phase fills heard with up to one mSlot per schedule slot; one
	// exact allocation here beats a million nodes growing it in round one.
	m.heard = make([]mSlot, 0, m.k)
}

// enterConv opens a merge phase: pick the locally best outgoing candidate
// and reset the convergecast counters.
//
//mmlint:noalloc
func (m *mergeMachine) enterConv() {
	m.myCur = m.uf.Find(m.fragIdx)
	m.best = mMin{Valid: false, W: graph.Weight(int64(^uint64(0) >> 1))}
	for l, h := range m.c.Adj() {
		idx := m.linkIdx[l]
		if idx < 0 || m.uf.Find(int(idx)) == m.myCur {
			continue
		}
		if !m.best.Valid || h.Weight < m.best.W {
			m.best = mMin{Valid: true, W: h.Weight, Edge: int(h.EdgeID), Target: m.linkFrag[l]}
		}
	}
	m.reports = 0
	m.sentUp = false
	m.state = msConv
}

// convHandle is the barrier handler of stage 3 step 1, identical to the
// goroutine form's closure.
func (m *mergeMachine) convHandle(step sim.Input) bool {
	for _, msg := range step.Msgs {
		p, ok := msg.Payload.(mMin)
		if !ok {
			continue // e.g. the part-1 exchange input replayed on entry
		}
		m.reports++
		if p.Valid && (!m.best.Valid || p.W < m.best.W) {
			m.best = p
		}
	}
	if !m.sentUp && m.reports == len(m.kids) {
		m.sentUp = true
		if !m.isCore {
			m.c.SendTo(m.f.Parent[m.c.ID()], m.best)
		}
	}
	return false
}

func (m *mergeMachine) stepConv(in sim.Input) bool {
	if !m.b.Step(in, m.convHandle) {
		return false
	}
	// The pulse: the fragment minima are at the cores. Open the slot loop;
	// slot 0's broadcast is staged in the pulse round.
	m.heard = m.heard[:0]
	m.slotIdx = 0
	if m.slotOf == 0 {
		m.broadcastOwn()
	}
	m.state = msSlots
	return false
}

// broadcastOwn stages this core's mSlot for its assigned slot. No merges
// happen between the phase open and the slot rounds, so the cached current
// fragment (and the union-find) still match the values at enterConv.
func (m *mergeMachine) broadcastOwn() {
	s := mSlot{Valid: m.best.Valid, CurFrag: graph.NodeID(m.myCur)}
	if m.best.Valid {
		s.W, s.Edge, s.TargetCF = m.best.W, m.best.Edge, graph.NodeID(m.uf.Find(m.fragIndex[m.best.Target]))
	}
	m.c.Broadcast(s)
}

//mmlint:noalloc
func (m *mergeMachine) stepSlots(in sim.Input) bool {
	if in.Slot.State == sim.SlotSuccess {
		if p, ok := in.Slot.Payload.(mSlot); ok && p.Valid {
			m.heard = append(m.heard, p)
		}
	}
	m.slotIdx++
	if m.slotIdx < m.k {
		if m.slotOf == m.slotIdx {
			m.broadcastOwn()
		}
		return false
	}

	// Local: the minimum per current fragment is an MST edge; merge, in the
	// same canonical order as every other node. The heard list is grouped
	// in place: the stable sort keeps arrival order within each fragment,
	// so the strict-less scan picks the same winner as the goroutine form's
	// first-wins map, and the groups come out in the ascending fragment
	// order the merges must replay in.
	slices.SortStableFunc(m.heard, func(a, b mSlot) int { return cmp.Compare(a.CurFrag, b.CurFrag) })
	id := m.c.ID()
	merges := 0
	for i := 0; i < len(m.heard); {
		best := m.heard[i]
		j := i + 1
		for ; j < len(m.heard) && m.heard[j].CurFrag == best.CurFrag; j++ {
			if m.heard[j].W < best.W {
				best = m.heard[j]
			}
		}
		m.uf.Union(int(best.CurFrag), int(best.TargetCF))
		e := m.c.Topo().Edge(best.Edge)
		if e.U == id || e.V == id {
			m.addMSTEdge(best.Edge)
		}
		merges++
		i = j
	}
	m.phases++
	if merges == 0 && m.uf.Sets() > 1 {
		m.c.Failf("no outgoing links heard with %d fragments left", m.uf.Sets())
	}
	if m.uf.Sets() > 1 {
		m.enterConv()
		return m.stepConv(in)
	}
	return m.finish()
}

// addMSTEdge records an incident MST edge. Duplicates are allowed here
// (both endpoints of a merge edge may pick it in the same phase, and the
// same edge can recur across phases) and removed once in finish — a
// per-add Contains scan would be quadratic at high-degree hubs.
//
//mmlint:noalloc
func (m *mergeMachine) addMSTEdge(e int) {
	m.mstEdges = append(m.mstEdges, e)
}

// finish records the node's incident MST edges and halts.
func (m *mergeMachine) finish() bool {
	if m.phasesOut != nil && m.c.ID() == 0 {
		*m.phasesOut = m.phases
	}
	slices.Sort(m.mstEdges)
	m.mstEdges = slices.Compact(m.mstEdges)
	if m.mstEdges == nil {
		m.mstEdges = []int{}
	}
	m.result = m.mstEdges
	return true
}
