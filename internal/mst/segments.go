package mst

// segments.go builds the partition shape stage 3 of §6 requires — a rooted
// spanning forest whose every tree is an MST subtree — locally for ring
// topologies, so the scale experiments and benchmarks can drive the native
// merge at sizes where running the distributed §3 construction first would
// dominate the measurement (the construction itself is exercised at smaller
// scale by the partition experiments).

import (
	"fmt"

	"repro/internal/forest"
	"repro/internal/graph"
)

// RingSegmentForest chops a ring into k contiguous chains avoiding the
// heaviest edge. The MST of a ring is the ring minus its heaviest edge, so
// every chain is a subtree of the (unique) MST.
func RingSegmentForest(g graph.Topology, k int) (*forest.Forest, error) {
	n := g.N()
	if k > n {
		k = n
	}
	heaviest := 0
	for id := 1; id < g.M(); id++ {
		if g.Edge(id).Weight > g.Edge(heaviest).Weight {
			heaviest = id
		}
	}
	// Walk the ring starting just past the heaviest edge.
	start := g.Edge(heaviest).V
	prev := g.Edge(heaviest).U
	order := make([]graph.NodeID, 0, n)
	edgeTo := make([]int, 0, n) // edgeTo[i-1] connects order[i] to order[i-1]
	cur := start
	for len(order) < n {
		order = append(order, cur)
		next := cur
		nextEdge := -1
		for _, h := range g.Adj(cur) {
			if h.To != prev && int(h.EdgeID) != heaviest {
				next, nextEdge = h.To, int(h.EdgeID)
				break
			}
		}
		if len(order) < n && nextEdge == -1 {
			return nil, fmt.Errorf("mst: node %d is not on a ring", cur)
		}
		prev, cur = cur, next
		if len(order) < n {
			edgeTo = append(edgeTo, nextEdge)
		}
	}
	parent := make([]graph.NodeID, n)
	parentEdge := make([]int, n)
	seg := (n + k - 1) / k
	for i, v := range order {
		if i%seg == 0 {
			parent[v], parentEdge[v] = -1, -1
		} else {
			parent[v], parentEdge[v] = order[i-1], edgeTo[i-1]
		}
	}
	return forest.New(g, parent, parentEdge)
}
