// Package mst implements §6: a deterministic minimum-spanning-tree
// algorithm for multimedia networks, a distributed realization of Kruskal's
// algorithm. Three stages:
//
//  1. the deterministic partition (§3) builds O(√n) initial fragments, each
//     a rooted subtree of the MST;
//  2. the fragment cores are scheduled on the channel with Capetanakis tree
//     splitting, giving every node the full ordered core list;
//  3. O(log n) merge phases: each initial fragment convergecasts its
//     minimum-weight link leaving its *current* fragment, the cores
//     broadcast these minima in their assigned slots, and every node
//     locally replays the same union-find merge — so fragment bookkeeping
//     needs no further communication, exactly as the paper observes.
//
// The algorithm runs in O(√n·log n) time and O(m + n·log n·log*n) messages.
package mst

import (
	"fmt"
	"sort"

	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/resolve"
	"repro/internal/sim"
)

// Result is the outcome of a distributed MST computation.
type Result struct {
	MST              *graph.MST
	InitialFragments int
	Phases           int
	Partition        sim.Metrics // stage-1 costs
	Merge            sim.Metrics // stage-2 + stage-3 costs
	Total            sim.Metrics
}

// message payloads.
type (
	mFragExchange struct{ Frag graph.NodeID } // part 1: init fragment across each link
	mMin          struct {                    // convergecast candidate
		Valid  bool
		W      graph.Weight
		Edge   int
		Target graph.NodeID // target's *initial* fragment
	}
	mSlot struct { // core's channel broadcast
		Valid    bool
		CurFrag  graph.NodeID
		W        graph.Weight
		Edge     int
		TargetCF graph.NodeID
	}
)

// Multimedia computes the MST of g with the §6 algorithm.
func Multimedia(g graph.Topology, seed int64) (*Result, error) {
	f, pm, _, err := partition.Deterministic(g, seed)
	if err != nil {
		return nil, fmt.Errorf("mst: partition: %w", err)
	}
	return finish(g, seed, f, pm)
}

// MultimediaFromForest runs stages 2–3 on a caller-supplied partition (used
// by the ablation experiments to swap in the randomized partition; note the
// §3 subtree-of-MST property is then only guaranteed if the forest's trees
// are MST subtrees).
func MultimediaFromForest(g graph.Topology, seed int64, f *forest.Forest, pm *sim.Metrics) (*Result, error) {
	return finish(g, seed, f, pm)
}

func finish(g graph.Topology, seed int64, f *forest.Forest, pm *sim.Metrics) (*Result, error) {
	phases := 0
	var res *sim.Result
	var err error
	if sim.DefaultEngine == sim.EngineStep {
		// The native machine form of the merge (step.go): bit-identical
		// transcript, but passive nodes sleep through the barrier phases.
		res, err = sim.RunStep(g, mergeStepProgram(f, &phases), sim.WithSeed(seed+1))
	} else {
		res, err = sim.Run(g, mergeProgram(f, &phases), sim.WithSeed(seed+1))
	}
	if err != nil {
		return nil, fmt.Errorf("mst: merge: %w", err)
	}
	mst, err := assemble(g, res.Results)
	if err != nil {
		return nil, err
	}
	out := &Result{
		MST:              mst,
		InitialFragments: f.Trees(),
		Phases:           phases,
		Partition:        *pm,
		Merge:            res.Metrics,
	}
	out.Total = *pm
	out.Total.Add(&res.Metrics)
	return out, nil
}

// assemble merges the per-node incident MST edge lists into one edge set.
func assemble(g graph.Topology, results []any) (*graph.MST, error) {
	seen := make(map[int]bool)
	for v, r := range results {
		ids, ok := r.([]int)
		if !ok {
			return nil, fmt.Errorf("mst: node %d recorded %T, want []int", v, r)
		}
		for _, id := range ids {
			seen[id] = true
		}
	}
	mst := &graph.MST{}
	for id := range seen {
		mst.EdgeIDs = append(mst.EdgeIDs, id)
	}
	sort.Ints(mst.EdgeIDs)
	for _, id := range mst.EdgeIDs {
		mst.Total += g.Edge(id).Weight
	}
	if len(mst.EdgeIDs) != g.N()-1 {
		return nil, fmt.Errorf("mst: assembled %d edges, want %d", len(mst.EdgeIDs), g.N()-1)
	}
	return mst, nil
}

// mergeProgram runs stages 2 and 3 of §6 on every node.
func mergeProgram(f *forest.Forest, phasesOut *int) sim.Program {
	children := f.Children()
	return func(c *sim.Ctx) error {
		id := c.ID()
		n := c.N()
		isCore := f.Parent[id] == -1
		initFrag := f.Root(id)
		kids := children[id]

		// Incident MST edges discovered so far: the initial fragment's tree
		// edge to the parent is an MST edge (§3 property 1).
		mstEdges := make(map[int]bool)
		if f.ParentEdge[id] != -1 {
			mstEdges[f.ParentEdge[id]] = true
		}

		// Stage 2: schedule the cores; everyone learns the ordered core list.
		sched, in := resolve.Capetanakis(c, sim.Input{}, n, isCore, int(id), nil)
		k := len(sched)
		slotOf := -1
		fragIndex := make(map[graph.NodeID]int, k)
		for i, s := range sched {
			fragIndex[graph.NodeID(s.ID)] = i
			if graph.NodeID(s.ID) == id {
				slotOf = i
			}
		}

		// Stage 3 part 1: learn the initial fragment across every link.
		for l := range c.Adj() {
			c.Send(l, mFragExchange{Frag: initFrag})
		}
		in = c.Tick()
		linkFrag := make(map[int]graph.NodeID, c.Degree()) // edge id -> init frag
		for _, m := range in.Msgs {
			linkFrag[m.EdgeID] = m.Payload.(mFragExchange).Frag
		}

		// Replicated union-find over initial fragments (by schedule index).
		uf := graph.NewUnionFind(k)
		curOf := func(fr graph.NodeID) int { return uf.Find(fragIndex[fr]) }

		// Stage 3 part 2: merge phases.
		phases := 0
		for uf.Sets() > 1 {
			phases++
			// Step 1: convergecast the fragment's minimum link leaving the
			// current fragment, under the channel barrier.
			myCur := curOf(initFrag)
			best := mMin{Valid: false, W: graph.Weight(int64(^uint64(0) >> 1))}
			for _, h := range c.Adj() {
				other, ok := linkFrag[int(h.EdgeID)]
				if !ok || curOf(other) == myCur {
					continue
				}
				if !best.Valid || h.Weight < best.W {
					best = mMin{Valid: true, W: h.Weight, Edge: int(h.EdgeID), Target: other}
				}
			}
			reports := 0
			sentUp := false
			in = sim.BarrierStep(c, in, func(step sim.Input) bool {
				for _, m := range step.Msgs {
					p, ok := m.Payload.(mMin)
					if !ok {
						continue // e.g. the part-1 exchange input replayed on entry
					}
					reports++
					if p.Valid && (!best.Valid || p.W < best.W) {
						best = p
					}
				}
				if !sentUp && reports == len(kids) {
					sentUp = true
					if !isCore {
						c.SendTo(f.Parent[id], best)
					}
				}
				return false
			})

			// Step 2: cores broadcast in their assigned slots; everyone
			// collects all k minima.
			heard := make([]mSlot, 0, k)
			for slot := 0; slot < k; slot++ {
				if slot == slotOf {
					s := mSlot{Valid: best.Valid, CurFrag: graph.NodeID(myCur)}
					if best.Valid {
						s.W, s.Edge, s.TargetCF = best.W, best.Edge, graph.NodeID(curOf(best.Target))
					}
					c.Broadcast(s)
				}
				in = c.Tick()
				if in.Slot.State == sim.SlotSuccess {
					if p, ok := in.Slot.Payload.(mSlot); ok && p.Valid {
						heard = append(heard, p)
					}
				}
			}

			// Local: the minimum per current fragment is an MST edge; merge.
			type pick struct {
				w      graph.Weight
				edge   int
				target int
			}
			mins := make(map[int]pick)
			for _, h := range heard {
				cf := int(h.CurFrag)
				if p, ok := mins[cf]; !ok || h.W < p.w {
					mins[cf] = pick{w: h.W, edge: h.Edge, target: int(h.TargetCF)}
				}
			}
			// Replay the merges in a canonical order: every node must end
			// with identical union-find representatives.
			cfs := make([]int, 0, len(mins))
			for cf := range mins {
				cfs = append(cfs, cf)
			}
			sort.Ints(cfs)
			for _, cf := range cfs {
				p := mins[cf]
				uf.Union(cf, p.target)
				e := c.Topo().Edge(p.edge)
				if e.U == id || e.V == id {
					mstEdges[p.edge] = true
				}
			}
			if len(mins) == 0 && uf.Sets() > 1 {
				return fmt.Errorf("no outgoing links heard with %d fragments left", uf.Sets())
			}
		}

		if phasesOut != nil && id == 0 {
			*phasesOut = phases
		}
		out := make([]int, 0, len(mstEdges))
		for e := range mstEdges {
			out = append(out, e)
		}
		sort.Ints(out)
		c.SetResult(out)
		return nil
	}
}

// Boruvka wraps the pure point-to-point baseline (the §3 machinery run to
// completion) into the same Result shape for the experiments.
func Boruvka(g graph.Topology, seed int64) (*Result, error) {
	f, met, info, err := partition.Boruvka(g, seed)
	if err != nil {
		return nil, fmt.Errorf("mst: boruvka baseline: %w", err)
	}
	mst := &graph.MST{}
	for _, id := range f.ParentEdge {
		if id != -1 {
			mst.EdgeIDs = append(mst.EdgeIDs, id)
			mst.Total += g.Edge(id).Weight
		}
	}
	sort.Ints(mst.EdgeIDs)
	return &Result{
		MST:              mst,
		InitialFragments: 1,
		Phases:           info.Phases,
		Partition:        *met,
		Merge:            sim.Metrics{},
		Total:            *met,
	}, nil
}
