package async

import (
	"sync"

	"repro/internal/graph"
)

// SumDemo builds a synchronous BFS-aggregation algorithm (the globalfunc
// point-to-point baseline restated as a RoundFunc): node 0 floods an
// explore wave, partial sums converge back up the BFS tree, and the total
// is broadcast down. It is the workload of the §7.1 experiment: the same
// rounds-based code runs on the synchronous engine by construction and on
// the asynchronous engine via the channel synchronizer.
//
// results[v] receives node v's final value; the slice must have length n
// and is written under mu (node callbacks are engine-serialized, but the
// mutex keeps the demo race-detector clean).
func SumDemo(inputs func(graph.NodeID) int64, results []int64, mu *sync.Mutex) func(graph.NodeID) RoundFunc {
	type explore struct{}
	type ack struct{ Child bool }
	type value struct{ V int64 }
	type result struct{ V int64 }

	return func(id graph.NodeID) RoundFunc {
		adopted := id == 0
		adoptedRound := -1
		parentLink := -1
		acksPending := 0
		explored := false
		var childLinks []int
		reports := 0
		partial := inputs(id)
		sentUp := false
		done := false

		return func(api Port, round int, inbox []Message) {
			if done {
				api.Halt()
				return
			}
			linkOf := func(edgeID int) int {
				for l, h := range api.Adj() {
					if int(h.EdgeID) == edgeID {
						return l
					}
				}
				return -1
			}
			sendExplores := func(skip map[int]bool) {
				for l := 0; l < api.Degree(); l++ {
					if !skip[l] {
						api.Send(l, explore{})
						acksPending++
					}
				}
				explored = true
			}
			if id == 0 && round == 0 {
				sendExplores(nil)
			}

			// Adoption: least sender among this round's explores.
			bestLink := -1
			var bestFrom graph.NodeID
			skip := make(map[int]bool)
			for _, m := range inbox {
				if _, ok := m.Payload.(explore); ok {
					l := linkOf(m.EdgeID)
					skip[l] = true
					if bestLink == -1 || m.From < bestFrom {
						bestLink, bestFrom = l, m.From
					}
				}
			}
			adoptedNow := false
			if bestLink != -1 && !adopted {
				adopted = true
				adoptedNow = true
				adoptedRound = round
				parentLink = bestLink
				sendExplores(skip)
			}
			_ = adoptedRound

			parentBusy := false
			for _, m := range inbox {
				l := linkOf(m.EdgeID)
				switch p := m.Payload.(type) {
				case explore:
					api.Send(l, ack{Child: adoptedNow && l == parentLink})
					if l == parentLink {
						parentBusy = true
					}
				case ack:
					acksPending--
					if p.Child {
						childLinks = append(childLinks, l)
					}
				case value:
					partial += p.V
					reports++
				case result:
					for _, cl := range childLinks {
						api.Send(cl, result{V: p.V})
					}
					mu.Lock()
					results[id] = p.V
					mu.Unlock()
					done = true
				}
			}
			if adopted && explored && acksPending == 0 && !sentUp &&
				reports == len(childLinks) && !parentBusy && !done {
				sentUp = true
				if id == 0 {
					for _, cl := range childLinks {
						api.Send(cl, result{V: partial})
					}
					mu.Lock()
					results[id] = partial
					mu.Unlock()
					done = true
				} else {
					api.Send(parentLink, value{V: partial})
				}
			}
			if done {
				api.Halt()
			}
		}
	}
}
