package async

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// runSyncSum drives SumDemo through the sim-engine synchronizer.
func runSyncSum(t *testing.T, g *graph.Graph, seed int64) (int64, *SyncResult) {
	t.Helper()
	results := make([]int64, g.N())
	var mu sync.Mutex
	res, err := Sync(g, seed, 50*g.N()+500, SumDemo(func(v graph.NodeID) int64 { return int64(v) + 1 }, results, &mu))
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range results {
		if r != results[0] {
			t.Fatalf("node %d computed %d, node 0 %d", v, r, results[0])
		}
	}
	return results[0], res
}

// TestSyncComputesSum: the synchronizer-driven run must compute the same
// aggregate as the synchronous algorithm, with the Corollary 4 overhead of
// exactly one ack per algorithm message.
func TestSyncComputesSum(t *testing.T) {
	g, err := graph.Grid(6, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum, res := runSyncSum(t, g, 9)
	want := int64(g.N()) * int64(g.N()+1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if res.AckMsgs != res.AlgMsgs {
		t.Errorf("acks = %d, want one per algorithm message (%d)", res.AckMsgs, res.AlgMsgs)
	}
	if got := res.Overhead(); got != 2 {
		t.Errorf("overhead = %.2f, want exactly 2", got)
	}
	if res.Metrics.Messages != res.AlgMsgs+res.AckMsgs {
		t.Errorf("engine counted %d messages, synchronizer %d", res.Metrics.Messages, res.AlgMsgs+res.AckMsgs)
	}
}

// TestSyncEngineEquivalence: both engine forms of the synchronizer must be
// bit-identical.
func TestSyncEngineEquivalence(t *testing.T) {
	g, err := graph.RandomConnected(40, 70, 11)
	if err != nil {
		t.Fatal(err)
	}
	old := sim.DefaultEngine
	defer func() { sim.DefaultEngine = old }()

	sim.DefaultEngine = sim.EngineGoroutine
	goSum, goRes := runSyncSum(t, g, 1)
	sim.DefaultEngine = sim.EngineStep
	stSum, stRes := runSyncSum(t, g, 1)
	if goSum != stSum || !reflect.DeepEqual(goRes, stRes) {
		t.Errorf("engines diverge:\n goroutine: sum=%d %+v\n step:      sum=%d %+v", goSum, goRes, stSum, stRes)
	}
}
