// Package async implements §7.1: the multiaccess channel as a synchronizer
// for an asynchronous point-to-point network.
//
// The engine is an event-driven discrete simulator. Point-to-point messages
// experience arbitrary (seeded) delays of at most one time unit; the channel
// is slotted with slots of one time unit. The synchronizer protocol is the
// paper's: every algorithm message is acknowledged, a node keeps a busy tone
// on the channel while any of its messages is unacknowledged, and an idle
// slot — heard by everyone simultaneously — is a clock pulse that starts the
// next simulated synchronous round. Synchronous algorithms therefore run
// unchanged: each node's RoundFunc is invoked once per pulse with the
// messages sent to it in the previous round.
//
// Corollary 4's claims are directly measurable: acknowledgements at most
// double the message complexity, and each simulated round costs a constant
// number of time units.
package async

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Slot is the number of engine ticks per channel slot (and per maximum
// message delay). Delays are integers in [1, Slot].
const Slot = 1000

// Message is an algorithm message as seen by its recipient.
type Message struct {
	From    graph.NodeID
	EdgeID  int
	Payload any
}

// RoundFunc is a synchronous algorithm: invoked at every clock pulse with
// the round number and the messages sent to this node in the previous
// round. State lives in per-node closures created by the factory passed to
// Run (or to the sim-engine forms in sync.go).
type RoundFunc func(api Port, round int, inbox []Message)

// Port is the node handle a RoundFunc drives: implemented by this package's
// event-driven engine (NodeAPI) and by the synchronizer ports of sync.go
// that run the same RoundFunc on either sim engine.
type Port interface {
	ID() graph.NodeID
	N() int
	Adj() []graph.Half
	Degree() int
	Send(link int, payload any)
	SendTo(to graph.NodeID, payload any)
	Halt()
}

// NodeAPI is a node's handle during a round callback.
type NodeAPI struct {
	id     graph.NodeID
	eng    *engine
	halted bool
}

// ID returns this node's identifier.
func (a *NodeAPI) ID() graph.NodeID { return a.id }

// N returns the network size.
func (a *NodeAPI) N() int { return a.eng.g.N() }

// Adj returns this node's weight-ordered incident links.
func (a *NodeAPI) Adj() []graph.Half { return a.eng.g.Adj(a.id) }

// Degree returns the number of incident links.
func (a *NodeAPI) Degree() int { return a.eng.g.Degree(a.id) }

// Send transmits a message on the link with the given local index; it is
// delivered after a random delay of at most one time unit and acknowledged
// by the §7.1 protocol.
func (a *NodeAPI) Send(link int, payload any) {
	h := a.eng.g.Adj(a.id)[link]
	a.eng.send(a.id, h.To, int(h.EdgeID), payload)
}

// SendTo transmits to the given neighbor.
func (a *NodeAPI) SendTo(to graph.NodeID, payload any) {
	for l, h := range a.eng.g.Adj(a.id) {
		if h.To == to {
			a.Send(l, payload)
			return
		}
	}
	panic(fmt.Sprintf("async: node %d is not adjacent to %d", a.id, to))
}

// Halt removes this node from the computation after the current round.
func (a *NodeAPI) Halt() {
	if !a.halted {
		a.halted = true
		a.eng.alive--
	}
}

// Metrics aggregates an asynchronous run's costs.
type Metrics struct {
	Time      int64 // elapsed time units (slots)
	Rounds    int   // simulated synchronous rounds (clock pulses consumed)
	AlgMsgs   int64 // algorithm messages
	AckMsgs   int64 // synchronizer acknowledgements
	BusySlots int64
	IdleSlots int64
}

// Overhead returns the message overhead factor of the synchronizer
// (Corollary 4 bounds it by 2).
func (m *Metrics) Overhead() float64 {
	if m.AlgMsgs == 0 {
		return 1
	}
	return float64(m.AlgMsgs+m.AckMsgs) / float64(m.AlgMsgs)
}

// event kinds, ordered so that deliveries at a slot boundary precede the
// boundary's pulse decision.
const (
	evArrival = iota
	evAck
	evBoundary
)

type event struct {
	time int64
	kind int
	seq  int64 // FIFO tie-break for determinism
	// arrival / ack payload:
	from, to graph.NodeID
	edgeID   int
	payload  any
	sentAt   int64
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type engine struct {
	g      graph.Topology
	rng    *rand.Rand
	queue  eventQueue
	seq    int64
	now    int64
	inbox  [][]Message // buffered for the next pulse
	apis   []*NodeAPI
	rounds []RoundFunc
	alive  int
	met    Metrics
	// busySlots[s] is true if slot s overlapped a completed unacked
	// interval; outstanding counts messages whose ack has not yet arrived,
	// covering intervals still in flight at a boundary.
	busySlots   map[int64]bool
	outstanding int
}

// ErrRoundBudget is returned when the pulse budget is exhausted (a node
// neither sending nor halting forever).
var ErrRoundBudget = errors.New("async: round budget exhausted")

// Run executes the synchronous algorithm produced by factory on an
// asynchronous network driven by the channel synchronizer. factory is
// called once per node and returns that node's RoundFunc (a closure owning
// its state). maxRounds bounds the number of pulses.
func Run(g graph.Topology, seed int64, maxRounds int, factory func(id graph.NodeID) RoundFunc) (*Metrics, error) {
	eng := &engine{
		g:         g,
		rng:       rand.New(rand.NewSource(seed)),
		inbox:     make([][]Message, g.N()),
		apis:      make([]*NodeAPI, g.N()),
		rounds:    make([]RoundFunc, g.N()),
		alive:     g.N(),
		busySlots: make(map[int64]bool),
	}
	for v := 0; v < g.N(); v++ {
		eng.apis[v] = &NodeAPI{id: graph.NodeID(v), eng: eng}
		eng.rounds[v] = factory(graph.NodeID(v))
	}
	heap.Init(&eng.queue)

	// Round 0 fires immediately at time 0 with empty inboxes.
	round := 0
	eng.dispatchRound(round)
	boundary := int64(Slot)
	eng.push(&event{time: boundary, kind: evBoundary})

	for eng.alive > 0 {
		if eng.queue.Len() == 0 {
			return nil, errors.New("async: event queue drained with live nodes")
		}
		e := heap.Pop(&eng.queue).(*event)
		eng.now = e.time
		switch e.kind {
		case evArrival:
			eng.met.AlgMsgs++
			eng.inbox[e.to] = append(eng.inbox[e.to], Message{From: e.from, EdgeID: e.edgeID, Payload: e.payload})
			// Acknowledge immediately; the ack travels back with its own delay.
			eng.push(&event{time: e.time + eng.delay(), kind: evAck, from: e.to, to: e.from, sentAt: e.sentAt})
		case evAck:
			eng.met.AckMsgs++
			eng.outstanding--
			// The sender's busy interval [sentAt, now] keeps those slots busy.
			for s := e.sentAt / Slot; s <= e.time/Slot; s++ {
				eng.busySlots[s] = true
			}
		case evBoundary:
			s := e.time/Slot - 1
			if eng.busySlots[s] || eng.outstanding > 0 {
				eng.met.BusySlots++
				delete(eng.busySlots, s)
			} else {
				eng.met.IdleSlots++
				round++
				if round > maxRounds {
					return nil, fmt.Errorf("%w: %d", ErrRoundBudget, maxRounds)
				}
				eng.dispatchRound(round)
			}
			if eng.alive > 0 {
				eng.push(&event{time: e.time + Slot, kind: evBoundary})
			}
		}
	}
	eng.met.Time = (eng.now + Slot - 1) / Slot
	eng.met.Rounds = round + 1
	return &eng.met, nil
}

func (eng *engine) push(e *event) {
	eng.seq++
	e.seq = eng.seq
	heap.Push(&eng.queue, e)
}

func (eng *engine) delay() int64 { return 1 + eng.rng.Int63n(Slot) }

func (eng *engine) send(from, to graph.NodeID, edgeID int, payload any) {
	t := eng.now + eng.delay()
	// The sender is busy from now until the ack returns; mark the sending
	// slot immediately (the ack handler extends the range, and the
	// outstanding counter covers boundaries crossed while in flight).
	eng.busySlots[eng.now/Slot] = true
	eng.outstanding++
	eng.push(&event{time: t, kind: evArrival, from: from, to: to, edgeID: edgeID, payload: payload, sentAt: eng.now})
}

func (eng *engine) dispatchRound(round int) {
	boxes := make([][]Message, len(eng.inbox))
	copy(boxes, eng.inbox)
	for i := range eng.inbox {
		eng.inbox[i] = nil
	}
	for v, api := range eng.apis {
		if api.halted {
			continue
		}
		eng.rounds[v](api, round, boxes[v])
	}
}
