package async

// sync.go runs a RoundFunc algorithm on the synchronous sim engines through
// the §7.1 synchronizer protocol itself: every algorithm message is
// acknowledged, a node transmits the busy tone while any of its messages is
// unacknowledged, and an idle slot — heard by everyone in the same round —
// is the clock pulse that starts the next simulated synchronous round. This
// is the protocol the event-driven engine in async.go models with real
// (seeded) delays; here delivery is exactly one round, so each simulated
// round costs at most three slots and Corollary 4's ≤2× message overhead is
// visible directly in the metrics.
//
// Both engine forms — the goroutine program and the native machine — drive
// one shared syncState, so they are message-for-message identical; the
// native form parks passive nodes with the barrier's pulse-sleep.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Synchronizer payloads.
type (
	sMsg struct{ P any } // an algorithm message
	sAck struct{}        // its §7.1 acknowledgement
)

// SyncResult is the outcome of a synchronizer-driven run.
type SyncResult struct {
	Rounds  int   // simulated synchronous rounds consumed (max over nodes)
	AlgMsgs int64 // algorithm messages
	AckMsgs int64 // synchronizer acknowledgements
	Metrics sim.Metrics
}

// Overhead returns the message overhead factor of the synchronizer
// (Corollary 4 bounds it by 2).
func (r *SyncResult) Overhead() float64 {
	if r.AlgMsgs == 0 {
		return 1
	}
	return float64(r.AlgMsgs+r.AckMsgs) / float64(r.AlgMsgs)
}

// syncPort adapts a sim node handle to the Port a RoundFunc drives.
type syncPort struct {
	id      graph.NodeID
	g       graph.Topology
	send    func(link int, p sim.Payload)
	halted  bool
	algSent int64
	ackSent int64
	pending int // staged sends awaiting acknowledgement
}

func (p *syncPort) ID() graph.NodeID  { return p.id }
func (p *syncPort) N() int            { return p.g.N() }
func (p *syncPort) Adj() []graph.Half { return p.g.Adj(p.id) }
func (p *syncPort) Degree() int       { return p.g.Degree(p.id) }
func (p *syncPort) Halt()             { p.halted = true }

func (p *syncPort) Send(link int, payload any) {
	p.send(link, sMsg{P: payload})
	p.algSent++
	p.pending++
}

func (p *syncPort) SendTo(to graph.NodeID, payload any) {
	for l, h := range p.Adj() {
		if h.To == to {
			p.Send(l, payload)
			return
		}
	}
	panic(fmt.Sprintf("async: node %d is not adjacent to %d", p.id, to))
}

// syncState is the per-node synchronizer state, shared by both engine
// forms. One barrier step spans one simulated round: the round function
// fires on the step's entry round, acknowledgements flow during it, and the
// pulse that ends it starts the next simulated round.
type syncState struct {
	port        *syncPort
	rf          RoundFunc
	maxRounds   int
	round       int
	invoked     bool
	outstanding int
	inbox       []Message
	nextInbox   []Message
}

func newSyncState(port *syncPort, rf RoundFunc, maxRounds int) *syncState {
	return &syncState{port: port, rf: rf, maxRounds: maxRounds}
}

// handle is the shared barrier handler: acknowledge arrivals, collect the
// next round's inbox, fire the round function once per step, and stay busy
// while any own message is unacknowledged.
func (st *syncState) handle(linkOf func(edgeID int) int, step sim.Input) bool {
	for _, m := range step.Msgs {
		switch p := m.Payload.(type) {
		case sMsg:
			st.nextInbox = append(st.nextInbox, Message{From: m.From, EdgeID: m.EdgeID, Payload: p.P})
			st.port.send(linkOf(m.EdgeID), sAck{})
			st.port.ackSent++
		case sAck:
			st.outstanding--
		}
	}
	if !st.invoked {
		st.invoked = true
		st.port.pending = 0
		st.rf(st.port, st.round, st.inbox)
		st.outstanding += st.port.pending
	}
	return st.outstanding > 0
}

// boundary advances the simulated clock at a pulse; done means the node
// halted. It returns an error when the pulse budget is exhausted.
func (st *syncState) boundary() (done bool, err error) {
	st.round++
	st.inbox, st.nextInbox = st.nextInbox, nil
	if st.port.halted {
		return true, nil
	}
	if st.round > st.maxRounds {
		return false, fmt.Errorf("%w: %d", ErrRoundBudget, st.maxRounds)
	}
	st.invoked = false
	return false, nil
}

func (st *syncState) record() any {
	return [3]int64{st.port.algSent, st.port.ackSent, int64(st.round)}
}

// syncProgram is the goroutine form.
func syncProgram(g graph.Topology, maxRounds int, factory func(id graph.NodeID) RoundFunc) sim.Program {
	return func(c *sim.Ctx) error {
		port := &syncPort{id: c.ID(), g: g, send: c.Send}
		st := newSyncState(port, factory(c.ID()), maxRounds)
		in := sim.Input{}
		for {
			in = sim.BarrierStep(c, in, func(step sim.Input) bool {
				return st.handle(c.LinkOf, step)
			})
			done, err := st.boundary()
			if err != nil {
				return err
			}
			if done {
				c.SetResult(st.record())
				return nil
			}
		}
	}
}

// syncMachine is the native machine form.
type syncMachine struct {
	c      *sim.StepCtx
	b      *sim.StepBarrier
	st     *syncState
	result any
}

func (m *syncMachine) Step(in sim.Input) bool {
	handle := func(step sim.Input) bool { return m.st.handle(m.c.LinkOf, step) }
	if !m.b.Step(in, handle) {
		return false
	}
	done, err := m.st.boundary()
	if err != nil {
		m.c.Failf("%v", err)
	}
	if done {
		m.result = m.st.record()
		return true
	}
	// The next simulated round's function fires in the pulse round, exactly
	// as the goroutine form's next BarrierStep call does.
	m.b.Step(in, handle)
	return false
}

func (m *syncMachine) Result() any { return m.result }

func syncStepProgram(g graph.Topology, maxRounds int, factory func(id graph.NodeID) RoundFunc) sim.StepProgram {
	return func(c *sim.StepCtx) sim.Machine {
		port := &syncPort{id: c.ID(), g: g, send: c.Send}
		return &syncMachine{
			c:  c,
			b:  sim.NewStepBarrier(c),
			st: newSyncState(port, factory(c.ID()), maxRounds),
		}
	}
}

// Sync executes the synchronous algorithm produced by factory on
// sim.DefaultEngine, driven by the §7.1 channel synchronizer. factory is
// called once per node and returns that node's RoundFunc; maxRounds bounds
// the number of simulated rounds.
func Sync(g graph.Topology, seed int64, maxRounds int, factory func(id graph.NodeID) RoundFunc) (*SyncResult, error) {
	var res *sim.Result
	var err error
	// WithSynchronizer unlocks skew: rules — clock skew is meaningful only
	// at this layer, where a slot is a tick of the §7.1 clock.
	if sim.DefaultEngine == sim.EngineStep {
		res, err = sim.RunStep(g, syncStepProgram(g, maxRounds, factory), sim.WithSeed(seed), sim.WithSynchronizer())
	} else {
		res, err = sim.Run(g, syncProgram(g, maxRounds, factory), sim.WithSeed(seed), sim.WithSynchronizer())
	}
	if err != nil {
		return nil, err
	}
	out := &SyncResult{Metrics: res.Metrics}
	for _, r := range res.Results {
		rec, ok := r.([3]int64)
		if !ok {
			continue // crash-stopped before recording
		}
		out.AlgMsgs += rec[0]
		out.AckMsgs += rec[1]
		if int(rec[2]) > out.Rounds {
			out.Rounds = int(rec[2])
		}
	}
	return out, nil
}
