package async

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/graph"
)

func runSum(t *testing.T, g *graph.Graph, seed int64) (int64, *Metrics) {
	t.Helper()
	results := make([]int64, g.N())
	var mu sync.Mutex
	inputs := func(v graph.NodeID) int64 { return int64(v) + 1 }
	met, err := Run(g, seed, 50*g.N()+500, SumDemo(inputs, results, &mu))
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N(); v++ {
		if results[v] != results[0] {
			t.Fatalf("node %d got %d, node 0 got %d", v, results[v], results[0])
		}
	}
	return results[0], met
}

func wantSum(n int) int64 { return int64(n) * int64(n+1) / 2 }

func TestSynchronizerCorrectness(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*graph.Graph, error)
		n    int
	}{
		{"path2", func() (*graph.Graph, error) { return graph.Path(2, 1) }, 2},
		{"path10", func() (*graph.Graph, error) { return graph.Path(10, 1) }, 10},
		{"ring16", func() (*graph.Graph, error) { return graph.Ring(16, 3) }, 16},
		{"grid4x5", func() (*graph.Graph, error) { return graph.Grid(4, 5, 5) }, 20},
		{"random40", func() (*graph.Graph, error) { return graph.RandomConnected(40, 60, 7) }, 40},
		{"star15", func() (*graph.Graph, error) { return graph.Star(15, 9) }, 15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			got, _ := runSum(t, g, 42)
			if got != wantSum(tc.n) {
				t.Errorf("sum = %d, want %d", got, wantSum(tc.n))
			}
		})
	}
}

func TestSynchronizerSeedsAgree(t *testing.T) {
	// Different delay seeds must not change the computed value — the
	// synchronizer hides asynchrony completely.
	g, err := graph.RandomConnected(30, 45, 11)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := runSum(t, g, 0)
	for seed := int64(1); seed < 8; seed++ {
		got, _ := runSum(t, g, seed)
		if got != want {
			t.Errorf("seed %d: sum = %d, want %d", seed, got, want)
		}
	}
}

func TestCorollary4MessageOverhead(t *testing.T) {
	// Acks exactly double the algorithm messages: overhead == 2.
	g, err := graph.Grid(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, met := runSum(t, g, 5)
	if met.AckMsgs != met.AlgMsgs {
		t.Errorf("acks %d != algorithm messages %d", met.AckMsgs, met.AlgMsgs)
	}
	if ov := met.Overhead(); ov != 2 {
		t.Errorf("overhead = %.2f, want 2", ov)
	}
}

func TestCorollary4ConstantTimeFactor(t *testing.T) {
	// Each simulated round costs a bounded number of slots: a message and
	// its ack each take at most one time unit, so a round's busy period
	// spans at most a small constant number of slots.
	for _, n := range []int{8, 32, 128} {
		g, err := graph.Ring(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, met := runSum(t, g, 3)
		perRound := float64(met.Time) / float64(met.Rounds)
		if perRound > 6 {
			t.Errorf("n=%d: %.2f slots per round exceeds constant bound", n, perRound)
		}
	}
}

func TestRoundBudget(t *testing.T) {
	g, err := graph.Path(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A program that never halts and never sends: pulses forever.
	_, err = Run(g, 1, 10, func(id graph.NodeID) RoundFunc {
		return func(api Port, round int, inbox []Message) {}
	})
	if !errors.Is(err, ErrRoundBudget) {
		t.Fatalf("err = %v, want ErrRoundBudget", err)
	}
}

func TestEmptyRoundsPulseQuickly(t *testing.T) {
	// Nodes that do nothing for k rounds then halt: each empty round costs
	// exactly one idle slot.
	g, err := graph.Ring(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	const k = 7
	met, err := Run(g, 1, 100, func(id graph.NodeID) RoundFunc {
		return func(api Port, round int, inbox []Message) {
			if round >= k {
				api.Halt()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Rounds != k+1 {
		t.Errorf("rounds = %d, want %d", met.Rounds, k+1)
	}
	if met.IdleSlots != int64(k) {
		t.Errorf("idle slots = %d, want %d", met.IdleSlots, k)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g, err := graph.RandomConnected(25, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, m1 := runSum(t, g, 77)
	_, m2 := runSum(t, g, 77)
	if *m1 != *m2 {
		t.Errorf("same seed, different metrics: %+v vs %+v", m1, m2)
	}
}

func TestSendToUnknownNeighborPanics(t *testing.T) {
	g, err := graph.Path(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	_, _ = Run(g, 1, 10, func(id graph.NodeID) RoundFunc {
		return func(api Port, round int, inbox []Message) {
			if id == 0 {
				api.SendTo(2, "x") // not adjacent on a path
			}
			api.Halt()
		}
	})
}
