package snapshot

// step.go is the native step-machine form of the snapshot protocol: the §2
// election component resolves contending initiators, and the round in which
// its final slot is heard — the same round at every node — is the cut.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/resolve"
	"repro/internal/sim"
)

// TakeStep is the per-round form of Take, for embedding in a sim.Machine.
// Begin starts the protocol in the current round; Poll consumes each
// subsequent round until it reports done, after which Cut and OK hold the
// result. The record callback fires exactly once, on the cut round, iff a
// snapshot was taken.
type TakeStep struct {
	Cut Cut
	OK  bool

	e      *resolve.ElectionStep
	record func(round int)
}

// NewTakeStep returns the component in its pre-Begin state; trigger marks
// this node as wanting a snapshot.
func NewTakeStep(c *sim.StepCtx, trigger bool, record func(round int)) *TakeStep {
	return &TakeStep{e: resolve.NewElectionStep(c, c.N(), trigger, int(c.ID())), record: record}
}

// Begin stages the election's liveness slot.
func (s *TakeStep) Begin() { s.e.Begin() }

// Poll consumes one slot outcome; done means the protocol is over.
func (s *TakeStep) Poll(in sim.Input) (done bool) {
	if !s.e.Poll(in) {
		return false
	}
	if !s.e.OK {
		return true
	}
	s.Cut = Cut{Initiator: graph.NodeID(s.e.Leader), Round: in.Round}
	s.OK = true
	s.record(s.Cut.Round)
	return true
}

// snapMachine runs one whole-network snapshot with node 0 triggering.
type snapMachine struct {
	c   *sim.StepCtx
	t   *TakeStep
	cut any
}

func (m *snapMachine) Step(in sim.Input) bool {
	if in.Round == 0 {
		m.t.Begin()
		return false
	}
	if !m.t.Poll(in) {
		return false
	}
	if !m.t.OK {
		m.c.Failf("snapshot not taken")
	}
	m.cut = m.t.Cut
	return true
}

func (m *snapMachine) Result() any { return m.cut }

// Run takes one snapshot of the whole network with node 0 as the (sole)
// trigger and returns the cut every node recorded. The run executes on
// sim.DefaultEngine: the goroutine engine drives the blocking Take, the
// step engine the native TakeStep machine; both produce bit-identical
// transcripts.
func Run(g graph.Topology, seed int64) (Cut, sim.Metrics, error) {
	var res *sim.Result
	var err error
	if sim.DefaultEngine == sim.EngineStep {
		res, err = sim.RunStep(g, func(c *sim.StepCtx) sim.Machine {
			return &snapMachine{c: c, t: NewTakeStep(c, c.ID() == 0, func(int) {})}
		}, sim.WithSeed(seed))
	} else {
		res, err = sim.Run(g, func(c *sim.Ctx) error {
			cut, ok, _ := Take(c, sim.Input{}, c.ID() == 0, func(int) {})
			if !ok {
				return fmt.Errorf("snapshot not taken")
			}
			c.SetResult(cut)
			return nil
		}, sim.WithSeed(seed))
	}
	if err != nil {
		return Cut{}, sim.Metrics{}, err
	}
	// Crash-stopped nodes record nothing; the surviving cuts must agree.
	cuts := make([]Cut, 0, len(res.Results))
	for _, r := range res.Results {
		if c, ok := r.(Cut); ok {
			cuts = append(cuts, c)
		}
	}
	if len(cuts) == 0 {
		return Cut{}, sim.Metrics{}, fmt.Errorf("snapshot: no surviving node recorded a cut")
	}
	if err := Consistent(cuts); err != nil {
		return Cut{}, sim.Metrics{}, err
	}
	return cuts[0], res.Metrics, nil
}
