package snapshot

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func TestSnapshotConsistentCut(t *testing.T) {
	// Nodes run a local counter incremented every round; a snapshot must
	// capture all counters at the same round, so all recorded values agree.
	const n = 12
	g, err := graph.Ring(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(g, func(c *sim.Ctx) error {
		counter := 0
		in := sim.Input{}
		// A few rounds of local work before snapshotting.
		for r := 0; r < 3; r++ {
			counter++
			in = c.Tick()
		}
		trigger := c.ID() == 4 || c.ID() == 9 // two concurrent initiators
		var recorded int
		cut, ok, _ := Take(c, in, trigger, func(round int) { recorded = counter })
		if !ok {
			return nil
		}
		c.SetResult([3]int{int(cut.Initiator), cut.Round, recorded})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Results[0].([3]int)
	if first[0] != 9 { // election picks the max id among initiators
		t.Errorf("initiator = %d, want 9", first[0])
	}
	for v, r := range res.Results {
		if r != first {
			t.Errorf("node %d cut %v != node 0 cut %v", v, r, first)
		}
	}
}

func TestSnapshotNoInitiator(t *testing.T) {
	g, err := graph.Ring(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(g, func(c *sim.Ctx) error {
		_, ok, _ := Take(c, sim.Input{}, false, func(int) {})
		c.SetResult(ok)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range res.Results {
		if r != false {
			t.Errorf("node %d: ok = %v, want false", v, r)
		}
	}
}

func TestSnapshotUsesNoP2PMessages(t *testing.T) {
	g, err := graph.RandomConnected(20, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(g, func(c *sim.Ctx) error {
		Take(c, sim.Input{}, c.ID() == 0, func(int) {})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages != 0 {
		t.Errorf("snapshot sent %d point-to-point messages", res.Metrics.Messages)
	}
	if res.Metrics.Rounds > 12 {
		t.Errorf("snapshot took %d rounds, want O(log n)", res.Metrics.Rounds)
	}
}

func TestConsistent(t *testing.T) {
	good := []Cut{{Initiator: 1, Round: 5}, {Initiator: 1, Round: 5}}
	if err := Consistent(good); err != nil {
		t.Errorf("consistent cuts rejected: %v", err)
	}
	bad := []Cut{{Initiator: 1, Round: 5}, {Initiator: 1, Round: 6}}
	if err := Consistent(bad); err == nil {
		t.Error("inconsistent cuts accepted")
	}
}
