// Package snapshot realizes the §2 observation that global snapshots
// (Chandy–Lamport 1985) are trivial in a multimedia network: the channel
// lets every node hear the same mark in the same round, so all nodes record
// their state at one common round boundary — a consistent cut with no
// marker flooding over the point-to-point network.
//
// When several nodes want a snapshot simultaneously, the §2 deterministic
// election resolves the contention first; the winner's mark round is the
// cut. The whole protocol costs O(log n) slots and no point-to-point
// messages.
package snapshot

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/resolve"
	"repro/internal/sim"
)

// Cut describes one completed snapshot.
type Cut struct {
	Initiator graph.NodeID
	Round     int // the common round at which every node recorded its state
}

// Take runs the snapshot sub-protocol. Every node must enter in the same
// round; trigger marks this node as wanting a snapshot. When at least one
// node triggers, all nodes invoke record exactly once, in the same round,
// and return the identical Cut; otherwise ok is false. The record callback
// receives the cut round.
func Take(c *sim.Ctx, in sim.Input, trigger bool, record func(round int)) (cut Cut, ok bool, out sim.Input) {
	leader, ok, out := resolve.Election(c, in, c.N(), trigger, int(c.ID()))
	if !ok {
		return Cut{}, false, out
	}
	// The election's final slot is observed by every node in the same
	// round: that round is the cut. No point-to-point message can be in
	// flight across the cut boundary for protocols that are quiescent while
	// snapshotting; for running applications the cut is simply a common
	// round index, which is all a synchronous consistent cut needs.
	cut = Cut{Initiator: graph.NodeID(leader), Round: out.Round}
	record(cut.Round)
	return cut, true, out
}

// Consistent verifies that a set of per-node cuts agree (same initiator and
// round) — the defining property the channel makes trivial.
func Consistent(cuts []Cut) error {
	for i := 1; i < len(cuts); i++ {
		if cuts[i] != cuts[0] {
			return fmt.Errorf("snapshot: node %d recorded %+v, node 0 %+v", i, cuts[i], cuts[0])
		}
	}
	return nil
}
