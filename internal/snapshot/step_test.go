package snapshot

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// TestRunEngineEquivalence: the native snapshot machine must record the same
// cut with identical metrics as the blocking form.
func TestRunEngineEquivalence(t *testing.T) {
	g, err := graph.RandomConnected(40, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	old := sim.DefaultEngine
	defer func() { sim.DefaultEngine = old }()

	sim.DefaultEngine = sim.EngineGoroutine
	goCut, goMet, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim.DefaultEngine = sim.EngineStep
	stCut, stMet, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if goCut != stCut || !reflect.DeepEqual(goMet, stMet) {
		t.Errorf("engines diverge: goroutine (%+v, %+v) step (%+v, %+v)", goCut, goMet, stCut, stMet)
	}
	if goCut.Initiator != 0 {
		t.Errorf("initiator = %d, want 0", goCut.Initiator)
	}
}
