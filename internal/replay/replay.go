// Package replay is the transcript-diff and state-bisection core behind
// cmd/mmreplay's -diff and -bisect modes, factored out so the differential
// harness can auto-reduce a fuzz-found divergence to the first divergent
// round and state delta instead of dumping two opaque outcomes. Everything
// here is read-only over transcripts and re-runs; nothing feeds back into
// engine execution.
package replay

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/size"
)

// ErrDiverged is returned by Diff and BisectStates when the compared runs
// are not identical; the human-readable reduction went to the writer.
var ErrDiverged = errors.New("transcripts diverge")

func nextFrame(tr *sim.TranscriptReader) (*sim.RoundFrame, *sim.FinalFrame, error) {
	rf, ff, err := tr.Next()
	if err == io.EOF {
		return nil, nil, nil
	}
	return rf, ff, err
}

// Diff reports the first divergence between two transcripts — the exact
// round, the field, and, for inbox digests, the node — to w. It returns
// nil when the transcripts are identical and ErrDiverged when not.
func Diff(w io.Writer, a, b *sim.TranscriptReader) error {
	ha, hb := a.Header(), b.Header()
	if ha.N != hb.N || ha.Seed != hb.Seed || ha.Plan != hb.Plan {
		fmt.Fprintf(w, "headers differ: a(n=%d seed=%d plan=%q) vs b(n=%d seed=%d plan=%q)\n",
			ha.N, ha.Seed, ha.Plan, hb.N, hb.Seed, hb.Plan)
		return ErrDiverged
	}
	rounds := 0
	for {
		ra, fa, err := nextFrame(a)
		if err != nil {
			return err
		}
		rb, fb, err := nextFrame(b)
		if err != nil {
			return err
		}
		switch {
		case ra != nil && rb != nil:
			if field, detail := diffRound(ra, rb); field != "" {
				fmt.Fprintf(w, "diverged at round %d: %s: %s\n", ra.Round, field, detail)
				return ErrDiverged
			}
			rounds++
		case fa != nil && fb != nil:
			if field, detail := diffFinal(fa, fb); field != "" {
				fmt.Fprintf(w, "diverged at final frame: %s: %s\n", field, detail)
				return ErrDiverged
			}
			fmt.Fprintf(w, "transcripts identical: %d round frames, final at round %d\n", rounds, fa.Met.Rounds)
			return nil
		case ra == nil && rb == nil && fa == nil && fb == nil:
			fmt.Fprintf(w, "transcripts identical but truncated: %d round frames, no final frame\n", rounds)
			return nil
		default:
			fmt.Fprintf(w, "diverged after round frame %d: one transcript ends early (a: round=%v final=%v, b: round=%v final=%v)\n",
				rounds, ra != nil, fa != nil, rb != nil, fb != nil)
			return ErrDiverged
		}
	}
}

// DiffBytes diffs two in-memory transcripts and returns the reduction
// report ("" when byte-identical runs are also frame-identical, which they
// always are). Decode errors are folded into the report — this is a
// diagnostic path, already inside a failure.
func DiffBytes(a, b []byte) string {
	ra, err := sim.NewTranscriptReader(bytes.NewReader(a))
	if err != nil {
		return fmt.Sprintf("transcript a unreadable: %v", err)
	}
	rb, err := sim.NewTranscriptReader(bytes.NewReader(b))
	if err != nil {
		return fmt.Sprintf("transcript b unreadable: %v", err)
	}
	var buf bytes.Buffer
	if err := Diff(&buf, ra, rb); err != nil && err != ErrDiverged {
		fmt.Fprintf(&buf, "diff aborted: %v\n", err)
	}
	return buf.String()
}

// diffRound returns the first differing field of two same-position round
// frames ("" if identical).
func diffRound(a, b *sim.RoundFrame) (field, detail string) {
	if a.Round != b.Round {
		return "round", fmt.Sprintf("a=%d b=%d", a.Round, b.Round)
	}
	if a.Slot != b.Slot {
		return "slot", fmt.Sprintf("a=%v b=%v", a.Slot, b.Slot)
	}
	if a.From != b.From {
		return "slot writer", fmt.Sprintf("a=node %d b=node %d", a.From, b.From)
	}
	if a.SlotDigest != b.SlotDigest {
		return "slot payload digest", fmt.Sprintf("a=%016x b=%016x", a.SlotDigest, b.SlotDigest)
	}
	if a.Alive != b.Alive {
		return "alive", fmt.Sprintf("a=%d b=%d", a.Alive, b.Alive)
	}
	if name, av, bv := DiffMetrics(&a.Met, &b.Met); name != "" {
		return "metrics." + name, fmt.Sprintf("a=%d b=%d", av, bv)
	}
	// Inbox digests: walk the sorted node lists in lockstep.
	i, j := 0, 0
	for i < len(a.Nodes) || j < len(b.Nodes) {
		switch {
		case j >= len(b.Nodes) || (i < len(a.Nodes) && a.Nodes[i].Node < b.Nodes[j].Node):
			return fmt.Sprintf("node %d inbox", a.Nodes[i].Node), "delivered in a only"
		case i >= len(a.Nodes) || a.Nodes[i].Node > b.Nodes[j].Node:
			return fmt.Sprintf("node %d inbox", b.Nodes[j].Node), "delivered in b only"
		case a.Nodes[i].Digest != b.Nodes[j].Digest:
			return fmt.Sprintf("node %d inbox digest", a.Nodes[i].Node),
				fmt.Sprintf("a=%016x b=%016x", a.Nodes[i].Digest, b.Nodes[j].Digest)
		default:
			i, j = i+1, j+1
		}
	}
	return "", ""
}

func diffFinal(a, b *sim.FinalFrame) (field, detail string) {
	if name, av, bv := DiffMetrics(&a.Met, &b.Met); name != "" {
		return "metrics." + name, fmt.Sprintf("a=%d b=%d", av, bv)
	}
	if a.Err != b.Err {
		return "error", fmt.Sprintf("a=%q b=%q", a.Err, b.Err)
	}
	if a.ResultsDigest != b.ResultsDigest {
		return "results digest", fmt.Sprintf("a=%016x b=%016x", a.ResultsDigest, b.ResultsDigest)
	}
	if a.N != b.N {
		return "n", fmt.Sprintf("a=%d b=%d", a.N, b.N)
	}
	return "", ""
}

// DiffMetrics names the first differing Metrics field (and both values),
// or "" when equal.
func DiffMetrics(a, b *sim.Metrics) (string, int64, int64) {
	type fieldOf struct {
		name string
		a, b int64
	}
	fields := []fieldOf{
		{"rounds", int64(a.Rounds), int64(b.Rounds)},
		{"messages", a.Messages, b.Messages},
		{"slots_idle", a.SlotsIdle, b.SlotsIdle},
		{"slots_success", a.SlotsSuccess, b.SlotsSuccess},
		{"slots_collision", a.SlotsCollision, b.SlotsCollision},
		{"dropped_halted", a.DroppedHalted, b.DroppedHalted},
		{"crashed", a.Crashed, b.Crashed},
		{"dropped_fault", a.DroppedFault, b.DroppedFault},
		{"delayed", a.Delayed, b.Delayed},
		{"duplicated", a.Duplicated, b.Duplicated},
		{"slots_jammed", a.SlotsJammed, b.SlotsJammed},
		{"partitioned_drop", a.PartitionedDrop, b.PartitionedDrop},
		{"restarted", a.Restarted, b.Restarted},
		{"skewed", a.Skewed, b.Skewed},
	}
	for _, f := range fields {
		if f.a != f.b {
			return f.name, f.a, f.b
		}
	}
	return "", 0, 0
}

// Program resolves the re-runnable native step protocols a state bisection
// can drive.
func Program(algo string) (sim.StepProgram, error) {
	switch algo {
	case "census":
		return globalfunc.P2PStepProgram(globalfunc.Sum, func(graph.NodeID) int64 { return 1 }), nil
	case "estimate-step":
		return size.GLStepProgram(), nil
	default:
		return nil, fmt.Errorf("bisect supports the native step protocols census|estimate-step, not %q", algo)
	}
}

// BisectStates binary-searches the first round at which configuration A's
// and configuration B's checkpointed engine states differ. On a healthy
// engine the checkpoints are byte-identical at every round (that is the
// determinism contract); when they are not, the reported round is where
// the divergence entered the state — at or before where it first becomes
// observable in transcripts. The narration goes to w; the error is
// ErrDiverged when a divergent state was found.
func BisectStates(w io.Writer, g graph.Topology, prog sim.StepProgram, seed int64, plan *fault.Plan, maxR, workersA, workersB int) error {
	opts := func(workers int, spec *sim.CheckpointSpec) []sim.Option {
		o := []sim.Option{sim.WithSeed(seed), sim.WithFaults(plan), sim.WithWorkers(workers)}
		if maxR > 0 {
			o = append(o, sim.WithMaxRounds(maxR))
		}
		if spec != nil {
			o = append(o, sim.WithCheckpoints(spec))
		}
		return o
	}

	// Reference run: how many rounds are there to search?
	res, runErr := sim.RunStep(g, prog, opts(workersA, nil)...)
	last := 0
	if runErr != nil {
		fmt.Fprintf(w, "run fails under workers=%d: %v (bisecting to the failure)\n", workersA, runErr)
		probe := &sim.CheckpointSpec{Every: 1, Sink: func(cp *sim.Checkpoint) error { last = cp.Round; return nil }}
		if _, err := sim.RunStep(g, prog, opts(workersA, probe)...); err == nil {
			return errors.New("run failed without checkpoints but succeeded with them — capture is not an observation")
		}
	} else {
		last = res.Metrics.Rounds - 1
	}
	if last < 1 {
		fmt.Fprintf(w, "run completes in %d round(s): nothing to bisect\n", last+1)
		return nil
	}

	stateAt := func(workers, round int) ([]byte, error) {
		var got []byte
		spec := &sim.CheckpointSpec{At: []int{round}, Sink: func(cp *sim.Checkpoint) error {
			b, err := cp.Encode()
			got = b
			return err
		}}
		_, err := sim.RunStep(g, prog, opts(workers, spec)...)
		if got == nil && err != nil {
			return nil, err
		}
		return got, nil
	}

	probes := 0
	lo, hi := 1, last // invariant: states at rounds < lo agree; first divergence ≤ hi if any
	firstBad := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		sa, err := stateAt(workersA, mid)
		if err != nil {
			return fmt.Errorf("workers=%d checkpoint at %d: %w", workersA, mid, err)
		}
		sb, err := stateAt(workersB, mid)
		if err != nil {
			return fmt.Errorf("workers=%d checkpoint at %d: %w", workersB, mid, err)
		}
		probes++
		if string(sa) == string(sb) {
			lo = mid + 1
		} else {
			firstBad, hi = mid, mid-1
		}
	}
	if firstBad == 0 {
		fmt.Fprintf(w, "states identical: workers %d and %d agree at every probed round through %d (%d probes)\n",
			workersA, workersB, last, probes)
		return nil
	}
	fmt.Fprintf(w, "first divergent state at round %d (workers %d vs %d, %d probes)\n", firstBad, workersA, workersB, probes)
	return ErrDiverged
}
