package size

import (
	"testing"

	"repro/internal/graph"
)

func TestCensusCountsExactly(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (*graph.Graph, error)
		n    int
	}{
		{"ring200", func() (*graph.Graph, error) { return graph.Ring(200, 1) }, 200},
		{"grid12x12", func() (*graph.Graph, error) { return graph.Grid(12, 12, 2) }, 144},
		{"random81", func() (*graph.Graph, error) { return graph.RandomConnected(81, 160, 3) }, 81},
		{"path2", func() (*graph.Graph, error) { return graph.Path(2, 4) }, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Census(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.N != tc.n {
				t.Errorf("census = %d, want %d", res.N, tc.n)
			}
			if res.Metrics.Slots() != 0 {
				t.Errorf("census used %d channel slots", res.Metrics.Slots())
			}
		})
	}
}

// TestEstimateStepMatchesEstimate checks the native Greenberg–Ladner port
// against the goroutine form: identical estimates and metrics, seed by seed.
func TestEstimateStepMatchesEstimate(t *testing.T) {
	g, err := graph.RandomConnected(120, 240, 5)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		gor, err := Estimate(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		nat, err := EstimateStep(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		if gor.Estimate != nat.Estimate || gor.Rounds != nat.Rounds || gor.Metrics != nat.Metrics {
			t.Errorf("seed %d: goroutine %+v, native %+v", seed, gor, nat)
		}
	}
}
