// Package size implements §7.3 and §7.4: determining the number of nodes in
// a multimedia network when n is not known in advance. The deterministic
// algorithm (§7.3) interleaves the deterministic partition with bounded
// Capetanakis probes and computes n exactly in O(√n·log|id|) time; the
// randomized algorithm (§7.4, Greenberg–Ladner) estimates n within a
// constant factor w.h.p. in O(log n) slots.
package size

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/resolve"
	"repro/internal/sim"
)

// ExactResult is the outcome of the deterministic §7.3 computation.
type ExactResult struct {
	N       int
	Phases  int
	Metrics sim.Metrics
}

// Exact computes n deterministically. idUniverse is the publicly known
// bound on the id space (the paper's |id|); pass 0 to use the smallest
// power of two covering the actual ids.
func Exact(g graph.Topology, seed int64, idUniverse int) (*ExactResult, error) {
	if idUniverse <= 0 {
		idUniverse = 1 << uint(bits.Len(uint(g.N()-1)))
	}
	res, met, err := partition.CountNodes(g, seed, idUniverse)
	if err != nil {
		return nil, fmt.Errorf("size: %w", err)
	}
	return &ExactResult{N: res.N, Phases: res.Phases, Metrics: *met}, nil
}

// EstimateResult is the outcome of the randomized §7.4 estimation.
type EstimateResult struct {
	Estimate int64
	Rounds   int
	Metrics  sim.Metrics
}

// Estimate runs the Greenberg–Ladner protocol: in round i every node
// transmits with probability 2^-i; the first idle slot after k rounds
// yields the estimate 2^k, within a constant factor of n w.h.p.
func Estimate(g graph.Topology, seed int64) (*EstimateResult, error) {
	res, err := sim.Run(g, func(c *sim.Ctx) error {
		est, _ := resolve.GreenbergLadner(c, sim.Input{}, true)
		c.SetResult(est)
		return nil
	}, sim.WithSeed(seed))
	if err != nil {
		return nil, fmt.Errorf("size: estimate: %w", err)
	}
	est := res.Results[0].(int64)
	for v, r := range res.Results {
		if r != est {
			return nil, fmt.Errorf("size: node %d estimated %v, node 0 %v", v, r, est)
		}
	}
	return &EstimateResult{Estimate: est, Rounds: res.Metrics.Rounds, Metrics: res.Metrics}, nil
}
