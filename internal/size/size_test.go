package size

import (
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestExactComputesN(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*graph.Graph, error)
		n    int
	}{
		{"path2", func() (*graph.Graph, error) { return graph.Path(2, 1) }, 2},
		{"ring16", func() (*graph.Graph, error) { return graph.Ring(16, 1) }, 16},
		{"ring30", func() (*graph.Graph, error) { return graph.Ring(30, 1) }, 30},
		{"grid5x8", func() (*graph.Graph, error) { return graph.Grid(5, 8, 3) }, 40},
		{"random77", func() (*graph.Graph, error) { return graph.RandomConnected(77, 100, 5) }, 77},
		{"star25", func() (*graph.Graph, error) { return graph.Star(25, 7) }, 25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Exact(g, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.N != tc.n {
				t.Errorf("computed n = %d, want %d", res.N, tc.n)
			}
			if res.Phases < 1 {
				t.Errorf("phases = %d", res.Phases)
			}
		})
	}
}

func TestExactWithLargeIDUniverse(t *testing.T) {
	// The algorithm must tolerate a loose id bound (the paper's |id| can
	// exceed n).
	g, err := graph.Ring(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exact(g, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 20 {
		t.Errorf("computed n = %d, want 20", res.N)
	}
}

func TestExactRejectsTightUniverse(t *testing.T) {
	g, err := graph.Ring(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exact(g, 1, 10); err == nil {
		t.Error("expected error for id universe below n")
	}
}

func TestEstimateDistribution(t *testing.T) {
	// §7.4: 2^k is within a constant factor of n w.h.p. Check the median
	// ratio over seeds for several sizes.
	for _, n := range []int{32, 128, 512} {
		g, err := graph.Ring(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		var ratios []float64
		for s := int64(0); s < 15; s++ {
			res, err := Estimate(g, s)
			if err != nil {
				t.Fatal(err)
			}
			ratios = append(ratios, float64(res.Estimate)/float64(n))
			// O(log n) slots.
			if res.Rounds > 4*31 {
				t.Errorf("n=%d seed=%d: %d rounds", n, s, res.Rounds)
			}
		}
		sort.Float64s(ratios)
		med := ratios[len(ratios)/2]
		if med < 1.0/16 || med > 16 {
			t.Errorf("n=%d: median estimate ratio %.2f outside [1/16,16]", n, med)
		}
	}
}

func TestEstimateDeterministicPerSeed(t *testing.T) {
	g, err := graph.Ring(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Estimate(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate || a.Rounds != b.Rounds {
		t.Error("same seed produced different estimates")
	}
}
