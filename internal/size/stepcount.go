package size

// stepcount.go provides the native step-engine forms of the network-size
// protocols: Census, a point-to-point BFS census that counts the stations
// exactly in O(diameter) rounds and O(n + m) total work — the protocol the
// step engine can run on 10⁶-node networks — and EstimateStep, the native
// port of the §7.4 Greenberg–Ladner estimator, draw-for-draw identical to
// the goroutine form in Estimate.

import (
	"encoding/gob"
	"fmt"

	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/sim"
)

// CensusResult is the outcome of the native BFS census.
type CensusResult struct {
	N       int
	Metrics sim.Metrics
}

// Census counts the stations on the point-to-point network with the native
// step engine: the BFS-tree aggregate of globalfunc with every input 1.
// Every node learns n; the channel is never used. Thanks to the engine's
// sleep/wake activation the cost is proportional to n + m node-steps, so a
// million-node ring completes in seconds.
func Census(g graph.Topology, seed int64, opts ...sim.Option) (*CensusResult, error) {
	res, err := globalfunc.PointToPointStep(g, seed, globalfunc.Sum,
		func(graph.NodeID) int64 { return 1 }, opts...)
	if err != nil {
		return nil, fmt.Errorf("size: census: %w", err)
	}
	return &CensusResult{N: int(res.Value), Metrics: res.Total}, nil
}

// glMachine is the per-round form of resolve.GreenbergLadner: in iteration
// i the node transmits with probability 2^-i; the first idle slot after k
// rounds yields the estimate 2^k. The RNG draw order matches the goroutine
// form exactly, so both produce identical estimates and metrics.
type glMachine struct {
	c   *sim.StepCtx
	i   int32
	est int64
}

func (m *glMachine) Step(in sim.Input) bool {
	if in.Round > 0 && in.Slot.State == sim.SlotIdle {
		m.est = int64(1) << uint(min(m.i, 62))
		return true
	}
	m.i++
	p := 1.0
	for j := int32(0); j < m.i; j++ {
		p /= 2
	}
	if m.c.Rand().Float64() < p {
		m.c.Busy()
	}
	return false
}

func (m *glMachine) Result() any { return m.est }

// glState is the checkpointable image of glMachine, exported for gob.
type glState struct {
	I   int
	Est int64
}

// SnapshotState implements sim.Snapshotter.
func (m *glMachine) SnapshotState() any { return glState{I: int(m.i), Est: m.est} }

// RestoreState implements sim.Snapshotter.
func (m *glMachine) RestoreState(state any) {
	s := state.(glState)
	m.i, m.est = int32(s.I), s.Est
}

// GLStepProgram returns the native Greenberg–Ladner estimator program, for
// callers that drive sim.RunStep or sim.Resume directly (EstimateStep wraps
// it with result validation). Machines come from a per-run slab: one
// allocation for the whole network.
func GLStepProgram() sim.StepProgram {
	var slab sim.Slab[glMachine]
	return func(c *sim.StepCtx) sim.Machine {
		m := slab.Alloc(c.N())
		*m = glMachine{c: c}
		return m
	}
}

func init() {
	gob.Register(glState{})
}

// EstimateStep runs the §7.4 Greenberg–Ladner protocol on the native step
// engine; same contract and transcript as Estimate. Extra options (workers,
// transcript, checkpoints) pass through to the engine.
func EstimateStep(g graph.Topology, seed int64, opts ...sim.Option) (*EstimateResult, error) {
	opts = append([]sim.Option{sim.WithSeed(seed)}, opts...)
	res, err := sim.RunStep(g, GLStepProgram(), opts...)
	if err != nil {
		return nil, fmt.Errorf("size: step estimate: %w", err)
	}
	est := res.Results[0].(int64)
	for v, r := range res.Results {
		if r != est {
			return nil, fmt.Errorf("size: node %d estimated %v, node 0 %v", v, r, est)
		}
	}
	return &EstimateResult{Estimate: est, Rounds: res.Metrics.Rounds, Metrics: res.Metrics}, nil
}
