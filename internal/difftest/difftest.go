// Package difftest is the differential-testing registry: one runner per
// protocol of the module, each returning its full observable outcome as a
// reflect.DeepEqual-comparable value. The engines-equivalence suite runs
// every registry entry under both execution engines (and several worker
// counts, and fault plans) and requires bit-identical outcomes; cmd/mmnet's
// coverage test requires every -algo value to be claimed by some entry, so
// an algorithm cannot be added to the CLI without a cross-engine
// equivalence test.
//
// Runners honor sim.DefaultEngine (and sim.DefaultFaults etc.), so callers
// select the engine by setting the process defaults, exactly as the
// commands do.
package difftest

import (
	"sync"

	"repro/internal/async"
	"repro/internal/coloring"
	"repro/internal/forest"
	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/resolve"
	"repro/internal/size"
	"repro/internal/snapshot"
)

// Protocol is one differential-testing unit.
type Protocol struct {
	Name  string
	Algos []string // the cmd/mmnet -algo values this runner covers
	Run   func(g graph.Topology, seed int64) (any, error)
}

// Protocols returns the registry. Every entry's outcome must be
// bit-identical across engines, worker counts, and — completed or failed —
// fault plans.
func Protocols() []Protocol {
	return []Protocol{
		{Name: "partition-det", Algos: []string{"partition-det"}, Run: func(g graph.Topology, seed int64) (any, error) {
			f, met, info, err := partition.Deterministic(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{f.Parent, f.ParentEdge, *met, info.Phases}, nil
		}},
		{Name: "partition-rand", Algos: []string{"partition-rand"}, Run: func(g graph.Topology, seed int64) (any, error) {
			f, met, info, err := partition.Randomized(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{f.Parent, f.ParentEdge, *met, info.Iterations}, nil
		}},
		{Name: "partition-lv", Algos: []string{"partition-lv"}, Run: func(g graph.Topology, seed int64) (any, error) {
			f, met, info, err := partition.RandomizedLasVegas(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{f.Parent, f.ParentEdge, *met, info.Restarts}, nil
		}},
		{Name: "mst", Algos: []string{"mst"}, Run: func(g graph.Topology, seed int64) (any, error) {
			res, err := mst.Multimedia(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{res.MST.EdgeIDs, res.MST.Total, res.Phases, res.Total}, nil
		}},
		{Name: "mst-boruvka", Algos: []string{"mst-boruvka"}, Run: func(g graph.Topology, seed int64) (any, error) {
			res, err := mst.Boruvka(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{res.MST.EdgeIDs, res.MST.Total, res.Phases, res.Total}, nil
		}},
		{Name: "sum", Algos: []string{"sum"}, Run: func(g graph.Topology, seed int64) (any, error) {
			in := func(v graph.NodeID) int64 { return (int64(v)*97 + 5) % 1000 }
			res, err := globalfunc.Multimedia(g, seed, globalfunc.Sum, in,
				globalfunc.VariantDeterministic, globalfunc.StageCapetanakis)
			if err != nil {
				return nil, err
			}
			return []any{res.Value, res.Trees, res.Total}, nil
		}},
		{Name: "min-rand-mb", Algos: []string{"min"}, Run: func(g graph.Topology, seed int64) (any, error) {
			in := func(v graph.NodeID) int64 { return (int64(v)*31 + 7) % 500 }
			res, err := globalfunc.Multimedia(g, seed, globalfunc.Min, in,
				globalfunc.VariantRandomized, globalfunc.StageMetcalfeBoggs)
			if err != nil {
				return nil, err
			}
			return []any{res.Value, res.Trees, res.Total}, nil
		}},
		{Name: "p2p-sum", Algos: []string{"p2p-sum"}, Run: func(g graph.Topology, seed int64) (any, error) {
			in := func(v graph.NodeID) int64 { return int64(v) }
			res, err := globalfunc.PointToPoint(g, seed, globalfunc.Sum, in)
			if err != nil {
				return nil, err
			}
			return []any{res.Value, res.Total}, nil
		}},
		{Name: "bcast-sum", Algos: []string{"bcast-sum"}, Run: func(g graph.Topology, seed int64) (any, error) {
			in := func(v graph.NodeID) int64 { return int64(v) }
			res, err := globalfunc.BroadcastOnly(g, seed, globalfunc.Sum, in, globalfunc.StageCapetanakis)
			if err != nil {
				return nil, err
			}
			return []any{res.Value, res.Total}, nil
		}},
		{Name: "count", Algos: []string{"count"}, Run: func(g graph.Topology, seed int64) (any, error) {
			res, err := size.Exact(g, seed, 0)
			if err != nil {
				return nil, err
			}
			return []any{res.N, res.Phases, res.Metrics}, nil
		}},
		{Name: "census", Algos: []string{"census"}, Run: func(g graph.Topology, seed int64) (any, error) {
			// Native step protocol: engine-flag independent by construction;
			// the registry run still asserts that.
			res, err := size.Census(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{res.N, res.Metrics}, nil
		}},
		{Name: "estimate", Algos: []string{"estimate"}, Run: func(g graph.Topology, seed int64) (any, error) {
			res, err := size.Estimate(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{res.Estimate, res.Metrics}, nil
		}},
		{Name: "estimate-step", Algos: []string{"estimate-step"}, Run: func(g graph.Topology, seed int64) (any, error) {
			res, err := size.EstimateStep(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{res.Estimate, res.Metrics}, nil
		}},
		{Name: "elect", Algos: []string{"elect"}, Run: func(g graph.Topology, seed int64) (any, error) {
			leader, met, err := resolve.Elect(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{leader, met}, nil
		}},
		{Name: "snapshot", Algos: []string{"snapshot"}, Run: func(g graph.Topology, seed int64) (any, error) {
			cut, met, err := snapshot.Run(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{cut, met}, nil
		}},
		{Name: "forest", Algos: []string{"forest"}, Run: func(g graph.Topology, seed int64) (any, error) {
			f, total, met, err := forest.BFS(g, seed)
			if err != nil {
				return nil, err
			}
			return []any{f.Parent, f.ParentEdge, total, met}, nil
		}},
		{Name: "coloring", Algos: []string{"coloring"}, Run: func(g graph.Topology, seed int64) (any, error) {
			f, _, bmet, err := forest.BFS(g, seed)
			if err != nil {
				return nil, err
			}
			colors, cmet, err := coloring.Distributed(f, seed)
			if err != nil {
				return nil, err
			}
			return []any{colors, bmet, cmet}, nil
		}},
		{Name: "sync-sum", Algos: []string{"sync-sum"}, Run: func(g graph.Topology, seed int64) (any, error) {
			results := make([]int64, g.N())
			var mu sync.Mutex
			// The simulated-round budget is effectively unbounded: the
			// engine's own round budget is the deterministic wedge guard.
			res, err := async.Sync(g, seed, 1<<30,
				async.SumDemo(func(v graph.NodeID) int64 { return int64(v) + 1 }, results, &mu))
			if err != nil {
				return nil, err
			}
			return []any{results[0], res.AlgMsgs, res.AckMsgs, res.Rounds, res.Metrics}, nil
		}},
	}
}

// Covers reports whether the registry claims the given mmnet -algo value.
func Covers(algo string) bool {
	for _, p := range Protocols() {
		for _, a := range p.Algos {
			if a == algo {
				return true
			}
		}
	}
	return false
}
