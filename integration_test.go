package repro

import (
	"testing"

	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/size"
)

// TestFullPipeline exercises the whole stack on one network: both
// partitions, the function computation by all three architectures, the
// distributed MST, and the size algorithms — asserting they agree with each
// other and with the sequential references.
func TestFullPipeline(t *testing.T) {
	const n = 81
	g, err := graph.RandomConnected(n, 2*n, 77)
	if err != nil {
		t.Fatal(err)
	}
	in := func(v graph.NodeID) int64 { return (int64(v)*97 + 5) % 1000 }
	want := globalfunc.Reference(g, graph5Sum(), in)

	// Partitions: both must satisfy their structural guarantees.
	fd, _, _, err := partition.Deterministic(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	kr, err := graph.Kruskal(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := fd.SubtreeOfMST(kr); err != nil {
		t.Errorf("deterministic partition: %v", err)
	}
	fr, _, _, err := partition.RandomizedLasVegas(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.CheckPartition(2*partition.SqrtN(n), 4*partition.SqrtN(n)); err != nil {
		t.Errorf("randomized partition: %v", err)
	}

	// The function computed by every architecture must agree.
	values := map[string]int64{}
	mm, err := globalfunc.Multimedia(g, 1, graph5Sum(), in,
		globalfunc.VariantDeterministic, globalfunc.StageCapetanakis)
	if err != nil {
		t.Fatal(err)
	}
	values["multimedia"] = mm.Value
	p2p, err := globalfunc.PointToPoint(g, 1, graph5Sum(), in)
	if err != nil {
		t.Fatal(err)
	}
	values["p2p"] = p2p.Value
	bc, err := globalfunc.BroadcastOnly(g, 1, graph5Sum(), in, globalfunc.StageCapetanakis)
	if err != nil {
		t.Fatal(err)
	}
	values["broadcast"] = bc.Value
	//mmlint:commutative independent per-primitive equality checks
	for name, v := range values {
		if v != want {
			t.Errorf("%s computed %d, want %d", name, v, want)
		}
	}

	// MST equals Kruskal's.
	tree, err := mst.Multimedia(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.MST.Equal(kr) {
		t.Error("distributed MST differs from Kruskal")
	}

	// Size algorithms.
	ex, err := size.Exact(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.N != n {
		t.Errorf("exact size = %d, want %d", ex.N, n)
	}
	est, err := size.Estimate(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimate < 1 {
		t.Errorf("estimate = %d", est.Estimate)
	}
}

func graph5Sum() globalfunc.Op { return globalfunc.Sum }

// TestFullPipelineStepEngine reruns the pipeline's protocols with the step
// engine as the process default, plus the native step protocols, so the new
// execution path has an out-of-package, end-to-end consumer.
func TestFullPipelineStepEngine(t *testing.T) {
	old := sim.DefaultEngine
	sim.DefaultEngine = sim.EngineStep
	defer func() { sim.DefaultEngine = old }()

	const n = 81
	g, err := graph.RandomConnected(n, 2*n, 77)
	if err != nil {
		t.Fatal(err)
	}
	in := func(v graph.NodeID) int64 { return (int64(v)*97 + 5) % 1000 }
	want := globalfunc.Reference(g, graph5Sum(), in)

	mm, err := globalfunc.Multimedia(g, 1, graph5Sum(), in,
		globalfunc.VariantDeterministic, globalfunc.StageCapetanakis)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Value != want {
		t.Errorf("multimedia sum on step engine = %d, want %d", mm.Value, want)
	}

	kr, err := graph.Kruskal(g)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := mst.Multimedia(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.MST.Equal(kr) {
		t.Error("distributed MST on step engine differs from Kruskal")
	}

	ex, err := size.Exact(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.N != n {
		t.Errorf("exact size on step engine = %d, want %d", ex.N, n)
	}

	// Native step protocols end to end.
	census, err := size.Census(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if census.N != n {
		t.Errorf("native census = %d, want %d", census.N, n)
	}
	p2p, err := globalfunc.PointToPointStep(g, 1, graph5Sum(), in)
	if err != nil {
		t.Fatal(err)
	}
	if p2p.Value != want {
		t.Errorf("native p2p sum = %d, want %d", p2p.Value, want)
	}
}

// TestEngineSlotConservation checks the simulator invariant that every
// round resolves exactly one slot: idle + success + collision == rounds.
func TestEngineSlotConservation(t *testing.T) {
	g, err := graph.Ring(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, met, _, err := partition.Deterministic(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	slots := met.SlotsIdle + met.SlotsSuccess + met.SlotsCollision
	if slots != int64(met.Rounds) {
		t.Errorf("slots %d != rounds %d", slots, met.Rounds)
	}
}

// TestManyTopologiesSmoke runs the deterministic partition + MST across a
// broad topology zoo at small sizes — a regression net for protocol corner
// cases (high degree, low diameter, trees, mutual-MWOE-heavy rings).
func TestManyTopologiesSmoke(t *testing.T) {
	zoo := []struct {
		name string
		mk   func() (*graph.Graph, error)
	}{
		{"ring9", func() (*graph.Graph, error) { return graph.Ring(9, 2) }},
		{"path17", func() (*graph.Graph, error) { return graph.Path(17, 3) }},
		{"grid3x9", func() (*graph.Graph, error) { return graph.Grid(3, 9, 4) }},
		{"torus4x4", func() (*graph.Graph, error) { return graph.Torus(4, 4, 5) }},
		{"complete9", func() (*graph.Graph, error) { return graph.Complete(9, 6) }},
		{"star33", func() (*graph.Graph, error) { return graph.Star(33, 7) }},
		{"btree15", func() (*graph.Graph, error) { return graph.BinaryTree(15, 8) }},
		{"ray4x4", func() (*graph.Graph, error) { return graph.Ray(4, 4, 9) }},
		{"random33", func() (*graph.Graph, error) { return graph.RandomConnected(33, 66, 10) }},
	}
	for _, tc := range zoo {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			res, err := mst.Multimedia(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := graph.Kruskal(g)
			if err != nil {
				t.Fatal(err)
			}
			if !res.MST.Equal(want) {
				t.Error("MST mismatch")
			}
			f, _, _, err := partition.Randomized(g, 3)
			if err != nil {
				t.Fatal(err)
			}
			if f.Stats().MaxRadius > 4*partition.SqrtN(g.N()) {
				t.Error("randomized radius bound violated")
			}
		})
	}
}
