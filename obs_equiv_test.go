package repro

// obs_equiv_test.go enforces the recorder transparency contract at the
// difftest level: for every protocol in the differential registry, a run
// observed by a fully-enabled obs.Obs (tracing, series, pprof labels, and
// metrics all on, installed process-wide so inner runs of multi-stage
// algorithms are observed too) must produce the outcome — value or error —
// of the same run unobserved, on both engines and at 1 and 4 workers.

import (
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/difftest"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sim"
)

func TestObservedRunsMatchUnobserved(t *testing.T) {
	configs := []struct {
		name    string
		engine  sim.Engine
		workers int
	}{
		{"goroutine", sim.EngineGoroutine, 1},
		{"step-w1", sim.EngineStep, 1},
		{"step-w4", sim.EngineStep, 4},
	}
	plans := []string{"", "seed:11;crash:4@5;jam:3-4;dup:*@2-9/p0.2/d2"}
	if testing.Short() {
		// The faulted plan on the two extreme configs covers every recorder
		// code path; the full matrix runs in the long suite.
		configs = []struct {
			name    string
			engine  sim.Engine
			workers int
		}{configs[0], configs[2]}
		plans = plans[1:]
	}

	for _, proto := range difftest.Protocols() {
		for _, cfg := range configs {
			for _, planStr := range plans {
				name := fmt.Sprintf("%s/%s/f%q", proto.Name, cfg.name, planStr)
				t.Run(name, func(t *testing.T) {
					g, err := graph.Ring(24, 3)
					if err != nil {
						t.Fatal(err)
					}
					var plan *fault.Plan
					if planStr != "" {
						if plan, err = fault.Parse(planStr); err != nil {
							t.Fatal(err)
						}
					}

					run := func(rec sim.Recorder) (any, error) {
						oldE, oldW, oldF, oldR := sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultRecorder
						sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultRecorder = cfg.engine, cfg.workers, plan, rec
						defer func() {
							sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultRecorder = oldE, oldW, oldF, oldR
						}()
						return proto.Run(g, 5)
					}

					wantVal, wantErr := run(nil)
					o := obs.New(obs.Options{
						Trace: true, PprofLabels: true,
						Series: io.Discard, SeriesEvery: 3,
					})
					gotVal, gotErr := run(o)
					if err := o.Close(); err != nil {
						t.Fatal(err)
					}

					if (wantErr == nil) != (gotErr == nil) ||
						(wantErr != nil && wantErr.Error() != gotErr.Error()) {
						t.Fatalf("error diverges under observation:\n unobserved: %v\n observed:   %v", wantErr, gotErr)
					}
					if !reflect.DeepEqual(wantVal, gotVal) {
						t.Fatalf("outcome diverges under observation:\n unobserved: %#v\n observed:   %#v", wantVal, gotVal)
					}
				})
			}
		}
	}
}
