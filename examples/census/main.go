// Census: determining how many stations share the network when n is not
// known in advance (§7.3/§7.4). The deterministic algorithm interleaves the
// partition with channel probes and computes n exactly; the Greenberg–Ladner
// protocol estimates n within a constant factor in O(log n) slots.
//
// This example runs on the step engine end to end: the §7.3/§7.4 protocols
// execute through the engine's goroutine adapter (set as the process
// default below), and the finale runs the native step-machine census on a
// network three orders of magnitude larger than the goroutine engine could
// schedule — the million-node regime the engine was built for.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/size"
)

func main() {
	nFlag := flag.Int("n", 150, "stations in the small network")
	bigFlag := flag.Int("big", 200_000, "stations in the native-census ring finale")
	flag.Parse()

	// Route every protocol below through the step engine.
	sim.DefaultEngine = sim.EngineStep

	n := *nFlag
	g, err := graph.RandomConnected(n, 2*n, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network of (secretly) %d stations, simulated on the %s engine\n",
		n, sim.DefaultEngine)

	exact, err := size.Exact(g, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("§7.3 deterministic count: n = %d after %d partition phases (%d rounds, %d messages)\n",
		exact.N, exact.Phases, exact.Metrics.Rounds, exact.Metrics.Messages)

	fmt.Println("§7.4 randomized estimates (5 runs, native step machines):")
	for s := int64(0); s < 5; s++ {
		est, err := size.EstimateStep(g, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  seed %d: 2^k = %-5d (ratio %.2f, %d slots)\n",
			s, est.Estimate, float64(est.Estimate)/float64(n), est.Rounds)
	}

	// The native step census at a scale no goroutine-per-node engine
	// reaches: every node sleeps until the BFS wavefront arrives, so the
	// engine does O(n + m) work regardless of the 10⁵ rounds the wave needs.
	big := *bigFlag
	bigRing, err := graph.Ring(big, 7)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	census, err := size.Census(bigRing, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native step census of a %d-node ring: n = %d in %d rounds, %d messages (%v wall)\n",
		big, census.N, census.Metrics.Rounds, census.Metrics.Messages, time.Since(t0).Round(time.Millisecond))
	fmt.Println("estimates land within a constant factor of n w.h.p.; the exact")
	fmt.Println("count costs Õ(√n) time but no prior knowledge beyond the id length.")
}
