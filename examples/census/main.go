// Census: determining how many stations share the network when n is not
// known in advance (§7.3/§7.4). The deterministic algorithm interleaves the
// partition with channel probes and computes n exactly; the Greenberg–Ladner
// protocol estimates n within a constant factor in O(log n) slots.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/size"
)

func main() {
	const n = 150
	g, err := graph.RandomConnected(n, 2*n, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network of (secretly) %d stations\n", n)

	exact, err := size.Exact(g, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("§7.3 deterministic count: n = %d after %d partition phases (%d rounds, %d messages)\n",
		exact.N, exact.Phases, exact.Metrics.Rounds, exact.Metrics.Messages)

	fmt.Println("§7.4 randomized estimates (5 runs):")
	for s := int64(0); s < 5; s++ {
		est, err := size.Estimate(g, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  seed %d: 2^k = %-5d (ratio %.2f, %d slots)\n",
			s, est.Estimate, float64(est.Estimate)/float64(n), est.Rounds)
	}
	fmt.Println("estimates land within a constant factor of n w.h.p.; the exact")
	fmt.Println("count costs Õ(√n) time but no prior knowledge beyond the id length.")
}
