// Quickstart: build a multimedia network (point-to-point links + one
// collision channel), partition it into O(√n) trees of radius O(√n), and
// compute a global sensitive function — the minimum of per-node readings —
// in Õ(√n) rounds.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/globalfunc"
	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	// A 256-node network (tunable with -n): a random connected
	// point-to-point topology plus the multiaccess channel the simulator
	// always provides.
	nFlag := flag.Int("n", 256, "number of nodes")
	flag.Parse()
	n := *nFlag
	g, err := graph.RandomConnected(n, 2*n, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d nodes, m=%d links, diameter >= %d\n",
		g.N(), g.M(), graph.DiameterLowerBound(g))

	// Stage 1 on its own: the deterministic §3 partition.
	f, met, info, err := partition.Deterministic(g, 1)
	if err != nil {
		log.Fatal(err)
	}
	st := f.Stats()
	fmt.Printf("partition: %d trees (√n = %d), max radius %d, %d phases, %d rounds\n",
		st.Trees, partition.SqrtN(n), st.MaxRadius, info.Phases, met.Rounds)

	// End to end: every node holds a sensor reading; all nodes learn the
	// global minimum via local convergecasts plus channel scheduling.
	readings := func(v graph.NodeID) int64 { return (int64(v)*7919 + 13) % 5000 }
	res, err := globalfunc.Multimedia(g, 1, globalfunc.Min, readings,
		globalfunc.VariantDeterministic, globalfunc.StageCapetanakis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global min = %d (reference %d)\n",
		res.Value, globalfunc.Reference(g, globalfunc.Min, readings))
	fmt.Printf("cost: %d rounds, %d point-to-point messages, %d channel slots used\n",
		res.Total.Rounds, res.Total.Messages, res.Total.Slots())
}
