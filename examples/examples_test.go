// Package examples_test smoke-tests every example program: each must
// build, run to completion at a small -n, exit 0, and print output of the
// expected shape. The examples are the repository's executable
// documentation; this suite keeps them from rotting as APIs move.
package examples_test

import (
	"os/exec"
	"regexp"
	"testing"
)

var smokes = []struct {
	name string
	args []string
	want []string // regexps the combined output must match
}{
	{
		name: "quickstart",
		args: []string{"-n", "48"},
		want: []string{`network: n=48 nodes`, `partition: \d+ trees`, `global min = \d+ \(reference \d+\)`},
	},
	{
		name: "mstnet",
		args: []string{"-n", "32"},
		want: []string{`weighted network: n=32`, `distributed MST: 31 edges`, `verified: identical to sequential Kruskal`},
	},
	{
		name: "sensorgrid",
		args: []string{"-n", "64"},
		want: []string{`total of all sensor readings`, `\s+64\s+32\s+\d+ rounds\s+\d+ rounds\s+\d+ rounds`},
	},
	{
		name: "synchronizer",
		args: []string{"-n", "25"},
		want: []string{`n=\s*25: sum=325`, `overhead=2\.00x`},
	},
	{
		name: "census",
		args: []string{"-n", "40", "-big", "3000"},
		want: []string{`§7\.3 deterministic count: n = 40`, `native step census of a 3000-node ring: n = 3000`},
	},
}

func TestExamplesSmoke(t *testing.T) {
	for _, tc := range smokes {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"run", "repro/examples/" + tc.name}, tc.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go %v: %v\n%s", args, err, out)
			}
			for _, pat := range tc.want {
				if !regexp.MustCompile(pat).Match(out) {
					t.Errorf("output does not match %q:\n%s", pat, out)
				}
			}
		})
	}
}
