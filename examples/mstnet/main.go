// Mstnet: build the minimum spanning tree of a weighted multimedia network
// with the §6 three-stage algorithm (deterministic partition → core
// scheduling → broadcast-driven merges) and verify it against sequential
// Kruskal — with distinct weights the MST is unique, so they must match
// edge for edge.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/mst"
)

func main() {
	nFlag := flag.Int("n", 200, "number of nodes")
	flag.Parse()
	n := *nFlag
	g, err := graph.RandomConnected(n, 3*n, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted network: n=%d, m=%d\n", g.N(), g.M())

	res, err := mst.Multimedia(g, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed MST: %d edges, total weight %d\n",
		len(res.MST.EdgeIDs), res.MST.Total)
	fmt.Printf("stages: %d initial fragments, %d merge phases\n",
		res.InitialFragments, res.Phases)
	fmt.Printf("cost: partition %d rounds + merge %d rounds; %d messages total\n",
		res.Partition.Rounds, res.Merge.Rounds, res.Total.Messages)

	want, err := graph.Kruskal(g)
	if err != nil {
		log.Fatal(err)
	}
	if !res.MST.Equal(want) {
		log.Fatalf("MISMATCH with Kruskal: distributed %d vs sequential %d",
			res.MST.Total, want.Total)
	}
	fmt.Println("verified: identical to sequential Kruskal, edge for edge")

	// The first few MST edges, for a look at the output format.
	for i, id := range res.MST.EdgeIDs[:min(5, len(res.MST.EdgeIDs))] {
		e := g.Edge(id)
		fmt.Printf("  edge %d: %d—%d (weight %d)\n", i, e.U, e.V, e.Weight)
	}
}
