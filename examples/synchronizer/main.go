// Synchronizer: §7.1 — the multiaccess channel as a synchronizer. A
// synchronous aggregation algorithm (BFS + convergecast + broadcast) runs
// unchanged on a fully asynchronous point-to-point network: every message
// is acknowledged, senders hold a busy tone while unacknowledged, and an
// idle slot is the global clock pulse starting the next round. Corollary 4:
// at most 2× the messages and a constant time factor per round.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"repro/internal/async"
	"repro/internal/graph"
)

func main() {
	maxN := flag.Int("n", 400, "largest network size in the sweep")
	flag.Parse()
	for _, n := range sweepSizes([]int{25, 100}, *maxN) {
		g, err := graph.Grid(n/5, 5, 3)
		if err != nil {
			log.Fatal(err)
		}
		results := make([]int64, g.N())
		var mu sync.Mutex
		readings := func(v graph.NodeID) int64 { return int64(v) + 1 }
		met, err := async.Run(g, 99, 50*g.N()+500, async.SumDemo(readings, results, &mu))
		if err != nil {
			log.Fatal(err)
		}
		want := int64(g.N()) * int64(g.N()+1) / 2
		if results[0] != want {
			log.Fatalf("n=%d: got %d, want %d", g.N(), results[0], want)
		}
		fmt.Printf("n=%4d: sum=%-7d rounds=%-4d time=%-5d slots/round=%.2f  msgs=%d acks=%d overhead=%.2fx\n",
			g.N(), results[0], met.Rounds, met.Time,
			float64(met.Time)/float64(met.Rounds), met.AlgMsgs, met.AckMsgs, met.Overhead())
	}
	fmt.Println("\nthe asynchronous runs compute the same value as the synchronous")
	fmt.Println("algorithm, with exactly 2x messages and O(1) slots per round (Cor. 4).")
}

// sweepSizes keeps the default rungs below max and ends the sweep at max
// itself, so -n is honored exactly as its help text promises.
func sweepSizes(defaults []int, max int) []int {
	var sizes []int
	for _, s := range defaults {
		if s < max {
			sizes = append(sizes, s)
		}
	}
	return append(sizes, max)
}
