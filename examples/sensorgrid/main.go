// Sensorgrid: the workload the paper's introduction motivates — a large
// sensor mesh whose readings must be aggregated everywhere. Compares the
// three architectures of §5 head to head on a ring (worst case for pure
// point-to-point: d = n/2) and prints who wins at each size.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/globalfunc"
	"repro/internal/graph"
)

func main() {
	maxN := flag.Int("n", 1024, "largest network size in the sweep")
	flag.Parse()
	sizes := sweepSizes([]int{64, 256}, *maxN)
	readings := func(v graph.NodeID) int64 { return (int64(v)*31 + 7) % 100 }

	fmt.Println("total of all sensor readings, ring topology (d = n/2):")
	fmt.Printf("%6s  %6s  %14s  %14s  %14s\n", "n", "d", "multimedia", "p2p only", "bus only")
	for _, n := range sizes {
		g, err := graph.Ring(n, 1)
		if err != nil {
			log.Fatal(err)
		}
		mm, err := globalfunc.Multimedia(g, 1, globalfunc.Sum, readings,
			globalfunc.VariantRandomized, globalfunc.StageMetcalfeBoggs)
		if err != nil {
			log.Fatal(err)
		}
		p2p, err := globalfunc.PointToPoint(g, 1, globalfunc.Sum, readings)
		if err != nil {
			log.Fatal(err)
		}
		bus, err := globalfunc.BroadcastOnly(g, 1, globalfunc.Sum, readings,
			globalfunc.StageCapetanakis)
		if err != nil {
			log.Fatal(err)
		}
		if mm.Value != p2p.Value || mm.Value != bus.Value {
			log.Fatalf("disagreement: %d %d %d", mm.Value, p2p.Value, bus.Value)
		}
		fmt.Printf("%6d  %6d  %8d rounds  %8d rounds  %8d rounds\n",
			n, n/2, mm.Total.Rounds, p2p.Total.Rounds, bus.Total.Rounds)
	}
	fmt.Println("\nthe multimedia combination scales as Õ(√n); each single medium")
	fmt.Println("is bound below by Ω(d) (point-to-point) or Ω(n) (bus) — Theorem 2.")
}

// sweepSizes keeps the default rungs below max and ends the sweep at max
// itself, so -n is honored exactly as its help text promises.
func sweepSizes(defaults []int, max int) []int {
	var sizes []int
	for _, s := range defaults {
		if s < max {
			sizes = append(sizes, s)
		}
	}
	return append(sizes, max)
}
