package repro

// difftest_test.go is the randomized half of the differential harness: a
// seeded generator draws (graph, algorithm, seed, worker count, fault plan)
// tuples and asserts that the goroutine engine and the step engine produce
// bit-identical outcomes — value or error — for every tuple. The same
// driver doubles as a fuzz target, so `go test -fuzz=FuzzEngineEquivalence`
// explores the tuple space beyond the seeded table.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/difftest"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/replay"
	"repro/internal/sim"
)

// diffFaultPlans is the pool of fault plans tuples draw from (index 0: no
// faults). Plans are parsed per use so each run compiles its own injector.
var diffFaultPlans = []string{
	"",
	"seed:3;crash:2@3",
	"seed:7;jam:1-6/p0.5",
	"seed:9;drop:*@2-12/p0.3",
	"seed:11;crash:4@5;jam:3-4;dup:*@2-9/p0.2/d2",
	"seed:13;delay:*@1-14/p0.4/d3",
	// Chaos v2 (append-only: corpus entries index this pool by position).
	"seed:15;partition:2@3-8",
	"seed:19;crash:3@4;restart:3@9",
	"seed:21;drop:*@2-4/e8/p0.5;jam:3-4/e6",
	"seed:23;partition:3@2-5;crash:2@3;restart:2@10;delay:*@1-12/p0.2/d2",
}

// diffTuple is one generated differential test case.
type diffTuple struct {
	proto   difftest.Protocol
	graph   string
	n       int
	extra   int
	gseed   int64
	seed    int64
	workers int
	plan    string
}

func (d diffTuple) String() string {
	return fmt.Sprintf("%s/%s-n%d-gs%d-s%d-w%d-f%q",
		d.proto.Name, d.graph, d.n, d.gseed, d.seed, d.workers, d.plan)
}

// makeTuple derives a tuple from raw draws (shared by the seeded table and
// the fuzz target, so corpus entries map stably onto cases; selectors 0-3
// keep their historical meaning — the committed corpus predates the
// implicit/heavy-tailed additions in 4-7).
func makeTuple(protoSel, topoSel, nSel uint8, gseed, seed int64, workerSel, planSel uint8) diffTuple {
	protos := difftest.Protocols()
	t := diffTuple{
		proto:   protos[int(protoSel)%len(protos)],
		n:       10 + int(nSel)%30,
		gseed:   1 + gseed%100,
		seed:    1 + seed%100,
		workers: []int{1, 2, 5}[int(workerSel)%3],
		plan:    diffFaultPlans[int(planSel)%len(diffFaultPlans)],
	}
	switch topoSel % 8 {
	case 0:
		t.graph = "ring"
	case 1:
		t.graph = "path"
	case 2:
		t.graph = "random"
		t.extra = t.n
	case 3:
		t.graph = "star"
	case 4:
		t.graph = "ring-implicit"
	case 5:
		t.graph = "btree-implicit"
	case 6:
		t.graph = "ba"
	default:
		t.graph = "ws"
	}
	return t
}

func (d diffTuple) makeGraph() (graph.Topology, error) {
	switch d.graph {
	case "ring":
		return graph.Ring(d.n, d.gseed)
	case "path":
		return graph.Path(d.n, d.gseed)
	case "random":
		return graph.RandomConnected(d.n, d.extra, d.gseed)
	case "star":
		return graph.Star(d.n, d.gseed)
	case "ring-implicit":
		return graph.ImplicitRing(d.n, d.gseed)
	case "btree-implicit":
		return graph.ImplicitBinaryTree(d.n, d.gseed)
	case "ba":
		return graph.BarabasiAlbert(d.n, 2, d.gseed)
	case "ws":
		return graph.WattsStrogatz(d.n, 4, 0.25, d.gseed)
	default:
		return nil, fmt.Errorf("unknown graph %q", d.graph)
	}
}

// checkTuple runs one tuple on both engines and fails on any divergence.
func checkTuple(t *testing.T, d diffTuple) {
	t.Helper()
	g, err := d.makeGraph()
	if err != nil {
		t.Fatal(err)
	}
	var plan *fault.Plan
	if d.plan != "" {
		if plan, err = fault.Parse(d.plan); err != nil {
			t.Fatal(err)
		}
	}
	oldPlan, oldMax, oldW := sim.DefaultFaults, sim.DefaultMaxRounds, sim.DefaultWorkers
	sim.DefaultFaults, sim.DefaultMaxRounds = plan, 1500
	defer func() {
		sim.DefaultFaults, sim.DefaultMaxRounds, sim.DefaultWorkers = oldPlan, oldMax, oldW
	}()

	var want, got outcome
	withEngine(t, sim.EngineGoroutine, func() {
		want = capture(d.proto.Run, g, d.seed)
	})
	sim.DefaultWorkers = d.workers
	withEngine(t, sim.EngineStep, func() {
		got = capture(d.proto.Run, g, d.seed)
	})
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%v: engines diverge:\n goroutine: %#v\n step:      %#v\n%s", d, want, got, reduceDivergence(d, g, plan))
	}
}

// reduceDivergence is the fuzz loop's `mmreplay -bisect` hookup: when a
// tuple diverges, reduce it to the first round whose full checkpointed
// engine state differs between worker counts 1 and the tuple's. Only the
// re-runnable native step protocols can be state-bisected; for the rest,
// print the search the developer would run by hand.
func reduceDivergence(d diffTuple, g graph.Topology, plan *fault.Plan) string {
	var buf bytes.Buffer
	prog, err := replay.Program(d.proto.Name)
	if err != nil {
		fmt.Fprintf(&buf, "auto-reduce: %s has no native step form to bisect; try:\n"+
			"  go run ./cmd/mmreplay -bisect -algo census -graph %s -n %d -seed %d -faults %q -workers-a 1 -workers-b %d\n",
			d.proto.Name, d.graph, d.n, d.seed, d.plan, d.workers)
		return buf.String()
	}
	wb := d.workers
	if wb == 1 {
		wb = 4
	}
	fmt.Fprintf(&buf, "auto-reduce (state bisection, workers 1 vs %d):\n", wb)
	if err := replay.BisectStates(&buf, g, prog, d.seed, plan, 1500, 1, wb); err != nil && !errors.Is(err, replay.ErrDiverged) {
		fmt.Fprintf(&buf, "bisect failed: %v\n", err)
	}
	return buf.String()
}

// TestSeededRandomDifferential draws a fixed table of tuples from a seeded
// RNG — deterministic in CI, broad across protocols, topologies, worker
// counts, and fault plans.
func TestSeededRandomDifferential(t *testing.T) {
	const tuples = 40
	rng := rand.New(rand.NewSource(20260729))
	for i := 0; i < tuples; i++ {
		d := makeTuple(
			uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)),
			rng.Int63n(1000), rng.Int63n(1000),
			uint8(rng.Intn(256)), uint8(rng.Intn(256)),
		)
		t.Run(fmt.Sprintf("%02d-%s", i, d.proto.Name), func(t *testing.T) {
			checkTuple(t, d)
		})
	}
}

// FuzzEngineEquivalence lets the fuzzer explore the tuple space: any input
// on which the engines diverge is a determinism bug.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(6), int64(1), int64(1), uint8(0), uint8(0))
	f.Add(uint8(3), uint8(2), uint8(22), int64(7), int64(9), uint8(1), uint8(4))
	f.Add(uint8(13), uint8(1), uint8(15), int64(3), int64(2), uint8(2), uint8(2))
	f.Add(uint8(16), uint8(3), uint8(9), int64(5), int64(5), uint8(1), uint8(5))
	// census (a sleep/wake wavefront) under network-wide delays: delayed
	// deliveries park the whole network between wavefront steps, so this
	// seed drives the step engine's quiescent-round fast-forward.
	f.Add(uint8(10), uint8(0), uint8(20), int64(2), int64(3), uint8(0), uint8(5))
	// mst (SleepUntilPulse barriers) under a jam window: pulse wakes that
	// must survive fast-forwarding over jammed slots.
	f.Add(uint8(3), uint8(0), uint8(12), int64(4), int64(6), uint8(2), uint8(2))
	// census on an *implicit* ring (topoSel 4) under delays: the engine's
	// no-linkAt path — LinkOf resolved by weight-rank arithmetic — must be
	// transcript-identical to the goroutine engine on the same topology.
	f.Add(uint8(10), uint8(4), uint8(20), int64(2), int64(3), uint8(1), uint8(5))
	// mst on an implicit binary tree (topoSel 5), fault-free, workers 5.
	f.Add(uint8(3), uint8(5), uint8(17), int64(8), int64(4), uint8(2), uint8(0))
	// Chaos v2: census through a partition window that cuts and heals
	// mid-wavefront (planSel 6), and coloring through a crash-restart
	// (planSel 7) — the restarted node re-enters with a fresh RNG stream.
	f.Add(uint8(10), uint8(0), uint8(16), int64(2), int64(3), uint8(1), uint8(6))
	f.Add(uint8(17), uint8(3), uint8(14), int64(5), int64(8), uint8(2), uint8(7))
	// Recurring windows (planSel 8) over the mst pulse barriers, and the
	// combined partition+restart+delay storm (planSel 9) on an implicit
	// ring — the heaviest chaos the contract must hold under.
	f.Add(uint8(3), uint8(0), uint8(12), int64(4), int64(6), uint8(2), uint8(8))
	f.Add(uint8(10), uint8(4), uint8(20), int64(2), int64(3), uint8(1), uint8(9))
	f.Fuzz(func(t *testing.T, protoSel, topoSel, nSel uint8, gseed, seed int64, workerSel, planSel uint8) {
		if gseed < 0 || seed < 0 {
			t.Skip("negative seeds normalize to themselves; skip to keep the corpus tidy")
		}
		checkTuple(t, makeTuple(protoSel, topoSel, nSel, gseed, seed, workerSel, planSel))
	})
}
