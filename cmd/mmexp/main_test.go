package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E5", "E9", "E10", "A2"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output lacks %s:\n%s", id, out)
		}
	}
}

func TestRunOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E6"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== E6") || !strings.Contains(out, "claim:") {
		t.Errorf("-only E6 output malformed:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-only", "E999"},
		{"-engine", "nope"},
		{"-faults", "nope:1@2"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunFaultedExperiment runs a cheap experiment under a global jam plan:
// the fault flags must thread through to every internal sim.Run.
func TestRunFaultedExperiment(t *testing.T) {
	var buf bytes.Buffer
	// E8's protocols tolerate mild jamming (collision-resolution stages
	// retry); the runs must still complete and print the table.
	if err := run([]string{"-only", "E8", "-jam", "0.1", "-max-rounds", "20000"}, &buf); err != nil {
		t.Fatalf("faulted E8: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "== E8") {
		t.Errorf("output malformed:\n%s", buf.String())
	}
}
