// Command mmexp regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per paper claim (see DESIGN.md §5 for the
// index).
//
// Usage:
//
//	mmexp                # quick sweep (seconds)
//	mmexp -full          # full sweep used for EXPERIMENTS.md (minutes)
//	mmexp -only E3       # a single experiment
//	mmexp -only E9       # step-engine scaling table (10⁶ nodes with -full)
//	mmexp -only E10      # chaos: degradation under crash/jam fault plans
//	mmexp -engine step   # run every experiment on the step engine
//	mmexp -jam 0.2       # ... under a 20% channel-jamming plan
//	mmexp -list          # list the registry
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmexp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mmexp", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		full      = fs.Bool("full", false, "run the full parameter sweep (slow)")
		only      = fs.String("only", "", "run a single experiment by id (e.g. E3)")
		list      = fs.Bool("list", false, "list experiments and exit")
		engine    = fs.String("engine", "goroutine", "execution engine for all experiments: goroutine|step")
		workers   = fs.Int("workers", 0, "step-engine worker count (0 = GOMAXPROCS)")
		faults    = fs.String("faults", "", "fault plan DSL applied to every experiment (E10 installs its own plans)")
		crashFrac = fs.Float64("crash", 0, "crash-stop this fraction of nodes at round 1 in every run")
		jamRate   = fs.Float64("jam", 0, "jam every channel slot with this probability")
		faultSeed = fs.Int64("fault-seed", 1, "seed for the fault plan's probabilistic rules")
		maxRounds = fs.Int("max-rounds", 0, "round budget per run (0 = graph-derived default); bound wedged faulted runs")

		tracePath   = fs.String("trace", "", "write engine phase spans across every run as Chrome trace_event JSON to this file")
		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics and pprof /debug/pprof on this address while the sweep runs")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		return err
	}
	plan, err := fault.FromFlags(*faults, *crashFrac, *jamRate, *faultSeed)
	if err != nil {
		return err
	}
	// With -trace or -metrics-addr, an Obs observes every run of the sweep
	// through the process-default recorder (observation never changes the
	// tables — see the sim.Recorder contract).
	var o *obs.Obs
	if *tracePath != "" || *metricsAddr != "" {
		o = obs.New(obs.Options{Trace: *tracePath != "", PprofLabels: true})
		if *metricsAddr != "" {
			srv, err := obs.Serve(*metricsAddr, o.Registry())
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "mmexp: serving /metrics and /debug/pprof on http://%s\n", srv.Addr)
		}
	}
	var rec sim.Recorder
	if o != nil {
		rec = o
	}

	oldE, oldW, oldF, oldM, oldR := sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultMaxRounds, sim.DefaultRecorder
	sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultMaxRounds, sim.DefaultRecorder = eng, *workers, plan, *maxRounds, rec
	defer func() {
		sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultMaxRounds, sim.DefaultRecorder = oldE, oldW, oldF, oldM, oldR
	}()

	experiments := exp.All()
	if *list {
		for _, e := range experiments {
			fmt.Fprintf(w, "%-3s %-38s %s\n", e.ID, e.Name, e.Claim)
		}
		return nil
	}
	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(e.ID, *only) {
			continue
		}
		fmt.Fprintf(w, "== %s: %s\n   claim: %s\n", e.ID, e.Name, e.Claim)
		if err := e.Run(w, *full); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	if o != nil && *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := o.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
