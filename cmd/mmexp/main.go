// Command mmexp regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per paper claim (see DESIGN.md §5 for the
// index).
//
// Usage:
//
//	mmexp                # quick sweep (seconds)
//	mmexp -full          # full sweep used for EXPERIMENTS.md (minutes)
//	mmexp -only E3       # a single experiment
//	mmexp -only E9       # step-engine scaling table (10⁶ nodes with -full)
//	mmexp -only E10      # chaos: degradation under crash/jam fault plans
//	mmexp -engine step   # run every experiment on the step engine
//	mmexp -jam 0.2       # ... under a 20% channel-jamming plan
//	mmexp -list          # list the registry
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmexp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mmexp", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		full      = fs.Bool("full", false, "run the full parameter sweep (slow)")
		only      = fs.String("only", "", "run a single experiment by id (e.g. E3)")
		list      = fs.Bool("list", false, "list experiments and exit")
		engine    = fs.String("engine", "goroutine", "execution engine for all experiments: goroutine|step")
		workers   = fs.Int("workers", 0, "step-engine worker count (0 = GOMAXPROCS)")
		faults    = fs.String("faults", "", "fault plan DSL applied to every experiment (E10 installs its own plans)")
		crashFrac = fs.Float64("crash", 0, "crash-stop this fraction of nodes at round 1 in every run")
		jamRate   = fs.Float64("jam", 0, "jam every channel slot with this probability")
		faultSeed = fs.Int64("fault-seed", 1, "seed for the fault plan's probabilistic rules")
		maxRounds = fs.Int("max-rounds", 0, "round budget per run (0 = graph-derived default); bound wedged faulted runs")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		return err
	}
	plan, err := fault.FromFlags(*faults, *crashFrac, *jamRate, *faultSeed)
	if err != nil {
		return err
	}
	oldE, oldW, oldF, oldM := sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultMaxRounds
	sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultMaxRounds = eng, *workers, plan, *maxRounds
	defer func() {
		sim.DefaultEngine, sim.DefaultWorkers, sim.DefaultFaults, sim.DefaultMaxRounds = oldE, oldW, oldF, oldM
	}()

	experiments := exp.All()
	if *list {
		for _, e := range experiments {
			fmt.Fprintf(w, "%-3s %-38s %s\n", e.ID, e.Name, e.Claim)
		}
		return nil
	}
	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(e.ID, *only) {
			continue
		}
		fmt.Fprintf(w, "== %s: %s\n   claim: %s\n", e.ID, e.Name, e.Claim)
		if err := e.Run(w, *full); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	return nil
}
