// Command mmexp regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per paper claim (see DESIGN.md §5 for the
// index).
//
// Usage:
//
//	mmexp                # quick sweep (seconds)
//	mmexp -full          # full sweep used for EXPERIMENTS.md (minutes)
//	mmexp -only E3       # a single experiment
//	mmexp -only E9       # step-engine scaling table (10⁶ nodes with -full)
//	mmexp -engine step   # run every experiment on the step engine
//	mmexp -list          # list the registry
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mmexp:", err)
		os.Exit(1)
	}
}

func run() error {
	full := flag.Bool("full", false, "run the full parameter sweep (slow)")
	only := flag.String("only", "", "run a single experiment by id (e.g. E3)")
	list := flag.Bool("list", false, "list experiments and exit")
	engine := flag.String("engine", "goroutine", "execution engine for all experiments: goroutine|step")
	workers := flag.Int("workers", 0, "step-engine worker count (0 = GOMAXPROCS)")
	flag.Parse()

	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		return err
	}
	sim.DefaultEngine = eng
	sim.DefaultWorkers = *workers

	experiments := exp.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-3s %-38s %s\n", e.ID, e.Name, e.Claim)
		}
		return nil
	}
	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(e.ID, *only) {
			continue
		}
		fmt.Printf("== %s: %s\n   claim: %s\n", e.ID, e.Name, e.Claim)
		if err := e.Run(os.Stdout, *full); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	return nil
}
