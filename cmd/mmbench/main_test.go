package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runTiny runs the harness at a tiny size and returns the parsed report.
func runTiny(t *testing.T, extra ...string) (*Report, string) {
	t.Helper()
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	args := append([]string{"-n", "2000", "-out", out}, extra...)
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	return &rep, out
}

// TestBenchReportShape runs the harness at a tiny size and checks the JSON
// report: every expected row present (including the multi-worker rows),
// sane values.
func TestBenchReportShape(t *testing.T) {
	rep, _ := runTiny(t)
	want := map[string]bool{
		"relay/goroutine":               false,
		"relay/step-adapter":            false,
		"relay/step-adapter-w4":         false,
		"relay/step-native":             false,
		"relay/step-native-w4":          false,
		"relay/step-native-w8":          false,
		"phase/relay-native-w1/step":    false,
		"phase/relay-native-w1/deliver": false,
		"phase/relay-native-w4/step":    false,
		"phase/relay-native-w4/deliver": false,
		"phase/relay-native-w4/barrier": false,
		"scale/census-step":             false,
		"scale/forest+coloring-step":    false,
		"scale/mst-merge-step":          false,
		"mem/ring-implicit":             false,
		"mem/ring-materialized":         false,
		"mem/census-ring-implicit":      false,
		"mem/census-ring-materialized":  false,
	}
	for _, row := range rep.Rows {
		if _, ok := want[row.Name]; !ok {
			t.Errorf("unexpected row %q", row.Name)
			continue
		}
		want[row.Name] = true
		if strings.HasPrefix(row.Name, "mem/") {
			// Memory rows carry bytes instead of wall-clock numbers. The
			// implicit form's whole point is a footprint near zero, so only
			// the materialized row must show real per-node weight.
			if row.Nodes <= 0 {
				t.Errorf("row %q has degenerate values: %+v", row.Name, row)
			}
			if row.Name == "mem/ring-materialized" && row.BytesPerNode < 24 {
				t.Errorf("row %q: bytes/node %.2f implausibly small", row.Name, row.BytesPerNode)
			}
			if row.Name == "mem/ring-implicit" && row.Bytes > 1<<20 {
				t.Errorf("row %q: implicit topology cost %d bytes; want O(1)", row.Name, row.Bytes)
			}
			if strings.HasPrefix(row.Name, "mem/census-") && row.BytesPerNode <= 0 {
				// Engine-footprint rows always hold real per-node weight:
				// machines, results, and node arrays exist on any form.
				t.Errorf("row %q: engine footprint %.2f bytes/node implausible", row.Name, row.BytesPerNode)
			}
			continue
		}
		if strings.HasPrefix(row.Name, "phase/") {
			// Phase rows are informational totals: no nodes/sec (the
			// -compare wall-clock gate skips them by design).
			if row.NsPerOp <= 0 || row.NodesPerSec != 0 || row.Nodes <= 0 {
				t.Errorf("row %q has degenerate values: %+v", row.Name, row)
			}
			continue
		}
		if row.NsPerOp <= 0 || row.NodesPerSec <= 0 || row.Nodes <= 0 {
			t.Errorf("row %q has degenerate values: %+v", row.Name, row)
		}
	}
	//mmlint:commutative independent per-row presence checks
	for name, seen := range want {
		if !seen {
			t.Errorf("row %q missing from report", name)
		}
	}
}

// TestCompareGate exercises the -compare regression gate: identical results
// pass, a doctored much-faster baseline fails, and rows with mismatched
// node counts or no baseline are skipped rather than failed.
func TestCompareGate(t *testing.T) {
	rep, out := runTiny(t)

	// Self-comparison: every row is ~1.00x, no regression.
	var buf bytes.Buffer
	if err := compareReports(&buf, rep, out); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no row regressed") {
		t.Errorf("self-compare output: %s", buf.String())
	}

	// Doctored baseline: pretend the past was 10x faster everywhere.
	doctored := *rep
	doctored.Rows = append([]Row(nil), rep.Rows...)
	for i := range doctored.Rows {
		doctored.Rows[i].NodesPerSec *= 10
	}
	base := filepath.Join(t.TempDir(), "base.json")
	data, err := json.Marshal(&doctored)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := compareReports(&buf, rep, base); err == nil {
		t.Fatalf("10x-faster baseline must fail the gate:\n%s", buf.String())
	} else if !strings.Contains(err.Error(), "nodes/sec") {
		t.Errorf("unexpected gate error: %v", err)
	}

	// Doctored alloc baseline: pretend the past allocated 10x less.
	doctored.Rows = append([]Row(nil), rep.Rows...)
	for i := range doctored.Rows {
		if doctored.Rows[i].AllocsPerOp > 0 {
			doctored.Rows[i].AllocsPerOp /= 10
		}
	}
	if data, err = json.Marshal(&doctored); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := compareReports(&buf, rep, base); err == nil {
		t.Fatalf("10x-leaner alloc baseline must fail the gate:\n%s", buf.String())
	} else if !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("unexpected alloc gate error: %v", err)
	}

	// Doctored memory baseline: pretend the past held 10x fewer bytes/node.
	doctored.Rows = append([]Row(nil), rep.Rows...)
	for i := range doctored.Rows {
		if doctored.Rows[i].BytesPerNode > 0 {
			doctored.Rows[i].BytesPerNode /= 10
		}
	}
	if data, err = json.Marshal(&doctored); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := compareReports(&buf, rep, base); err == nil {
		t.Fatalf("10x-leaner memory baseline must fail the gate:\n%s", buf.String())
	} else if !strings.Contains(err.Error(), "bytes/node") {
		t.Errorf("unexpected memory gate error: %v", err)
	}

	// Mismatched node counts and unknown rows are skipped, not failed.
	doctored.Rows = doctored.Rows[:1]
	doctored.Rows[0].Nodes++
	if data, err = json.Marshal(&doctored); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := compareReports(&buf, rep, base); err != nil {
		t.Fatalf("mismatched-n baseline must be skipped: %v", err)
	}
	if !strings.Contains(buf.String(), "skipped") || !strings.Contains(buf.String(), "NEW") {
		t.Errorf("compare output missing skip/new markers:\n%s", buf.String())
	}

	// A missing baseline file is a hard error.
	if err := compareReports(&buf, rep, filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing baseline must error")
	}
}

// TestCompareGateMissingRowAndZeroAllocBaseline covers the gate's edge
// cases on synthetic reports: a baseline row the current report no longer
// produces fails (lost coverage, not a pass), a zero-alloc baseline still
// gates allocation growth beyond the absolute slack, and sub-slack alloc
// jitter over a tiny baseline passes.
func TestCompareGateMissingRowAndZeroAllocBaseline(t *testing.T) {
	writeBase := func(rows ...Row) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "base.json")
		data, err := json.Marshal(&Report{Rows: rows})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	row := func(name string, allocs int64) Row {
		return Row{Name: name, Nodes: 100, NsPerOp: 1000, NodesPerSec: 1e6, AllocsPerOp: allocs}
	}

	// Baseline row absent from the current report fails the gate.
	var buf bytes.Buffer
	cur := &Report{Rows: []Row{row("relay/a", 50)}}
	base := writeBase(row("relay/a", 50), row("relay/gone", 50))
	if err := compareReports(&buf, cur, base); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("dropped baseline row must fail the gate, got %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "MISSING") {
		t.Errorf("compare output missing MISSING marker:\n%s", buf.String())
	}

	// Zero-alloc baseline: growth beyond the slack fails...
	buf.Reset()
	cur = &Report{Rows: []Row{row("relay/a", allocsSlack+1)}}
	base = writeBase(row("relay/a", 0))
	if err := compareReports(&buf, cur, base); err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("alloc growth over a zero-alloc baseline must fail the gate, got %v\n%s", err, buf.String())
	}

	// ...but sub-slack growth (zero or tiny baseline) passes.
	buf.Reset()
	cur = &Report{Rows: []Row{row("relay/a", allocsSlack), row("relay/b", 12)}}
	base = writeBase(row("relay/a", 0), row("relay/b", 4))
	if err := compareReports(&buf, cur, base); err != nil {
		t.Errorf("sub-slack alloc jitter must pass the gate: %v\n%s", err, buf.String())
	}

	// A GOMAXPROCS mismatch (baseline from a different machine shape)
	// skips the wall-clock half — a 10x slower row passes — while the
	// machine-independent allocs/op half still gates.
	buf.Reset()
	slow := row("relay/a", 1000)
	slow.NodesPerSec /= 10
	cur = &Report{GOMAXPROCS: 4, Rows: []Row{slow}}
	path := filepath.Join(t.TempDir(), "base.json")
	data, err := json.Marshal(&Report{GOMAXPROCS: 1, Rows: []Row{row("relay/a", 50)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareReports(&buf, cur, path); err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("cross-shape compare must still gate allocs/op, got %v\n%s", err, buf.String())
	} else if strings.Contains(err.Error(), "nodes/sec") {
		t.Errorf("cross-shape compare must not gate wall clock: %v", err)
	}
	if !strings.Contains(buf.String(), "not comparable") {
		t.Errorf("cross-shape compare output missing notice:\n%s", buf.String())
	}
}
