package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchReportShape runs the harness at a tiny size and checks the JSON
// report: every expected row present, sane values.
func TestBenchReportShape(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-n", "2000", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	want := map[string]bool{
		"relay/goroutine":            false,
		"relay/step-adapter":         false,
		"relay/step-native":          false,
		"scale/census-step":          false,
		"scale/forest+coloring-step": false,
		"scale/mst-merge-step":       false,
	}
	for _, row := range rep.Rows {
		if _, ok := want[row.Name]; !ok {
			t.Errorf("unexpected row %q", row.Name)
			continue
		}
		want[row.Name] = true
		if row.NsPerOp <= 0 || row.NodesPerSec <= 0 || row.Nodes <= 0 {
			t.Errorf("row %q has degenerate values: %+v", row.Name, row)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("row %q missing from report", name)
		}
	}
}
